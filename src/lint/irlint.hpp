// svale lint --ir — the second check tier, over the lowered IR instead of
// the sema'd AST. The AST linter sees what the directive semantics *mean*;
// this tier sees what the backend actually *emitted* — values flowing across
// lowered basic blocks and the host-side offload driver calls — and catches
// the bug classes a source-level walk structurally cannot.
//
// Check catalogue (see DESIGN.md "IR static analysis"):
//   uninit-use         a load from a local slot with no reaching store
//                      (Error when no initialisation reaches at all, Warning
//                      when only some paths initialise), and any `%N`
//                      operand whose unique definition does not reach the
//                      use (Error — only a broken CFG can produce it)
//   dead-store         a store to a local slot that no load observes before
//                      the slot is overwritten or the function returns
//                      (Warning; parameter spills exempt, Runtime functions
//                      skipped)
//   unreachable-block  a block the entry cannot reach that still contains
//                      source-located instructions (Warning; the lowering's
//                      synthesised continuation blocks carry no locations
//                      and stay silent)
//   device-transfer    a per-block state machine over the offload driver
//                      calls in host functions: a host→device copy repeated
//                      with no intervening kernel launch or source update
//                      (redundant), and a host read of a buffer whose
//                      device→host copy predates the last kernel launch
//                      (stale). Both Warning.
#pragma once

#include "ir/ir.hpp"
#include "lint/lint.hpp"

namespace sv::lint {

/// Run every IR-tier check over one lowered module. Diagnostics carry the
/// instruction's source location (see the lowering's location-propagation
/// contract) and the enclosing function name in `directive`.
[[nodiscard]] std::vector<Diagnostic> runIr(const ir::Module &module);

} // namespace sv::lint
