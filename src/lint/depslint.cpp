#include "lint/depslint.hpp"

#include <map>
#include <set>

#include "support/strings.hpp"

namespace sv::lint {

namespace {

using namespace lang::ast;
using ir::FunctionRole;
using ir::LoopInfo;
using ir::ScalarClass;

/// Strip a clause argument down to its base variable name ("a[0:n]" -> "a").
std::string clauseBase(std::string_view arg) {
  usize end = arg.size();
  for (usize i = 0; i < arg.size(); ++i)
    if (arg[i] == '[' || arg[i] == '(') {
      end = i;
      break;
    }
  auto s = str::trim(arg.substr(0, end));
  while (!s.empty() && (s.front() == '*' || s.front() == '&')) s.remove_prefix(1);
  return std::string(s);
}

/// Unit-wide clause evidence. The lowering erases private clauses entirely
/// and records reductions only as per-region runtime markers, so the AST is
/// the authority on what the programmer already declared. Collection is
/// deliberately unit-wide rather than per-region: over-suppressing can only
/// silence a verdict, never invent one.
struct ClauseSets {
  std::set<std::string> privates;   ///< private/firstprivate/lastprivate/linear
  std::set<std::string> reductions; ///< reduction(op: x) names

  [[nodiscard]] bool covers(const std::string &n) const {
    return privates.count(n) > 0 || reductions.count(n) > 0;
  }
};

bool raceCheckedKind(const Directive &d) {
  if (d.family == "omp") {
    for (const auto &k : d.kind)
      if (k == "parallel" || k == "for" || k == "do" || k == "taskloop" ||
          k == "distribute" || k == "teams" || k == "simd")
        return true;
    return false;
  }
  if (d.family == "acc") {
    bool kernels = false, parallelish = false;
    for (const auto &k : d.kind) {
      if (k == "kernels") kernels = true;
      if (k == "parallel" || k == "loop") parallelish = true;
    }
    return parallelish && !kernels;
  }
  return false;
}

struct UnitEvidence {
  ClauseSets clauses;
  /// Source lines of loops governed by an inline-lowered parallel directive
  /// (OpenACC compute constructs, orphaned omp for/simd): the lowering keeps
  /// those bodies in their enclosing User function, so the loop's source
  /// line is the only way to recognise the parallel context.
  std::set<i32> parallelLoopLines;
  /// acc-governed subset: scalar verdicts are suppressed there (OpenACC
  /// defaults scalars to firstprivate, so an absent clause is not a defect).
  std::set<i32> accLoopLines;

  void collectStmt(const Stmt &s) {
    if (s.kind == StmtKind::Directive && s.directive) {
      const Directive &d = *s.directive;
      for (const auto &c : d.clauses) {
        if (c.name == "private" || c.name == "firstprivate" ||
            c.name == "lastprivate" || c.name == "linear") {
          for (const auto &a : c.arguments) {
            auto n = clauseBase(a);
            if (!n.empty()) clauses.privates.insert(std::move(n));
          }
        } else if (c.name == "reduction" && c.arguments.size() >= 2) {
          for (usize i = 1; i < c.arguments.size(); ++i) {
            auto n = clauseBase(c.arguments[i]);
            if (!n.empty()) clauses.reductions.insert(std::move(n));
          }
        }
      }
      if (raceCheckedKind(d) && !s.children.empty() && s.children[0] &&
          (s.children[0]->kind == StmtKind::For ||
           s.children[0]->kind == StmtKind::ForRange)) {
        parallelLoopLines.insert(static_cast<i32>(s.children[0]->loc.line));
        if (d.family == "acc")
          accLoopLines.insert(static_cast<i32>(s.children[0]->loc.line));
      }
    }
    for (const auto &child : s.children)
      if (child) collectStmt(*child);
    if (s.init) collectStmt(*s.init);
  }

  void collect(const TranslationUnit &unit) {
    for (const auto &fn : unit.functions)
      if (fn.body) collectStmt(*fn.body);
  }
};

// ----------------------------------------------------------- verdict run --

class DepsLinter {
public:
  DepsLinter(const ir::Module &module, const DepsOptions &options)
      : module_(module), options_(options) {}

  std::vector<Diagnostic> run() {
    if (options_.unit) evidence_.collect(*options_.unit);
    collectReduceMarkers();
    const ir::ModuleDeps md = ir::analyzeModule(module_);
    for (const auto &fd : md.functions) visitFunction(fd);
    return em_.take();
  }

private:
  const ir::Module &module_;
  const DepsOptions &options_;
  UnitEvidence evidence_;
  std::set<std::string> reduceMarked_; ///< outlined fns named by __kmpc_reduce
  Emitter em_;

  void collectReduceMarkers() {
    for (const auto &fn : module_.functions)
      for (const auto &b : fn.blocks)
        for (const auto &in : b.instrs)
          if (in.op == "call" && in.operands.size() >= 2 &&
              in.operands[0] == "@__kmpc_reduce")
            reduceMarked_.insert(in.operands[1]);
  }

  void emit(Check check, Severity sev, const ir::FunctionDeps &fd, const LoopInfo &L,
            i32 line, std::string symbol, std::string message) {
    em_.emit(check, sev, lang::Location{L.file, line >= 0 ? line : L.line, 1},
             std::move(symbol), fd.function, std::move(message));
  }

  void visitFunction(const ir::FunctionDeps &fd) {
    const bool outlined = fd.role == FunctionRole::Outlined;
    for (const auto &L : fd.loops) {
      const bool inlineParallel =
          !outlined && evidence_.parallelLoopLines.count(L.line) > 0;
      const bool accLoop = evidence_.accLoopLines.count(L.line) > 0;
      // In an outlined body only the outermost loop is work-shared; inner
      // loops run whole inside one thread and their carried dependences are
      // benign. Inline-lowered directives bind their own loop by line.
      if (outlined && L.depth == 0) {
        raceVerdicts(fd, L, /*scalarsSharedByDefault=*/false);
        scalarVerdicts(fd, L, /*useSharedBit=*/true);
      } else if (inlineParallel) {
        raceVerdicts(fd, L, /*scalarsSharedByDefault=*/!accLoop);
        if (!accLoop) scalarVerdicts(fd, L, /*useSharedBit=*/false);
      } else if (!outlined) {
        if (L.provablyParallel)
          emit(Check::ProvablyParallel, Severity::Note, fd, L, L.line,
               L.inductionName,
               "loop is provably parallel: every array access pair tested "
               "independent and every written scalar is induction, "
               "privatizable, or a reduction — candidate for a parallel "
               "directive");
      }
    }
  }

  [[nodiscard]] bool clauseCovered(const std::string &n) const {
    return options_.unit && evidence_.clauses.covers(n);
  }

  void raceVerdicts(const ir::FunctionDeps &fd, const LoopInfo &L,
                    bool scalarsSharedByDefault) {
    std::set<std::string> reported;
    for (const auto &dep : L.deps) {
      if (!dep.carried || !dep.proven) continue; // assumed edges never fire
      const std::string display =
          dep.array.front() == '@' ? dep.array.substr(1) : dep.array;
      if (clauseCovered(display)) continue;
      if (!reported.insert(dep.array).second) continue;
      std::string msg = "loop-carried " + std::string(ir::name(dep.kind)) +
                        " dependence on '" + display + "'";
      if (dep.distance)
        msg += " (distance " + std::to_string(*dep.distance) + ", direction " +
               ir::name(dep.direction) + ")";
      msg += ": iterations of this parallel loop are not independent";
      emit(Check::LoopCarriedRace, Severity::Error, fd, L, dep.line, display,
           std::move(msg));
    }
    for (const auto &s : L.scalars) {
      if (s.cls != ScalarClass::Carried) continue;
      const bool shared = s.shared || (scalarsSharedByDefault && !s.declaredInLoop);
      if (!shared || clauseCovered(s.display)) continue;
      emit(Check::LoopCarriedRace, Severity::Error, fd, L, s.line, s.display,
           "shared scalar '" + s.display +
               "' is read before it is written each iteration: its value is "
               "carried across iterations of this parallel loop");
    }
  }

  void scalarVerdicts(const ir::FunctionDeps &fd, const LoopInfo &L,
                      bool useSharedBit) {
    for (const auto &s : L.scalars) {
      const bool shared = useSharedBit ? s.shared : !s.declaredInLoop;
      if (!shared || clauseCovered(s.display)) continue;
      if (s.cls == ScalarClass::Reduction) {
        // Without the unit, the fork-path `__kmpc_reduce` marker is the only
        // clause witness — and the offload path emits none, so stay silent
        // for offloaded regions rather than risk a false fire.
        if (reduceMarked_.count(fd.function)) continue;
        if (!options_.unit && !str::startsWith(fd.function, "@omp_outlined")) continue;
        emit(Check::MissedReduction, Severity::Warning, fd, L, s.line, s.display,
             "scalar '" + s.display + "' is only ever updated as '" + s.display +
                 " " + s.op + "= expr' but no reduction(" + s.op + ":" + s.display +
                 ") clause covers it: concurrent updates will be lost");
      } else if (s.cls == ScalarClass::Privatizable) {
        emit(Check::MissedPrivatization, Severity::Warning, fd, L, s.line, s.display,
             "scalar '" + s.display +
                 "' is written before every read inside the loop but is shared: "
                 "privatise it (private(" + s.display + "))");
      }
    }
  }
};

// ------------------------------------------------- whole-array classifier --

/// Bounds of a Fortran section reference: the textual lo/hi expressions, or
/// empty strings for a full `a(:)` slice.
struct SectionShape {
  bool full = true;
  std::string lo, hi;
  [[nodiscard]] bool operator==(const SectionShape &) const = default;
};

std::string exprText(const Expr &e);

std::string exprText(const Expr &e) {
  switch (e.kind) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::Ident:
    return e.text;
  case ExprKind::Binary:
    if (e.args.size() == 2)
      return "(" + exprText(*e.args[0]) + e.text + exprText(*e.args[1]) + ")";
    break;
  case ExprKind::Unary:
    if (e.args.size() == 1) return e.text + exprText(*e.args[0]);
    break;
  default:
    break;
  }
  return "?";
}

[[nodiscard]] std::optional<SectionShape> sectionOf(const Expr &index) {
  if (index.kind != ExprKind::Range) return std::nullopt;
  SectionShape s;
  const Expr *lo = index.args.size() > 0 ? index.args[0].get() : nullptr;
  const Expr *hi = index.args.size() > 1 ? index.args[1].get() : nullptr;
  if (!lo && !hi) return s; // bare ':'
  s.full = false;
  if (lo) s.lo = exprText(*lo);
  if (hi) s.hi = exprText(*hi);
  if (s.lo.find('?') != std::string::npos || s.hi.find('?') != std::string::npos)
    return std::nullopt;
  return s;
}

[[nodiscard]] bool mentions(const Expr &e, const std::string &n) {
  if (e.kind == ExprKind::Ident && e.text == n) return true;
  for (const auto &a : e.args)
    if (a && mentions(*a, n)) return true;
  return false;
}

/// Scan `e` for references to array `base`; merge the worst classification.
void scanRhs(const Expr &e, const std::string &base,
             const std::optional<SectionShape> &lhsShape, AssignDep &result) {
  const auto worsen = [&](AssignDep d) {
    if (d == AssignDep::Carried) result = AssignDep::Carried;
    else if (d == AssignDep::Unknown && result == AssignDep::Independent)
      result = AssignDep::Unknown;
  };
  if (e.kind == ExprKind::Index && !e.args.empty() &&
      e.args[0]->kind == ExprKind::Ident && e.args[0]->text == base) {
    if (e.args.size() == 2 && e.args[1]) {
      if (const auto shape = sectionOf(*e.args[1])) {
        // Identical section (or both full slices): elementwise aligned.
        if (lhsShape && *shape == *lhsShape) return;
        // A different section of the same array overlaps the write shifted.
        worsen(AssignDep::Carried);
        return;
      }
      if (e.args[1]->kind == ExprKind::IntLit) {
        // Fixed element read while every element is written.
        worsen(AssignDep::Carried);
        return;
      }
    }
    worsen(AssignDep::Unknown); // computed subscripts / multi-index forms
    return;
  }
  if (e.kind == ExprKind::Ident && e.text == base) {
    // Whole-array read `a` (no section): aligned elementwise with a full
    // lhs slice, unanalyzable against a sub-section.
    if (lhsShape && lhsShape->full) return;
    worsen(AssignDep::Unknown);
    return;
  }
  if (e.kind == ExprKind::Call) {
    // args[0] is the callee name; an array passed to a call escapes.
    for (usize i = 1; i < e.args.size(); ++i)
      if (e.args[i] && mentions(*e.args[i], base)) {
        worsen(AssignDep::Unknown);
        return;
      }
    return;
  }
  for (const auto &a : e.args)
    if (a) scanRhs(*a, base, lhsShape, result);
}

} // namespace

AssignDep classifyArrayAssign(const Stmt &s) {
  if (s.kind != StmtKind::ArrayAssign || !s.cond || !s.step) return AssignDep::Unknown;
  const Expr &lhs = *s.cond;
  const Expr *baseExpr =
      lhs.kind == ExprKind::Index && !lhs.args.empty() ? lhs.args[0].get() : &lhs;
  if (!baseExpr || baseExpr->kind != ExprKind::Ident) return AssignDep::Unknown;
  const std::string &base = baseExpr->text;

  std::optional<SectionShape> lhsShape;
  if (lhs.kind == ExprKind::Ident) {
    lhsShape = SectionShape{}; // bare `a = expr`: full
  } else if (lhs.args.size() == 2 && lhs.args[1]) {
    lhsShape = sectionOf(*lhs.args[1]);
  }
  if (!lhsShape) return AssignDep::Unknown; // multi-index or computed section

  AssignDep result = AssignDep::Independent;
  scanRhs(*s.step, base, lhsShape, result);
  return result;
}

std::vector<Diagnostic> runDeps(const ir::Module &module, const DepsOptions &options) {
  return DepsLinter(module, options).run();
}

} // namespace sv::lint
