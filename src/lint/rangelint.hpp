// svale lint --range — the fourth check tier, fed by the interprocedural
// value-range analysis (ir/range.hpp) over the SSA overlay. Where the IR
// tier reasons about *reachability* of values and the dependence tier about
// *iterations*, this tier reasons about the values themselves: every
// integer SSA value carries an interval, and the checks compare those
// intervals against the hard limits the program text implies.
//
// Check catalogue (see DESIGN.md "Value-range analysis"):
//   out-of-bounds     a stack-array subscript whose interval is provably
//                     disjoint from [0, len-1] (Error), or whose interval
//                     has a *bounded* bound outside it (Warning — an
//                     unbounded side stays silent: ⊤ subscripts are the
//                     analysis giving up, not the program misbehaving)
//   division-by-zero  an sdiv/srem whose divisor interval is exactly
//                     [0, 0] (Error)
//   dead-branch       a conditional branch whose condition interval is
//                     [0, 0] outside any loop header — the true arm can
//                     never execute (Warning)
//   zero-trip-loop    a loop-header condition proven [0, 0]: the loop body
//                     never runs (Note — dead setup code is suspicious but
//                     often deliberate in ported benchmarks)
#pragma once

#include "ir/ir.hpp"
#include "lint/lint.hpp"

namespace sv::lint {

/// Run the value-range checks over one lowered module. The interprocedural
/// range analysis runs inside (bounded rounds over the call graph); the
/// diagnostics carry the instruction's source location and the enclosing
/// function name in `directive`.
[[nodiscard]] std::vector<Diagnostic> runRange(const ir::Module &module);

} // namespace sv::lint
