#include "lint/irlint.hpp"

#include <map>
#include <set>

#include "ir/cfg.hpp"
#include "ir/dataflow.hpp"
#include "support/strings.hpp"

namespace sv::lint {

namespace {

using ir::BitSet;
using ir::Cfg;
using ir::FunctionRole;
using ir::Instr;

lang::Location locOf(const Instr &in) { return {in.file, in.line, 1}; }

/// First instruction of the block that carries a source location, if any.
const Instr *firstLocated(const ir::Block &b) {
  for (const auto &in : b.instrs)
    if (in.line >= 0) return &in;
  return nullptr;
}

// ------------------------------------------------------- per-function run --

class FunctionLinter {
public:
  FunctionLinter(const ir::Function &fn, const std::set<std::string> &stubs,
                 Emitter &em)
      : fn_(fn), stubs_(stubs), em_(em), cfg_(ir::buildCfg(fn)) {}

  void run() {
    checkUnreachable();
    if (fn_.role == FunctionRole::Runtime) return;
    const auto slots = ir::trackedSlots(fn_);
    checkUninit(slots);
    checkDeadStores(slots);
    if (fn_.role == FunctionRole::User) checkTransfers();
  }

private:
  void add(Check check, Severity sev, lang::Location loc, std::string symbol,
           std::string message) {
    em_.emit(check, sev, loc, std::move(symbol), fn_.name, std::move(message));
  }

  // --------------------------------------------------- unreachable-block --

  // Only blocks carrying source-located instructions are worth a diagnostic:
  // the lowering synthesises location-free continuation blocks after
  // ret/break/continue by design, and those are not a defect in the program.
  void checkUnreachable() {
    for (const u32 b : ir::unreachableBlocks(cfg_)) {
      const Instr *in = firstLocated(fn_.blocks[b]);
      if (!in) continue;
      add(Check::UnreachableBlock, Severity::Warning, locOf(*in), fn_.blocks[b].name,
          "block '" + fn_.blocks[b].name + "' is unreachable from the entry");
    }
  }

  // --------------------------------------------------------- uninit-use --

  /// Slots the uninitialised-use check must stay silent on: `ptr`-typed
  /// allocas hold objects and pointers whose "value" is established by
  /// constructors and reference-taking callees the IR does not model, and a
  /// slot whose loaded value feeds a getelementptr is an array handle
  /// (Fortran arrays lower this way) initialised through `allocate`-style
  /// by-reference calls.
  std::set<std::string> uninitExempt(const std::set<std::string> &slots) const {
    std::set<std::string> exempt;
    std::map<std::string, std::string> loadedFrom; // load result -> slot
    for (const auto &b : fn_.blocks) {
      for (const auto &in : b.instrs) {
        if (in.op == "alloca" && (in.type == "ptr" || in.line < 0) &&
            slots.count(in.result))
          exempt.insert(in.result);
        else if (in.op == "load" && !in.operands.empty() && slots.count(in.operands[0]))
          loadedFrom.emplace(in.result, in.operands[0]);
        else if (in.op == "getelementptr" && !in.operands.empty()) {
          const auto it = loadedFrom.find(in.operands[0]);
          if (it != loadedFrom.end()) exempt.insert(it->second);
        }
      }
    }
    return exempt;
  }

  void checkUninit(const std::set<std::string> &slots) {
    const auto rd = ir::computeReachingDefs(fn_, cfg_, slots);
    const auto exempt = uninitExempt(slots);
    for (usize b = 0; b < fn_.blocks.size(); ++b) {
      if (!cfg_.reachable[b]) continue; // empty in-sets would all read "uninit"
      BitSet facts = rd.solution.in[b];
      const auto &instrs = fn_.blocks[b].instrs;
      for (usize i = 0; i < instrs.size(); ++i) {
        const auto &in = instrs[i];
        // A temp operand whose (unique) definition does not reach this use:
        // only a malformed CFG or use-before-def can produce it.
        for (const auto &op : in.operands) {
          if (!str::startsWith(op, "%")) continue;
          const u32 v = rd.idOf(op);
          if (v == static_cast<u32>(-1)) continue;
          bool reaches = false;
          for (const u32 fact : rd.defsOfValue[v]) reaches = reaches || facts.test(fact);
          if (!reaches)
            add(Check::UninitUse, Severity::Error, locOf(in), op,
                "use of " + op + " is not reached by its definition");
        }
        if (in.op == "load" && !in.operands.empty() && slots.count(in.operands[0]) &&
            !exempt.count(in.operands[0])) {
          const u32 v = rd.idOf("mem:" + in.operands[0]);
          bool real = false, uninit = false;
          if (v != static_cast<u32>(-1)) {
            for (const u32 fact : rd.defsOfValue[v]) {
              if (!facts.test(fact)) continue;
              (rd.defs[fact].uninit ? uninit : real) = true;
            }
          }
          if (uninit && !real)
            add(Check::UninitUse, Severity::Error, locOf(in), in.operands[0],
                "read of local " + in.operands[0] + " before any initialisation");
          else if (uninit && real)
            add(Check::UninitUse, Severity::Warning, locOf(in), in.operands[0],
                "local " + in.operands[0] +
                    " may be read before initialisation on some paths");
        }
        rd.step(facts, static_cast<u32>(b), i);
      }
    }
  }

  // --------------------------------------------------------- dead-store --

  void checkDeadStores(const std::set<std::string> &slots) {
    const auto lv = ir::computeLiveness(fn_, cfg_, slots);
    // Only slots that are read somewhere can have an *overwritten* store —
    // the interesting defect. A slot with no loads at all is a write-back
    // temp the lowering materialised for a non-addressable lvalue (Kokkos
    // view writes, accessor assignments); flagging those is pure noise, and
    // "variable never used" belongs to the AST tier anyway.
    std::set<std::string> loaded;
    // A slot that spills an argument may be a by-reference capture of an
    // outlined kernel (reduction write-backs store through it last); every
    // store to such a slot is observable by the caller.
    // ... and a location-less alloca is a temp the lowering materialised
    // for a non-addressable lvalue (view/accessor writes): its final
    // write-back store is the assignment's effect, not a defect.
    std::set<std::string> argSlots;
    for (const auto &b : fn_.blocks) {
      for (const auto &in : b.instrs) {
        if (in.op == "load" && !in.operands.empty() && slots.count(in.operands[0]))
          loaded.insert(in.operands[0]);
        else if (in.op == "store" && in.operands.size() >= 2 &&
                 str::startsWith(in.operands[0], "arg:"))
          argSlots.insert(in.operands[1]);
        else if (in.op == "alloca" && in.line < 0 && slots.count(in.result))
          argSlots.insert(in.result);
      }
    }

    for (usize b = 0; b < fn_.blocks.size(); ++b) {
      if (!cfg_.reachable[b]) continue; // already reported as unreachable
      BitSet live = lv.solution.out[b];
      const auto &instrs = fn_.blocks[b].instrs;
      for (auto it = instrs.rbegin(); it != instrs.rend(); ++it) {
        const auto &in = *it;
        if (in.op == "store" && in.operands.size() >= 2) {
          const auto sid = lv.slotIds.find(in.operands[1]);
          if (sid == lv.slotIds.end()) continue;
          if (!live.test(sid->second) && loaded.count(in.operands[1]) &&
              !argSlots.count(in.operands[1]))
            add(Check::DeadStore, Severity::Warning, locOf(in), in.operands[1],
                "stored value of local " + in.operands[1] +
                    " is overwritten before any read");
          live.reset(sid->second);
        } else if (in.op == "load" && !in.operands.empty()) {
          const auto sid = lv.slotIds.find(in.operands[0]);
          if (sid != lv.slotIds.end()) live.set(sid->second);
        }
      }
    }
  }

  // ---------------------------------------------------- device-transfer --

  /// Chase a value to its underlying storage: through `load`s (pointer held
  /// in a slot) and `getelementptr`s (element of the pointed-to buffer) back
  /// to an alloca result, a `@global`, or an `arg:`.
  void ensureDefs() const {
    if (!defs_.empty()) return;
    for (const auto &b : fn_.blocks)
      for (const auto &in : b.instrs)
        if (!in.result.empty()) defs_.emplace(in.result, &in);
  }

  std::string rootOf(std::string v) const {
    ensureDefs();
    for (usize depth = 0; depth < 16 && str::startsWith(v, "%"); ++depth) {
      const auto it = defs_.find(v);
      if (it == defs_.end()) break;
      const Instr &d = *it->second;
      if ((d.op == "load" || d.op == "getelementptr") && !d.operands.empty())
        v = d.operands[0];
      else
        break;
    }
    return v;
  }

  static bool isMemcpyKind(const std::string &op, std::string_view dir) {
    return str::startsWith(op, "@") && str::endsWith(op, dir);
  }

  bool isKernelLaunch(const Instr &in) const {
    const auto &callee = in.operands[0];
    return callee == "@__cudaPushCallConfiguration" ||
           callee == "@__hipPushCallConfiguration" || callee == "@__tgt_target_kernel" ||
           stubs_.count(callee) > 0;
  }

  /// Intra-block state machine over the offload driver calls of a host
  /// function. Cross-block transfer state is deliberately not propagated:
  /// the main loops of real codes re-copy per iteration through back edges,
  /// and flagging those would drown the signal.
  void checkTransfers() {
    ensureDefs();
    for (usize b = 0; b < fn_.blocks.size(); ++b) {
      if (!cfg_.reachable[b]) continue;
      // Host→device copies with no kernel launch or source update since.
      std::map<std::pair<std::string, std::string>, const Instr *> pendingH2D;
      // Device→host copies: host buffer root -> was a kernel launched since?
      std::map<std::string, bool> d2hState;
      for (const auto &in : fn_.blocks[b].instrs) {
        if (in.op == "call" && !in.operands.empty()) {
          const auto &callee = in.operands[0];
          const bool memcpyCall =
              str::startsWith(callee, "@") && str::endsWith(callee, "Memcpy");
          if (memcpyCall && in.operands.size() >= 5) {
            const std::string dst = rootOf(in.operands[1]);
            const std::string src = rootOf(in.operands[2]);
            const auto &kind = in.operands[4];
            if (isMemcpyKind(kind, "MemcpyHostToDevice")) {
              const auto key = std::make_pair(dst, src);
              if (pendingH2D.count(key))
                add(Check::DeviceTransfer, Severity::Warning, locOf(in), dst,
                    "host-to-device copy repeats an identical copy with no kernel "
                    "launch or source update in between");
              pendingH2D[key] = &in;
            } else if (isMemcpyKind(kind, "MemcpyDeviceToHost")) {
              d2hState[dst] = false;
            }
          } else if (isKernelLaunch(in)) {
            pendingH2D.clear(); // device state changed; re-copies are live
            for (auto &[root, launched] : d2hState) launched = true;
          } else if (!memcpyCall) {
            // An opaque call may touch any buffer — drop all state.
            pendingH2D.clear();
            d2hState.clear();
          }
        } else if (in.op == "store" && in.operands.size() >= 2) {
          const std::string root = rootOf(in.operands[1]);
          for (auto it = pendingH2D.begin(); it != pendingH2D.end();)
            it = it->first.second == root ? pendingH2D.erase(it) : std::next(it);
          d2hState.erase(root);
        } else if (in.op == "load" && !in.operands.empty() &&
                   str::startsWith(in.operands[0], "%")) {
          // An element read (load through a gep) of a host buffer whose
          // device→host snapshot predates the last kernel launch.
          const auto it = defs_.find(in.operands[0]);
          if (it != defs_.end() && it->second->op == "getelementptr") {
            const std::string root = rootOf(in.operands[0]);
            const auto st = d2hState.find(root);
            if (st != d2hState.end() && st->second)
              add(Check::DeviceTransfer, Severity::Warning, locOf(in), root,
                  "host read of a buffer copied back before the last kernel "
                  "launch; the data is stale");
          }
        }
      }
    }
  }

  const ir::Function &fn_;
  const std::set<std::string> &stubs_;
  Emitter &em_;
  Cfg cfg_;
  mutable std::map<std::string, const Instr *> defs_; ///< lazy result -> instr
};

} // namespace

std::vector<Diagnostic> runIr(const ir::Module &module) {
  std::set<std::string> stubs;
  for (const auto &fn : module.functions)
    if (fn.role == FunctionRole::DeviceStub) stubs.insert(fn.name); // names carry '@'

  Emitter em;
  for (const auto &fn : module.functions) FunctionLinter(fn, stubs, em).run();
  return em.take();
}

} // namespace sv::lint
