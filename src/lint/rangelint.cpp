#include "lint/rangelint.hpp"

#include <string>

#include "ir/callgraph.hpp"
#include "ir/range.hpp"

namespace sv::lint {

namespace {

using ir::Interval;

/// One report per (check, function, line, symbol): lowered subscript math
/// often touches the same array several times per statement.
std::string keyOf(Check check, const std::string &fn, i32 line,
                  const std::string &symbol) {
  return std::string(name(check)) + "|" + fn + "|" + std::to_string(line) + "|" +
         symbol;
}

/// The lowering keeps source-level subscripts: C-family geps index from 0,
/// Fortran geps from 1 (ir/lower.cpp emits the AST index untouched), so
/// the valid range of a stack array of n elements depends on the module's
/// source language.
[[nodiscard]] i64 indexBase(const ir::Module &m) {
  const auto &f = m.sourceFile;
  const auto dot = f.rfind('.');
  if (dot == std::string::npos) return 0;
  const std::string ext = f.substr(dot);
  return ext == ".f90" || ext == ".f95" || ext == ".f" ? 1 : 0;
}

class RangeLinter {
public:
  RangeLinter(const ir::Module &module)
      : module_(module), base_(indexBase(module)) {}

  std::vector<Diagnostic> run() {
    const ir::ModuleRanges mr = ir::analyzeModuleRanges(module_);
    for (const auto &fn : module_.functions) {
      if (fn.role == ir::FunctionRole::Runtime) continue;
      const ir::FunctionRanges *fr = mr.rangesOf(fn.name);
      if (!fr) continue;
      visit(fn, *fr);
    }
    return em_.take();
  }

private:
  const ir::Module &module_;
  i64 base_; ///< first valid subscript: 0 for C-family, 1 for Fortran
  Emitter em_;

  void emit(Check check, Severity sev, const ir::Function &fn, const ir::Instr &in,
            const std::string &symbol, std::string message) {
    em_.emitOnce(keyOf(check, fn.name, in.line, symbol), check, sev,
                 lang::Location{in.file, in.line, 1}, symbol, fn.name,
                 std::move(message));
  }

  /// A loop header: a reachable block with a reachable predecessor it
  /// dominates (same back-edge criterion the dependence tier uses).
  [[nodiscard]] bool isLoopHeader(const ir::FunctionRanges &fr, u32 b) const {
    for (const u32 p : fr.cfg.preds[b])
      if (fr.cfg.reachable[p] && fr.doms.dominates(b, p)) return true;
    return false;
  }

  void visit(const ir::Function &fn, const ir::FunctionRanges &fr) {
    const ir::ValueChaser chase(fn);
    for (usize b = 0; b < fn.blocks.size(); ++b) {
      if (b >= fr.cfg.size() || !fr.cfg.reachable[b]) continue;
      const u32 block = static_cast<u32>(b);
      for (const auto &in : fn.blocks[b].instrs) {
        if (in.op == "getelementptr" && in.operands.size() >= 2) {
          checkSubscript(fn, fr, chase, in, block);
        } else if ((in.op == "sdiv" || in.op == "srem") && in.operands.size() >= 2) {
          checkDivisor(fn, fr, in, block);
        } else if (in.op == "condbr" && !in.operands.empty()) {
          checkBranch(fn, fr, in, block);
        }
      }
    }
  }

  void checkSubscript(const ir::Function &fn, const ir::FunctionRanges &fr,
                      const ir::ValueChaser &chase, const ir::Instr &in, u32 block) {
    const std::string root = chase.root(in.operands[0]);
    const auto len = ir::arrayLength(fn, root);
    if (!len || *len <= 0) return; // heap, argument, global, or dynamic size
    const Interval idx = fr.valueAt(in.operands[1], block);
    if (idx.bot) return; // unreachable computation
    const i64 lo = base_;
    const i64 last = base_ + *len - 1;
    const std::string bounds =
        "[" + std::to_string(lo) + ", " + std::to_string(last) + "]";
    if (idx.hi < lo || idx.lo > last) {
      emit(Check::OutOfBounds, Severity::Error, fn, in, root,
           "subscript " + idx.str() + " is provably outside " + bounds);
      return;
    }
    // Only a *bounded* violating side warns: an unbounded bound is the
    // analysis giving up, and warning on ⊤ would flag every opaque index.
    if ((idx.hasLo() && idx.lo < lo) || (idx.hasHi() && idx.hi > last)) {
      emit(Check::OutOfBounds, Severity::Warning, fn, in, root,
           "subscript " + idx.str() + " may fall outside " + bounds);
    }
  }

  void checkDivisor(const ir::Function &fn, const ir::FunctionRanges &fr,
                    const ir::Instr &in, u32 block) {
    const Interval d = fr.valueAt(in.operands[1], block);
    if (d.isConst() && d.lo == 0)
      emit(Check::DivisionByZero, Severity::Error, fn, in, in.operands[1],
           std::string(in.op == "srem" ? "remainder" : "division") +
               " by a divisor proven to be zero");
  }

  void checkBranch(const ir::Function &fn, const ir::FunctionRanges &fr,
                   const ir::Instr &in, u32 block) {
    const Interval c = fr.valueAt(in.operands[0], block);
    if (!c.isConst() || c.lo != 0) return;
    if (isLoopHeader(fr, block)) {
      emit(Check::ZeroTripLoop, Severity::Note, fn, in, in.operands[0],
           "loop condition is false on entry: the body never runs");
    } else {
      emit(Check::DeadBranch, Severity::Warning, fn, in, in.operands[0],
           "branch condition is provably false: the true arm never runs");
    }
  }
};

} // namespace

std::vector<Diagnostic> runRange(const ir::Module &module) {
  return RangeLinter(module).run();
}

} // namespace sv::lint
