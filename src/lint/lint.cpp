#include "lint/lint.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "lang/directive.hpp"
#include "lint/depslint.hpp"
#include "support/strings.hpp"

namespace sv::lint {

namespace {

using namespace lang::ast;

// ------------------------------------------------------ directive shapes --

bool hasKind(const Directive &d, std::string_view k) {
  for (const auto &w : d.kind)
    if (w == k) return true;
  return false;
}

/// Unstructured data-movement forms: `target enter/exit data`, `target
/// update`, `acc enter/exit data`, `acc update`. They govern no statement.
bool isStandaloneData(const Directive &d) {
  return hasKind(d, "enter") || hasKind(d, "exit") || hasKind(d, "update");
}

bool isBarrierLike(const Directive &d) {
  return !d.kind.empty() &&
         (d.kind[0] == "barrier" || d.kind[0] == "taskwait" || d.kind[0] == "flush");
}

/// Regions executed by a single thread/task at a time: writes inside them
/// are not races even when the enclosing construct is parallel.
bool isSerializing(const Directive &d) {
  if (d.family != "omp") return false;
  for (const auto &k : d.kind)
    if (k == "single" || k == "master" || k == "critical" || k == "atomic" || k == "task" ||
        k == "sections" || k == "section" || k == "masked" || k == "ordered")
      // `taskloop` shares the "task" stem but is iteration-parallel.
      if (k != "task" || !hasKind(d, "taskloop")) return true;
  return false;
}

/// Regions whose body runs once per iteration/thread: the data-race and
/// reduction checks apply. `acc kernels` is excluded from the *syntactic*
/// checks — the compiler only parallelises what it can prove independent —
/// but whole-array assignments inside kernels regions are no longer blanket-
/// exempt: handleArrayAssign consults the dependence classifier
/// (lint::classifyArrayAssign) and fires on proven overlapping sections.
bool isRaceChecked(const Directive &d) {
  if (isStandaloneData(d) || isBarrierLike(d)) return false;
  if (d.family == "omp") {
    for (const auto &k : d.kind)
      if (k == "parallel" || k == "for" || k == "do" || k == "taskloop" || k == "distribute" ||
          k == "teams" || k == "simd")
        return true;
    return false;
  }
  if (d.family == "acc")
    return !hasKind(d, "kernels") && (hasKind(d, "parallel") || hasKind(d, "loop"));
  return false;
}

/// Regions that execute on a device with an explicit data environment: the
/// offload-mapping check applies. Every OpenACC compute construct offloads;
/// OpenMP offloads under `target`.
bool isOffload(const Directive &d) {
  if (isStandaloneData(d) || isBarrierLike(d)) return false;
  if (d.family == "omp") return hasKind(d, "target") && !hasKind(d, "data");
  if (d.family == "acc")
    return hasKind(d, "parallel") || hasKind(d, "kernels") || hasKind(d, "loop");
  return false;
}

/// Directives that require an associated loop statement.
bool bindsToLoop(const Directive &d) {
  if (isStandaloneData(d)) return false;
  for (const auto &k : d.kind)
    if (k == "for" || k == "do" || k == "loop" || k == "distribute" || k == "taskloop" ||
        k == "simd" || k == "concurrent")
      return true;
  return false;
}

// --------------------------------------------------------- clause model --

/// `map(to: a[0:n])` carries a section; `copyin(a(1:n))` a Fortran slice.
/// The lint checks only need the base variable name.
std::string baseName(std::string_view arg) {
  usize end = arg.size();
  for (usize i = 0; i < arg.size(); ++i)
    if (arg[i] == '[' || arg[i] == '(') {
      end = i;
      break;
    }
  auto s = str::trim(arg.substr(0, end));
  while (!s.empty() && (s.front() == '*' || s.front() == '&')) s.remove_prefix(1);
  return std::string(s);
}

bool isMapKeyword(const std::string &w) {
  static const char *kWords[] = {"to",     "from",  "tofrom",  "alloc", "release",
                                 "delete", "always", "close",  "present"};
  for (const auto *k : kWords)
    if (w == k) return true;
  return false;
}

/// Split a data clause into its access mode and variable names.
/// Returns true when the clause is a data clause at all.
bool dataClauseVars(const DirectiveClause &c, bool &readOnly, std::vector<std::string> &names) {
  names.clear();
  usize first = 0;
  std::string mode;
  if (c.name == "map") {
    // splitClauseArgs turned "to: a, b" into {"to", "a", "b"}; a missing
    // keyword means the default tofrom mapping.
    if (!c.arguments.empty() && isMapKeyword(c.arguments[0])) {
      mode = c.arguments[0];
      first = 1;
      if (c.arguments.size() > 1 && isMapKeyword(c.arguments[1])) first = 2; // always to: x
      if (first == 2) mode = c.arguments[1];
    } else {
      mode = "tofrom";
    }
  } else if (c.name == "copyin" || c.name == "present") {
    mode = "to";
  } else if (c.name == "copyout" || c.name == "copy" || c.name == "create" ||
             c.name == "deviceptr" || c.name == "device" || c.name == "use_device" ||
             c.name == "host" || c.name == "self" || c.name == "attach") {
    mode = "tofrom";
  } else {
    return false;
  }
  readOnly = mode == "to";
  // `present` promises the data is already on the device in an unknown
  // mode; treating it as writable avoids false write-to-readonly reports.
  if (c.name == "present") readOnly = false;
  for (usize i = first; i < c.arguments.size(); ++i) {
    auto n = baseName(c.arguments[i]);
    if (!n.empty()) names.push_back(std::move(n));
  }
  return true;
}

bool isPrivatizingClause(const std::string &name) {
  return name == "private" || name == "firstprivate" || name == "lastprivate" ||
         name == "linear";
}

// ------------------------------------------------------------- regions --

struct Region {
  const Directive *dir = nullptr;
  std::string dirText;
  bool raceChecked = false;
  bool offload = false;
  // Clause-derived sets.
  std::set<std::string> privates;              ///< private/firstprivate/lastprivate/linear
  std::set<std::string> clausePrivates;        ///< only private-family (for unused check)
  std::map<std::string, std::string> reductions; ///< var -> operator
  std::set<std::string> mapped;                ///< any region-level data coverage
  std::set<std::string> readOnly;              ///< map(to:)/copyin
  std::set<std::string> writable;              ///< tofrom/from/alloc/copy/copyout/create/...
  // Walk-accumulated state.
  std::set<std::string> declared;              ///< names declared inside the region
  std::set<std::string> referenced;            ///< every identifier seen inside
  std::map<std::string, lang::Location> arraysTouched;
  std::map<std::string, lang::Location> arraysWritten;
  std::set<std::string> reported;              ///< per-(check,symbol) dedup keys
};

// ------------------------------------------------------------- checker --

class Checker {
public:
  explicit Checker(const TranslationUnit &unit) : unit_(unit) {}

  std::vector<Diagnostic> run() {
    collectResident();
    for (const auto &fn : unit_.functions) {
      if (!fn.body) continue;
      arrays_.clear();
      for (const auto &p : fn.params) {
        if (p.type.pointer > 0) arrays_.insert(p.name);
      }
      visitStmt(*fn.body);
    }
    return em_.take();
  }

private:
  const TranslationUnit &unit_;
  Emitter em_;
  std::set<std::string> resident_;  ///< TU-wide enter/exit/update data names
  std::set<std::string> arrays_;    ///< current function's array-like names
  std::vector<Region> stack_;
  int serialDepth_ = 0;             ///< single/master/critical/task nesting
  std::set<std::string> allowedReductionReads_;

  // ---- diagnostics -----------------------------------------------------

  void emit(Check check, Severity sev, lang::Location loc, std::string symbol,
            std::string directive, std::string message) {
    em_.emit(check, sev, loc, std::move(symbol), std::move(directive),
             std::move(message));
  }

  /// Deduplicated per enclosing region: one report per (check, symbol).
  void emitOnce(Region &r, Check check, Severity sev, lang::Location loc,
                const std::string &symbol, const std::string &message) {
    const std::string key = std::string(name(check)) + ":" + symbol;
    if (!r.reported.insert(key).second) return;
    emit(check, sev, loc, symbol, r.dirText, message);
  }

  // ---- TU pre-pass -----------------------------------------------------

  /// Names mapped by unstructured / structured data directives anywhere in
  /// the unit (`target enter data map(to: u)`, `acc data copyin(a)`, ...)
  /// count as device-resident for every offload region: the corpus maps
  /// long-lived arrays once at startup.
  void collectResident() {
    for (const auto &fn : unit_.functions)
      if (fn.body) collectResidentStmt(*fn.body);
  }

  void collectResidentStmt(const Stmt &s) {
    if (s.kind == StmtKind::Directive && s.directive) {
      const auto &d = *s.directive;
      if (isStandaloneData(d) || hasKind(d, "data")) {
        for (const auto &c : d.clauses) {
          bool ro = false;
          std::vector<std::string> names;
          if (dataClauseVars(c, ro, names))
            for (auto &n : names) resident_.insert(std::move(n));
        }
      }
    }
    for (const auto &child : s.children)
      if (child) collectResidentStmt(*child);
  }

  // ---- name classification --------------------------------------------

  [[nodiscard]] bool declaredInRegion(const std::string &n) const {
    for (const auto &r : stack_)
      if (r.declared.count(n) || r.privates.count(n)) return true;
    return false;
  }

  [[nodiscard]] const std::string *reductionOp(const std::string &n) const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      const auto found = it->reductions.find(n);
      if (found != it->reductions.end()) return &found->second;
    }
    return nullptr;
  }

  [[nodiscard]] Region *innermostRaceRegion() {
    if (serialDepth_ > 0) return nullptr;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
      if (it->raceChecked) return &*it;
    return nullptr;
  }

  [[nodiscard]] Region *innermostOffloadRegion() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
      if (it->offload) return &*it;
    return nullptr;
  }

  [[nodiscard]] bool isArrayExpr(const Expr &e) const {
    if (e.kind != ExprKind::Ident) return false;
    return arrays_.count(e.text) > 0 || e.valueType.pointer > 0;
  }

  void declare(const std::string &n, bool isArray) {
    if (isArray) arrays_.insert(n);
    if (!stack_.empty()) stack_.back().declared.insert(n);
  }

  void reference(const std::string &n) {
    if (!stack_.empty()) stack_.back().referenced.insert(n);
  }

  void touchArray(const std::string &n, lang::Location loc, bool write) {
    if (Region *r = innermostOffloadRegion()) {
      r->arraysTouched.emplace(n, loc);
      if (write) r->arraysWritten.emplace(n, loc);
    }
  }

  // ---- statements ------------------------------------------------------

  void visitStmt(const Stmt &s) {
    switch (s.kind) {
    case StmtKind::Directive:
      handleDirective(s);
      return;
    case StmtKind::DeclStmt:
      for (const auto &d : s.decls) {
        declare(d.name, !d.arrayDims.empty() || d.type.pointer > 0);
        if (d.init) visitExpr(*d.init);
        for (const auto &dim : d.arrayDims)
          if (dim) visitExpr(*dim);
      }
      return;
    case StmtKind::For:
      if (s.init) {
        // The loop variable of an associated (or nested) loop is private to
        // the iteration even when the init re-uses an outer declaration.
        if (s.init->kind == StmtKind::ExprStmt && s.init->cond &&
            s.init->cond->kind == ExprKind::Assign && !s.init->cond->args.empty() &&
            s.init->cond->args[0]->kind == ExprKind::Ident)
          declare(s.init->cond->args[0]->text, false);
        visitStmt(*s.init);
      }
      if (s.cond) visitExpr(*s.cond);
      if (s.step) visitExpr(*s.step);
      break;
    case StmtKind::ForRange:
      if (!s.loopVar.empty()) {
        declare(s.loopVar, false);
        reference(s.loopVar);
      }
      if (s.cond) visitExpr(*s.cond);
      if (s.step) visitExpr(*s.step);
      break;
    case StmtKind::ArrayAssign:
      handleArrayAssign(s);
      return;
    default:
      if (s.cond) visitExpr(*s.cond);
      if (s.step) visitExpr(*s.step);
      break;
    }
    for (const auto &child : s.children)
      if (child) visitStmt(*child);
  }

  /// The innermost enclosing `acc kernels` region, if any. Kernels bodies
  /// keep sequential semantics for anything the compiler cannot prove
  /// independent, so they are exempt from the syntactic race checks — but
  /// not from *proven* dependence verdicts.
  [[nodiscard]] Region *innermostKernelsRegion() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
      if (it->dir && hasKind(*it->dir, "kernels")) return &*it;
    return nullptr;
  }

  /// Fortran whole-array assignment `a(:) = expr`: a write to every element
  /// from a single statement. Inside a worksharing-free parallel region the
  /// assignment is repeated by every thread (a race regardless of the rhs);
  /// inside `acc kernels` the dependence classifier decides — a proven
  /// overlapping shifted section (`a(2:n) = a(1:n-1)`) races under the
  /// parallelization the directive requests, while aligned elementwise
  /// assignments stay exempt as before.
  void handleArrayAssign(const Stmt &s) {
    if (s.cond) {
      const Expr &lhs = *s.cond;
      const Expr *base = lhs.kind == ExprKind::Index && !lhs.args.empty() ? lhs.args[0].get()
                                                                          : &lhs;
      if (base->kind == ExprKind::Ident) {
        reference(base->text);
        touchArray(base->text, base->loc, /*write=*/true);
        if (Region *r = innermostRaceRegion()) {
          if (!declaredInRegion(base->text))
            emitOnce(*r, Check::DataRace, Severity::Error, base->loc, base->text,
                     "whole-array assignment to shared '" + base->text +
                         "' is repeated by every iteration of the parallel region");
        } else if (Region *k = innermostKernelsRegion()) {
          if (!declaredInRegion(base->text) &&
              classifyArrayAssign(s) == AssignDep::Carried)
            emitOnce(*k, Check::DataRace, Severity::Error, base->loc, base->text,
                     "whole-array assignment to '" + base->text +
                         "' reads an overlapping section of '" + base->text +
                         "' shifted against the write: parallelizing this kernels "
                         "region reorders the proven loop-carried dependence");
        }
      }
      for (const auto &a : lhs.args)
        if (a && a.get() != base) visitExpr(*a);
    }
    if (s.step) visitExpr(*s.step);
    for (const auto &child : s.children)
      if (child) visitStmt(*child);
  }

  // ---- directives ------------------------------------------------------

  void handleDirective(const Stmt &s) {
    const Directive &d = *s.directive;
    const std::string dirText = lang::directiveToString(d);

    if (isBarrierLike(d)) {
      checkBarrierPlacement(d, dirText);
      return;
    }
    if (isStandaloneData(d)) return; // resident pre-pass already consumed it
    if (d.family == "fortran") {     // DO CONCURRENT wrapper: no clause data
      for (const auto &child : s.children)
        if (child) visitStmt(*child);
      return;
    }

    checkNesting(s, d, dirText);

    if (isSerializing(d)) {
      ++serialDepth_;
      for (const auto &child : s.children)
        if (child) visitStmt(*child);
      --serialDepth_;
      return;
    }

    const bool race = isRaceChecked(d);
    const bool offload = isOffload(d);
    if (!race && !offload) {
      for (const auto &child : s.children)
        if (child) visitStmt(*child);
      return;
    }

    Region r;
    r.dir = &d;
    r.dirText = dirText;
    r.raceChecked = race;
    r.offload = offload;
    for (const auto &c : d.clauses) {
      if (isPrivatizingClause(c.name)) {
        for (const auto &a : c.arguments) {
          const auto n = baseName(a);
          if (n.empty()) continue;
          r.privates.insert(n);
          if (c.name != "linear") r.clausePrivates.insert(n);
        }
      } else if (c.name == "reduction" && c.arguments.size() >= 2) {
        for (usize i = 1; i < c.arguments.size(); ++i) {
          const auto n = baseName(c.arguments[i]);
          if (!n.empty()) r.reductions[n] = c.arguments[0];
        }
      } else {
        bool ro = false;
        std::vector<std::string> names;
        if (dataClauseVars(c, ro, names)) {
          for (const auto &n : names) {
            r.mapped.insert(n);
            (ro ? r.readOnly : r.writable).insert(n);
          }
        }
      }
    }
    for (const auto &[n, op] : r.reductions) r.mapped.insert(n), r.writable.insert(n);
    for (const auto &n : r.privates) r.mapped.insert(n);

    // A new parallel team: serialization from enclosing single/master does
    // not extend into it (the Fortran parallel/single/taskloop stack).
    const int savedSerial = serialDepth_;
    if (race) serialDepth_ = 0;
    stack_.push_back(std::move(r));
    for (const auto &child : s.children)
      if (child) visitStmt(*child);
    Region done = std::move(stack_.back());
    stack_.pop_back();
    serialDepth_ = savedSerial;

    finishRegion(done);
    if (!stack_.empty()) {
      auto &parent = stack_.back();
      parent.referenced.insert(done.referenced.begin(), done.referenced.end());
    }
  }

  void finishRegion(Region &r) {
    if (r.offload) {
      for (const auto &[n, loc] : r.arraysTouched) {
        if (r.declared.count(n) || r.privates.count(n) || r.reductions.count(n)) continue;
        if (r.mapped.count(n) || resident_.count(n)) continue;
        emitOnce(r, Check::OffloadMapping, Severity::Error, loc, n,
                 "array '" + n + "' is referenced in this offload region but no map/copy "
                 "clause (or enclosing data directive) covers it");
      }
      for (const auto &[n, loc] : r.arraysWritten) {
        if (r.declared.count(n) || r.privates.count(n) || r.reductions.count(n)) continue;
        if (!r.readOnly.count(n) || r.writable.count(n) || resident_.count(n)) continue;
        emitOnce(r, Check::OffloadMapping, Severity::Error, loc, n,
                 "array '" + n + "' is mapped read-only (map(to:)/copyin) but written "
                 "inside the region");
      }
    }
    for (const auto &n : r.clausePrivates) {
      if (r.referenced.count(n)) continue;
      emitOnce(r, Check::UnusedPrivate, Severity::Warning, r.dir->loc, n,
               "'" + n + "' is privatised but never referenced in the region");
    }
  }

  void checkBarrierPlacement(const Directive &d, const std::string &dirText) {
    if (d.kind.empty() || d.kind[0] != "barrier") return;
    if (serialDepth_ > 0) {
      emit(Check::DirectiveNesting, Severity::Error, d.loc, "", dirText,
           "barrier inside a single/master/critical/task region deadlocks: the other "
           "threads never reach it");
      return;
    }
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (!it->raceChecked) continue;
      const Directive &rd = *it->dir;
      // Inside a worksharing/taskloop/distribute region a barrier is
      // non-conforming; directly inside `parallel` it is fine.
      if (hasKind(rd, "for") || hasKind(rd, "do") || hasKind(rd, "taskloop") ||
          hasKind(rd, "distribute") || hasKind(rd, "sections")) {
        emit(Check::DirectiveNesting, Severity::Error, d.loc, "", dirText,
             "barrier may not appear inside the worksharing region '" + it->dirText + "'");
      }
      return; // only the innermost parallel-ish region binds the barrier
    }
  }

  void checkNesting(const Stmt &s, const Directive &d, const std::string &dirText) {
    if (bindsToLoop(d)) {
      const Stmt *body = s.children.empty() ? nullptr : s.children[0].get();
      const bool loop =
          body && (body->kind == StmtKind::For || body->kind == StmtKind::ForRange);
      if (!loop)
        emit(Check::DirectiveNesting, Severity::Error, d.loc, "", dirText,
             "directive requires an associated loop but governs " +
                 std::string(body ? "a non-loop statement" : "no statement"));
    }
    const auto enclosingHas = [&](std::string_view k) {
      for (const auto &r : stack_)
        if (hasKind(*r.dir, k)) return true;
      return false;
    };
    if (hasKind(d, "distribute") && !hasKind(d, "teams") && !enclosingHas("teams"))
      emit(Check::DirectiveNesting, Severity::Error, d.loc, "", dirText,
           "'distribute' must be closely nested inside a 'teams' region");
    if (d.family == "omp" && hasKind(d, "teams") && !hasKind(d, "target") &&
        !enclosingHas("target"))
      emit(Check::DirectiveNesting, Severity::Warning, d.loc, "", dirText,
           "'teams' is not nested inside a 'target' region; it will run on the host");
  }

  // ---- expressions -----------------------------------------------------

  void visitExpr(const Expr &e) {
    switch (e.kind) {
    case ExprKind::Ident:
      handleIdentRead(e);
      return;
    case ExprKind::Assign:
      handleAssign(e);
      return;
    case ExprKind::Unary:
      if ((e.text == "++" || e.text == "--" || e.text == "post++" || e.text == "post--") &&
          !e.args.empty()) {
        handleIncrement(e);
        return;
      }
      break;
    case ExprKind::Index:
      if (!e.args.empty() && e.args[0]->kind == ExprKind::Ident) {
        reference(e.args[0]->text);
        touchArray(e.args[0]->text, e.args[0]->loc, /*write=*/false);
        checkReductionRead(*e.args[0]);
        for (usize i = 1; i < e.args.size(); ++i)
          if (e.args[i]) visitExpr(*e.args[i]);
        return;
      }
      break;
    case ExprKind::Call:
      // args[0] is the callee; a bare function name is not a data access.
      for (usize i = 0; i < e.args.size(); ++i) {
        if (!e.args[i]) continue;
        if (i == 0 && e.args[i]->kind == ExprKind::Ident) continue;
        visitExpr(*e.args[i]);
      }
      if (e.body) visitStmt(*e.body);
      return;
    case ExprKind::Lambda:
      for (const auto &p : e.params) declare(p.name, p.type.pointer > 0);
      if (e.body) visitStmt(*e.body);
      return;
    default:
      break;
    }
    for (const auto &a : e.args)
      if (a) visitExpr(*a);
    if (e.body) visitStmt(*e.body);
  }

  void handleIdentRead(const Expr &e) {
    reference(e.text);
    if (isArrayExpr(e)) touchArray(e.text, e.loc, /*write=*/false);
    checkReductionRead(e);
  }

  /// A reduction variable may only appear inside its own accumulation
  /// statement; any other read observes an undefined partial value.
  void checkReductionRead(const Expr &e) {
    if (allowedReductionReads_.count(e.text)) return;
    const std::string *op = reductionOp(e.text);
    if (!op) return;
    if (Region *r = innermostRaceRegion())
      emitOnce(*r, Check::ReductionMisuse, Severity::Warning, e.loc, e.text,
               "reduction variable '" + e.text + "' is read outside its reduction "
               "statement; intermediate values are undefined inside the region");
  }

  /// Does `e` mention any name that is private to the current iteration
  /// (clause-private, region-declared, or a loop induction variable)?
  [[nodiscard]] bool mentionsPrivateName(const Expr &e) const {
    if (e.kind == ExprKind::Ident && declaredInRegion(e.text)) return true;
    for (const auto &a : e.args)
      if (a && mentionsPrivateName(*a)) return true;
    return false;
  }

  [[nodiscard]] static bool mentionsName(const Expr &e, const std::string &n) {
    if (e.kind == ExprKind::Ident && e.text == n) return true;
    for (const auto &a : e.args)
      if (a && mentionsName(*a, n)) return true;
    return false;
  }

  void handleAssign(const Expr &e) {
    SV_CHECK(e.args.size() >= 2, "assign without two operands");
    const Expr &lhs = *e.args[0];
    const Expr &rhs = *e.args[1];

    if (lhs.kind == ExprKind::Ident) {
      if (!handleScalarWrite(e, lhs, rhs)) visitExpr(rhs);
      return;
    }
    if (lhs.kind == ExprKind::Index && !lhs.args.empty() &&
        lhs.args[0]->kind == ExprKind::Ident) {
      const Expr &base = *lhs.args[0];
      reference(base.text);
      touchArray(base.text, base.loc, /*write=*/true);
      if (Region *r = innermostRaceRegion(); r && !declaredInRegion(base.text)) {
        bool indexVaries = false;
        for (usize i = 1; i < lhs.args.size(); ++i)
          if (lhs.args[i] && mentionsPrivateName(*lhs.args[i])) indexVaries = true;
        if (!indexVaries)
          emitOnce(*r, Check::DataRace, Severity::Warning, lhs.loc, base.text,
                   "every iteration writes the same element of shared '" + base.text +
                       "': the index does not depend on the loop");
      }
      for (usize i = 1; i < lhs.args.size(); ++i)
        if (lhs.args[i]) visitExpr(*lhs.args[i]);
      visitExpr(rhs);
      return;
    }
    if (lhs.kind == ExprKind::Unary && lhs.text == "*" && !lhs.args.empty() &&
        lhs.args[0]->kind == ExprKind::Ident) {
      const Expr &base = *lhs.args[0];
      reference(base.text);
      touchArray(base.text, base.loc, /*write=*/true);
      if (Region *r = innermostRaceRegion(); r && !declaredInRegion(base.text))
        emitOnce(*r, Check::DataRace, Severity::Warning, lhs.loc, base.text,
                 "write through shared pointer '" + base.text +
                     "' targets the same location in every iteration");
      visitExpr(rhs);
      return;
    }
    // Member stores and other exotic lvalues: record reads, no race claim.
    visitExpr(lhs);
    visitExpr(rhs);
  }

  /// `x = ...` / `x op= ...` with a plain identifier target. Returns true
  /// when the rhs has already been visited.
  bool handleScalarWrite(const Expr &assign, const Expr &lhs, const Expr &rhs) {
    reference(lhs.text);
    if (declaredInRegion(lhs.text)) return false;

    if (const std::string *op = reductionOp(lhs.text)) {
      if (!matchesReductionPattern(assign, lhs.text, *op)) {
        if (Region *r = innermostRaceRegion())
          emitOnce(*r, Check::ReductionMisuse, Severity::Error, assign.loc, lhs.text,
                   "reduction(" + *op + ":" + lhs.text + ") variable is written outside "
                   "its reduction pattern ('" + lhs.text + " " + *op + "= expr' or '" +
                       lhs.text + " = " + lhs.text + " " + *op + " expr')");
        return false;
      }
      // The rhs legitimately reads the variable inside the pattern.
      allowedReductionReads_.insert(lhs.text);
      visitExpr(rhs);
      allowedReductionReads_.erase(lhs.text);
      return true;
    }

    Region *r = innermostRaceRegion();
    if (!r) return false;
    const bool compound = assign.text != "=";
    const bool selfReferential = assign.text == "=" && mentionsName(rhs, lhs.text);
    if (compound || selfReferential) {
      emitOnce(*r, Check::ReductionMisuse, Severity::Error, assign.loc, lhs.text,
               "accumulation into shared '" + lhs.text + "' without a reduction(" +
                   (assign.text == "=" ? "op" : assign.text.substr(0, assign.text.size() - 1)) +
                   ":" + lhs.text + ") clause: concurrent updates will be lost");
    } else {
      emitOnce(*r, Check::DataRace, Severity::Error, assign.loc, lhs.text,
               "write to shared variable '" + lhs.text + "' inside '" + r->dirText +
                   "': every iteration races on it (privatise it or move the write out)");
    }
    return false;
  }

  [[nodiscard]] static bool matchesReductionPattern(const Expr &assign, const std::string &var,
                                                    const std::string &op) {
    if (assign.text == op + "=") return true;
    if (assign.text != "=") return false;
    const Expr &rhs = *assign.args[1];
    // `x = x op e` / `x = e op x` (one level, the corpus shape).
    if (rhs.kind == ExprKind::Binary && rhs.text == op)
      for (const auto &side : rhs.args)
        if (side && mentionsName(*side, var)) return true;
    // `x = max(x, e)` for min/max reductions.
    if ((op == "max" || op == "min") && rhs.kind == ExprKind::Call && !rhs.args.empty() &&
        rhs.args[0]->kind == ExprKind::Ident && rhs.args[0]->text == op)
      return mentionsName(rhs, var);
    return false;
  }

  void handleIncrement(const Expr &e) {
    const Expr &target = *e.args[0];
    if (target.kind == ExprKind::Ident) {
      reference(target.text);
      if (declaredInRegion(target.text)) return;
      if (reductionOp(target.text)) return; // x++ under reduction(+/-) is conforming-ish
      if (Region *r = innermostRaceRegion())
        emitOnce(*r, Check::ReductionMisuse, Severity::Error, e.loc, target.text,
                 "increment of shared '" + target.text + "' without a reduction clause: "
                 "concurrent updates will be lost");
      return;
    }
    visitExpr(target);
  }
};

} // namespace

// -------------------------------------------------------------- public --

const char *name(Severity s) {
  switch (s) {
  case Severity::Note: return "note";
  case Severity::Warning: return "warning";
  case Severity::Error: return "error";
  }
  return "?";
}

std::optional<Severity> severityFromName(std::string_view name) {
  if (name == "note") return Severity::Note;
  if (name == "warning") return Severity::Warning;
  if (name == "error") return Severity::Error;
  return std::nullopt;
}

const char *name(Check c) {
  switch (c) {
  case Check::DataRace: return "data-race";
  case Check::ReductionMisuse: return "reduction-misuse";
  case Check::OffloadMapping: return "offload-mapping";
  case Check::DirectiveNesting: return "directive-nesting";
  case Check::UnusedPrivate: return "unused-private";
  case Check::UninitUse: return "uninit-use";
  case Check::DeadStore: return "dead-store";
  case Check::UnreachableBlock: return "unreachable-block";
  case Check::DeviceTransfer: return "device-transfer";
  case Check::LoopCarriedRace: return "loop-carried-race";
  case Check::MissedReduction: return "missed-reduction";
  case Check::MissedPrivatization: return "missed-privatization";
  case Check::ProvablyParallel: return "provably-parallel";
  case Check::OutOfBounds: return "out-of-bounds";
  case Check::DivisionByZero: return "division-by-zero";
  case Check::DeadBranch: return "dead-branch";
  case Check::ZeroTripLoop: return "zero-trip-loop";
  }
  return "?";
}

std::vector<Diagnostic> run(const lang::ast::TranslationUnit &unit) {
  return Checker(unit).run();
}

void Emitter::emit(Check check, Severity sev, lang::Location loc, std::string symbol,
                   std::string scope, std::string message) {
  diags_.push_back(Diagnostic{check, sev, loc, std::move(symbol), std::move(scope),
                              std::move(message)});
}

void Emitter::emitOnce(const std::string &key, Check check, Severity sev,
                       lang::Location loc, std::string symbol, std::string scope,
                       std::string message) {
  if (!seen_.insert(key).second) return;
  emit(check, sev, loc, std::move(symbol), std::move(scope), std::move(message));
}

std::vector<Diagnostic> Emitter::take() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic &a, const Diagnostic &b) {
                     if (a.loc.file != b.loc.file) return a.loc.file < b.loc.file;
                     if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                     if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                     return static_cast<u8>(a.check) < static_cast<u8>(b.check);
                   });
  seen_.clear();
  return std::move(diags_);
}

usize Report::count(Severity s) const {
  usize n = 0;
  for (const auto &u : units)
    for (const auto &d : u.diags)
      if (d.severity == s) ++n;
  return n;
}

usize Report::countAtOrAbove(Severity threshold) const {
  usize n = 0;
  for (const auto &u : units)
    for (const auto &d : u.diags)
      if (d.severity >= threshold) ++n;
  return n;
}

std::string Report::renderText(const lang::SourceManager *sm) const {
  std::string out;
  for (const auto &u : units) {
    for (const auto &d : u.diags) {
      if (sm && d.loc.file >= 0) {
        out += sm->describe(d.loc);
      } else {
        out += u.file + ":" + std::to_string(d.loc.line) + ":" + std::to_string(d.loc.col);
      }
      out += ": ";
      out += name(d.severity);
      out += ": [";
      out += name(d.check);
      out += "] ";
      out += d.message;
      if (!d.directive.empty()) out += " [in '" + d.directive + "']";
      out += "\n";
    }
  }
  const usize errors = count(Severity::Error), warnings = count(Severity::Warning);
  if (errors == 0 && warnings == 0) {
    out += "lint clean";
    if (!app.empty()) out += ": " + app + "/" + model;
    out += "\n";
  } else {
    out += std::to_string(errors) + " error(s), " + std::to_string(warnings) + " warning(s)\n";
  }
  return out;
}

json::Value Report::toJson() const {
  json::Object root;
  root.emplace("app", app);
  root.emplace("model", model);
  root.emplace("errors", count(Severity::Error));
  root.emplace("warnings", count(Severity::Warning));
  json::Array unitArr;
  for (const auto &u : units) {
    json::Object uo;
    uo.emplace("file", u.file);
    json::Array diagArr;
    for (const auto &d : u.diags) {
      json::Object dobj;
      dobj.emplace("check", name(d.check));
      dobj.emplace("severity", name(d.severity));
      dobj.emplace("line", static_cast<i64>(d.loc.line));
      dobj.emplace("col", static_cast<i64>(d.loc.col));
      dobj.emplace("symbol", d.symbol);
      dobj.emplace("directive", d.directive);
      dobj.emplace("message", d.message);
      diagArr.emplace_back(std::move(dobj));
    }
    uo.emplace("diagnostics", std::move(diagArr));
    unitArr.emplace_back(std::move(uo));
  }
  root.emplace("units", std::move(unitArr));
  return json::Value(std::move(root));
}

} // namespace sv::lint
