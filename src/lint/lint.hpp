// svale lint — a model-aware parallel-semantics checker over the sema'd
// AST. The paper's premise is that T_sem sees model semantics the
// programmer doesn't write (directive nodes, hidden template arguments,
// implicit conversions); this pass *checks* that representation instead of
// only measuring it. It walks a `lang::ast::TranslationUnit` after
// `sv::minic::analyse` (or `minif::parseFortran`) and emits structured
// diagnostics with source locations and severities.
//
// Check catalogue (see DESIGN.md "Lint subsystem"):
//   data-race          writes to shared variables reachable from more than
//                      one iteration of a parallel/taskloop/distribute
//                      region (scalars not privatised by clause or local
//                      declaration; loop-invariant array element writes)
//   reduction-misuse   a reduction(op:x) variable written outside the
//                      `x op= e` / `x = x op e` pattern or with the wrong
//                      operator, and reduction-shaped accumulations on
//                      shared variables that lack a reduction clause
//   offload-mapping    arrays touched inside target / acc compute regions
//                      with no map/copy clause (region-level or a
//                      target enter/exit data resident mapping) covering
//                      them, and writes to arrays mapped read-only
//                      (map(to:)/copyin) at region level
//   directive-nesting  barrier inside single/master/critical/task regions,
//                      loop-binding directives (for/do/loop/distribute/
//                      taskloop/simd) without an associated loop, and
//                      distribute/teams constructs outside their required
//                      teams/target nesting
//   unused-private     private/firstprivate/lastprivate(x) where x is
//                      never referenced inside the region
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "support/json.hpp"

namespace sv::lint {

enum class Severity : u8 { Note = 0, Warning = 1, Error = 2 };
enum class Check : u8 {
  // AST tier (lint::run).
  DataRace = 0,
  ReductionMisuse = 1,
  OffloadMapping = 2,
  DirectiveNesting = 3,
  UnusedPrivate = 4,
  // IR tier (lint::runIr, see lint/irlint.hpp).
  UninitUse = 5,
  DeadStore = 6,
  UnreachableBlock = 7,
  DeviceTransfer = 8,
  // Dependence tier (lint::runDeps, see lint/depslint.hpp).
  LoopCarriedRace = 9,      ///< proven cross-iteration dependence in a parallel loop
  MissedReduction = 10,     ///< `x op= e` pattern proven, no reduction clause
  MissedPrivatization = 11, ///< scalar proven privatizable, no private clause
  ProvablyParallel = 12,    ///< serial loop with no carried dependence (note)
  // Value-range tier (lint::runRange, see lint/rangelint.hpp).
  OutOfBounds = 13,         ///< stack-array subscript provably / possibly outside
  DivisionByZero = 14,      ///< integer divisor proven [0, 0]
  DeadBranch = 15,          ///< branch condition proven always-false
  ZeroTripLoop = 16,        ///< loop-header condition proven false on entry (note)
};

[[nodiscard]] const char *name(Severity s);
[[nodiscard]] const char *name(Check c);

/// Inverse of name(Severity) — "note" / "warning" / "error"; nullopt for
/// anything else. Backs the CLI's --max-severity flag.
[[nodiscard]] std::optional<Severity> severityFromName(std::string_view name);

struct Diagnostic {
  Check check{};
  Severity severity{};
  lang::Location loc;     ///< directive or offending expression location
  std::string symbol;     ///< principal variable, empty when not applicable
  std::string directive;  ///< canonical text of the governing directive
  std::string message;    ///< human-readable explanation

  [[nodiscard]] bool operator==(const Diagnostic &) const = default;
};

/// Run every check over one analysed translation unit. The unit must have
/// been through `minic::analyse` for C-family sources (the checks consume
/// sema's Ident value types to tell arrays from scalars); Fortran units
/// work directly off `minif::parseFortran` output (array-ness is recovered
/// from declarations instead).
[[nodiscard]] std::vector<Diagnostic> run(const lang::ast::TranslationUnit &unit);

// ------------------------------------------------------------ emission --

/// Shared diagnostic collector for every lint tier: uniform construction,
/// optional key-based deduplication, and a stable source-order sort when
/// the batch is taken. Tiers use this instead of hand-rolled push_back /
/// sort / dedup code (the AST, IR, dependence, and range tiers all emit
/// through it).
class Emitter {
public:
  void emit(Check check, Severity sev, lang::Location loc, std::string symbol,
            std::string scope, std::string message);
  /// Deduplicated form: drops the diagnostic when `key` has been seen.
  void emitOnce(const std::string &key, Check check, Severity sev,
                lang::Location loc, std::string symbol, std::string scope,
                std::string message);
  /// Diagnostics in stable (file, line, col, check) order; resets the
  /// collector.
  [[nodiscard]] std::vector<Diagnostic> take();

private:
  std::vector<Diagnostic> diags_;
  std::set<std::string> seen_;
};

// -------------------------------------------------------------- report --

struct UnitReport {
  std::string file;  ///< TU main file
  std::vector<Diagnostic> diags;
};

/// Aggregated lint results for one codebase (app/model pair), with text and
/// JSON renderers for the CLI.
struct Report {
  std::string app;
  std::string model;
  std::vector<UnitReport> units;

  [[nodiscard]] usize count(Severity s) const;
  /// Diagnostics at or above `threshold` — the --max-severity exit-code
  /// policy: non-zero exit iff this is > 0 for the chosen threshold.
  [[nodiscard]] usize countAtOrAbove(Severity threshold) const;
  [[nodiscard]] bool hasErrors() const { return count(Severity::Error) > 0; }

  /// clang-style one-line-per-diagnostic text. When `sm` is given,
  /// locations render as file:line:col; otherwise the unit file name is
  /// used with the location's line/col.
  [[nodiscard]] std::string renderText(const lang::SourceManager *sm = nullptr) const;
  [[nodiscard]] json::Value toJson() const;
};

} // namespace sv::lint
