// svale lint --deps — the dependence-aware lint tier. It runs the loop
// dependence engine (ir/deps.hpp) over a lowered module and turns per-loop
// facts into verdicts:
//
//   loop-carried-race     (error)   a parallel region's loop has a *proven*
//                                   cross-iteration dependence — an array
//                                   distance-vector the subscript tests
//                                   established, or an upward-exposed read
//                                   of a shared scalar written in the loop.
//                                   Assumed (inconclusive) dependences never
//                                   fire this.
//   missed-reduction      (warning) a shared scalar updated only through
//                                   `x op= e` chains with no reduction
//                                   clause covering it
//   missed-privatization  (warning) a shared scalar the engine proves is
//                                   written before every read, with no
//                                   private-family clause covering it
//   provably-parallel     (note)    a serial (non-outlined) loop with no
//                                   carried dependence and only benign
//                                   scalars — the directive-synthesis seed
//
// Clause suppression: when the originating translation unit is available,
// symbols named by any private-family or reduction clause in the unit are
// exempt from the race and missed-* verdicts (the lowering erases private
// clauses, so the AST is the only witness). Without a unit, `__kmpc_reduce`
// markers in the IR stand in for reduction clauses.
#pragma once

#include "ir/deps.hpp"
#include "lint/lint.hpp"

namespace sv::lint {

struct DepsOptions {
  /// The unit the module was lowered from, for clause suppression.
  const lang::ast::TranslationUnit *unit = nullptr;
};

[[nodiscard]] std::vector<Diagnostic> runDeps(const ir::Module &module,
                                              const DepsOptions &options = {});

/// AST-level dependence classification of one Fortran whole-array
/// assignment `a(...) = expr` (StmtKind::ArrayAssign), used by the tier-one
/// checker in place of its old blanket `acc kernels` exemption:
///   Independent  rhs never reads the assigned array, or reads it only
///                through the identical unshifted section — elementwise
///                parallelization is safe
///   Carried      rhs reads an overlapping *shifted* section or a fixed
///                element of the assigned array — naive parallelization
///                races with the writes
///   Unknown      rhs references the array in a form the classifier cannot
///                bound (computed subscripts, calls taking the array)
enum class AssignDep : u8 { Independent, Carried, Unknown };

[[nodiscard]] AssignDep classifyArrayAssign(const lang::ast::Stmt &s);

} // namespace sv::lint
