// Perceived (language-agnostic) codebase summarisation metrics from
// Table I: SLOC and LLOC (Nguyen et al. counting standard), plus the
// relative textual measures — longest common subsequence and the
// Wu–Manber–Myers–Miller O(NP) edit distance that the dtl library (and GNU
// diff) use. All operate on *normalised* text: comments stripped,
// whitespace collapsed, blank lines dropped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/common.hpp"

namespace sv::text {

/// A comment span to strip during normalisation, expressed in byte offsets
/// of the original text. Produced by the frontends' CSTs (Section III-C:
/// "comments are removed using ranges marked by a CST").
struct CommentRange {
  usize begin = 0; ///< inclusive byte offset
  usize end = 0;   ///< exclusive byte offset
};

/// Normalisation per Section III-C: remove the given comment ranges, then
/// collapse runs of spaces/tabs, trim lines, and drop blank lines.
/// Directive lines (e.g. "#pragma omp ...", "!$omp ...") survive because
/// they are not comments in the CST — the "special provisions" the paper
/// makes for semantic-bearing tokens in unusual places.
[[nodiscard]] std::string normalise(std::string_view source,
                                    const std::vector<CommentRange> &comments = {});

/// Source Lines of Code: number of non-blank lines after normalisation.
[[nodiscard]] usize sloc(std::string_view normalisedSource);

/// Logical Lines of Code per Nguyen et al.: counts statement terminators
/// and block/control headers rather than physical lines, so a for-header
/// split over three lines counts once. Works on normalised C-family or
/// Fortran-family text; `fortran` toggles the line-oriented Fortran rules.
[[nodiscard]] usize lloc(std::string_view normalisedSource, bool fortran = false);

/// Length of the longest common subsequence of the two line sequences.
[[nodiscard]] usize lcsLength(const std::vector<std::string> &a, const std::vector<std::string> &b);

/// Line-based edit distance (insertions + deletions, i.e. diff distance)
/// via the Wu–Manber–Myers–Miller O(NP) algorithm [16]. Equals
/// |a| + |b| - 2 * lcsLength(a, b); the identity is exercised in tests.
[[nodiscard]] usize diffDistance(const std::vector<std::string> &a,
                                 const std::vector<std::string> &b);

/// Character-level Levenshtein distance (insert/delete/substitute, unit
/// costs). Provided for the "slightly more involved" baseline the paper
/// mentions (Section III).
[[nodiscard]] usize levenshtein(std::string_view a, std::string_view b);

} // namespace sv::text
