#include "text/text.hpp"

#include <algorithm>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace sv::text {

std::string normalise(std::string_view source, const std::vector<CommentRange> &comments) {
  // 1. Blank out comment ranges, preserving newlines so subsequent line
  //    numbering still reflects the original layout.
  std::string blanked(source);
  for (const auto &r : comments) {
    const usize end = std::min(r.end, blanked.size());
    for (usize i = r.begin; i < end; ++i)
      if (blanked[i] != '\n') blanked[i] = ' ';
  }
  // 2. Per line: collapse internal whitespace, trim, drop blanks.
  std::string out;
  for (const auto &line : str::splitLines(blanked)) {
    const auto collapsed = str::collapseWhitespace(line);
    const auto trimmed = str::trim(collapsed);
    if (trimmed.empty()) continue;
    out.append(trimmed);
    out.push_back('\n');
  }
  return out;
}

usize sloc(std::string_view normalisedSource) {
  usize count = 0;
  for (const auto &line : str::splitLines(normalisedSource))
    if (!str::isBlank(line)) ++count;
  return count;
}

namespace {

usize llocCFamily(std::string_view src) {
  // Nguyen-style logical lines for C-family text: a statement terminator
  // ';' at parenthesis depth zero, or a block opener '{' (covering control
  // headers and definitions), each count once. A for-header's internal
  // semicolons sit at depth > 0 and are not counted, so a multi-line
  // for-header contributes exactly one logical line. Directive lines
  // (#pragma / #include / #define) count one each.
  usize count = 0;
  int parenDepth = 0;
  bool inString = false;
  bool inChar = false;
  bool lineIsDirective = false;
  bool atLineStart = true;
  for (usize i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      if (lineIsDirective) ++count;
      lineIsDirective = false;
      atLineStart = true;
      continue;
    }
    if (atLineStart && c == '#') lineIsDirective = true;
    if (!str::isBlank(std::string_view(&c, 1))) atLineStart = false;
    if (lineIsDirective) continue;
    if (inString) {
      if (c == '\\') ++i;
      else if (c == '"') inString = false;
      continue;
    }
    if (inChar) {
      if (c == '\\') ++i;
      else if (c == '\'') inChar = false;
      continue;
    }
    switch (c) {
    case '"': inString = true; break;
    case '\'': inChar = true; break;
    case '(': ++parenDepth; break;
    case ')':
      if (parenDepth > 0) --parenDepth;
      break;
    case ';':
      if (parenDepth == 0) ++count;
      break;
    case '{': ++count; break;
    default: break;
    }
  }
  if (lineIsDirective) ++count;
  return count;
}

usize llocFortran(std::string_view src) {
  // Fortran logical lines: each statement counts once. A line continued
  // with a trailing '&' merges with the next; ';' separates multiple
  // statements on a line. Directive sentinels (!$omp / !$acc) count one.
  usize count = 0;
  bool continuing = false;
  for (const auto &raw : str::splitLines(src)) {
    const auto line = str::trim(raw);
    if (line.empty()) continue;
    const bool isDirective = str::startsWith(line, "!$");
    if (str::startsWith(line, "!") && !isDirective) continue; // full-line comment
    if (!continuing) ++count;
    // extra statements introduced by ';'
    if (!isDirective)
      count += static_cast<usize>(std::count(line.begin(), line.end(), ';'));
    continuing = str::endsWith(line, "&");
  }
  return count;
}

std::vector<u64> hashLines(const std::vector<std::string> &lines) {
  std::vector<u64> out;
  out.reserve(lines.size());
  for (const auto &l : lines) out.push_back(fnv1a(l));
  return out;
}

/// Wu–Manber–Myers–Miller O(NP): edit distance (ins+del) between `a` and
/// `b` where |a| <= |b| must hold (callers swap).
usize onpDistance(const std::vector<u64> &a, const std::vector<u64> &b) {
  const auto m = static_cast<i64>(a.size());
  const auto n = static_cast<i64>(b.size());
  SV_CHECK(m <= n, "onpDistance requires |a| <= |b|");
  const i64 delta = n - m;
  // fp is indexed by diagonal k in [-(m+1), n+1]; store with offset.
  const i64 offset = m + 1;
  std::vector<i64> fp(static_cast<usize>(m + n + 3), -1);

  const auto snake = [&](i64 k, i64 y) -> i64 {
    i64 x = y - k;
    while (x < m && y < n && a[static_cast<usize>(x)] == b[static_cast<usize>(y)]) {
      ++x;
      ++y;
    }
    return y;
  };

  i64 p = -1;
  do {
    ++p;
    for (i64 k = -p; k <= delta - 1; ++k)
      fp[static_cast<usize>(k + offset)] =
          snake(k, std::max(fp[static_cast<usize>(k - 1 + offset)] + 1,
                            fp[static_cast<usize>(k + 1 + offset)]));
    for (i64 k = delta + p; k >= delta + 1; --k)
      fp[static_cast<usize>(k + offset)] =
          snake(k, std::max(fp[static_cast<usize>(k - 1 + offset)] + 1,
                            fp[static_cast<usize>(k + 1 + offset)]));
    fp[static_cast<usize>(delta + offset)] =
        snake(delta, std::max(fp[static_cast<usize>(delta - 1 + offset)] + 1,
                              fp[static_cast<usize>(delta + 1 + offset)]));
  } while (fp[static_cast<usize>(delta + offset)] != n);

  return static_cast<usize>(delta + 2 * p);
}

} // namespace

usize lloc(std::string_view normalisedSource, bool fortran) {
  return fortran ? llocFortran(normalisedSource) : llocCFamily(normalisedSource);
}

usize lcsLength(const std::vector<std::string> &a, const std::vector<std::string> &b) {
  // Derived from the O(NP) distance: d = |a| + |b| - 2*lcs.
  const usize d = diffDistance(a, b);
  return (a.size() + b.size() - d) / 2;
}

usize diffDistance(const std::vector<std::string> &a, const std::vector<std::string> &b) {
  const auto ha = hashLines(a);
  const auto hb = hashLines(b);
  if (ha.size() <= hb.size()) return onpDistance(ha, hb);
  return onpDistance(hb, ha);
}

usize levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<usize> prev(a.size() + 1), cur(a.size() + 1);
  for (usize i = 0; i <= a.size(); ++i) prev[i] = i;
  for (usize j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (usize i = 1; i <= a.size(); ++i) {
      const usize sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

} // namespace sv::text
