// T_src generator (Section III-A / IV-C): the perceived, syntax-highlighter
// level view of a unit. Built from the token stream the way tree-sitter
// parse trees are used in the paper — anonymous delimiter tokens are
// dropped (their information lives on as the nesting structure of
// bracket-group nodes), identifiers are normalised to their token type, and
// `#pragma` lines become structured nodes so directive tokens survive
// normalisation.
#pragma once

#include "minic/lexer.hpp"
#include "tree/tree.hpp"

namespace sv::minic {

/// Build the T_src tree for a token stream (one file, or a preprocessed
/// unit for the +pp variant). Structure: a root "source" node; `{}`/`()`/
/// `[]` groups become interior nodes; all other tokens become leaves with
/// normalised labels (identifiers -> "id", literals keep their value,
/// keywords and operators keep their spelling).
[[nodiscard]] tree::Tree buildSrcTree(const std::vector<Token> &tokens);

} // namespace sv::minic
