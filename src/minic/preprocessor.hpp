// MiniC preprocessor: resolves #include against the codebase's in-memory
// file set, expands object- and function-like macros, evaluates
// #ifdef/#ifndef/#if conditionals, honours #pragma once, and — crucially
// for the metrics — passes `#pragma omp ...` lines through untouched so the
// directive tokens survive preprocessing (Section III-C's "special
// provisions"). The output records, per physical line, which original
// {file, line} it came from, so every downstream tree node keeps its source
// back-reference.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "lang/source.hpp"

namespace sv::minic {

struct PreprocessOptions {
  /// Predefined macros (e.g. from the compile command's -D flags).
  std::map<std::string, std::string> defines;
  /// File-name prefixes treated as system headers: they are spliced (their
  /// symbols are visible) but flagged so analyses can mask them out, as the
  /// paper does for system headers.
  std::vector<std::string> systemPrefixes = {"include/"};
};

struct PreprocessResult {
  std::string text;                        ///< preprocessed source, pragmas preserved
  std::vector<lang::Location> lineOrigins; ///< per output line: original file + line
  std::vector<lang::ast::IncludeDecl> includes; ///< all includes, in splice order
  std::set<i32> systemFiles;               ///< file ids classified as system headers
  std::vector<std::string> missingIncludes;///< names that resolved nowhere (recorded, skipped)
};

/// Preprocess `fileId` (must exist in `sm`). Includes resolve within `sm`
/// by exact name, then by `include/<name>`. Unresolvable includes are
/// recorded in `missingIncludes` and skipped — mirroring how SilverVale
/// masks system headers it does not index. Throws FrontendError on
/// malformed directives or include cycles.
[[nodiscard]] PreprocessResult preprocess(const lang::SourceManager &sm, i32 fileId,
                                          const PreprocessOptions &options = {});

} // namespace sv::minic
