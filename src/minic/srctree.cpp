#include "minic/srctree.hpp"

#include "support/strings.hpp"

namespace sv::minic {

tree::Tree buildSrcTree(const std::vector<Token> &tokens) {
  auto t = tree::Tree::leaf("source");
  std::vector<tree::NodeId> stack{0};
  // Tracks the opener expected for each group so mismatched closers are
  // tolerated rather than corrupting the structure.
  std::vector<char> openers;

  const auto top = [&] { return stack.back(); };

  for (const auto &tok : tokens) {
    const i32 file = tok.loc.file;
    const i32 line = tok.loc.line;
    switch (tok.kind) {
    case TokKind::Eof: break;
    case TokKind::Ident:
      t.addChild(top(), "id", file, line);
      break;
    case TokKind::Keyword:
      t.addChild(top(), tok.text, file, line);
      break;
    case TokKind::IntLit:
      t.addChild(top(), "int:" + tok.text, file, line);
      break;
    case TokKind::FloatLit:
      t.addChild(top(), "float:" + tok.text, file, line);
      break;
    case TokKind::StringLit:
      t.addChild(top(), "str", file, line);
      break;
    case TokKind::CharLit:
      t.addChild(top(), "char", file, line);
      break;
    case TokKind::PpDirective: {
      // Raw token view of an unexpanded preprocessor line.
      const auto node = t.addChild(top(), "pp-directive", file, line);
      for (const auto &word : str::split(tok.text, ' ')) {
        if (word.empty()) continue;
        t.addChild(node, word, file, line);
      }
      break;
    }
    case TokKind::Pragma: {
      // `#pragma omp parallel for ...` — keep every word: this is exactly
      // the semantic-bearing-comment provision of Section III-C.
      const auto node = t.addChild(top(), "pragma", file, line);
      for (const auto &word : str::split(tok.text, ' ')) {
        if (word.empty()) continue;
        t.addChild(node, word, file, line);
      }
      break;
    }
    case TokKind::Punct: {
      const std::string &p = tok.text;
      if (p == "(" || p == "{" || p == "[" || p == "<<<") {
        const char *label = p == "(" ? "parens" : p == "{" ? "braces"
                                              : p == "["   ? "brackets"
                                                           : "launch-config";
        const auto node = t.addChild(top(), label, file, line);
        stack.push_back(node);
        openers.push_back(p == "<<<" ? '<' : p[0]);
      } else if (p == ")" || p == "}" || p == "]" || p == ">>>") {
        if (stack.size() > 1) {
          stack.pop_back();
          openers.pop_back();
        }
      } else if (p == ";" || p == ",") {
        // Pure delimiters: anonymous tokens, dropped (tree-sitter filter).
      } else {
        t.addChild(top(), p, file, line); // operators stay visible
      }
      break;
    }
    }
  }
  return t;
}

} // namespace sv::minic
