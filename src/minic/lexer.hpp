// MiniC lexer: tokenises the C++-like dialect the corpus miniapps are
// written in, including the model-specific surface syntax TBMD must see —
// `#pragma` lines (kept as first-class tokens, per the paper's "special
// provisions" for semantic-bearing information in unusual places),
// CUDA/HIP kernel-launch chevrons `<<<` / `>>>`, attributes like
// `__global__`, and `::`-qualified names.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/source.hpp"
#include "text/text.hpp"

namespace sv::minic {

enum class TokKind {
  Ident,
  Keyword,
  IntLit,
  FloatLit,
  StringLit,
  CharLit,
  Punct,
  Pragma, ///< a whole `#pragma ...` line; text excludes "#pragma "
  PpDirective, ///< raw mode only: any other `#...` line; text excludes '#'
  Eof,
};

struct Token {
  TokKind kind{};
  std::string text;
  lang::Location loc;

  [[nodiscard]] bool is(TokKind k) const { return kind == k; }
  [[nodiscard]] bool is(TokKind k, std::string_view t) const { return kind == k && text == t; }
  [[nodiscard]] bool isPunct(std::string_view t) const { return is(TokKind::Punct, t); }
  [[nodiscard]] bool isKeyword(std::string_view t) const { return is(TokKind::Keyword, t); }
};

/// True for MiniC keywords (see lexer.cpp for the list).
[[nodiscard]] bool isKeyword(std::string_view word);

/// Tokenise `text`, attributing locations to `fileId`. `lineOrigins`, when
/// non-null, maps each physical line index of `text` (0-based) to the
/// original {file, line} it came from — used after preprocessing so tokens
/// of spliced includes keep back-references into their own files. Comments
/// never become tokens. Throws FrontendError on unterminated
/// strings/comments.
/// `allowDirectives` enables raw mode: un-preprocessed files may contain
/// #include/#define/#if lines, which become PpDirective tokens (the token
/// view tree-sitter would produce). Without it such lines are an error
/// because they should have been consumed by the preprocessor.
[[nodiscard]] std::vector<Token> lex(std::string_view text, i32 fileId,
                                     const std::vector<lang::Location> *lineOrigins = nullptr,
                                     bool allowDirectives = false);

/// Byte ranges of all comments in raw file text — feeds the normalisation
/// step of the perceived metrics (Section III-C).
[[nodiscard]] std::vector<text::CommentRange> commentRanges(std::string_view text);

} // namespace sv::minic
