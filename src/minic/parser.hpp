// MiniC recursive-descent parser: tokens -> typed AST (lang::ast). Parses
// the C++-like dialect the corpus is written in, including the surface
// forms whose semantics the metrics track: #pragma directives bound to the
// statement they govern, CUDA/HIP kernel launches `f<<<g, b>>>(args)`,
// explicit template arguments on calls and member calls (the SYCL API
// surface), lambdas, and qualified names.
#pragma once

#include "lang/ast.hpp"
#include "minic/lexer.hpp"

namespace sv::minic {

/// Parse a whole translation unit from a (preprocessed) token stream.
/// `fileName` is recorded in the result for unit matching. Throws
/// FrontendError with a source location on any syntax error.
[[nodiscard]] lang::ast::TranslationUnit parseTranslationUnit(const std::vector<Token> &tokens,
                                                              std::string fileName,
                                                              const lang::SourceManager &sm);

} // namespace sv::minic
