// MiniC semantic analysis: the stage that turns the parsed AST into the
// compiler's view of the program — what T_sem measures. Sema
//  * resolves names against nested scopes, function/struct tables and the
//    model-API registry,
//  * computes expression value types with the usual arithmetic conversions,
//  * inserts ImplicitCast nodes where conversions happen (the "prevalent"
//    non-semantic nodes of Section IV-A; kept in the AST, filtered later by
//    the T_sem generator),
//  * annotates calls into known model APIs with their hidden template
//    arguments and implicit conversions (Section V-A's SYCL effect).
#pragma once

#include "lang/ast.hpp"

namespace sv::minic {

struct SemaStats {
  usize implicitCasts = 0;
  usize apiCalls = 0;
  usize hiddenTemplateArgs = 0;
  usize unresolvedNames = 0; ///< identifiers treated as external symbols
  /// The names behind unresolvedNames, in visit order (with repeats). The
  /// fuzz reducer uses the set to tell a pre-existing external symbol from
  /// an undeclared variable its own line deletions just manufactured.
  std::vector<std::string> unresolved;
};

/// Analyse `unit` in place. Never throws on unresolved names (external
/// runtime symbols are expected); throws InternalError only on malformed
/// AST. Returns statistics used by tests and diagnostics.
SemaStats analyse(lang::ast::TranslationUnit &unit);

} // namespace sv::minic
