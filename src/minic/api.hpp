// Registry of known programming-model API surfaces and their *hidden*
// semantic weight. When sema resolves a call to one of these symbols it
// annotates the call with the number of template arguments the API
// materialises beyond the written source (defaulted template parameters,
// deduced kernel-name types, accessor mode/placeholder parameters, ...)
// and the number of implicit conversions of user arguments into API types.
//
// The counts are derived from the real API declarations:
//  * SYCL 2020: `buffer<T, dims = 1, AllocatorT = buffer_allocator<T>>`,
//    `accessor<T, dims, mode, target, isPlaceholder>` (3 defaulted),
//    `handler::parallel_for<KernelName = __unnamed>(range, Reducers..., fn)`,
//    `queue::submit(CGF)` materialising a `handler` — the heavily-templated
//    surface Section V-A singles out.
//  * Kokkos: `parallel_for(label, ExecPolicy<...defaults...>, Functor)` with
//    execution/memory-space defaults, `View<T*, LayoutRight, MemSpace>`.
//  * TBB: `parallel_for(blocked_range<T>, Body, Partitioner = auto)`.
//  * StdPar: `for_each(ExecutionPolicy&&, It, It, Fn)` — one policy template
//    parameter, iterator category deduction.
//  * CUDA/HIP runtime calls (`cudaMalloc`, `hipMemcpy`, ...): plain C
//    symbols, no hidden templates, but `void**` conversions count as one
//    implicit conversion.
// OpenMP needs no entry: its semantics enter the AST as directive nodes.
#pragma once

#include <optional>
#include <string_view>

#include "support/common.hpp"

namespace sv::minic {

struct ApiInfo {
  u32 hiddenTemplates = 0;      ///< defaulted/deduced template arguments
  u32 implicitConversions = 0;  ///< implicit constructions of user args
};

/// Look up a plain or qualified callee name (e.g. "sycl::malloc_device",
/// "Kokkos::parallel_for", "cudaMemcpy").
[[nodiscard]] std::optional<ApiInfo> lookupApi(std::string_view qualifiedName);

/// Look up a member call by member name alone (e.g. "submit",
/// "parallel_for", "get_access") — member calls on model runtime objects.
[[nodiscard]] std::optional<ApiInfo> lookupMemberApi(std::string_view memberName);

} // namespace sv::minic
