#include "minic/preprocessor.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace sv::minic {

namespace {

using lang::Location;
using lang::SourceManager;

struct Macro {
  bool functionLike = false;
  std::vector<std::string> params;
  std::string body;
};

class Preprocessor {
public:
  Preprocessor(const SourceManager &sm, const PreprocessOptions &options)
      : sm_(sm), options_(options) {
    for (const auto &[k, v] : options.defines) macros_[k] = Macro{false, {}, v};
  }

  PreprocessResult run(i32 fileId) {
    processFile(fileId, false);
    return std::move(result_);
  }

private:
  const SourceManager &sm_;
  const PreprocessOptions &options_;
  PreprocessResult result_;
  std::map<std::string, Macro> macros_;
  std::set<i32> pragmaOnce_;
  std::vector<i32> includeStack_;

  [[noreturn]] void fail(i32 fileId, i32 line, const std::string &what) const {
    throw lang::FrontendError(what, sm_.file(fileId).name + ":" + std::to_string(line));
  }

  void emit(std::string line, i32 fileId, i32 lineNo) {
    result_.text += line;
    result_.text += '\n';
    result_.lineOrigins.push_back(Location{fileId, lineNo, 1});
  }

  static std::string stripComments(std::string line, bool &inBlockComment) {
    std::string out;
    bool inString = false;
    for (usize i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (inBlockComment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          inBlockComment = false;
          ++i;
        }
        continue;
      }
      if (inString) {
        out.push_back(c);
        if (c == '\\' && i + 1 < line.size()) {
          out.push_back(line[++i]);
        } else if (c == '"') {
          inString = false;
        }
        continue;
      }
      if (c == '"') {
        inString = true;
        out.push_back(c);
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        inBlockComment = true;
        ++i;
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  [[nodiscard]] bool isDefined(const std::string &name) const { return macros_.count(name) != 0; }

  /// Evaluate a #if condition: `0`, `1`, `defined(X)`, `!defined(X)`,
  /// possibly joined by && / ||. Anything richer is out of MiniC scope.
  [[nodiscard]] bool evalCondition(std::string_view cond, i32 fileId, i32 line) const {
    // Recursive descent over || then && then primary.
    struct P {
      std::string_view s;
      usize i = 0;
      const Preprocessor *pp;
      i32 fileId;
      i32 line;

      void ws() {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
      }
      bool primary() {
        ws();
        if (i < s.size() && s[i] == '!') {
          ++i;
          return !primary();
        }
        if (i < s.size() && s[i] == '(') {
          ++i;
          const bool v = orExpr();
          ws();
          if (i < s.size() && s[i] == ')') ++i;
          return v;
        }
        std::string word;
        while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_'))
          word.push_back(s[i++]);
        if (word == "defined") {
          ws();
          bool paren = false;
          if (i < s.size() && s[i] == '(') {
            paren = true;
            ++i;
          }
          ws();
          std::string name;
          while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_'))
            name.push_back(s[i++]);
          ws();
          if (paren && i < s.size() && s[i] == ')') ++i;
          return pp->isDefined(name);
        }
        if (word == "0") return false;
        if (word == "1") return true;
        if (word.empty()) pp->fail(fileId, line, "malformed #if condition");
        // A bare macro name: true iff defined to a non-zero value.
        const auto it = pp->macros_.find(word);
        if (it == pp->macros_.end()) return false;
        return str::trim(it->second.body) != "0";
      }
      bool andExpr() {
        bool v = primary();
        while (true) {
          ws();
          if (s.substr(i, 2) == "&&") {
            i += 2;
            const bool rhs = primary();
            v = v && rhs;
          } else {
            return v;
          }
        }
      }
      bool orExpr() {
        bool v = andExpr();
        while (true) {
          ws();
          if (s.substr(i, 2) == "||") {
            i += 2;
            const bool rhs = andExpr();
            v = v || rhs;
          } else {
            return v;
          }
        }
      }
    };
    P p{cond, 0, this, fileId, line};
    return p.orExpr();
  }

  /// Expand macros in one line of ordinary source text.
  [[nodiscard]] std::string expandMacros(const std::string &line, int depth = 0) const {
    if (depth > 8) return line; // cycle guard
    std::string out;
    usize i = 0;
    bool changed = false;
    bool inString = false;
    while (i < line.size()) {
      const char c = line[i];
      if (inString) {
        out.push_back(c);
        if (c == '\\' && i + 1 < line.size()) out.push_back(line[++i]);
        else if (c == '"') inString = false;
        ++i;
        continue;
      }
      if (c == '"') {
        inString = true;
        out.push_back(c);
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (i < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[i])) || line[i] == '_'))
          word.push_back(line[i++]);
        const auto it = macros_.find(word);
        if (it == macros_.end()) {
          out += word;
          continue;
        }
        const Macro &m = it->second;
        if (!m.functionLike) {
          out += m.body;
          changed = true;
          continue;
        }
        // Function-like: require '(' (else leave the name alone).
        usize j = i;
        while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
        if (j >= line.size() || line[j] != '(') {
          out += word;
          continue;
        }
        // Collect balanced arguments.
        usize k = j + 1;
        int parens = 1;
        std::vector<std::string> args;
        std::string cur;
        while (k < line.size() && parens > 0) {
          const char a = line[k];
          if (a == '(') ++parens;
          if (a == ')') --parens;
          if (a == ',' && parens == 1) {
            args.push_back(cur);
            cur.clear();
          } else if (parens > 0) {
            cur.push_back(a);
          }
          ++k;
        }
        if (!cur.empty() || !args.empty()) args.push_back(cur);
        // Substitute parameters by whole-word replacement.
        std::string body = m.body;
        for (usize pi = 0; pi < m.params.size() && pi < args.size(); ++pi)
          body = substituteWord(body, m.params[pi], std::string(str::trim(args[pi])));
        out += body;
        i = k;
        changed = true;
        continue;
      }
      out.push_back(c);
      ++i;
    }
    return changed ? expandMacros(out, depth + 1) : out;
  }

  static std::string substituteWord(const std::string &text, const std::string &name,
                                    const std::string &value) {
    std::string out;
    usize i = 0;
    while (i < text.size()) {
      if ((std::isalpha(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
        std::string word;
        while (i < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_'))
          word.push_back(text[i++]);
        out += (word == name) ? value : word;
      } else {
        out.push_back(text[i++]);
      }
    }
    return out;
  }

  [[nodiscard]] std::optional<i32> resolveInclude(const std::string &path,
                                                  i32 includerFile) const {
    // Quote-include semantics: relative to the including file's directory
    // first, then the codebase root, then the include/ system prefix.
    const auto &includerName = sm_.file(includerFile).name;
    if (const auto slash = includerName.rfind('/'); slash != std::string::npos) {
      if (const auto id = sm_.idOf(includerName.substr(0, slash + 1) + path)) return id;
    }
    if (const auto id = sm_.idOf(path)) return id;
    if (const auto id = sm_.idOf("include/" + path)) return id;
    return std::nullopt;
  }

  [[nodiscard]] bool isSystemFile(i32 fileId) const {
    const auto &name = sm_.file(fileId).name;
    for (const auto &prefix : options_.systemPrefixes)
      if (str::startsWith(name, prefix)) return true;
    return false;
  }

  void processFile(i32 fileId, bool asSystem) {
    for (const i32 f : includeStack_)
      if (f == fileId) fail(fileId, 1, "include cycle involving " + sm_.file(fileId).name);
    if (pragmaOnce_.count(fileId)) return;
    includeStack_.push_back(fileId);
    if (asSystem || isSystemFile(fileId)) result_.systemFiles.insert(fileId);

    const auto lines = str::splitLines(sm_.file(fileId).text);
    bool inBlockComment = false;
    // Conditional stack: (takenBranchSeen, currentlyActive).
    struct Cond {
      bool taken;
      bool active;
    };
    std::vector<Cond> conds;
    const auto active = [&] {
      for (const auto &c : conds)
        if (!c.active) return false;
      return true;
    };

    for (usize li = 0; li < lines.size(); ++li) {
      const i32 lineNo = static_cast<i32>(li + 1);
      std::string line = stripComments(lines[li], inBlockComment);
      const auto trimmed = str::trim(line);
      if (!trimmed.empty() && trimmed[0] == '#') {
        std::string_view rest = trimmed;
        rest.remove_prefix(1);
        while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
          rest.remove_prefix(1);
        const auto spaceAt = rest.find_first_of(" \t");
        const std::string dir(rest.substr(0, spaceAt));
        const std::string arg(
            spaceAt == std::string_view::npos ? "" : str::trim(rest.substr(spaceAt)));

        if (dir == "ifdef" || dir == "ifndef") {
          const bool defined = isDefined(arg);
          const bool take = active() && (dir == "ifdef" ? defined : !defined);
          conds.push_back(Cond{take, take});
          continue;
        }
        if (dir == "if") {
          const bool take = active() && evalCondition(arg, fileId, lineNo);
          conds.push_back(Cond{take, take});
          continue;
        }
        if (dir == "elif") {
          if (conds.empty()) fail(fileId, lineNo, "#elif without #if");
          auto &c = conds.back();
          if (c.taken) {
            c.active = false;
          } else {
            conds.pop_back();
            const bool take = active() && evalCondition(arg, fileId, lineNo);
            conds.push_back(Cond{take, take});
          }
          continue;
        }
        if (dir == "else") {
          if (conds.empty()) fail(fileId, lineNo, "#else without #if");
          auto &c = conds.back();
          c.active = !c.taken && [&] {
            // active w.r.t. outer conditions only
            for (usize k = 0; k + 1 < conds.size(); ++k)
              if (!conds[k].active) return false;
            return true;
          }();
          if (c.active) c.taken = true;
          continue;
        }
        if (dir == "endif") {
          if (conds.empty()) fail(fileId, lineNo, "#endif without #if");
          conds.pop_back();
          continue;
        }
        if (!active()) continue;

        if (dir == "include") {
          bool system = false;
          std::string path;
          if (!arg.empty() && arg.front() == '"') {
            const auto end = arg.find('"', 1);
            if (end == std::string::npos) fail(fileId, lineNo, "malformed #include");
            path = arg.substr(1, end - 1);
          } else if (!arg.empty() && arg.front() == '<') {
            const auto end = arg.find('>', 1);
            if (end == std::string::npos) fail(fileId, lineNo, "malformed #include");
            path = arg.substr(1, end - 1);
            system = true;
          } else {
            fail(fileId, lineNo, "malformed #include");
          }
          result_.includes.push_back(
              lang::ast::IncludeDecl{path, system, Location{fileId, lineNo, 1}});
          if (const auto inc = resolveInclude(path, fileId)) {
            processFile(*inc, system);
          } else {
            result_.missingIncludes.push_back(path);
          }
          continue;
        }
        if (dir == "define") {
          // NAME, NAME(params), then body.
          usize p = 0;
          std::string name;
          while (p < arg.size() &&
                 (std::isalnum(static_cast<unsigned char>(arg[p])) || arg[p] == '_'))
            name.push_back(arg[p++]);
          if (name.empty()) fail(fileId, lineNo, "malformed #define");
          Macro m;
          if (p < arg.size() && arg[p] == '(') {
            m.functionLike = true;
            ++p;
            std::string param;
            while (p < arg.size() && arg[p] != ')') {
              if (arg[p] == ',') {
                m.params.push_back(std::string(str::trim(param)));
                param.clear();
              } else {
                param.push_back(arg[p]);
              }
              ++p;
            }
            if (!str::trim(param).empty()) m.params.push_back(std::string(str::trim(param)));
            if (p < arg.size()) ++p; // ')'
          }
          m.body = std::string(str::trim(arg.substr(std::min(p, arg.size()))));
          macros_[name] = std::move(m);
          continue;
        }
        if (dir == "undef") {
          macros_.erase(arg);
          continue;
        }
        if (dir == "pragma") {
          if (str::trim(arg) == "once") {
            pragmaOnce_.insert(fileId);
          } else {
            // Pragmas carry semantics (OpenMP!) — pass through verbatim.
            emit("#pragma " + arg, fileId, lineNo);
          }
          continue;
        }
        fail(fileId, lineNo, "unsupported preprocessor directive #" + dir);
      }
      if (!active()) continue;
      emit(expandMacros(line), fileId, lineNo);
    }
    if (!conds.empty()) fail(fileId, static_cast<i32>(lines.size()), "unterminated #if block");
    includeStack_.pop_back();
  }
};

} // namespace

PreprocessResult preprocess(const SourceManager &sm, i32 fileId,
                            const PreprocessOptions &options) {
  Preprocessor pp(sm, options);
  return pp.run(fileId);
}

} // namespace sv::minic
