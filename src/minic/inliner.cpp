#include "minic/inliner.hpp"

#include <map>

namespace sv::minic {

namespace {

using namespace lang::ast;

class Inliner {
public:
  Inliner(TranslationUnit &unit, const InlineOptions &options) : unit_(unit), options_(options) {
    for (const auto &f : unit.functions) {
      if (!f.body) continue;
      if (f.loc.file >= 0 && options.systemFiles.count(f.loc.file)) continue;
      bodies_[f.name] = &f;
    }
  }

  InlineStats run() {
    for (usize pass = 0; pass < options_.maxDepth; ++pass) {
      changed_ = false;
      for (auto &f : unit_.functions) {
        current_ = f.name;
        if (f.body) visitStmt(*f.body);
      }
      if (!changed_) break;
    }
    return stats_;
  }

private:
  TranslationUnit &unit_;
  const InlineOptions &options_;
  std::map<std::string, const FunctionDecl *> bodies_;
  InlineStats stats_;
  std::string current_;
  bool changed_ = false;

  void visitStmt(Stmt &s) {
    if (s.cond) visitExpr(*s.cond);
    if (s.step) visitExpr(*s.step);
    if (s.init) visitStmt(*s.init);
    for (auto &d : s.decls) {
      if (d.init) visitExpr(*d.init);
      for (auto &dim : d.arrayDims)
        if (dim) visitExpr(*dim);
    }
    for (auto &c : s.children)
      if (c) visitStmt(*c);
  }

  void visitExpr(Expr &e) {
    for (auto &a : e.args)
      if (a) visitExpr(*a);
    if (e.body) visitStmt(*e.body); // lambdas and already-inlined bodies
    if (e.kind != ExprKind::Call || e.body) return;
    const Expr &callee = *e.args[0];
    if (callee.kind != ExprKind::Ident) return;
    if (callee.text == current_) return; // direct recursion
    const auto it = bodies_.find(callee.text);
    if (it == bodies_.end() || !it->second->body) return;
    e.body = it->second->body->clone();
    ++stats_.inlinedCalls;
    changed_ = true;
  }
};

} // namespace

InlineStats inlineUnit(lang::ast::TranslationUnit &unit, const InlineOptions &options) {
  return Inliner(unit, options).run();
}

} // namespace sv::minic
