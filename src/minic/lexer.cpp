#include "minic/lexer.hpp"

#include <array>
#include <cctype>

namespace sv::minic {

namespace {

constexpr std::array kKeywords = {
    "void",      "int",     "long",     "unsigned", "float",   "double",  "bool",
    "char",      "auto",    "if",       "else",     "for",     "while",   "do",
    "return",    "break",   "continue", "struct",   "class",   "namespace",
    "using",     "template","typename", "const",    "static",  "constexpr",
    "true",      "false",   "nullptr",  "public",   "private", "inline",  "extern",
    "operator",  "new",     "delete",   "sizeof",   "switch",  "case",    "default",
};

// Longest-match punctuation, ordered by length.
constexpr std::array kPunct3Plus = {"<<<", ">>>", "...", "->*", "<=>"};
constexpr std::array kPunct2 = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
                                "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};

struct Cursor {
  std::string_view text;
  usize pos = 0;
  i32 line = 1; ///< physical line in `text` (1-based)
  i32 col = 1;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek(usize ahead = 0) const {
    return pos + ahead < text.size() ? text[pos + ahead] : '\0';
  }
  char advance() {
    const char c = text[pos++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }
};

} // namespace

bool isKeyword(std::string_view word) {
  for (const auto *k : kKeywords)
    if (word == k) return true;
  return false;
}

std::vector<Token> lex(std::string_view text, i32 fileId,
                       const std::vector<lang::Location> *lineOrigins, bool allowDirectives) {
  std::vector<Token> out;
  Cursor c{text, 0, 1, 1};

  const auto location = [&](i32 physLine, i32 col) {
    if (lineOrigins && physLine >= 1 &&
        static_cast<usize>(physLine - 1) < lineOrigins->size()) {
      const auto origin = (*lineOrigins)[static_cast<usize>(physLine - 1)];
      return lang::Location{origin.file, origin.line, col};
    }
    return lang::Location{fileId, physLine, col};
  };
  const auto fail = [&](const std::string &what) -> void {
    throw lang::FrontendError(what, "file#" + std::to_string(fileId) + ":" +
                                        std::to_string(c.line));
  };

  bool lineHasContent = false; // tracks whether a token already appeared on this line
  while (!c.done()) {
    const char ch = c.peek();
    // Whitespace.
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n') {
      if (ch == '\n') lineHasContent = false;
      c.advance();
      continue;
    }
    const i32 startLine = c.line;
    const i32 startCol = c.col;
    const bool freshLine = !lineHasContent;
    lineHasContent = true;
    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      while (!(c.peek() == '*' && c.peek(1) == '/')) {
        if (c.done()) fail("unterminated block comment");
        c.advance();
      }
      c.advance();
      c.advance();
      continue;
    }
    // Preprocessor remnants: after preprocessing only #pragma lines remain.
    if (ch == '#' && freshLine) {
      std::string lineText;
      while (!c.done() && c.peek() != '\n') lineText.push_back(c.advance());
      std::string_view rest(lineText);
      rest.remove_prefix(1); // '#'
      while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
        rest.remove_prefix(1);
      if (rest.substr(0, 6) == "pragma") {
        rest.remove_prefix(6);
        while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
          rest.remove_prefix(1);
        out.push_back(Token{TokKind::Pragma, std::string(rest), location(startLine, startCol)});
      } else if (allowDirectives) {
        out.push_back(
            Token{TokKind::PpDirective, std::string(rest), location(startLine, startCol)});
      } else {
        fail("unexpected preprocessor directive reached the lexer: #" + std::string(rest));
      }
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(c.peek())) || c.peek() == '_')
        word.push_back(c.advance());
      const TokKind kind = isKeyword(word) ? TokKind::Keyword : TokKind::Ident;
      out.push_back(Token{kind, std::move(word), location(startLine, startCol)});
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::string num;
      bool isFloat = false;
      while (std::isdigit(static_cast<unsigned char>(c.peek()))) num.push_back(c.advance());
      if (c.peek() == '.') {
        // A '.' directly after digits always continues the number ("1.5",
        // "2.", "5.f"); member access cannot follow an integer literal.
        isFloat = true;
        num.push_back(c.advance());
        while (std::isdigit(static_cast<unsigned char>(c.peek()))) num.push_back(c.advance());
      }
      if (c.peek() == 'e' || c.peek() == 'E') {
        isFloat = true;
        num.push_back(c.advance());
        if (c.peek() == '+' || c.peek() == '-') num.push_back(c.advance());
        while (std::isdigit(static_cast<unsigned char>(c.peek()))) num.push_back(c.advance());
      }
      // Suffixes (f, u, l, ul, ...) are consumed but not recorded.
      while (std::isalpha(static_cast<unsigned char>(c.peek()))) {
        if (c.peek() == 'f' || c.peek() == 'F') isFloat = true;
        c.advance();
      }
      out.push_back(Token{isFloat ? TokKind::FloatLit : TokKind::IntLit, std::move(num),
                          location(startLine, startCol)});
      continue;
    }
    // Strings.
    if (ch == '"') {
      c.advance();
      std::string s;
      while (c.peek() != '"') {
        if (c.done() || c.peek() == '\n') fail("unterminated string literal");
        char x = c.advance();
        if (x == '\\' && !c.done()) {
          const char esc = c.advance();
          switch (esc) {
          case 'n': x = '\n'; break;
          case 't': x = '\t'; break;
          case '\\': x = '\\'; break;
          case '"': x = '"'; break;
          case '0': x = '\0'; break;
          default: x = esc; break;
          }
        }
        s.push_back(x);
      }
      c.advance();
      out.push_back(Token{TokKind::StringLit, std::move(s), location(startLine, startCol)});
      continue;
    }
    // Chars.
    if (ch == '\'') {
      c.advance();
      std::string s;
      while (c.peek() != '\'') {
        if (c.done() || c.peek() == '\n') fail("unterminated char literal");
        char x = c.advance();
        if (x == '\\' && !c.done()) x = c.advance();
        s.push_back(x);
      }
      c.advance();
      out.push_back(Token{TokKind::CharLit, std::move(s), location(startLine, startCol)});
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const auto *p : kPunct3Plus) {
      const std::string_view sv(p);
      if (c.text.substr(c.pos, sv.size()) == sv) {
        for (usize i = 0; i < sv.size(); ++i) c.advance();
        out.push_back(Token{TokKind::Punct, std::string(sv), location(startLine, startCol)});
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const auto *p : kPunct2) {
      const std::string_view sv(p);
      if (c.text.substr(c.pos, 2) == sv) {
        c.advance();
        c.advance();
        out.push_back(Token{TokKind::Punct, std::string(sv), location(startLine, startCol)});
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string_view kSingle = "+-*/%<>=!&|^~?:;,.(){}[]";
    if (kSingle.find(ch) != std::string_view::npos) {
      c.advance();
      out.push_back(Token{TokKind::Punct, std::string(1, ch), location(startLine, startCol)});
      continue;
    }
    fail(std::string("unexpected character '") + ch + "'");
  }
  out.push_back(Token{TokKind::Eof, "", lang::Location{fileId, c.line, c.col}});
  return out;
}

std::vector<text::CommentRange> commentRanges(std::string_view text) {
  std::vector<text::CommentRange> out;
  usize i = 0;
  bool inString = false;
  bool inChar = false;
  while (i < text.size()) {
    const char ch = text[i];
    if (inString) {
      if (ch == '\\') ++i;
      else if (ch == '"') inString = false;
      ++i;
      continue;
    }
    if (inChar) {
      if (ch == '\\') ++i;
      else if (ch == '\'') inChar = false;
      ++i;
      continue;
    }
    if (ch == '"') {
      inString = true;
      ++i;
      continue;
    }
    if (ch == '\'') {
      inChar = true;
      ++i;
      continue;
    }
    if (ch == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const usize begin = i;
      while (i < text.size() && text[i] != '\n') ++i;
      out.push_back({begin, i});
      continue;
    }
    if (ch == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const usize begin = i;
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      i = std::min(i + 2, text.size());
      out.push_back({begin, i});
      continue;
    }
    ++i;
  }
  return out;
}

} // namespace sv::minic
