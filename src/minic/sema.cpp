#include "minic/sema.hpp"

#include <map>

#include "minic/api.hpp"

namespace sv::minic {

namespace {

using namespace lang::ast;

/// Rank of arithmetic types for the usual conversions; -1 for
/// non-arithmetic.
int arithmeticRank(const Type &t) {
  if (t.pointer > 0 || !t.args.empty()) return -1;
  if (t.name == "bool") return 0;
  if (t.name == "char") return 1;
  if (t.name == "int" || t.name == "unsigned" || t.name == "unsigned int") return 2;
  if (t.name == "long" || t.name == "long long" || t.name == "unsigned long") return 3;
  if (t.name == "float") return 4;
  if (t.name == "double") return 5;
  return -1;
}

class Sema {
public:
  explicit Sema(TranslationUnit &unit) : unit_(unit) {}

  SemaStats run() {
    for (const auto &s : unit_.structs) structs_[s.name] = &s;
    for (const auto &f : unit_.functions) functions_[f.name] = &f;
    for (auto &g : unit_.globals) {
      if (g.var.init) visitExpr(*g.var.init);
      globalTypes_[g.var.name] = g.var.type;
    }
    for (auto &f : unit_.functions) analyseFunction(f);
    return stats_;
  }

private:
  TranslationUnit &unit_;
  SemaStats stats_;
  std::map<std::string, const StructDecl *> structs_;
  std::map<std::string, const FunctionDecl *> functions_;
  std::map<std::string, Type> globalTypes_;
  std::vector<std::map<std::string, Type>> scopes_;

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }
  void declare(const std::string &name, const Type &t) {
    if (!scopes_.empty()) scopes_.back()[name] = t;
  }

  [[nodiscard]] std::optional<Type> lookup(const std::string &name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    const auto g = globalTypes_.find(name);
    if (g != globalTypes_.end()) return g->second;
    return std::nullopt;
  }

  void analyseFunction(FunctionDecl &f) {
    pushScope();
    for (const auto &p : f.params) declare(p.name, p.type);
    // CUDA/HIP built-in index variables are in scope inside kernels.
    if (f.isKernel() || contains(f.attributes, "__device__")) {
      for (const auto *v : {"threadIdx", "blockIdx", "blockDim", "gridDim"})
        declare(v, Type::simple("dim3"));
    }
    if (f.body) visitStmt(*f.body);
    popScope();
  }

  static bool contains(const std::vector<std::string> &v, std::string_view s) {
    for (const auto &x : v)
      if (x == s) return true;
    return false;
  }

  void visitStmt(Stmt &s) {
    switch (s.kind) {
    case StmtKind::Compound:
      pushScope();
      for (auto &c : s.children) visitStmt(*c);
      popScope();
      break;
    case StmtKind::If:
      visitExpr(*s.cond);
      for (auto &c : s.children) visitStmt(*c);
      break;
    case StmtKind::For:
      pushScope();
      if (s.init) visitStmt(*s.init);
      if (s.cond) visitExpr(*s.cond);
      if (s.step) visitExpr(*s.step);
      for (auto &c : s.children) visitStmt(*c);
      popScope();
      break;
    case StmtKind::ForRange:
      pushScope();
      declare(s.loopVar, Type::simple("int"));
      if (s.cond) visitExpr(*s.cond);
      if (s.step) visitExpr(*s.step);
      for (auto &c : s.children) visitStmt(*c);
      popScope();
      break;
    case StmtKind::While:
    case StmtKind::DoWhile:
      visitExpr(*s.cond);
      for (auto &c : s.children) visitStmt(*c);
      break;
    case StmtKind::Return:
      if (s.cond) visitExpr(*s.cond);
      break;
    case StmtKind::ExprStmt:
      visitExpr(*s.cond);
      break;
    case StmtKind::DeclStmt:
      for (auto &d : s.decls) {
        for (auto &dim : d.arrayDims)
          if (dim) visitExpr(*dim);
        if (d.init) {
          visitExpr(*d.init);
          maybeInsertCast(d.init, d.type);
        }
        declare(d.name, d.type);
      }
      break;
    case StmtKind::Directive:
      for (auto &c : s.children) visitStmt(*c);
      break;
    case StmtKind::ArrayAssign:
      if (s.cond) visitExpr(*s.cond);
      if (s.step) visitExpr(*s.step);
      break;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
      break;
    }
  }

  /// Wrap `e` in an ImplicitCast to `target` when both sides are arithmetic
  /// and the types differ.
  void maybeInsertCast(ExprPtr &e, const Type &target) {
    if (!e) return;
    const int fromRank = arithmeticRank(e->valueType);
    const int toRank = arithmeticRank(target);
    if (fromRank < 0 || toRank < 0 || e->valueType == target) return;
    auto cast = Expr::make(ExprKind::ImplicitCast, e->loc, target.str());
    cast->valueType = target;
    cast->args.push_back(std::move(e));
    e = std::move(cast);
    ++stats_.implicitCasts;
  }

  void visitExpr(Expr &e) {
    switch (e.kind) {
    case ExprKind::IntLit: e.valueType = Type::simple("int"); break;
    case ExprKind::FloatLit: e.valueType = Type::simple("double"); break;
    case ExprKind::BoolLit: e.valueType = Type::simple("bool"); break;
    case ExprKind::StringLit: {
      Type t = Type::simple("char");
      t.pointer = 1;
      e.valueType = t;
      break;
    }
    case ExprKind::Ident: {
      if (const auto t = lookup(e.text)) {
        e.valueType = *t;
      } else if (functions_.count(e.text)) {
        e.valueType = Type::simple("<function>");
      } else {
        ++stats_.unresolvedNames; // external/runtime symbol
        stats_.unresolved.push_back(e.text);
      }
      break;
    }
    case ExprKind::Binary: {
      visitExpr(*e.args[0]);
      visitExpr(*e.args[1]);
      const int r0 = arithmeticRank(e.args[0]->valueType);
      const int r1 = arithmeticRank(e.args[1]->valueType);
      const bool comparison = e.text == "==" || e.text == "!=" || e.text == "<" ||
                              e.text == ">" || e.text == "<=" || e.text == ">=" ||
                              e.text == "&&" || e.text == "||";
      if (r0 >= 0 && r1 >= 0 && r0 != r1) {
        // Usual arithmetic conversions: promote the lower-ranked operand.
        const Type &wider = r0 > r1 ? e.args[0]->valueType : e.args[1]->valueType;
        maybeInsertCast(e.args[r0 > r1 ? 1 : 0], wider);
      }
      if (comparison) {
        e.valueType = Type::simple("bool");
      } else if (r0 >= 0 || r1 >= 0) {
        e.valueType = r0 >= r1 ? e.args[0]->valueType : e.args[1]->valueType;
      } else if (e.args[0]->valueType.pointer > 0) {
        e.valueType = e.args[0]->valueType; // pointer arithmetic
      }
      break;
    }
    case ExprKind::Unary: {
      visitExpr(*e.args[0]);
      if (e.text == "!") {
        e.valueType = Type::simple("bool");
      } else if (e.text == "*") {
        Type t = e.args[0]->valueType;
        if (t.pointer > 0) {
          --t.pointer;
          e.valueType = t;
        }
      } else if (e.text == "&") {
        Type t = e.args[0]->valueType;
        ++t.pointer;
        e.valueType = t;
      } else {
        e.valueType = e.args[0]->valueType;
      }
      break;
    }
    case ExprKind::Assign: {
      visitExpr(*e.args[0]);
      visitExpr(*e.args[1]);
      maybeInsertCast(e.args[1], e.args[0]->valueType);
      e.valueType = e.args[0]->valueType;
      break;
    }
    case ExprKind::Conditional:
      for (auto &a : e.args) visitExpr(*a);
      e.valueType = e.args[1]->valueType;
      break;
    case ExprKind::Call: {
      for (auto &a : e.args) visitExpr(*a);
      annotateCall(e);
      break;
    }
    case ExprKind::KernelLaunch:
      for (auto &a : e.args) visitExpr(*a);
      e.valueType = Type::simple("void");
      break;
    case ExprKind::Index: {
      for (auto &a : e.args) visitExpr(*a);
      Type t = e.args[0]->valueType;
      if (t.pointer > 0) {
        --t.pointer;
        e.valueType = t;
      } else if (t.name == "std::vector" && !t.args.empty()) {
        e.valueType = t.args[0];
      }
      break;
    }
    case ExprKind::Member: {
      visitExpr(*e.args[0]);
      const auto &baseType = e.args[0]->valueType;
      if (baseType.name == "dim3") {
        e.valueType = Type::simple("int");
      } else if (const auto it = structs_.find(baseType.name); it != structs_.end()) {
        for (const auto &fld : it->second->fields)
          if (fld.name == e.text) e.valueType = fld.type;
      }
      break;
    }
    case ExprKind::Lambda:
      pushScope();
      for (const auto &p : e.params) declare(p.name, p.type);
      if (e.body) visitStmt(*e.body);
      popScope();
      e.valueType = Type::simple("<lambda>");
      break;
    case ExprKind::Cast:
    case ExprKind::ImplicitCast:
      visitExpr(*e.args[0]);
      break;
    case ExprKind::InitList:
      for (auto &a : e.args) visitExpr(*a);
      break;
    case ExprKind::Range:
      for (auto &a : e.args)
        if (a) visitExpr(*a);
      break;
    }
  }

  /// Attach API annotations and the callee's return/param info when known.
  void annotateCall(Expr &call) {
    SV_CHECK(!call.args.empty(), "call without callee");
    Expr &callee = *call.args[0];
    std::optional<ApiInfo> api;
    if (callee.kind == ExprKind::Ident) {
      api = lookupApi(callee.text);
      // Template args written on the callee (`f<double>(...)`) belong to
      // the call in ClangAST terms.
      if (!callee.typeArgs.empty() && call.typeArgs.empty()) call.typeArgs = callee.typeArgs;
      if (const auto it = functions_.find(callee.text); it != functions_.end()) {
        const FunctionDecl &fn = *it->second;
        call.valueType = fn.returnType;
        // Insert implicit casts from argument types to parameter types.
        for (usize i = 0; i + 1 < call.args.size() && i < fn.params.size(); ++i)
          maybeInsertCast(call.args[i + 1], fn.params[i].type);
      }
    } else if (callee.kind == ExprKind::Member) {
      api = lookupMemberApi(callee.text);
      // Member template args written at the call live on the Member node.
      if (!callee.typeArgs.empty() && call.typeArgs.empty())
        call.typeArgs = callee.typeArgs;
    }
    if (api) {
      call.apiHiddenTemplates = api->hiddenTemplates;
      call.apiImplicitConversions = api->implicitConversions;
      ++stats_.apiCalls;
      stats_.hiddenTemplateArgs += api->hiddenTemplates;
    }
  }
};

} // namespace

SemaStats analyse(lang::ast::TranslationUnit &unit) { return Sema(unit).run(); }

} // namespace sv::minic
