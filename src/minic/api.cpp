#include "minic/api.hpp"

#include <map>
#include <string>

namespace sv::minic {

namespace {

// Counts follow the declarations cited in api.hpp. They are the per-call
// semantic surcharge each API imposes at a call site in ClangAST terms.
const std::map<std::string, ApiInfo, std::less<>> kFreeFunctions = {
    // --- SYCL free functions -------------------------------------------
    {"sycl::malloc_device", {2, 1}}, // <T>(count, queue) + usm::alloc default, context conv
    {"sycl::malloc_shared", {2, 1}},
    {"sycl::malloc_host", {2, 1}},
    {"sycl::free", {0, 1}},
    {"sycl::range", {1, 0}},
    {"sycl::buffer", {2, 1}}, // AllocatorT + dims defaults, range conversion
    // --- Kokkos ---------------------------------------------------------
    {"Kokkos::parallel_for", {3, 1}},    // ExecSpace, Schedule, IndexType defaults
    {"Kokkos::parallel_reduce", {4, 2}}, // + ReducerType, join/init materialisation
    {"Kokkos::fence", {0, 0}},
    {"Kokkos::initialize", {0, 0}},
    {"Kokkos::finalize", {0, 0}},
    {"Kokkos::deep_copy", {2, 1}},
    {"Kokkos::RangePolicy", {3, 0}},
    {"Kokkos::View", {3, 1}}, // Layout, MemSpace, MemTraits defaults
    {"Kokkos::create_mirror_view", {2, 1}},
    // --- TBB --------------------------------------------------------------
    {"tbb::parallel_for", {2, 1}},    // Index type deduction + partitioner default
    {"tbb::parallel_reduce", {3, 2}}, // + Value deduction, identity materialisation
    {"tbb::blocked_range", {1, 0}},
    // --- StdPar (ISO C++ parallel algorithms): every template parameter of
    // the declaration is deduced at the call site and materialises in the
    // AST ------------------------------------------------------------------
    {"std::for_each", {3, 0}},         // ExecutionPolicy, ForwardIt, UnaryFn
    {"std::for_each_n", {4, 0}},       // + Size
    {"std::transform", {4, 0}},        // policy, It1, OutIt, UnaryOp
    {"std::transform_reduce", {6, 1}}, // policy, It1, It2, T, BinaryOp, UnaryOp
    {"std::reduce", {4, 1}},           // policy, It, T, BinaryOp
    {"std::fill", {2, 0}},
    {"std::copy", {3, 0}},
    // --- CUDA runtime -----------------------------------------------------
    {"cudaMalloc", {0, 1}}, // void** conversion
    {"cudaFree", {0, 0}},
    {"cudaMemcpy", {0, 1}},
    {"cudaMemset", {0, 0}},
    {"cudaDeviceSynchronize", {0, 0}},
    {"cudaGetDeviceCount", {0, 0}},
    {"cudaSetDevice", {0, 0}},
    // --- HIP runtime ------------------------------------------------------
    {"hipMalloc", {0, 1}},
    {"hipFree", {0, 0}},
    {"hipMemcpy", {0, 1}},
    {"hipMemset", {0, 0}},
    {"hipDeviceSynchronize", {0, 0}},
    {"hipLaunchKernelGGL", {1, 2}}, // kernel type param + dim3 conversions
};

const std::map<std::string, ApiInfo, std::less<>> kMemberFunctions = {
    // --- SYCL members -----------------------------------------------------
    {"submit", {1, 1}},        // CGF type param; handler materialisation
    {"parallel_for", {2, 2}},  // KernelName + kernel type deduction; range/item conv
    {"single_task", {1, 1}},
    {"get_access", {2, 1}},    // target + placeholder defaults (mode is written)
    {"copy", {1, 1}},
    {"memcpy", {0, 1}},
    {"wait", {0, 0}},
    {"get_range", {1, 0}},
    {"get_id", {1, 0}},
    // --- TBB blocked_range members ---------------------------------------
    {"begin", {0, 0}},
    {"end", {0, 0}},
};

} // namespace

std::optional<ApiInfo> lookupApi(std::string_view qualifiedName) {
  const auto it = kFreeFunctions.find(qualifiedName);
  if (it == kFreeFunctions.end()) return std::nullopt;
  return it->second;
}

std::optional<ApiInfo> lookupMemberApi(std::string_view memberName) {
  const auto it = kMemberFunctions.find(memberName);
  if (it == kMemberFunctions.end()) return std::nullopt;
  return it->second;
}

} // namespace sv::minic
