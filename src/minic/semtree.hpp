// T_sem generator (Section III-A / IV-A): converts the analysed AST into a
// ClangAST-flavoured semantic tree. Per the paper: programmer-introduced
// names are dropped (only node kinds survive), literals and operator
// spellings are retained, non-semantic nodes (implicit casts) are filtered
// by default, OpenMP/OpenACC directives become first-class directive nodes
// with clause children, and model-API calls grow the hidden
// TemplateArgument / CXXConstructExpr children sema annotated.
#pragma once

#include <set>

#include "lang/ast.hpp"
#include "tree/tree.hpp"

namespace sv::minic {

struct SemTreeOptions {
  /// Keep ImplicitCast nodes (ClangAST keeps them; T_sem filters them).
  bool keepImplicitCasts = false;
  /// Skip declarations whose location lies in one of these files (system
  /// headers are masked out of the metric, Section III-C).
  std::set<i32> maskedFiles;
};

/// Build T_sem for a translation unit.
[[nodiscard]] tree::Tree buildSemTree(const lang::ast::TranslationUnit &unit,
                                      const SemTreeOptions &options = {});

} // namespace sv::minic
