#include "minic/parser.hpp"

#include "lang/directive.hpp"
#include "support/strings.hpp"

namespace sv::minic {

namespace {

using namespace lang;
using namespace lang::ast;

class Parser {
public:
  Parser(const std::vector<Token> &tokens, std::string fileName, const SourceManager &sm)
      : toks_(tokens), sm_(sm) {
    unit_.fileName = std::move(fileName);
  }

  TranslationUnit parse() {
    while (!at(TokKind::Eof)) parseTopLevel("");
    return std::move(unit_);
  }

private:
  const std::vector<Token> &toks_;
  const SourceManager &sm_;
  TranslationUnit unit_;
  usize pos_ = 0;

  // ------------------------------------------------------ token helpers --
  [[nodiscard]] const Token &peek(usize ahead = 0) const {
    const usize i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  [[nodiscard]] bool at(TokKind k) const { return peek().kind == k; }
  [[nodiscard]] bool atPunct(std::string_view p) const { return peek().isPunct(p); }
  [[nodiscard]] bool atKeyword(std::string_view k) const { return peek().isKeyword(k); }
  [[nodiscard]] Location loc() const { return peek().loc; }

  const Token &advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool acceptPunct(std::string_view p) {
    if (atPunct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool acceptKeyword(std::string_view k) {
    if (atKeyword(k)) {
      advance();
      return true;
    }
    return false;
  }

  void expectPunct(std::string_view p) {
    if (!acceptPunct(p)) fail(std::string("expected '") + std::string(p) + "', got '" +
                              peek().text + "'");
  }
  void expectKeyword(std::string_view k) {
    if (!acceptKeyword(k)) fail(std::string("expected '") + std::string(k) + "'");
  }
  std::string expectIdent() {
    if (!at(TokKind::Ident)) fail("expected identifier, got '" + peek().text + "'");
    return advance().text;
  }

  [[noreturn]] void fail(const std::string &what) const {
    throw FrontendError(what, sm_.describe(loc()));
  }

  // --------------------------------------------------------- type parse --
  /// Type keywords that may begin a declaration.
  [[nodiscard]] bool atTypeKeyword() const {
    return atKeyword("void") || atKeyword("int") || atKeyword("long") || atKeyword("unsigned") ||
           atKeyword("float") || atKeyword("double") || atKeyword("bool") || atKeyword("char") ||
           atKeyword("auto");
  }

  /// Try to parse a type at the current position. On failure, restores the
  /// cursor and returns nullopt. A type is:
  ///   'const'? name('::'name)* ('<' typeArgs '>')? '*'* '&'? 'const'?
  [[nodiscard]] std::optional<Type> tryParseType() {
    const usize save = pos_;
    Type t;
    if (acceptKeyword("const")) t.isConst = true;
    if (atTypeKeyword()) {
      t.name = advance().text;
      // `unsigned int`, `long long`, ...
      while (atTypeKeyword()) t.name += " " + advance().text;
    } else if (at(TokKind::Ident)) {
      t.name = advance().text;
      while (atPunct("::")) {
        if (!peek(1).is(TokKind::Ident)) break;
        advance();
        t.name += "::" + advance().text;
      }
    } else {
      pos_ = save;
      return std::nullopt;
    }
    // Template arguments.
    if (atPunct("<")) {
      const usize beforeArgs = pos_;
      advance();
      std::vector<Type> args;
      bool ok = true;
      while (!atPunct(">")) {
        if (at(TokKind::IntLit)) {
          args.push_back(Type::simple(advance().text));
        } else if (acceptKeyword("class") || acceptKeyword("typename")) {
          // SYCL kernel-name style template arg: `class init_kernel`.
          args.push_back(Type::simple("class " + expectIdent()));
        } else if (auto inner = tryParseType()) {
          args.push_back(std::move(*inner));
        } else {
          ok = false;
          break;
        }
        if (!acceptPunct(",")) break;
      }
      if (ok && atPunct(">")) {
        advance();
        t.args = std::move(args);
      } else {
        pos_ = beforeArgs; // not template args after all (e.g. comparison)
      }
    }
    while (atPunct("*")) {
      advance();
      ++t.pointer;
    }
    if (acceptPunct("&")) t.reference = true;
    if (acceptKeyword("const")) t.isConst = true;
    return t;
  }

  // ------------------------------------------------------- declarations --
  [[nodiscard]] std::vector<std::string> parseAttributes() {
    std::vector<std::string> attrs;
    while (true) {
      if (at(TokKind::Ident) && str::startsWith(peek().text, "__") &&
          (peek().text == "__global__" || peek().text == "__device__" ||
           peek().text == "__host__" || peek().text == "__constant__" ||
           peek().text == "__shared__" || peek().text == "__forceinline__")) {
        attrs.push_back(advance().text);
      } else if (atKeyword("static") || atKeyword("inline") || atKeyword("constexpr") ||
                 atKeyword("extern")) {
        attrs.push_back(advance().text);
      } else {
        break;
      }
    }
    return attrs;
  }

  void parseTopLevel(const std::string &nsPrefix) {
    // Pragmas at file scope (e.g. `#pragma omp declare target`).
    if (at(TokKind::Pragma)) {
      const Token &tok = advance();
      // Record as a global "directive function" marker: we attach it to the
      // next function by storing it as an attribute-like pragma. For
      // simplicity, file-scope pragmas become attributes on the following
      // function declaration.
      pendingPragmas_.push_back(tok);
      return;
    }
    if (acceptKeyword("namespace")) {
      const std::string name = expectIdent();
      expectPunct("{");
      const std::string inner = nsPrefix.empty() ? name : nsPrefix + "::" + name;
      while (!atPunct("}") && !at(TokKind::Eof)) parseTopLevel(inner);
      expectPunct("}");
      acceptPunct(";");
      return;
    }
    if (atKeyword("using")) {
      // `using namespace x;` or `using alias = type;` — consume to ';'.
      while (!atPunct(";") && !at(TokKind::Eof)) advance();
      expectPunct(";");
      return;
    }
    if (atKeyword("struct") || atKeyword("class")) {
      parseStruct(nsPrefix);
      return;
    }
    std::vector<std::string> templateParams;
    if (acceptKeyword("template")) {
      expectPunct("<");
      while (!atPunct(">")) {
        if (!acceptKeyword("typename") && !acceptKeyword("class"))
          fail("expected typename/class in template parameter list");
        templateParams.push_back(expectIdent());
        if (!acceptPunct(",")) break;
      }
      expectPunct(">");
    }
    auto attrs = parseAttributes();
    const Location declLoc = loc();
    auto type = tryParseType();
    if (!type) fail("expected a declaration");
    // Attributes may also follow the type in CUDA style (rare) — skip.
    const std::string name = parseQualifiedName();
    if (atPunct("(")) {
      FunctionDecl fn;
      fn.name = nsPrefix.empty() ? name : nsPrefix + "::" + name;
      fn.returnType = std::move(*type);
      fn.params = parseParamList();
      fn.attributes = std::move(attrs);
      fn.templateParams = std::move(templateParams);
      fn.loc = declLoc;
      for (const auto &p : pendingPragmas_) fn.attributes.push_back("#pragma " + p.text);
      pendingPragmas_.clear();
      if (atPunct("{")) {
        fn.body = parseCompound();
      } else {
        expectPunct(";");
      }
      unit_.functions.push_back(std::move(fn));
      return;
    }
    // Global variable(s).
    pendingPragmas_.clear();
    GlobalVarDecl g;
    g.attributes = std::move(attrs);
    g.loc = declLoc;
    g.var = parseVarTail(*type, name);
    unit_.globals.push_back(std::move(g));
    while (acceptPunct(",")) {
      GlobalVarDecl more;
      more.attributes = unit_.globals.back().attributes;
      more.loc = loc();
      more.var = parseVarTail(*type, parseQualifiedName());
      unit_.globals.push_back(std::move(more));
    }
    expectPunct(";");
  }

  [[nodiscard]] std::string parseQualifiedName() {
    std::string name = expectIdent();
    while (atPunct("::") && peek(1).is(TokKind::Ident)) {
      advance();
      name += "::" + advance().text;
    }
    return name;
  }

  /// After `type name`, parse array dims and initialiser (not the ';').
  [[nodiscard]] VarDecl parseVarTail(Type type, std::string name) {
    VarDecl d;
    d.type = std::move(type);
    d.name = std::move(name);
    while (acceptPunct("[")) {
      if (!atPunct("]")) d.arrayDims.push_back(parseExpr());
      else d.arrayDims.push_back(nullptr);
      expectPunct("]");
    }
    if (acceptPunct("=")) {
      d.init = parseAssignment();
    } else if (atPunct("(") || atPunct("{")) {
      // Constructor-style initialisation: treat as a Call to the type name.
      const bool brace = atPunct("{");
      advance();
      auto call = Expr::make(ExprKind::Call, loc());
      call->args.push_back(Expr::make(ExprKind::Ident, loc(), d.type.str()));
      const std::string_view close = brace ? "}" : ")";
      while (!atPunct(close)) {
        call->args.push_back(parseAssignment());
        if (!acceptPunct(",")) break;
      }
      expectPunct(close);
      d.init = std::move(call);
    }
    return d;
  }

  void parseStruct(const std::string &nsPrefix) {
    advance(); // struct/class
    StructDecl s;
    s.loc = loc();
    s.name = expectIdent();
    if (!nsPrefix.empty()) s.name = nsPrefix + "::" + s.name;
    if (acceptPunct(";")) { // forward declaration
      unit_.structs.push_back(std::move(s));
      return;
    }
    expectPunct("{");
    while (!atPunct("}")) {
      if (acceptKeyword("public") || acceptKeyword("private")) {
        expectPunct(":");
        continue;
      }
      auto type = tryParseType();
      if (!type) fail("expected field declaration in struct " + s.name);
      do {
        Param f;
        f.type = *type;
        f.name = expectIdent();
        while (acceptPunct("[")) { // fixed-size array field: record, drop dims
          if (!atPunct("]")) (void)parseExpr();
          expectPunct("]");
        }
        if (acceptPunct("=")) f.defaultValue = parseAssignment();
        s.fields.push_back(std::move(f));
      } while (acceptPunct(","));
      expectPunct(";");
    }
    expectPunct("}");
    expectPunct(";");
    unit_.structs.push_back(std::move(s));
  }

  [[nodiscard]] std::vector<Param> parseParamList() {
    expectPunct("(");
    std::vector<Param> params;
    while (!atPunct(")")) {
      Param p;
      auto type = tryParseType();
      if (!type) fail("expected parameter type");
      p.type = std::move(*type);
      if (at(TokKind::Ident)) p.name = advance().text;
      if (acceptPunct("=")) p.defaultValue = parseAssignment();
      params.push_back(std::move(p));
      if (!acceptPunct(",")) break;
    }
    expectPunct(")");
    return params;
  }

  // ---------------------------------------------------------- statements --
  [[nodiscard]] StmtPtr parseCompound() {
    const Location l = loc();
    expectPunct("{");
    auto s = Stmt::make(StmtKind::Compound, l);
    while (!atPunct("}") && !at(TokKind::Eof)) s->children.push_back(parseStmt());
    expectPunct("}");
    return s;
  }

  [[nodiscard]] StmtPtr parseStmt() {
    const Location l = loc();
    if (at(TokKind::Pragma)) {
      const Token &tok = advance();
      auto s = Stmt::make(StmtKind::Directive, tok.loc);
      s->directive = parseDirective(tok.text, tok.loc);
      // OpenMP/OpenACC structured directives govern the next statement;
      // standalone ones (barrier, taskwait, flush) do not.
      const auto &kind = s->directive->kind;
      const auto has = [&](std::string_view w) {
        for (const auto &k : kind)
          if (k == w) return true;
        return false;
      };
      // Standalone directives: barriers and the unstructured data-mapping
      // forms (`target enter data`, `target exit data`, `target update`).
      const bool standalone = (!kind.empty() && (kind[0] == "barrier" || kind[0] == "taskwait" ||
                                                 kind[0] == "flush")) ||
                              has("enter") || has("exit") || has("update");
      if (!standalone && !atPunct("}") && !at(TokKind::Eof))
        s->children.push_back(parseStmt());
      return s;
    }
    if (atPunct("{")) return parseCompound();
    if (acceptKeyword("if")) {
      auto s = Stmt::make(StmtKind::If, l);
      expectPunct("(");
      s->cond = parseExpr();
      expectPunct(")");
      s->children.push_back(parseStmt());
      if (acceptKeyword("else")) s->children.push_back(parseStmt());
      return s;
    }
    if (acceptKeyword("for")) {
      auto s = Stmt::make(StmtKind::For, l);
      expectPunct("(");
      if (!acceptPunct(";")) {
        s->init = parseDeclOrExprStmt();
      }
      if (!atPunct(";")) s->cond = parseExpr();
      expectPunct(";");
      if (!atPunct(")")) s->step = parseExpr();
      expectPunct(")");
      s->children.push_back(parseStmt());
      return s;
    }
    if (acceptKeyword("while")) {
      auto s = Stmt::make(StmtKind::While, l);
      expectPunct("(");
      s->cond = parseExpr();
      expectPunct(")");
      s->children.push_back(parseStmt());
      return s;
    }
    if (acceptKeyword("do")) {
      auto s = Stmt::make(StmtKind::DoWhile, l);
      s->children.push_back(parseStmt());
      expectKeyword("while");
      expectPunct("(");
      s->cond = parseExpr();
      expectPunct(")");
      expectPunct(";");
      return s;
    }
    if (acceptKeyword("return")) {
      auto s = Stmt::make(StmtKind::Return, l);
      if (!atPunct(";")) s->cond = parseExpr();
      expectPunct(";");
      return s;
    }
    if (acceptKeyword("break")) {
      expectPunct(";");
      return Stmt::make(StmtKind::Break, l);
    }
    if (acceptKeyword("continue")) {
      expectPunct(";");
      return Stmt::make(StmtKind::Continue, l);
    }
    if (acceptPunct(";")) return Stmt::make(StmtKind::Empty, l);
    auto s = parseDeclOrExprStmt();
    return s;
  }

  /// Parse either a declaration statement or an expression statement,
  /// consuming the trailing ';'.
  [[nodiscard]] StmtPtr parseDeclOrExprStmt() {
    const Location l = loc();
    if (looksLikeDecl()) {
      auto s = Stmt::make(StmtKind::DeclStmt, l);
      auto type = tryParseType();
      SV_CHECK(type.has_value(), "looksLikeDecl/ tryParseType disagree");
      s->decls.push_back(parseVarTail(*type, expectIdent()));
      while (acceptPunct(",")) {
        // Subsequent declarators share the base type but may add '*'/'&'.
        Type t2 = *type;
        while (atPunct("*")) {
          advance();
          ++t2.pointer;
        }
        if (acceptPunct("&")) t2.reference = true;
        s->decls.push_back(parseVarTail(t2, expectIdent()));
      }
      expectPunct(";");
      return s;
    }
    auto s = Stmt::make(StmtKind::ExprStmt, l);
    s->cond = parseExpr();
    expectPunct(";");
    return s;
  }

  /// Declaration heuristic: try-parse a type followed by an identifier that
  /// is then followed by a declarator continuation (=, ;, ',', '[', '(' or
  /// '{' ctor-init). Restores the cursor either way.
  [[nodiscard]] bool looksLikeDecl() {
    if (atKeyword("const") || atTypeKeyword()) return true;
    const usize save = pos_;
    bool result = false;
    if (auto type = tryParseType()) {
      if (at(TokKind::Ident)) {
        const TokKind follow = peek(1).kind;
        const std::string &ft = peek(1).text;
        if (follow == TokKind::Punct &&
            (ft == "=" || ft == ";" || ft == "," || ft == "[" || ft == "{" || ft == "(")) {
          // `foo bar(...)` could be a call-looking decl `sycl::queue q(dev)`.
          // A plain function call `foo(bar)` never has two identifiers in a
          // row, so ident-ident is decisive.
          result = true;
        }
      }
    }
    pos_ = save;
    return result;
  }

  // --------------------------------------------------------- expressions --
  [[nodiscard]] ExprPtr parseExpr() {
    auto e = parseAssignment();
    // Comma operator: fold into a Binary "," chain (rare; for-steps).
    while (atPunct(",")) {
      const Location l = loc();
      advance();
      auto rhs = parseAssignment();
      auto bin = Expr::make(ExprKind::Binary, l, ",");
      bin->args.push_back(std::move(e));
      bin->args.push_back(std::move(rhs));
      e = std::move(bin);
    }
    return e;
  }

  [[nodiscard]] ExprPtr parseAssignment() {
    auto lhs = parseConditional();
    static const std::string_view ops[] = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
    for (const auto op : ops) {
      if (atPunct(op)) {
        const Location l = loc();
        advance();
        auto rhs = parseAssignment(); // right-associative
        auto e = Expr::make(ExprKind::Assign, l, std::string(op));
        e->args.push_back(std::move(lhs));
        e->args.push_back(std::move(rhs));
        return e;
      }
    }
    return lhs;
  }

  [[nodiscard]] ExprPtr parseConditional() {
    auto cond = parseBinary(0);
    if (atPunct("?")) {
      const Location l = loc();
      advance();
      auto thenE = parseAssignment();
      expectPunct(":");
      auto elseE = parseAssignment();
      auto e = Expr::make(ExprKind::Conditional, l);
      e->args.push_back(std::move(cond));
      e->args.push_back(std::move(thenE));
      e->args.push_back(std::move(elseE));
      return e;
    }
    return cond;
  }

  struct OpLevel {
    std::vector<std::string_view> ops;
  };
  [[nodiscard]] static const std::vector<OpLevel> &precedence() {
    static const std::vector<OpLevel> kLevels = {
        {{"||"}},
        {{"&&"}},
        {{"|"}},
        {{"^"}},
        {{"&"}},
        {{"==", "!="}},
        {{"<", ">", "<=", ">="}},
        {{"<<", ">>"}},
        {{"+", "-"}},
        {{"*", "/", "%"}},
    };
    return kLevels;
  }

  [[nodiscard]] ExprPtr parseBinary(usize level) {
    if (level >= precedence().size()) return parseUnary();
    auto lhs = parseBinary(level + 1);
    while (true) {
      bool matched = false;
      for (const auto op : precedence()[level].ops) {
        if (!atPunct(op)) continue;
        // Disambiguate '<' / '>' from template args: template args are
        // handled in parsePostfix via backtracking, so reaching here with
        // '<' really is a comparison.
        const Location l = loc();
        advance();
        auto rhs = parseBinary(level + 1);
        auto e = Expr::make(ExprKind::Binary, l, std::string(op));
        e->args.push_back(std::move(lhs));
        e->args.push_back(std::move(rhs));
        lhs = std::move(e);
        matched = true;
        break;
      }
      if (!matched) return lhs;
    }
  }

  [[nodiscard]] ExprPtr parseUnary() {
    static const std::string_view ops[] = {"!", "-", "+", "~", "*", "&", "++", "--"};
    for (const auto op : ops) {
      if (atPunct(op)) {
        const Location l = loc();
        advance();
        auto e = Expr::make(ExprKind::Unary, l, std::string(op));
        e->args.push_back(parseUnary());
        return e;
      }
    }
    return parsePostfix();
  }

  /// Try `<typeArgs>` at the cursor, requiring it to be followed by '('.
  /// Returns nullopt (cursor restored) if it does not parse as targs.
  [[nodiscard]] std::optional<std::vector<Type>> tryParseCallTypeArgs() {
    if (!atPunct("<")) return std::nullopt;
    const usize save = pos_;
    advance();
    std::vector<Type> args;
    while (!atPunct(">")) {
      if (at(TokKind::IntLit)) {
        args.push_back(Type::simple(advance().text));
      } else if (acceptKeyword("class") || acceptKeyword("typename")) {
        args.push_back(Type::simple("class " + expectIdent()));
      } else if (auto t = tryParseType()) {
        args.push_back(std::move(*t));
      } else {
        pos_ = save;
        return std::nullopt;
      }
      if (!acceptPunct(",")) break;
    }
    if (!atPunct(">")) {
      pos_ = save;
      return std::nullopt;
    }
    advance();
    if (!atPunct("(")) {
      pos_ = save;
      return std::nullopt;
    }
    return args;
  }

  [[nodiscard]] ExprPtr parsePostfix() {
    auto e = parsePrimary();
    while (true) {
      const Location l = loc();
      if (atPunct("(")) {
        advance();
        auto call = Expr::make(ExprKind::Call, l);
        call->args.push_back(std::move(e));
        while (!atPunct(")")) {
          call->args.push_back(parseAssignment());
          if (!acceptPunct(",")) break;
        }
        expectPunct(")");
        e = std::move(call);
        continue;
      }
      if (atPunct("<<<")) {
        advance();
        auto launch = Expr::make(ExprKind::KernelLaunch, l);
        launch->args.push_back(std::move(e));
        launch->args.push_back(parseAssignment()); // grid
        expectPunct(",");
        launch->args.push_back(parseAssignment()); // block
        expectPunct(">>>");
        expectPunct("(");
        while (!atPunct(")")) {
          launch->args.push_back(parseAssignment());
          if (!acceptPunct(",")) break;
        }
        expectPunct(")");
        e = std::move(launch);
        continue;
      }
      if (atPunct("[")) {
        advance();
        auto idx = Expr::make(ExprKind::Index, l);
        idx->args.push_back(std::move(e));
        idx->args.push_back(parseExpr());
        expectPunct("]");
        e = std::move(idx);
        continue;
      }
      if (atPunct(".") || atPunct("->")) {
        advance();
        auto mem = Expr::make(ExprKind::Member, l, expectIdent());
        mem->args.push_back(std::move(e));
        // Member template-call: `.get_access<sycl::access::mode::read>(...)`.
        if (auto targs = tryParseCallTypeArgs()) mem->typeArgs = std::move(*targs);
        e = std::move(mem);
        continue;
      }
      if (atPunct("++") || atPunct("--")) {
        auto u = Expr::make(ExprKind::Unary, l, "post" + advance().text);
        u->args.push_back(std::move(e));
        e = std::move(u);
        continue;
      }
      // Template call on a plain identifier: `f<double>(...)`.
      if ((e->kind == ExprKind::Ident) && atPunct("<")) {
        if (auto targs = tryParseCallTypeArgs()) {
          e->typeArgs = std::move(*targs);
          continue; // the '(' will be consumed by the Call branch above
        }
      }
      return e;
    }
  }

  [[nodiscard]] ExprPtr parsePrimary() {
    const Location l = loc();
    if (at(TokKind::IntLit)) return Expr::make(ExprKind::IntLit, l, advance().text);
    if (at(TokKind::FloatLit)) return Expr::make(ExprKind::FloatLit, l, advance().text);
    if (at(TokKind::StringLit)) return Expr::make(ExprKind::StringLit, l, advance().text);
    if (at(TokKind::CharLit)) return Expr::make(ExprKind::StringLit, l, advance().text);
    if (atKeyword("true") || atKeyword("false"))
      return Expr::make(ExprKind::BoolLit, l, advance().text);
    if (atKeyword("nullptr")) {
      advance();
      return Expr::make(ExprKind::IntLit, l, "0");
    }
    if (atKeyword("sizeof")) {
      advance();
      expectPunct("(");
      auto e = Expr::make(ExprKind::Call, l);
      e->args.push_back(Expr::make(ExprKind::Ident, l, "sizeof"));
      if (auto t = tryParseType()) {
        if (atPunct(")")) {
          e->args.push_back(Expr::make(ExprKind::Ident, l, t->str()));
        } else {
          fail("expected ')' after sizeof type");
        }
      } else {
        e->args.push_back(parseExpr());
      }
      expectPunct(")");
      return e;
    }
    if (atPunct("(")) {
      // Cast or parenthesised expression: `(type) expr` vs `(expr)`.
      const usize save = pos_;
      advance();
      if (auto t = tryParseType()) {
        if (atPunct(")")) {
          advance();
          // Only treat as a cast if an expression plausibly follows.
          if (at(TokKind::Ident) || at(TokKind::IntLit) || at(TokKind::FloatLit) ||
              atPunct("(") || atPunct("*") || atPunct("&") || atPunct("-")) {
            auto cast = Expr::make(ExprKind::Cast, l, t->str());
            cast->valueType = *t;
            cast->args.push_back(parseUnary());
            return cast;
          }
        }
      }
      pos_ = save;
      advance(); // '('
      auto inner = parseExpr();
      expectPunct(")");
      return inner;
    }
    if (atPunct("[")) return parseLambda();
    if (atPunct("{")) {
      advance();
      auto e = Expr::make(ExprKind::InitList, l);
      while (!atPunct("}")) {
        e->args.push_back(parseAssignment());
        if (!acceptPunct(",")) break;
      }
      expectPunct("}");
      return e;
    }
    if (at(TokKind::Ident) || atKeyword("operator")) {
      std::string name = advance().text;
      while (atPunct("::") && (peek(1).is(TokKind::Ident) || peek(1).is(TokKind::Keyword))) {
        advance();
        name += "::" + advance().text;
      }
      return Expr::make(ExprKind::Ident, l, name);
    }
    // Type keyword used as a constructor: `double(x)` / `int(n)`.
    if (atTypeKeyword()) {
      const std::string name = advance().text;
      return Expr::make(ExprKind::Ident, l, name);
    }
    fail("expected expression, got '" + peek().text + "'");
  }

  [[nodiscard]] ExprPtr parseLambda() {
    const Location l = loc();
    expectPunct("[");
    std::string capture;
    while (!atPunct("]")) {
      capture += advance().text;
    }
    expectPunct("]");
    auto e = Expr::make(ExprKind::Lambda, l, capture);
    if (atPunct("(")) e->params = parseParamList();
    if (acceptPunct("->")) {
      (void)tryParseType(); // trailing return type: parsed, not recorded
    }
    e->body = parseCompound();
    return e;
  }

  std::vector<Token> pendingPragmas_;
};

} // namespace

lang::ast::TranslationUnit parseTranslationUnit(const std::vector<Token> &tokens,
                                                std::string fileName,
                                                const lang::SourceManager &sm) {
  return Parser(tokens, std::move(fileName), sm).parse();
}

} // namespace sv::minic
