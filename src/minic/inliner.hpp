// T_sem+i inliner (Section IV-A): "inlines all function invocations that
// originated from the same source at the tree level (i.e., system headers
// or libraries are excluded)". T_sem+i captures the case where the codebase
// itself abstracts over a parallel programming model — the abstraction
// function's body (which contains the model-specific code) is pulled into
// the call site's subtree, so the divergence the abstraction was hiding
// becomes visible.
#pragma once

#include <set>

#include "lang/ast.hpp"

namespace sv::minic {

struct InlineOptions {
  /// Files whose definitions must NOT be inlined (system/model headers).
  std::set<i32> systemFiles;
  /// Maximum nesting of inlined bodies; bounds recursion.
  usize maxDepth = 3;
};

struct InlineStats {
  usize inlinedCalls = 0;
};

/// Graft, onto every call whose callee is a function defined in `unit`
/// outside the system files, a clone of the callee's body (stored in the
/// call Expr's `body`; the T_sem generator renders it as part of the call's
/// subtree). Runs `maxDepth` passes so calls inside inlined bodies are
/// themselves inlined. Direct recursion is never inlined.
InlineStats inlineUnit(lang::ast::TranslationUnit &unit, const InlineOptions &options = {});

} // namespace sv::minic
