#include "minic/semtree.hpp"
#include <set>

#include <cctype>

#include "support/strings.hpp"

namespace sv::minic {

namespace {

using namespace lang::ast;
using tree::NodeId;
using tree::Tree;

class SemTreeBuilder {
public:
  SemTreeBuilder(const TranslationUnit &unit, const SemTreeOptions &options)
      : unit_(unit), options_(options), tree_(Tree::leaf("TranslationUnitDecl")) {}

  Tree build() {
    for (const auto &s : unit_.structs) {
      if (masked(s.loc)) continue;
      const auto node = add(0, "RecordDecl", s.loc);
      for (const auto &f : s.fields) {
        (void)f;
        add(node, "FieldDecl", s.loc);
      }
    }
    for (const auto &g : unit_.globals) {
      if (masked(g.loc)) continue;
      const auto node = add(0, "VarDecl", g.loc);
      for (const auto &a : g.attributes) addAttr(node, a, g.loc);
      for (const auto &dim : g.var.arrayDims)
        if (dim) visitExpr(node, *dim);
      if (g.var.init) visitExpr(node, *g.var.init);
    }
    for (const auto &f : unit_.functions) {
      if (masked(f.loc)) continue;
      visitFunction(0, f);
    }
    return std::move(tree_);
  }

private:
  const TranslationUnit &unit_;
  const SemTreeOptions &options_;
  Tree tree_;

  [[nodiscard]] bool masked(const lang::Location &loc) const {
    return loc.file >= 0 && options_.maskedFiles.count(loc.file) != 0;
  }

  NodeId add(NodeId parent, std::string label, const lang::Location &loc) {
    return tree_.addChild(parent, std::move(label), loc.file, loc.line);
  }

  void addAttr(NodeId parent, const std::string &attr, const lang::Location &loc) {
    if (attr == "__global__") add(parent, "CUDAGlobalAttr", loc);
    else if (attr == "__device__") add(parent, "CUDADeviceAttr", loc);
    else if (attr == "__host__") add(parent, "CUDAHostAttr", loc);
    else if (attr == "__constant__") add(parent, "CUDAConstantAttr", loc);
    else if (attr == "__shared__") add(parent, "CUDASharedAttr", loc);
    else if (str::startsWith(attr, "#pragma")) {
      // file-scope pragma recorded as an attribute (e.g. omp declare target)
      add(parent, "OMPDeclareTargetDeclAttr", loc);
    }
    // static/inline/constexpr do not materialise AST nodes in ClangAST.
  }

  void visitFunction(NodeId parent, const FunctionDecl &f) {
    NodeId node = parent;
    if (!f.templateParams.empty()) {
      node = add(parent, "FunctionTemplateDecl", f.loc);
      for (usize i = 0; i < f.templateParams.size(); ++i)
        add(node, "TemplateTypeParmDecl", f.loc);
    }
    const auto fn = add(node, "FunctionDecl", f.loc);
    for (const auto &a : f.attributes) addAttr(fn, a, f.loc);
    for (const auto &p : f.params) {
      const auto pn = add(fn, "ParmVarDecl", f.loc);
      if (p.defaultValue) visitExpr(pn, *p.defaultValue);
    }
    if (f.body) visitStmt(fn, *f.body);
  }

  // ------------------------------------------------------------ stmts --
  void visitStmt(NodeId parent, const Stmt &s) {
    switch (s.kind) {
    case StmtKind::Compound: {
      const auto n = add(parent, "CompoundStmt", s.loc);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::If: {
      const auto n = add(parent, "IfStmt", s.loc);
      visitExpr(n, *s.cond);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::For: {
      const auto n = add(parent, "ForStmt", s.loc);
      if (s.init) visitStmt(n, *s.init);
      if (s.cond) visitExpr(n, *s.cond);
      if (s.step) visitExpr(n, *s.step);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::ForRange: {
      const auto n = add(parent, "ForStmt", s.loc);
      if (s.cond) visitExpr(n, *s.cond);
      if (s.step) visitExpr(n, *s.step);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::While: {
      const auto n = add(parent, "WhileStmt", s.loc);
      visitExpr(n, *s.cond);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::DoWhile: {
      const auto n = add(parent, "DoStmt", s.loc);
      for (const auto &c : s.children) visitStmt(n, *c);
      visitExpr(n, *s.cond);
      break;
    }
    case StmtKind::Return: {
      const auto n = add(parent, "ReturnStmt", s.loc);
      if (s.cond) visitExpr(n, *s.cond);
      break;
    }
    case StmtKind::Break: add(parent, "BreakStmt", s.loc); break;
    case StmtKind::Continue: add(parent, "ContinueStmt", s.loc); break;
    case StmtKind::ExprStmt: visitExpr(parent, *s.cond); break;
    case StmtKind::DeclStmt: {
      const auto n = add(parent, "DeclStmt", s.loc);
      for (const auto &d : s.decls) {
        const auto v = add(n, "VarDecl", s.loc);
        for (const auto &dim : d.arrayDims)
          if (dim) visitExpr(v, *dim);
        if (d.init) visitExpr(v, *d.init);
      }
      break;
    }
    case StmtKind::Directive: {
      visitDirective(parent, s);
      break;
    }
    case StmtKind::ArrayAssign: {
      const auto n = add(parent, "ArrayAssignStmt", s.loc);
      if (s.cond) visitExpr(n, *s.cond);
      if (s.step) visitExpr(n, *s.step);
      break;
    }
    case StmtKind::Empty: add(parent, "NullStmt", s.loc); break;
    }
  }

  /// The paper's central OpenMP observation: Clang has OpenMP-specific AST
  /// tokens ("OMPParallelForDirective", clause nodes, captured statements)
  /// that carry semantics invisible at the source level. We mirror that
  /// shape: directive node -> clause nodes -> captured statement.
  void visitDirective(NodeId parent, const Stmt &s) {
    SV_CHECK(s.directive.has_value(), "directive stmt without directive");
    const auto &d = *s.directive;
    std::string label = d.family == "acc" ? "ACC" : "OMP";
    for (const auto &k : d.kind) {
      std::string word = k;
      if (!word.empty()) word[0] = static_cast<char>(std::toupper(word[0]));
      label += word;
    }
    label += "Directive";
    const auto n = add(parent, label, s.loc);
    for (const auto &c : d.clauses) {
      std::string cname = c.name;
      if (!cname.empty()) cname[0] = static_cast<char>(std::toupper(cname[0]));
      const auto cn = add(n, (d.family == "acc" ? "ACC" : "OMP") + cname + "Clause", s.loc);
      // Clause arguments are variable references — names dropped, but each
      // argument is a semantic capture the compiler must materialise.
      for (const auto &arg : c.arguments) {
        (void)arg;
        add(cn, "DeclRefExpr", s.loc);
      }
    }
    if (!s.children.empty()) {
      const auto cap = add(n, "CapturedStmt", s.loc);
      // Clang materialises the captured record: one implicit capture field
      // per distinct variable the region references. These nodes exist
      // nowhere in the source — the core of the paper's observation that
      // OpenMP's semantic divergence exceeds its perceived divergence.
      std::set<std::string> captured;
      for (const auto &c : s.children) collectNames(*c, captured);
      for (const auto &name : captured) {
        (void)name;
        add(cap, "OMPCapturedExprDecl", s.loc);
      }
      for (const auto &c : s.children) visitStmt(cap, *c);
    }
  }

  static void collectNames(const Expr &e, std::set<std::string> &out) {
    if (e.kind == ExprKind::Ident) out.insert(e.text);
    for (const auto &a : e.args)
      if (a) collectNames(*a, out);
    if (e.body) collectNames(*e.body, out);
  }
  static void collectNames(const Stmt &s, std::set<std::string> &out) {
    if (s.cond) collectNames(*s.cond, out);
    if (s.step) collectNames(*s.step, out);
    if (s.init) collectNames(*s.init, out);
    for (const auto &d : s.decls) {
      if (d.init) collectNames(*d.init, out);
      for (const auto &dim : d.arrayDims)
        if (dim) collectNames(*dim, out);
    }
    for (const auto &c : s.children)
      if (c) collectNames(*c, out);
  }

  // ------------------------------------------------------------ exprs --
  void visitExpr(NodeId parent, const Expr &e) {
    switch (e.kind) {
    case ExprKind::IntLit: add(parent, "IntegerLiteral:" + e.text, e.loc); break;
    case ExprKind::FloatLit: add(parent, "FloatingLiteral:" + e.text, e.loc); break;
    case ExprKind::StringLit: add(parent, "StringLiteral", e.loc); break;
    case ExprKind::BoolLit: add(parent, "CXXBoolLiteralExpr:" + e.text, e.loc); break;
    case ExprKind::Ident:
      // Programmer names removed; only the reference itself remains.
      add(parent, "DeclRefExpr", e.loc);
      break;
    case ExprKind::Binary: {
      const auto n = add(parent, "BinaryOperator:" + e.text, e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Unary: {
      const auto n = add(parent, "UnaryOperator:" + e.text, e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Assign: {
      const char *kind = e.text == "=" ? "BinaryOperator:=" : "CompoundAssignOperator:";
      const auto n =
          add(parent, e.text == "=" ? std::string(kind) : std::string(kind) + e.text, e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Conditional: {
      const auto n = add(parent, "ConditionalOperator", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Call: {
      const auto n = add(parent, "CallExpr", e.loc);
      emitTemplateArgs(n, e);
      for (const auto &a : e.args) visitExpr(n, *a);
      emitApiConversions(n, e);
      // T_sem+i: the inliner grafts the callee body onto the call (Section
      // IV-A); when present it becomes part of the call's subtree.
      if (e.body) visitStmt(n, *e.body);
      break;
    }
    case ExprKind::KernelLaunch: {
      // CUDA semantic node: launch config is a semantic child of its own.
      const auto n = add(parent, "CUDAKernelCallExpr", e.loc);
      const auto cfg = add(n, "KernelLaunchConfig", e.loc);
      visitExpr(n, *e.args[0]);          // callee ref
      if (e.args.size() > 1) visitExpr(cfg, *e.args[1]); // grid
      if (e.args.size() > 2) visitExpr(cfg, *e.args[2]); // block
      for (usize i = 3; i < e.args.size(); ++i) visitExpr(n, *e.args[i]);
      break;
    }
    case ExprKind::Index: {
      const auto n = add(parent, "ArraySubscriptExpr", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Member: {
      const auto n = add(parent, "MemberExpr", e.loc);
      emitTemplateArgs(n, e);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Lambda: {
      const auto n = add(parent, "LambdaExpr", e.loc);
      for (const auto &p : e.params) {
        (void)p;
        add(n, "ParmVarDecl", e.loc);
      }
      if (e.body) visitStmt(n, *e.body);
      break;
    }
    case ExprKind::Cast: {
      const auto n = add(parent, "CStyleCastExpr", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::ImplicitCast: {
      if (options_.keepImplicitCasts) {
        const auto n = add(parent, "ImplicitCastExpr", e.loc);
        for (const auto &a : e.args) visitExpr(n, *a);
      } else {
        for (const auto &a : e.args) visitExpr(parent, *a); // filtered: splice through
      }
      break;
    }
    case ExprKind::InitList: {
      const auto n = add(parent, "InitListExpr", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Range: {
      const auto n = add(parent, "ArraySectionExpr", e.loc);
      for (const auto &a : e.args)
        if (a) visitExpr(n, *a);
      break;
    }
    }
  }

  /// Template arguments — written ones and the hidden/defaulted ones the
  /// API registry supplied. Both materialise in ClangAST.
  void emitTemplateArgs(NodeId node, const Expr &e) {
    for (const auto &t : e.typeArgs) {
      (void)t;
      add(node, "TemplateArgument", e.loc);
    }
    for (u32 i = 0; i < e.apiHiddenTemplates; ++i)
      add(node, "TemplateArgument:defaulted", e.loc);
  }

  void emitApiConversions(NodeId node, const Expr &e) {
    for (u32 i = 0; i < e.apiImplicitConversions; ++i)
      add(node, "CXXConstructExpr", e.loc);
  }
};

} // namespace

tree::Tree buildSemTree(const lang::ast::TranslationUnit &unit, const SemTreeOptions &options) {
  return SemTreeBuilder(unit, options).build();
}

} // namespace sv::minic
