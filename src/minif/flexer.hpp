// MiniF lexer: free-form Fortran-like dialect for the BabelStream Fortran
// corpus (Section V-B). Case-insensitive keywords (normalised to lower
// case), `!` comments, `!$omp` / `!$acc` directive sentinels kept as
// first-class tokens (the paper's provision for "languages that use special
// comment tokens for directives"), `&` continuations merged, and `::`,
// array-section `:` and comparison operators tokenised.
#pragma once

#include <string>
#include <vector>

#include "lang/source.hpp"
#include "text/text.hpp"

namespace sv::minif {

enum class FTokKind {
  Ident,    ///< identifiers, lower-cased
  Keyword,  ///< program/subroutine/do/end/if/... lower-cased
  IntLit,
  RealLit,
  StringLit,
  Punct,
  Directive, ///< "!$omp ..." / "!$acc ..." line; text excludes "!$"
  Newline,   ///< statement separator (also emitted for ';')
  Eof,
};

struct FToken {
  FTokKind kind{};
  std::string text;
  lang::Location loc;

  [[nodiscard]] bool is(FTokKind k) const { return kind == k; }
  [[nodiscard]] bool is(FTokKind k, std::string_view t) const { return kind == k && text == t; }
  [[nodiscard]] bool isKeyword(std::string_view t) const { return is(FTokKind::Keyword, t); }
  [[nodiscard]] bool isPunct(std::string_view t) const { return is(FTokKind::Punct, t); }
};

[[nodiscard]] bool isFortranKeyword(std::string_view lowerWord);

/// Tokenise Fortran-like source. Line continuations (`&` at end of line,
/// optionally `&` at start of the next) splice statements; comments vanish;
/// directive sentinels survive.
[[nodiscard]] std::vector<FToken> lexFortran(std::string_view text, i32 fileId);

/// Comment byte ranges (excluding directive sentinels) for normalisation.
[[nodiscard]] std::vector<text::CommentRange> fortranCommentRanges(std::string_view text);

} // namespace sv::minif
