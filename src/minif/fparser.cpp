#include "minif/fparser.hpp"

#include <set>

#include "lang/directive.hpp"
#include "support/strings.hpp"

namespace sv::minif {

namespace {

using namespace lang;
using namespace lang::ast;

class FParser {
public:
  FParser(const std::vector<FToken> &toks, std::string fileName, const SourceManager &sm)
      : toks_(toks), sm_(sm) {
    unit_.fileName = std::move(fileName);
  }

  TranslationUnit parse() {
    skipNewlines();
    while (!at(FTokKind::Eof)) {
      parseProgramUnit();
      skipNewlines();
    }
    return std::move(unit_);
  }

private:
  const std::vector<FToken> &toks_;
  const SourceManager &sm_;
  TranslationUnit unit_;
  usize pos_ = 0;
  std::set<std::string> arrayNames_; ///< per-unit: declared array variables

  // ------------------------------------------------------ token helpers --
  [[nodiscard]] const FToken &peek(usize ahead = 0) const {
    const usize i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  [[nodiscard]] bool at(FTokKind k) const { return peek().kind == k; }
  [[nodiscard]] bool atKeyword(std::string_view k) const { return peek().isKeyword(k); }
  [[nodiscard]] bool atPunct(std::string_view p) const { return peek().isPunct(p); }
  [[nodiscard]] Location loc() const { return peek().loc; }

  const FToken &advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool acceptKeyword(std::string_view k) {
    if (atKeyword(k)) {
      advance();
      return true;
    }
    return false;
  }
  bool acceptPunct(std::string_view p) {
    if (atPunct(p)) {
      advance();
      return true;
    }
    return false;
  }
  void expectKeyword(std::string_view k) {
    if (!acceptKeyword(k)) fail("expected '" + std::string(k) + "', got '" + peek().text + "'");
  }
  void expectPunct(std::string_view p) {
    if (!acceptPunct(p)) fail("expected '" + std::string(p) + "', got '" + peek().text + "'");
  }
  std::string expectIdent() {
    if (!at(FTokKind::Ident)) fail("expected identifier, got '" + peek().text + "'");
    return advance().text;
  }
  void expectNewline() {
    if (!at(FTokKind::Newline) && !at(FTokKind::Eof)) fail("expected end of statement");
    skipNewlines();
  }
  void skipNewlines() {
    while (at(FTokKind::Newline)) advance();
  }

  [[noreturn]] void fail(const std::string &what) const {
    throw FrontendError(what, sm_.describe(loc()));
  }

  // ----------------------------------------------------- program units --
  void parseProgramUnit() {
    if (atKeyword("module")) {
      advance();
      (void)expectIdent();
      expectNewline();
      // Module-level declarations are rare in the corpus; skip to contains.
      while (!atKeyword("contains") && !atKeyword("end") && !at(FTokKind::Eof)) {
        skipStatement();
      }
      if (acceptKeyword("contains")) {
        expectNewline();
        while (!atKeyword("end") && !at(FTokKind::Eof)) {
          parseProgramUnit();
          skipNewlines();
        }
      }
      expectKeyword("end");
      acceptKeyword("module");
      if (at(FTokKind::Ident)) advance();
      expectNewline();
      return;
    }
    if (atKeyword("program")) {
      advance();
      const std::string name = expectIdent();
      unit_.programName = name;
      FunctionDecl fn;
      fn.name = name;
      fn.returnType = Type::simple("void");
      fn.loc = loc();
      expectNewline();
      fn.body = parseBody({"program"});
      unit_.functions.push_back(std::move(fn));
      return;
    }
    acceptKeyword("pure");
    acceptKeyword("elemental");
    if (atKeyword("subroutine") || atKeyword("function") ||
        ((atKeyword("real") || atKeyword("integer") || atKeyword("logical")) &&
         peekFunctionAfterType())) {
      parseProcedure();
      return;
    }
    if (atKeyword("use") || atKeyword("implicit")) {
      skipStatement();
      return;
    }
    fail("expected a program unit, got '" + peek().text + "'");
  }

  /// `real(8) function foo(...)` style: type prefix before `function`.
  [[nodiscard]] bool peekFunctionAfterType() const {
    usize i = pos_ + 1;
    // optional (kind) after the type keyword
    if (i < toks_.size() && toks_[i].isPunct("(")) {
      int depth = 1;
      ++i;
      while (i < toks_.size() && depth > 0) {
        if (toks_[i].isPunct("(")) ++depth;
        if (toks_[i].isPunct(")")) --depth;
        ++i;
      }
    }
    return i < toks_.size() && toks_[i].isKeyword("function");
  }

  void parseProcedure() {
    Type retType = Type::simple("void");
    if (atKeyword("real") || atKeyword("integer") || atKeyword("logical"))
      retType = parseTypeSpec();
    const bool isFunction = atKeyword("function");
    if (!acceptKeyword("subroutine") && !acceptKeyword("function"))
      fail("expected subroutine/function");
    FunctionDecl fn;
    fn.loc = loc();
    fn.name = expectIdent();
    fn.returnType = isFunction && retType.name == "void" ? Type::simple("double") : retType;
    if (acceptPunct("(")) {
      while (!atPunct(")")) {
        Param p;
        p.name = expectIdent();
        p.type = Type::simple("double"); // refined by the declaration lines
        p.type.reference = true;         // Fortran passes by reference
        fn.params.push_back(std::move(p));
        if (!acceptPunct(",")) break;
      }
      expectPunct(")");
    }
    std::string resultName;
    if (acceptKeyword("result")) {
      expectPunct("(");
      resultName = expectIdent();
      expectPunct(")");
    }
    expectNewline();
    fn.body = parseBody({"subroutine", "function"}, &fn);
    unit_.functions.push_back(std::move(fn));
  }

  // ----------------------------------------------------------- bodies --
  /// Parse statements until `end [<unitKind>]`. When `fn` is given,
  /// declaration statements refine its parameter types.
  StmtPtr parseBody(const std::vector<std::string> &unitKinds, FunctionDecl *fn = nullptr) {
    auto body = Stmt::make(StmtKind::Compound, loc());
    while (!at(FTokKind::Eof)) {
      skipNewlines();
      if (atKeyword("end")) {
        const usize save = pos_;
        advance();
        bool matches = at(FTokKind::Newline) || at(FTokKind::Eof);
        for (const auto &k : unitKinds)
          if (atKeyword(k)) matches = true;
        if (matches) {
          for (const auto &k : unitKinds) acceptKeyword(k);
          if (at(FTokKind::Ident)) advance(); // optional unit name
          expectNewline();
          return body;
        }
        pos_ = save;
      }
      if (at(FTokKind::Eof)) break;
      if (auto s = parseStatement(fn)) body->children.push_back(std::move(s));
    }
    return body;
  }

  void skipStatement() {
    while (!at(FTokKind::Newline) && !at(FTokKind::Eof)) advance();
    skipNewlines();
  }

  // ------------------------------------------------------ declarations --
  [[nodiscard]] Type parseTypeSpec() {
    Type t;
    if (acceptKeyword("integer")) t = Type::simple("int");
    else if (acceptKeyword("logical")) t = Type::simple("bool");
    else if (acceptKeyword("real")) t = Type::simple("double");
    else if (acceptKeyword("character")) t = Type::simple("char");
    else fail("expected a type");
    if (acceptPunct("(")) { // kind spec: (8), (kind=8), (len=*)
      while (!atPunct(")")) advance();
      expectPunct(")");
    }
    return t;
  }

  /// Returns nullptr for statements that do not produce AST (use/implicit).
  StmtPtr parseStatement(FunctionDecl *fn) {
    const Location l = loc();
    if (at(FTokKind::Directive)) {
      const FToken &tok = advance();
      expectNewline();
      auto s = Stmt::make(StmtKind::Directive, tok.loc);
      s->directive = parseDirective(tok.text, tok.loc);
      // `!$omp end ...` and barrier-like directives are standalone.
      const auto &kind = s->directive->kind;
      const bool isEnd = !tok.text.empty() && tok.text.find(" end") != std::string::npos;
      const bool standalone = isEnd || (kind.size() == 1 && kind[0] == "barrier");
      if (str::startsWith(tok.text, "omp end") || str::startsWith(tok.text, "acc end"))
        return nullptr; // closing sentinel: structure already captured
      if (!standalone && !at(FTokKind::Eof)) {
        if (auto governed = parseStatement(fn)) s->children.push_back(std::move(governed));
      }
      return s;
    }
    if (atKeyword("use") || atKeyword("implicit")) {
      skipStatement();
      return nullptr;
    }
    if (atKeyword("integer") || atKeyword("real") || atKeyword("logical") ||
        atKeyword("character")) {
      return parseDeclaration(fn);
    }
    if (atKeyword("do")) return parseDo();
    if (atKeyword("if")) return parseIf();
    if (atKeyword("call")) {
      advance();
      auto s = Stmt::make(StmtKind::ExprStmt, l);
      auto call = Expr::make(ExprKind::Call, l);
      call->args.push_back(Expr::make(ExprKind::Ident, l, expectIdent()));
      if (acceptPunct("(")) {
        while (!atPunct(")")) {
          call->args.push_back(parseExpr());
          if (!acceptPunct(",")) break;
        }
        expectPunct(")");
      }
      s->cond = std::move(call);
      expectNewline();
      return s;
    }
    if (atKeyword("allocate") || atKeyword("deallocate")) {
      const std::string which = advance().text;
      auto s = Stmt::make(StmtKind::ExprStmt, l);
      auto call = Expr::make(ExprKind::Call, l);
      call->args.push_back(Expr::make(ExprKind::Ident, l, which));
      expectPunct("(");
      while (!atPunct(")")) {
        call->args.push_back(parseExpr());
        if (!acceptPunct(",")) break;
      }
      expectPunct(")");
      s->cond = std::move(call);
      expectNewline();
      return s;
    }
    if (atKeyword("print") || atKeyword("write")) {
      advance();
      auto s = Stmt::make(StmtKind::ExprStmt, l);
      auto call = Expr::make(ExprKind::Call, l, "");
      call->args.push_back(Expr::make(ExprKind::Ident, l, "print"));
      // consume format spec: `*,` or `(unit, fmt)`
      if (acceptPunct("(")) {
        while (!atPunct(")")) advance();
        expectPunct(")");
      } else if (acceptPunct("*")) {
      }
      acceptPunct(",");
      while (!at(FTokKind::Newline) && !at(FTokKind::Eof)) {
        call->args.push_back(parseExpr());
        if (!acceptPunct(",")) break;
      }
      s->cond = std::move(call);
      expectNewline();
      return s;
    }
    if (acceptKeyword("return")) {
      expectNewline();
      return Stmt::make(StmtKind::Return, l);
    }
    if (acceptKeyword("stop")) {
      while (!at(FTokKind::Newline) && !at(FTokKind::Eof)) advance();
      expectNewline();
      return Stmt::make(StmtKind::Return, l);
    }
    if (acceptKeyword("exit")) {
      expectNewline();
      return Stmt::make(StmtKind::Break, l);
    }
    if (acceptKeyword("cycle")) {
      expectNewline();
      return Stmt::make(StmtKind::Continue, l);
    }
    // Assignment: designator = expr.
    return parseAssignment();
  }

  StmtPtr parseDeclaration(FunctionDecl *fn) {
    const Location l = loc();
    const Type base = parseTypeSpec();
    bool allocatable = false;
    // Attributes: , allocatable , intent(in) , parameter , dimension(:)
    std::vector<ExprPtr> dimensionAttr;
    while (acceptPunct(",")) {
      if (acceptKeyword("allocatable")) {
        allocatable = true;
      } else if (acceptKeyword("parameter")) {
      } else if (acceptKeyword("intent")) {
        expectPunct("(");
        acceptKeyword("in");
        acceptKeyword("out");
        acceptKeyword("inout");
        expectPunct(")");
      } else if (acceptKeyword("dimension")) {
        expectPunct("(");
        dimensionAttr.push_back(parseDimOrColon());
        while (acceptPunct(",")) dimensionAttr.push_back(parseDimOrColon());
        expectPunct(")");
      } else {
        advance(); // unknown attribute keyword
      }
    }
    expectPunct("::");
    auto s = Stmt::make(StmtKind::DeclStmt, l);
    do {
      VarDecl d;
      d.type = base;
      d.name = expectIdent();
      if (acceptPunct("(")) {
        d.arrayDims.push_back(parseDimOrColon());
        while (acceptPunct(",")) d.arrayDims.push_back(parseDimOrColon());
        expectPunct(")");
      } else if (!dimensionAttr.empty()) {
        for (const auto &dim : dimensionAttr) d.arrayDims.push_back(dim ? dim->clone() : nullptr);
      }
      if (acceptPunct("=")) d.init = parseExpr();
      const bool isArray = !d.arrayDims.empty() || allocatable;
      if (isArray) {
        arrayNames_.insert(d.name);
        if (d.arrayDims.empty()) d.arrayDims.push_back(nullptr);
      }
      // Refine a parameter's type instead of declaring a local.
      bool isParam = false;
      if (fn) {
        for (auto &p : fn->params) {
          if (p.name == d.name) {
            p.type = d.type;
            p.type.reference = true; // Fortran by-reference semantics
            if (isArray) p.type.pointer = 1;
            isParam = true;
          }
        }
      }
      if (!isParam) s->decls.push_back(std::move(d));
    } while (acceptPunct(","));
    expectNewline();
    if (s->decls.empty()) return nullptr;
    return s;
  }

  /// A single array dimension: an expression, `:`, or `lo:hi`.
  ExprPtr parseDimOrColon() {
    if (atPunct(":")) {
      advance();
      return nullptr; // deferred shape
    }
    auto e = parseExpr();
    if (acceptPunct(":")) {
      auto range = Expr::make(ExprKind::Range, e->loc);
      range->args.push_back(std::move(e));
      range->args.push_back(atPunct(")") || atPunct(",") ? nullptr : parseExpr());
      return range;
    }
    return e;
  }

  StmtPtr parseDo() {
    const Location l = loc();
    expectKeyword("do");
    if (acceptKeyword("concurrent")) {
      // do concurrent (i = 1:n)
      auto s = Stmt::make(StmtKind::ForRange, l);
      s->loopVar = "<concurrent>"; // refined below
      expectPunct("(");
      s->loopVar = expectIdent();
      expectPunct("=");
      s->cond = parseExpr();
      expectPunct(":");
      s->step = parseExpr();
      expectPunct(")");
      expectNewline();
      s->children.push_back(parseDoBody());
      // Mark the construct: DO CONCURRENT asserts iteration independence —
      // a semantic the tree generators must see. Encoded as a directive.
      auto wrapper = Stmt::make(StmtKind::Directive, l);
      wrapper->directive = lang::ast::Directive{"fortran", {"concurrent"}, {}, l};
      wrapper->children.push_back(std::move(s));
      return wrapper;
    }
    if (acceptKeyword("while")) {
      auto s = Stmt::make(StmtKind::While, l);
      expectPunct("(");
      s->cond = parseExpr();
      expectPunct(")");
      expectNewline();
      s->children.push_back(parseDoBody());
      return s;
    }
    auto s = Stmt::make(StmtKind::ForRange, l);
    s->loopVar = expectIdent();
    expectPunct("=");
    s->cond = parseExpr();
    expectPunct(",");
    s->step = parseExpr();
    if (acceptPunct(",")) (void)parseExpr(); // stride: parsed, not modelled
    expectNewline();
    s->children.push_back(parseDoBody());
    return s;
  }

  StmtPtr parseDoBody() {
    auto body = Stmt::make(StmtKind::Compound, loc());
    while (!at(FTokKind::Eof)) {
      skipNewlines();
      if (atKeyword("enddo")) {
        advance();
        expectNewline();
        return body;
      }
      if (atKeyword("end")) {
        const usize save = pos_;
        advance();
        if (acceptKeyword("do")) {
          expectNewline();
          return body;
        }
        pos_ = save;
      }
      if (auto s = parseStatement(nullptr)) body->children.push_back(std::move(s));
    }
    fail("missing 'end do'");
  }

  StmtPtr parseIf() {
    expectKeyword("if");
    return parseIfAfterKeyword();
  }

  /// Everything after the `if`/`elseif` keyword: `(cond) then ... end if`
  /// (structured) or `(cond) stmt` (one-line). An `elseif` continuation is
  /// parsed as a nested If inside the else block.
  StmtPtr parseIfAfterKeyword() {
    const Location l = loc();
    expectPunct("(");
    auto s = Stmt::make(StmtKind::If, l);
    s->cond = parseExpr();
    expectPunct(")");
    if (!acceptKeyword("then")) {
      // One-line if.
      if (auto st = parseStatement(nullptr)) s->children.push_back(std::move(st));
      return s;
    }
    expectNewline();
    auto thenBlock = Stmt::make(StmtKind::Compound, loc());
    while (true) {
      skipNewlines();
      if (at(FTokKind::Eof)) fail("missing 'end if'");
      if (atKeyword("elseif") || atKeyword("else") || atIfTerminator()) break;
      if (auto st = parseStatement(nullptr)) thenBlock->children.push_back(std::move(st));
    }
    s->children.push_back(std::move(thenBlock));

    if (acceptKeyword("elseif")) {
      // elseif (...) then ...  ==  else { if (...) then ... }
      // The nested call consumes the shared terminating `end if`.
      auto elseBlock = Stmt::make(StmtKind::Compound, loc());
      elseBlock->children.push_back(parseIfAfterKeyword());
      s->children.push_back(std::move(elseBlock));
      return s;
    }
    if (acceptKeyword("else")) {
      expectNewline();
      auto elseBlock = Stmt::make(StmtKind::Compound, loc());
      while (true) {
        skipNewlines();
        if (at(FTokKind::Eof)) fail("missing 'end if'");
        if (atIfTerminator()) break;
        if (auto st = parseStatement(nullptr)) elseBlock->children.push_back(std::move(st));
      }
      s->children.push_back(std::move(elseBlock));
    }
    consumeIfTerminator();
    return s;
  }

  /// True at `endif` or `end if` (without consuming).
  [[nodiscard]] bool atIfTerminator() {
    if (atKeyword("endif")) return true;
    if (atKeyword("end") && peek(1).isKeyword("if")) return true;
    return false;
  }

  void consumeIfTerminator() {
    if (acceptKeyword("endif")) {
      expectNewline();
      return;
    }
    expectKeyword("end");
    expectKeyword("if");
    expectNewline();
  }


  /// Assignment or array assignment. `a(i) = e`, `a(:) = e`, `x = e`.
  StmtPtr parseAssignment() {
    const Location l = loc();
    auto lhs = parseExpr();
    expectPunct("=");
    auto rhs = parseExpr();
    expectNewline();
    const bool isSection = containsRange(*lhs);
    if (isSection) {
      auto s = Stmt::make(StmtKind::ArrayAssign, l);
      s->cond = std::move(lhs);
      s->step = std::move(rhs);
      return s;
    }
    auto s = Stmt::make(StmtKind::ExprStmt, l);
    auto assign = Expr::make(ExprKind::Assign, l, "=");
    assign->args.push_back(std::move(lhs));
    assign->args.push_back(std::move(rhs));
    s->cond = std::move(assign);
    return s;
  }

  static bool containsRange(const Expr &e) {
    if (e.kind == ExprKind::Range) return true;
    for (const auto &a : e.args)
      if (a && containsRange(*a)) return true;
    return false;
  }

  // --------------------------------------------------------- expressions --
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    auto lhs = parseAnd();
    while (true) {
      if (atPunct(".") && peek(1).isKeyword("or") && peek(2).isPunct(".")) {
        const Location l = loc();
        advance();
        advance();
        advance();
        auto e = Expr::make(ExprKind::Binary, l, "||");
        e->args.push_back(std::move(lhs));
        e->args.push_back(parseAnd());
        lhs = std::move(e);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseAnd() {
    auto lhs = parseNot();
    while (true) {
      if (atPunct(".") && peek(1).isKeyword("and") && peek(2).isPunct(".")) {
        const Location l = loc();
        advance();
        advance();
        advance();
        auto e = Expr::make(ExprKind::Binary, l, "&&");
        e->args.push_back(std::move(lhs));
        e->args.push_back(parseNot());
        lhs = std::move(e);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseNot() {
    if (atPunct(".") && peek(1).isKeyword("not") && peek(2).isPunct(".")) {
      const Location l = loc();
      advance();
      advance();
      advance();
      auto e = Expr::make(ExprKind::Unary, l, "!");
      e->args.push_back(parseNot());
      return e;
    }
    return parseComparison();
  }

  ExprPtr parseComparison() {
    auto lhs = parseAdditive();
    static const std::string_view ops[] = {"==", "/=", "<=", ">=", "<", ">"};
    for (const auto op : ops) {
      if (atPunct(op)) {
        const Location l = loc();
        advance();
        auto e = Expr::make(ExprKind::Binary, l, op == "/=" ? "!=" : std::string(op));
        e->args.push_back(std::move(lhs));
        e->args.push_back(parseAdditive());
        return e;
      }
    }
    return lhs;
  }

  ExprPtr parseAdditive() {
    auto lhs = parseMultiplicative();
    while (atPunct("+") || atPunct("-")) {
      const Location l = loc();
      const std::string op = advance().text;
      auto e = Expr::make(ExprKind::Binary, l, op);
      e->args.push_back(std::move(lhs));
      e->args.push_back(parseMultiplicative());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseMultiplicative() {
    auto lhs = parsePower();
    while (atPunct("*") || atPunct("/")) {
      const Location l = loc();
      const std::string op = advance().text;
      auto e = Expr::make(ExprKind::Binary, l, op);
      e->args.push_back(std::move(lhs));
      e->args.push_back(parsePower());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parsePower() {
    auto lhs = parseUnary();
    if (atPunct("**")) {
      const Location l = loc();
      advance();
      auto e = Expr::make(ExprKind::Binary, l, "**");
      e->args.push_back(std::move(lhs));
      e->args.push_back(parsePower()); // right associative
      return e;
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    if (atPunct("-") || atPunct("+")) {
      const Location l = loc();
      const std::string op = advance().text;
      auto e = Expr::make(ExprKind::Unary, l, op);
      e->args.push_back(parseUnary());
      return e;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Location l = loc();
    if (at(FTokKind::IntLit)) return Expr::make(ExprKind::IntLit, l, advance().text);
    if (at(FTokKind::RealLit)) return Expr::make(ExprKind::FloatLit, l, advance().text);
    if (at(FTokKind::StringLit)) return Expr::make(ExprKind::StringLit, l, advance().text);
    if (atKeyword("true")) {
      advance();
      return Expr::make(ExprKind::BoolLit, l, "true");
    }
    if (atKeyword("false")) {
      advance();
      return Expr::make(ExprKind::BoolLit, l, "false");
    }
    if (atPunct(".")) {
      // .true. / .false.
      if (peek(1).isKeyword("true") || peek(1).isKeyword("false")) {
        advance();
        const std::string v = advance().text;
        expectPunct(".");
        return Expr::make(ExprKind::BoolLit, l, v);
      }
    }
    if (atPunct("(")) {
      advance();
      auto e = parseExpr();
      expectPunct(")");
      return e;
    }
    if (at(FTokKind::Ident) || atKeyword("kind")) {
      const std::string name = advance().text;
      if (atPunct("(")) {
        advance();
        // Array reference or function call; sections make it an Index.
        std::vector<ExprPtr> args;
        bool sawRange = false;
        while (!atPunct(")")) {
          if (atPunct(":")) {
            advance();
            auto r = Expr::make(ExprKind::Range, loc());
            r->args.push_back(nullptr);
            r->args.push_back(nullptr);
            args.push_back(std::move(r));
            sawRange = true;
          } else {
            auto a = parseExpr();
            if (acceptPunct(":")) {
              auto r = Expr::make(ExprKind::Range, a->loc);
              r->args.push_back(std::move(a));
              r->args.push_back(atPunct(")") || atPunct(",") ? nullptr : parseExpr());
              args.push_back(std::move(r));
              sawRange = true;
            } else {
              args.push_back(std::move(a));
            }
          }
          if (!acceptPunct(",")) break;
        }
        expectPunct(")");
        const bool isArray = arrayNames_.count(name) != 0 || sawRange;
        auto e = Expr::make(isArray ? ExprKind::Index : ExprKind::Call, l);
        e->args.push_back(Expr::make(ExprKind::Ident, l, name));
        for (auto &a : args) e->args.push_back(std::move(a));
        if (isArray && e->args.size() == 1) {
          // a() with no index: treat as whole-array reference
          e = Expr::make(ExprKind::Ident, l, name);
        }
        return e;
      }
      return Expr::make(ExprKind::Ident, l, name);
    }
    fail("expected expression, got '" + peek().text + "'");
  }
};

} // namespace

lang::ast::TranslationUnit parseFortran(const std::vector<FToken> &tokens, std::string fileName,
                                        const lang::SourceManager &sm) {
  return FParser(tokens, std::move(fileName), sm).parse();
}

} // namespace sv::minif
