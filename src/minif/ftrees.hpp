// Fortran tree generators. T_src mirrors the MiniC builder (token view with
// paren nesting and structured directive nodes). T_sem uses GIMPLE/GENERIC-
// flavoured labels — deliberately a different label vocabulary from the
// ClangAST-flavoured MiniC T_sem, mirroring the paper's Section IV-B note
// that GIMPLE "is not comparable to ClangAST in any meaningful way":
// Fortran models are only ever compared with Fortran models.
#pragma once

#include "lang/ast.hpp"
#include "minif/flexer.hpp"
#include "tree/tree.hpp"

namespace sv::minif {

/// T_src from a Fortran token stream.
[[nodiscard]] tree::Tree buildFortranSrcTree(const std::vector<FToken> &tokens);

/// T_sem (High-GIMPLE-flavoured) from a parsed unit. GCC keeps OpenMP *and*
/// OpenACC statements as first-class GIMPLE_OMP_* / OACC_* tokens — the
/// paper confirmed the OpenMP ones experimentally (Section V-C).
[[nodiscard]] tree::Tree buildFortranSemTree(const lang::ast::TranslationUnit &unit);

} // namespace sv::minif
