// MiniF parser: Fortran-like source -> the shared lang::ast representation.
// Covers the constructs the BabelStream Fortran corpus uses (Section V-B):
// program units, subroutines/functions, typed declarations with
// allocatable arrays, DO / DO CONCURRENT / WHILE loops, IF/THEN/ELSE,
// whole-array assignments `a(:) = b(:) + scalar * c(:)`, `!$omp` / `!$acc`
// directives bound to the construct they govern, allocate/deallocate and
// intrinsic calls.
#pragma once

#include "lang/ast.hpp"
#include "minif/flexer.hpp"

namespace sv::minif {

[[nodiscard]] lang::ast::TranslationUnit parseFortran(const std::vector<FToken> &tokens,
                                                      std::string fileName,
                                                      const lang::SourceManager &sm);

} // namespace sv::minif
