#include "minif/flexer.hpp"

#include <array>
#include <cctype>

#include "support/strings.hpp"

namespace sv::minif {

namespace {

constexpr std::array kKeywords = {
    "program",    "end",      "subroutine", "function", "module",   "contains", "use",
    "implicit",   "none",     "integer",    "real",     "logical",  "character","parameter",
    "allocatable","dimension","intent",     "in",       "out",      "inout",    "do",
    "concurrent", "while",    "if",         "then",     "else",     "elseif",   "endif",
    "enddo",      "call",     "return",     "result",   "allocate", "deallocate",
    "print",      "write",    "read",       "stop",     "exit",     "cycle",    "kind",
    "true",       "false",    "and",        "or",       "not",      "eqv",      "select",
    "case",       "type",     "pure",       "elemental"};

std::string toLower(std::string s) {
  for (auto &c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

} // namespace

bool isFortranKeyword(std::string_view lowerWord) {
  for (const auto *k : kKeywords)
    if (lowerWord == k) return true;
  return false;
}

std::vector<FToken> lexFortran(std::string_view text, i32 fileId) {
  std::vector<FToken> out;
  const auto lines = str::splitLines(text);
  bool continuing = false;

  for (usize li = 0; li < lines.size(); ++li) {
    const i32 lineNo = static_cast<i32>(li + 1);
    std::string_view line = lines[li];

    // Leading continuation marker on the follow-on line.
    {
      const auto t = str::trim(line);
      if (continuing && !t.empty() && t.front() == '&')
        line = line.substr(line.find('&') + 1);
    }

    // Directive sentinel or comment?
    const auto trimmed = str::trim(line);
    if (str::startsWith(trimmed, "!$")) {
      out.push_back(FToken{FTokKind::Directive, toLower(std::string(trimmed.substr(2))),
                           lang::Location{fileId, lineNo, 1}});
      out.push_back(FToken{FTokKind::Newline, "", lang::Location{fileId, lineNo, 1}});
      continuing = false;
      continue;
    }

    usize i = 0;
    bool lineContinues = false;
    while (i < line.size()) {
      const char c = line[i];
      const i32 col = static_cast<i32>(i + 1);
      const lang::Location loc{fileId, lineNo, col};
      if (c == ' ' || c == '\t' || c == '\r') {
        ++i;
        continue;
      }
      if (c == '!') break; // comment to end of line
      if (c == '&') {
        // Trailing continuation: suppress the Newline for this line.
        lineContinues = true;
        ++i;
        continue;
      }
      if (c == ';') {
        out.push_back(FToken{FTokKind::Newline, "", loc});
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (i < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[i])) || line[i] == '_'))
          word.push_back(line[i++]);
        word = toLower(word);
        const FTokKind kind = isFortranKeyword(word) ? FTokKind::Keyword : FTokKind::Ident;
        out.push_back(FToken{kind, std::move(word), loc});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
        std::string num;
        bool isReal = false;
        while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])))
          num.push_back(line[i++]);
        // '.' only continues the number when followed by a digit, exponent
        // or kind suffix — `1.and.` style operators do not occur in MiniF,
        // but `1.0_8` and `1.e0` do.
        if (i < line.size() && line[i] == '.') {
          isReal = true;
          num.push_back(line[i++]);
          while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])))
            num.push_back(line[i++]);
        }
        if (i < line.size() && (line[i] == 'e' || line[i] == 'E' || line[i] == 'd' ||
                                line[i] == 'D')) {
          isReal = true;
          num.push_back('e');
          ++i;
          if (i < line.size() && (line[i] == '+' || line[i] == '-')) num.push_back(line[i++]);
          while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])))
            num.push_back(line[i++]);
        }
        if (i < line.size() && line[i] == '_') { // kind suffix: 1.0_8
          ++i;
          while (i < line.size() && std::isalnum(static_cast<unsigned char>(line[i]))) ++i;
          isReal = true;
        }
        out.push_back(FToken{isReal ? FTokKind::RealLit : FTokKind::IntLit, std::move(num), loc});
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        std::string s;
        while (i < line.size() && line[i] != quote) s.push_back(line[i++]);
        if (i < line.size()) ++i;
        out.push_back(FToken{FTokKind::StringLit, std::move(s), loc});
        continue;
      }
      // Multi-char punctuation.
      static const std::array<std::string_view, 8> kPunct2 = {"::", "==", "/=", "<=",
                                                              ">=", "=>", "**", "//"};
      bool matched = false;
      for (const auto p : kPunct2) {
        if (line.substr(i, 2) == p) {
          out.push_back(FToken{FTokKind::Punct, std::string(p), loc});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string_view kSingle = "+-*/<>=(),:%.";
      if (kSingle.find(c) != std::string_view::npos) {
        out.push_back(FToken{FTokKind::Punct, std::string(1, c), loc});
        ++i;
        continue;
      }
      throw lang::FrontendError(std::string("unexpected character '") + c + "'",
                                "file#" + std::to_string(fileId) + ":" + std::to_string(lineNo));
    }
    if (!lineContinues) {
      if (!out.empty() && !out.back().is(FTokKind::Newline))
        out.push_back(FToken{FTokKind::Newline, "", lang::Location{fileId, lineNo, 1}});
      continuing = false;
    } else {
      continuing = true;
    }
  }
  out.push_back(FToken{FTokKind::Eof, "",
                       lang::Location{fileId, static_cast<i32>(lines.size() + 1), 1}});
  return out;
}

std::vector<text::CommentRange> fortranCommentRanges(std::string_view text) {
  std::vector<text::CommentRange> out;
  usize lineStart = 0;
  while (lineStart <= text.size()) {
    const usize lineEnd = std::min(text.find('\n', lineStart), text.size());
    const std::string_view line = text.substr(lineStart, lineEnd - lineStart);
    bool inString = false;
    char quote = '\0';
    for (usize i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (inString) {
        if (c == quote) inString = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        inString = true;
        quote = c;
        continue;
      }
      if (c == '!') {
        // Directive sentinels are not comments.
        if (line.substr(i, 2) == "!$") break;
        out.push_back({lineStart + i, lineEnd});
        break;
      }
    }
    if (lineEnd >= text.size()) break;
    lineStart = lineEnd + 1;
  }
  return out;
}

} // namespace sv::minif
