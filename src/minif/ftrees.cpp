#include "minif/ftrees.hpp"

#include <cctype>
#include <map>

#include "support/strings.hpp"

namespace sv::minif {

namespace {
using namespace lang::ast;
using tree::NodeId;
using tree::Tree;
} // namespace

tree::Tree buildFortranSrcTree(const std::vector<FToken> &tokens) {
  auto t = Tree::leaf("source");
  std::vector<NodeId> stack{0};
  const auto top = [&] { return stack.back(); };

  for (const auto &tok : tokens) {
    const i32 file = tok.loc.file;
    const i32 line = tok.loc.line;
    switch (tok.kind) {
    case FTokKind::Eof:
    case FTokKind::Newline:
      break;
    case FTokKind::Ident:
      t.addChild(top(), "id", file, line);
      break;
    case FTokKind::Keyword:
      t.addChild(top(), tok.text, file, line);
      break;
    case FTokKind::IntLit:
      t.addChild(top(), "int:" + tok.text, file, line);
      break;
    case FTokKind::RealLit:
      t.addChild(top(), "real:" + tok.text, file, line);
      break;
    case FTokKind::StringLit:
      t.addChild(top(), "str", file, line);
      break;
    case FTokKind::Directive: {
      const auto node = t.addChild(top(), "directive", file, line);
      for (const auto &word : str::split(tok.text, ' ')) {
        if (word.empty()) continue;
        t.addChild(node, word, file, line);
      }
      break;
    }
    case FTokKind::Punct:
      if (tok.text == "(") {
        stack.push_back(t.addChild(top(), "parens", file, line));
      } else if (tok.text == ")") {
        if (stack.size() > 1) stack.pop_back();
      } else if (tok.text == ",") {
        // delimiter: dropped
      } else {
        t.addChild(top(), tok.text, file, line);
      }
      break;
    }
  }
  return t;
}

namespace {

class FSemBuilder {
public:
  explicit FSemBuilder(const TranslationUnit &unit)
      : unit_(unit), tree_(Tree::leaf("translation_unit_decl")) {}

  Tree build() {
    for (const auto &f : unit_.functions) {
      const auto fn = tree_.addChild(0, "function_decl", f.loc.file, f.loc.line);
      for (const auto &p : f.params) {
        (void)p;
        tree_.addChild(fn, "parm_decl", f.loc.file, f.loc.line);
      }
      const auto bind = tree_.addChild(fn, "gimple_bind", f.loc.file, f.loc.line);
      if (f.body) visitStmt(bind, *f.body);
    }
    return std::move(tree_);
  }

private:
  const TranslationUnit &unit_;
  Tree tree_;

  NodeId add(NodeId parent, std::string label, const lang::Location &loc) {
    return tree_.addChild(parent, std::move(label), loc.file, loc.line);
  }

  void visitStmt(NodeId parent, const Stmt &s) {
    switch (s.kind) {
    case StmtKind::Compound:
      for (const auto &c : s.children) visitStmt(parent, *c);
      break;
    case StmtKind::DeclStmt: {
      for (const auto &d : s.decls) {
        const auto v = add(parent, d.arrayDims.empty() ? "var_decl" : "var_decl:array", s.loc);
        for (const auto &dim : d.arrayDims)
          if (dim) visitExpr(v, *dim);
        if (d.init) visitExpr(v, *d.init);
      }
      break;
    }
    case StmtKind::ForRange: {
      const auto n = add(parent, "gimple_for", s.loc); // DO lowers to a counted loop
      if (s.cond) visitExpr(n, *s.cond);
      if (s.step) visitExpr(n, *s.step);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::While:
    case StmtKind::DoWhile: {
      const auto n = add(parent, "gimple_while", s.loc);
      if (s.cond) visitExpr(n, *s.cond);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::If: {
      const auto n = add(parent, "gimple_cond", s.loc);
      visitExpr(n, *s.cond);
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::Return: {
      add(parent, "gimple_return", s.loc);
      break;
    }
    case StmtKind::Break: add(parent, "gimple_goto:exit", s.loc); break;
    case StmtKind::Continue: add(parent, "gimple_goto:cycle", s.loc); break;
    case StmtKind::ExprStmt: visitExpr(parent, *s.cond); break;
    case StmtKind::ArrayAssign: {
      // Whole-array assignment: GFortran scalarises into an implicit loop.
      const auto n = add(parent, "gimple_array_assign", s.loc);
      const auto loop = add(n, "scalarized_loop", s.loc);
      if (s.cond) visitExpr(loop, *s.cond);
      if (s.step) visitExpr(loop, *s.step);
      break;
    }
    case StmtKind::Directive: {
      const auto &d = *s.directive;
      std::string label;
      if (d.family == "omp") label = "gimple_omp";
      else if (d.family == "acc") label = "gimple_oacc";
      else label = "gimple_" + d.family; // fortran do-concurrent marker
      for (const auto &k : d.kind) label += "_" + k;
      const auto n = add(parent, label, s.loc);
      for (const auto &c : d.clauses) {
        const auto cn = add(n, "omp_clause:" + c.name, s.loc);
        for (const auto &a : c.arguments) {
          (void)a;
          add(cn, "var_ref", s.loc);
        }
      }
      for (const auto &c : s.children) visitStmt(n, *c);
      break;
    }
    case StmtKind::For:
    case StmtKind::Empty:
      for (const auto &c : s.children) visitStmt(parent, *c);
      break;
    }
  }

  void visitExpr(NodeId parent, const Expr &e) {
    switch (e.kind) {
    case ExprKind::IntLit: add(parent, "integer_cst:" + e.text, e.loc); break;
    case ExprKind::FloatLit: add(parent, "real_cst:" + e.text, e.loc); break;
    case ExprKind::StringLit: add(parent, "string_cst", e.loc); break;
    case ExprKind::BoolLit: add(parent, "logical_cst:" + e.text, e.loc); break;
    case ExprKind::Ident: add(parent, "var_ref", e.loc); break;
    case ExprKind::Binary: {
      static const std::map<std::string, std::string> kOps = {
          {"+", "plus_expr"},   {"-", "minus_expr"}, {"*", "mult_expr"},
          {"/", "rdiv_expr"},   {"**", "pow_expr"},  {"==", "eq_expr"},
          {"!=", "ne_expr"},    {"<", "lt_expr"},    {">", "gt_expr"},
          {"<=", "le_expr"},    {">=", "ge_expr"},   {"&&", "truth_and_expr"},
          {"||", "truth_or_expr"}};
      const auto it = kOps.find(e.text);
      const auto n = add(parent, it != kOps.end() ? it->second : "binary_expr", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Unary: {
      const auto n = add(parent, e.text == "-" ? "negate_expr" : "unary_expr", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Assign: {
      const auto n = add(parent, "gimple_assign", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    case ExprKind::Call: {
      const auto n = add(parent, "gimple_call", e.loc);
      for (usize i = 1; i < e.args.size(); ++i) visitExpr(n, *e.args[i]);
      break;
    }
    case ExprKind::Index: {
      const auto n = add(parent, "array_ref", e.loc);
      for (usize i = 1; i < e.args.size(); ++i)
        if (e.args[i]) visitExpr(n, *e.args[i]);
      break;
    }
    case ExprKind::Range: {
      const auto n = add(parent, "array_section", e.loc);
      for (const auto &a : e.args)
        if (a) visitExpr(n, *a);
      break;
    }
    case ExprKind::Conditional: {
      const auto n = add(parent, "cond_expr", e.loc);
      for (const auto &a : e.args) visitExpr(n, *a);
      break;
    }
    default: {
      const auto n = add(parent, "expr", e.loc);
      for (const auto &a : e.args)
        if (a) visitExpr(n, *a);
      break;
    }
    }
  }
};

} // namespace

tree::Tree buildFortranSemTree(const lang::ast::TranslationUnit &unit) {
  return FSemBuilder(unit).build();
}

} // namespace sv::minif
