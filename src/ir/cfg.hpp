// Control-flow graph over ir::Function (the T_ir layer's analysable view).
// Successor/predecessor edges are derived from the terminators' `label:`
// operands; a block with no terminator falls through to the next block in
// layout order, exactly as ir::lower emits them. The graph normalises the
// entry (block 0) and the exits (every block ending in `ret`, plus a final
// fall-off-the-end block) so forward and backward dataflow have well-defined
// boundaries, and records which blocks are unreachable from the entry.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace sv::ir {

/// True for instructions that end a basic block: "br", "condbr", "ret".
[[nodiscard]] bool isTerminator(const Instr &in);

struct Cfg {
  const Function *function = nullptr;
  std::vector<std::vector<u32>> succs; ///< per-block successor indices
  std::vector<std::vector<u32>> preds; ///< per-block predecessor indices
  std::vector<bool> reachable;         ///< from the entry block (index 0)
  std::vector<u32> rpo;                ///< reverse post-order; unreachable blocks appended last
  std::vector<u32> exits;              ///< blocks ending in ret / falling off the end
  /// Index of the block's terminating instruction, or npos when the block
  /// falls through. Instructions after the first terminator are dead and
  /// contribute no edges.
  std::vector<usize> terminator;

  static constexpr usize npos = static_cast<usize>(-1);

  [[nodiscard]] usize size() const { return succs.size(); }
  /// Block index by name (the `label:` operand payload), if it exists.
  [[nodiscard]] std::optional<u32> blockOf(const std::string &name) const;
};

/// Build the CFG of one function. Unresolvable `label:` operands contribute
/// no edge (ir::verify reports them as well-formedness errors).
[[nodiscard]] Cfg buildCfg(const Function &fn);

/// Indices of blocks not reachable from the entry, in layout order.
[[nodiscard]] std::vector<u32> unreachableBlocks(const Cfg &cfg);

} // namespace sv::ir
