#include "ir/ssa.hpp"

#include <algorithm>

#include "ir/dataflow.hpp"

namespace sv::ir {

Dominators computeDominators(const Cfg &cfg) {
  Dominators d;
  const usize n = cfg.size();
  d.dom.assign(n, std::vector<bool>(n, true));
  d.idom.assign(n, Dominators::npos);
  d.frontier.assign(n, {});
  if (n == 0) return d;

  d.dom[0].assign(n, false);
  d.dom[0][0] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const u32 b : cfg.rpo) {
      if (b == 0 || !cfg.reachable[b]) continue;
      std::vector<bool> next(n, true);
      bool havePred = false;
      for (const u32 p : cfg.preds[b]) {
        if (!cfg.reachable[p]) continue;
        havePred = true;
        for (usize i = 0; i < n; ++i) next[i] = next[i] && d.dom[p][i];
      }
      if (!havePred) next.assign(n, false);
      next[b] = true;
      if (next != d.dom[b]) {
        d.dom[b] = std::move(next);
        changed = true;
      }
    }
  }

  // Immediate dominators: the strict dominator dominated by every other
  // strict dominator. Quadratic over the (small) block counts the lowering
  // produces.
  for (usize b = 1; b < n; ++b) {
    if (!cfg.reachable[b]) continue;
    for (usize c = 0; c < n; ++c) {
      if (c == b || !d.dom[b][c]) continue;
      bool best = true;
      for (usize e = 0; e < n && best; ++e)
        if (e != b && e != c && d.dom[b][e] && !d.dom[c][e]) best = false;
      if (best) {
        d.idom[b] = static_cast<u32>(c);
        break;
      }
    }
  }

  // Cooper–Harvey–Kennedy dominance frontier.
  for (usize b = 0; b < n; ++b) {
    if (!cfg.reachable[b]) continue;
    usize preds = 0;
    for (const u32 p : cfg.preds[b])
      if (cfg.reachable[p]) ++preds;
    if (preds < 2) continue;
    for (const u32 p : cfg.preds[b]) {
      if (!cfg.reachable[p]) continue;
      u32 runner = p;
      while (runner != Dominators::npos && runner != d.idom[b]) {
        d.frontier[runner].push_back(static_cast<u32>(b));
        runner = d.idom[runner];
      }
    }
  }
  for (auto &f : d.frontier) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  return d;
}

namespace {

struct Builder {
  const Function &fn;
  const Cfg &cfg;
  const Dominators &doms;
  SsaFunction out;

  /// (block, slot) -> def id of the phi placed there.
  std::map<std::pair<u32, std::string>, u32> phiAt;
  std::vector<std::vector<u32>> children; ///< dominator-tree children
  std::map<std::string, std::vector<u32>> stacks;

  explicit Builder(const Function &f, const Cfg &c, const Dominators &d)
      : fn(f), cfg(c), doms(d) {}

  [[nodiscard]] u32 addDef(SsaDef def) {
    out.defs.push_back(std::move(def));
    return static_cast<u32>(out.defs.size() - 1);
  }

  void placePhis() {
    // Store blocks per promoted slot, plus the alloca block (home of the
    // uninitialised pseudo def).
    std::map<std::string, std::set<u32>> defBlocks;
    for (usize b = 0; b < fn.blocks.size(); ++b) {
      if (!cfg.reachable[b]) continue;
      for (const auto &in : fn.blocks[b].instrs)
        if (in.op == "store" && in.operands.size() >= 2 &&
            out.promoted.count(in.operands[1]))
          defBlocks[in.operands[1]].insert(static_cast<u32>(b));
    }
    for (const auto &[slot, blocks] : defBlocks) {
      std::vector<u32> work(blocks.begin(), blocks.end());
      std::set<u32> hasPhi;
      while (!work.empty()) {
        const u32 b = work.back();
        work.pop_back();
        for (const u32 f : doms.frontier[b]) {
          if (!cfg.reachable[f] || !hasPhi.insert(f).second) continue;
          SsaDef phi;
          phi.kind = SsaDef::Kind::Phi;
          phi.slot = slot;
          phi.block = f;
          phiAt.emplace(std::make_pair(f, slot), addDef(std::move(phi)));
          if (!blocks.count(f)) work.push_back(f);
        }
      }
    }
  }

  void rename(u32 b) {
    std::vector<std::string> pushed;
    // The block's own phis define first.
    for (const auto &[key, id] : phiAt)
      if (key.first == b) {
        stacks[key.second].push_back(id);
        pushed.push_back(key.second);
      }
    for (const auto &slot : out.promoted) {
      const auto &st = stacks[slot];
      if (!st.empty())
        out.entryDef.emplace(std::make_pair(b, slot), st.back());
    }
    for (const auto &in : fn.blocks[b].instrs) {
      if (in.op == "load" && !in.operands.empty() &&
                 out.promoted.count(in.operands[0]) && !in.result.empty()) {
        const auto &st = stacks[in.operands[0]];
        if (!st.empty()) out.loadDef.emplace(in.result, st.back());
      } else if (in.op == "store" && in.operands.size() >= 2 &&
                 out.promoted.count(in.operands[1])) {
        SsaDef def;
        def.kind = SsaDef::Kind::Store;
        def.slot = in.operands[1];
        def.block = b;
        def.line = in.line;
        def.stored = in.operands[0];
        const u32 id = addDef(std::move(def));
        out.storeDef.emplace(&in, id);
        stacks[in.operands[1]].push_back(id);
        pushed.push_back(in.operands[1]);
      }
    }
    for (const u32 s : cfg.succs[b])
      for (const auto &[key, id] : phiAt)
        if (key.first == s) {
          const auto &st = stacks[key.second];
          if (!st.empty()) out.defs[id].incoming.emplace_back(b, st.back());
        }
    for (const u32 c : children[b]) rename(c);
    for (auto it = pushed.rbegin(); it != pushed.rend(); ++it)
      stacks[*it].pop_back();
  }

  [[nodiscard]] SsaFunction run() {
    out.function = &fn;
    out.promoted = trackedSlots(fn);
    if (fn.blocks.empty()) return std::move(out);
    // Every promoted slot gets its "uninitialised" pseudo def rooted at the
    // entry — the stack frame exists from function entry, so the def
    // dominates every use and every phi is total over its reachable preds.
    for (const auto &slot : out.promoted) {
      SsaDef un;
      un.kind = SsaDef::Kind::Uninit;
      un.slot = slot;
      un.block = 0;
      for (const auto &bl : fn.blocks)
        for (const auto &in : bl.instrs)
          if (in.op == "alloca" && in.result == slot) un.line = in.line;
      stacks[slot].push_back(addDef(std::move(un)));
    }
    placePhis();
    children.assign(cfg.size(), {});
    for (usize b = 1; b < cfg.size(); ++b)
      if (doms.idom[b] != Dominators::npos) children[doms.idom[b]].push_back(static_cast<u32>(b));
    rename(0);
    return std::move(out);
  }
};

} // namespace

SsaFunction buildSsa(const Function &fn, const Cfg &cfg, const Dominators &doms) {
  return Builder(fn, cfg, doms).run();
}

std::vector<std::string> verifySsa(const SsaFunction &ssa, const Cfg &cfg) {
  std::vector<std::string> errs;
  const auto bad = [&](std::string msg) { errs.push_back(std::move(msg)); };

  for (usize i = 0; i < ssa.defs.size(); ++i) {
    const auto &d = ssa.defs[i];
    if (!ssa.promoted.count(d.slot))
      bad("def " + std::to_string(i) + " names unpromoted slot " + d.slot);
    if (d.block >= cfg.size())
      bad("def " + std::to_string(i) + " in out-of-range block");
    if (d.kind != SsaDef::Kind::Phi) continue;
    // One incoming per reachable predecessor, each from a real pred.
    std::set<u32> preds;
    for (const u32 p : cfg.preds[d.block])
      if (cfg.reachable[p]) preds.insert(p);
    std::set<u32> seen;
    for (const auto &[p, id] : d.incoming) {
      if (!preds.count(p))
        bad("phi for " + d.slot + " has incoming from non-pred block " +
            std::to_string(p));
      if (!seen.insert(p).second)
        bad("phi for " + d.slot + " has duplicate incoming for block " +
            std::to_string(p));
      if (id >= ssa.defs.size())
        bad("phi for " + d.slot + " references out-of-range def");
      else if (ssa.defs[id].slot != d.slot)
        bad("phi for " + d.slot + " merges a def of " + ssa.defs[id].slot);
    }
  }
  for (const auto &[load, id] : ssa.loadDef) {
    if (id >= ssa.defs.size()) {
      bad("load " + load + " maps to out-of-range def");
      continue;
    }
    if (!ssa.promoted.count(ssa.defs[id].slot))
      bad("load " + load + " maps to a def of unpromoted slot " +
          ssa.defs[id].slot);
  }
  if (ssa.function) {
    for (const auto &bl : ssa.function->blocks)
      for (const auto &in : bl.instrs) {
        if (in.op != "load" || in.operands.empty() || in.result.empty() ||
            !ssa.promoted.count(in.operands[0]))
          continue;
        const auto it = ssa.loadDef.find(in.result);
        if (it == ssa.loadDef.end()) continue; // unreachable block: unmapped
        if (ssa.defs[it->second].slot != in.operands[0])
          bad("load " + in.result + " of " + in.operands[0] +
              " maps to a def of " + ssa.defs[it->second].slot);
      }
  }
  return errs;
}

} // namespace sv::ir
