#include "ir/irtree.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace sv::ir {

namespace {

/// Normalise an operand to its kind; names and numbering are discarded.
std::string operandKind(const std::string &op) {
  if (str::startsWith(op, "%")) return "val";
  if (str::startsWith(op, "const:")) return op; // literal values retained
  if (str::startsWith(op, "arg:")) return "arg";
  if (str::startsWith(op, "label:")) return "label";
  if (str::startsWith(op, "field:")) return "field";
  if (str::startsWith(op, "@__") || str::startsWith(op, "@.")) {
    // Runtime/outlined symbols: keep the runtime entry-point name — it is
    // an instruction-level semantic (which runtime is being called), not a
    // programmer symbol.
    return op;
  }
  if (str::startsWith(op, "@")) return "sym";
  return op;
}

/// Normalise a block name to its control-flow kind ("for.cond.3" -> "for.cond").
std::string blockKind(const std::string &name) {
  const auto dot = name.rfind('.');
  if (dot == std::string::npos) return name;
  const auto suffix = name.substr(dot + 1);
  for (const char c : suffix)
    if (!std::isdigit(static_cast<unsigned char>(c))) return name;
  return name.substr(0, dot);
}

} // namespace

tree::Tree buildIrTree(const Module &m, const IrTreeOptions &options) {
  auto t = tree::Tree::leaf("Module");
  for (const auto &g : m.globals) {
    if (g.runtime && !options.includeRuntime) continue;
    t.addChild(0, "GlobalVariable:" + g.type);
  }
  for (const auto &f : m.functions) {
    if (f.role == FunctionRole::Runtime && !options.includeRuntime) continue;
    std::string label = "Function:" + f.returnType + "/" + std::to_string(f.argCount);
    switch (f.role) {
    case FunctionRole::User: break;
    case FunctionRole::Outlined: label += ":outlined"; break;
    case FunctionRole::DeviceStub: label += ":stub"; break;
    case FunctionRole::Runtime: label += ":runtime"; break;
    }
    const auto fn = t.addChild(0, label, f.file, f.line);
    for (const auto &b : f.blocks) {
      if (b.instrs.empty()) continue; // empty fall-through blocks carry no semantics
      const auto bb = t.addChild(fn, "BasicBlock:" + blockKind(b.name), f.file, f.line);
      for (const auto &in : b.instrs) {
        const auto node = t.addChild(bb, in.op + ":" + in.type, in.file, in.line);
        for (const auto &op : in.operands) t.addChild(node, operandKind(op), in.file, in.line);
      }
    }
  }
  return t;
}

} // namespace sv::ir
