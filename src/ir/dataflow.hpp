// Generic worklist dataflow over the CFG: gen/kill bitsets per block with a
// union meet, solved forward or backward to a fixpoint, plus the two
// instances the IR lint tier consumes — reaching definitions (over interned
// temp values and non-escaping memory slots, with an "uninitialised" pseudo
// definition per slot) and slot liveness (for dead-store detection).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/cfg.hpp"

namespace sv::ir {

// --------------------------------------------------------------- bitset --

class BitSet {
public:
  BitSet() = default;
  explicit BitSet(usize bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  void set(usize i) { words_[i >> 6] |= u64{1} << (i & 63); }
  void reset(usize i) { words_[i >> 6] &= ~(u64{1} << (i & 63)); }
  [[nodiscard]] bool test(usize i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  [[nodiscard]] usize size() const { return bits_; }

  /// this |= other. Returns true when any bit changed.
  bool unionWith(const BitSet &other) {
    bool changed = false;
    for (usize w = 0; w < words_.size(); ++w) {
      const u64 merged = words_[w] | other.words_[w];
      if (merged != words_[w]) {
        words_[w] = merged;
        changed = true;
      }
    }
    return changed;
  }

  /// this = (this & ~kill) | gen — the canonical block transfer.
  void transfer(const BitSet &gen, const BitSet &kill) {
    for (usize w = 0; w < words_.size(); ++w)
      words_[w] = (words_[w] & ~kill.words_[w]) | gen.words_[w];
  }

  [[nodiscard]] bool any() const {
    for (const u64 w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] bool operator==(const BitSet &) const = default;

private:
  usize bits_ = 0;
  std::vector<u64> words_;
};

// ------------------------------------------------------------ framework --

enum class Direction { Forward, Backward };

/// A gen/kill problem with union meet (a "may" analysis).
struct DataflowProblem {
  Direction direction = Direction::Forward;
  usize numFacts = 0;
  std::vector<BitSet> gen;  ///< per block
  std::vector<BitSet> kill; ///< per block
  /// Boundary facts: IN[entry] for forward, OUT[exit] for backward.
  BitSet boundary;
};

struct DataflowSolution {
  std::vector<BitSet> in;  ///< facts before the block (in execution order)
  std::vector<BitSet> out; ///< facts after the block
};

/// Iterate to a fixpoint over the CFG (worklist seeded in reverse post-order
/// for forward problems, post-order for backward ones).
[[nodiscard]] DataflowSolution solve(const Cfg &cfg, const DataflowProblem &problem);

// ------------------------------------------------- reaching definitions --

/// Tracked memory slots of a function: results of `alloca` whose address is
/// only ever used as the address operand of a load or store. A slot whose
/// address escapes (into a call, a getelementptr, a stored value, ...) may
/// be written through the alias, so neither the uninitialised-use nor the
/// dead-store check can reason about it.
[[nodiscard]] std::set<std::string> trackedSlots(const Function &fn);

struct ReachingDefs {
  struct Def {
    u32 block = 0;
    i32 instr = -1;     ///< -1 for the per-slot "uninitialised" pseudo def
    u32 value = 0;      ///< interned value id
    bool uninit = false;
  };

  std::vector<Def> defs;                    ///< fact index -> definition site
  std::map<std::string, u32> valueIds;      ///< "%N" / "mem:%N" -> value id
  std::vector<std::vector<u32>> defsOfValue; ///< value id -> fact indices
  std::vector<std::vector<std::vector<u32>>> instrDefs; ///< block -> instr -> facts
  DataflowSolution solution;

  [[nodiscard]] u32 idOf(const std::string &key) const {
    const auto it = valueIds.find(key);
    return it == valueIds.end() ? static_cast<u32>(-1) : it->second;
  }

  /// Apply one instruction's gen/kill to `facts` (for in-block stepping).
  void step(BitSet &facts, u32 block, usize instr) const;
};

/// Definitions: every instruction result `%N` (key "%N"), every store to a
/// tracked slot (key "mem:%N"), and one uninitialised pseudo def per slot,
/// generated at its alloca.
[[nodiscard]] ReachingDefs computeReachingDefs(const Function &fn, const Cfg &cfg,
                                               const std::set<std::string> &slots);

// ------------------------------------------------------------- liveness --

struct Liveness {
  std::map<std::string, u32> slotIds; ///< tracked slot -> fact index
  DataflowSolution solution;          ///< backward: in = live-in, out = live-out
};

/// Slot liveness: a load of a slot generates, a store kills.
[[nodiscard]] Liveness computeLiveness(const Function &fn, const Cfg &cfg,
                                       const std::set<std::string> &slots);

} // namespace sv::ir
