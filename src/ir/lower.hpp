// AST -> IR lowering (the "backend" of Fig 3). Control flow becomes basic
// blocks, expressions become typed three-address instructions, lambdas and
// directive bodies are outlined into separate functions, and — the part
// that matters for the paper's T_ir findings — each offloading model's
// compilation emits its per-file driver boilerplate:
//
//   CUDA  : device kernels + host stubs (__cudaPushCallConfiguration
//           pattern) + fatbin globals + a module ctor registering every
//           kernel (mirroring clang --cuda-host-only output).
//   HIP   : same shape with HIP runtime entry points and one extra
//           managed-runtime global.
//   OMP offload: outlined target regions, @.omp_offloading.entry globals
//           and __tgt_target_kernel call sequences.
//   OMP host : outlined parallel regions + __kmpc_fork_call.
//   SYCL  : lambda kernels outlined with integration-header registration.
//   Kokkos/TBB/StdPar : outlined functor bodies + runtime dispatch calls.
//
// The model is declared by the compile command (e.g. "-x cuda", "-fopenmp",
// "-fsycl"), exactly as a Compilation DB would record it.
#pragma once

#include "ir/ir.hpp"
#include "lang/ast.hpp"

namespace sv::ir {

enum class Model {
  Serial,
  OpenMP,
  OpenMPTarget,
  Cuda,
  Hip,
  Sycl,
  Kokkos,
  Tbb,
  StdPar,
  OpenAcc,
};

[[nodiscard]] std::string_view modelName(Model m);

struct LowerOptions {
  Model model = Model::Serial;
  /// Emit the per-file offload/runtime boilerplate (on by default; the
  /// ablation bench switches it off to quantify its share of T_ir).
  bool emitRuntimeBoilerplate = true;
};

/// Lower a translation unit. Never fails on unresolved externals (they
/// become plain calls); throws InternalError on malformed AST.
[[nodiscard]] Module lower(const lang::ast::TranslationUnit &unit, const LowerOptions &options = {});

} // namespace sv::ir
