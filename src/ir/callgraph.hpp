// Bottom-up call graph with mod/ref side-effect summaries — the
// interprocedural leg of the dependence tier (see ir/deps.hpp). The
// dependence tests in deps.cpp must not give up at every call site: a loop
// that calls a helper is still analyzable when the helper's summary proves
// which memory the call can read or write.
//
// The summary lattice per function (least to greatest effect):
//
//      Pure  ⊑  Read(args/globals)  ⊑  Mod(args/globals)  ⊑  Opaque
//
// where a summary is a set of (arg index | global name) entries on each of
// the read and mod sides, plus two escape bits:
//   capturesUnknown  the function stores through a symbol that is not a
//                    module global (e.g. an outlined region referencing an
//                    enclosing function's local by name) — callers must
//                    assume any of their memory may be written
//   opaque           effects unknown entirely (unresolved external callee,
//                    or a member of a recursive SCC — summaries for cycles
//                    widen to the lattice top instead of iterating)
//
// Summaries are computed bottom-up over Tarjan SCCs of the call graph:
// leaves first, callers merge callee summaries through the actual/formal
// argument map. Any SCC with more than one member, or with a self edge,
// is widened to opaque — conservative by construction, and guaranteed to
// terminate on the fuzzers' recursive helper cycles.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace sv::ir {

/// Mod/ref summary for one function. `argRead`/`argMod` index pointer
/// formals that the function (transitively) loads from / stores through;
/// the global sets name `@symbols` touched directly or via callees.
struct ModRef {
  bool opaque = false;
  bool capturesUnknown = false;
  std::set<usize> argRead;
  std::set<usize> argMod;
  std::set<std::string> globalRead;  ///< "@name"
  std::set<std::string> globalMod;   ///< "@name"

  [[nodiscard]] bool pure() const {
    return !opaque && !capturesUnknown && argRead.empty() && argMod.empty() &&
           globalRead.empty() && globalMod.empty();
  }
  [[nodiscard]] bool writesAnything() const {
    return opaque || capturesUnknown || !argMod.empty() || !globalMod.empty();
  }
  void widen() {
    opaque = true;
    capturesUnknown = true;
  }
};

struct CallGraph {
  /// Resolved module-internal edges, caller name -> callee names (every
  /// `@fn` operand of a call that names a module function, which covers
  /// both direct calls and outlined bodies passed to `@__kmpc_fork_call`).
  std::map<std::string, std::vector<std::string>> callees;
  std::map<std::string, ModRef> summaries;

  [[nodiscard]] const ModRef *summaryOf(const std::string &name) const {
    const auto it = summaries.find(name);
    return it == summaries.end() ? nullptr : &it->second;
  }
};

/// True for external callees known to neither read nor write program
/// memory: math builtins, printf-family output, allocation, and the
/// lowering's offload/OpenMP runtime entry points.
[[nodiscard]] bool isPureExternal(const std::string &callee);

/// Per-function def-use helper: maps `%N` value ids to their defining
/// instruction and chases addresses through load / getelementptr / sext
/// chains to a root — an alloca result ("%N"), a global ("@name"), an
/// argument ("arg:i"), or the value itself when no further chasing is
/// possible. Sees through the parameter-spill idiom (`store arg:i %slot`
/// into a single-store slot), so Fortran array parameters root at their
/// `arg:i` rather than the spill slot.
class ValueChaser {
public:
  explicit ValueChaser(const Function &fn);

  [[nodiscard]] const Instr *def(const std::string &value) const {
    const auto it = defs_.find(value);
    return it == defs_.end() ? nullptr : it->second;
  }
  [[nodiscard]] std::string root(const std::string &value) const;

private:
  std::map<std::string, const Instr *> defs_;
  std::map<std::string, std::string> spills_; ///< single-store slot -> value
};

[[nodiscard]] CallGraph buildCallGraph(const Module &m);

} // namespace sv::ir
