// Loop dependence analysis — the third static-analysis tier, over the
// lowered IR's CFG (tier one checks directive semantics on the AST, tier
// two runs bit-vector dataflow per function; this tier reasons about
// *iterations*). It recovers natural loop nests from dominator-based back
// edges, recognises affine induction variables from the lowering's
// slot-load / icmp / add / store idiom, and runs the classic subscript
// dependence tests on every same-array access pair:
//
//   ZIV          both subscripts loop-invariant: equal -> loop-independent
//                dependence, unequal -> independent
//   strong SIV   equal induction coefficients: exact integer distance (or
//                proven independence on non-divisibility / trip overflow)
//   weak-zero SIV  one side invariant: single colliding iteration, proven
//                only when constant bounds place it inside the loop
//   GCD          coupled/MIV subscripts: gcd of coefficients must divide
//                the constant difference, else independent
//   Banerjee     constant-bound range check as the last word before
//                "assumed dependent"
//
// Scalars written inside a loop are classified as induction / privatizable
// (every read preceded by a same-iteration write) / reduction (`x op= e`
// update chains, including min/max-call forms) / loop-carried (upward-
// exposed read). Call sites consult the bottom-up mod/ref summaries from
// ir/callgraph.hpp, so loops that call summarised helpers stay analyzable
// instead of degrading to "unknown" at every call.
//
// Every conclusion is three-valued: *proven* dependences (the race
// ammunition), proven independence, and "assumed" dependences where a test
// was inconclusive — assumed edges block a provably-parallel verdict but
// never justify a race diagnostic. See DESIGN.md "Dependence analysis" for
// the soundness caveats.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/callgraph.hpp"
#include "ir/cfg.hpp"
#include "ir/range.hpp"

namespace sv::ir {

enum class DepKind : u8 { Flow, Anti, Output };
enum class DepDirection : u8 { Lt, Eq, Gt, Any };

[[nodiscard]] const char *name(DepKind k);
[[nodiscard]] const char *name(DepDirection d);

struct ArrayDependence {
  std::string array;   ///< root id: "@a", "arg:0", or a local slot "%N"
  DepKind kind{};
  bool carried = false;  ///< crosses iterations of the reported loop
  bool proven = false;   ///< test concluded; false = assumed (inconclusive)
  std::optional<i64> distance; ///< iterations, when an exact test found one
  DepDirection direction = DepDirection::Any;
  i32 line = -1;
};

enum class ScalarClass : u8 {
  Induction,     ///< a recognised loop counter (its own or an inner loop's)
  Privatizable,  ///< written before any read on every in-iteration path
  Reduction,     ///< all updates are `x op= e` chains with a single op
  Carried,       ///< upward-exposed read of a value written in the loop
  WriteOnly,     ///< stored every iteration, never read inside the loop
  Unknown,       ///< touched by a call or otherwise unanalyzable
};

[[nodiscard]] const char *name(ScalarClass c);

struct ScalarUse {
  std::string slot;     ///< root id of the scalar's storage
  std::string display;  ///< source-ish name ("s" for "@s", else the slot id)
  ScalarClass cls{};
  std::string op;       ///< reduction operator: "+", "*", "min", "max"
  bool shared = false;  ///< rooted at a global (shared in outlined regions)
  bool declaredInLoop = false; ///< alloca'd inside the loop body (iteration-local)
  i32 line = -1;
};

struct LoopInfo {
  u32 header = 0;
  std::vector<u32> blocks;  ///< natural-loop body block indices, sorted
  u32 depth = 0;            ///< 0 = outermost in this function
  i32 line = -1;            ///< source line of the loop condition
  i32 file = -1;            ///< source file id of the loop condition

  std::string inductionSlot;  ///< root id, empty when not recognised
  std::string inductionName;  ///< display name for reports
  bool affine = false;        ///< induction with a constant step
  i64 step = 0;
  std::optional<i64> lowerBound;  ///< initial induction value when constant
  std::optional<i64> tripCount;   ///< iteration count when bounds constant

  /// Induction-value bounds the subscript tests consult. With constant
  /// bounds these restate lowerBound/tripCount exactly (`ivExact`); with
  /// the value-range analysis (ir/range.hpp) they are a sound
  /// over-approximation of the induction's reachable values — good for
  /// proving *independence* (Banerjee, weak-zero SIV, strong-SIV trip
  /// overflow) but never for upgrading an in-range collision to a proven
  /// dependence.
  std::optional<i64> ivMin, ivMax;
  bool ivExact = false;

  bool analyzable = false;       ///< every access affine, every call summarised
  bool provablyParallel = false; ///< no carried dependence, scalars all benign
  std::vector<ArrayDependence> deps;
  std::vector<ScalarUse> scalars;

  [[nodiscard]] bool contains(u32 block) const;
};

struct FunctionDeps {
  std::string function;
  FunctionRole role{};
  std::vector<LoopInfo> loops; ///< outer-first (by header block index)
};

struct ModuleDeps {
  CallGraph callgraph;
  std::vector<FunctionDeps> functions;
};

/// Loop recovery alone: dominator-based back-edge detection over the CFG.
/// Irreducible cycles (no dominating header) produce no loops; multi-exit
/// (`break`-heavy) bodies are recovered intact. Structural fields plus
/// induction recognition are filled; dependence fields are left empty.
[[nodiscard]] std::vector<LoopInfo> findLoops(const Function &fn, const Cfg &cfg);

/// Full per-loop dependence analysis for one function, consulting `cg` at
/// call sites. When `ranges` is given (the function's slice of an
/// interprocedural ir::ModuleRanges), loop-invariant scalars whose range
/// is a compile-time singleton fold to constants in the affine subscript
/// view (making linearised `i*ny + j` subscripts testable), and loops
/// without constant bounds get range-derived induction bounds for the
/// independence tests.
[[nodiscard]] FunctionDeps analyzeFunction(const Function &fn, const CallGraph &cg,
                                           const FunctionRanges *ranges = nullptr);

/// Build the call graph, then analyze every non-Runtime function. With
/// `ranges` each function is analyzed under its interprocedural slice;
/// without (the default — same cost as before the range tier existed) the
/// tests see only compile-time constant bounds.
[[nodiscard]] ModuleDeps analyzeModule(const Module &m,
                                       const ModuleRanges *ranges = nullptr);

} // namespace sv::ir
