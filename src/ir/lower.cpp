#include "ir/lower.hpp"

#include <map>

#include "lang/directive.hpp"
#include "support/combinators.hpp"
#include "support/strings.hpp"

namespace sv::ir {

namespace {

using namespace lang::ast;

std::string irType(const Type &t) {
  if (t.pointer > 0 || t.reference) return "ptr";
  if (t.name == "double") return "double";
  if (t.name == "float") return "float";
  if (t.name == "bool") return "i1";
  if (t.name == "void") return "void";
  if (t.name == "int" || t.name == "unsigned" || t.name == "unsigned int") return "i32";
  if (t.name == "long" || t.name == "long long" || t.name == "size_t") return "i64";
  if (t.name.empty()) return "i32";
  return "ptr"; // aggregates / runtime objects
}

bool isFloatTy(const std::string &ty) { return ty == "double" || ty == "float"; }

/// Pick the wider of two IR types for arithmetic.
std::string widen(const std::string &a, const std::string &b) {
  const auto rank = [](const std::string &t) {
    if (t == "double") return 5;
    if (t == "float") return 4;
    if (t == "i64") return 3;
    if (t == "i32") return 2;
    if (t == "i1") return 1;
    return 2;
  };
  return rank(a) >= rank(b) ? a : b;
}

class ModuleLowerer;

/// Lowers one function body to blocks of instructions.
class FunctionLowerer {
public:
  FunctionLowerer(ModuleLowerer &mod, Function &fn) : mod_(mod), fn_(fn) {
    fn_.blocks.push_back(Block{"entry", {}});
  }

  void lowerParams(const std::vector<Param> &params) {
    for (usize i = 0; i < params.size(); ++i) {
      const std::string ty = irType(params[i].type);
      const std::string slot = emit("alloca", ty, {}, params[i].type.str());
      emitVoid("store", ty, {"arg:" + std::to_string(i), slot});
      locals_[params[i].name] = {slot, ty};
    }
  }

  void lowerBody(const Stmt &body) { lowerStmt(body); }

  void finish(const std::string &retType) {
    // Ensure the last block terminates.
    if (fn_.blocks.back().instrs.empty() || (fn_.blocks.back().instrs.back().op != "ret" &&
                                             fn_.blocks.back().instrs.back().op != "br")) {
      if (retType == "void") emitVoid("ret", "void", {});
      else emitVoid("ret", retType, {"const:0"});
    }
  }

  // ------------------------------------------------------------ emitters --
  std::string emit(const std::string &op, const std::string &ty,
                   std::vector<std::string> operands, const std::string & /*comment*/ = "",
                   i32 file = -1, i32 line = -1) {
    Instr in;
    in.op = op;
    in.type = ty;
    in.result = "%" + std::to_string(nextValue_++);
    in.operands = std::move(operands);
    in.file = file;
    in.line = line;
    fn_.blocks.back().instrs.push_back(in);
    return fn_.blocks.back().instrs.back().result;
  }

  void emitVoid(const std::string &op, const std::string &ty, std::vector<std::string> operands,
                i32 file = -1, i32 line = -1) {
    Instr in;
    in.op = op;
    in.type = ty;
    in.operands = std::move(operands);
    in.file = file;
    in.line = line;
    fn_.blocks.back().instrs.push_back(in);
  }

  /// Reserve a unique block name without switching the insertion point —
  /// lets branches reference their targets before the blocks exist, so
  /// every `label:` operand resolves to a real block (ir::verify relies on
  /// this, and the CFG builder derives its edges from it).
  std::string nameBlock(const std::string &hint) {
    return hint + "." + std::to_string(nextBlock_++);
  }

  /// Begin appending into a (previously named) new block.
  void startBlock(std::string name) { fn_.blocks.push_back(Block{std::move(name), {}}); }

  std::string newBlock(const std::string &hint) {
    auto name = nameBlock(hint);
    startBlock(name);
    return fn_.blocks.back().name;
  }

  // ------------------------------------------------------------- values --
  struct Slot {
    std::string addr;
    std::string type;
  };

  /// Lower an expression to an operand; `typeOut` receives the value type.
  std::string lowerExpr(const Expr &e, std::string *typeOut = nullptr);

  /// Lower an lvalue expression to an address operand.
  Slot lowerAddress(const Expr &e);

  void lowerStmt(const Stmt &s);

  std::map<std::string, Slot> locals_;

private:
  ModuleLowerer &mod_;
  Function &fn_;
  usize nextValue_ = 0;
  usize nextBlock_ = 0;

  /// Innermost-loop branch targets for break/continue.
  struct LoopTargets {
    std::string breakTo;
    std::string continueTo;
  };
  std::vector<LoopTargets> loops_;

  void lowerDirective(const Stmt &s);
};

class ModuleLowerer {
public:
  ModuleLowerer(const TranslationUnit &unit, const LowerOptions &options)
      : unit_(unit), options_(options) {
    module_.sourceFile = unit.fileName;
  }

  Module run() {
    for (const auto &g : unit_.globals)
      module_.globals.push_back(Global{g.var.name, irType(g.var.type), false});
    for (const auto &f : unit_.functions) {
      if (!f.body) continue;
      lowerFunction(f);
    }
    if (options_.emitRuntimeBoilerplate) emitBoilerplate();
    return std::move(module_);
  }

  [[nodiscard]] const LowerOptions &options() const { return options_; }

  /// Outline a lambda (or a directive body via `stmt`) into its own
  /// function; returns its symbol name.
  std::string outlineLambda(const Expr &lambda, const std::string &hint, FunctionRole role) {
    Function fn;
    fn.name = "@" + hint + "." + std::to_string(outlineCounter_++);
    fn.returnType = "void";
    fn.argCount = lambda.params.size();
    fn.role = role;
    fn.file = lambda.loc.file;
    fn.line = lambda.loc.line;
    {
      FunctionLowerer fl(*this, fn);
      fl.lowerParams(lambda.params);
      if (lambda.body) fl.lowerBody(*lambda.body);
      fl.finish("void");
    }
    module_.functions.push_back(std::move(fn));
    return module_.functions.back().name;
  }

  std::string outlineStmt(const Stmt &body, const std::string &hint, FunctionRole role) {
    Function fn;
    fn.name = "@" + hint + "." + std::to_string(outlineCounter_++);
    fn.returnType = "void";
    fn.argCount = 2; // bound captures struct + thread id, kmpc-style
    fn.role = role;
    fn.file = body.loc.file;
    fn.line = body.loc.line;
    {
      FunctionLowerer fl(*this, fn);
      fl.lowerBody(body);
      fl.finish("void");
    }
    module_.functions.push_back(std::move(fn));
    return module_.functions.back().name;
  }

  void recordKernel(const std::string &symbol) { kernelSymbols_.push_back(symbol); }
  void recordOffloadEntry(const std::string &symbol) {
    module_.globals.push_back(Global{".omp_offloading.entry." + symbol, "ptr", true});
    offloadEntries_.push_back(symbol);
  }

  [[nodiscard]] const FunctionDecl *findFunction(const std::string &name) const {
    for (const auto &f : unit_.functions)
      if (f.name == name && f.body) return &f;
    return nullptr;
  }

private:
  const TranslationUnit &unit_;
  const LowerOptions &options_;
  Module module_;
  usize outlineCounter_ = 0;
  std::vector<std::string> kernelSymbols_;
  std::vector<std::string> offloadEntries_;

  void lowerFunction(const FunctionDecl &f) {
    const bool isKernel = f.isKernel();
    const Model m = options_.model;

    Function fn;
    fn.name = "@" + f.name;
    fn.returnType = irType(f.returnType);
    fn.argCount = f.params.size();
    fn.file = f.loc.file;
    fn.line = f.loc.line;
    fn.role = isKernel ? FunctionRole::Outlined : FunctionRole::User;
    if (isKernel) fn.name = "@__device__" + f.name;
    {
      FunctionLowerer fl(*this, fn);
      fl.lowerParams(f.params);
      fl.lowerBody(*f.body);
      fl.finish(fn.returnType);
    }
    module_.functions.push_back(std::move(fn));

    if (isKernel && (m == Model::Cuda || m == Model::Hip) && options_.emitRuntimeBoilerplate) {
      // Host-side device stub: the __cudaPopCallConfiguration + launch
      // pattern clang emits for every __global__ function.
      const std::string rt = m == Model::Cuda ? "cuda" : "hip";
      Function stub;
      stub.name = "@" + f.name; // the host symbol keeps the user name
      stub.returnType = "void";
      stub.argCount = f.params.size();
      stub.role = FunctionRole::DeviceStub;
      stub.file = f.loc.file;
      stub.line = f.loc.line;
      {
        FunctionLowerer fl(*this, stub);
        const auto cfg = fl.emit("call", "i32", {"@__" + rt + "PopCallConfiguration"});
        std::vector<std::string> ops = {"@" + rt + "LaunchKernel", cfg};
        for (usize i = 0; i < f.params.size(); ++i) ops.push_back("arg:" + std::to_string(i));
        fl.emitVoid("call", "i32", std::move(ops));
        fl.finish("void");
      }
      module_.functions.push_back(std::move(stub));
      recordKernel(f.name);
    }
  }

  /// Per-file driver code for the offloading models — the structures the
  /// paper observed "artificially increasing the divergence" of T_ir.
  void emitBoilerplate() {
    switch (options_.model) {
    case Model::Cuda: emitGpuRegistration("cuda", /*managedRuntime=*/false); break;
    case Model::Hip: emitGpuRegistration("hip", /*managedRuntime=*/true); break;
    case Model::OpenMPTarget: emitOmpOffloadRegistration(); break;
    case Model::Sycl: emitSyclRegistration(); break;
    default: break;
    }
  }

  void emitGpuRegistration(const std::string &rt, bool managedRuntime) {
    module_.globals.push_back(Global{"__" + rt + "_fatbin_wrapper", "ptr", true});
    module_.globals.push_back(Global{"__" + rt + "_gpubin_handle", "ptr", true});
    if (managedRuntime) module_.globals.push_back(Global{"__" + rt + "_module_managed", "i8", true});

    Function ctor;
    ctor.name = "@__" + rt + "_module_ctor";
    ctor.returnType = "void";
    ctor.role = FunctionRole::Runtime;
    {
      FunctionLowerer fl(*this, ctor);
      const auto handle = fl.emit("call", "ptr", {"@__" + rt + "RegisterFatBinary",
                                                  "@__" + rt + "_fatbin_wrapper"});
      fl.emitVoid("store", "ptr", {handle, "@__" + rt + "_gpubin_handle"});
      for (const auto &k : kernelSymbols_)
        fl.emitVoid("call", "void", {"@__" + rt + "RegisterFunction", handle, "@" + k});
      fl.emitVoid("call", "void", {"@__" + rt + "RegisterFatBinaryEnd", handle});
      fl.finish("void");
    }
    module_.functions.push_back(std::move(ctor));

    Function dtor;
    dtor.name = "@__" + rt + "_module_dtor";
    dtor.returnType = "void";
    dtor.role = FunctionRole::Runtime;
    {
      FunctionLowerer fl(*this, dtor);
      const auto h = fl.emit("load", "ptr", {"@__" + rt + "_gpubin_handle"});
      fl.emitVoid("call", "void", {"@__" + rt + "UnregisterFatBinary", h});
      fl.finish("void");
    }
    module_.functions.push_back(std::move(dtor));
  }

  void emitOmpOffloadRegistration() {
    module_.globals.push_back(Global{".omp_offloading.img_start", "ptr", true});
    module_.globals.push_back(Global{".omp_offloading.img_end", "ptr", true});
    module_.globals.push_back(Global{".omp_offloading.device_image", "ptr", true});
    Function reg;
    reg.name = "@.omp_offloading.requires_reg";
    reg.returnType = "void";
    reg.role = FunctionRole::Runtime;
    {
      FunctionLowerer fl(*this, reg);
      fl.emitVoid("call", "void", {"@__tgt_register_requires", "const:1"});
      for (const auto &e : offloadEntries_)
        fl.emitVoid("call", "void", {"@__tgt_register_lib", "@" + e});
      fl.finish("void");
    }
    module_.functions.push_back(std::move(reg));
  }

  void emitSyclRegistration() {
    // The integration-header registration DPC++ injects per TU.
    module_.globals.push_back(Global{"__sycl_kernel_names", "ptr", true});
    module_.globals.push_back(Global{"__sycl_kernel_signatures", "ptr", true});
    Function reg;
    reg.name = "@__sycl_register_kernels";
    reg.returnType = "void";
    reg.role = FunctionRole::Runtime;
    {
      FunctionLowerer fl(*this, reg);
      for (const auto &k : kernelSymbols_)
        fl.emitVoid("call", "void", {"@__sycl_register_kernel", "@" + k});
      fl.emitVoid("call", "void", {"@__sycl_register_module", "@__sycl_kernel_names"});
      fl.finish("void");
    }
    module_.functions.push_back(std::move(reg));
  }

  friend class FunctionLowerer;
};

// --------------------------------------------------------------- exprs ----

std::string FunctionLowerer::lowerExpr(const Expr &e, std::string *typeOut) {
  const auto setType = [&](const std::string &t) {
    if (typeOut) *typeOut = t;
  };
  const i32 file = e.loc.file;
  const i32 line = e.loc.line;
  switch (e.kind) {
  case ExprKind::IntLit: setType("i32"); return "const:" + e.text;
  case ExprKind::FloatLit: setType("double"); return "const:" + e.text;
  case ExprKind::BoolLit: setType("i1"); return e.text == "true" ? "const:1" : "const:0";
  case ExprKind::StringLit: setType("ptr"); return "const:str";
  case ExprKind::Ident: {
    const auto it = locals_.find(e.text);
    if (it != locals_.end()) {
      setType(it->second.type);
      return emit("load", it->second.type, {it->second.addr}, "", file, line);
    }
    setType(irType(e.valueType));
    return "@" + e.text; // global or external symbol
  }
  case ExprKind::Binary: {
    std::string lt, rt;
    const auto lhs = lowerExpr(*e.args[0], &lt);
    const auto rhs = lowerExpr(*e.args[1], &rt);
    const std::string ty = widen(lt, rt);
    static const std::map<std::string, std::pair<std::string, std::string>> kOps = {
        {"+", {"add", "fadd"}},  {"-", {"sub", "fsub"}},  {"*", {"mul", "fmul"}},
        {"/", {"sdiv", "fdiv"}}, {"%", {"srem", "frem"}}, {"&", {"and", "and"}},
        {"|", {"or", "or"}},     {"^", {"xor", "xor"}},   {"<<", {"shl", "shl"}},
        {">>", {"ashr", "ashr"}}};
    if (const auto it = kOps.find(e.text); it != kOps.end()) {
      setType(ty);
      return emit(isFloatTy(ty) ? it->second.second : it->second.first, ty, {lhs, rhs}, "", file,
                  line);
    }
    static const std::map<std::string, std::string> kCmp = {
        {"==", "eq"}, {"!=", "ne"}, {"<", "lt"}, {">", "gt"}, {"<=", "le"}, {">=", "ge"}};
    if (const auto it = kCmp.find(e.text); it != kCmp.end()) {
      setType("i1");
      return emit(isFloatTy(ty) ? "fcmp" : "icmp", "i1", {it->second, lhs, rhs}, "", file, line);
    }
    if (e.text == "&&" || e.text == "||") {
      setType("i1");
      return emit(e.text == "&&" ? "and" : "or", "i1", {lhs, rhs}, "", file, line);
    }
    if (e.text == ",") {
      setType(rt);
      return rhs;
    }
    setType(ty);
    return emit("binop", ty, {lhs, rhs}, "", file, line);
  }
  case ExprKind::Unary: {
    if (e.text == "*") {
      const auto p = lowerExpr(*e.args[0]);
      const std::string ty = irType(e.valueType);
      setType(ty);
      return emit("load", ty.empty() ? "double" : ty, {p}, "", file, line);
    }
    if (e.text == "&") {
      if (e.args[0]->kind == ExprKind::Ident) {
        const auto it = locals_.find(e.args[0]->text);
        setType("ptr");
        if (it != locals_.end()) return it->second.addr;
        return "@" + e.args[0]->text;
      }
      const Slot s = lowerAddress(*e.args[0]);
      setType("ptr");
      return s.addr;
    }
    if (e.text == "++" || e.text == "--" || e.text == "post++" || e.text == "post--") {
      const Slot s = lowerAddress(*e.args[0]);
      const auto old = emit("load", s.type, {s.addr}, "", file, line);
      const auto neu = emit(isFloatTy(s.type) ? (e.text.find("++") != std::string::npos ? "fadd" : "fsub")
                                              : (e.text.find("++") != std::string::npos ? "add" : "sub"),
                            s.type, {old, "const:1"}, "", file, line);
      emitVoid("store", s.type, {neu, s.addr}, file, line);
      setType(s.type);
      return e.text[0] == 'p' ? old : neu;
    }
    std::string ty;
    const auto v = lowerExpr(*e.args[0], &ty);
    setType(ty);
    if (e.text == "-") return emit(isFloatTy(ty) ? "fneg" : "neg", ty, {v}, "", file, line);
    if (e.text == "!") {
      setType("i1");
      return emit("xor", "i1", {v, "const:1"}, "", file, line);
    }
    return v; // unary +
  }
  case ExprKind::Assign: {
    const Slot s = lowerAddress(*e.args[0]);
    std::string rt;
    auto rhs = lowerExpr(*e.args[1], &rt);
    if (e.text != "=") {
      // Compound assignment: load-modify-store.
      const auto old = emit("load", s.type, {s.addr}, "", file, line);
      const std::string opCh = e.text.substr(0, e.text.size() - 1);
      static const std::map<std::string, std::pair<std::string, std::string>> kOps = {
          {"+", {"add", "fadd"}}, {"-", {"sub", "fsub"}}, {"*", {"mul", "fmul"}},
          {"/", {"sdiv", "fdiv"}}, {"%", {"srem", "frem"}}, {"&", {"and", "and"}},
          {"|", {"or", "or"}}, {"^", {"xor", "xor"}}};
      const auto it = kOps.find(opCh);
      const std::string op =
          it == kOps.end() ? "binop" : (isFloatTy(s.type) ? it->second.second : it->second.first);
      rhs = emit(op, s.type, {old, rhs}, "", file, line);
    }
    emitVoid("store", s.type, {rhs, s.addr}, file, line);
    setType(s.type);
    return rhs;
  }
  case ExprKind::Conditional: {
    const auto c = lowerExpr(*e.args[0]);
    std::string t1, t2;
    const auto a = lowerExpr(*e.args[1], &t1);
    const auto b = lowerExpr(*e.args[2], &t2);
    const std::string ty = widen(t1, t2);
    setType(ty);
    return emit("select", ty, {c, a, b}, "", file, line);
  }
  case ExprKind::Call: {
    const Expr &callee = *e.args[0];
    std::vector<std::string> ops;
    std::string target = "@indirect";
    if (callee.kind == ExprKind::Ident) target = "@" + callee.text;
    else if (callee.kind == ExprKind::Member) target = "@." + callee.text;

    // Parallel dispatch into a known runtime with a lambda body: outline
    // the lambda so the kernel exists as its own IR function.
    for (usize i = 1; i < e.args.size(); ++i) {
      const Expr &a = *e.args[i];
      if (a.kind == ExprKind::Lambda) {
        const auto role = FunctionRole::Outlined;
        std::string hint = "outlined.lambda";
        const Model m = mod_.options().model;
        if (m == Model::Sycl) hint = "sycl_kernel";
        else if (m == Model::Kokkos) hint = "kokkos_functor";
        else if (m == Model::Tbb) hint = "tbb_body";
        else if (m == Model::StdPar) hint = "pstl_op";
        const auto sym = mod_.outlineLambda(a, hint, role);
        if (m == Model::Sycl) mod_.recordKernel(sym.substr(1));
        ops.push_back(sym);
      } else {
        ops.push_back(lowerExpr(a));
      }
    }
    ops.insert(ops.begin(), target);
    const std::string retTy = irType(e.valueType);
    setType(retTy);
    if (retTy == "void") {
      emitVoid("call", "void", std::move(ops), file, line);
      return "";
    }
    return emit("call", retTy, std::move(ops), "", file, line);
  }
  case ExprKind::KernelLaunch: {
    // Host side of `k<<<g, b>>>(...)`: push config, call the stub.
    const auto g = lowerExpr(*e.args[1]);
    const auto b = lowerExpr(*e.args[2]);
    const std::string rt = mod_.options().model == Model::Hip ? "hip" : "cuda";
    emitVoid("call", "i32", {"@__" + rt + "PushCallConfiguration", g, b}, file, line);
    std::vector<std::string> ops = {"@" + e.args[0]->text};
    for (usize i = 3; i < e.args.size(); ++i) ops.push_back(lowerExpr(*e.args[i]));
    emitVoid("call", "void", std::move(ops), file, line);
    setType("void");
    return "";
  }
  case ExprKind::Index: {
    const Slot s = lowerAddress(e);
    setType(s.type);
    return emit("load", s.type, {s.addr}, "", file, line);
  }
  case ExprKind::Member: {
    const Slot s = lowerAddress(e);
    setType(s.type);
    return emit("load", s.type, {s.addr}, "", file, line);
  }
  case ExprKind::Lambda: {
    const auto sym = mod_.outlineLambda(e, "outlined.lambda", FunctionRole::Outlined);
    setType("ptr");
    return sym;
  }
  case ExprKind::Cast:
  case ExprKind::ImplicitCast: {
    std::string srcTy;
    const auto v = lowerExpr(*e.args[0], &srcTy);
    const std::string dstTy = irType(e.valueType);
    setType(dstTy);
    if (srcTy == dstTy || dstTy == "ptr" || srcTy == "ptr") return v;
    const bool toF = isFloatTy(dstTy);
    const bool fromF = isFloatTy(srcTy);
    const std::string op = toF && !fromF ? "sitofp"
                           : !toF && fromF ? "fptosi"
                           : toF           ? "fpext"
                                           : "sext";
    return emit(op, dstTy, {v}, "", file, line);
  }
  case ExprKind::InitList: {
    std::vector<std::string> ops;
    for (const auto &a : e.args) ops.push_back(lowerExpr(*a));
    setType("ptr");
    return emit("aggregate", "ptr", std::move(ops), "", file, line);
  }
  case ExprKind::Range: {
    std::vector<std::string> ops;
    for (const auto &a : e.args)
      if (a) ops.push_back(lowerExpr(*a));
    setType("i64");
    return emit("range", "i64", std::move(ops), "", file, line);
  }
  }
  internalError("unhandled expression kind in lowering");
}

FunctionLowerer::Slot FunctionLowerer::lowerAddress(const Expr &e) {
  switch (e.kind) {
  case ExprKind::Ident: {
    const auto it = locals_.find(e.text);
    if (it != locals_.end()) return it->second;
    return Slot{"@" + e.text, irType(e.valueType) == "void" ? "i32" : irType(e.valueType)};
  }
  case ExprKind::Index: {
    const auto base = lowerExpr(*e.args[0]);
    const auto idx = lowerExpr(*e.args[1]);
    std::string elemTy = irType(e.valueType);
    if (elemTy == "void") elemTy = "double";
    const auto gep = emit("getelementptr", elemTy, {base, idx}, "", e.loc.file, e.loc.line);
    return Slot{gep, elemTy};
  }
  case ExprKind::Member: {
    const auto base = lowerExpr(*e.args[0]);
    std::string ty = irType(e.valueType);
    if (ty == "void") ty = "i32";
    const auto gep =
        emit("getelementptr", ty, {base, "field:" + e.text}, "", e.loc.file, e.loc.line);
    return Slot{gep, ty};
  }
  case ExprKind::Unary:
    if (e.text == "*") {
      const auto p = lowerExpr(*e.args[0]);
      std::string ty = irType(e.valueType);
      if (ty == "void") ty = "double";
      return Slot{p, ty};
    }
    break;
  default: break;
  }
  // Fallback: materialise the value into a temporary slot.
  std::string ty;
  const auto v = lowerExpr(e, &ty);
  const auto slot = emit("alloca", ty, {});
  emitVoid("store", ty, {v, slot});
  return Slot{slot, ty};
}

// --------------------------------------------------------------- stmts ----

void FunctionLowerer::lowerStmt(const Stmt &s) {
  switch (s.kind) {
  case StmtKind::Compound:
    for (const auto &c : s.children) lowerStmt(*c);
    break;
  case StmtKind::DeclStmt:
    for (const auto &d : s.decls) {
      std::string ty = irType(d.type);
      if (!d.arrayDims.empty()) {
        // Stack array: alloca with a size operand.
        std::vector<std::string> ops;
        for (const auto &dim : d.arrayDims)
          if (dim) ops.push_back(lowerExpr(*dim));
        const auto slot = emit("alloca", ty, std::move(ops), "", s.loc.file, s.loc.line);
        locals_[d.name] = {slot, ty};
        continue;
      }
      const auto slot = emit("alloca", ty, {}, "", s.loc.file, s.loc.line);
      locals_[d.name] = {slot, ty};
      if (d.init) {
        const auto v = lowerExpr(*d.init);
        if (!v.empty()) emitVoid("store", ty, {v, slot}, s.loc.file, s.loc.line);
      }
    }
    break;
  case StmtKind::ExprStmt: (void)lowerExpr(*s.cond); break;
  case StmtKind::Return: {
    if (s.cond) {
      std::string ty;
      const auto v = lowerExpr(*s.cond, &ty);
      emitVoid("ret", ty, {v}, s.loc.file, s.loc.line);
    } else {
      emitVoid("ret", "void", {}, s.loc.file, s.loc.line);
    }
    newBlock("post.ret");
    break;
  }
  case StmtKind::If: {
    const auto c = lowerExpr(*s.cond);
    const bool hasElse = s.children.size() > 1;
    const auto thenB = nameBlock("if.then");
    const auto elseB = hasElse ? nameBlock("if.else") : std::string();
    const auto endB = nameBlock("if.end");
    emitVoid("condbr", "i1", {c, "label:" + thenB, "label:" + (hasElse ? elseB : endB)},
             s.loc.file, s.loc.line);
    startBlock(thenB);
    lowerStmt(*s.children[0]);
    emitVoid("br", "void", {"label:" + endB});
    if (hasElse) {
      startBlock(elseB);
      lowerStmt(*s.children[1]);
      emitVoid("br", "void", {"label:" + endB});
    }
    startBlock(endB);
    break;
  }
  case StmtKind::For: {
    if (s.init) lowerStmt(*s.init);
    const auto condB = nameBlock("for.cond");
    const auto bodyB = nameBlock("for.body");
    const auto incB = nameBlock("for.inc");
    const auto endB = nameBlock("for.end");
    startBlock(condB);
    if (s.cond) {
      const auto c = lowerExpr(*s.cond);
      emitVoid("condbr", "i1", {c, "label:" + bodyB, "label:" + endB}, s.loc.file, s.loc.line);
    }
    startBlock(bodyB);
    loops_.push_back({endB, incB});
    for (const auto &c : s.children) lowerStmt(*c);
    loops_.pop_back();
    startBlock(incB);
    if (s.step) (void)lowerExpr(*s.step);
    emitVoid("br", "void", {"label:" + condB});
    startBlock(endB);
    break;
  }
  case StmtKind::ForRange: {
    const auto slot = emit("alloca", "i32", {}, "", s.loc.file, s.loc.line);
    locals_[s.loopVar] = {slot, "i32"};
    if (s.cond) {
      const auto lo = lowerExpr(*s.cond);
      emitVoid("store", "i32", {lo, slot}, s.loc.file, s.loc.line);
    }
    const auto condB = nameBlock("do.cond");
    const auto bodyB = nameBlock("do.body");
    const auto endB = nameBlock("do.end");
    startBlock(condB);
    if (s.step) {
      const auto hi = lowerExpr(*s.step);
      const auto cur = emit("load", "i32", {slot}, "", s.loc.file, s.loc.line);
      const auto cmp = emit("icmp", "i1", {"le", cur, hi}, "", s.loc.file, s.loc.line);
      emitVoid("condbr", "i1", {cmp, "label:" + bodyB, "label:" + endB}, s.loc.file, s.loc.line);
    }
    startBlock(bodyB);
    loops_.push_back({endB, condB});
    for (const auto &c : s.children) lowerStmt(*c);
    loops_.pop_back();
    const auto cur = emit("load", "i32", {slot}, "", s.loc.file, s.loc.line);
    const auto next = emit("add", "i32", {cur, "const:1"}, "", s.loc.file, s.loc.line);
    emitVoid("store", "i32", {next, slot}, s.loc.file, s.loc.line);
    emitVoid("br", "void", {"label:" + condB});
    startBlock(endB);
    break;
  }
  case StmtKind::While: {
    const auto condB = nameBlock("while.cond");
    const auto bodyB = nameBlock("while.body");
    const auto endB = nameBlock("while.end");
    startBlock(condB);
    const auto c = lowerExpr(*s.cond);
    emitVoid("condbr", "i1", {c, "label:" + bodyB, "label:" + endB}, s.loc.file, s.loc.line);
    startBlock(bodyB);
    loops_.push_back({endB, condB});
    for (const auto &ch : s.children) lowerStmt(*ch);
    loops_.pop_back();
    emitVoid("br", "void", {"label:" + condB});
    startBlock(endB);
    break;
  }
  case StmtKind::DoWhile: {
    const auto bodyB = nameBlock("do.body");
    const auto endB = nameBlock("do.end");
    startBlock(bodyB);
    loops_.push_back({endB, bodyB});
    for (const auto &ch : s.children) lowerStmt(*ch);
    loops_.pop_back();
    const auto c = lowerExpr(*s.cond);
    emitVoid("condbr", "i1", {c, "label:" + bodyB, "label:" + endB}, s.loc.file, s.loc.line);
    startBlock(endB);
    break;
  }
  case StmtKind::Break:
    // Outside a loop the target stays symbolic and ir::verify reports it —
    // that is malformed input, not a lowering bug.
    emitVoid("br", "void",
             {"label:" + (loops_.empty() ? std::string("loop.end") : loops_.back().breakTo)},
             s.loc.file, s.loc.line);
    newBlock("post.break");
    break;
  case StmtKind::Continue:
    emitVoid("br", "void",
             {"label:" + (loops_.empty() ? std::string("loop.inc") : loops_.back().continueTo)},
             s.loc.file, s.loc.line);
    newBlock("post.continue");
    break;
  case StmtKind::Directive: lowerDirective(s); break;
  case StmtKind::ArrayAssign: {
    if (s.cond) (void)lowerExpr(*s.cond);
    if (s.step) (void)lowerExpr(*s.step);
    break;
  }
  case StmtKind::Empty: break;
  }
}

void FunctionLowerer::lowerDirective(const Stmt &s) {
  SV_CHECK(s.directive.has_value(), "directive stmt without payload");
  const auto &d = *s.directive;
  const bool offload = sv::contains(d.kind, std::string("target"));
  const bool parallel = sv::contains(d.kind, std::string("parallel")) ||
                        sv::contains(d.kind, std::string("taskloop")) ||
                        sv::contains(d.kind, std::string("loop")) ||
                        sv::contains(d.kind, std::string("kernels"));
  if (s.children.empty()) {
    // Standalone (barrier etc.): a single runtime call.
    emitVoid("call", "void", {"@__kmpc_barrier"}, s.loc.file, s.loc.line);
    return;
  }
  if (offload) {
    const auto sym = mod_.outlineStmt(*s.children[0], "omp_offloading", FunctionRole::Outlined);
    mod_.recordOffloadEntry(sym.substr(1));
    // Data-mapping setup per map clause, then the target kernel call.
    for (const auto &c : d.clauses) {
      if (!lang::isDataClause(c.name)) continue;
      for (usize i = 0; i < c.arguments.size(); ++i)
        emitVoid("call", "void", {"@__tgt_push_mapper", "const:" + std::to_string(i)},
                 s.loc.file, s.loc.line);
    }
    emitVoid("call", "i32", {"@__tgt_target_kernel", sym}, s.loc.file, s.loc.line);
    return;
  }
  if (d.family == "acc") {
    // Reproduces the paper's Section V-B finding: GCC's OpenACC lowering
    // "did not introduce extra tokens related to parallelism" (a quality-
    // of-implementation issue confirmed by its single-threaded performance)
    // — the directive body is emitted inline, exactly like serial code.
    for (const auto &c : s.children) lowerStmt(*c);
    return;
  }
  if (parallel) {
    const auto sym = mod_.outlineStmt(*s.children[0], "omp_outlined", FunctionRole::Outlined);
    emitVoid("call", "void", {"@__kmpc_fork_call", sym}, s.loc.file, s.loc.line);
    // Reductions lower to an extra runtime sequence.
    for (const auto &c : d.clauses)
      if (c.name == "reduction")
        emitVoid("call", "void", {"@__kmpc_reduce", sym}, s.loc.file, s.loc.line);
    return;
  }
  // simd/unknown: keep the body inline.
  for (const auto &c : s.children) lowerStmt(*c);
}

} // namespace

std::string_view modelName(Model m) {
  switch (m) {
  case Model::Serial: return "serial";
  case Model::OpenMP: return "omp";
  case Model::OpenMPTarget: return "omp-target";
  case Model::Cuda: return "cuda";
  case Model::Hip: return "hip";
  case Model::Sycl: return "sycl";
  case Model::Kokkos: return "kokkos";
  case Model::Tbb: return "tbb";
  case Model::StdPar: return "std-indices";
  case Model::OpenAcc: return "acc";
  }
  return "?";
}

Module lower(const lang::ast::TranslationUnit &unit, const LowerOptions &options) {
  return ModuleLowerer(unit, options).run();
}

std::string print(const Module &m) {
  std::string out = "; module " + m.sourceFile + "\n";
  for (const auto &g : m.globals)
    out += "@" + g.name + " = global " + g.type + (g.runtime ? " ; runtime\n" : "\n");
  for (const auto &f : m.functions) {
    out += "\ndefine " + f.returnType + " " + f.name + "(" + std::to_string(f.argCount) +
           " args) {\n";
    for (const auto &b : f.blocks) {
      out += b.name + ":\n";
      for (const auto &in : b.instrs) {
        out += "  ";
        if (!in.result.empty()) out += in.result + " = ";
        out += in.op + " " + in.type;
        for (const auto &o : in.operands) out += " " + o;
        out += "\n";
      }
    }
    out += "}\n";
  }
  return out;
}

} // namespace sv::ir
