#include "ir/callgraph.hpp"

#include <algorithm>
#include <array>
#include <optional>

#include "support/strings.hpp"

namespace sv::ir {

namespace {

[[nodiscard]] bool isValueId(const std::string &s) {
  return !s.empty() && s.front() == '%';
}

[[nodiscard]] bool isGlobal(const std::string &s) {
  return !s.empty() && s.front() == '@';
}

[[nodiscard]] bool isArg(const std::string &s) { return str::startsWith(s, "arg:"); }

[[nodiscard]] std::optional<usize> argIndex(const std::string &s) {
  if (!isArg(s) || s.size() == 4) return std::nullopt;
  usize v = 0;
  for (usize i = 4; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    v = v * 10 + static_cast<usize>(s[i] - '0');
  }
  return v;
}

/// External callees that touch no program memory at all: scalar math,
/// allocation (fresh memory only), and the offload/OpenMP runtime entry
/// points the lowering fabricates.
constexpr std::array kPureNames = {
    "sqrt", "fabs", "abs",  "exp",  "log",  "pow",  "sin", "cos",
    "tan",  "floor", "ceil", "fmin", "fmax", "min",  "max", "mod",
    "malloc", "free", "omp_get_wtime",
};

constexpr std::array kPurePrefixes = {
    "__kmpc_", "__tgt_", "__omp", "omp_", "__cuda", "cuda", "__hip",
    "hip",     "__sycl", "sycl_",
};

/// External callees that may read the memory their pointer arguments name
/// but never write program memory (array intrinsics and formatted output).
constexpr std::array kReadArgNames = {
    "printf", "fprintf", "dot_product", "sum", "maxval", "minval", "size",
};

enum class ExternKind { Pure, ReadArgs, Unknown };

[[nodiscard]] ExternKind externKind(const std::string &name) {
  for (const char *p : kPureNames)
    if (name == p) return ExternKind::Pure;
  for (const char *p : kReadArgNames)
    if (name == p) return ExternKind::ReadArgs;
  for (const char *p : kPurePrefixes)
    if (str::startsWith(name, p)) return ExternKind::Pure;
  return ExternKind::Unknown;
}

} // namespace

bool isPureExternal(const std::string &callee) {
  return externKind(callee) == ExternKind::Pure;
}

ValueChaser::ValueChaser(const Function &fn) {
  std::map<std::string, usize> storeCount;
  std::map<std::string, std::string> storeValue;
  for (const auto &b : fn.blocks)
    for (const auto &in : b.instrs) {
      if (!in.result.empty()) defs_.emplace(in.result, &in);
      if (in.op != "store" || in.operands.size() < 2) continue;
      const auto &addr = in.operands[1];
      if (!isValueId(addr)) continue;
      ++storeCount[addr];
      storeValue[addr] = in.operands[0];
    }
  for (const auto &[slot, n] : storeCount)
    if (n == 1) spills_.emplace(slot, storeValue.at(slot));
}

std::string ValueChaser::root(const std::string &value) const {
  std::string v = value;
  for (int depth = 0; depth < 16; ++depth) {
    if (!isValueId(v)) return v; // @global, arg:i, const:... are roots
    const Instr *in = def(v);
    if (!in) return v;
    if (in->op == "alloca") return v;
    if (in->op == "getelementptr" || in->op == "sext" || in->op == "bitcast") {
      if (in->operands.empty()) return v;
      v = in->operands[0];
      continue;
    }
    if (in->op == "load") {
      if (in->operands.empty()) return v;
      const auto &addr = in->operands[0];
      // See through single-store slots (parameter spills): the loaded
      // value is whatever the unique store put there.
      if (isValueId(addr)) {
        const Instr *slotDef = def(addr);
        if (slotDef && slotDef->op == "alloca") {
          const auto sp = spills_.find(addr);
          if (sp != spills_.end() && (isArg(sp->second) || isGlobal(sp->second) ||
                                      isValueId(sp->second))) {
            v = sp->second;
            continue;
          }
          return addr; // multi-store pointer slot: the slot is the root
        }
      }
      v = addr;
      continue;
    }
    return v; // call result, arithmetic, ... — the value is its own root
  }
  return v;
}

namespace {

struct SummaryBuilder {
  const Module &m;
  const std::set<std::string> &moduleGlobals;
  CallGraph &cg;

  void addRead(ModRef &s, const std::string &root) const {
    if (const auto i = argIndex(root)) {
      s.argRead.insert(*i);
      return;
    }
    if (isGlobal(root)) {
      if (moduleGlobals.count(root.substr(1))) s.globalRead.insert(root);
      else s.capturesUnknown = true; // by-name capture of an enclosing local
    }
    // local slots / constants / arithmetic results: invisible to callers
  }

  void addMod(ModRef &s, const std::string &root) const {
    if (const auto i = argIndex(root)) {
      s.argMod.insert(*i);
      return;
    }
    if (isGlobal(root)) {
      if (moduleGlobals.count(root.substr(1))) s.globalMod.insert(root);
      else s.capturesUnknown = true;
    }
  }

  void mergeCall(ModRef &s, const Instr &in, const ValueChaser &chase) const {
    if (in.operands.empty()) return;
    for (const auto &op : in.operands) {
      if (!isGlobal(op)) continue;
      if (&op == &in.operands.front()) continue; // handled below as callee
      // A module function passed by symbol (fork_call / registration):
      // its body runs, so merge its global-side effects.
      if (const ModRef *callee = cg.summaryOf(op)) mergeGlobals(s, *callee);
    }
    const auto &target = in.operands.front();
    if (!isGlobal(target)) {
      s.widen(); // indirect call
      return;
    }
    if (const ModRef *callee = cg.summaryOf(target)) {
      mergeGlobals(s, *callee);
      for (const usize j : callee->argRead)
        if (j + 1 < in.operands.size()) addRead(s, chase.root(in.operands[j + 1]));
      for (const usize j : callee->argMod)
        if (j + 1 < in.operands.size()) addMod(s, chase.root(in.operands[j + 1]));
      return;
    }
    switch (externKind(target.substr(1))) {
    case ExternKind::Pure: return;
    case ExternKind::ReadArgs:
      for (usize j = 1; j < in.operands.size(); ++j) addRead(s, chase.root(in.operands[j]));
      return;
    case ExternKind::Unknown: s.widen(); return;
    }
  }

  static void mergeGlobals(ModRef &s, const ModRef &callee) {
    if (callee.opaque) s.opaque = true;
    if (callee.capturesUnknown) s.capturesUnknown = true;
    s.globalRead.insert(callee.globalRead.begin(), callee.globalRead.end());
    s.globalMod.insert(callee.globalMod.begin(), callee.globalMod.end());
  }

  [[nodiscard]] ModRef summarize(const Function &fn) const {
    ModRef s;
    const ValueChaser chase(fn);
    for (const auto &b : fn.blocks) {
      for (const auto &in : b.instrs) {
        if (in.op == "load" && !in.operands.empty())
          addRead(s, chase.root(in.operands[0]));
        else if (in.op == "store" && in.operands.size() >= 2)
          addMod(s, chase.root(in.operands[1]));
        else if (in.op == "call")
          mergeCall(s, in, chase);
        if (s.opaque && s.capturesUnknown) return s; // already at lattice top
      }
    }
    return s;
  }
};

/// Iterative Tarjan SCC over function names; emits SCCs bottom-up
/// (callees before callers).
struct Tarjan {
  const std::map<std::string, std::vector<std::string>> &edges;
  std::map<std::string, u32> index, low;
  std::map<std::string, bool> onStack;
  std::vector<std::string> stack;
  u32 next = 0;
  std::vector<std::vector<std::string>> sccs;

  void run(const std::string &root) {
    struct Frame {
      std::string node;
      usize child = 0;
    };
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next++;
    stack.push_back(root);
    onStack[root] = true;
    while (!frames.empty()) {
      auto &fr = frames.back();
      const auto it = edges.find(fr.node);
      const auto &succ = it == edges.end() ? std::vector<std::string>{} : it->second;
      if (fr.child < succ.size()) {
        const std::string &w = succ[fr.child++];
        if (!index.count(w)) {
          index[w] = low[w] = next++;
          stack.push_back(w);
          onStack[w] = true;
          frames.push_back({w});
        } else if (onStack[w]) {
          low[fr.node] = std::min(low[fr.node], index[w]);
        }
      } else {
        if (low[fr.node] == index[fr.node]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            onStack[w] = false;
            scc.push_back(w);
            if (w == fr.node) break;
          }
          sccs.push_back(std::move(scc));
        }
        const std::string done = fr.node;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().node] = std::min(low[frames.back().node], low[done]);
      }
    }
  }
};

} // namespace

CallGraph buildCallGraph(const Module &m) {
  CallGraph cg;
  std::set<std::string> fnNames;
  for (const auto &f : m.functions) fnNames.insert(f.name);
  std::set<std::string> moduleGlobals;
  for (const auto &g : m.globals) moduleGlobals.insert(g.name);

  for (const auto &f : m.functions) {
    auto &out = cg.callees[f.name];
    for (const auto &b : f.blocks)
      for (const auto &in : b.instrs) {
        if (in.op != "call") continue;
        for (const auto &op : in.operands) {
          // Function names keep their '@' sigil throughout the graph —
          // callees, Tarjan keys and summary keys all use the same spelling.
          if (!isGlobal(op) || !fnNames.count(op)) continue;
          if (std::find(out.begin(), out.end(), op) == out.end()) out.push_back(op);
        }
      }
  }

  Tarjan tarjan{cg.callees, {}, {}, {}, {}, 0, {}};
  for (const auto &f : m.functions)
    if (!tarjan.index.count(f.name)) tarjan.run(f.name);

  std::map<std::string, const Function *> byName;
  for (const auto &f : m.functions) byName.emplace(f.name, &f);

  const SummaryBuilder builder{m, moduleGlobals, cg};
  for (const auto &scc : tarjan.sccs) {
    const bool selfLoop = [&] {
      if (scc.size() > 1) return true;
      const auto it = cg.callees.find(scc.front());
      if (it == cg.callees.end()) return false;
      return std::find(it->second.begin(), it->second.end(), scc.front()) !=
             it->second.end();
    }();
    if (selfLoop) {
      // Recursive cycle: widen every member to the lattice top instead of
      // iterating to a fixpoint — conservative and guaranteed to terminate.
      for (const auto &name : scc) {
        ModRef s;
        s.widen();
        cg.summaries[name] = s;
      }
      continue;
    }
    const auto it = byName.find(scc.front());
    if (it != byName.end()) cg.summaries[scc.front()] = builder.summarize(*it->second);
  }
  return cg;
}

} // namespace sv::ir
