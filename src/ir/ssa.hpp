// SSA construction over the lowered IR — the value-naming layer the range
// analysis (ir/range.hpp) interprets. The lowering keeps every scalar in a
// memory slot (alloca + load/store), which is convenient for the dataflow
// tier but hides def-use chains: a load's value depends on which store
// reaches it. This pass promotes the non-escaping slots (ir/dataflow.hpp's
// `trackedSlots`) to SSA form the classic way — iterated dominance-frontier
// phi placement, then a dominator-tree renaming walk — WITHOUT rewriting
// the module: the result is an overlay mapping every load to the unique
// SSA definition it observes. `ir::print` output is untouched by
// construction, which the round-trip test pins.
//
// The dominator machinery (bit-vector dominator sets, immediate dominators,
// dominance frontiers) lives here as the shared public API; deps.cpp's loop
// recovery consumes the same `computeDominators` instead of its former
// private copy.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/cfg.hpp"

namespace sv::ir {

/// Dominator information for one CFG. `dom[b][d]` is true when block d
/// dominates block b (every block dominates itself). Unreachable blocks
/// keep the all-false row the iteration converges to; their idom is npos.
struct Dominators {
  static constexpr u32 npos = static_cast<u32>(-1);

  std::vector<std::vector<bool>> dom;    ///< dom[b][d]: d dominates b
  std::vector<u32> idom;                 ///< immediate dominator; entry -> npos
  std::vector<std::vector<u32>> frontier; ///< dominance frontier DF[b], sorted

  [[nodiscard]] bool dominates(u32 d, u32 b) const { return dom[b][d]; }
};

/// Iterative bit-vector dominators over the reverse post-order, plus
/// immediate dominators and the Cooper–Harvey–Kennedy dominance frontier.
[[nodiscard]] Dominators computeDominators(const Cfg &cfg);

/// One SSA definition of a promoted slot: a concrete store, a phi merging
/// the reaching definitions at a join block, or the per-slot
/// "uninitialised" pseudo definition rooted at the entry block (so every
/// phi is total over its reachable predecessors even when the slot's
/// alloca sits mid-CFG).
struct SsaDef {
  enum class Kind : u8 { Store, Phi, Uninit };

  Kind kind{};
  std::string slot;    ///< promoted alloca root ("%N")
  u32 block = 0;       ///< defining block
  i32 line = -1;
  /// Store: the stored operand ("const:3", "%7", "arg:0", ...).
  std::string stored;
  /// Phi: (predecessor block, incoming def id) per CFG edge into `block`,
  /// in predecessor order.
  std::vector<std::pair<u32, u32>> incoming;
};

/// SSA overlay for one function: no instruction is modified; instead every
/// load of a promoted slot is mapped to the def id it observes, and every
/// block records which def of each slot reaches its entry.
struct SsaFunction {
  const Function *function = nullptr;
  std::set<std::string> promoted;  ///< slots in SSA form (from trackedSlots)
  std::vector<SsaDef> defs;        ///< def id -> definition

  /// load instruction -> def id of the value it reads. Keyed by the load's
  /// result id ("%N"), which ir::lower guarantees is unique per function.
  std::map<std::string, u32> loadDef;
  /// (block, slot) -> def id reaching the block's entry.
  std::map<std::pair<u32, std::string>, u32> entryDef;
  /// store instruction -> the def id it creates (promoted slots only).
  std::map<const Instr *, u32> storeDef;

  [[nodiscard]] const SsaDef *defOfLoad(const std::string &loadResult) const {
    const auto it = loadDef.find(loadResult);
    return it == loadDef.end() ? nullptr : &defs[it->second];
  }
  [[nodiscard]] usize phiCount() const {
    usize n = 0;
    for (const auto &d : defs)
      if (d.kind == SsaDef::Kind::Phi) ++n;
    return n;
  }
};

/// Build the SSA overlay: phi placement on the iterated dominance frontier
/// of each promoted slot's store blocks, then renaming down the dominator
/// tree. Slots not in `trackedSlots(fn)` (escaping address) are skipped —
/// loads of those keep no mapping and the range analysis treats them as ⊤.
[[nodiscard]] SsaFunction buildSsa(const Function &fn, const Cfg &cfg,
                                   const Dominators &doms);

/// Structural verification of an overlay: every promoted-slot load maps to
/// a def of the same slot, every phi lives at a join and has exactly one
/// incoming entry per reachable CFG predecessor, and every incoming def id
/// is in range. Returns human-readable violations (empty = valid).
[[nodiscard]] std::vector<std::string> verifySsa(const SsaFunction &ssa,
                                                 const Cfg &cfg);

} // namespace sv::ir
