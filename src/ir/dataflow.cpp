#include "ir/dataflow.hpp"

namespace sv::ir {

namespace {

/// Memory key for a slot address operand.
std::string memKey(const std::string &addr) { return "mem:" + addr; }

} // namespace

// ------------------------------------------------------------ framework --

DataflowSolution solve(const Cfg &cfg, const DataflowProblem &problem) {
  const usize n = cfg.size();
  DataflowSolution sol;
  sol.in.assign(n, BitSet(problem.numFacts));
  sol.out.assign(n, BitSet(problem.numFacts));
  if (n == 0) return sol;

  const bool forward = problem.direction == Direction::Forward;

  // "Before" = the meet input (IN for forward, OUT for backward);
  // "after" = transfer output. Stored so in/out keep execution-order naming.
  auto &before = forward ? sol.in : sol.out;
  auto &after = forward ? sol.out : sol.in;

  if (forward) {
    before[0].unionWith(problem.boundary);
  } else {
    for (const u32 e : cfg.exits) before[e].unionWith(problem.boundary);
  }

  // Iterate in (reverse) post-order until stable; union meet converges fast.
  std::vector<u32> order = cfg.rpo;
  if (!forward) std::vector<u32>(order.rbegin(), order.rend()).swap(order);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const u32 b : order) {
      const auto &meetEdges = forward ? cfg.preds[b] : cfg.succs[b];
      for (const u32 p : meetEdges) before[b].unionWith(after[p]);
      BitSet next = before[b];
      next.transfer(problem.gen[b], problem.kill[b]);
      if (!(next == after[b])) {
        after[b] = std::move(next);
        changed = true;
      }
    }
  }
  return sol;
}

// -------------------------------------------------------- tracked slots --

std::set<std::string> trackedSlots(const Function &fn) {
  std::set<std::string> slots;
  for (const auto &b : fn.blocks)
    for (const auto &in : b.instrs)
      if (in.op == "alloca" && in.operands.empty() && !in.result.empty())
        slots.insert(in.result); // sized allocas (stack arrays) are element
                                 // storage, accessed through geps — skip them
  for (const auto &b : fn.blocks) {
    for (const auto &in : b.instrs) {
      for (usize i = 0; i < in.operands.size(); ++i) {
        const auto &op = in.operands[i];
        if (!slots.count(op)) continue;
        const bool loadAddr = in.op == "load" && i == 0;
        const bool storeAddr = in.op == "store" && i == 1;
        if (!loadAddr && !storeAddr) slots.erase(op); // address escapes
      }
    }
  }
  return slots;
}

// ------------------------------------------------- reaching definitions --

ReachingDefs computeReachingDefs(const Function &fn, const Cfg &cfg,
                                 const std::set<std::string> &slots) {
  ReachingDefs rd;
  const usize n = fn.blocks.size();
  rd.instrDefs.resize(n);

  const auto internValue = [&](const std::string &key) {
    const auto [it, inserted] = rd.valueIds.emplace(key, static_cast<u32>(rd.valueIds.size()));
    if (inserted) rd.defsOfValue.emplace_back();
    return it->second;
  };
  const auto addDef = [&](u32 block, i32 instr, u32 value, bool uninit) {
    const u32 fact = static_cast<u32>(rd.defs.size());
    rd.defs.push_back({block, instr, value, uninit});
    rd.defsOfValue[value].push_back(fact);
    if (instr >= 0) rd.instrDefs[block][static_cast<usize>(instr)].push_back(fact);
    return fact;
  };

  for (usize b = 0; b < n; ++b) {
    const auto &instrs = fn.blocks[b].instrs;
    rd.instrDefs[b].resize(instrs.size());
    for (usize i = 0; i < instrs.size(); ++i) {
      const auto &in = instrs[i];
      if (!in.result.empty()) {
        const u32 v = internValue(in.result);
        addDef(static_cast<u32>(b), static_cast<i32>(i), v, false);
        // The alloca of a tracked slot also "defines" its memory as
        // uninitialised until the first store kills the pseudo def.
        if (in.op == "alloca" && slots.count(in.result)) {
          const u32 m = internValue(memKey(in.result));
          addDef(static_cast<u32>(b), static_cast<i32>(i), m, true);
        }
      }
      if (in.op == "store" && in.operands.size() >= 2 && slots.count(in.operands[1])) {
        const u32 m = internValue(memKey(in.operands[1]));
        addDef(static_cast<u32>(b), static_cast<i32>(i), m, false);
      }
    }
  }

  // Per-block gen/kill: last def of each value generates; any def kills the
  // value's other defs.
  DataflowProblem p;
  p.direction = Direction::Forward;
  p.numFacts = rd.defs.size();
  p.boundary = BitSet(p.numFacts);
  p.gen.assign(n, BitSet(p.numFacts));
  p.kill.assign(n, BitSet(p.numFacts));
  for (usize b = 0; b < n; ++b) {
    BitSet cur(p.numFacts);
    for (usize i = 0; i < rd.instrDefs[b].size(); ++i) {
      for (const u32 fact : rd.instrDefs[b][i]) {
        for (const u32 other : rd.defsOfValue[rd.defs[fact].value]) {
          cur.reset(other);
          if (other != fact) p.kill[b].set(other);
        }
        cur.set(fact);
      }
    }
    p.gen[b] = cur;
  }
  rd.solution = solve(cfg, p);
  return rd;
}

void ReachingDefs::step(BitSet &facts, u32 block, usize instr) const {
  for (const u32 fact : instrDefs[block][instr]) {
    for (const u32 other : defsOfValue[defs[fact].value]) facts.reset(other);
    facts.set(fact);
  }
}

// ------------------------------------------------------------- liveness --

Liveness computeLiveness(const Function &fn, const Cfg &cfg,
                         const std::set<std::string> &slots) {
  Liveness lv;
  for (const auto &s : slots) lv.slotIds.emplace(s, static_cast<u32>(lv.slotIds.size()));

  const usize n = fn.blocks.size();
  DataflowProblem p;
  p.direction = Direction::Backward;
  p.numFacts = lv.slotIds.size();
  p.boundary = BitSet(p.numFacts);
  p.gen.assign(n, BitSet(p.numFacts));
  p.kill.assign(n, BitSet(p.numFacts));

  for (usize b = 0; b < n; ++b) {
    const auto &instrs = fn.blocks[b].instrs;
    // Walk in reverse so the entry processed last — the block's *first*
    // access in execution order — decides whether the slot is gen or kill.
    for (auto it = instrs.rbegin(); it != instrs.rend(); ++it) {
      const auto &in = *it;
      if (in.op == "load" && !in.operands.empty()) {
        const auto sid = lv.slotIds.find(in.operands[0]);
        if (sid != lv.slotIds.end()) {
          p.gen[b].set(sid->second);
          p.kill[b].reset(sid->second);
        }
      } else if (in.op == "store" && in.operands.size() >= 2) {
        const auto sid = lv.slotIds.find(in.operands[1]);
        if (sid != lv.slotIds.end()) {
          p.kill[b].set(sid->second);
          p.gen[b].reset(sid->second);
        }
      }
    }
  }
  lv.solution = solve(cfg, p);
  return lv;
}

} // namespace sv::ir
