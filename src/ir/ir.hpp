// The platform-independent IR the backend tree T_ir is extracted from
// (Section III-A / IV-A): an LLVM-flavoured module of functions, basic
// blocks and typed instructions. Exactly like the paper's pipeline, symbol
// names are discarded when the tree is generated, but instruction opcodes,
// function/block/global structure — and the *offload driver boilerplate*
// each model's compilation emits — are retained.
#pragma once

#include <string>
#include <vector>

#include "lang/source.hpp"
#include "support/common.hpp"

namespace sv::ir {

/// One instruction. Operands are symbolic strings:
///   "%12" (local value), "@name" (global), "const:<v>" (immediate),
///   "arg:<i>" (function argument), "label:<name>" (branch target).
struct Instr {
  std::string op;    ///< "load", "store", "fadd", "icmp", "call", "br", ...
  std::string type;  ///< result/operand type: "double", "i32", "i1", "ptr", "void"
  std::string result; ///< "%N" or empty for void instructions
  std::vector<std::string> operands;
  i32 file = -1;
  i32 line = -1;
};

struct Block {
  std::string name; ///< "entry", "for.cond", "if.then", ...
  std::vector<Instr> instrs;
};

/// Why a function exists — drives T_ir structure and the cost model.
enum class FunctionRole {
  User,        ///< lowered from user source
  Outlined,    ///< outlined parallel/target region or lambda body
  DeviceStub,  ///< host-side kernel launch stub
  Runtime,     ///< module-level driver/registration boilerplate
};

struct Function {
  std::string name;
  std::string returnType;
  usize argCount = 0;
  FunctionRole role = FunctionRole::User;
  std::vector<Block> blocks;
  i32 file = -1;
  i32 line = -1;

  [[nodiscard]] usize instrCount() const {
    usize n = 0;
    for (const auto &b : blocks) n += b.instrs.size();
    return n;
  }
};

struct Global {
  std::string name;
  std::string type;
  bool runtime = false; ///< emitted by offload bundling, not by user code
};

struct Module {
  std::string sourceFile;
  std::vector<Global> globals;
  std::vector<Function> functions;

  [[nodiscard]] usize instrCount() const {
    usize n = 0;
    for (const auto &f : functions) n += f.instrCount();
    return n;
  }
};

/// Render the module as LLVM-ish text (debugging, goldens, examples).
[[nodiscard]] std::string print(const Module &m);

} // namespace sv::ir
