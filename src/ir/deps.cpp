#include "ir/deps.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "ir/ssa.hpp"
#include "support/strings.hpp"

namespace sv::ir {

namespace {

[[nodiscard]] bool isValueId(const std::string &s) {
  return !s.empty() && s.front() == '%';
}
[[nodiscard]] bool isGlobal(const std::string &s) {
  return !s.empty() && s.front() == '@';
}
[[nodiscard]] bool isArg(const std::string &s) { return str::startsWith(s, "arg:"); }

/// Parse an integer "const:<v>" operand; nullopt for float immediates.
[[nodiscard]] std::optional<i64> constVal(const std::string &s) {
  if (!str::startsWith(s, "const:")) return std::nullopt;
  const std::string t = s.substr(6);
  if (t.empty()) return std::nullopt;
  usize i = t.front() == '-' ? 1 : 0;
  if (i >= t.size()) return std::nullopt;
  i64 v = 0;
  for (; i < t.size(); ++i) {
    if (t[i] < '0' || t[i] > '9') return std::nullopt;
    v = v * 10 + (t[i] - '0');
  }
  return t.front() == '-' ? -v : v;
}

[[nodiscard]] std::string displayOf(const std::string &root) {
  if (isGlobal(root)) return root.substr(1);
  return root;
}

} // namespace

const char *name(DepKind k) {
  switch (k) {
  case DepKind::Flow: return "flow";
  case DepKind::Anti: return "anti";
  case DepKind::Output: return "output";
  }
  return "?";
}

const char *name(DepDirection d) {
  switch (d) {
  case DepDirection::Lt: return "<";
  case DepDirection::Eq: return "=";
  case DepDirection::Gt: return ">";
  case DepDirection::Any: return "*";
  }
  return "?";
}

const char *name(ScalarClass c) {
  switch (c) {
  case ScalarClass::Induction: return "induction";
  case ScalarClass::Privatizable: return "privatizable";
  case ScalarClass::Reduction: return "reduction";
  case ScalarClass::Carried: return "carried";
  case ScalarClass::WriteOnly: return "write-only";
  case ScalarClass::Unknown: return "unknown";
  }
  return "?";
}

bool LoopInfo::contains(u32 block) const {
  return std::binary_search(blocks.begin(), blocks.end(), block);
}

// ---------------------------------------------------------- loop recovery --

namespace {

/// Natural loop of the back edges latches->header: header plus everything
/// that reaches a latch without passing through the header.
[[nodiscard]] std::vector<u32> naturalLoop(const Cfg &cfg, u32 header,
                                           const std::set<u32> &latches) {
  std::set<u32> body{header};
  std::vector<u32> work;
  for (const u32 l : latches)
    if (body.insert(l).second) work.push_back(l);
  while (!work.empty()) {
    const u32 b = work.back();
    work.pop_back();
    for (const u32 p : cfg.preds[b]) {
      if (!cfg.reachable[p]) continue;
      if (body.insert(p).second) work.push_back(p);
    }
  }
  return {body.begin(), body.end()};
}

[[nodiscard]] const Instr *loopLocation(const Function &fn, const LoopInfo &L) {
  const auto &h = fn.blocks[L.header];
  for (const auto &in : h.instrs)
    if (in.op == "condbr" && in.line >= 0) return &in;
  for (const auto &in : h.instrs)
    if (in.line >= 0) return &in;
  for (const u32 b : L.blocks)
    for (const auto &in : fn.blocks[b].instrs)
      if (in.line >= 0) return &in;
  return nullptr;
}

/// Recognise the lowering's induction idiom for loop L: the header's
/// conditional compare loads a slot that has exactly one in-loop store,
/// whose value is `add/sub(load slot, const:k)`. Fills induction, step,
/// bounds and trip count (constant bounds, unit step only).
void recogniseInduction(LoopInfo &L, const Function &fn, const ValueChaser &chase) {
  const Block &h = fn.blocks[L.header];
  const Instr *br = nullptr;
  for (const auto &in : h.instrs)
    if (in.op == "condbr") {
      br = &in;
      break;
    }
  if (!br || br->operands.empty()) return;
  const Instr *cmp = chase.def(br->operands[0]);
  if (!cmp || (cmp->op != "icmp" && cmp->op != "fcmp") || cmp->operands.size() < 3)
    return;
  std::string pred = cmp->operands[0];

  const auto slotOf = [&](const std::string &v) -> std::string {
    const Instr *d = chase.def(v);
    if (!d || d->op != "load" || d->operands.empty()) return {};
    const Instr *addrDef = chase.def(d->operands[0]);
    if (addrDef && addrDef->op == "getelementptr") return {}; // array element
    return chase.root(d->operands[0]);
  };

  for (int side = 0; side < 2; ++side) {
    const std::string cand = slotOf(cmp->operands[1 + side]);
    if (cand.empty() || isArg(cand)) continue;
    // Exactly one in-loop store, of add/sub(load cand, const).
    const Instr *update = nullptr;
    usize stores = 0;
    for (const u32 b : L.blocks)
      for (const auto &in : fn.blocks[b].instrs) {
        if (in.op != "store" || in.operands.size() < 2) continue;
        if (chase.root(in.operands[1]) != cand) continue;
        ++stores;
        update = &in;
      }
    if (stores != 1 || !update) continue;
    const Instr *arith = chase.def(update->operands[0]);
    if (!arith || (arith->op != "add" && arith->op != "sub") ||
        arith->operands.size() < 2)
      continue;
    std::optional<i64> k;
    std::string other;
    if (const auto c = constVal(arith->operands[1])) {
      k = c;
      other = arith->operands[0];
    } else if (arith->op == "add") {
      if (const auto c2 = constVal(arith->operands[0])) {
        k = c2;
        other = arith->operands[1];
      }
    }
    if (!k || *k == 0) continue;
    if (slotOf(other) != cand) continue;

    L.inductionSlot = cand;
    L.inductionName = displayOf(cand);
    L.step = arith->op == "sub" ? -*k : *k;
    L.affine = true;
    if (side == 1) {
      // Induction was the rhs of the compare: mirror the predicate.
      if (pred == "lt") pred = "gt";
      else if (pred == "gt") pred = "lt";
      else if (pred == "le") pred = "ge";
      else if (pred == "ge") pred = "le";
    }
    // Initial value: the unique out-of-loop constant store, if any.
    std::optional<i64> lo;
    usize outStores = 0;
    for (usize b = 0; b < fn.blocks.size(); ++b) {
      if (L.contains(static_cast<u32>(b))) continue;
      for (const auto &in : fn.blocks[b].instrs) {
        if (in.op != "store" || in.operands.size() < 2) continue;
        if (chase.root(in.operands[1]) != cand) continue;
        ++outStores;
        lo = constVal(in.operands[0]);
      }
    }
    if (outStores == 1 && lo) L.lowerBound = lo;
    const auto hi = constVal(cmp->operands[side == 0 ? 2 : 1]);
    if (L.lowerBound && hi && (L.step == 1 || L.step == -1)) {
      i64 trip = -1;
      if (L.step == 1 && pred == "lt") trip = *hi - *L.lowerBound;
      else if (L.step == 1 && pred == "le") trip = *hi - *L.lowerBound + 1;
      else if (L.step == -1 && pred == "gt") trip = *L.lowerBound - *hi;
      else if (L.step == -1 && pred == "ge") trip = *L.lowerBound - *hi + 1;
      if (trip >= 0) L.tripCount = trip;
    }
    return;
  }
}

} // namespace

std::vector<LoopInfo> findLoops(const Function &fn, const Cfg &cfg) {
  // Shared dominator machinery from the SSA pass (ir/ssa.hpp).
  const Dominators doms = computeDominators(cfg);
  std::map<u32, std::set<u32>> latches; // header -> back-edge sources
  for (usize u = 0; u < cfg.size(); ++u) {
    if (!cfg.reachable[u]) continue;
    for (const u32 h : cfg.succs[u])
      if (doms.dominates(h, static_cast<u32>(u))) latches[h].insert(static_cast<u32>(u));
  }
  std::vector<LoopInfo> loops;
  loops.reserve(latches.size());
  const ValueChaser chase(fn);
  for (const auto &[header, srcs] : latches) {
    LoopInfo L;
    L.header = header;
    L.blocks = naturalLoop(cfg, header, srcs);
    if (const Instr *at = loopLocation(fn, L)) {
      L.line = at->line;
      L.file = at->file;
    }
    recogniseInduction(L, fn, chase);
    loops.push_back(std::move(L));
  }
  // Nesting depth: count strictly containing loops.
  for (auto &L : loops)
    for (const auto &M : loops)
      if (M.header != L.header && M.blocks.size() > L.blocks.size() &&
          M.contains(L.header))
        ++L.depth;
  std::sort(loops.begin(), loops.end(), [](const LoopInfo &a, const LoopInfo &b) {
    return a.header < b.header;
  });
  return loops;
}

// ------------------------------------------------------- access modelling --

namespace {

/// An affine view of a subscript: c + Σ coeff·load(root), with induction
/// roots and loop-invariant symbols kept apart.
struct Affine {
  bool ok = false;
  i64 c = 0;
  std::map<std::string, i64> iv;  ///< induction root -> coefficient
  std::map<std::string, i64> sym; ///< invariant scalar root -> coefficient
};

struct AffineBuilder {
  const ValueChaser &chase;
  const std::set<std::string> &ivRoots;
  /// Value-range slice of the enclosing function (nullable): scalars whose
  /// range is a singleton fold to constants, which turns linearised
  /// subscripts like `i*ny + j` (symbolic × symbolic without it) into
  /// testable affine forms.
  const FunctionRanges *ranges = nullptr;
  u32 block = 0; ///< block of the consuming access, for range refinement
  const LoopInfo *loop = nullptr; ///< loop under test, for store expansion

  [[nodiscard]] std::optional<i64> constFromRange(const std::string &v) const {
    if (!ranges) return std::nullopt;
    const Interval iv = ranges->valueAt(v, block);
    if (iv.isConst()) return iv.lo;
    return std::nullopt;
  }

  [[nodiscard]] Affine build(const std::string &v, int depth = 0) const {
    Affine a;
    if (depth > 12) return a;
    if (const auto c = constVal(v)) {
      a.ok = true;
      a.c = *c;
      return a;
    }
    if (isArg(v)) {
      if (const auto c = constFromRange(v)) {
        a.ok = true;
        a.c = *c;
        return a;
      }
      a.ok = true;
      a.sym[v] = 1;
      return a;
    }
    if (!isValueId(v)) return a;
    const Instr *d = chase.def(v);
    if (!d) return a;
    if (d->op == "load") {
      if (d->operands.empty()) return a;
      const Instr *addrDef = chase.def(d->operands[0]);
      if (addrDef && addrDef->op == "getelementptr") return a; // array element
      const std::string r = chase.root(d->operands[0]);
      if (ivRoots.count(r)) {
        a.ok = true;
        a.iv[r] += 1;
        return a;
      }
      if (const auto c = constFromRange(v)) {
        a.ok = true;
        a.c = *c;
        return a;
      }
      // Subscript spill (`idx = j*nx + i` stored once, reused for several
      // accesses): when the SSA overlay shows this load's reaching def is a
      // store executing in the same iteration of the loop under test,
      // expand the stored expression — the inductions it reads hold their
      // current-iteration values there too.
      if (ranges && loop) {
        const auto it = ranges->ssa.loadDef.find(v);
        if (it != ranges->ssa.loadDef.end()) {
          const SsaDef &sd = ranges->ssa.defs[it->second];
          if (sd.kind == SsaDef::Kind::Store && loop->contains(sd.block) &&
              !sd.stored.empty()) {
            Affine e = build(sd.stored, depth + 1);
            if (e.ok) return e;
          }
        }
      }
      a.ok = true;
      a.sym[r] += 1;
      return a;
    }
    if (d->op == "sext" || d->op == "trunc" || d->op == "zext") {
      if (d->operands.empty()) return a;
      return build(d->operands[0], depth + 1);
    }
    if ((d->op == "add" || d->op == "sub") && d->operands.size() >= 2) {
      Affine l = build(d->operands[0], depth + 1);
      Affine r = build(d->operands[1], depth + 1);
      if (!l.ok || !r.ok) return a;
      const i64 sign = d->op == "sub" ? -1 : 1;
      a = std::move(l);
      a.c += sign * r.c;
      for (const auto &[k, cf] : r.iv) a.iv[k] += sign * cf;
      for (const auto &[k, cf] : r.sym) a.sym[k] += sign * cf;
      prune(a);
      return a;
    }
    if (d->op == "mul" && d->operands.size() >= 2) {
      Affine l = build(d->operands[0], depth + 1);
      Affine r = build(d->operands[1], depth + 1);
      if (!l.ok || !r.ok) return a;
      const Affine *scale = nullptr, *base = nullptr;
      if (l.iv.empty() && l.sym.empty()) {
        scale = &l;
        base = &r;
      } else if (r.iv.empty() && r.sym.empty()) {
        scale = &r;
        base = &l;
      } else {
        return a; // symbolic × symbolic (e.g. j*nx): not affine
      }
      a = *base;
      a.c *= scale->c;
      for (auto &[k, cf] : a.iv) cf *= scale->c;
      for (auto &[k, cf] : a.sym) cf *= scale->c;
      prune(a);
      return a;
    }
    return a;
  }

  static void prune(Affine &a) {
    for (auto it = a.iv.begin(); it != a.iv.end();)
      it = it->second == 0 ? a.iv.erase(it) : std::next(it);
    for (auto it = a.sym.begin(); it != a.sym.end();)
      it = it->second == 0 ? a.sym.erase(it) : std::next(it);
  }
};

struct Access {
  std::string root;
  bool write = false;
  bool hasIndex = false; ///< false: whole-object / unknown subscript
  Affine aff;            ///< valid when hasIndex && aff.ok
  u32 block = 0;
  usize pos = 0; ///< instruction position for same-iteration ordering
  i32 line = -1;
};

struct CallEffects {
  std::set<std::string> reads, writes;
  bool unknown = false;
};

struct FunctionAnalyzer {
  const Function &fn;
  const CallGraph &cg;
  const FunctionRanges *ranges = nullptr; ///< nullable interprocedural slice
  const ValueChaser chase;
  std::set<std::string> ivRoots; // every recognised induction in this fn

  explicit FunctionAnalyzer(const Function &f, const CallGraph &g,
                            const FunctionRanges *r)
      : fn(f), cg(g), ranges(r), chase(f) {}

  [[nodiscard]] bool memoryRoot(const std::string &r) const {
    if (isGlobal(r) || isArg(r)) return true;
    if (!isValueId(r)) return false;
    const Instr *d = chase.def(r);
    return d && (d->op == "alloca" ||
                 (d->op == "call" && !d->operands.empty() &&
                  d->operands.front() == "@malloc"));
  }

  void addEffect(CallEffects &fx, const std::string &root, bool write) const {
    if (!memoryRoot(root)) return;
    (write ? fx.writes : fx.reads).insert(root);
  }

  [[nodiscard]] CallEffects callEffects(const Instr &in) const {
    CallEffects fx;
    if (in.operands.empty()) {
      fx.unknown = true;
      return fx;
    }
    const auto mergeGlobals = [&](const ModRef &s) {
      if (s.opaque || s.capturesUnknown) fx.unknown = true;
      for (const auto &g : s.globalRead) fx.reads.insert(g);
      for (const auto &g : s.globalMod) fx.writes.insert(g);
    };
    // Module functions passed by symbol (fork_call and friends): their
    // bodies run, so their global effects apply here.
    for (usize i = 1; i < in.operands.size(); ++i)
      if (isGlobal(in.operands[i]))
        if (const ModRef *s = cg.summaryOf(in.operands[i]))
          mergeGlobals(*s);
    const auto &target = in.operands.front();
    if (!isGlobal(target)) {
      fx.unknown = true;
      return fx;
    }
    const std::string callee = target.substr(1);
    if (const ModRef *s = cg.summaryOf(target)) {
      mergeGlobals(*s);
      for (const usize j : s->argRead)
        if (j + 1 < in.operands.size())
          addEffect(fx, chase.root(in.operands[j + 1]), false);
      for (const usize j : s->argMod)
        if (j + 1 < in.operands.size())
          addEffect(fx, chase.root(in.operands[j + 1]), true);
      return fx;
    }
    if (isPureExternal(callee)) return fx;
    // Read-only externals (printf, dot_product, ...) are modelled inside
    // the call graph's whitelist; anything else is unknown. Re-use the
    // whitelist by probing a one-off summary-free classification: treat
    // unresolved calls that only read as reads of their pointer roots.
    static const std::set<std::string> kReadArgs = {
        "printf", "fprintf", "dot_product", "sum", "maxval", "minval", "size"};
    if (kReadArgs.count(callee)) {
      for (usize j = 1; j < in.operands.size(); ++j)
        addEffect(fx, chase.root(in.operands[j]), false);
      return fx;
    }
    fx.unknown = true;
    return fx;
  }

  /// Classify one load/store address: array element (via getelementptr)
  /// with its subscript, or a direct scalar slot access.
  struct Addr {
    std::string root;
    bool isArray = false;
    std::string index;
  };
  [[nodiscard]] Addr classifyAddr(const std::string &addr) const {
    const Instr *d = chase.def(addr);
    if (d && d->op == "getelementptr" && d->operands.size() >= 2)
      return {chase.root(d->operands[0]), true, d->operands[1]};
    return {chase.root(addr), false, {}};
  }
};

// ----------------------------------------------------------- pair testing --

[[nodiscard]] i64 gcd64(i64 a, i64 b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b) {
    const i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

struct PairResult {
  enum class Kind { Independent, Dependent, Assumed } kind = Kind::Assumed;
  bool carried = true;
  bool proven = false;
  std::optional<i64> distance;
  DepDirection direction = DepDirection::Any;
};

/// Run the subscript tests for one access pair with respect to loop L.
/// `w` must be the write. Distances are in iterations of L (value distance
/// divided by the induction step), signed as sink-minus-source.
[[nodiscard]] PairResult testPair(const LoopInfo &L, const Affine &w, const Affine &x) {
  PairResult r;
  // Everything except L's own induction must match exactly so it cancels
  // under the (=,...,=,*,=,...,=) direction-vector convention; otherwise
  // fall through to the coupled GCD test.
  Affine dw = w, dx = x;
  const i64 a1 = [&] {
    const auto it = dw.iv.find(L.inductionSlot);
    return it == dw.iv.end() ? i64{0} : it->second;
  }();
  const i64 a2 = [&] {
    const auto it = dx.iv.find(L.inductionSlot);
    return it == dx.iv.end() ? i64{0} : it->second;
  }();
  dw.iv.erase(L.inductionSlot);
  dx.iv.erase(L.inductionSlot);

  if (dw.sym != dx.sym) return r; // uncancelled symbols: assumed

  if (dw.iv != dx.iv) {
    // Coupled subscripts (MIV): GCD test over every induction coefficient.
    i64 g = gcd64(a1, a2);
    for (const auto &[k, c] : dw.iv) g = gcd64(g, c);
    for (const auto &[k, c] : dx.iv) g = gcd64(g, c);
    const i64 dc = dx.c - dw.c;
    if (g != 0 && dc % g != 0) {
      r.kind = PairResult::Kind::Independent;
      r.proven = true;
      return r;
    }
    return r; // assumed
  }

  const i64 dc = dx.c - dw.c; // solve a1·Vw + cw = a2·Vx + cx
  if (a1 == 0 && a2 == 0) {
    // ZIV: same element every iteration, or never the same element.
    if (dc != 0) {
      r.kind = PairResult::Kind::Independent;
      r.proven = true;
      return r;
    }
    r.kind = PairResult::Kind::Dependent;
    r.proven = true;
    // The element is touched in *every* iteration, so besides the
    // loop-independent edge the write in one iteration reaches all later
    // ones — carried, unless the loop provably runs a single iteration.
    const bool single = (L.tripCount && *L.tripCount <= 1) ||
                        (L.ivMin && L.ivMax && *L.ivMin == *L.ivMax);
    r.carried = !single;
    if (single) {
      r.distance = 0;
      r.direction = DepDirection::Eq;
    } else {
      r.direction = DepDirection::Any;
    }
    return r;
  }
  if (a1 == a2) {
    // Strong SIV: exact value distance (cw - cx) / a.
    const i64 dvNum = -dc;
    if (dvNum % a1 != 0) {
      r.kind = PairResult::Kind::Independent;
      r.proven = true;
      return r;
    }
    const i64 dv = dvNum / a1; // Vx - Vw at collision
    if (L.step == 0 || dv % L.step != 0) {
      r.kind = PairResult::Kind::Independent;
      r.proven = true;
      return r;
    }
    const i64 d = dv / L.step; // iterations, sink minus source
    if (L.ivMin && L.ivMax) {
      // Iteration-count ceiling from the induction's value bounds (exact
      // with constant bounds, over-approximate from ranges — either way a
      // distance outside it cannot be realised).
      const i64 stepAbs = L.step < 0 ? -L.step : L.step;
      const i64 maxTrip = stepAbs > 0 ? (*L.ivMax - *L.ivMin) / stepAbs + 1 : 1;
      if (d >= maxTrip || d <= -maxTrip) {
        r.kind = PairResult::Kind::Independent;
        r.proven = true;
        return r;
      }
    }
    r.kind = PairResult::Kind::Dependent;
    r.proven = true;
    r.carried = d != 0;
    r.distance = d;
    r.direction = d > 0 ? DepDirection::Lt : d < 0 ? DepDirection::Gt : DepDirection::Eq;
    return r;
  }
  if (a1 == 0 || a2 == 0) {
    // Weak-zero SIV: one side touches a fixed element; collision at a
    // single induction value V = (c_other - c_var) / a_var.
    const i64 a = a1 == 0 ? a2 : a1;
    const i64 num = a1 == 0 ? -dc : dc;
    if (num % a != 0) {
      r.kind = PairResult::Kind::Independent;
      r.proven = true;
      return r;
    }
    const i64 v = num / a;
    if (L.ivMin && L.ivMax) {
      if (v < *L.ivMin || v > *L.ivMax) {
        // Colliding induction value outside the reachable bounds — sound
        // even when the bounds are a range-derived over-approximation.
        r.kind = PairResult::Kind::Independent;
        r.proven = true;
        return r;
      }
      if (*L.ivMin == *L.ivMax) {
        // Single reachable induction value: no cross-iteration pairing.
        r.kind = PairResult::Kind::Independent;
        r.proven = true;
        return r;
      }
      if (L.ivExact) {
        // Constant bounds place the collision inside the loop: proven.
        r.kind = PairResult::Kind::Dependent;
        r.proven = true;
        r.carried = true;
        r.direction = DepDirection::Any;
        return r;
      }
      // In range under approximate bounds: the collision may or may not
      // be reachable — stays assumed.
    }
    return r; // bounds unknown: assumed
  }
  // General SIV (a1 != a2, both nonzero): Banerjee with the induction's
  // value bounds (constant or range-derived — the test only ever proves
  // independence, so over-approximate bounds stay sound), else GCD.
  if (L.ivMin && L.ivMax) {
    const i64 vmin = *L.ivMin, vmax = *L.ivMax;
    const i64 e1 = a1 * vmin, e2 = a1 * vmax, e3 = a2 * vmin, e4 = a2 * vmax;
    const i64 lhsMin = std::min(e1, e2) - std::max(e3, e4);
    const i64 lhsMax = std::max(e1, e2) - std::min(e3, e4);
    if (dc < lhsMin || dc > lhsMax) {
      r.kind = PairResult::Kind::Independent;
      r.proven = true;
      return r;
    }
  }
  const i64 g = gcd64(a1, a2);
  if (g != 0 && dc % g != 0) {
    r.kind = PairResult::Kind::Independent;
    r.proven = true;
    return r;
  }
  return r; // assumed
}

} // namespace

// -------------------------------------------------------- loop analysis --

namespace {

struct LoopAnalyzer {
  const FunctionAnalyzer &fa;
  const Cfg &cfg;
  LoopInfo &L;

  [[nodiscard]] bool inLoop(u32 b) const { return L.contains(b); }

  void run(const std::vector<LoopInfo> &allLoops) {
    const Function &fn = fa.fn;
    std::vector<Access> accesses;
    std::map<std::string, std::vector<const Instr *>> scalarLoads, scalarStores;
    // Globals read *directly* as operands (fadd double @t ...): the lowering
    // emits no load for them, but they are scalar reads all the same.
    std::map<std::string, std::vector<const Instr *>> scalarDirect;
    std::set<std::string> loopAllocas; ///< slots materialised inside the body
    CallEffects loopFx;

    usize pos = 0;
    for (const u32 b : L.blocks) {
      for (const auto &in : fn.blocks[b].instrs) {
        ++pos;
        if (in.op == "alloca" && !in.result.empty()) {
          loopAllocas.insert(in.result);
        } else if (in.op == "load" && !in.operands.empty()) {
          const auto addr = fa.classifyAddr(in.operands[0]);
          if (addr.isArray) {
            Access a{addr.root, false, true, {}, b, pos, in.line};
            a.aff = AffineBuilder{fa.chase, fa.ivRoots, fa.ranges, b, &L}.build(addr.index);
            accesses.push_back(std::move(a));
          } else {
            scalarLoads[addr.root].push_back(&in);
          }
        } else if (in.op == "store" && in.operands.size() >= 2) {
          if (isGlobal(in.operands[0])) scalarDirect[in.operands[0]].push_back(&in);
          const auto addr = fa.classifyAddr(in.operands[1]);
          if (addr.isArray) {
            Access a{addr.root, true, true, {}, b, pos, in.line};
            a.aff = AffineBuilder{fa.chase, fa.ivRoots, fa.ranges, b, &L}.build(addr.index);
            accesses.push_back(std::move(a));
          } else {
            scalarStores[addr.root].push_back(&in);
          }
        } else if (in.op == "call") {
          const CallEffects fx = fa.callEffects(in);
          if (fx.unknown) loopFx.unknown = true;
          for (const auto &root : fx.reads) {
            loopFx.reads.insert(root);
            accesses.push_back(Access{root, false, false, {}, b, pos, in.line});
          }
          for (const auto &root : fx.writes) {
            loopFx.writes.insert(root);
            accesses.push_back(Access{root, true, false, {}, b, pos, in.line});
          }
        } else {
          for (const auto &op : in.operands)
            if (isGlobal(op)) scalarDirect[op].push_back(&in);
        }
      }
    }

    classifyScalars(scalarLoads, scalarStores, scalarDirect, loopFx, loopAllocas,
                    allLoops);
    testAccessPairs(accesses, loopFx);

    bool scalarsBenign = true;
    for (const auto &s : L.scalars)
      if (s.cls != ScalarClass::Induction && s.cls != ScalarClass::Privatizable &&
          s.cls != ScalarClass::Reduction)
        scalarsBenign = false;
    bool carriedDep = false;
    for (const auto &d : L.deps)
      if (d.carried) carriedDep = true;
    L.provablyParallel =
        L.affine && L.analyzable && !carriedDep && scalarsBenign;
  }

  void testAccessPairs(const std::vector<Access> &accesses, const CallEffects &loopFx) {
    L.analyzable = L.affine && !loopFx.unknown;
    // Group by root; only roots with at least one write can carry.
    std::map<std::string, std::vector<const Access *>> byRoot;
    for (const auto &a : accesses) byRoot[a.root].push_back(&a);
    std::set<std::string> seen; // dedupe reported edges
    for (const auto &[root, list] : byRoot) {
      bool anyWrite = false;
      for (const auto *a : list) anyWrite |= a->write;
      if (!anyWrite) continue;
      // Subscript validity for this loop: symbols must be invariant here.
      const auto validFor = [&](const Access &a) {
        if (!a.hasIndex || !a.aff.ok) return false;
        for (const auto &[symRoot, c] : a.aff.sym) {
          if (loopFx.writes.count(symRoot)) return false;
          for (const u32 b : L.blocks)
            for (const auto &in : fa.fn.blocks[b].instrs)
              if (in.op == "store" && in.operands.size() >= 2 &&
                  fa.chase.root(in.operands[1]) == symRoot)
                return false;
        }
        return true;
      };
      for (usize i = 0; i < list.size(); ++i) {
        for (usize j = i + 1; j < list.size(); ++j) {
          const Access *a = list[i], *b = list[j];
          if (!a->write && !b->write) continue;
          // Put a write first.
          const Access *w = a->write ? a : b;
          const Access *x = w == a ? b : a;
          PairResult pr;
          if (validFor(*w) && validFor(*x)) pr = testPair(L, w->aff, x->aff);
          else L.analyzable = false;
          if (pr.kind == PairResult::Kind::Independent) continue;
          if (pr.kind == PairResult::Kind::Assumed) L.analyzable = false;

          ArrayDependence dep;
          dep.array = root;
          dep.carried = pr.carried;
          dep.proven = pr.kind == PairResult::Kind::Dependent;
          dep.distance = pr.distance;
          dep.direction = pr.direction;
          dep.line = w->line >= 0 ? w->line : x->line;
          if (w->write && x->write) dep.kind = DepKind::Output;
          else if (pr.distance && *pr.distance < 0) dep.kind = DepKind::Anti;
          else if (pr.distance && *pr.distance > 0) dep.kind = DepKind::Flow;
          else dep.kind = w->pos <= x->pos ? DepKind::Flow : DepKind::Anti;
          if (dep.distance) dep.distance = *dep.distance < 0 ? -*dep.distance : *dep.distance;

          std::string key = dep.array + "|" + name(dep.kind) + "|" +
                            (dep.carried ? "c" : "i") + "|" +
                            (dep.proven ? "p" : "a") + "|" +
                            (dep.distance ? std::to_string(*dep.distance) : "?");
          if (seen.insert(key).second) L.deps.push_back(std::move(dep));
        }
      }
    }
  }

  void classifyScalars(const std::map<std::string, std::vector<const Instr *>> &loads,
                       const std::map<std::string, std::vector<const Instr *>> &stores,
                       const std::map<std::string, std::vector<const Instr *>> &direct,
                       const CallEffects &loopFx,
                       const std::set<std::string> &loopAllocas,
                       const std::vector<LoopInfo> &allLoops) {
    // Use lists for the reduction check: value id -> consuming instrs
    // inside this loop.
    std::map<std::string, std::vector<const Instr *>> uses;
    for (const u32 b : L.blocks)
      for (const auto &in : fa.fn.blocks[b].instrs)
        for (const auto &op : in.operands)
          if (isValueId(op)) uses[op].push_back(&in);

    for (const auto &[root, sts] : stores) {
      if (!fa.memoryRoot(root)) continue;
      ScalarUse use;
      use.slot = root;
      use.display = displayOf(root);
      use.shared = isGlobal(root);
      use.declaredInLoop = loopAllocas.count(root) > 0;
      use.line = sts.front()->line;
      const std::vector<const Instr *> none;
      const auto loadIt = loads.find(root);
      const auto &lds = loadIt == loads.end() ? none : loadIt->second;
      const auto dirIt = direct.find(root);
      const auto &drs = dirIt == direct.end() ? none : dirIt->second;

      if (fa.ivRoots.count(root)) {
        use.cls = ScalarClass::Induction;
      } else if (loopFx.reads.count(root) || loopFx.writes.count(root) ||
                 loopFx.unknown) {
        use.cls = ScalarClass::Unknown;
      } else if (lds.empty() && drs.empty()) {
        use.cls = ScalarClass::WriteOnly;
      } else if (const auto op = reductionOp(root, sts, lds, drs, uses)) {
        use.cls = ScalarClass::Reduction;
        use.op = *op;
      } else if (upwardExposedRead(root)) {
        use.cls = ScalarClass::Carried;
      } else {
        use.cls = ScalarClass::Privatizable;
      }
      L.scalars.push_back(std::move(use));
    }
    (void)allLoops;
  }

  /// All stores are `root = load(root) op e` chains with a consistent
  /// operator, and every in-loop read of root — load or direct operand
  /// use — feeds only those chains.
  [[nodiscard]] std::optional<std::string>
  reductionOp(const std::string &root, const std::vector<const Instr *> &sts,
              const std::vector<const Instr *> &lds,
              const std::vector<const Instr *> &drs,
              const std::map<std::string, std::vector<const Instr *>> &uses) const {
    std::set<const Instr *> updateOps;
    std::string op;
    const auto opNameOf = [](const Instr &d) -> std::string {
      if (d.op == "add" || d.op == "fadd" || d.op == "sub" || d.op == "fsub")
        return "+";
      if (d.op == "mul" || d.op == "fmul") return "*";
      if (d.op == "call" && !d.operands.empty()) {
        const auto &t = d.operands.front();
        if (t == "@min" || t == "@fmin") return "min";
        if (t == "@max" || t == "@fmax") return "max";
      }
      return {};
    };
    std::set<std::string> loadResults;
    for (const auto *l : lds)
      if (!l->result.empty()) loadResults.insert(l->result);

    for (const auto *s : sts) {
      const Instr *d = fa.chase.def(s->operands[0]);
      if (!d) return std::nullopt;
      const std::string thisOp = opNameOf(*d);
      if (thisOp.empty()) return std::nullopt;
      const usize first = d->op == "call" ? 1 : 0;
      bool usesOldValue = false;
      for (usize i = first; i < d->operands.size(); ++i)
        if (loadResults.count(d->operands[i]) || d->operands[i] == root)
          usesOldValue = true;
      if (!usesOldValue) return std::nullopt;
      if (op.empty()) op = thisOp;
      else if (op != thisOp) return std::nullopt;
      updateOps.insert(d);
    }
    // Every read of the accumulator must feed an update chain only: each
    // load's result, and each direct operand use (which *is* the consuming
    // instruction).
    for (const auto *l : lds) {
      const auto it = uses.find(l->result);
      if (it == uses.end()) continue;
      for (const auto *u : it->second)
        if (!updateOps.count(u)) return std::nullopt;
    }
    for (const auto *d : drs)
      if (!updateOps.count(d)) return std::nullopt;
    return op;
  }

  /// Must-analysis over the loop body: is there a path from the loop entry
  /// to a load of `root` that does not pass a store first?
  [[nodiscard]] bool upwardExposedRead(const std::string &root) const {
    const Function &fn = fa.fn;
    std::map<u32, bool> outStored; // block -> stored on exit (must)
    for (const u32 b : L.blocks) outStored[b] = true;

    const auto transfer = [&](u32 b, bool in, bool *exposed) {
      bool cur = in;
      for (const auto &in2 : fn.blocks[b].instrs) {
        if (in2.op == "load" && !in2.operands.empty()) {
          const auto a = fa.classifyAddr(in2.operands[0]);
          if (!a.isArray && a.root == root && !cur && exposed) *exposed = true;
        } else if (in2.op == "store" && in2.operands.size() >= 2) {
          // The stored *value* is read before the address is written.
          if (in2.operands[0] == root && !cur && exposed) *exposed = true;
          const auto a = fa.classifyAddr(in2.operands[1]);
          if (!a.isArray && a.root == root) cur = true;
        } else if (in2.op != "call") {
          // Direct operand uses of a global scalar read it without a load.
          for (const auto &op2 : in2.operands)
            if (op2 == root && !cur && exposed) *exposed = true;
        }
      }
      return cur;
    };

    bool changed = true;
    while (changed) {
      changed = false;
      for (const u32 b : L.blocks) {
        bool in = b == L.header ? false : true;
        if (b != L.header)
          for (const u32 p : cfg.preds[b]) {
            if (!inLoop(p)) continue;
            in = in && outStored[p];
          }
        const bool out = transfer(b, in, nullptr);
        if (out != outStored[b]) {
          outStored[b] = out;
          changed = true;
        }
      }
    }
    bool exposed = false;
    for (const u32 b : L.blocks) {
      bool in = b == L.header ? false : true;
      if (b != L.header)
        for (const u32 p : cfg.preds[b]) {
          if (!inLoop(p)) continue;
          in = in && outStored[p];
        }
      (void)transfer(b, in, &exposed);
      if (exposed) return true;
    }
    return false;
  }
};

} // namespace

FunctionDeps analyzeFunction(const Function &fn, const CallGraph &cg,
                             const FunctionRanges *ranges) {
  FunctionDeps out;
  out.function = fn.name;
  out.role = fn.role;
  if (fn.role == FunctionRole::Runtime) return out;
  const Cfg cfg = buildCfg(fn);
  out.loops = findLoops(fn, cfg);
  if (out.loops.empty()) return out;

  // Induction-value bounds for the subscript tests: exact from constant
  // bounds, else a sound over-approximation from the range analysis.
  for (auto &L : out.loops) {
    if (!L.affine) continue;
    if (L.lowerBound && L.tripCount && *L.tripCount >= 1) {
      const i64 lo = *L.lowerBound;
      const i64 last = lo + L.step * (*L.tripCount - 1);
      L.ivMin = std::min(lo, last);
      L.ivMax = std::max(lo, last);
      L.ivExact = true;
    } else if (ranges && !L.inductionSlot.empty()) {
      // Query the induction slot in a body block, where the header's
      // branch condition refines the widened phi back to the loop bounds.
      u32 body = L.header;
      for (const u32 s : cfg.succs[L.header])
        if (s != L.header && L.contains(s)) {
          body = s;
          break;
        }
      const Interval iv = ranges->slotAt(L.inductionSlot, body);
      if (iv.bounded()) {
        L.ivMin = iv.lo;
        L.ivMax = iv.hi;
        L.ivExact = false;
      }
    }
  }

  FunctionAnalyzer fa(fn, cg, ranges);
  for (const auto &L : out.loops)
    if (!L.inductionSlot.empty()) fa.ivRoots.insert(L.inductionSlot);
  for (auto &L : out.loops) {
    LoopAnalyzer la{fa, cfg, L};
    la.run(out.loops);
  }
  return out;
}

ModuleDeps analyzeModule(const Module &m, const ModuleRanges *ranges) {
  ModuleDeps out;
  out.callgraph = buildCallGraph(m);
  out.functions.reserve(m.functions.size());
  for (const auto &fn : m.functions) {
    if (fn.role == FunctionRole::Runtime) continue;
    auto fd = analyzeFunction(fn, out.callgraph,
                              ranges ? ranges->rangesOf(fn.name) : nullptr);
    if (!fd.loops.empty()) out.functions.push_back(std::move(fd));
  }
  return out;
}

} // namespace sv::ir
