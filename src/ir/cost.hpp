// IR instruction-mix analysis: the bridge between the compiled kernels and
// the roofline performance simulator (our stand-in for the paper's hardware
// benchmarks, see DESIGN.md). Counts memory traffic and arithmetic per
// *innermost-loop iteration* of a function, so the simulator can scale by
// the workload's trip counts.
#pragma once

#include "ir/ir.hpp"

namespace sv::ir {

struct InstrMix {
  u64 loads = 0;
  u64 stores = 0;
  u64 loadBytes = 0;   ///< 8 per double/i64/ptr, 4 per float/i32, 1 per i1/i8
  u64 storeBytes = 0;
  u64 flops = 0;       ///< fadd/fsub/fmul/fdiv/fneg/frem/fcmp
  u64 intOps = 0;
  u64 calls = 0;
  u64 branches = 0;

  [[nodiscard]] u64 bytes() const { return loadBytes + storeBytes; }
  InstrMix &operator+=(const InstrMix &o);
};

/// Bytes moved by one access of the given IR type.
[[nodiscard]] u64 typeBytes(const std::string &irType);

/// Instruction mix of a single function (all blocks, each counted once —
/// i.e. per loop iteration for a loop-shaped kernel body).
[[nodiscard]] InstrMix functionMix(const Function &f);

/// Aggregate mix of every non-runtime function in a module.
[[nodiscard]] InstrMix moduleMix(const Module &m);

/// Arithmetic intensity in flops/byte; 0 when no memory traffic.
[[nodiscard]] double arithmeticIntensity(const InstrMix &mix);

} // namespace sv::ir
