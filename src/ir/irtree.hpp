// T_ir generator (Section III-A / IV-A): IR module -> semantic tree.
// "Like the frontend tree, we discard all symbol names but retain
// instruction names, functions, basic blocks, and globals." Operand
// identities are reduced to their kind (value / constant / argument /
// global / label) so register numbering never contributes distance.
#pragma once

#include "ir/ir.hpp"
#include "tree/tree.hpp"

namespace sv::ir {

struct IrTreeOptions {
  /// Include runtime/driver functions and globals (the offload boilerplate).
  /// The paper's T_ir keeps them — that is precisely why offload models
  /// "misbehave" — so this defaults to true; the coverage variant prunes
  /// them instead.
  bool includeRuntime = true;
};

[[nodiscard]] tree::Tree buildIrTree(const Module &m, const IrTreeOptions &options = {});

} // namespace sv::ir
