// Interprocedural value-range analysis over the SSA overlay (ir/ssa.hpp) —
// the fourth static-analysis tier's engine and the precision feed for the
// dependence tests in ir/deps.cpp.
//
// Per SSA value the analysis computes an interval [lo, hi] in the classic
// abstract-interpretation style:
//
//   lattice      i64 intervals with ±∞ sentinels; ⊥ for "no value". All
//                arithmetic saturates, so overflowing expressions widen to
//                the affected bound instead of wrapping.
//   widening     phi nodes (loop-header merges after SSA construction) are
//                joined monotonically; once a phi has grown for three
//                fixpoint rounds, the moving bound is widened to ∞ so the
//                iteration terminates on any nest.
//   narrowing    two decreasing rounds re-evaluate every phi exactly; the
//                branch-condition refinement below pulls widened bounds
//                back to the loop's real limits (e.g. `i < n` gives
//                i ∈ [0, hi(n) - 1] even after i widened to [0, ∞]).
//   refinement   a block dominated by a conditional edge refines the
//                values the branch compares: the refinement context of a
//                block is accumulated along its idom chain over
//                single-predecessor hops, so loop bodies and then/else
//                arms see their governing conditions.
//   summaries    bottom-up over the call graph (ir/callgraph.hpp):
//                return-value ranges propagate callee -> caller, argument
//                ranges are joined over every module-internal call site
//                caller -> callee (the VM — the fuzz soundness oracle —
//                can only reach a function through those sites). Members
//                of recursive SCCs and functions whose symbol escapes as a
//                call operand widen to ⊤, mirroring the mod/ref design.
//
// Nothing here mutates the module; like the SSA overlay, the result is a
// side table queried by line/block. Consumers: deps.cpp (induction bounds
// for Banerjee / weak-zero SIV and trip counts), lint/rangelint.cpp (OOB /
// div-by-zero / dead-branch checks), the fuzz `range` oracle (VM observed
// values must lie inside these intervals).
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/callgraph.hpp"
#include "ir/ssa.hpp"

namespace sv::ir {

/// An integer interval with ±∞ sentinels. The default-constructed value is
/// ⊤ ([−∞, +∞]); `none()` is ⊥ (no value, e.g. an unreachable operand).
struct Interval {
  static constexpr i64 kMin = std::numeric_limits<i64>::min();
  static constexpr i64 kMax = std::numeric_limits<i64>::max();

  i64 lo = kMin;
  i64 hi = kMax;
  bool bot = false;

  [[nodiscard]] static Interval top() { return {}; }
  [[nodiscard]] static Interval none() { return {0, 0, true}; }
  [[nodiscard]] static Interval of(i64 v) { return {v, v, false}; }
  [[nodiscard]] static Interval of(i64 lo, i64 hi) {
    return lo > hi ? none() : Interval{lo, hi, false};
  }

  [[nodiscard]] bool isTop() const { return !bot && lo == kMin && hi == kMax; }
  [[nodiscard]] bool isConst() const { return !bot && lo == hi; }
  [[nodiscard]] bool hasLo() const { return !bot && lo != kMin; }
  [[nodiscard]] bool hasHi() const { return !bot && hi != kMax; }
  [[nodiscard]] bool bounded() const { return hasLo() && hasHi(); }
  [[nodiscard]] bool contains(i64 v) const { return !bot && lo <= v && v <= hi; }
  /// Every value of this interval lies inside `outer`.
  [[nodiscard]] bool inside(const Interval &outer) const {
    if (bot) return true;
    return !outer.bot && outer.lo <= lo && hi <= outer.hi;
  }

  [[nodiscard]] Interval join(const Interval &o) const;
  [[nodiscard]] Interval meet(const Interval &o) const;
  /// Standard widening: a bound that grew versus `prev` jumps to ∞.
  [[nodiscard]] Interval widen(const Interval &prev) const;

  [[nodiscard]] Interval add(const Interval &o) const;
  [[nodiscard]] Interval sub(const Interval &o) const;
  [[nodiscard]] Interval mul(const Interval &o) const;
  [[nodiscard]] Interval sdiv(const Interval &o) const;
  [[nodiscard]] Interval srem(const Interval &o) const;
  [[nodiscard]] Interval neg() const;

  /// "[lo, hi]" with "-inf"/"inf" for the sentinels; "none" for ⊥.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] bool operator==(const Interval &) const = default;
};

/// Value ranges for one function, queryable by operand and block. The
/// block parameter selects the refinement context (which governing branch
/// conditions apply); pass the block the consuming instruction lives in.
struct FunctionRanges {
  const Function *function = nullptr;
  SsaFunction ssa;
  Dominators doms;
  Cfg cfg;

  std::map<std::string, Interval> temps; ///< "%N" instruction results
  std::vector<Interval> defRanges;       ///< per SSA def id (unrefined)
  Interval returnRange = Interval::none(); ///< join of ret operands; ⊥ = void
  usize rounds = 0; ///< fixpoint rounds until convergence (tests pin this)

  /// Interval of any operand ("const:<v>", "arg:<i>", "%N") as seen from
  /// `block`, with the block's refinement context applied.
  [[nodiscard]] Interval valueAt(const std::string &operand, u32 block) const;
  /// Interval of a promoted slot's value on entry to `block`, refined.
  [[nodiscard]] Interval slotAt(const std::string &slot, u32 block) const;

  /// The argument ranges this analysis ran under (⊤ when standalone).
  std::vector<Interval> argRanges;

private:
  friend struct RangeAnalyzer;
  /// Refinement context of a block: SSA def id -> narrowed interval and
  /// temp name -> narrowed interval, from dominating conditional edges.
  std::map<u32, std::map<u32, Interval>> refineDef_;
  std::map<u32, std::map<std::string, Interval>> refineTemp_;
  std::map<std::string, Interval> symbols_; ///< "@name" call/global ranges
};

/// Whole-module analysis: function ranges under interprocedurally derived
/// argument ranges, plus the summaries themselves.
struct ModuleRanges {
  std::map<std::string, FunctionRanges> functions; ///< by function name
  std::map<std::string, std::vector<Interval>> argRanges;
  std::map<std::string, Interval> returnRanges; ///< by "@name"

  [[nodiscard]] const FunctionRanges *rangesOf(const std::string &name) const {
    const auto it = functions.find(name);
    return it == functions.end() ? nullptr : &it->second;
  }
};

/// Analyze one function under the given argument ranges (missing entries
/// are ⊤). `symbols`, when provided, supplies call-result and global
/// scalar intervals keyed by "@name".
[[nodiscard]] FunctionRanges
analyzeRanges(const Function &fn, std::vector<Interval> argRanges = {},
              const std::map<std::string, Interval> *symbols = nullptr);

/// Interprocedural driver: bounded caller/callee rounds over the module's
/// call graph. Recursive SCC members and functions whose symbol is passed
/// as a call argument (outlined bodies behind fork_call, function
/// pointers) keep ⊤ argument ranges.
[[nodiscard]] ModuleRanges analyzeModuleRanges(const Module &m);

/// Element count of a stack array: the alloca defining `root` with
/// compile-time constant size operands (their product). nullopt for
/// scalars, pointer args, globals, and dynamic sizes.
[[nodiscard]] std::optional<i64> arrayLength(const Function &fn,
                                             const std::string &root);

} // namespace sv::ir
