#include "ir/range.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "support/strings.hpp"

namespace sv::ir {

// ------------------------------------------------------- interval algebra --

namespace {

constexpr i64 kMin = Interval::kMin;
constexpr i64 kMax = Interval::kMax;

/// Saturating add treating kMin/kMax as -inf/+inf.
[[nodiscard]] i64 satAdd(i64 a, i64 b) {
  if (a == kMin || b == kMin) return kMin;
  if (a == kMax || b == kMax) return kMax;
  i64 r = 0;
  if (__builtin_add_overflow(a, b, &r)) return a > 0 ? kMax : kMin;
  return r;
}

[[nodiscard]] i64 satNeg(i64 a) {
  if (a == kMin) return kMax;
  if (a == kMax) return kMin;
  return -a;
}

/// Saturating multiply with infinity semantics (0 * inf = 0).
[[nodiscard]] i64 satMul(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  const bool negative = (a < 0) != (b < 0);
  if (a == kMin || a == kMax || b == kMin || b == kMax)
    return negative ? kMin : kMax;
  i64 r = 0;
  if (__builtin_mul_overflow(a, b, &r)) return negative ? kMin : kMax;
  return r;
}

[[nodiscard]] std::optional<i64> constVal(const std::string &s) {
  if (!str::startsWith(s, "const:")) return std::nullopt;
  const std::string t = s.substr(6);
  if (t.empty()) return std::nullopt;
  usize i = t.front() == '-' ? 1 : 0;
  if (i >= t.size()) return std::nullopt;
  i64 v = 0;
  for (; i < t.size(); ++i) {
    if (t[i] < '0' || t[i] > '9') return std::nullopt; // float immediate
    v = v * 10 + (t[i] - '0');
  }
  return t.front() == '-' ? -v : v;
}

} // namespace

Interval Interval::join(const Interval &o) const {
  if (bot) return o;
  if (o.bot) return *this;
  return {std::min(lo, o.lo), std::max(hi, o.hi), false};
}

Interval Interval::meet(const Interval &o) const {
  if (bot || o.bot) return none();
  return of(std::max(lo, o.lo), std::min(hi, o.hi));
}

Interval Interval::widen(const Interval &prev) const {
  if (bot || prev.bot) return *this;
  Interval w = *this;
  if (lo < prev.lo) w.lo = kMin;
  if (hi > prev.hi) w.hi = kMax;
  return w;
}

Interval Interval::add(const Interval &o) const {
  if (bot || o.bot) return none();
  return {satAdd(lo, o.lo), satAdd(hi, o.hi), false};
}

Interval Interval::neg() const {
  if (bot) return none();
  return {satNeg(hi), satNeg(lo), false};
}

Interval Interval::sub(const Interval &o) const { return add(o.neg()); }

Interval Interval::mul(const Interval &o) const {
  if (bot || o.bot) return none();
  const i64 c[4] = {satMul(lo, o.lo), satMul(lo, o.hi), satMul(hi, o.lo),
                    satMul(hi, o.hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4), false};
}

Interval Interval::sdiv(const Interval &o) const {
  if (bot || o.bot) return none();
  if (o.lo != kMin && o.hi != kMax && !o.contains(0) && lo != kMin && hi != kMax) {
    // Nonzero constant-sign divisor: extremes are corner quotients.
    const i64 c[4] = {lo / o.lo, lo / o.hi, hi / o.lo, hi / o.hi};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4), false};
  }
  // |a / b| <= |a| for |b| >= 1 (b == 0 traps; any claim is fine there).
  if (lo != kMin && hi != kMax) {
    const i64 m = std::max(lo < 0 ? satNeg(lo) : lo, hi < 0 ? satNeg(hi) : hi);
    return {satNeg(m), m, false};
  }
  return top();
}

Interval Interval::srem(const Interval &o) const {
  if (bot || o.bot) return none();
  if (o.lo != kMin && o.hi != kMax) {
    // |a % b| <= max|b| - 1, sign follows the dividend (C semantics).
    const i64 m = std::max(o.lo < 0 ? satNeg(o.lo) : o.lo,
                           o.hi < 0 ? satNeg(o.hi) : o.hi);
    if (m > 0) {
      Interval r{satNeg(m - 1), m - 1, false};
      if (lo >= 0) r.lo = 0;
      if (hi <= 0) r.hi = 0;
      // Also never larger in magnitude than the dividend itself.
      if (lo != kMin && hi != kMax) {
        const i64 ma = std::max(lo < 0 ? satNeg(lo) : lo, hi < 0 ? satNeg(hi) : hi);
        r = r.meet({satNeg(ma), ma, false});
      }
      return r.bot ? of(0) : r;
    }
  }
  if (lo != kMin && hi != kMax) {
    const i64 ma = std::max(lo < 0 ? satNeg(lo) : lo, hi < 0 ? satNeg(hi) : hi);
    return {satNeg(ma), ma, false};
  }
  return top();
}

std::string Interval::str() const {
  if (bot) return "none";
  std::string s = "[";
  s += lo == kMin ? "-inf" : std::to_string(lo);
  s += ", ";
  s += hi == kMax ? "inf" : std::to_string(hi);
  s += "]";
  return s;
}

// --------------------------------------------------------- function pass --

namespace {

// The fixpoint sweeps visit every instruction dozens of times; profiling
// showed the string-keyed map lookups behind operand resolution (temps,
// ssa.loadDef) dominating the tier's cost. Everything the sweeps touch is
// therefore compiled once up front — operands parsed to tagged unions,
// locals numbered densely, icmp predicates to an enum — so the hot loop is
// array indexing only.

/// Comparison predicate, compiled once from the icmp operand string.
enum class Pred : u8 { None, Lt, Le, Gt, Ge, Eq, Ne };

[[nodiscard]] Pred predOf(const std::string &p) {
  if (p == "lt") return Pred::Lt;
  if (p == "le") return Pred::Le;
  if (p == "gt") return Pred::Gt;
  if (p == "ge") return Pred::Ge;
  if (p == "eq") return Pred::Eq;
  if (p == "ne") return Pred::Ne;
  return Pred::None;
}

[[nodiscard]] Pred negate(Pred p) {
  switch (p) {
  case Pred::Lt: return Pred::Ge;
  case Pred::Le: return Pred::Gt;
  case Pred::Gt: return Pred::Le;
  case Pred::Ge: return Pred::Lt;
  case Pred::Eq: return Pred::Ne;
  case Pred::Ne: return Pred::Eq;
  case Pred::None: break;
  }
  return Pred::None;
}

[[nodiscard]] Pred swapSides(Pred p) {
  switch (p) {
  case Pred::Lt: return Pred::Gt;
  case Pred::Le: return Pred::Ge;
  case Pred::Gt: return Pred::Lt;
  case Pred::Ge: return Pred::Le;
  default: return p; // eq/ne are symmetric
  }
}

/// One pre-parsed operand. `Top` covers float immediates, labels and
/// anything else the interval domain cannot track.
struct COp {
  enum class Kind : u8 { Const, Top, Arg, Global, Temp } kind = Kind::Top;
  i64 cval = 0;                     ///< Const payload
  u32 idx = 0;                      ///< Arg position or dense temp id
  const std::string *sym = nullptr; ///< Global "@name" (owned by the instr)
};

/// What a condition operand refines: a promoted slot's SSA def (all loads
/// of that def share the narrowed interval) or a plain temp.
struct RefineKey {
  enum class Kind : u8 { None, Def, Temp } kind = Kind::None;
  u32 id = 0; ///< def id or temp id
};

[[nodiscard]] bool sameKey(const RefineKey &a, const RefineKey &b) {
  return a.kind != RefineKey::Kind::None && a.kind == b.kind && a.id == b.id;
}

/// A branch condition carried by one CFG edge: `pred(lhs, rhs)` holds
/// (taken) or fails (!taken) whenever the edge executes. Keys and operands
/// are pre-resolved; the operand strings are kept only for the final
/// refinement freeze (FunctionRanges::refineTemp_ is name-keyed).
struct EdgeCond {
  Pred pred = Pred::None;
  bool taken = true;
  COp lhs, rhs;
  RefineKey lhsKey, rhsKey;
  const std::string *lhsStr = nullptr, *rhsStr = nullptr;
};

/// One compiled instruction: a small opcode plus pre-parsed operands.
struct CInstr {
  enum class Op : u8 {
    StoreDef,   ///< store to a promoted slot; `result` is the SSA def id
    LoadDef,    ///< load mapped by the SSA overlay; `a` is the result temp
    LoadGlobal, ///< load of a module global; `a` is the "@name"
    LoadBool,   ///< i1 load of an untracked slot
    Add, Sub, Mul, Sdiv, Srem, Neg,
    Copy,       ///< sext / zext / trunc
    Icmp,       ///< `pred`, `a`, `b`
    Bool01,     ///< fcmp, i1 and/or: always [0, 1]
    Call,       ///< `callee` when direct, for the summary lookup
    Select,     ///< `a` join `b` (value operands)
    Top,        ///< anything the domain cannot track
  };
  Op op = Op::Top;
  u32 result = 0; ///< temp id; SSA def id for StoreDef
  Pred pred = Pred::None;
  COp a, b;
  const std::string *callee = nullptr;
};

} // namespace

/// The fixpoint engine (friend of FunctionRanges).
struct RangeAnalyzer {
  static constexpr u32 npos = static_cast<u32>(-1);

  const Function &fn;
  const std::map<std::string, Interval> *symbols;
  FunctionRanges out;

  std::map<std::string, const Instr *> defOf; ///< "%N" -> defining instr
  std::map<std::string, u32> tempIds;         ///< "%N" -> dense temp id
  std::vector<u32> loadDefV;                  ///< temp id -> SSA def | npos
  std::vector<Interval> tempsV;               ///< temp id -> current value
  std::vector<std::vector<CInstr>> code;      ///< compiled, per block
  std::vector<EdgeCond> conds;                ///< compiled edge conditions
  std::map<std::pair<u32, u32>, u32> edgeConds; ///< CFG edge -> conds index
  std::vector<std::vector<u32>> chain; ///< per-block governing cond indices
  std::vector<u32> grow;               ///< per-def widening counter

  RangeAnalyzer(const Function &f, std::vector<Interval> args,
                const std::map<std::string, Interval> *syms)
      : fn(f), symbols(syms) {
    out.function = &f;
    out.argRanges = std::move(args);
    if (syms) out.symbols_ = *syms;
  }

  /// Number every "%N" that appears as a result or operand.
  void numberTemps() {
    const auto note = [&](const std::string &s) {
      if (!s.empty() && s.front() == '%')
        tempIds.emplace(s, static_cast<u32>(tempIds.size()));
    };
    for (const auto &bl : fn.blocks)
      for (const auto &in : bl.instrs) {
        note(in.result);
        for (const auto &o : in.operands) note(o);
      }
  }

  [[nodiscard]] COp compileOp(const std::string &op) const {
    COp c;
    if (const auto v = constVal(op)) {
      c.kind = COp::Kind::Const;
      c.cval = *v;
      return c;
    }
    if (str::startsWith(op, "const:")) return c; // float immediate: ⊤
    if (str::startsWith(op, "arg:")) {
      c.kind = COp::Kind::Arg;
      c.idx = static_cast<u32>(std::atol(op.c_str() + 4));
      return c;
    }
    if (!op.empty() && op.front() == '@') {
      c.kind = COp::Kind::Global;
      c.sym = &op;
      return c;
    }
    if (!op.empty() && op.front() == '%') {
      c.kind = COp::Kind::Temp;
      c.idx = tempIds.at(op);
      return c;
    }
    return c; // labels and the like: ⊤
  }

  [[nodiscard]] RefineKey keyC(const COp &op) const {
    RefineKey k;
    if (op.kind != COp::Kind::Temp) return k;
    const u32 d = loadDefV[op.idx];
    if (d != npos) {
      k.kind = RefineKey::Kind::Def;
      k.id = d;
    } else {
      k.kind = RefineKey::Kind::Temp;
      k.id = op.idx;
    }
    return k;
  }

  /// Unrefined interval of an operand.
  [[nodiscard]] Interval raw(const COp &op) const {
    switch (op.kind) {
    case COp::Kind::Const: return Interval::of(op.cval);
    case COp::Kind::Arg:
      return op.idx < out.argRanges.size() ? out.argRanges[op.idx]
                                           : Interval::top();
    case COp::Kind::Global:
      if (symbols) {
        const auto it = symbols->find(*op.sym);
        if (it != symbols->end()) return it->second;
      }
      return Interval::top();
    case COp::Kind::Temp: {
      const u32 d = loadDefV[op.idx];
      return d != npos ? out.defRanges[d] : tempsV[op.idx];
    }
    case COp::Kind::Top: break;
    }
    return Interval::top();
  }

  /// The interval `cond` imposes on `who` (one of its two operands), given
  /// the other side's unrefined interval. ⊤ when nothing is learnt.
  [[nodiscard]] Interval constraintOn(const EdgeCond &cond, bool who) const {
    Pred pred = cond.taken ? cond.pred : negate(cond.pred);
    if (pred == Pred::None) return Interval::top();
    if (who) pred = swapSides(pred); // constrain rhs: mirror the predicate
    const Interval other = raw(who ? cond.lhs : cond.rhs);
    if (other.bot) return Interval::top();
    switch (pred) {
    case Pred::Lt:
      return other.hi == kMax ? Interval::top()
                              : Interval{kMin, satAdd(other.hi, -1), false};
    case Pred::Le:
      return other.hi == kMax ? Interval::top()
                              : Interval{kMin, other.hi, false};
    case Pred::Gt:
      return other.lo == kMin ? Interval::top()
                              : Interval{satAdd(other.lo, 1), kMax, false};
    case Pred::Ge:
      return other.lo == kMin ? Interval::top()
                              : Interval{other.lo, kMax, false};
    case Pred::Eq: return other;
    default: return Interval::top(); // ne: can't represent holes
    }
  }

  /// Refined interval of `op` as seen from `block`.
  [[nodiscard]] Interval lookup(const COp &op, u32 block) const {
    Interval v = raw(op);
    const RefineKey k = keyC(op);
    if (k.kind == RefineKey::Kind::None || v.bot) return v;
    for (const u32 ci : chain[block]) {
      const EdgeCond &cond = conds[ci];
      if (sameKey(cond.lhsKey, k)) {
        const Interval m = v.meet(constraintOn(cond, false));
        if (!m.bot) v = m; // contradictions mean a dead path, keep sound
      }
      if (sameKey(cond.rhsKey, k)) {
        const Interval m = v.meet(constraintOn(cond, true));
        if (!m.bot) v = m;
      }
    }
    return v;
  }

  [[nodiscard]] Interval evalCmp(const CInstr &in, u32 b) const {
    const Interval l = lookup(in.a, b), r = lookup(in.b, b);
    if (l.bot || r.bot) return Interval::of(0, 1);
    const bool ltTrue = l.hi != kMax && r.lo != kMin && l.hi < r.lo;
    const bool leTrue = l.hi != kMax && r.lo != kMin && l.hi <= r.lo;
    const bool gtTrue = l.lo != kMin && r.hi != kMax && l.lo > r.hi;
    const bool geTrue = l.lo != kMin && r.hi != kMax && l.lo >= r.hi;
    switch (in.pred) {
    case Pred::Lt:
      return ltTrue ? Interval::of(1) : geTrue ? Interval::of(0) : Interval::of(0, 1);
    case Pred::Le:
      return leTrue ? Interval::of(1) : gtTrue ? Interval::of(0) : Interval::of(0, 1);
    case Pred::Gt:
      return gtTrue ? Interval::of(1) : leTrue ? Interval::of(0) : Interval::of(0, 1);
    case Pred::Ge:
      return geTrue ? Interval::of(1) : ltTrue ? Interval::of(0) : Interval::of(0, 1);
    case Pred::Eq:
      if (l.isConst() && r.isConst()) return Interval::of(l.lo == r.lo ? 1 : 0);
      if (l.meet(r).bot) return Interval::of(0);
      return Interval::of(0, 1);
    case Pred::Ne:
      if (l.isConst() && r.isConst()) return Interval::of(l.lo != r.lo ? 1 : 0);
      if (l.meet(r).bot) return Interval::of(1);
      return Interval::of(0, 1);
    case Pred::None: break;
    }
    return Interval::of(0, 1);
  }

  [[nodiscard]] Interval evalInstr(const CInstr &in, u32 b) const {
    switch (in.op) {
    case CInstr::Op::LoadDef: return lookup(in.a, b);
    case CInstr::Op::LoadGlobal: return raw(in.a);
    case CInstr::Op::LoadBool: return Interval::of(0, 1);
    case CInstr::Op::Add: return lookup(in.a, b).add(lookup(in.b, b));
    case CInstr::Op::Sub: return lookup(in.a, b).sub(lookup(in.b, b));
    case CInstr::Op::Mul: return lookup(in.a, b).mul(lookup(in.b, b));
    case CInstr::Op::Sdiv: return lookup(in.a, b).sdiv(lookup(in.b, b));
    case CInstr::Op::Srem: return lookup(in.a, b).srem(lookup(in.b, b));
    case CInstr::Op::Neg: return lookup(in.a, b).neg();
    case CInstr::Op::Copy: return lookup(in.a, b);
    case CInstr::Op::Icmp: return evalCmp(in, b);
    case CInstr::Op::Bool01: return Interval::of(0, 1);
    case CInstr::Op::Call:
      if (in.callee && symbols) {
        const auto it = symbols->find(*in.callee);
        if (it != symbols->end() && !it->second.bot) return it->second;
      }
      return Interval::top();
    case CInstr::Op::Select: return lookup(in.a, b).join(lookup(in.b, b));
    default: return Interval::top();
    }
  }

  /// Compile every instruction the sweeps evaluate. Must run after the SSA
  /// overlay is built (store targets, load mappings).
  void compile() {
    code.assign(fn.blocks.size(), {});
    for (usize b = 0; b < fn.blocks.size(); ++b) {
      auto &cb = code[b];
      for (const auto &in : fn.blocks[b].instrs) {
        if (in.op == "store") {
          const auto sit = out.ssa.storeDef.find(&in);
          if (sit == out.ssa.storeDef.end()) continue;
          CInstr ci;
          ci.op = CInstr::Op::StoreDef;
          ci.result = sit->second;
          ci.a = compileOp(in.operands[0]);
          cb.push_back(ci);
          continue;
        }
        if (in.result.empty() || in.op == "alloca" || in.op == "getelementptr")
          continue;
        CInstr ci;
        ci.result = tempIds.at(in.result);
        const auto opAt = [&](usize i) {
          return i < in.operands.size() ? compileOp(in.operands[i]) : COp{};
        };
        if (in.op == "load") {
          if (in.operands.empty()) {
            ci.op = CInstr::Op::Top;
          } else if (loadDefV[ci.result] != npos) {
            ci.op = CInstr::Op::LoadDef;
            ci.a.kind = COp::Kind::Temp;
            ci.a.idx = ci.result;
          } else if (in.operands[0].front() == '@') {
            ci.op = CInstr::Op::LoadGlobal;
            ci.a = compileOp(in.operands[0]);
          } else if (in.type == "i1") {
            ci.op = CInstr::Op::LoadBool;
          } else {
            ci.op = CInstr::Op::Top; // array element / escaped slot
          }
        } else if (in.op == "add" || in.op == "sub" || in.op == "mul" ||
                   in.op == "sdiv" || in.op == "srem") {
          ci.op = in.op == "add"    ? CInstr::Op::Add
                  : in.op == "sub"  ? CInstr::Op::Sub
                  : in.op == "mul"  ? CInstr::Op::Mul
                  : in.op == "sdiv" ? CInstr::Op::Sdiv
                                    : CInstr::Op::Srem;
          ci.a = opAt(0);
          ci.b = opAt(1);
        } else if (in.op == "neg") {
          ci.op = CInstr::Op::Neg;
          ci.a = opAt(0);
        } else if (in.op == "sext" || in.op == "zext" || in.op == "trunc") {
          ci.op = CInstr::Op::Copy;
          ci.a = opAt(0);
        } else if (in.op == "icmp") {
          if (in.operands.size() < 3) {
            ci.op = CInstr::Op::Bool01;
          } else {
            ci.op = CInstr::Op::Icmp;
            ci.pred = predOf(in.operands[0]);
            ci.a = compileOp(in.operands[1]);
            ci.b = compileOp(in.operands[2]);
          }
        } else if (in.op == "fcmp" ||
                   ((in.op == "and" || in.op == "or") && in.type == "i1")) {
          ci.op = CInstr::Op::Bool01;
        } else if (in.op == "call") {
          ci.op = CInstr::Op::Call;
          if (!in.operands.empty() && !in.operands.front().empty() &&
              in.operands.front().front() == '@')
            ci.callee = &in.operands.front();
        } else if (in.op == "select") { // cond ? a : b
          ci.op = CInstr::Op::Select;
          ci.a = opAt(1);
          ci.b = opAt(2);
        } else {
          ci.op = CInstr::Op::Top;
        }
        cb.push_back(ci);
      }
    }
  }

  void collectEdgeConds() {
    for (usize b = 0; b < fn.blocks.size(); ++b) {
      const auto &bl = fn.blocks[b];
      if (out.cfg.terminator[b] == Cfg::npos) continue;
      const auto &term = bl.instrs[out.cfg.terminator[b]];
      if (term.op != "condbr" || term.operands.size() < 3) continue;
      const auto dit = defOf.find(term.operands[0]);
      if (dit == defOf.end()) continue;
      const Instr &cmp = *dit->second;
      if (cmp.op != "icmp" || cmp.operands.size() < 3) continue;
      const auto target = [&](const std::string &lab) -> std::optional<u32> {
        if (!str::startsWith(lab, "label:")) return std::nullopt;
        return out.cfg.blockOf(lab.substr(6));
      };
      const auto t = target(term.operands[1]);
      const auto f = target(term.operands[2]);
      if (t && f && *t == *f) continue; // degenerate: no information
      EdgeCond c;
      c.pred = predOf(cmp.operands[0]);
      c.lhs = compileOp(cmp.operands[1]);
      c.rhs = compileOp(cmp.operands[2]);
      c.lhsKey = keyC(c.lhs);
      c.rhsKey = keyC(c.rhs);
      c.lhsStr = &cmp.operands[1];
      c.rhsStr = &cmp.operands[2];
      if (t) {
        edgeConds[{static_cast<u32>(b), *t}] = static_cast<u32>(conds.size());
        conds.push_back(c);
      }
      if (f) {
        c.taken = false;
        edgeConds[{static_cast<u32>(b), *f}] = static_cast<u32>(conds.size());
        conds.push_back(c);
      }
    }
  }

  void buildChains() {
    chain.assign(out.cfg.size(), {});
    for (usize x = 0; x < out.cfg.size(); ++x) {
      if (!out.cfg.reachable[x]) continue;
      u32 d = static_cast<u32>(x);
      // Walk up: over a single-predecessor hop the edge's condition
      // governs everything below; at a join, skip to the idom (conditions
      // above it still hold on every path).
      usize guard = 0;
      while (d != 0 && d != Dominators::npos && ++guard <= out.cfg.size() * 2) {
        std::vector<u32> preds;
        for (const u32 p : out.cfg.preds[d])
          if (out.cfg.reachable[p]) preds.push_back(p);
        if (preds.size() == 1) {
          const auto it = edgeConds.find({preds[0], d});
          if (it != edgeConds.end()) chain[x].push_back(it->second);
          d = preds[0];
        } else {
          d = out.doms.idom[d];
        }
      }
    }
  }

  void run() {
    out.cfg = buildCfg(fn);
    out.doms = computeDominators(out.cfg);
    out.ssa = buildSsa(fn, out.cfg, out.doms);
    out.defRanges.assign(out.ssa.defs.size(), Interval::none());
    grow.assign(out.ssa.defs.size(), 0);
    for (usize i = 0; i < out.ssa.defs.size(); ++i)
      if (out.ssa.defs[i].kind == SsaDef::Kind::Uninit)
        out.defRanges[i] = Interval::top();

    for (const auto &bl : fn.blocks)
      for (const auto &in : bl.instrs)
        if (!in.result.empty()) defOf.emplace(in.result, &in);

    numberTemps();
    tempsV.assign(tempIds.size(), Interval::none());
    loadDefV.assign(tempIds.size(), npos);
    for (const auto &[name, def] : out.ssa.loadDef)
      loadDefV[tempIds.at(name)] = def;

    collectEdgeConds();
    buildChains();
    compile();

    // Phi ids grouped by block for the sweep.
    std::vector<std::vector<u32>> phisAt(out.cfg.size());
    for (usize i = 0; i < out.ssa.defs.size(); ++i)
      if (out.ssa.defs[i].kind == SsaDef::Kind::Phi)
        phisAt[out.ssa.defs[i].block].push_back(static_cast<u32>(i));

    const auto sweep = [&](bool widening) {
      bool changed = false;
      for (const u32 b : out.cfg.rpo) {
        if (!out.cfg.reachable[b]) continue;
        for (const u32 id : phisAt[b]) {
          Interval next = Interval::none();
          for (const auto &[p, inId] : out.ssa.defs[id].incoming)
            next = next.join(out.defRanges[inId]);
          if (widening) {
            next = next.join(out.defRanges[id]); // monotone ascent
            if (next != out.defRanges[id] && ++grow[id] >= 3)
              next = next.widen(out.defRanges[id]);
          }
          if (next != out.defRanges[id]) {
            out.defRanges[id] = next;
            changed = true;
          }
        }
        for (const CInstr &ci : code[b]) {
          if (ci.op == CInstr::Op::StoreDef) {
            const Interval v = lookup(ci.a, b);
            if (v != out.defRanges[ci.result]) {
              out.defRanges[ci.result] = v;
              changed = true;
            }
          } else {
            const Interval v = evalInstr(ci, b);
            if (tempsV[ci.result] != v) {
              tempsV[ci.result] = v;
              changed = true;
            }
          }
        }
      }
      return changed;
    };

    usize rounds = 0;
    const usize cap = 16 + 4 * fn.blocks.size();
    while (sweep(/*widening=*/true) && rounds < cap) ++rounds;
    // Narrowing: exact re-evaluation pulls widened bounds back through the
    // branch refinements.
    sweep(/*widening=*/false);
    sweep(/*widening=*/false);

    // Phi-cycle narrowing. A phi cycle with no governing branch on its
    // slot (the accumulator of a nested loop: outer-header phi <->
    // inner-header phi) cannot narrow above — the widened bound re-joins
    // itself through the partner phi. With the store and uninit defs held
    // at their narrowed values the phi subsystem is pure joins, so its
    // least solution is the join of the non-phi defs in each phi's
    // transitive fan-in; meet that in (sound: the closure only discards
    // bounds the cycle manufactured for itself) and let two exact sweeps
    // propagate the recovered precision.
    {
      std::vector<Interval> closure(out.ssa.defs.size(), Interval::none());
      bool more = true;
      usize guard = 0;
      while (more && ++guard <= out.ssa.defs.size() + 1) {
        more = false;
        for (usize i = 0; i < out.ssa.defs.size(); ++i) {
          if (out.ssa.defs[i].kind != SsaDef::Kind::Phi) continue;
          Interval next = Interval::none();
          for (const auto &[p, inId] : out.ssa.defs[i].incoming)
            next = next.join(out.ssa.defs[inId].kind == SsaDef::Kind::Phi
                                 ? closure[inId]
                                 : out.defRanges[inId]);
          if (next != closure[i]) {
            closure[i] = next;
            more = true;
          }
        }
      }
      bool tightened = false;
      for (usize i = 0; i < out.ssa.defs.size(); ++i) {
        if (out.ssa.defs[i].kind != SsaDef::Kind::Phi) continue;
        const Interval m = out.defRanges[i].meet(closure[i]);
        if (!m.bot && m != out.defRanges[i]) {
          out.defRanges[i] = m;
          tightened = true;
        }
      }
      if (tightened) {
        sweep(/*widening=*/false);
        sweep(/*widening=*/false);
        rounds += 2;
      }
    }
    out.rounds = rounds + 3;

    // Return range.
    out.returnRange = Interval::none();
    for (usize b = 0; b < fn.blocks.size(); ++b) {
      if (!out.cfg.reachable[b] || out.cfg.terminator[b] == Cfg::npos) continue;
      const auto &term = fn.blocks[b].instrs[out.cfg.terminator[b]];
      if (term.op == "ret" && !term.operands.empty())
        out.returnRange = out.returnRange.join(
            lookup(compileOp(term.operands[0]), static_cast<u32>(b)));
    }

    // Freeze per-block refinement contexts for post-analysis queries.
    for (usize x = 0; x < out.cfg.size(); ++x) {
      if (!out.cfg.reachable[x]) continue;
      for (const u32 cix : chain[x])
        for (int side = 0; side < 2; ++side) {
          const EdgeCond &cond = conds[cix];
          const RefineKey k = side == 0 ? cond.lhsKey : cond.rhsKey;
          if (k.kind == RefineKey::Kind::None) continue;
          const Interval c = constraintOn(cond, side == 1);
          if (c.isTop()) continue;
          if (k.kind == RefineKey::Kind::Def) {
            auto &slotMap = out.refineDef_[static_cast<u32>(x)];
            const auto it = slotMap.find(k.id);
            slotMap[k.id] = it == slotMap.end() ? c : it->second.meet(c);
          } else {
            const std::string &name = side == 0 ? *cond.lhsStr : *cond.rhsStr;
            auto &tmpMap = out.refineTemp_[static_cast<u32>(x)];
            const auto it = tmpMap.find(name);
            tmpMap[name] = it == tmpMap.end() ? c : it->second.meet(c);
          }
        }
    }

    // Publish the temp values under their names for valueAt.
    for (const auto &bl : fn.blocks)
      for (const auto &in : bl.instrs) {
        if (in.result.empty() || in.op == "alloca" || in.op == "getelementptr")
          continue;
        out.temps.emplace(in.result, tempsV[tempIds.at(in.result)]);
      }
  }
};

Interval FunctionRanges::valueAt(const std::string &operand, u32 block) const {
  Interval v;
  if (const auto c = constVal(operand)) return Interval::of(*c);
  if (str::startsWith(operand, "const:")) return Interval::top();
  if (str::startsWith(operand, "arg:")) {
    const usize i = static_cast<usize>(std::atol(operand.c_str() + 4));
    return i < argRanges.size() ? argRanges[i] : Interval::top();
  }
  if (!operand.empty() && operand.front() == '@') {
    const auto it = symbols_.find(operand);
    return it == symbols_.end() ? Interval::top() : it->second;
  }
  if (operand.empty() || operand.front() != '%') return Interval::top();

  const auto ld = ssa.loadDef.find(operand);
  if (ld != ssa.loadDef.end()) {
    v = defRanges[ld->second];
    const auto bit = refineDef_.find(block);
    if (bit != refineDef_.end()) {
      const auto it = bit->second.find(ld->second);
      if (it != bit->second.end()) {
        const Interval m = v.meet(it->second);
        if (!m.bot) v = m;
      }
    }
    return v;
  }
  const auto it = temps.find(operand);
  v = it == temps.end() ? Interval::top() : it->second;
  if (v.bot) return Interval::top(); // unreachable def queried from outside
  const auto bit = refineTemp_.find(block);
  if (bit != refineTemp_.end()) {
    const auto rit = bit->second.find(operand);
    if (rit != bit->second.end()) {
      const Interval m = v.meet(rit->second);
      if (!m.bot) v = m;
    }
  }
  return v;
}

Interval FunctionRanges::slotAt(const std::string &slot, u32 block) const {
  const auto eit = ssa.entryDef.find({block, slot});
  if (eit == ssa.entryDef.end()) return Interval::top();
  const u32 id = eit->second;
  Interval v = defRanges[id];
  const auto bit = refineDef_.find(block);
  if (bit != refineDef_.end()) {
    const auto rit = bit->second.find(id);
    if (rit != bit->second.end()) {
      const Interval m = v.meet(rit->second);
      if (!m.bot) v = m;
    }
  }
  return v.bot ? Interval::top() : v;
}

FunctionRanges analyzeRanges(const Function &fn, std::vector<Interval> argRanges,
                             const std::map<std::string, Interval> *symbols) {
  RangeAnalyzer ra(fn, std::move(argRanges), symbols);
  ra.run();
  return std::move(ra.out);
}

// ----------------------------------------------------------- module pass --

namespace {

/// Functions reachable from themselves through resolved call edges.
[[nodiscard]] std::set<std::string> recursiveFunctions(const CallGraph &cg) {
  std::set<std::string> rec;
  for (const auto &[name, direct] : cg.callees) {
    std::set<std::string> seen;
    std::vector<std::string> work(direct.begin(), direct.end());
    bool hit = false;
    while (!work.empty() && !hit) {
      const std::string c = work.back();
      work.pop_back();
      if (!seen.insert(c).second) continue;
      if (c == name) hit = true;
      const auto it = cg.callees.find(c);
      if (it != cg.callees.end())
        for (const auto &n : it->second) work.push_back(n);
    }
    if (hit) rec.insert(name);
  }
  return rec;
}

} // namespace

std::optional<i64> arrayLength(const Function &fn, const std::string &root) {
  if (root.empty() || root.front() != '%') return std::nullopt;
  for (const auto &bl : fn.blocks)
    for (const auto &in : bl.instrs) {
      if (in.op != "alloca" || in.result != root) continue;
      if (in.operands.empty()) return std::nullopt; // scalar slot
      i64 n = 1;
      for (const auto &dim : in.operands) {
        const auto c = constVal(dim);
        if (!c || *c <= 0) return std::nullopt;
        if (n > (i64{1} << 40) / *c) return std::nullopt; // implausible
        n *= *c;
      }
      return n;
    }
  return std::nullopt;
}

ModuleRanges analyzeModuleRanges(const Module &m) {
  ModuleRanges out;
  const CallGraph cg = buildCallGraph(m);
  const std::set<std::string> recursive = recursiveFunctions(cg);

  // Symbols that escape as non-callee call operands (outlined bodies given
  // to fork_call, function pointers): their argument ranges stay ⊤.
  std::set<std::string> escaped;
  std::set<std::string> globalEscaped;
  for (const auto &fn : m.functions)
    for (const auto &bl : fn.blocks)
      for (const auto &in : bl.instrs) {
        if (in.op == "call")
          for (usize i = 1; i < in.operands.size(); ++i)
            if (!in.operands[i].empty() && in.operands[i].front() == '@') {
              escaped.insert(in.operands[i]);
              globalEscaped.insert(in.operands[i]);
            }
        if (in.op == "getelementptr" && !in.operands.empty() &&
            !in.operands[0].empty() && in.operands[0].front() == '@')
          globalEscaped.insert(in.operands[0]); // array global: elementwise
      }

  std::map<std::string, std::vector<Interval>> args;
  std::map<std::string, Interval> symbols; // "@fn" returns + "@g" globals

  // Per-function memo: a round re-runs the whole-function fixpoint only
  // when that function's inputs (argument ranges, values of the symbols it
  // references) changed since the round that produced its cached result;
  // otherwise the cached call-site / global-store / return contributions
  // replay. analyzeRanges is deterministic in those inputs, so the replay
  // is exact, and once no function's inputs move the rounds stop early.
  struct FnMemo {
    std::vector<std::string> refs; ///< '@' operands, sorted
    bool valid = false;
    std::vector<Interval> inArgs;
    std::vector<Interval> inSyms; ///< value per refs entry, ⊤ when absent
    FunctionRanges fr;
    std::map<std::string, std::vector<Interval>> callArgs;
    std::map<std::string, Interval> globalStores;
  };
  std::map<std::string, FnMemo> memos;
  for (const auto &fn : m.functions) {
    if (fn.role == FunctionRole::Runtime) continue;
    std::set<std::string> refs;
    for (const auto &bl : fn.blocks)
      for (const auto &in : bl.instrs)
        for (const auto &o : in.operands)
          if (!o.empty() && o.front() == '@') refs.insert(o);
    memos[fn.name].refs.assign(refs.begin(), refs.end());
  }
  const auto symValues = [&](const FnMemo &memo) {
    std::vector<Interval> v;
    v.reserve(memo.refs.size());
    for (const auto &r : memo.refs) {
      const auto it = symbols.find(r);
      v.push_back(it == symbols.end() ? Interval::top() : it->second);
    }
    return v;
  };

  constexpr usize kRounds = 4; // propagates main -> 3 levels of helpers
  for (usize round = 0; round < kRounds; ++round) {
    std::map<std::string, std::vector<Interval>> nextArgs;
    std::map<std::string, Interval> nextSymbols;
    std::map<std::string, Interval> globalStores;

    for (const auto &fn : m.functions) {
      if (fn.role == FunctionRole::Runtime) continue;
      auto &memo = memos[fn.name];
      std::vector<Interval> a;
      if (const auto it = args.find(fn.name); it != args.end()) a = it->second;
      std::vector<Interval> syms = symValues(memo);
      if (!memo.valid || a != memo.inArgs || syms != memo.inSyms) {
        memo.fr = analyzeRanges(fn, a, &symbols);
        memo.inArgs = std::move(a);
        memo.inSyms = std::move(syms);
        memo.valid = true;
        memo.callArgs.clear();
        memo.globalStores.clear();

        // Harvest call-site argument ranges and global scalar stores.
        const FunctionRanges &fr = memo.fr;
        for (usize b = 0; b < fn.blocks.size(); ++b) {
          if (!fr.cfg.reachable[b]) continue;
          for (const auto &in : fn.blocks[b].instrs) {
            if (in.op == "call" && !in.operands.empty() &&
                !in.operands[0].empty() && in.operands[0].front() == '@') {
              auto &ca = memo.callArgs[in.operands[0]];
              for (usize j = 1; j < in.operands.size(); ++j) {
                const usize idx = j - 1;
                if (ca.size() <= idx) ca.resize(idx + 1, Interval::none());
                ca[idx] = ca[idx].join(
                    fr.valueAt(in.operands[j], static_cast<u32>(b)));
              }
            } else if (in.op == "store" && in.operands.size() >= 2 &&
                       !in.operands[1].empty() &&
                       in.operands[1].front() == '@') {
              const Interval v =
                  fr.valueAt(in.operands[0], static_cast<u32>(b));
              const auto git = memo.globalStores.find(in.operands[1]);
              if (git == memo.globalStores.end())
                memo.globalStores.emplace(in.operands[1], v);
              else
                git->second = git->second.join(v);
            }
          }
        }
      }

      // Merge the (fresh or replayed) contributions.
      for (const auto &[callee, ca] : memo.callArgs) {
        auto &dst = nextArgs[callee];
        if (dst.size() < ca.size()) dst.resize(ca.size(), Interval::none());
        for (usize i = 0; i < ca.size(); ++i) dst[i] = dst[i].join(ca[i]);
      }
      for (const auto &[g, v] : memo.globalStores) {
        const auto git = globalStores.find(g);
        if (git == globalStores.end()) globalStores.emplace(g, v);
        else git->second = git->second.join(v);
      }
      if (!memo.fr.returnRange.bot) nextSymbols[fn.name] = memo.fr.returnRange;
    }

    // Global scalars: initialised to zero, then any stored value anywhere.
    // Escaped globals (address taken, arrays) stay ⊤ by omission.
    for (auto &[g, stored] : globalStores) {
      if (globalEscaped.count(g)) continue;
      nextSymbols[g] = stored.join(Interval::of(0));
    }

    // Clamp recursion and escapees to ⊤ args / ⊤ results.
    for (auto &[name, a] : nextArgs)
      if (recursive.count(name) || escaped.count(name))
        a.assign(a.size(), Interval::top());
    for (const auto &name : recursive) nextSymbols.erase(name);

    const bool settled = nextArgs == args && nextSymbols == symbols;
    if (round + 1 == kRounds || settled) {
      out.argRanges = std::move(nextArgs);
      out.returnRanges = std::move(nextSymbols);
      break;
    }
    args = std::move(nextArgs);
    symbols = std::move(nextSymbols);
  }
  for (auto &[name, memo] : memos)
    out.functions.emplace(name, std::move(memo.fr));
  return out;
}

} // namespace sv::ir
