#include "ir/cfg.hpp"

#include <map>

#include "support/strings.hpp"

namespace sv::ir {

bool isTerminator(const Instr &in) {
  return in.op == "br" || in.op == "condbr" || in.op == "ret";
}

std::optional<u32> Cfg::blockOf(const std::string &name) const {
  if (!function) return std::nullopt;
  for (usize i = 0; i < function->blocks.size(); ++i)
    if (function->blocks[i].name == name) return static_cast<u32>(i);
  return std::nullopt;
}

Cfg buildCfg(const Function &fn) {
  Cfg cfg;
  cfg.function = &fn;
  const usize n = fn.blocks.size();
  cfg.succs.assign(n, {});
  cfg.preds.assign(n, {});
  cfg.reachable.assign(n, false);
  cfg.terminator.assign(n, Cfg::npos);

  std::map<std::string, u32> byName;
  for (usize i = 0; i < n; ++i) byName.emplace(fn.blocks[i].name, static_cast<u32>(i));

  const auto addEdge = [&](u32 from, u32 to) {
    // Keep edges unique so condbr with duplicate targets stays a simple graph.
    for (const u32 s : cfg.succs[from])
      if (s == to) return;
    cfg.succs[from].push_back(to);
    cfg.preds[to].push_back(from);
  };

  for (usize b = 0; b < n; ++b) {
    const auto &instrs = fn.blocks[b].instrs;
    usize term = Cfg::npos;
    for (usize i = 0; i < instrs.size(); ++i) {
      if (isTerminator(instrs[i])) {
        term = i;
        break;
      }
    }
    cfg.terminator[b] = term;
    if (term == Cfg::npos) {
      // Fall-through into the next block in layout order.
      if (b + 1 < n) addEdge(static_cast<u32>(b), static_cast<u32>(b + 1));
      else cfg.exits.push_back(static_cast<u32>(b));
      continue;
    }
    const auto &t = instrs[term];
    if (t.op == "ret") {
      cfg.exits.push_back(static_cast<u32>(b));
      continue;
    }
    // br / condbr: every label operand is a successor (handles multi-way
    // branches uniformly).
    for (const auto &op : t.operands) {
      if (!str::startsWith(op, "label:")) continue;
      const auto it = byName.find(op.substr(6));
      if (it == byName.end()) continue; // unresolved target; verify reports it
      addEdge(static_cast<u32>(b), it->second);
    }
  }

  // Reachability + post-order via iterative DFS from the entry.
  if (n > 0) {
    std::vector<u32> postOrder;
    std::vector<std::pair<u32, usize>> stack{{0, 0}};
    cfg.reachable[0] = true;
    while (!stack.empty()) {
      auto &[b, next] = stack.back();
      if (next < cfg.succs[b].size()) {
        const u32 s = cfg.succs[b][next++];
        if (!cfg.reachable[s]) {
          cfg.reachable[s] = true;
          stack.emplace_back(s, 0);
        }
      } else {
        postOrder.push_back(b);
        stack.pop_back();
      }
    }
    cfg.rpo.assign(postOrder.rbegin(), postOrder.rend());
    for (usize b = 0; b < n; ++b)
      if (!cfg.reachable[b]) cfg.rpo.push_back(static_cast<u32>(b));
  }
  return cfg;
}

std::vector<u32> unreachableBlocks(const Cfg &cfg) {
  std::vector<u32> out;
  for (usize b = 0; b < cfg.size(); ++b)
    if (!cfg.reachable[b]) out.push_back(static_cast<u32>(b));
  return out;
}

} // namespace sv::ir
