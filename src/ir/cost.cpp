#include "ir/cost.hpp"
#include <set>

namespace sv::ir {

InstrMix &InstrMix::operator+=(const InstrMix &o) {
  loads += o.loads;
  stores += o.stores;
  loadBytes += o.loadBytes;
  storeBytes += o.storeBytes;
  flops += o.flops;
  intOps += o.intOps;
  calls += o.calls;
  branches += o.branches;
  return *this;
}

u64 typeBytes(const std::string &irType) {
  if (irType == "double" || irType == "i64" || irType == "ptr") return 8;
  if (irType == "float" || irType == "i32") return 4;
  if (irType == "i1" || irType == "i8") return 1;
  return 8;
}

InstrMix functionMix(const Function &f) {
  InstrMix mix;
  // mem2reg modelling: loads/stores whose address is a *scalar* stack slot
  // (an alloca with no size operands) would be promoted to registers by
  // any optimising backend and must not count as memory traffic. Stack
  // arrays and getelementptr/global/argument addresses are real memory.
  std::set<std::string> scalarSlots;
  for (const auto &b : f.blocks)
    for (const auto &in : b.instrs)
      if (in.op == "alloca" && in.operands.empty() && !in.result.empty())
        scalarSlots.insert(in.result);
  const auto isScalarSlot = [&](const std::string &addr) {
    return scalarSlots.count(addr) != 0;
  };
  for (const auto &b : f.blocks) {
    for (const auto &in : b.instrs) {
      const auto &op = in.op;
      if (op == "load") {
        if (!in.operands.empty() && isScalarSlot(in.operands[0])) continue;
        ++mix.loads;
        mix.loadBytes += typeBytes(in.type);
      } else if (op == "store") {
        if (in.operands.size() > 1 && isScalarSlot(in.operands[1])) continue;
        ++mix.stores;
        mix.storeBytes += typeBytes(in.type);
      } else if (op == "fadd" || op == "fsub" || op == "fmul" || op == "fdiv" || op == "fneg" ||
                 op == "frem" || op == "fcmp") {
        ++mix.flops;
      } else if (op == "add" || op == "sub" || op == "mul" || op == "sdiv" || op == "srem" ||
                 op == "and" || op == "or" || op == "xor" || op == "shl" || op == "ashr" ||
                 op == "icmp" || op == "neg" || op == "select" || op == "getelementptr") {
        ++mix.intOps;
      } else if (op == "call") {
        ++mix.calls;
      } else if (op == "br" || op == "condbr") {
        ++mix.branches;
      }
    }
  }
  return mix;
}

InstrMix moduleMix(const Module &m) {
  InstrMix mix;
  for (const auto &f : m.functions) {
    if (f.role == FunctionRole::Runtime) continue;
    mix += functionMix(f);
  }
  return mix;
}

double arithmeticIntensity(const InstrMix &mix) {
  const u64 b = mix.bytes();
  if (b == 0) return 0.0;
  return static_cast<double>(mix.flops) / static_cast<double>(b);
}

} // namespace sv::ir
