#include "ir/verify.hpp"

#include <set>

#include "support/strings.hpp"

namespace sv::ir {

namespace {

bool isVoidLike(const std::string &op) {
  return op == "store" || op == "br" || op == "condbr" || op == "ret";
}

void verifyFunction(const Function &fn, std::vector<VerifyIssue> &issues) {
  const auto issue = [&](std::string msg) { issues.push_back({fn.name, std::move(msg)}); };

  std::set<std::string> blockNames;
  for (const auto &b : fn.blocks) {
    if (b.name.empty()) issue("unnamed basic block");
    if (!blockNames.insert(b.name).second) issue("duplicate block name '" + b.name + "'");
  }

  std::set<std::string> results;
  for (const auto &b : fn.blocks) {
    for (const auto &in : b.instrs) {
      if (in.result.empty()) continue;
      if (!str::startsWith(in.result, "%"))
        issue("result '" + in.result + "' of " + in.op + " is not a local value");
      if (!results.insert(in.result).second)
        issue("result " + in.result + " defined more than once");
    }
  }

  for (const auto &b : fn.blocks) {
    for (const auto &in : b.instrs) {
      // Result arity.
      if (isVoidLike(in.op)) {
        if (!in.result.empty())
          issue(in.op + " in '" + b.name + "' must not produce a result");
      } else if (in.type != "void" && in.op != "call" && in.result.empty()) {
        issue("non-void " + in.op + " in '" + b.name + "' has no result");
      }

      // Operand references.
      usize labels = 0;
      for (const auto &op : in.operands) {
        if (str::startsWith(op, "label:")) {
          ++labels;
          if (!blockNames.count(op.substr(6)))
            issue(in.op + " in '" + b.name + "' targets unknown block '" + op.substr(6) + "'");
        } else if (str::startsWith(op, "%") && !results.count(op)) {
          issue(in.op + " in '" + b.name + "' uses undefined value " + op);
        }
      }

      // Branch shapes.
      if (in.op == "br" && (labels != 1 || in.operands.size() != 1))
        issue("br in '" + b.name + "' must have exactly one label operand");
      if (in.op == "condbr" && (labels < 2 || in.operands.size() < 3 ||
                                str::startsWith(in.operands[0], "label:")))
        issue("condbr in '" + b.name + "' needs a condition and at least two labels");
    }
  }
}

} // namespace

std::vector<VerifyIssue> verify(const Module &m) {
  std::vector<VerifyIssue> issues;
  for (const auto &fn : m.functions) verifyFunction(fn, issues);
  return issues;
}

std::string renderIssues(const std::vector<VerifyIssue> &issues) {
  std::string out;
  for (const auto &i : issues) {
    out += i.function.empty() ? std::string("<module>") : i.function;
    out += ": ";
    out += i.message;
    out += "\n";
  }
  return out;
}

} // namespace sv::ir
