// IR well-formedness checker: the invariants every module out of ir::lower
// must satisfy before the CFG/dataflow tier can analyse it. Distinct from
// lint::runIr — a verify failure is a lowering bug (or a hand-built test
// module), not a defect in the analysed program.
//
//   - block names are unique per function and every `label:` operand
//     resolves to a block of the same function
//   - every `%N` result is unique per function, and every `%N` operand
//     references a result defined somewhere in the function
//   - terminators (store/br/condbr/ret) carry no result; non-void
//     instructions other than store/br/condbr/ret/call carry one
//   - `br` has exactly one label operand; `condbr` has a condition plus at
//     least two labels
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace sv::ir {

struct VerifyIssue {
  std::string function; ///< enclosing function name ("" for module scope)
  std::string message;
};

/// Check every function of the module; empty result means well-formed.
[[nodiscard]] std::vector<VerifyIssue> verify(const Module &m);

/// One issue per line, "function: message" — for test failure output.
[[nodiscard]] std::string renderIssues(const std::vector<VerifyIssue> &issues);

} // namespace sv::ir
