// Compilation Database ingestion (Section IV): SilverVale's workflow input
// is a compile_commands.json recording how each translation unit of the
// codebase was compiled. The flags determine the programming model (exactly
// as clang's driver does): `-x cuda`, `-x hip`, `-fopenmp`,
// `-fopenmp-targets=...`, `-fsycl`, and -D defines select model and macros.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/lower.hpp"
#include "support/common.hpp"

namespace sv::db {

struct CompileCommand {
  std::string directory;
  std::string file;                 ///< the TU's main source file
  std::vector<std::string> args;    ///< full argv, [0] is the compiler
};

/// Parse a compile_commands.json document. Accepts both the "command"
/// (single string) and "arguments" (array) forms.
[[nodiscard]] std::vector<CompileCommand> parseCompileCommands(const std::string &json);

/// Serialise back to compile_commands.json (used by tests and examples).
[[nodiscard]] std::string writeCompileCommands(const std::vector<CompileCommand> &commands);

/// Infer the programming model from the compile flags.
[[nodiscard]] ir::Model modelFromCommand(const CompileCommand &command);

/// Collect -DNAME[=VALUE] macro definitions.
[[nodiscard]] std::map<std::string, std::string> definesFromCommand(const CompileCommand &command);

/// True for Fortran TUs (by extension: .f90/.f95/.f03/.f).
[[nodiscard]] bool isFortranFile(const std::string &file);

} // namespace sv::db
