// Loading a real on-disk codebase: point SilverVale at a directory
// containing a compile_commands.json (the exact workflow of Fig 2 — CMake,
// Meson and Bear all emit one) and get back a Codebase ready for index().
#pragma once

#include <string>

#include "db/codebase.hpp"

namespace sv::db {

struct DiskLoadOptions {
  /// Name of the compilation database file inside the root directory.
  std::string compileDbName = "compile_commands.json";
  /// Extensions of files registered into the virtual file system.
  std::vector<std::string> extensions = {".h", ".hpp", ".hh", ".cpp", ".cc",
                                         ".cxx", ".f90", ".f95", ".f"};
  /// Display metadata for the resulting codebase.
  std::string app = "external";
  std::string model = "unknown";
};

/// Read `root`/compile_commands.json plus every source file under `root`
/// (recursively, filtered by extension; paths are stored relative to
/// `root`, so `include/...` subtrees land under the system prefix exactly
/// like the embedded corpus). Throws ParseError when the compilation DB is
/// missing or malformed.
[[nodiscard]] Codebase loadFromDisk(const std::string &root, const DiskLoadOptions &options = {});

} // namespace sv::db
