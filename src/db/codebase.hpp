// The Codebase DB (Fig 2): SilverVale ingests a codebase (an in-memory file
// set + its Compilation DB), runs the full frontend/backend pipeline per
// translation unit, and produces a portable, serialisable set of
// semantic-bearing trees and text-metric inputs. Optionally the program is
// executed in the VM first so runtime coverage can be stored alongside
// (Section IV-D).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/compiledb.hpp"
#include "lang/source.hpp"
#include "lint/lint.hpp"
#include "support/pipeline.hpp"
#include "tree/tedbounds.hpp"
#include "tree/tree.hpp"
#include "vm/vm.hpp"

namespace sv::db {

/// A codebase under analysis: one miniapp in one programming model.
struct Codebase {
  std::string app;    ///< e.g. "tealeaf"
  std::string model;  ///< display name, e.g. "cuda", "sycl-acc"
  lang::SourceManager sources;
  std::vector<CompileCommand> commands;

  /// Register a file and return its id.
  i32 addFile(std::string name, std::string text) {
    return sources.add(std::move(name), std::move(text));
  }
};

/// Everything extracted from one translation unit (= one unit_C(x), Eq. 1:
/// the source file plus its non-system dependencies).
struct UnitEntry {
  std::string file;     ///< TU main file
  std::string role;     ///< match() key: the file stem, stable across models
  bool fortran = false;
  /// Non-system files this unit depends on (its own headers) — the
  /// dependency information unit_C(x) = dep(x) ∪ x carries (Eq. 1), used by
  /// the module-coupling secondary metric (Section III-A).
  std::vector<std::string> deps;

  // Perceived-metric inputs (system files excluded).
  std::string normText;   ///< normalised raw text of the unit's own files
  std::string normTextPp; ///< normalised preprocessed text (+pp variant)
  usize sloc = 0, lloc = 0, slocPp = 0, llocPp = 0;

  // Semantic-bearing trees.
  tree::Tree tsrc;    ///< token view of the unit's own files
  tree::Tree tsrcPp;  ///< token view after preprocessing
  tree::Tree tsem;    ///< frontend semantic tree
  tree::Tree tsemI;   ///< T_sem with same-codebase calls inlined
  tree::Tree tir;     ///< backend IR tree

  // TED lower-bound signatures of the five trees (tree/tedbounds.hpp),
  // computed once at index time and persisted: the metric-space query
  // layer (metrics/query.hpp) filters candidate pairs on these without
  // deserialising a single DP input. Label hashes, not interner ids, so
  // they survive the round trip.
  tree::BoundSignature sigTsrc, sigTsrcPp, sigTsem, sigTsemI, sigTir;

  /// (Re)derive the five signatures from the trees — called by the indexer
  /// and by deserialise() for DBs written before signatures existed.
  void computeSignatures();

  /// Parallel-semantics diagnostics over the sema'd AST (populated when
  /// IndexOptions.runLint is set; serialised with the DB).
  std::vector<lint::Diagnostic> lint;
};

struct CodebaseDb {
  std::string app;
  std::string model;
  ir::Model modelKind = ir::Model::Serial;
  bool fortran = false;
  std::vector<std::string> fileNames; ///< id -> name (coverage back-references)
  std::vector<UnitEntry> units;
  bool hasCoverage = false;
  vm::Coverage coverage;

  [[nodiscard]] std::vector<u8> serialise() const;       ///< MessagePack + svz
  static CodebaseDb deserialise(const std::vector<u8> &bytes);
};

struct IndexOptions {
  /// Execute the program in the VM and record line coverage. The entry
  /// point is "main" (or the Fortran program unit); all TUs are linked.
  bool runCoverage = false;
  /// Run all three lint tiers per unit — the parallel-semantics checks over
  /// the sema'd AST (lint::run), the CFG/dataflow checks over the lowered IR
  /// (lint::runIr), and the loop dependence verdicts (lint::runDeps) — and
  /// store the diagnostics in UnitEntry::lint. Off by default so the
  /// divergence hot path does not pay for it (bench/lint_bench.cpp,
  /// bench/irlint_bench.cpp and bench/deps_bench.cpp track the cost).
  bool runLint = false;
  vm::RunOptions vmOptions;
  /// How the per-unit stage pipeline executes (support/pipeline.hpp):
  /// Streaming runs frontend → trees → lower → sign as a work-stealing task
  /// graph (unit A can be in lowering while unit B is still in sema),
  /// Barrier replays the classic full-width phase-barrier schedule. Both
  /// produce byte-identical DBs — results land in per-unit slots.
  ExecMode mode = defaultExecMode();
  /// Worker count for the stage pipeline (0 = configureThreads /
  /// SV_THREADS / hardware default).
  usize threads = 0;
};

struct IndexResult {
  CodebaseDb db;
  std::optional<vm::RunResult> coverageRun; ///< present when runCoverage
};

/// Run the full indexing pipeline over every compile command.
/// Throws FrontendError / VmError on malformed corpus input.
[[nodiscard]] IndexResult index(const Codebase &codebase, const IndexOptions &options = {});

/// Index several codebases through ONE shared stage pipeline: the units of
/// every codebase are flattened into a single item stream, so a slow unit
/// of one port never stalls the others (indexApp/indexAllPorts route their
/// whole port set through here). Results are per-codebase, in input order,
/// byte-identical to indexing each codebase alone.
[[nodiscard]] std::vector<IndexResult> indexBatch(const std::vector<const Codebase *> &codebases,
                                                  const IndexOptions &options = {});

/// Link all TUs of a codebase into one unit for execution (the VM's view of
/// the final binary).
[[nodiscard]] lang::ast::TranslationUnit linkForExecution(const Codebase &codebase);

/// One translation unit through the frontend only (preprocess, parse,
/// sema) — no trees, no IR. The cheap path for consumers that need the
/// analysed AST per unit rather than the metric inputs (the linter, the
/// lint bench).
struct ParsedUnit {
  std::string file;
  bool fortran = false;
  ir::Model model = ir::Model::Serial; ///< from the unit's compile flags
  lang::ast::TranslationUnit tu;
};

/// One compile command through the frontend (the per-unit step behind
/// parseUnits, exposed so pipeline stages can stream units independently).
[[nodiscard]] ParsedUnit parseUnit(const Codebase &codebase, const CompileCommand &cmd);

/// Run the frontend over every compile command of `codebase`.
[[nodiscard]] std::vector<ParsedUnit> parseUnits(const Codebase &codebase);

/// One translation unit through frontend + backend lowering — the input of
/// the IR-tier consumers (ir::verify gate, lint::runIr, the IR lint bench).
struct LoweredUnit {
  std::string file;
  ir::Model model = ir::Model::Serial;
  ir::Module module;
};

/// Lower one parsed unit (the per-unit step behind lowerUnits).
[[nodiscard]] LoweredUnit lowerParsed(ParsedUnit parsed);

/// Parse and lower every compile command of `codebase`.
[[nodiscard]] std::vector<LoweredUnit> lowerUnits(const Codebase &codebase);

} // namespace sv::db
