#include "db/compiledb.hpp"

#include "support/json.hpp"
#include "support/strings.hpp"

namespace sv::db {

namespace {

/// Split a shell-ish command string into argv (quotes respected, no
/// escapes beyond what compile_commands.json produces in practice).
std::vector<std::string> shellSplit(const std::string &command) {
  std::vector<std::string> out;
  std::string cur;
  bool inQuote = false;
  char quote = '\0';
  for (const char c : command) {
    if (inQuote) {
      if (c == quote) inQuote = false;
      else cur.push_back(c);
      continue;
    }
    if (c == '"' || c == '\'') {
      inQuote = true;
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
      continue;
    }
    cur.push_back(c);
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

} // namespace

std::vector<CompileCommand> parseCompileCommands(const std::string &jsonText) {
  const auto doc = json::parse(jsonText);
  std::vector<CompileCommand> out;
  for (const auto &entry : doc.asArray()) {
    CompileCommand cmd;
    cmd.directory = entry.at("directory").asString();
    cmd.file = entry.at("file").asString();
    if (const auto *args = entry.find("arguments")) {
      for (const auto &a : args->asArray()) cmd.args.push_back(a.asString());
    } else {
      cmd.args = shellSplit(entry.at("command").asString());
    }
    out.push_back(std::move(cmd));
  }
  return out;
}

std::string writeCompileCommands(const std::vector<CompileCommand> &commands) {
  json::Array arr;
  for (const auto &c : commands) {
    json::Object obj;
    obj.emplace("directory", c.directory);
    obj.emplace("file", c.file);
    json::Array args;
    for (const auto &a : c.args) args.emplace_back(a);
    obj.emplace("arguments", std::move(args));
    arr.emplace_back(std::move(obj));
  }
  return json::write(json::Value(std::move(arr)), 2);
}

ir::Model modelFromCommand(const CompileCommand &command) {
  bool openmp = false;
  bool target = false;
  for (usize i = 0; i < command.args.size(); ++i) {
    const auto &a = command.args[i];
    if (a == "-x" && i + 1 < command.args.size()) {
      if (command.args[i + 1] == "cuda") return ir::Model::Cuda;
      if (command.args[i + 1] == "hip") return ir::Model::Hip;
    }
    if (a == "-fsycl") return ir::Model::Sycl;
    if (a == "-fopenacc") return ir::Model::OpenAcc;
    if (a == "-fopenmp") openmp = true;
    if (str::startsWith(a, "-fopenmp-targets=")) target = true;
    if (a == "-ltbb" || a == "-DUSE_TBB") return ir::Model::Tbb;
    if (a == "-lkokkoscore" || a == "-DUSE_KOKKOS") return ir::Model::Kokkos;
    if (a == "-DUSE_STDPAR" || a == "-stdpar") return ir::Model::StdPar;
  }
  if (openmp && target) return ir::Model::OpenMPTarget;
  if (openmp) return ir::Model::OpenMP;
  return ir::Model::Serial;
}

std::map<std::string, std::string> definesFromCommand(const CompileCommand &command) {
  std::map<std::string, std::string> out;
  for (const auto &a : command.args) {
    if (!str::startsWith(a, "-D")) continue;
    const auto body = a.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) out[body] = "1";
    else out[body.substr(0, eq)] = body.substr(eq + 1);
  }
  return out;
}

bool isFortranFile(const std::string &file) {
  return str::endsWith(file, ".f90") || str::endsWith(file, ".f95") ||
         str::endsWith(file, ".f03") || str::endsWith(file, ".f");
}

} // namespace sv::db
