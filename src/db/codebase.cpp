#include "db/codebase.hpp"

#include <set>

#include "ir/irtree.hpp"
#include "lint/depslint.hpp"
#include "lint/irlint.hpp"
#include "lint/rangelint.hpp"
#include "minic/inliner.hpp"
#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/preprocessor.hpp"
#include "minic/sema.hpp"
#include "minic/semtree.hpp"
#include "minic/srctree.hpp"
#include "minif/fparser.hpp"
#include "minif/ftrees.hpp"
#include "support/compress.hpp"
#include "support/strings.hpp"
#include "text/text.hpp"

namespace sv::db {

namespace {

std::string fileStem(const std::string &path) {
  auto slash = path.rfind('/');
  const auto base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// The unit's own files: the TU plus its non-system resolved includes.
std::vector<i32> unitFiles(const Codebase &cb, i32 mainFile,
                           const minic::PreprocessResult &pp) {
  std::vector<i32> out{mainFile};
  for (const auto &inc : pp.includes) {
    // Mirror the preprocessor's resolution order: includer-relative, exact,
    // then the include/ system prefix.
    i32 resolved = -1;
    if (inc.loc.file >= 0) {
      const auto &includer = cb.sources.file(inc.loc.file).name;
      if (const auto slash = includer.rfind('/'); slash != std::string::npos)
        if (const auto id = cb.sources.idOf(includer.substr(0, slash + 1) + inc.path))
          resolved = *id;
    }
    if (resolved < 0)
      if (const auto id = cb.sources.idOf(inc.path)) resolved = *id;
    if (resolved < 0)
      if (const auto id = cb.sources.idOf("include/" + inc.path)) resolved = *id;
    if (resolved < 0) continue;
    if (pp.systemFiles.count(resolved)) continue;
    if (std::find(out.begin(), out.end(), resolved) == out.end()) out.push_back(resolved);
  }
  return out;
}

// ---- the per-unit stage pipeline -----------------------------------------
//
// The old monolithic indexCxxUnit/indexFortranUnit bodies, cut at their
// natural seams into four stages so units stream through a task graph
// (support/pipeline.hpp): frontend (preprocess + parse + sema + AST-tier
// lint) → trees (perceived-metric inputs + the four frontend trees) →
// lower (backend IR + the IR/deps/range lint tiers + T_ir) → sign (bound
// signatures). Every stage is a pure function of the carried state, so the
// stage cut lines cannot change any output byte.

/// The state of one translation unit in flight between stages.
struct UnitWork {
  const Codebase *cb = nullptr;
  const CompileCommand *cmd = nullptr;
  bool runLint = false;
  bool fortran = false;
  i32 fileId = -1;
  minic::PreprocessResult pp; ///< C++ units only
  lang::ast::TranslationUnit tu;
  UnitEntry unit;
};

UnitWork unitFrontend(UnitWork w) {
  const Codebase &cb = *w.cb;
  const CompileCommand &cmd = *w.cmd;
  const auto fileId = cb.sources.idOf(cmd.file);
  SV_CHECK(fileId.has_value(), "compile command references unknown file " + cmd.file);
  w.fileId = *fileId;
  w.unit.file = cmd.file;
  w.unit.role = fileStem(cmd.file);
  if (w.fortran) {
    w.unit.fortran = true;
    const auto toks = minif::lexFortran(cb.sources.file(w.fileId).text, w.fileId);
    w.tu = minif::parseFortran(toks, cmd.file, cb.sources);
    if (w.runLint) w.unit.lint = lint::run(w.tu);
  } else {
    minic::PreprocessOptions ppOpts;
    ppOpts.defines = definesFromCommand(cmd);
    w.pp = minic::preprocess(cb.sources, w.fileId, ppOpts);
    const auto ppToks = minic::lex(w.pp.text, w.fileId, &w.pp.lineOrigins);
    w.tu = minic::parseTranslationUnit(ppToks, cmd.file, cb.sources);
    w.tu.includes = w.pp.includes;
    minic::analyse(w.tu);
    if (w.runLint) w.unit.lint = lint::run(w.tu);
  }
  return w;
}

UnitWork unitTrees(UnitWork w) {
  const Codebase &cb = *w.cb;
  auto &unit = w.unit;
  if (w.fortran) {
    const auto &text = cb.sources.file(w.fileId).text;
    unit.normText = text::normalise(text, minif::fortranCommentRanges(text));
    unit.sloc = text::sloc(unit.normText);
    unit.lloc = text::lloc(unit.normText, /*fortran=*/true);
    // Fortran has no preprocessing phase here; +pp variants alias the base.
    unit.normTextPp = unit.normText;
    unit.slocPp = unit.sloc;
    unit.llocPp = unit.lloc;

    const auto toks = minif::lexFortran(text, w.fileId);
    unit.tsrc = minif::buildFortranSrcTree(toks);
    unit.tsrcPp = unit.tsrc;
    unit.tsem = minif::buildFortranSemTree(w.tu);
    unit.tsemI = unit.tsem; // inlining is not implemented for GFortran (IV-B)
    return w;
  }

  const auto &pp = w.pp;
  // ---- perceived metric inputs -----------------------------------------
  const auto files = unitFiles(cb, w.fileId, pp);
  for (usize i = 1; i < files.size(); ++i)
    unit.deps.push_back(cb.sources.file(files[i]).name);
  for (const i32 f : files) {
    const auto &text = cb.sources.file(f).text;
    unit.normText += text::normalise(text, minic::commentRanges(text));
  }
  unit.sloc = text::sloc(unit.normText);
  unit.lloc = text::lloc(unit.normText);

  // +pp: preprocessed text with system-origin lines removed.
  {
    const auto lines = str::splitLines(pp.text);
    std::string kept;
    for (usize i = 0; i < lines.size(); ++i) {
      const auto origin = i < pp.lineOrigins.size() ? pp.lineOrigins[i]
                                                    : lang::Location{};
      if (origin.file >= 0 && pp.systemFiles.count(origin.file)) continue;
      kept += lines[i];
      kept += '\n';
    }
    unit.normTextPp = text::normalise(kept);
    unit.slocPp = text::sloc(unit.normTextPp);
    unit.llocPp = text::lloc(unit.normTextPp);
  }

  // ---- T_src ----------------------------------------------------------
  {
    // Per-file token trees grafted under a unit root.
    unit.tsrc = tree::Tree::leaf("unit");
    for (const i32 f : files) {
      const auto toks = minic::lex(cb.sources.file(f).text, f, nullptr, /*allowDirectives=*/true);
      unit.tsrc.graft(0, minic::buildSrcTree(toks));
    }
    const auto ppToks = minic::lex(pp.text, w.fileId, &pp.lineOrigins);
    // Preprocessed tree keeps system tokens out via pruning on file origin.
    auto full = minic::buildSrcTree(ppToks);
    unit.tsrcPp = full.pruneWhere([&](const tree::Node &n) {
      return n.file < 0 || pp.systemFiles.count(n.file) == 0;
    });
  }

  minic::SemTreeOptions semOpts;
  for (const i32 f : pp.systemFiles) semOpts.maskedFiles.insert(f);
  unit.tsem = minic::buildSemTree(w.tu, semOpts);

  {
    // TranslationUnit holds unique_ptrs; clone explicitly for the inliner.
    const auto &tu = w.tu;
    lang::ast::TranslationUnit clone;
    clone.fileName = tu.fileName;
    clone.includes = tu.includes;
    clone.programName = tu.programName;
    for (const auto &s : tu.structs) {
      lang::ast::StructDecl sc;
      sc.name = s.name;
      sc.loc = s.loc;
      for (const auto &f : s.fields) sc.fields.push_back(lang::ast::cloneParam(f));
      clone.structs.push_back(std::move(sc));
    }
    for (const auto &g : tu.globals) {
      lang::ast::GlobalVarDecl gg;
      gg.var = lang::ast::cloneVarDecl(g.var);
      gg.attributes = g.attributes;
      gg.loc = g.loc;
      clone.globals.push_back(std::move(gg));
    }
    for (const auto &f : tu.functions) clone.functions.push_back(lang::ast::cloneFunction(f));
    minic::InlineOptions inlOpts;
    inlOpts.systemFiles = {pp.systemFiles.begin(), pp.systemFiles.end()};
    minic::inlineUnit(clone, inlOpts);
    unit.tsemI = minic::buildSemTree(clone, semOpts);
  }
  return w;
}

UnitWork unitLower(UnitWork w) {
  auto &unit = w.unit;
  ir::LowerOptions lowOpts;
  lowOpts.model = modelFromCommand(*w.cmd);
  const auto module = ir::lower(w.tu, lowOpts);
  if (w.runLint) {
    auto irDiags = lint::runIr(module);
    unit.lint.insert(unit.lint.end(), irDiags.begin(), irDiags.end());
    auto depDiags = lint::runDeps(module, {.unit = &w.tu});
    unit.lint.insert(unit.lint.end(), depDiags.begin(), depDiags.end());
    auto rangeDiags = lint::runRange(module);
    unit.lint.insert(unit.lint.end(), rangeDiags.begin(), rangeDiags.end());
  }
  if (w.fortran) {
    unit.tir = ir::buildIrTree(module);
  } else {
    auto irTree = ir::buildIrTree(module);
    // Mask functions/globals defined in system headers out of T_ir.
    unit.tir = irTree.pruneWhere([&](const tree::Node &n) {
      const bool isTopLevel = str::startsWith(n.label, "Function:");
      if (!isTopLevel) return true;
      return n.file < 0 || w.pp.systemFiles.count(n.file) == 0;
    });
  }
  return w;
}

UnitEntry unitSign(UnitWork w) {
  w.unit.computeSignatures();
  return std::move(w.unit);
}

} // namespace

lang::ast::TranslationUnit linkForExecution(const Codebase &codebase) {
  lang::ast::TranslationUnit merged;
  merged.fileName = codebase.app + "/" + codebase.model;
  for (const auto &cmd : codebase.commands) {
    const auto fileId = codebase.sources.idOf(cmd.file);
    SV_CHECK(fileId.has_value(), "link: unknown file " + cmd.file);
    if (isFortranFile(cmd.file)) {
      auto tu = minif::parseFortran(
          minif::lexFortran(codebase.sources.file(*fileId).text, *fileId), cmd.file,
          codebase.sources);
      for (auto &f : tu.functions) merged.functions.push_back(std::move(f));
      for (auto &g : tu.globals) merged.globals.push_back(std::move(g));
      for (auto &s : tu.structs) merged.structs.push_back(std::move(s));
      if (!tu.programName.empty()) merged.programName = tu.programName;
    } else {
      minic::PreprocessOptions ppOpts;
      ppOpts.defines = definesFromCommand(cmd);
      const auto pp = minic::preprocess(codebase.sources, *fileId, ppOpts);
      const auto toks = minic::lex(pp.text, *fileId, &pp.lineOrigins);
      auto tu = minic::parseTranslationUnit(toks, cmd.file, codebase.sources);
      minic::analyse(tu);
      for (auto &f : tu.functions) {
        // Only definitions matter to the VM; headers spliced into several
        // TUs would otherwise duplicate them — keep the first definition.
        if (!f.body) continue;
        const bool dup = std::any_of(merged.functions.begin(), merged.functions.end(),
                                     [&](const auto &existing) { return existing.name == f.name; });
        if (!dup) merged.functions.push_back(std::move(f));
      }
      for (auto &g : tu.globals) {
        const bool dup = std::any_of(merged.globals.begin(), merged.globals.end(),
                                     [&](const auto &e) { return e.var.name == g.var.name; });
        if (!dup) merged.globals.push_back(std::move(g));
      }
      for (auto &s : tu.structs) merged.structs.push_back(std::move(s));
    }
  }
  return merged;
}

ParsedUnit parseUnit(const Codebase &codebase, const CompileCommand &cmd) {
  const auto fileId = codebase.sources.idOf(cmd.file);
  SV_CHECK(fileId.has_value(), "parseUnit: unknown file " + cmd.file);
  ParsedUnit u;
  u.file = cmd.file;
  u.model = modelFromCommand(cmd);
  if (isFortranFile(cmd.file)) {
    u.fortran = true;
    u.tu = minif::parseFortran(
        minif::lexFortran(codebase.sources.file(*fileId).text, *fileId), cmd.file,
        codebase.sources);
  } else {
    minic::PreprocessOptions ppOpts;
    ppOpts.defines = definesFromCommand(cmd);
    const auto pp = minic::preprocess(codebase.sources, *fileId, ppOpts);
    const auto toks = minic::lex(pp.text, *fileId, &pp.lineOrigins);
    u.tu = minic::parseTranslationUnit(toks, cmd.file, codebase.sources);
    u.tu.includes = pp.includes;
    minic::analyse(u.tu);
  }
  return u;
}

std::vector<ParsedUnit> parseUnits(const Codebase &codebase) {
  std::vector<ParsedUnit> out;
  for (const auto &cmd : codebase.commands) out.push_back(parseUnit(codebase, cmd));
  return out;
}

LoweredUnit lowerParsed(ParsedUnit parsed) {
  LoweredUnit u;
  u.file = std::move(parsed.file);
  u.model = parsed.model;
  ir::LowerOptions lowOpts;
  lowOpts.model = parsed.model;
  u.module = ir::lower(parsed.tu, lowOpts);
  return u;
}

std::vector<LoweredUnit> lowerUnits(const Codebase &codebase) {
  std::vector<LoweredUnit> out;
  for (auto &parsed : parseUnits(codebase)) out.push_back(lowerParsed(std::move(parsed)));
  return out;
}

std::vector<IndexResult> indexBatch(const std::vector<const Codebase *> &codebases,
                                    const IndexOptions &options) {
  std::vector<IndexResult> results(codebases.size());

  // Per-codebase DB headers and unit-slot offsets (serial: cheap metadata).
  std::vector<usize> unitBase(codebases.size(), 0);
  std::vector<UnitWork> work;
  for (usize c = 0; c < codebases.size(); ++c) {
    const Codebase &cb = *codebases[c];
    auto &out = results[c].db;
    out.app = cb.app;
    out.model = cb.model;
    out.fortran = !cb.commands.empty() && isFortranFile(cb.commands[0].file);
    out.modelKind = cb.commands.empty() ? ir::Model::Serial : modelFromCommand(cb.commands[0]);
    for (const auto &f : cb.sources.files()) out.fileNames.push_back(f.name);
    unitBase[c] = work.size();
    for (const auto &cmd : cb.commands) {
      UnitWork w;
      w.cb = &cb;
      w.cmd = &cmd;
      w.runLint = options.runLint;
      w.fortran = isFortranFile(cmd.file);
      work.push_back(std::move(w));
    }
  }

  // One shared stage pipeline over the flattened unit stream: unit A can be
  // lowering while unit B is still in sema, across codebase boundaries.
  // Results land in indexed slots, so completion order never shows in the DB.
  Pipeline<UnitWork, UnitWork, UnitWork, UnitWork, UnitEntry> pipe("db-index");
  pipe.stage<0>("frontend", [](UnitWork &&w, usize) { return unitFrontend(std::move(w)); });
  pipe.stage<1>("trees", [](UnitWork &&w, usize) { return unitTrees(std::move(w)); });
  pipe.stage<2>("lower", [](UnitWork &&w, usize) { return unitLower(std::move(w)); });
  pipe.stage<3>("sign", [](UnitWork &&w, usize) { return unitSign(std::move(w)); });
  PipeOptions pipeOptions;
  pipeOptions.mode = options.mode;
  pipeOptions.threads = options.threads;
  auto units = pipe.run(std::move(work), pipeOptions);

  for (usize c = 0; c < codebases.size(); ++c) {
    auto &out = results[c].db;
    const usize n = codebases[c]->commands.size();
    out.units.reserve(n);
    for (usize k = 0; k < n; ++k) out.units.push_back(std::move(units[unitBase[c] + k]));
  }

  if (options.runCoverage) {
    // Coverage executes the linked program per codebase — its own pool node,
    // downstream of indexing (the VM needs every TU of a codebase at once).
    TaskPool pool("db-coverage");
    pool.run(
        codebases.size(),
        [&](usize c) {
          auto &result = results[c];
          const auto merged = linkForExecution(*codebases[c]);
          auto vmOpts = options.vmOptions;
          vmOpts.fortran = result.db.fortran;
          auto runResult = vm::run(merged, vmOpts);
          result.db.coverage = runResult.coverage;
          result.db.hasCoverage = true;
          result.coverageRun = std::move(runResult);
        },
        pipeOptions);
  }
  return results;
}

IndexResult index(const Codebase &codebase, const IndexOptions &options) {
  return std::move(indexBatch({&codebase}, options).front());
}

// ------------------------------------------------------------ serialise --

namespace {

msgpack::Value treeToMsg(const tree::Tree &t) { return t.toMsgpack(); }

msgpack::Value diagToMsg(const lint::Diagnostic &d) {
  msgpack::Map m;
  m.emplace("check", static_cast<i64>(d.check));
  m.emplace("severity", static_cast<i64>(d.severity));
  m.emplace("file", static_cast<i64>(d.loc.file));
  m.emplace("line", static_cast<i64>(d.loc.line));
  m.emplace("col", static_cast<i64>(d.loc.col));
  m.emplace("symbol", d.symbol);
  m.emplace("directive", d.directive);
  m.emplace("message", d.message);
  return msgpack::Value(std::move(m));
}

lint::Diagnostic diagFromMsg(const msgpack::Value &v) {
  lint::Diagnostic d;
  d.check = static_cast<lint::Check>(v.at("check").asInt());
  d.severity = static_cast<lint::Severity>(v.at("severity").asInt());
  d.loc.file = static_cast<i32>(v.at("file").asInt());
  d.loc.line = static_cast<i32>(v.at("line").asInt());
  d.loc.col = static_cast<i32>(v.at("col").asInt());
  d.symbol = v.at("symbol").asString();
  d.directive = v.at("directive").asString();
  d.message = v.at("message").asString();
  return d;
}

msgpack::Value unitToMsg(const UnitEntry &u) {
  msgpack::Map m;
  m.emplace("file", u.file);
  m.emplace("role", u.role);
  m.emplace("fortran", u.fortran);
  msgpack::Array deps;
  for (const auto &d : u.deps) deps.emplace_back(d);
  m.emplace("deps", std::move(deps));
  m.emplace("normText", u.normText);
  m.emplace("normTextPp", u.normTextPp);
  m.emplace("sloc", u.sloc);
  m.emplace("lloc", u.lloc);
  m.emplace("slocPp", u.slocPp);
  m.emplace("llocPp", u.llocPp);
  m.emplace("tsrc", treeToMsg(u.tsrc));
  m.emplace("tsrcPp", treeToMsg(u.tsrcPp));
  m.emplace("tsem", treeToMsg(u.tsem));
  m.emplace("tsemI", treeToMsg(u.tsemI));
  m.emplace("tir", treeToMsg(u.tir));
  msgpack::Array sigs;
  for (const auto *s : {&u.sigTsrc, &u.sigTsrcPp, &u.sigTsem, &u.sigTsemI, &u.sigTir})
    sigs.push_back(s->toMsgpack());
  m.emplace("sigs", std::move(sigs));
  msgpack::Array lintArr;
  for (const auto &d : u.lint) lintArr.push_back(diagToMsg(d));
  m.emplace("lint", std::move(lintArr));
  return msgpack::Value(std::move(m));
}

UnitEntry unitFromMsg(const msgpack::Value &v) {
  UnitEntry u;
  u.file = v.at("file").asString();
  u.role = v.at("role").asString();
  u.fortran = v.at("fortran").asBool();
  for (const auto &d : v.at("deps").asArray()) u.deps.push_back(d.asString());
  u.normText = v.at("normText").asString();
  u.normTextPp = v.at("normTextPp").asString();
  u.sloc = static_cast<usize>(v.at("sloc").asInt());
  u.lloc = static_cast<usize>(v.at("lloc").asInt());
  u.slocPp = static_cast<usize>(v.at("slocPp").asInt());
  u.llocPp = static_cast<usize>(v.at("llocPp").asInt());
  u.tsrc = tree::Tree::fromMsgpack(v.at("tsrc"));
  u.tsrcPp = tree::Tree::fromMsgpack(v.at("tsrcPp"));
  u.tsem = tree::Tree::fromMsgpack(v.at("tsem"));
  u.tsemI = tree::Tree::fromMsgpack(v.at("tsemI"));
  u.tir = tree::Tree::fromMsgpack(v.at("tir"));
  const auto &m = v.asMap();
  if (const auto it = m.find("sigs"); it != m.end()) {
    const auto &sigs = it->second.asArray();
    tree::BoundSignature *fields[] = {&u.sigTsrc, &u.sigTsrcPp, &u.sigTsem, &u.sigTsemI,
                                      &u.sigTir};
    for (usize i = 0; i < 5 && i < sigs.size(); ++i)
      *fields[i] = tree::BoundSignature::fromMsgpack(sigs[i]);
  } else {
    // DB written before signatures existed: self-heal from the trees.
    u.computeSignatures();
  }
  for (const auto &d : v.at("lint").asArray()) u.lint.push_back(diagFromMsg(d));
  return u;
}

} // namespace

void UnitEntry::computeSignatures() {
  sigTsrc = tree::boundSignature(tsrc);
  sigTsrcPp = tree::boundSignature(tsrcPp);
  sigTsem = tree::boundSignature(tsem);
  sigTsemI = tree::boundSignature(tsemI);
  sigTir = tree::boundSignature(tir);
}

std::vector<u8> CodebaseDb::serialise() const {
  msgpack::Map m;
  m.emplace("app", app);
  m.emplace("model", model);
  m.emplace("modelKind", static_cast<i64>(modelKind));
  m.emplace("fortran", fortran);
  msgpack::Array names;
  for (const auto &n : fileNames) names.emplace_back(n);
  m.emplace("fileNames", std::move(names));
  msgpack::Array us;
  for (const auto &u : units) us.push_back(unitToMsg(u));
  m.emplace("units", std::move(us));
  m.emplace("hasCoverage", hasCoverage);
  msgpack::Array cov;
  for (const auto &[key, count] : coverage.lineHits) {
    msgpack::Array row;
    row.emplace_back(static_cast<i64>(key.first));
    row.emplace_back(static_cast<i64>(key.second));
    row.emplace_back(static_cast<i64>(count));
    cov.emplace_back(std::move(row));
  }
  m.emplace("coverage", std::move(cov));
  return svz::compress(msgpack::encode(msgpack::Value(std::move(m))));
}

CodebaseDb CodebaseDb::deserialise(const std::vector<u8> &bytes) {
  const auto v = msgpack::decode(svz::decompress(bytes));
  CodebaseDb db;
  db.app = v.at("app").asString();
  db.model = v.at("model").asString();
  db.modelKind = static_cast<ir::Model>(v.at("modelKind").asInt());
  db.fortran = v.at("fortran").asBool();
  for (const auto &n : v.at("fileNames").asArray()) db.fileNames.push_back(n.asString());
  for (const auto &u : v.at("units").asArray()) db.units.push_back(unitFromMsg(u));
  db.hasCoverage = v.at("hasCoverage").asBool();
  for (const auto &row : v.at("coverage").asArray()) {
    const auto &r = row.asArray();
    db.coverage.lineHits[{static_cast<i32>(r[0].asInt()), static_cast<i32>(r[1].asInt())}] =
        static_cast<u64>(r[2].asInt());
  }
  return db;
}

} // namespace sv::db
