#include "db/codebase.hpp"

#include <set>

#include "ir/irtree.hpp"
#include "lint/depslint.hpp"
#include "lint/irlint.hpp"
#include "lint/rangelint.hpp"
#include "minic/inliner.hpp"
#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/preprocessor.hpp"
#include "minic/sema.hpp"
#include "minic/semtree.hpp"
#include "minic/srctree.hpp"
#include "minif/fparser.hpp"
#include "minif/ftrees.hpp"
#include "support/compress.hpp"
#include "support/strings.hpp"
#include "text/text.hpp"

namespace sv::db {

namespace {

std::string fileStem(const std::string &path) {
  auto slash = path.rfind('/');
  const auto base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// The unit's own files: the TU plus its non-system resolved includes.
std::vector<i32> unitFiles(const Codebase &cb, i32 mainFile,
                           const minic::PreprocessResult &pp) {
  std::vector<i32> out{mainFile};
  for (const auto &inc : pp.includes) {
    // Mirror the preprocessor's resolution order: includer-relative, exact,
    // then the include/ system prefix.
    i32 resolved = -1;
    if (inc.loc.file >= 0) {
      const auto &includer = cb.sources.file(inc.loc.file).name;
      if (const auto slash = includer.rfind('/'); slash != std::string::npos)
        if (const auto id = cb.sources.idOf(includer.substr(0, slash + 1) + inc.path))
          resolved = *id;
    }
    if (resolved < 0)
      if (const auto id = cb.sources.idOf(inc.path)) resolved = *id;
    if (resolved < 0)
      if (const auto id = cb.sources.idOf("include/" + inc.path)) resolved = *id;
    if (resolved < 0) continue;
    if (pp.systemFiles.count(resolved)) continue;
    if (std::find(out.begin(), out.end(), resolved) == out.end()) out.push_back(resolved);
  }
  return out;
}

UnitEntry indexCxxUnit(const Codebase &cb, const CompileCommand &cmd,
                       const IndexOptions &options) {
  const auto fileId = cb.sources.idOf(cmd.file);
  SV_CHECK(fileId.has_value(), "compile command references unknown file " + cmd.file);

  minic::PreprocessOptions ppOpts;
  ppOpts.defines = definesFromCommand(cmd);
  const auto pp = minic::preprocess(cb.sources, *fileId, ppOpts);

  UnitEntry unit;
  unit.file = cmd.file;
  unit.role = fileStem(cmd.file);

  // ---- perceived metric inputs -----------------------------------------
  const auto files = unitFiles(cb, *fileId, pp);
  for (usize i = 1; i < files.size(); ++i)
    unit.deps.push_back(cb.sources.file(files[i]).name);
  for (const i32 f : files) {
    const auto &text = cb.sources.file(f).text;
    unit.normText += text::normalise(text, minic::commentRanges(text));
  }
  unit.sloc = text::sloc(unit.normText);
  unit.lloc = text::lloc(unit.normText);

  // +pp: preprocessed text with system-origin lines removed.
  {
    const auto lines = str::splitLines(pp.text);
    std::string kept;
    for (usize i = 0; i < lines.size(); ++i) {
      const auto origin = i < pp.lineOrigins.size() ? pp.lineOrigins[i]
                                                    : lang::Location{};
      if (origin.file >= 0 && pp.systemFiles.count(origin.file)) continue;
      kept += lines[i];
      kept += '\n';
    }
    unit.normTextPp = text::normalise(kept);
    unit.slocPp = text::sloc(unit.normTextPp);
    unit.llocPp = text::lloc(unit.normTextPp);
  }

  // ---- T_src ----------------------------------------------------------
  {
    // Per-file token trees grafted under a unit root.
    unit.tsrc = tree::Tree::leaf("unit");
    for (const i32 f : files) {
      const auto toks = minic::lex(cb.sources.file(f).text, f, nullptr, /*allowDirectives=*/true);
      unit.tsrc.graft(0, minic::buildSrcTree(toks));
    }
    const auto ppToks = minic::lex(pp.text, *fileId, &pp.lineOrigins);
    // Preprocessed tree keeps system tokens out via pruning on file origin.
    auto full = minic::buildSrcTree(ppToks);
    unit.tsrcPp = full.pruneWhere([&](const tree::Node &n) {
      return n.file < 0 || pp.systemFiles.count(n.file) == 0;
    });
  }

  // ---- frontend + backend ------------------------------------------------
  const auto ppToks = minic::lex(pp.text, *fileId, &pp.lineOrigins);
  auto tu = minic::parseTranslationUnit(ppToks, cmd.file, cb.sources);
  tu.includes = pp.includes;
  minic::analyse(tu);
  if (options.runLint) unit.lint = lint::run(tu);

  minic::SemTreeOptions semOpts;
  for (const i32 f : pp.systemFiles) semOpts.maskedFiles.insert(f);
  unit.tsem = minic::buildSemTree(tu, semOpts);

  {
    // TranslationUnit holds unique_ptrs; clone explicitly for the inliner.
    lang::ast::TranslationUnit clone;
    clone.fileName = tu.fileName;
    clone.includes = tu.includes;
    clone.programName = tu.programName;
    for (const auto &s : tu.structs) {
      lang::ast::StructDecl sc;
      sc.name = s.name;
      sc.loc = s.loc;
      for (const auto &f : s.fields) sc.fields.push_back(lang::ast::cloneParam(f));
      clone.structs.push_back(std::move(sc));
    }
    for (const auto &g : tu.globals) {
      lang::ast::GlobalVarDecl gg;
      gg.var = lang::ast::cloneVarDecl(g.var);
      gg.attributes = g.attributes;
      gg.loc = g.loc;
      clone.globals.push_back(std::move(gg));
    }
    for (const auto &f : tu.functions) clone.functions.push_back(lang::ast::cloneFunction(f));
    minic::InlineOptions inlOpts;
    inlOpts.systemFiles = {pp.systemFiles.begin(), pp.systemFiles.end()};
    minic::inlineUnit(clone, inlOpts);
    unit.tsemI = minic::buildSemTree(clone, semOpts);
  }

  ir::LowerOptions lowOpts;
  lowOpts.model = modelFromCommand(cmd);
  const auto module = ir::lower(tu, lowOpts);
  if (options.runLint) {
    auto irDiags = lint::runIr(module);
    unit.lint.insert(unit.lint.end(), irDiags.begin(), irDiags.end());
    auto depDiags = lint::runDeps(module, {.unit = &tu});
    unit.lint.insert(unit.lint.end(), depDiags.begin(), depDiags.end());
    auto rangeDiags = lint::runRange(module);
    unit.lint.insert(unit.lint.end(), rangeDiags.begin(), rangeDiags.end());
  }
  auto irTree = ir::buildIrTree(module);
  // Mask functions/globals defined in system headers out of T_ir.
  unit.tir = irTree.pruneWhere([&](const tree::Node &n) {
    const bool isTopLevel = str::startsWith(n.label, "Function:");
    if (!isTopLevel) return true;
    return n.file < 0 || pp.systemFiles.count(n.file) == 0;
  });
  return unit;
}

UnitEntry indexFortranUnit(const Codebase &cb, const CompileCommand &cmd,
                           const IndexOptions &options) {
  const auto fileId = cb.sources.idOf(cmd.file);
  SV_CHECK(fileId.has_value(), "compile command references unknown file " + cmd.file);
  const auto &text = cb.sources.file(*fileId).text;

  UnitEntry unit;
  unit.file = cmd.file;
  unit.role = fileStem(cmd.file);
  unit.fortran = true;

  unit.normText = text::normalise(text, minif::fortranCommentRanges(text));
  unit.sloc = text::sloc(unit.normText);
  unit.lloc = text::lloc(unit.normText, /*fortran=*/true);
  // Fortran has no preprocessing phase here; +pp variants alias the base.
  unit.normTextPp = unit.normText;
  unit.slocPp = unit.sloc;
  unit.llocPp = unit.lloc;

  const auto toks = minif::lexFortran(text, *fileId);
  unit.tsrc = minif::buildFortranSrcTree(toks);
  unit.tsrcPp = unit.tsrc;

  auto tu = minif::parseFortran(toks, cmd.file, cb.sources);
  if (options.runLint) unit.lint = lint::run(tu);
  unit.tsem = minif::buildFortranSemTree(tu);
  unit.tsemI = unit.tsem; // inlining is not implemented for GFortran (IV-B)

  ir::LowerOptions lowOpts;
  lowOpts.model = modelFromCommand(cmd);
  const auto module = ir::lower(tu, lowOpts);
  if (options.runLint) {
    auto irDiags = lint::runIr(module);
    unit.lint.insert(unit.lint.end(), irDiags.begin(), irDiags.end());
    auto depDiags = lint::runDeps(module, {.unit = &tu});
    unit.lint.insert(unit.lint.end(), depDiags.begin(), depDiags.end());
    auto rangeDiags = lint::runRange(module);
    unit.lint.insert(unit.lint.end(), rangeDiags.begin(), rangeDiags.end());
  }
  unit.tir = ir::buildIrTree(module);
  return unit;
}

} // namespace

lang::ast::TranslationUnit linkForExecution(const Codebase &codebase) {
  lang::ast::TranslationUnit merged;
  merged.fileName = codebase.app + "/" + codebase.model;
  for (const auto &cmd : codebase.commands) {
    const auto fileId = codebase.sources.idOf(cmd.file);
    SV_CHECK(fileId.has_value(), "link: unknown file " + cmd.file);
    if (isFortranFile(cmd.file)) {
      auto tu = minif::parseFortran(
          minif::lexFortran(codebase.sources.file(*fileId).text, *fileId), cmd.file,
          codebase.sources);
      for (auto &f : tu.functions) merged.functions.push_back(std::move(f));
      for (auto &g : tu.globals) merged.globals.push_back(std::move(g));
      for (auto &s : tu.structs) merged.structs.push_back(std::move(s));
      if (!tu.programName.empty()) merged.programName = tu.programName;
    } else {
      minic::PreprocessOptions ppOpts;
      ppOpts.defines = definesFromCommand(cmd);
      const auto pp = minic::preprocess(codebase.sources, *fileId, ppOpts);
      const auto toks = minic::lex(pp.text, *fileId, &pp.lineOrigins);
      auto tu = minic::parseTranslationUnit(toks, cmd.file, codebase.sources);
      minic::analyse(tu);
      for (auto &f : tu.functions) {
        // Only definitions matter to the VM; headers spliced into several
        // TUs would otherwise duplicate them — keep the first definition.
        if (!f.body) continue;
        const bool dup = std::any_of(merged.functions.begin(), merged.functions.end(),
                                     [&](const auto &existing) { return existing.name == f.name; });
        if (!dup) merged.functions.push_back(std::move(f));
      }
      for (auto &g : tu.globals) {
        const bool dup = std::any_of(merged.globals.begin(), merged.globals.end(),
                                     [&](const auto &e) { return e.var.name == g.var.name; });
        if (!dup) merged.globals.push_back(std::move(g));
      }
      for (auto &s : tu.structs) merged.structs.push_back(std::move(s));
    }
  }
  return merged;
}

std::vector<ParsedUnit> parseUnits(const Codebase &codebase) {
  std::vector<ParsedUnit> out;
  for (const auto &cmd : codebase.commands) {
    const auto fileId = codebase.sources.idOf(cmd.file);
    SV_CHECK(fileId.has_value(), "parseUnits: unknown file " + cmd.file);
    ParsedUnit u;
    u.file = cmd.file;
    u.model = modelFromCommand(cmd);
    if (isFortranFile(cmd.file)) {
      u.fortran = true;
      u.tu = minif::parseFortran(
          minif::lexFortran(codebase.sources.file(*fileId).text, *fileId), cmd.file,
          codebase.sources);
    } else {
      minic::PreprocessOptions ppOpts;
      ppOpts.defines = definesFromCommand(cmd);
      const auto pp = minic::preprocess(codebase.sources, *fileId, ppOpts);
      const auto toks = minic::lex(pp.text, *fileId, &pp.lineOrigins);
      u.tu = minic::parseTranslationUnit(toks, cmd.file, codebase.sources);
      u.tu.includes = pp.includes;
      minic::analyse(u.tu);
    }
    out.push_back(std::move(u));
  }
  return out;
}

std::vector<LoweredUnit> lowerUnits(const Codebase &codebase) {
  std::vector<LoweredUnit> out;
  for (auto &parsed : parseUnits(codebase)) {
    LoweredUnit u;
    u.file = parsed.file;
    u.model = parsed.model;
    ir::LowerOptions lowOpts;
    lowOpts.model = parsed.model;
    u.module = ir::lower(parsed.tu, lowOpts);
    out.push_back(std::move(u));
  }
  return out;
}

IndexResult index(const Codebase &codebase, const IndexOptions &options) {
  IndexResult result;
  auto &out = result.db;
  out.app = codebase.app;
  out.model = codebase.model;
  out.fortran = !codebase.commands.empty() && isFortranFile(codebase.commands[0].file);
  out.modelKind =
      codebase.commands.empty() ? ir::Model::Serial : modelFromCommand(codebase.commands[0]);
  for (const auto &f : codebase.sources.files()) out.fileNames.push_back(f.name);

  for (const auto &cmd : codebase.commands) {
    out.units.push_back(isFortranFile(cmd.file) ? indexFortranUnit(codebase, cmd, options)
                                                : indexCxxUnit(codebase, cmd, options));
    out.units.back().computeSignatures();
  }

  if (options.runCoverage) {
    const auto merged = linkForExecution(codebase);
    auto vmOpts = options.vmOptions;
    vmOpts.fortran = out.fortran;
    auto runResult = vm::run(merged, vmOpts);
    out.coverage = runResult.coverage;
    out.hasCoverage = true;
    result.coverageRun = std::move(runResult);
  }
  return result;
}

// ------------------------------------------------------------ serialise --

namespace {

msgpack::Value treeToMsg(const tree::Tree &t) { return t.toMsgpack(); }

msgpack::Value diagToMsg(const lint::Diagnostic &d) {
  msgpack::Map m;
  m.emplace("check", static_cast<i64>(d.check));
  m.emplace("severity", static_cast<i64>(d.severity));
  m.emplace("file", static_cast<i64>(d.loc.file));
  m.emplace("line", static_cast<i64>(d.loc.line));
  m.emplace("col", static_cast<i64>(d.loc.col));
  m.emplace("symbol", d.symbol);
  m.emplace("directive", d.directive);
  m.emplace("message", d.message);
  return msgpack::Value(std::move(m));
}

lint::Diagnostic diagFromMsg(const msgpack::Value &v) {
  lint::Diagnostic d;
  d.check = static_cast<lint::Check>(v.at("check").asInt());
  d.severity = static_cast<lint::Severity>(v.at("severity").asInt());
  d.loc.file = static_cast<i32>(v.at("file").asInt());
  d.loc.line = static_cast<i32>(v.at("line").asInt());
  d.loc.col = static_cast<i32>(v.at("col").asInt());
  d.symbol = v.at("symbol").asString();
  d.directive = v.at("directive").asString();
  d.message = v.at("message").asString();
  return d;
}

msgpack::Value unitToMsg(const UnitEntry &u) {
  msgpack::Map m;
  m.emplace("file", u.file);
  m.emplace("role", u.role);
  m.emplace("fortran", u.fortran);
  msgpack::Array deps;
  for (const auto &d : u.deps) deps.emplace_back(d);
  m.emplace("deps", std::move(deps));
  m.emplace("normText", u.normText);
  m.emplace("normTextPp", u.normTextPp);
  m.emplace("sloc", u.sloc);
  m.emplace("lloc", u.lloc);
  m.emplace("slocPp", u.slocPp);
  m.emplace("llocPp", u.llocPp);
  m.emplace("tsrc", treeToMsg(u.tsrc));
  m.emplace("tsrcPp", treeToMsg(u.tsrcPp));
  m.emplace("tsem", treeToMsg(u.tsem));
  m.emplace("tsemI", treeToMsg(u.tsemI));
  m.emplace("tir", treeToMsg(u.tir));
  msgpack::Array sigs;
  for (const auto *s : {&u.sigTsrc, &u.sigTsrcPp, &u.sigTsem, &u.sigTsemI, &u.sigTir})
    sigs.push_back(s->toMsgpack());
  m.emplace("sigs", std::move(sigs));
  msgpack::Array lintArr;
  for (const auto &d : u.lint) lintArr.push_back(diagToMsg(d));
  m.emplace("lint", std::move(lintArr));
  return msgpack::Value(std::move(m));
}

UnitEntry unitFromMsg(const msgpack::Value &v) {
  UnitEntry u;
  u.file = v.at("file").asString();
  u.role = v.at("role").asString();
  u.fortran = v.at("fortran").asBool();
  for (const auto &d : v.at("deps").asArray()) u.deps.push_back(d.asString());
  u.normText = v.at("normText").asString();
  u.normTextPp = v.at("normTextPp").asString();
  u.sloc = static_cast<usize>(v.at("sloc").asInt());
  u.lloc = static_cast<usize>(v.at("lloc").asInt());
  u.slocPp = static_cast<usize>(v.at("slocPp").asInt());
  u.llocPp = static_cast<usize>(v.at("llocPp").asInt());
  u.tsrc = tree::Tree::fromMsgpack(v.at("tsrc"));
  u.tsrcPp = tree::Tree::fromMsgpack(v.at("tsrcPp"));
  u.tsem = tree::Tree::fromMsgpack(v.at("tsem"));
  u.tsemI = tree::Tree::fromMsgpack(v.at("tsemI"));
  u.tir = tree::Tree::fromMsgpack(v.at("tir"));
  const auto &m = v.asMap();
  if (const auto it = m.find("sigs"); it != m.end()) {
    const auto &sigs = it->second.asArray();
    tree::BoundSignature *fields[] = {&u.sigTsrc, &u.sigTsrcPp, &u.sigTsem, &u.sigTsemI,
                                      &u.sigTir};
    for (usize i = 0; i < 5 && i < sigs.size(); ++i)
      *fields[i] = tree::BoundSignature::fromMsgpack(sigs[i]);
  } else {
    // DB written before signatures existed: self-heal from the trees.
    u.computeSignatures();
  }
  for (const auto &d : v.at("lint").asArray()) u.lint.push_back(diagFromMsg(d));
  return u;
}

} // namespace

void UnitEntry::computeSignatures() {
  sigTsrc = tree::boundSignature(tsrc);
  sigTsrcPp = tree::boundSignature(tsrcPp);
  sigTsem = tree::boundSignature(tsem);
  sigTsemI = tree::boundSignature(tsemI);
  sigTir = tree::boundSignature(tir);
}

std::vector<u8> CodebaseDb::serialise() const {
  msgpack::Map m;
  m.emplace("app", app);
  m.emplace("model", model);
  m.emplace("modelKind", static_cast<i64>(modelKind));
  m.emplace("fortran", fortran);
  msgpack::Array names;
  for (const auto &n : fileNames) names.emplace_back(n);
  m.emplace("fileNames", std::move(names));
  msgpack::Array us;
  for (const auto &u : units) us.push_back(unitToMsg(u));
  m.emplace("units", std::move(us));
  m.emplace("hasCoverage", hasCoverage);
  msgpack::Array cov;
  for (const auto &[key, count] : coverage.lineHits) {
    msgpack::Array row;
    row.emplace_back(static_cast<i64>(key.first));
    row.emplace_back(static_cast<i64>(key.second));
    row.emplace_back(static_cast<i64>(count));
    cov.emplace_back(std::move(row));
  }
  m.emplace("coverage", std::move(cov));
  return svz::compress(msgpack::encode(msgpack::Value(std::move(m))));
}

CodebaseDb CodebaseDb::deserialise(const std::vector<u8> &bytes) {
  const auto v = msgpack::decode(svz::decompress(bytes));
  CodebaseDb db;
  db.app = v.at("app").asString();
  db.model = v.at("model").asString();
  db.modelKind = static_cast<ir::Model>(v.at("modelKind").asInt());
  db.fortran = v.at("fortran").asBool();
  for (const auto &n : v.at("fileNames").asArray()) db.fileNames.push_back(n.asString());
  for (const auto &u : v.at("units").asArray()) db.units.push_back(unitFromMsg(u));
  db.hasCoverage = v.at("hasCoverage").asBool();
  for (const auto &row : v.at("coverage").asArray()) {
    const auto &r = row.asArray();
    db.coverage.lineHits[{static_cast<i32>(r[0].asInt()), static_cast<i32>(r[1].asInt())}] =
        static_cast<u64>(r[2].asInt());
  }
  return db;
}

} // namespace sv::db
