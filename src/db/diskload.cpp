#include "db/diskload.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace sv::db {

namespace {
namespace fs = std::filesystem;

std::string readFile(const fs::path &p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw ParseError("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
} // namespace

Codebase loadFromDisk(const std::string &root, const DiskLoadOptions &options) {
  const fs::path rootPath(root);
  const fs::path dbPath = rootPath / options.compileDbName;
  if (!fs::exists(dbPath))
    throw ParseError("no " + options.compileDbName + " under " + root);

  Codebase cb;
  cb.app = options.app;
  cb.model = options.model;
  cb.commands = parseCompileCommands(readFile(dbPath));

  // Register every source file, path-relative to the root so include
  // resolution and the include/-prefix system classification behave
  // exactly like the embedded corpus.
  for (const auto &entry : fs::recursive_directory_iterator(rootPath)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    bool wanted = false;
    for (const auto &e : options.extensions)
      if (ext == e) wanted = true;
    if (!wanted) continue;
    const auto rel = fs::relative(entry.path(), rootPath).generic_string();
    cb.addFile(rel, readFile(entry.path()));
  }

  // Compile commands may reference files by absolute path; normalise to
  // root-relative so they resolve in the virtual file system.
  for (auto &cmd : cb.commands) {
    const fs::path f(cmd.file);
    if (f.is_absolute()) {
      std::error_code ec;
      const auto rel = fs::relative(f, rootPath, ec);
      if (!ec) cmd.file = rel.generic_string();
    }
    if (!cb.sources.idOf(cmd.file))
      throw ParseError("compile command references missing file: " + cmd.file);
  }
  return cb;
}

} // namespace sv::db
