#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace sv::str {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  usize start = 0;
  for (usize i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitLines(std::string_view s) {
  std::vector<std::string> out;
  usize start = 0;
  for (usize i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      usize end = i;
      if (end > start && s[end - 1] == '\r') --end; // tolerate CRLF
      out.emplace_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) out.emplace_back(s.substr(start));
  return out;
}

std::string_view trim(std::string_view s) {
  usize b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string> &parts, std::string_view sep) {
  std::string out;
  for (usize i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replaceAll(std::string_view s, std::string_view from, std::string_view to) {
  SV_CHECK(!from.empty(), "replaceAll: empty needle");
  std::string out;
  usize pos = 0;
  while (pos < s.size()) {
    const usize hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string collapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool inRun = false;
  for (const char c : s) {
    if (c == ' ' || c == '\t') {
      if (!inRun) out.push_back(' ');
      inRun = true;
    } else {
      out.push_back(c);
      inRun = false;
    }
  }
  return out;
}

bool isBlank(std::string_view s) {
  for (const char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  return true;
}

std::string padLeft(std::string_view s, usize width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string padRight(std::string_view s, usize width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string fmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

} // namespace sv::str
