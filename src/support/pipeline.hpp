// Streaming task-graph runtime: the alternative to full-width phase
// barriers. A corpus-wide operation used to run as `parallelFor` per phase
// — parse *everything*, barrier, lower *everything*, barrier, ... — so the
// slowest translation unit in each phase stalled all 46 ports. Here the
// unit-level flow is expressed as composable pattern nodes instead:
//
//   Pipeline<Ts...>  typed stage chain; finishing stage k of item i
//                    immediately spawns stage k+1 of item i (LIFO on the
//                    owner's deque, so one item runs depth-first and stays
//                    cache-hot while other items stream behind it)
//   TaskPool         flat work-stealing for-each over n indices
//   mapReduce        TaskPool map into slots + deterministic left fold
//
// All nodes run on a StreamRuntime: the caller drains as worker 0, helper
// workers are borrowed from sharedPool() (cancellable — a saturated pool
// just means the caller does all the work itself; nothing joins on a
// specific thread), each worker owns a WorkStealingDeque and steals from
// its peers when dry, and spawns from outside the worker set land on an
// MPMC injection TaskQueue (taskqueue.hpp).
//
// Determinism contract: results land in slots indexed by item, never in
// completion order, so Barrier and Streaming modes produce byte-identical
// serialised output. Every node self-reports throughput, occupancy, queue
// depth and steal counts into a NodeStats tree (`svale --pipeline-stats`),
// following the self-instrumented pattern-node design of the Extra-P
// compositional performance analyzer.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "support/common.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"

namespace sv {

/// How a pattern node executes: `Barrier` is the classic full-width
/// phase-barrier schedule (parallelFor per stage, every intermediate
/// materialised across all items — kept as the measurable baseline and the
/// parity reference), `Streaming` is the work-stealing task graph.
enum class ExecMode : u8 { Barrier, Streaming };

[[nodiscard]] const char *execModeName(ExecMode mode);
/// "barrier" / "streaming" → mode; anything else → nullopt.
[[nodiscard]] std::optional<ExecMode> execModeFromName(std::string_view name);

/// Process-wide default mode (Streaming unless overridden). `svale
/// --pipeline barrier` flips it so every driver can be A/B'd from the CLI.
[[nodiscard]] ExecMode defaultExecMode();
void setDefaultExecMode(ExecMode mode);

/// Self-reported measurements of one pattern node (plus one child entry per
/// pipeline stage). Rendered by `svale --pipeline-stats` and serialised
/// into BENCH_pipeline.json.
struct NodeStats {
  std::string name;
  std::string mode;        ///< "barrier" or "streaming"
  usize workers = 0;       ///< workers the node ran with (incl. the caller)
  usize items = 0;         ///< tasks executed
  usize steals = 0;        ///< tasks taken from another worker's deque
  usize maxQueueDepth = 0; ///< high-water mark across deques + injection
  double busyMs = 0;       ///< summed task execution time across workers
  double wallMs = 0;       ///< wall time of the node's run()
  std::vector<NodeStats> children;

  /// Items completed per wall-clock second.
  [[nodiscard]] double throughput() const;
  /// busy / (wall * workers): 1.0 = every worker busy the whole run.
  [[nodiscard]] double occupancy() const;
  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] std::string renderText(usize indent = 0) const;
};

/// Process-wide stats registry. Nodes append their NodeStats after each
/// run (unless PipeOptions.registerStats is off); `svale --pipeline-stats`
/// drains and renders the tree after the command body finishes.
void registerPipelineStats(NodeStats stats);
[[nodiscard]] std::vector<NodeStats> drainPipelineStats();

/// Test hook (fuzz `pipeline` oracle): called as hook(stage, item) before
/// every stage execution of every node, letting the oracle inject random
/// sleeps that perturb the completion order. Pass an empty function to
/// clear. Never used outside tests/fuzzing.
void setPipelineStageJitter(std::function<void(usize, usize)> hook);
/// Invoke the installed jitter hook, if any (internal, used by node
/// templates; out-of-line so the hot path stays a single call).
void applyStageJitter(usize stage, usize item);

struct PipeOptions {
  ExecMode mode = defaultExecMode();
  /// 0 = resolve like parallelFor (configureThreads / SV_THREADS / cores).
  usize threads = 0;
  /// Append this run's NodeStats to the process-wide registry.
  bool registerStats = true;
};

/// The execution substrate of the streaming nodes. Usage: construct, spawn
/// seed tasks, call run() once; run() returns when every task — including
/// tasks spawned transitively from inside tasks — has finished, and
/// rethrows the first task exception (the rest are counted, reported via
/// suppressedErrorCount()). A task running on a worker spawns onto its own
/// deque (LIFO continuation); any other thread spawns onto the injection
/// queue. Helper workers are borrowed from sharedPool() and give
/// themselves back the moment the graph drains.
class StreamRuntime {
public:
  explicit StreamRuntime(std::string name, usize threads = 0);
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime &) = delete;
  StreamRuntime &operator=(const StreamRuntime &) = delete;

  /// Enqueue a task; safe from any thread, including from inside a task.
  void spawn(std::function<void()> task);

  /// Drain the graph with the calling thread participating as worker 0.
  void run();

  [[nodiscard]] usize workerCount() const;
  /// Task exceptions seen during the last run() (1 rethrown, rest counted).
  [[nodiscard]] usize errorCount() const;
  /// Aggregated measurements; valid after run().
  [[nodiscard]] NodeStats stats() const;

  struct Impl; // opaque; public so the worker loop in pipeline.cpp can see it

private:
  std::shared_ptr<Impl> impl_;
};

/// Flat work-stealing for-each: run body(i) for i in [0, n) under `mode`,
/// returning (and optionally registering) the node's measurements.
class TaskPool {
public:
  explicit TaskPool(std::string name) : name_(std::move(name)) {}

  NodeStats run(usize n, const std::function<void(usize)> &body, const PipeOptions &options = {});

  [[nodiscard]] const NodeStats &lastStats() const { return lastStats_; }

private:
  std::string name_;
  NodeStats lastStats_;
};

/// Typed stage chain over item types Ts... (N+1 types = N stages). Stage K
/// maps Ts[K]&& → Ts[K+1] for one item. In Streaming mode, finishing stage
/// K of item i spawns stage K+1 of item i onto the worker's own deque;
/// in Barrier mode every stage runs as a full-width parallelFor with all
/// intermediates materialised (the baseline being replaced). Outputs land
/// in slots indexed by item, so both modes are byte-identical.
/// Intermediate and output types must be default-constructible and
/// movable (they sit in pre-sized slot vectors).
template <typename... Ts> class Pipeline {
  static_assert(sizeof...(Ts) >= 2, "Pipeline needs an input and an output type");

public:
  static constexpr usize kStageCount = sizeof...(Ts) - 1;
  template <usize K> using StageIn = std::tuple_element_t<K, std::tuple<Ts...>>;
  template <usize K> using StageOut = std::tuple_element_t<K + 1, std::tuple<Ts...>>;
  using In = StageIn<0>;
  using Out = std::tuple_element_t<kStageCount, std::tuple<Ts...>>;
  template <usize K> using StageFn = std::function<StageOut<K>(StageIn<K> &&, usize)>;

  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  /// Install stage K. Every stage must be set before run().
  template <usize K> Pipeline &stage(std::string stageName, StageFn<K> fn) {
    static_assert(K < kStageCount);
    meta_[K].name = std::move(stageName);
    std::get<K>(fns_) = std::move(fn);
    return *this;
  }

  [[nodiscard]] std::vector<Out> run(std::vector<In> items, const PipeOptions &options = {}) {
    for (auto &m : meta_) {
      m.busyNs.store(0, std::memory_order_relaxed);
      m.items.store(0, std::memory_order_relaxed);
    }
    const usize n = items.size();
    const auto wallStart = std::chrono::steady_clock::now();
    std::vector<Out> out;
    NodeStats node;
    if (options.mode == ExecMode::Barrier) {
      out = barrierFrom<0>(std::move(items), options);
      node.workers = effectiveThreadCount(options.threads);
      node.items = n * kStageCount;
      for (const auto &m : meta_)
        node.busyMs += static_cast<double>(m.busyNs.load(std::memory_order_relaxed)) / 1e6;
    } else {
      out.resize(n);
      StreamRuntime rt(name_, options.threads);
      for (usize i = 0; i < n; ++i) {
        rt.spawn([this, &rt, &out, i, v = std::make_shared<In>(std::move(items[i]))]() mutable {
          execStage<0>(rt, std::move(*v), i, out);
        });
      }
      items.clear();
      rt.run();
      node = rt.stats();
    }
    node.name = name_;
    node.mode = execModeName(options.mode);
    node.wallMs = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                           wallStart)
                      .count();
    for (const auto &m : meta_) {
      NodeStats child;
      child.name = m.name;
      child.mode = node.mode;
      child.workers = node.workers;
      child.items = m.items.load(std::memory_order_relaxed);
      child.busyMs = static_cast<double>(m.busyNs.load(std::memory_order_relaxed)) / 1e6;
      child.wallMs = node.wallMs;
      node.children.push_back(std::move(child));
    }
    lastStats_ = node;
    if (options.registerStats) registerPipelineStats(std::move(node));
    return out;
  }

  [[nodiscard]] const NodeStats &lastStats() const { return lastStats_; }

private:
  struct StageMeta {
    std::string name;
    std::atomic<u64> busyNs{0};
    std::atomic<usize> items{0};
  };

  template <usize... Is>
  static auto fnTupleHelper(std::index_sequence<Is...>)
      -> std::tuple<std::function<std::tuple_element_t<Is + 1, std::tuple<Ts...>>(
          std::tuple_element_t<Is, std::tuple<Ts...>> &&, usize)>...>;
  using FnTuple = decltype(fnTupleHelper(std::make_index_sequence<kStageCount>{}));

  template <usize K> StageOut<K> timedStage(StageIn<K> &&v, usize i) {
    applyStageJitter(K, i);
    const auto t0 = std::chrono::steady_clock::now();
    StageOut<K> next = std::get<K>(fns_)(std::move(v), i);
    meta_[K].busyNs.fetch_add(
        static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count()),
        std::memory_order_relaxed);
    meta_[K].items.fetch_add(1, std::memory_order_relaxed);
    return next;
  }

  /// Barrier schedule: full-width parallelFor per stage, previous stage's
  /// storage only released once the whole next stage is materialised —
  /// exactly the peak-footprint behaviour the streaming mode eliminates.
  template <usize K, typename Cur>
  auto barrierFrom(std::vector<Cur> cur, const PipeOptions &options) {
    if constexpr (K == kStageCount) {
      return cur;
    } else {
      std::vector<StageOut<K>> next(cur.size());
      parallelFor(
          cur.size(), [&](usize i) { next[i] = timedStage<K>(std::move(cur[i]), i); },
          options.threads);
      { auto dead = std::move(cur); }
      return barrierFrom<K + 1>(std::move(next), options);
    }
  }

  template <usize K>
  void execStage(StreamRuntime &rt, StageIn<K> &&v, usize i, std::vector<Out> &out) {
    StageOut<K> next = timedStage<K>(std::move(v), i);
    if constexpr (K + 1 == kStageCount) {
      out[i] = std::move(next);
    } else {
      rt.spawn([this, &rt, &out, i, v2 = std::make_shared<StageOut<K>>(std::move(next))]() mutable {
        execStage<K + 1>(rt, std::move(*v2), i, out);
      });
    }
  }

  std::string name_;
  FnTuple fns_;
  std::array<StageMeta, kStageCount> meta_;
  NodeStats lastStats_;
};

/// TaskPool map into per-index slots followed by a deterministic left fold
/// in index order — completion order never reaches the reduction.
template <typename R>
[[nodiscard]] R mapReduce(const std::string &name, usize n, R init,
                          const std::function<R(usize)> &map,
                          const std::function<R(R &&, R &&)> &reduce,
                          const PipeOptions &options = {}) {
  std::vector<R> slots(n);
  TaskPool pool(name);
  pool.run(
      n, [&](usize i) { slots[i] = map(i); }, options);
  R acc = std::move(init);
  for (auto &slot : slots) acc = reduce(std::move(acc), std::move(slot));
  return acc;
}

} // namespace sv
