// Concurrency primitives backing the streaming task-graph runtime
// (pipeline.hpp): an MPMC TaskQueue used as the injection channel into a
// StreamRuntime, and a per-worker WorkStealingDeque. Both keep their
// critical sections to a handful of pointer moves — the work items they
// carry (parse a unit, run one TED pair) are orders of magnitude heavier
// than the lock, so a short mutex beats a lock-free design that would be
// much harder to prove correct under TSan.
//
// Both structures count their own traffic (pushes, pops, steals, high-water
// depth); the runtime folds those counters into the NodeStats tree that
// `svale --pipeline-stats` renders.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/common.hpp"

namespace sv {

/// Multi-producer multi-consumer FIFO queue with a close() handshake.
/// push() after close() is rejected; pop() blocks until an item arrives or
/// the queue is closed and drained. tryPop() never blocks.
template <typename T> class TaskQueue {
public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue &) = delete;
  TaskQueue &operator=(const TaskQueue &) = delete;

  /// Enqueue an item; returns false (dropping the item) iff closed.
  bool push(T item) {
    {
      const std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      ++pushed_;
      if (items_.size() > maxDepth_) maxDepth_ = items_.size();
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeue without blocking; empty optional when nothing is available.
  std::optional<T> tryPop() {
    const std::lock_guard lock(mutex_);
    return popLocked();
  }

  /// Dequeue, blocking until an item arrives. Returns an empty optional
  /// only once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return popLocked();
  }

  /// Reject future pushes and wake every blocked pop().
  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] usize size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Lifetime counters (totals, not current state).
  [[nodiscard]] usize pushedCount() const {
    const std::lock_guard lock(mutex_);
    return pushed_;
  }
  [[nodiscard]] usize poppedCount() const {
    const std::lock_guard lock(mutex_);
    return popped_;
  }
  [[nodiscard]] usize maxDepth() const {
    const std::lock_guard lock(mutex_);
    return maxDepth_;
  }

private:
  std::optional<T> popLocked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out{std::move(items_.front())};
    items_.pop_front();
    ++popped_;
    return out;
  }

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  usize pushed_ = 0;
  usize popped_ = 0;
  usize maxDepth_ = 0;
  bool closed_ = false;
};

/// Per-worker deque for the streaming runtime. The owning worker pushes and
/// pops at the bottom (LIFO — freshly spawned continuation tasks run next,
/// keeping one item's pipeline stages cache-hot and the in-flight set
/// small); idle workers steal from the top (FIFO — they take the oldest,
/// coarsest work). Any thread may call any method; ownership is a usage
/// convention, not a safety requirement.
template <typename T> class WorkStealingDeque {
public:
  WorkStealingDeque() = default;
  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  void pushBottom(T item) {
    const std::lock_guard lock(mutex_);
    items_.push_back(std::move(item));
    ++pushed_;
    if (items_.size() > maxDepth_) maxDepth_ = items_.size();
  }

  /// Owner's pop: newest item (LIFO).
  std::optional<T> popBottom() {
    const std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out{std::move(items_.back())};
    items_.pop_back();
    ++popped_;
    return out;
  }

  /// Thief's pop: oldest item (FIFO).
  std::optional<T> stealTop() {
    const std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out{std::move(items_.front())};
    items_.pop_front();
    ++stolen_;
    return out;
  }

  [[nodiscard]] usize size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Lifetime counters. pushedCount == poppedCount + stolenCount once the
  /// deque is drained — the invariant the stress test pins down.
  [[nodiscard]] usize pushedCount() const {
    const std::lock_guard lock(mutex_);
    return pushed_;
  }
  [[nodiscard]] usize poppedCount() const {
    const std::lock_guard lock(mutex_);
    return popped_;
  }
  [[nodiscard]] usize stolenCount() const {
    const std::lock_guard lock(mutex_);
    return stolen_;
  }
  [[nodiscard]] usize maxDepth() const {
    const std::lock_guard lock(mutex_);
    return maxDepth_;
  }

private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
  usize pushed_ = 0;
  usize popped_ = 0;
  usize stolen_ = 0;
  usize maxDepth_ = 0;
};

} // namespace sv
