// A small, strict JSON value model with parser and writer. SilverVale needs
// JSON for two workflow inputs (Fig 2): the Compilation Database
// (compile_commands.json) and coverage exports. Written from scratch; no
// external dependency.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "support/common.hpp"

namespace sv::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps keys ordered, which makes writer output deterministic —
/// important for golden tests and reproducible DB files.
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number (double), string, array or object.
class Value {
public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(i64 i) : data_(static_cast<double>(i)) {}
  Value(usize i) : data_(static_cast<double>(i)) {}
  Value(const char *s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool isBool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool isNumber() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool isString() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool isArray() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool isObject() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors; throw ParseError when the value has a different type,
  /// since a type mismatch always means malformed input in our usage.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] i64 asInt() const;
  [[nodiscard]] const std::string &asString() const;
  [[nodiscard]] const Array &asArray() const;
  [[nodiscard]] const Object &asObject() const;

  /// Object field lookup; throws when missing.
  [[nodiscard]] const Value &at(const std::string &key) const;
  /// Object field lookup with a default when the field is missing.
  [[nodiscard]] const Value *find(const std::string &key) const;

  [[nodiscard]] bool operator==(const Value &other) const = default;

private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document; trailing garbage is an error.
[[nodiscard]] Value parse(std::string_view text);

/// Serialise; `indent` > 0 pretty-prints with that many spaces per level.
[[nodiscard]] std::string write(const Value &v, int indent = 0);

} // namespace sv::json
