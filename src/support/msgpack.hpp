// MessagePack-compatible binary encoder/decoder. The paper's Codebase DB
// stores semantic-bearing trees and metadata "in a Zstd compressed
// MessagePack format" (Section IV); this is our from-scratch equivalent of
// the MessagePack half (see compress.hpp for the compression half).
//
// The subset implemented covers every type the DB uses: nil, bool, int
// (all widths, positive/negative fixint), float64, str (fixstr/8/16/32),
// bin, array (fix/16/32) and map (fix/16/32). Encoding follows the
// MessagePack spec so files are readable by standard tooling.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "support/common.hpp"

namespace sv::msgpack {

class Value;
using Array = std::vector<Value>;
using Map = std::map<std::string, Value>;
using Bin = std::vector<u8>;

/// A MessagePack value. Integers are kept as i64; floats as double.
class Value {
public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(i64 i) : data_(i) {}
  Value(int i) : data_(static_cast<i64>(i)) {}
  Value(usize i) : data_(static_cast<i64>(i)) {}
  Value(u32 i) : data_(static_cast<i64>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char *s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Map m) : data_(std::move(m)) {}
  Value(Bin b) : data_(std::move(b)) {}

  [[nodiscard]] bool isNil() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool isBool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool isInt() const { return std::holds_alternative<i64>(data_); }
  [[nodiscard]] bool isDouble() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool isString() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool isArray() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool isMap() const { return std::holds_alternative<Map>(data_); }
  [[nodiscard]] bool isBin() const { return std::holds_alternative<Bin>(data_); }

  [[nodiscard]] bool asBool() const;
  [[nodiscard]] i64 asInt() const;
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] const std::string &asString() const;
  [[nodiscard]] const Array &asArray() const;
  [[nodiscard]] const Map &asMap() const;
  [[nodiscard]] const Bin &asBin() const;

  /// Map field lookup; throws ParseError when missing.
  [[nodiscard]] const Value &at(const std::string &key) const;

  [[nodiscard]] bool operator==(const Value &other) const = default;

private:
  std::variant<std::nullptr_t, bool, i64, double, std::string, Array, Map, Bin> data_;
};

/// Serialise a value to MessagePack bytes.
[[nodiscard]] std::vector<u8> encode(const Value &v);

/// Parse MessagePack bytes; trailing bytes are an error.
[[nodiscard]] Value decode(const std::vector<u8> &bytes);

} // namespace sv::msgpack
