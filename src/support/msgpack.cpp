#include "support/msgpack.hpp"

#include <cstring>

namespace sv::msgpack {

namespace {

void putBytes(std::vector<u8> &out, const void *data, usize n) {
  const auto *p = static_cast<const u8 *>(data);
  out.insert(out.end(), p, p + n);
}

// MessagePack is big-endian on the wire.
template <typename T> void putBE(std::vector<u8> &out, T value) {
  u8 buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  for (usize i = 0; i < sizeof(T); ++i) out.push_back(buf[sizeof(T) - 1 - i]);
}

void encodeValue(std::vector<u8> &out, const Value &v);

void encodeInt(std::vector<u8> &out, i64 i) {
  if (i >= 0) {
    if (i < 0x80) out.push_back(static_cast<u8>(i)); // positive fixint
    else if (i <= 0xFF) {
      out.push_back(0xcc);
      out.push_back(static_cast<u8>(i));
    } else if (i <= 0xFFFF) {
      out.push_back(0xcd);
      putBE<u16>(out, static_cast<u16>(i));
    } else if (i <= 0xFFFFFFFFLL) {
      out.push_back(0xce);
      putBE<u32>(out, static_cast<u32>(i));
    } else {
      out.push_back(0xcf);
      putBE<u64>(out, static_cast<u64>(i));
    }
  } else {
    if (i >= -32) out.push_back(static_cast<u8>(i)); // negative fixint
    else if (i >= -128) {
      out.push_back(0xd0);
      out.push_back(static_cast<u8>(static_cast<i8>(i)));
    } else if (i >= -32768) {
      out.push_back(0xd1);
      putBE<u16>(out, static_cast<u16>(static_cast<i16>(i)));
    } else if (i >= -2147483648LL) {
      out.push_back(0xd2);
      putBE<u32>(out, static_cast<u32>(static_cast<i32>(i)));
    } else {
      out.push_back(0xd3);
      putBE<u64>(out, static_cast<u64>(i));
    }
  }
}

void encodeString(std::vector<u8> &out, const std::string &s) {
  const usize n = s.size();
  if (n < 32) out.push_back(static_cast<u8>(0xa0 | n)); // fixstr
  else if (n <= 0xFF) {
    out.push_back(0xd9);
    out.push_back(static_cast<u8>(n));
  } else if (n <= 0xFFFF) {
    out.push_back(0xda);
    putBE<u16>(out, static_cast<u16>(n));
  } else {
    out.push_back(0xdb);
    putBE<u32>(out, static_cast<u32>(n));
  }
  putBytes(out, s.data(), n);
}

void encodeValue(std::vector<u8> &out, const Value &v) {
  if (v.isNil()) {
    out.push_back(0xc0);
  } else if (v.isBool()) {
    out.push_back(v.asBool() ? 0xc3 : 0xc2);
  } else if (v.isInt()) {
    encodeInt(out, v.asInt());
  } else if (v.isDouble()) {
    out.push_back(0xcb);
    u64 bits;
    const double d = v.asDouble();
    std::memcpy(&bits, &d, sizeof(double));
    putBE<u64>(out, bits);
  } else if (v.isString()) {
    encodeString(out, v.asString());
  } else if (v.isBin()) {
    const auto &b = v.asBin();
    const usize n = b.size();
    if (n <= 0xFF) {
      out.push_back(0xc4);
      out.push_back(static_cast<u8>(n));
    } else if (n <= 0xFFFF) {
      out.push_back(0xc5);
      putBE<u16>(out, static_cast<u16>(n));
    } else {
      out.push_back(0xc6);
      putBE<u32>(out, static_cast<u32>(n));
    }
    putBytes(out, b.data(), n);
  } else if (v.isArray()) {
    const auto &a = v.asArray();
    const usize n = a.size();
    if (n < 16) out.push_back(static_cast<u8>(0x90 | n));
    else if (n <= 0xFFFF) {
      out.push_back(0xdc);
      putBE<u16>(out, static_cast<u16>(n));
    } else {
      out.push_back(0xdd);
      putBE<u32>(out, static_cast<u32>(n));
    }
    for (const auto &e : a) encodeValue(out, e);
  } else { // map
    const auto &m = v.asMap();
    const usize n = m.size();
    if (n < 16) out.push_back(static_cast<u8>(0x80 | n));
    else if (n <= 0xFFFF) {
      out.push_back(0xde);
      putBE<u16>(out, static_cast<u16>(n));
    } else {
      out.push_back(0xdf);
      putBE<u32>(out, static_cast<u32>(n));
    }
    for (const auto &[k, val] : m) {
      encodeString(out, k);
      encodeValue(out, val);
    }
  }
}

class Decoder {
public:
  explicit Decoder(const std::vector<u8> &bytes) : bytes_(bytes) {}

  Value decodeDocument() {
    Value v = decodeValue();
    if (pos_ != bytes_.size()) throw ParseError("msgpack: trailing bytes");
    return v;
  }

private:
  const std::vector<u8> &bytes_;
  usize pos_ = 0;

  u8 next() {
    if (pos_ >= bytes_.size()) throw ParseError("msgpack: unexpected end of input");
    return bytes_[pos_++];
  }

  template <typename T> T getBE() {
    if (pos_ + sizeof(T) > bytes_.size()) throw ParseError("msgpack: unexpected end of input");
    u8 buf[sizeof(T)];
    for (usize i = 0; i < sizeof(T); ++i) buf[sizeof(T) - 1 - i] = bytes_[pos_ + i];
    pos_ += sizeof(T);
    T value;
    std::memcpy(&value, buf, sizeof(T));
    return value;
  }

  std::string getString(usize n) {
    if (pos_ + n > bytes_.size()) throw ParseError("msgpack: string overruns input");
    std::string s(reinterpret_cast<const char *>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bin getBin(usize n) {
    if (pos_ + n > bytes_.size()) throw ParseError("msgpack: bin overruns input");
    Bin b(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
          bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  Array getArray(usize n) {
    Array a;
    a.reserve(n);
    for (usize i = 0; i < n; ++i) a.push_back(decodeValue());
    return a;
  }

  Map getMap(usize n) {
    Map m;
    for (usize i = 0; i < n; ++i) {
      Value key = decodeValue();
      if (!key.isString()) throw ParseError("msgpack: non-string map key");
      m.emplace(key.asString(), decodeValue());
    }
    return m;
  }

  Value decodeValue() {
    const u8 tag = next();
    if (tag < 0x80) return Value(static_cast<i64>(tag));              // positive fixint
    if (tag >= 0xe0) return Value(static_cast<i64>(static_cast<i8>(tag))); // negative fixint
    if ((tag & 0xf0) == 0x80) return Value(getMap(tag & 0x0f));       // fixmap
    if ((tag & 0xf0) == 0x90) return Value(getArray(tag & 0x0f));     // fixarray
    if ((tag & 0xe0) == 0xa0) return Value(getString(tag & 0x1f));    // fixstr
    switch (tag) {
    case 0xc0: return Value(nullptr);
    case 0xc2: return Value(false);
    case 0xc3: return Value(true);
    case 0xc4: return Value(getBin(next()));
    case 0xc5: return Value(getBin(getBE<u16>()));
    case 0xc6: return Value(getBin(getBE<u32>()));
    case 0xca: {
      const u32 bits = getBE<u32>();
      float f;
      std::memcpy(&f, &bits, sizeof(float));
      return Value(static_cast<double>(f));
    }
    case 0xcb: {
      const u64 bits = getBE<u64>();
      double d;
      std::memcpy(&d, &bits, sizeof(double));
      return Value(d);
    }
    case 0xcc: return Value(static_cast<i64>(next()));
    case 0xcd: return Value(static_cast<i64>(getBE<u16>()));
    case 0xce: return Value(static_cast<i64>(getBE<u32>()));
    case 0xcf: return Value(static_cast<i64>(getBE<u64>()));
    case 0xd0: return Value(static_cast<i64>(static_cast<i8>(next())));
    case 0xd1: return Value(static_cast<i64>(static_cast<i16>(getBE<u16>())));
    case 0xd2: return Value(static_cast<i64>(static_cast<i32>(getBE<u32>())));
    case 0xd3: return Value(static_cast<i64>(getBE<u64>()));
    case 0xd9: return Value(getString(next()));
    case 0xda: return Value(getString(getBE<u16>()));
    case 0xdb: return Value(getString(getBE<u32>()));
    case 0xdc: return Value(getArray(getBE<u16>()));
    case 0xdd: return Value(getArray(getBE<u32>()));
    case 0xde: return Value(getMap(getBE<u16>()));
    case 0xdf: return Value(getMap(getBE<u32>()));
    default: throw ParseError("msgpack: unsupported tag " + std::to_string(tag));
    }
  }
};

} // namespace

bool Value::asBool() const {
  if (!isBool()) throw ParseError("msgpack: expected bool");
  return std::get<bool>(data_);
}
i64 Value::asInt() const {
  if (!isInt()) throw ParseError("msgpack: expected int");
  return std::get<i64>(data_);
}
double Value::asDouble() const {
  if (isInt()) return static_cast<double>(std::get<i64>(data_));
  if (!isDouble()) throw ParseError("msgpack: expected double");
  return std::get<double>(data_);
}
const std::string &Value::asString() const {
  if (!isString()) throw ParseError("msgpack: expected string");
  return std::get<std::string>(data_);
}
const Array &Value::asArray() const {
  if (!isArray()) throw ParseError("msgpack: expected array");
  return std::get<Array>(data_);
}
const Map &Value::asMap() const {
  if (!isMap()) throw ParseError("msgpack: expected map");
  return std::get<Map>(data_);
}
const Bin &Value::asBin() const {
  if (!isBin()) throw ParseError("msgpack: expected bin");
  return std::get<Bin>(data_);
}
const Value &Value::at(const std::string &key) const {
  const auto &m = asMap();
  const auto it = m.find(key);
  if (it == m.end()) throw ParseError("msgpack: missing field '" + key + "'");
  return it->second;
}

std::vector<u8> encode(const Value &v) {
  std::vector<u8> out;
  encodeValue(out, v);
  return out;
}

Value decode(const std::vector<u8> &bytes) { return Decoder(bytes).decodeDocument(); }

} // namespace sv::msgpack
