// String manipulation helpers used across the frontends and the text
// metrics. All functions are pure and allocate only when a new string is
// produced.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/common.hpp"

namespace sv::str {

/// Split `s` on the single character `sep`. Empty fields are preserved, so
/// `split("a,,b", ',')` yields {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` into lines on '\n'; a trailing newline does not produce a final
/// empty line (matching how SLOC counting treats files).
[[nodiscard]] std::vector<std::string> splitLines(std::string_view s);

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Join `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string> &parts, std::string_view sep);

[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` (must be non-empty) with `to`.
[[nodiscard]] std::string replaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

/// Collapse runs of spaces and tabs into a single space; used by the
/// whitespace-normalisation step of the perceived metrics (Section III-C).
[[nodiscard]] std::string collapseWhitespace(std::string_view s);

/// True if `s` consists only of ASCII whitespace (or is empty).
[[nodiscard]] bool isBlank(std::string_view s);

/// Left-pad / right-pad with spaces to a minimum width.
[[nodiscard]] std::string padLeft(std::string_view s, usize width);
[[nodiscard]] std::string padRight(std::string_view s, usize width);

/// Render a double with fixed precision (e.g. "0.125"); `precision` digits
/// after the decimal point.
[[nodiscard]] std::string fmtDouble(double v, int precision = 3);

} // namespace sv::str
