// Command-line flag parsing shared by the svale driver and its tests.
// Flags are declared up front (value-taking vs. bare switches plus short
// aliases), so anything unknown that looks like a flag is rejected instead
// of silently becoming a positional. Supported shapes:
//
//   --flag value     value flags consume the next argument, even one that
//                    starts with '-'
//   --flag=value     inline form; `--flag=` assigns the empty string
//   --switch         bare flags store "1"; `--switch=x` is an error
//   -o value         short aliases expand to their long flag
//   --               terminator: everything after is positional, verbatim
//
// Repeated flags keep the last occurrence (shell-override idiom).
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace sv::cli {

/// A malformed command line: unknown flag, missing value, and friends.
/// Distinct from ParseError so drivers can show usage text for it.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FlagSpec {
  std::set<std::string> valueFlags; ///< long names (no dashes) taking a value
  std::set<std::string> bareFlags;  ///< long names that are pure switches
  std::map<std::string, std::string> shortAliases; ///< e.g. "-o" -> "out"
};

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags; ///< bare switches store "1"

  [[nodiscard]] bool has(const std::string &name) const { return flags.count(name) != 0; }
  [[nodiscard]] const std::string &get(const std::string &name,
                                       const std::string &fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

/// Parse `argv` against the spec. Throws UsageError on malformed input.
[[nodiscard]] Args parseArgs(const std::vector<std::string> &argv, const FlagSpec &spec);

/// Convenience overload over main()'s argv, starting at index `first`.
[[nodiscard]] Args parseArgs(int argc, char **argv, int first, const FlagSpec &spec);

} // namespace sv::cli
