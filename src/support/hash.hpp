// FNV-1a hashing and hash combination. Used to hash normalised source lines
// for the O(NP) diff and to fingerprint trees in the codebase DB.
#pragma once

#include <string_view>

#include "support/common.hpp"

namespace sv {

/// 64-bit FNV-1a over a byte range.
[[nodiscard]] constexpr u64 fnv1a(std::string_view data, u64 seed = 0xcbf29ce484222325ULL) {
  u64 h = seed;
  for (const char c : data) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine two hashes (boost-style golden-ratio mix).
[[nodiscard]] constexpr u64 hashCombine(u64 a, u64 b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

} // namespace sv
