// Common aliases, assertions and small helpers shared by every SilverVale
// module. This header is intentionally tiny; anything substantial lives in a
// dedicated header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sv {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Error thrown for malformed external input (JSON, MessagePack, source
/// code handed to the frontends, ...). Distinct from logic errors so that
/// callers can catch input problems without masking bugs.
class ParseError : public std::runtime_error {
public:
  explicit ParseError(const std::string &what) : std::runtime_error(what) {}
};

/// Error thrown when an internal invariant is violated; indicates a bug in
/// SilverVale itself rather than bad input.
class InternalError : public std::logic_error {
public:
  explicit InternalError(const std::string &what) : std::logic_error(what) {}
};

[[noreturn]] inline void internalError(const std::string &what) { throw InternalError(what); }

#define SV_CHECK(cond, msg)                                                                        \
  do {                                                                                             \
    if (!(cond)) ::sv::internalError(std::string("SV_CHECK failed: ") + (msg));                    \
  } while (false)

} // namespace sv
