#include "support/compress.hpp"

#include <array>
#include <cstring>

namespace sv::svz {

namespace {

constexpr std::array<u8, 4> kMagic{'S', 'V', 'Z', '1'};
constexpr usize kWindow = 4095;   // max back-reference distance (12 bits)
constexpr usize kMinMatch = 4;    // matches shorter than this are literals
constexpr usize kMaxMatch = 19;   // kMinMatch + 15 (4-bit length field)
constexpr usize kHashSize = 1 << 15;

u32 hash3(const u8 *p) {
  // Multiplicative hash of 3 bytes; cheap and adequate for a 4 KiB window.
  const u32 v = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
                (static_cast<u32>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 15);
}

} // namespace

std::vector<u8> compress(const std::vector<u8> &raw) {
  std::vector<u8> out;
  out.reserve(raw.size() / 2 + 16);
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  const u32 rawSize = static_cast<u32>(raw.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(rawSize >> (8 * i)));

  // head[h] = most recent position with hash h; prev[] chains earlier ones.
  std::vector<i64> head(kHashSize, -1);
  std::vector<i64> prev(raw.size(), -1);

  usize pos = 0;
  while (pos < raw.size()) {
    const usize ctrlAt = out.size();
    out.push_back(0); // control byte patched below
    u8 ctrl = 0;
    for (int bit = 0; bit < 8 && pos < raw.size(); ++bit) {
      usize bestLen = 0;
      usize bestOff = 0;
      if (pos + kMinMatch <= raw.size()) {
        const u32 h = hash3(raw.data() + pos);
        i64 cand = head[h];
        int chain = 16; // bounded chain walk keeps compression O(n)
        while (cand >= 0 && chain-- > 0 && pos - static_cast<usize>(cand) <= kWindow) {
          const usize c = static_cast<usize>(cand);
          usize len = 0;
          const usize maxLen = std::min(kMaxMatch, raw.size() - pos);
          while (len < maxLen && raw[c + len] == raw[pos + len]) ++len;
          if (len > bestLen) {
            bestLen = len;
            bestOff = pos - c;
            if (len == kMaxMatch) break;
          }
          cand = prev[c];
        }
      }
      // Insert current position into the hash chain before advancing.
      const auto insertHash = [&](usize p) {
        if (p + 3 <= raw.size()) {
          const u32 h = hash3(raw.data() + p);
          prev[p] = head[h];
          head[h] = static_cast<i64>(p);
        }
      };
      if (bestLen >= kMinMatch) {
        ctrl |= static_cast<u8>(1 << bit);
        const u16 token =
            static_cast<u16>((bestOff & 0xFFF) | ((bestLen - kMinMatch) << 12));
        out.push_back(static_cast<u8>(token & 0xFF));
        out.push_back(static_cast<u8>(token >> 8));
        for (usize i = 0; i < bestLen; ++i) insertHash(pos + i);
        pos += bestLen;
      } else {
        out.push_back(raw[pos]);
        insertHash(pos);
        ++pos;
      }
    }
    out[ctrlAt] = ctrl;
  }
  return out;
}

std::vector<u8> decompress(const std::vector<u8> &compressed) {
  if (compressed.size() < 8 || !looksCompressed(compressed))
    throw ParseError("svz: bad magic");
  u32 rawSize = 0;
  for (int i = 0; i < 4; ++i) rawSize |= static_cast<u32>(compressed[4 + static_cast<usize>(i)]) << (8 * i);

  std::vector<u8> out;
  out.reserve(rawSize);
  usize pos = 8;
  const auto need = [&](usize n) {
    if (pos + n > compressed.size()) throw ParseError("svz: truncated stream");
  };
  while (out.size() < rawSize) {
    need(1);
    const u8 ctrl = compressed[pos++];
    for (int bit = 0; bit < 8 && out.size() < rawSize; ++bit) {
      if (ctrl & (1 << bit)) {
        need(2);
        const u16 token = static_cast<u16>(compressed[pos]) |
                          (static_cast<u16>(compressed[pos + 1]) << 8);
        pos += 2;
        const usize off = token & 0xFFF;
        const usize len = kMinMatch + (token >> 12);
        if (off == 0 || off > out.size()) throw ParseError("svz: match offset out of range");
        const usize start = out.size() - off;
        for (usize i = 0; i < len; ++i) out.push_back(out[start + i]); // may self-overlap
      } else {
        need(1);
        out.push_back(compressed[pos++]);
      }
    }
  }
  if (out.size() != rawSize) throw ParseError("svz: size mismatch");
  return out;
}

bool looksCompressed(const std::vector<u8> &bytes) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kMagic.data(), 4) == 0;
}

} // namespace sv::svz
