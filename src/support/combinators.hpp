// A small functional combinator library in the spirit of Aspartame (the
// header-only library the paper's implementation uses, Section IV-E). It
// offers a richer vocabulary than <ranges> for the collection-shuffling that
// dominates metric plumbing: map/filter/flatMap, groupBy, sortBy, distinct,
// zip, sum, and friends. Everything is eager and returns std::vector /
// std::map so results are directly usable by the analysis code.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace sv {

/// map: apply `f` to every element, collecting the results.
template <typename T, typename F> [[nodiscard]] auto map(const std::vector<T> &xs, F &&f) {
  using R = std::invoke_result_t<F, const T &>;
  std::vector<R> out;
  out.reserve(xs.size());
  for (const auto &x : xs) out.push_back(f(x));
  return out;
}

/// mapIndexed: like map but `f` also receives the element index.
template <typename T, typename F> [[nodiscard]] auto mapIndexed(const std::vector<T> &xs, F &&f) {
  using R = std::invoke_result_t<F, const T &, usize>;
  std::vector<R> out;
  out.reserve(xs.size());
  for (usize i = 0; i < xs.size(); ++i) out.push_back(f(xs[i], i));
  return out;
}

/// filter: keep elements satisfying `p`.
template <typename T, typename P>
[[nodiscard]] std::vector<T> filter(const std::vector<T> &xs, P &&p) {
  std::vector<T> out;
  for (const auto &x : xs)
    if (p(x)) out.push_back(x);
  return out;
}

/// flatMap: map to vectors and concatenate.
template <typename T, typename F> [[nodiscard]] auto flatMap(const std::vector<T> &xs, F &&f) {
  using V = std::invoke_result_t<F, const T &>;
  using R = typename V::value_type;
  std::vector<R> out;
  for (const auto &x : xs) {
    auto v = f(x);
    out.insert(out.end(), std::make_move_iterator(v.begin()), std::make_move_iterator(v.end()));
  }
  return out;
}

/// concat two vectors.
template <typename T>
[[nodiscard]] std::vector<T> concat(std::vector<T> a, const std::vector<T> &b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

/// groupBy: bucket elements by the key `f` produces, preserving insertion
/// order within each bucket.
template <typename T, typename F> [[nodiscard]] auto groupBy(const std::vector<T> &xs, F &&f) {
  using K = std::invoke_result_t<F, const T &>;
  std::map<K, std::vector<T>> out;
  for (const auto &x : xs) out[f(x)].push_back(x);
  return out;
}

/// sortBy: stable sort by the key `f` produces (ascending).
template <typename T, typename F>
[[nodiscard]] std::vector<T> sortBy(std::vector<T> xs, F &&f) {
  std::stable_sort(xs.begin(), xs.end(),
                   [&](const T &a, const T &b) { return f(a) < f(b); });
  return xs;
}

/// distinct: remove duplicates, keeping first occurrences.
template <typename T> [[nodiscard]] std::vector<T> distinct(const std::vector<T> &xs) {
  std::set<T> seen;
  std::vector<T> out;
  for (const auto &x : xs)
    if (seen.insert(x).second) out.push_back(x);
  return out;
}

/// zip: pair elements; the result has the length of the shorter input.
template <typename A, typename B>
[[nodiscard]] std::vector<std::pair<A, B>> zip(const std::vector<A> &as, const std::vector<B> &bs) {
  std::vector<std::pair<A, B>> out;
  const usize n = std::min(as.size(), bs.size());
  out.reserve(n);
  for (usize i = 0; i < n; ++i) out.emplace_back(as[i], bs[i]);
  return out;
}

/// sum over a projection.
template <typename T, typename F> [[nodiscard]] auto sumBy(const std::vector<T> &xs, F &&f) {
  using R = std::invoke_result_t<F, const T &>;
  R acc{};
  for (const auto &x : xs) acc += f(x);
  return acc;
}

template <typename T> [[nodiscard]] T sum(const std::vector<T> &xs) {
  return std::accumulate(xs.begin(), xs.end(), T{});
}

/// find the first element satisfying `p`.
template <typename T, typename P>
[[nodiscard]] std::optional<T> findFirst(const std::vector<T> &xs, P &&p) {
  for (const auto &x : xs)
    if (p(x)) return x;
  return std::nullopt;
}

/// index of the first element satisfying `p`, or nullopt.
template <typename T, typename P>
[[nodiscard]] std::optional<usize> indexWhere(const std::vector<T> &xs, P &&p) {
  for (usize i = 0; i < xs.size(); ++i)
    if (p(xs[i])) return i;
  return std::nullopt;
}

template <typename T, typename P> [[nodiscard]] bool anyOf(const std::vector<T> &xs, P &&p) {
  return std::any_of(xs.begin(), xs.end(), std::forward<P>(p));
}

template <typename T, typename P> [[nodiscard]] bool allOf(const std::vector<T> &xs, P &&p) {
  return std::all_of(xs.begin(), xs.end(), std::forward<P>(p));
}

template <typename T> [[nodiscard]] bool contains(const std::vector<T> &xs, const T &v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

/// cartesian product of two vectors.
template <typename A, typename B>
[[nodiscard]] std::vector<std::pair<A, B>> cartesian(const std::vector<A> &as,
                                                     const std::vector<B> &bs) {
  std::vector<std::pair<A, B>> out;
  out.reserve(as.size() * bs.size());
  for (const auto &a : as)
    for (const auto &b : bs) out.emplace_back(a, b);
  return out;
}

/// range [0, n) as a vector of indices; convenient with map/filter.
[[nodiscard]] inline std::vector<usize> indices(usize n) {
  std::vector<usize> out(n);
  std::iota(out.begin(), out.end(), usize{0});
  return out;
}

/// fold left.
template <typename T, typename Acc, typename F>
[[nodiscard]] Acc foldLeft(const std::vector<T> &xs, Acc init, F &&f) {
  for (const auto &x : xs) init = f(std::move(init), x);
  return init;
}

/// minBy / maxBy over a projection; nullopt on empty input.
template <typename T, typename F>
[[nodiscard]] std::optional<T> minBy(const std::vector<T> &xs, F &&f) {
  if (xs.empty()) return std::nullopt;
  const T *best = &xs[0];
  for (const auto &x : xs)
    if (f(x) < f(*best)) best = &x;
  return *best;
}

template <typename T, typename F>
[[nodiscard]] std::optional<T> maxBy(const std::vector<T> &xs, F &&f) {
  if (xs.empty()) return std::nullopt;
  const T *best = &xs[0];
  for (const auto &x : xs)
    if (f(*best) < f(x)) best = &x;
  return *best;
}

} // namespace sv
