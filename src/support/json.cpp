#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace sv::json {

namespace {

[[noreturn]] void fail(usize pos, const std::string &what) {
  throw ParseError("JSON error at offset " + std::to_string(pos) + ": " + what);
}

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

private:
  std::string_view text_;
  usize pos_ = 0;

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_++];
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect(char c) {
    if (next() != c) fail(pos_ - 1, std::string("expected '") + c + "'");
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    const char c = peek();
    switch (c) {
    case '{': return parseObject();
    case '[': return parseArray();
    case '"': return Value(parseString());
    case 't':
      if (consume("true")) return Value(true);
      fail(pos_, "invalid literal");
    case 'f':
      if (consume("false")) return Value(false);
      fail(pos_, "invalid literal");
    case 'n':
      if (consume("null")) return Value(nullptr);
      fail(pos_, "invalid literal");
    default: return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Object obj;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj.emplace(std::move(key), parseValue());
      skipWs();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parseArray() {
    expect('[');
    Array arr;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parseValue());
      skipWs();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "invalid \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs are passed
          // through individually; our inputs are ASCII in practice.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail(pos_ - 1, "invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parseNumber() {
    const usize start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    double value = 0;
    const auto *first = text_.data() + start;
    const auto *last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, value);
    if (res.ec != std::errc{} || res.ptr != last) fail(start, "malformed number");
    return Value(value);
  }
};

void writeString(std::string &out, const std::string &s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
  }
  out.push_back('"');
}

void writeNumber(std::string &out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void writeValue(std::string &out, const Value &v, int indent, int depth) {
  const auto pad = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<usize>(indent * d), ' ');
    }
  };
  if (v.isNull()) {
    out += "null";
  } else if (v.isBool()) {
    out += v.asBool() ? "true" : "false";
  } else if (v.isNumber()) {
    writeNumber(out, v.asNumber());
  } else if (v.isString()) {
    writeString(out, v.asString());
  } else if (v.isArray()) {
    const auto &arr = v.asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (usize i = 0; i < arr.size(); ++i) {
      if (i != 0) out.push_back(',');
      pad(depth + 1);
      writeValue(out, arr[i], indent, depth + 1);
    }
    pad(depth);
    out.push_back(']');
  } else {
    const auto &obj = v.asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto &[k, val] : obj) {
      if (!first) out.push_back(',');
      first = false;
      pad(depth + 1);
      writeString(out, k);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      writeValue(out, val, indent, depth + 1);
    }
    pad(depth);
    out.push_back('}');
  }
}

} // namespace

bool Value::asBool() const {
  if (!isBool()) throw ParseError("JSON: expected bool");
  return std::get<bool>(data_);
}
double Value::asNumber() const {
  if (!isNumber()) throw ParseError("JSON: expected number");
  return std::get<double>(data_);
}
i64 Value::asInt() const { return static_cast<i64>(asNumber()); }
const std::string &Value::asString() const {
  if (!isString()) throw ParseError("JSON: expected string");
  return std::get<std::string>(data_);
}
const Array &Value::asArray() const {
  if (!isArray()) throw ParseError("JSON: expected array");
  return std::get<Array>(data_);
}
const Object &Value::asObject() const {
  if (!isObject()) throw ParseError("JSON: expected object");
  return std::get<Object>(data_);
}
const Value &Value::at(const std::string &key) const {
  const auto &obj = asObject();
  const auto it = obj.find(key);
  if (it == obj.end()) throw ParseError("JSON: missing field '" + key + "'");
  return it->second;
}
const Value *Value::find(const std::string &key) const {
  const auto &obj = asObject();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

std::string write(const Value &v, int indent) {
  std::string out;
  writeValue(out, v, indent, 0);
  return out;
}

} // namespace sv::json
