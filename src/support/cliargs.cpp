#include "support/cliargs.hpp"

namespace sv::cli {

Args parseArgs(const std::vector<std::string> &argv, const FlagSpec &spec) {
  Args out;
  bool terminated = false; // saw "--": the rest is positional
  for (usize i = 0; i < argv.size(); ++i) {
    std::string a = argv[i];
    if (terminated) {
      out.positional.push_back(std::move(a));
      continue;
    }
    if (a == "--") {
      terminated = true;
      continue;
    }
    if (const auto alias = spec.shortAliases.find(a); alias != spec.shortAliases.end()) {
      if (i + 1 >= argv.size()) throw UsageError(a + " requires a value");
      out.flags[alias->second] = argv[++i];
      continue;
    }
    if (a.rfind("--", 0) == 0) {
      std::string name = a.substr(2);
      std::string value;
      bool hasValue = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1); // "--flag=" keeps the empty string
        name.resize(eq);
        hasValue = true;
      }
      if (spec.valueFlags.count(name)) {
        if (!hasValue) {
          if (i + 1 >= argv.size()) throw UsageError("--" + name + " requires a value");
          value = argv[++i];
        }
        out.flags[name] = std::move(value); // repeated flag: last wins
      } else if (spec.bareFlags.count(name)) {
        if (hasValue) throw UsageError("--" + name + " does not take a value");
        out.flags[name] = "1";
      } else {
        throw UsageError("unknown flag: " + a);
      }
      continue;
    }
    out.positional.push_back(std::move(a));
  }
  return out;
}

Args parseArgs(int argc, char **argv, int first, const FlagSpec &spec) {
  std::vector<std::string> args;
  args.reserve(static_cast<usize>(argc > first ? argc - first : 0));
  for (int i = first; i < argc; ++i) args.emplace_back(argv[i]);
  return parseArgs(args, spec);
}

} // namespace sv::cli
