#include "support/parallel.hpp"

namespace sv {

ThreadPool::ThreadPool(usize threads) {
  usize n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (usize i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (auto &w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
  if (firstError_) {
    const auto err = firstError_;
    firstError_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
    }
    {
      const std::lock_guard lock(mutex_);
      --pending_;
      if (pending_ == 0) idle_.notify_all();
    }
  }
}

void parallelFor(usize n, const std::function<void(usize)> &body, usize threads) {
  if (n == 0) return;
  usize workerCount = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workerCount == 0) workerCount = 1;
  if (workerCount == 1 || n < 2) {
    for (usize i = 0; i < n; ++i) body(i);
    return;
  }
  workerCount = std::min(workerCount, n);

  std::atomic<usize> nextIndex{0};
  std::exception_ptr firstError;
  std::mutex errMutex;

  std::vector<std::thread> workers;
  workers.reserve(workerCount);
  for (usize w = 0; w < workerCount; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const usize i = nextIndex.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard lock(errMutex);
          if (!firstError) firstError = std::current_exception();
        }
      }
    });
  }
  for (auto &w : workers) w.join();
  if (firstError) std::rethrow_exception(firstError);
}

} // namespace sv
