#include "support/parallel.hpp"

#include <cstdlib>
#include <string>

namespace sv {

namespace {

/// Set inside pool workers; a parallelFor issued from one must run serially
/// (its ancestors already hold pool slots — waiting on the pool deadlocks).
thread_local bool tlInPoolWorker = false;

std::atomic<usize> gConfiguredThreads{0};

} // namespace

ThreadPool::ThreadPool(usize threads) {
  usize n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (usize i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (auto &w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
  if (firstError_) {
    const auto err = firstError_;
    firstError_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  tlInPoolWorker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
    }
    {
      const std::lock_guard lock(mutex_);
      --pending_;
      if (pending_ == 0) idle_.notify_all();
    }
  }
}

usize resolveThreadCount(usize explicitThreads, const char *envValue, usize hardware) {
  if (explicitThreads != 0) return explicitThreads;
  if (envValue != nullptr) {
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(envValue, &end, 10);
    if (end != envValue && *end == '\0' && parsed > 0) return static_cast<usize>(parsed);
  }
  return hardware != 0 ? hardware : 1;
}

void configureThreads(usize threads) {
  gConfiguredThreads.store(threads, std::memory_order_relaxed);
}

ThreadPool &sharedPool() {
  static ThreadPool pool(resolveThreadCount(gConfiguredThreads.load(std::memory_order_relaxed),
                                            std::getenv("SV_THREADS"),
                                            std::thread::hardware_concurrency()));
  return pool;
}

void parallelFor(usize n, const std::function<void(usize)> &body, usize threads) {
  if (n == 0) return;
  const usize want =
      tlInPoolWorker ? 1
                     : resolveThreadCount(threads != 0
                                              ? threads
                                              : gConfiguredThreads.load(std::memory_order_relaxed),
                                          std::getenv("SV_THREADS"),
                                          std::thread::hardware_concurrency());
  if (want == 1 || n < 2) {
    for (usize i = 0; i < n; ++i) body(i);
    return;
  }

  // The caller drains alongside pool workers, so `want` workers means
  // want - 1 submitted tasks (capped by the pool size and by n).
  ThreadPool &pool = sharedPool();
  const usize workerCount = std::min({want, pool.threadCount() + 1, n});
  if (workerCount == 1) {
    for (usize i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<usize> nextIndex{0};
  std::mutex doneMutex; // guards remaining and firstError
  std::condition_variable done;
  usize remaining = workerCount - 1;
  std::exception_ptr firstError;

  const auto drain = [&] {
    while (true) {
      const usize i = nextIndex.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard lock(doneMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  for (usize w = 0; w + 1 < workerCount; ++w) {
    pool.submit([&] {
      drain();
      // Notify under the lock: the moment remaining hits zero with the
      // mutex released, the caller may return and destroy these locals.
      const std::lock_guard lock(doneMutex);
      --remaining;
      if (remaining == 0) done.notify_all();
    });
  }
  drain();

  std::unique_lock lock(doneMutex);
  done.wait(lock, [&] { return remaining == 0; });
  if (firstError) std::rethrow_exception(firstError);
}

} // namespace sv
