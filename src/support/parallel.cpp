#include "support/parallel.hpp"

#include <cstdlib>
#include <string>

namespace sv {

namespace {

std::atomic<usize> gConfiguredThreads{0};
std::atomic<usize> gSuppressedErrors{0};

} // namespace

usize suppressedErrorCount() { return gSuppressedErrors.load(std::memory_order_relaxed); }

void noteSuppressedErrors(usize n) {
  if (n != 0) gSuppressedErrors.fetch_add(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(usize threads) {
  usize n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (usize i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (auto &w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
  if (!errors_.empty()) {
    const auto first = errors_.front();
    noteSuppressedErrors(errors_.size() - 1);
    errors_.clear();
    std::rethrow_exception(first);
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard lock(mutex_);
      errors_.push_back(std::current_exception());
    }
    {
      const std::lock_guard lock(mutex_);
      --pending_;
      if (pending_ == 0) idle_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// TaskGroup

struct TaskGroup::State {
  std::mutex mutex;
  std::condition_variable finished;
  usize pending = 0;
  std::vector<std::exception_ptr> errors;
  usize errorTotal = 0;
};

TaskGroup::TaskGroup(ThreadPool &pool) : state_(std::make_shared<State>()), pool_(pool) {}

TaskGroup::~TaskGroup() {
  // Wait without throwing: anything unconsumed is counted, not lost.
  std::unique_lock lock(state_->mutex);
  state_->finished.wait(lock, [this] { return state_->pending == 0; });
  noteSuppressedErrors(state_->errors.size());
}

void TaskGroup::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(state_->mutex);
    ++state_->pending;
  }
  // The wrapper owns the group state, so a task outliving the TaskGroup
  // object is impossible to observe (the destructor waits) and exceptions
  // never reach the pool's own collector.
  pool_.submit([state = state_, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      const std::lock_guard lock(state->mutex);
      state->errors.push_back(std::current_exception());
      ++state->errorTotal;
    }
    bool done = false;
    {
      const std::lock_guard lock(state->mutex);
      done = --state->pending == 0;
    }
    if (done) state->finished.notify_all();
  });
}

void TaskGroup::wait() {
  std::exception_ptr first;
  {
    std::unique_lock lock(state_->mutex);
    state_->finished.wait(lock, [this] { return state_->pending == 0; });
    if (!state_->errors.empty()) {
      first = state_->errors.front();
      noteSuppressedErrors(state_->errors.size() - 1);
      state_->errors.clear();
    }
  }
  if (first) std::rethrow_exception(first);
}

usize TaskGroup::errorCount() const {
  const std::lock_guard lock(state_->mutex);
  return state_->errorTotal;
}

// ---------------------------------------------------------------------------
// parallelFor

usize resolveThreadCount(usize explicitThreads, const char *envValue, usize hardware) {
  if (explicitThreads != 0) return explicitThreads;
  if (envValue != nullptr) {
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(envValue, &end, 10);
    if (end != envValue && *end == '\0' && parsed > 0) return static_cast<usize>(parsed);
  }
  return hardware != 0 ? hardware : 1;
}

void configureThreads(usize threads) {
  gConfiguredThreads.store(threads, std::memory_order_relaxed);
}

usize effectiveThreadCount(usize threads) {
  return resolveThreadCount(threads != 0 ? threads
                                         : gConfiguredThreads.load(std::memory_order_relaxed),
                            std::getenv("SV_THREADS"), std::thread::hardware_concurrency());
}

ThreadPool &sharedPool() {
  static ThreadPool pool(effectiveThreadCount(0));
  return pool;
}

namespace {

/// Heap state shared between the caller and its helper tasks. Helpers keep
/// it alive via shared_ptr, so a helper that the pool only gets around to
/// running after the loop already drained finds next >= n and returns
/// without touching anything else — which is what makes nested calls safe:
/// nobody ever waits for a *queued* task, only for claimed indices, and
/// every claimed index is finished by the thread that claimed it.
struct ForState {
  std::function<void(usize)> body; // owned copy: helpers may outlive the call site
  usize n = 0;
  std::atomic<usize> next{0};
  std::atomic<usize> done{0};
  std::mutex mutex; // guards errors and the finished wait
  std::condition_variable finished;
  std::vector<std::exception_ptr> errors;
};

void drainForState(const std::shared_ptr<ForState> &st) {
  while (true) {
    const usize i = st->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st->n) return;
    try {
      st->body(i);
    } catch (...) {
      const std::lock_guard lock(st->mutex);
      st->errors.push_back(std::current_exception());
    }
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->n) {
      const std::lock_guard lock(st->mutex);
      st->finished.notify_all();
    }
  }
}

} // namespace

void parallelFor(usize n, const std::function<void(usize)> &body, usize threads) {
  if (n == 0) return;
  const usize want = effectiveThreadCount(threads);
  if (want == 1 || n < 2) {
    for (usize i = 0; i < n; ++i) body(i);
    return;
  }

  // The caller drains alongside pool workers, so `want` workers means
  // want - 1 submitted helper tasks (capped by the pool size and by n).
  ThreadPool &pool = sharedPool();
  const usize workerCount = std::min({want, pool.threadCount() + 1, n});
  if (workerCount == 1) {
    for (usize i = 0; i < n; ++i) body(i);
    return;
  }

  auto st = std::make_shared<ForState>();
  st->body = body;
  st->n = n;
  for (usize w = 0; w + 1 < workerCount; ++w) {
    pool.submit([st] { drainForState(st); });
  }
  drainForState(st);

  {
    std::unique_lock lock(st->mutex);
    st->finished.wait(lock,
                      [&] { return st->done.load(std::memory_order_acquire) == st->n; });
  }
  // done == n means every body() call has returned, so errors is quiescent.
  if (!st->errors.empty()) {
    noteSuppressedErrors(st->errors.size() - 1);
    std::rethrow_exception(st->errors.front());
  }
}

} // namespace sv
