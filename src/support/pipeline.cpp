#include "support/pipeline.hpp"

#include <iomanip>
#include <sstream>

#include "support/taskqueue.hpp"

namespace sv {

namespace {

std::atomic<u8> gDefaultMode{static_cast<u8>(ExecMode::Streaming)};

std::mutex gStatsMutex;
std::vector<NodeStats> gStatsRegistry;

std::mutex gJitterMutex;
std::shared_ptr<const std::function<void(usize, usize)>> gJitter;

} // namespace

const char *execModeName(ExecMode mode) {
  return mode == ExecMode::Barrier ? "barrier" : "streaming";
}

std::optional<ExecMode> execModeFromName(std::string_view name) {
  if (name == "barrier") return ExecMode::Barrier;
  if (name == "streaming") return ExecMode::Streaming;
  return std::nullopt;
}

ExecMode defaultExecMode() {
  return static_cast<ExecMode>(gDefaultMode.load(std::memory_order_relaxed));
}

void setDefaultExecMode(ExecMode mode) {
  gDefaultMode.store(static_cast<u8>(mode), std::memory_order_relaxed);
}

double NodeStats::throughput() const {
  return wallMs > 0 ? static_cast<double>(items) / (wallMs / 1000.0) : 0;
}

double NodeStats::occupancy() const {
  if (wallMs <= 0 || workers == 0) return 0;
  return busyMs / (wallMs * static_cast<double>(workers));
}

json::Value NodeStats::toJson() const {
  json::Object o;
  o.emplace("name", json::Value(name));
  o.emplace("mode", json::Value(mode));
  o.emplace("workers", json::Value(workers));
  o.emplace("items", json::Value(items));
  o.emplace("steals", json::Value(steals));
  o.emplace("max_queue_depth", json::Value(maxQueueDepth));
  o.emplace("busy_ms", json::Value(busyMs));
  o.emplace("wall_ms", json::Value(wallMs));
  o.emplace("throughput_per_s", json::Value(throughput()));
  o.emplace("occupancy", json::Value(occupancy()));
  if (!children.empty()) {
    json::Array kids;
    kids.reserve(children.size());
    for (const auto &c : children) kids.push_back(c.toJson());
    o.emplace("stages", json::Value(std::move(kids)));
  }
  return json::Value(std::move(o));
}

std::string NodeStats::renderText(usize indent) const {
  std::ostringstream out;
  out << std::string(indent * 2, ' ') << name;
  if (!mode.empty()) out << " [" << mode << "]";
  out << std::fixed << std::setprecision(1);
  out << "  items=" << items << " workers=" << workers << " occ=" << occupancy() * 100 << "%"
      << " steals=" << steals << " maxq=" << maxQueueDepth << " busy=" << busyMs
      << "ms wall=" << wallMs << "ms thr=" << throughput() << "/s\n";
  for (const auto &c : children) out << c.renderText(indent + 1);
  return out.str();
}

void registerPipelineStats(NodeStats stats) {
  const std::lock_guard lock(gStatsMutex);
  gStatsRegistry.push_back(std::move(stats));
}

std::vector<NodeStats> drainPipelineStats() {
  const std::lock_guard lock(gStatsMutex);
  return std::exchange(gStatsRegistry, {});
}

void setPipelineStageJitter(std::function<void(usize, usize)> hook) {
  auto ptr = hook ? std::make_shared<const std::function<void(usize, usize)>>(std::move(hook))
                  : std::shared_ptr<const std::function<void(usize, usize)>>{};
  const std::lock_guard lock(gJitterMutex);
  gJitter = std::move(ptr);
}

void applyStageJitter(usize stage, usize item) {
  std::shared_ptr<const std::function<void(usize, usize)>> hook;
  {
    const std::lock_guard lock(gJitterMutex);
    hook = gJitter;
  }
  if (hook) (*hook)(stage, item);
}

// ---------------------------------------------------------------------------
// StreamRuntime

using Task = std::function<void()>;

struct StreamRuntime::Impl {
  std::string name;
  usize workers = 1;
  std::vector<std::unique_ptr<WorkStealingDeque<Task>>> deques;
  TaskQueue<Task> inject;

  std::mutex mutex; // guards pending, errors, and the flushed counters
  std::condition_variable wake;
  usize pending = 0;
  std::vector<std::exception_ptr> errors;
  usize errorTotal = 0;
  u64 busyNs = 0;
  usize items = 0;
  u64 wallNs = 0;
};

namespace {

/// Which runtime (and worker slot) the current thread is draining, so that
/// spawn() from inside a task lands on the worker's own deque. A stack
/// discipline (save/restore) keeps nested runtimes correct.
struct WorkerContext {
  StreamRuntime::Impl *impl = nullptr;
  usize index = 0;
};
thread_local WorkerContext tlWorker;

void workerLoop(const std::shared_ptr<StreamRuntime::Impl> &impl, usize index) {
  const WorkerContext saved = tlWorker;
  tlWorker = {impl.get(), index};

  auto &own = *impl->deques[index];
  u64 localBusyNs = 0;
  usize localItems = 0;

  while (true) {
    std::optional<Task> task = own.popBottom();
    if (!task) {
      for (usize k = 1; k < impl->workers && !task; ++k)
        task = impl->deques[(index + k) % impl->workers]->stealTop();
    }
    if (!task) task = impl->inject.tryPop();

    if (task) {
      const auto t0 = std::chrono::steady_clock::now();
      try {
        (*task)();
      } catch (...) {
        const std::lock_guard lock(impl->mutex);
        impl->errors.push_back(std::current_exception());
        ++impl->errorTotal;
      }
      localBusyNs += static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());
      ++localItems;
      bool finished = false;
      {
        const std::lock_guard lock(impl->mutex);
        impl->busyNs += std::exchange(localBusyNs, 0);
        impl->items += std::exchange(localItems, 0);
        finished = --impl->pending == 0;
      }
      if (finished) impl->wake.notify_all();
    } else {
      std::unique_lock lock(impl->mutex);
      if (impl->pending == 0) break;
      // Timed wait instead of a precise wakeup protocol: spawns notify one
      // sleeper, but a steal-then-spawn interleaving could miss it, and a
      // 200us poll on an otherwise-idle worker is noise next to the task
      // granularity (whole compiler phases).
      impl->wake.wait_for(lock, std::chrono::microseconds(200));
    }
  }

  tlWorker = saved;
}

} // namespace

StreamRuntime::StreamRuntime(std::string name, usize threads) : impl_(std::make_shared<Impl>()) {
  impl_->name = std::move(name);
  impl_->workers = std::min(effectiveThreadCount(threads), sharedPool().threadCount() + 1);
  if (impl_->workers == 0) impl_->workers = 1;
  impl_->deques.reserve(impl_->workers);
  for (usize i = 0; i < impl_->workers; ++i)
    impl_->deques.push_back(std::make_unique<WorkStealingDeque<Task>>());
}

StreamRuntime::~StreamRuntime() = default;

void StreamRuntime::spawn(Task task) {
  {
    const std::lock_guard lock(impl_->mutex);
    ++impl_->pending;
  }
  if (tlWorker.impl == impl_.get()) {
    impl_->deques[tlWorker.index]->pushBottom(std::move(task));
  } else {
    impl_->inject.push(std::move(task));
  }
  impl_->wake.notify_one();
}

void StreamRuntime::run() {
  const auto wallStart = std::chrono::steady_clock::now();
  // Helpers are borrowed, not owned: they capture the shared Impl, drain
  // until the graph is empty, and return to the pool. run() never joins a
  // specific thread, so a saturated pool degrades to the caller draining
  // everything alone — never to a deadlock.
  for (usize w = 1; w < impl_->workers; ++w) {
    sharedPool().submit([impl = impl_, w] { workerLoop(impl, w); });
  }
  workerLoop(impl_, 0);
  impl_->wallNs = static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                       std::chrono::steady_clock::now() - wallStart)
                                       .count());

  std::exception_ptr first;
  {
    const std::lock_guard lock(impl_->mutex);
    if (!impl_->errors.empty()) {
      first = impl_->errors.front();
      noteSuppressedErrors(impl_->errors.size() - 1);
      impl_->errors.clear();
    }
  }
  if (first) std::rethrow_exception(first);
}

usize StreamRuntime::workerCount() const { return impl_->workers; }

usize StreamRuntime::errorCount() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->errorTotal;
}

NodeStats StreamRuntime::stats() const {
  NodeStats s;
  s.name = impl_->name;
  s.mode = execModeName(ExecMode::Streaming);
  s.workers = impl_->workers;
  {
    const std::lock_guard lock(impl_->mutex);
    s.items = impl_->items;
    s.busyMs = static_cast<double>(impl_->busyNs) / 1e6;
    s.wallMs = static_cast<double>(impl_->wallNs) / 1e6;
  }
  for (const auto &d : impl_->deques) {
    s.steals += d->stolenCount();
    if (d->maxDepth() > s.maxQueueDepth) s.maxQueueDepth = d->maxDepth();
  }
  if (impl_->inject.maxDepth() > s.maxQueueDepth) s.maxQueueDepth = impl_->inject.maxDepth();
  return s;
}

// ---------------------------------------------------------------------------
// TaskPool

NodeStats TaskPool::run(usize n, const std::function<void(usize)> &body,
                        const PipeOptions &options) {
  const auto wallStart = std::chrono::steady_clock::now();
  NodeStats node;
  if (options.mode == ExecMode::Barrier) {
    std::atomic<u64> busyNs{0};
    parallelFor(
        n,
        [&](usize i) {
          applyStageJitter(0, i);
          const auto t0 = std::chrono::steady_clock::now();
          body(i);
          busyNs.fetch_add(static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                std::chrono::steady_clock::now() - t0)
                                                .count()),
                           std::memory_order_relaxed);
        },
        options.threads);
    node.workers = effectiveThreadCount(options.threads);
    node.items = n;
    node.busyMs = static_cast<double>(busyNs.load(std::memory_order_relaxed)) / 1e6;
  } else {
    StreamRuntime rt(name_, options.threads);
    for (usize i = 0; i < n; ++i) {
      rt.spawn([&body, i] {
        applyStageJitter(0, i);
        body(i);
      });
    }
    rt.run();
    node = rt.stats();
  }
  node.name = name_;
  node.mode = execModeName(options.mode);
  node.wallMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wallStart)
          .count();
  lastStats_ = node;
  if (options.registerStats) registerPipelineStats(node);
  return lastStats_;
}

} // namespace sv
