// `svz`: a from-scratch LZ77-family block compressor standing in for Zstd in
// the Codebase DB container (Section IV: "Zstd compressed MessagePack
// format"). The format is deliberately simple:
//
//   magic "SVZ1" | u32 rawSize | token stream
//
// Token stream: a control byte whose bits select literal (0) or match (1)
// for the next 8 tokens. A literal is one raw byte; a match is a 2-byte
// little-endian (offset:12, length-4:4) pair referencing up to 4 KiB back,
// lengths 4..19. Greedy matching over a chained hash table gives
// competitive ratios on the highly repetitive tree dumps the DB stores.
#pragma once

#include <string_view>
#include <vector>

#include "support/common.hpp"

namespace sv::svz {

/// Compress `raw`. Output always round-trips through decompress().
[[nodiscard]] std::vector<u8> compress(const std::vector<u8> &raw);

/// Decompress a buffer produced by compress(); throws ParseError on
/// malformed input (bad magic, truncated stream, out-of-range match).
[[nodiscard]] std::vector<u8> decompress(const std::vector<u8> &compressed);

/// True if `bytes` begins with the SVZ1 magic.
[[nodiscard]] bool looksCompressed(const std::vector<u8> &bytes);

} // namespace sv::svz
