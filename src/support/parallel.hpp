// A cache-friendly thread pool plus parallel_for / parallel_map helpers.
// The pairwise TED computations over the cartesian product of models
// (Section V-A) are embarrassingly parallel and dominated by a few large
// pairs, so we use dynamic chunking (atomic fetch-add over blocks) rather
// than static partitioning.
//
// `parallelFor` routes through one process-wide, lazily-constructed pool —
// spawning and joining fresh threads on every `buildMatrix`/`indexApp` call
// was measurable on small matrices. The pool size comes from, in order of
// precedence: the per-call `threads` argument, `configureThreads` (the
// `svale --threads` flag), the `SV_THREADS` environment variable, and
// hardware_concurrency.
//
// Nested parallelFor calls are fully supported: each call owns a shared
// heap state that its helper tasks drain cooperatively, the caller always
// participates, and every claimed index is finished by the thread that
// claimed it — so a nested call can only ever wait on threads that are
// actively executing, never on a queue slot held by its own ancestors.
// (The old implementation degraded nested calls to a serial loop.)
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/common.hpp"

namespace sv {

/// Exceptions a parallel construct could not rethrow (everything after the
/// first): counted process-wide and surfaced by `svale --pipeline-stats`.
[[nodiscard]] usize suppressedErrorCount();
void noteSuppressedErrors(usize n);

/// Fixed-size thread pool. Tasks are void() closures; exceptions thrown by
/// a task are captured — wait() rethrows the first and counts the rest via
/// noteSuppressedErrors(). Prefer TaskGroup for waiting: pool-level wait()
/// covers *all* tasks, not just the caller's.
class ThreadPool {
public:
  /// `threads` == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue a task; safe from any thread.
  void submit(std::function<void()> task);

  /// Block until the pool is fully idle (zero queued or running tasks from
  /// *any* submitter), then rethrow the first captured task exception.
  /// Concurrent submitters should use TaskGroup, which waits on its own
  /// tasks only.
  void wait();

  [[nodiscard]] usize threadCount() const { return workers_.size(); }

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  usize pending_ = 0; // queued + running
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
};

/// The process-wide pool behind `parallelFor`, built on first use. Exposed
/// for tests and for callers that want to submit long-lived work directly.
[[nodiscard]] ThreadPool &sharedPool();

/// Per-caller completion handle over a ThreadPool: submit() enqueues onto
/// the pool, wait() blocks until *this group's* tasks are done — concurrent
/// groups on the shared pool wait independently. All task exceptions are
/// collected; wait() rethrows the first and counts the rest via
/// noteSuppressedErrors() (total observable through errorCount()). The
/// destructor waits without throwing.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &pool = sharedPool());
  ~TaskGroup();

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  void submit(std::function<void()> task);

  /// Block until every task submitted through this group has finished;
  /// rethrows the first collected exception, if any.
  void wait();

  /// Task exceptions collected over the group's lifetime.
  [[nodiscard]] usize errorCount() const;

private:
  struct State;
  std::shared_ptr<State> state_;
  ThreadPool &pool_;
};

/// Worker-count resolution used by the shared pool, exposed pure for tests:
/// a nonzero `explicitThreads` wins, else a positive integer in `envValue`
/// (the content of SV_THREADS; nullptr / garbage / "0" are ignored), else
/// `hardware` (floored at 1).
[[nodiscard]] usize resolveThreadCount(usize explicitThreads, const char *envValue, usize hardware);

/// Process-wide default worker count for `parallelFor` (0 restores the
/// SV_THREADS / hardware default). Takes effect immediately; if the shared
/// pool is already built, a value above its size is capped to it.
void configureThreads(usize threads);

/// The worker count a `parallelFor(…, threads)` call would resolve to,
/// before capping by the pool size: per-call argument, then
/// configureThreads, then SV_THREADS, then hardware_concurrency.
[[nodiscard]] usize effectiveThreadCount(usize threads = 0);

/// Run `body(i)` for i in [0, n) on the shared pool with dynamic chunking.
/// The calling thread participates as one of the workers and each call has
/// its own completion state, so concurrent and *nested* calls are safe:
/// helper tasks are cancellable (a helper that arrives after the loop
/// drained just returns), so the caller never depends on pool capacity for
/// progress. Runs serially when n < 2 or one worker is resolved. The first
/// exception thrown by `body` is rethrown after the loop completes; the
/// rest are counted via noteSuppressedErrors().
void parallelFor(usize n, const std::function<void(usize)> &body, usize threads = 0);

/// Parallel map over an index range producing a vector of results. `f` must
/// be safe to call concurrently; results land at their own index, so no
/// synchronisation of the output is required.
template <typename F> [[nodiscard]] auto parallelMap(usize n, F &&f, usize threads = 0) {
  using R = std::invoke_result_t<F, usize>;
  std::vector<R> out(n);
  parallelFor(
      n, [&](usize i) { out[i] = f(i); }, threads);
  return out;
}

} // namespace sv
