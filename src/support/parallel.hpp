// A work-stealing-free but cache-friendly thread pool plus parallel_for /
// parallel_map helpers. The pairwise TED computations over the cartesian
// product of models (Section V-A) are embarrassingly parallel and dominated
// by a few large pairs, so we use dynamic chunking (atomic fetch-add over
// blocks) rather than static partitioning.
//
// `parallelFor` routes through one process-wide, lazily-constructed pool —
// spawning and joining fresh threads on every `buildMatrix`/`indexApp` call
// was measurable on small matrices. The pool size comes from, in order of
// precedence: the per-call `threads` argument, `configureThreads` (the
// `svale --threads` flag), the `SV_THREADS` environment variable, and
// hardware_concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/common.hpp"

namespace sv {

/// Fixed-size thread pool. Tasks are void() closures; exceptions thrown by a
/// task are captured and rethrown from wait().
class ThreadPool {
public:
  /// `threads` == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue a task; safe from any thread.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished; rethrows the first task
  /// exception, if any. Don't mix with concurrent `parallelFor` callers on
  /// the shared pool — it waits for *all* tasks, not just yours.
  void wait();

  [[nodiscard]] usize threadCount() const { return workers_.size(); }

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  usize pending_ = 0; // queued + running
  bool stopping_ = false;
  std::exception_ptr firstError_;
};

/// Worker-count resolution used by the shared pool, exposed pure for tests:
/// a nonzero `explicitThreads` wins, else a positive integer in `envValue`
/// (the content of SV_THREADS; nullptr / garbage / "0" are ignored), else
/// `hardware` (floored at 1).
[[nodiscard]] usize resolveThreadCount(usize explicitThreads, const char *envValue, usize hardware);

/// Process-wide default worker count for `parallelFor` (0 restores the
/// SV_THREADS / hardware default). Takes effect immediately; if the shared
/// pool is already built, a value above its size is capped to it.
void configureThreads(usize threads);

/// The process-wide pool behind `parallelFor`, built on first use. Exposed
/// for tests and for callers that want to submit long-lived work directly.
[[nodiscard]] ThreadPool &sharedPool();

/// Run `body(i)` for i in [0, n) on the shared pool with dynamic chunking.
/// The calling thread participates as one of the workers, and each call has
/// its own completion latch, so concurrent calls from different threads are
/// safe. Falls back to a serial loop when n < 2, when one worker is
/// resolved, or when already running inside a pool worker (a nested call
/// would deadlock waiting for the slots its own ancestors occupy). The
/// first exception thrown by `body` is rethrown after the loop completes.
void parallelFor(usize n, const std::function<void(usize)> &body, usize threads = 0);

/// Parallel map over an index range producing a vector of results. `f` must
/// be safe to call concurrently; results land at their own index, so no
/// synchronisation of the output is required.
template <typename F> [[nodiscard]] auto parallelMap(usize n, F &&f, usize threads = 0) {
  using R = std::invoke_result_t<F, usize>;
  std::vector<R> out(n);
  parallelFor(
      n, [&](usize i) { out[i] = f(i); }, threads);
  return out;
}

} // namespace sv
