// A work-stealing-free but cache-friendly thread pool plus parallel_for /
// parallel_map helpers. The pairwise TED computations over the cartesian
// product of models (Section V-A) are embarrassingly parallel and dominated
// by a few large pairs, so we use dynamic chunking (atomic fetch-add over
// blocks) rather than static partitioning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/common.hpp"

namespace sv {

/// Fixed-size thread pool. Tasks are void() closures; exceptions thrown by a
/// task are captured and rethrown from wait().
class ThreadPool {
public:
  /// `threads` == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue a task; safe from any thread.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished; rethrows the first task
  /// exception, if any.
  void wait();

  [[nodiscard]] usize threadCount() const { return workers_.size(); }

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  usize pending_ = 0; // queued + running
  bool stopping_ = false;
  std::exception_ptr firstError_;
};

/// Run `body(i)` for i in [0, n) on a private pool with dynamic chunking.
/// Falls back to a serial loop when n is small or `threads` == 1.
void parallelFor(usize n, const std::function<void(usize)> &body, usize threads = 0);

/// Parallel map over an index range producing a vector of results. `f` must
/// be safe to call concurrently; results land at their own index, so no
/// synchronisation of the output is required.
template <typename F> [[nodiscard]] auto parallelMap(usize n, F &&f, usize threads = 0) {
  using R = std::invoke_result_t<F, usize>;
  std::vector<R> out(n);
  parallelFor(
      n, [&](usize i) { out[i] = f(i); }, threads);
  return out;
}

} // namespace sv
