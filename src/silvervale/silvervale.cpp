#include "silvervale/silvervale.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "ir/cost.hpp"
#include "ir/range.hpp"
#include "lint/depslint.hpp"
#include "lint/irlint.hpp"
#include "lint/rangelint.hpp"
#include "support/parallel.hpp"
#include "support/pipeline.hpp"
#include "tree/tedengine.hpp"

namespace sv::silvervale {

const db::CodebaseDb &IndexedApp::model(const std::string &name) const {
  for (const auto &m : models)
    if (m.model == name) return m;
  internalError("indexed app " + app + " has no model '" + name + "'");
}

std::vector<std::string> IndexedApp::modelNames() const {
  std::vector<std::string> out;
  for (const auto &m : models) out.push_back(m.model);
  return out;
}

lint::Report lintCodebase(const db::Codebase &codebase, const LintOptions &options) {
  lint::Report report;
  report.app = codebase.app;
  report.model = codebase.model;

  // parse → lint as pipeline stages: unit B parses while unit A is still in
  // the (much heavier) lower+lint stage. Report order is input order.
  std::vector<const db::CompileCommand *> cmds;
  for (const auto &cmd : codebase.commands) cmds.push_back(&cmd);
  Pipeline<const db::CompileCommand *, db::ParsedUnit, lint::UnitReport> pipe("lint-units");
  pipe.stage<0>("parse", [&codebase](const db::CompileCommand *&&cmd, usize) {
    return db::parseUnit(codebase, *cmd);
  });
  pipe.stage<1>("lint", [&options](db::ParsedUnit &&parsed, usize) {
    lint::UnitReport unit;
    unit.file = parsed.file;
    unit.diags = lint::run(parsed.tu);
    if (options.ir || options.deps || options.range) {
      ir::LowerOptions lowOpts;
      lowOpts.model = parsed.model;
      const auto module = ir::lower(parsed.tu, lowOpts);
      if (options.ir) {
        const auto irDiags = lint::runIr(module);
        unit.diags.insert(unit.diags.end(), irDiags.begin(), irDiags.end());
      }
      if (options.deps) {
        const auto depDiags = lint::runDeps(module, {.unit = &parsed.tu});
        unit.diags.insert(unit.diags.end(), depDiags.begin(), depDiags.end());
      }
      if (options.range) {
        const auto rangeDiags = lint::runRange(module);
        unit.diags.insert(unit.diags.end(), rangeDiags.begin(), rangeDiags.end());
      }
    }
    return unit;
  });
  PipeOptions pipeOptions;
  pipeOptions.mode = options.mode;
  pipeOptions.threads = options.threads;
  report.units = pipe.run(std::move(cmds), pipeOptions);
  return report;
}

DepsReport depsCodebase(const db::Codebase &codebase, ExecMode mode) {
  DepsReport report;
  report.app = codebase.app;
  report.model = codebase.model;
  std::vector<const db::CompileCommand *> cmds;
  for (const auto &cmd : codebase.commands) cmds.push_back(&cmd);
  Pipeline<const db::CompileCommand *, db::LoweredUnit, DepsUnit> pipe("deps-units");
  pipe.stage<0>("lower", [&codebase](const db::CompileCommand *&&cmd, usize) {
    return db::lowerParsed(db::parseUnit(codebase, *cmd));
  });
  pipe.stage<1>("analyze", [](db::LoweredUnit &&lowered, usize) {
    DepsUnit unit;
    unit.file = lowered.file;
    // The whole-codebase report is the expensive path anyway, so it runs
    // under the interprocedural value ranges for the sharper verdicts.
    const auto ranges = ir::analyzeModuleRanges(lowered.module);
    unit.deps = ir::analyzeModule(lowered.module, &ranges);
    return unit;
  });
  PipeOptions pipeOptions;
  pipeOptions.mode = mode;
  report.units = pipe.run(std::move(cmds), pipeOptions);
  return report;
}

usize DepsReport::loopCount() const {
  usize n = 0;
  for (const auto &u : units)
    for (const auto &fd : u.deps.functions) n += fd.loops.size();
  return n;
}

usize DepsReport::provablyParallelCount() const {
  usize n = 0;
  for (const auto &u : units)
    for (const auto &fd : u.deps.functions)
      for (const auto &L : fd.loops)
        if (L.provablyParallel) ++n;
  return n;
}

std::string DepsReport::renderText() const {
  std::string out = app + "/" + model + ": " + std::to_string(loopCount()) +
                    " loop(s), " + std::to_string(provablyParallelCount()) +
                    " provably parallel\n";
  for (const auto &u : units) {
    bool any = false;
    for (const auto &fd : u.deps.functions) any = any || !fd.loops.empty();
    if (!any) continue;
    out += u.file + "\n";
    for (const auto &fd : u.deps.functions) {
      if (fd.loops.empty()) continue;
      out += "  " + fd.function + "\n";
      for (const auto &L : fd.loops) {
        out += "    ";
        for (u32 d = 0; d < L.depth; ++d) out += "  ";
        out += "line " + std::to_string(L.line);
        if (!L.inductionName.empty()) {
          out += ": " + L.inductionName + " (step " + std::to_string(L.step);
          if (L.tripCount) out += ", trip " + std::to_string(*L.tripCount);
          out += ")";
        } else {
          out += ": no affine induction";
        }
        if (L.provablyParallel) out += " [provably parallel]";
        else if (!L.analyzable) out += " [not analyzable]";
        out += "\n";
        for (const auto &dep : L.deps) {
          out += "      ";
          for (u32 d = 0; d < L.depth; ++d) out += "  ";
          out += std::string(dep.proven ? "" : "assumed ") + ir::name(dep.kind) +
                 " dep on '" + dep.array + "'" + (dep.carried ? " carried" : "");
          if (dep.distance) out += " distance " + std::to_string(*dep.distance);
          out += std::string(" direction ") + ir::name(dep.direction) + "\n";
        }
        for (const auto &s : L.scalars) {
          if (s.cls == ir::ScalarClass::Induction) continue;
          out += "      ";
          for (u32 d = 0; d < L.depth; ++d) out += "  ";
          out += "scalar '" + s.display + "' " + ir::name(s.cls);
          if (!s.op.empty()) out += "(" + s.op + ")";
          if (s.shared) out += " shared";
          out += "\n";
        }
      }
    }
  }
  return out;
}

json::Value DepsReport::toJson() const {
  json::Object root;
  root.emplace("app", app);
  root.emplace("model", model);
  root.emplace("loops", loopCount());
  root.emplace("provablyParallel", provablyParallelCount());
  json::Array unitArr;
  for (const auto &u : units) {
    json::Object uo;
    uo.emplace("file", u.file);
    json::Array fnArr;
    for (const auto &fd : u.deps.functions) {
      if (fd.loops.empty()) continue;
      json::Object fo;
      fo.emplace("function", fd.function);
      json::Array loopArr;
      for (const auto &L : fd.loops) {
        json::Object lo;
        lo.emplace("line", static_cast<i64>(L.line));
        lo.emplace("depth", static_cast<i64>(L.depth));
        lo.emplace("induction", L.inductionName);
        lo.emplace("affine", L.affine);
        lo.emplace("step", L.step);
        if (L.tripCount) lo.emplace("trip", *L.tripCount);
        lo.emplace("analyzable", L.analyzable);
        lo.emplace("provablyParallel", L.provablyParallel);
        json::Array depArr;
        for (const auto &dep : L.deps) {
          json::Object dobj;
          dobj.emplace("array", dep.array);
          dobj.emplace("kind", ir::name(dep.kind));
          dobj.emplace("carried", dep.carried);
          dobj.emplace("proven", dep.proven);
          if (dep.distance) dobj.emplace("distance", *dep.distance);
          dobj.emplace("direction", ir::name(dep.direction));
          depArr.emplace_back(std::move(dobj));
        }
        lo.emplace("dependences", std::move(depArr));
        json::Array scArr;
        for (const auto &s : L.scalars) {
          json::Object sobj;
          sobj.emplace("name", s.display);
          sobj.emplace("class", ir::name(s.cls));
          if (!s.op.empty()) sobj.emplace("op", s.op);
          sobj.emplace("shared", s.shared);
          scArr.emplace_back(std::move(sobj));
        }
        lo.emplace("scalars", std::move(scArr));
        loopArr.emplace_back(std::move(lo));
      }
      fo.emplace("loops", std::move(loopArr));
      fnArr.emplace_back(std::move(fo));
    }
    uo.emplace("functions", std::move(fnArr));
    unitArr.emplace_back(std::move(uo));
  }
  root.emplace("units", std::move(unitArr));
  return json::Value(std::move(root));
}

RangeReport rangeCodebase(const db::Codebase &codebase, ExecMode mode) {
  RangeReport report;
  report.app = codebase.app;
  report.model = codebase.model;
  std::vector<const db::CompileCommand *> cmds;
  for (const auto &cmd : codebase.commands) cmds.push_back(&cmd);
  Pipeline<const db::CompileCommand *, db::LoweredUnit, RangeUnit> pipe("range-units");
  pipe.stage<0>("lower", [&codebase](const db::CompileCommand *&&cmd, usize) {
    return db::lowerParsed(db::parseUnit(codebase, *cmd));
  });
  pipe.stage<1>("analyze", [](db::LoweredUnit &&lowered, usize) {
    RangeUnit unit;
    unit.file = lowered.file;
    const auto mr = ir::analyzeModuleRanges(lowered.module);
    for (const auto &fn : lowered.module.functions) {
      if (fn.role == ir::FunctionRole::Runtime) continue;
      const auto *fr = mr.rangesOf(fn.name);
      if (!fr) continue;
      RangeFunction rf;
      rf.function = fn.name;
      for (const auto &a : fr->argRanges) rf.argRanges.push_back(a.str());
      rf.returnRange = fr->returnRange.str();
      rf.rounds = fr->rounds;
      unit.functions.push_back(std::move(rf));
    }
    unit.diags = lint::runRange(lowered.module);
    return unit;
  });
  PipeOptions pipeOptions;
  pipeOptions.mode = mode;
  report.units = pipe.run(std::move(cmds), pipeOptions);
  return report;
}

usize RangeReport::diagCount() const {
  usize n = 0;
  for (const auto &u : units) n += u.diags.size();
  return n;
}

std::string RangeReport::renderText() const {
  std::string out = app + "/" + model + ": " + std::to_string(diagCount()) +
                    " range finding(s)\n";
  for (const auto &u : units) {
    if (u.functions.empty() && u.diags.empty()) continue;
    out += u.file + "\n";
    for (const auto &f : u.functions) {
      out += "  " + f.function + "(";
      for (usize i = 0; i < f.argRanges.size(); ++i) {
        if (i) out += ", ";
        out += f.argRanges[i];
      }
      out += ") -> " + f.returnRange + " (rounds " + std::to_string(f.rounds) + ")\n";
    }
    for (const auto &d : u.diags) {
      out += "  line " + std::to_string(d.loc.line) + ": " +
             std::string(lint::name(d.severity)) + " [" +
             std::string(lint::name(d.check)) + "] " + d.message + "\n";
    }
  }
  return out;
}

json::Value RangeReport::toJson() const {
  json::Object root;
  root.emplace("app", app);
  root.emplace("model", model);
  root.emplace("findings", diagCount());
  json::Array unitArr;
  for (const auto &u : units) {
    json::Object uo;
    uo.emplace("file", u.file);
    json::Array fnArr;
    for (const auto &f : u.functions) {
      json::Object fo;
      fo.emplace("function", f.function);
      json::Array args;
      for (const auto &a : f.argRanges) args.emplace_back(a);
      fo.emplace("args", std::move(args));
      fo.emplace("return", f.returnRange);
      fo.emplace("rounds", f.rounds);
      fnArr.emplace_back(std::move(fo));
    }
    uo.emplace("functions", std::move(fnArr));
    json::Array diagArr;
    for (const auto &d : u.diags) {
      json::Object dobj;
      dobj.emplace("check", lint::name(d.check));
      dobj.emplace("severity", lint::name(d.severity));
      dobj.emplace("line", static_cast<i64>(d.loc.line));
      dobj.emplace("symbol", d.symbol);
      dobj.emplace("function", d.directive);
      dobj.emplace("message", d.message);
      diagArr.emplace_back(std::move(dobj));
    }
    uo.emplace("diagnostics", std::move(diagArr));
    unitArr.emplace_back(std::move(uo));
  }
  root.emplace("units", std::move(unitArr));
  return json::Value(std::move(root));
}

namespace {

/// Materialise the ports and index them. Streaming routes every port
/// through ONE db::indexBatch call: the units of every port become a
/// single item stream through the shared frontend→trees→lower→sign
/// pipeline, so no port-level barrier remains and a slow port's tail unit
/// never idles the workers. Barrier replays the classic schedule this
/// replaced — parallelFor at PORT granularity, each port's units and
/// stages strictly serial inside — which is also the regression baseline
/// bench/pipeline_bench.cpp gates against. Outputs are byte-identical.
std::vector<db::CodebaseDb> indexPorts(const std::vector<std::pair<std::string, std::string>> &jobs,
                                       const IndexAppOptions &options) {
  std::vector<db::Codebase> codebases;
  codebases.reserve(jobs.size());
  for (const auto &[app, model] : jobs) codebases.push_back(corpus::make(app, model));
  db::IndexOptions idx;
  idx.runCoverage = options.coverage;
  idx.mode = options.mode;
  idx.threads = options.threads;

  std::vector<db::CodebaseDb> out;
  if (options.mode == ExecMode::Barrier) {
    idx.threads = 1; // the classic schedule: all parallelism at port level
    out.resize(codebases.size());
    parallelFor(
        codebases.size(),
        [&](usize i) { out[i] = db::indexBatch({&codebases[i]}, idx).front().db; },
        options.threads);
    return out;
  }

  std::vector<const db::Codebase *> ptrs;
  for (const auto &cb : codebases) ptrs.push_back(&cb);
  auto results = db::indexBatch(ptrs, idx);
  out.reserve(results.size());
  for (auto &r : results) out.push_back(std::move(r.db));
  return out;
}

} // namespace

IndexedApp indexApp(const std::string &app, const IndexAppOptions &options) {
  IndexedApp out;
  out.app = app;
  const auto names = options.models.empty() ? corpus::modelsOf(app) : options.models;
  std::vector<std::pair<std::string, std::string>> jobs;
  for (const auto &name : names) jobs.emplace_back(app, name);
  out.models = indexPorts(jobs, options);
  return out;
}

std::vector<CorpusPort> indexAllPorts(const IndexAppOptions &options) {
  std::vector<std::pair<std::string, std::string>> jobs;
  for (const auto &app : corpus::appNames())
    for (const auto &model : corpus::modelsOf(app)) jobs.emplace_back(app, model);

  auto dbs = indexPorts(jobs, options);
  std::vector<CorpusPort> out(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    out[i].label = jobs[i].first + "/" + jobs[i].second;
    out[i].db = std::move(dbs[i]);
  }
  return out;
}

namespace {

/// dmaxSym of diverge(a, b, ...) computed from the persisted signatures
/// alone (matched pairs contribute |T1| + |T2|, unmatched their size) — the
/// normaliser is needed *before* the bounded evaluation to turn a
/// normalised radius into a raw-distance cutoff. Tree metrics only.
u64 symBoundRaw(const db::CodebaseDb &a, const db::CodebaseDb &b, metrics::Metric metric,
                metrics::Variant variant) {
  u64 s = 0;
  for (const auto &[u1, u2] : metrics::matchUnits(a, b)) {
    if (u1) s += metrics::metricSignature(*u1, metric, variant).n;
    if (u2) s += metrics::metricSignature(*u2, metric, variant).n;
  }
  return s;
}

/// The shared matrix builder behind divergenceMatrix (radius = 0, exact)
/// and portMatrix (radius-capped filter-and-refine). Entries are
/// max(d(a,b), d(b,a)) normalised; with radius > 0, a direction whose
/// normalised divergence provably reaches the radius caps the whole entry
/// at exactly `radius` (skipping the reverse direction — the max is
/// already determined).
analysis::DistanceMatrix boundedMatrix(std::vector<std::string> labels,
                                       const std::vector<const db::CodebaseDb *> &dbs,
                                       metrics::Metric metric, metrics::Variant variant,
                                       const tree::TedOptions &ted, double radius,
                                       metrics::QueryStats *stats, ExecMode mode) {
  analysis::DistanceMatrix m;
  m.labels = std::move(labels);
  const usize n = dbs.size();
  m.values.assign(n * n, 0.0);

  const bool filter =
      radius > 0 && metrics::isTreeMetric(metric) && !variant.coverage;

  std::vector<std::pair<usize, usize>> pairs;
  for (usize i = 0; i < n; ++i)
    for (usize j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  std::vector<double> results(pairs.size());
  std::atomic<usize> prunedByBound{0}, prunedByCutoff{0}, exact{0}, candidates{0};

  // A directed evaluation: exact when not filtering, else bounded with the
  // radius converted to a raw cutoff via this direction's dmaxSym. Returns
  // the normalised divergence, or `radius` exactly when pruned.
  const auto directed = [&](usize from, usize to) {
    if (!filter) {
      const auto d = metrics::diverge(*dbs[from], *dbs[to], metric, variant, ted);
      const double norm = d.normalised();
      return radius > 0 ? std::min(norm, radius) : norm;
    }
    candidates.fetch_add(1, std::memory_order_relaxed);
    const u64 dmax = symBoundRaw(*dbs[from], *dbs[to], metric, variant);
    // Integer distances: d >= radius*dmax  <=>  d >= ceil(radius*dmax), so
    // pruning at this cutoff is exactly "normalised >= radius".
    const u64 cut = static_cast<u64>(std::ceil(radius * static_cast<double>(dmax)));
    const auto bd = metrics::divergeBounded(*dbs[from], *dbs[to], metric, variant, ted, {}, cut);
    switch (bd.outcome) {
    case metrics::FilterOutcome::Exact: exact.fetch_add(1, std::memory_order_relaxed); break;
    case metrics::FilterOutcome::PrunedByBound:
      prunedByBound.fetch_add(1, std::memory_order_relaxed);
      break;
    case metrics::FilterOutcome::PrunedByCutoff:
      prunedByCutoff.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    return bd.outcome == metrics::FilterOutcome::Exact ? bd.divergence.normalised() : radius;
  };

  // One full entry: both directions, max, radius-capping. With the engine
  // on, dij computes the unit-pair TEDs and dji replays them from the
  // symmetric pair memo; only the accounting differs.
  const auto pairBody = [&](usize p) {
    const auto [i, j] = pairs[p];
    const double dij = directed(i, j);
    if (filter && dij >= radius) {
      results[p] = radius; // the max over directions is already decided
      return;
    }
    results[p] = std::max(dij, directed(j, i));
  };

  // The exact tree-metric path through the engine can stream at unit-pair
  // granularity: every matched unit-pair TED becomes its own task warming
  // the symmetric pair memo, and a pair finalises (cheap memo replay) the
  // moment its last TED lands — no pair ever waits behind an unrelated
  // slow pair's whole entry. Arithmetic is unchanged, so the matrix is
  // byte-identical to the barrier arm.
  const bool streamUnits = mode == ExecMode::Streaming && !filter &&
                           metrics::isTreeMetric(metric) && !variant.coverage && ted.useCache;
  if (mode == ExecMode::Barrier) {
    parallelFor(pairs.size(), pairBody);
  } else if (!streamUnits) {
    PipeOptions poolOptions;
    poolOptions.mode = ExecMode::Streaming;
    TaskPool pool("matrix-pairs");
    pool.run(pairs.size(), pairBody, poolOptions);
  } else {
    struct TedItem {
      usize pair = 0;
      const tree::Tree *t1 = nullptr;
      const tree::Tree *t2 = nullptr;
    };
    std::vector<TedItem> items;
    std::vector<usize> matchedTrees(pairs.size(), 0);
    for (usize p = 0; p < pairs.size(); ++p) {
      const auto [i, j] = pairs[p];
      for (const auto &[u1, u2] : metrics::matchUnits(*dbs[i], *dbs[j])) {
        if (!u1 || !u2) continue;
        items.push_back({p, &metrics::metricTree(*u1, metric, variant),
                         &metrics::metricTree(*u2, metric, variant)});
        ++matchedTrees[p];
      }
    }
    std::vector<usize> unmatched; // pairs with no tree pair still need an entry
    for (usize p = 0; p < pairs.size(); ++p)
      if (matchedTrees[p] == 0) unmatched.push_back(p);
    std::vector<std::atomic<usize>> remaining(pairs.size());
    for (usize p = 0; p < pairs.size(); ++p) remaining[p].store(matchedTrees[p]);

    PipeOptions poolOptions;
    poolOptions.mode = ExecMode::Streaming;
    TaskPool pool("matrix-pairs");
    pool.run(items.size() + unmatched.size(), [&](usize k) {
      if (k < items.size()) {
        const auto &item = items[k];
        (void)tree::tedDispatch(*item.t1, *item.t2, ted); // warm the pair memo
        if (remaining[item.pair].fetch_sub(1) == 1) pairBody(item.pair);
      } else {
        pairBody(unmatched[k - items.size()]);
      }
    }, poolOptions);
  }
  for (usize p = 0; p < pairs.size(); ++p)
    m.set(pairs[p].first, pairs[p].second, results[p]);

  if (stats) {
    stats->candidates += candidates.load();
    stats->prunedByBound += prunedByBound.load();
    stats->prunedByCutoff += prunedByCutoff.load();
    stats->exact += exact.load();
  }
  return m;
}

} // namespace

analysis::DistanceMatrix divergenceMatrix(const IndexedApp &app, metrics::Metric metric,
                                          metrics::Variant variant,
                                          const tree::TedOptions &ted, ExecMode mode) {
  std::vector<const db::CodebaseDb *> dbs;
  for (const auto &m : app.models) dbs.push_back(&m);
  return boundedMatrix(app.modelNames(), dbs, metric, variant, ted, /*radius=*/0, nullptr, mode);
}

analysis::DistanceMatrix portMatrix(const std::vector<CorpusPort> &ports, metrics::Metric metric,
                                    metrics::Variant variant, const tree::TedOptions &ted,
                                    double radius, metrics::QueryStats *stats, ExecMode mode) {
  std::vector<std::string> labels;
  std::vector<const db::CodebaseDb *> dbs;
  for (const auto &p : ports) {
    labels.push_back(p.label);
    dbs.push_back(&p.db);
  }
  return boundedMatrix(std::move(labels), dbs, metric, variant, ted, radius, stats, mode);
}

analysis::DistanceMatrix absoluteDifferenceMatrix(const IndexedApp &app, metrics::Metric metric,
                                                  metrics::Variant variant) {
  std::vector<double> values;
  for (const auto &m : app.models)
    values.push_back(static_cast<double>(metrics::absolute(m, metric, variant)));
  return analysis::buildMatrix(app.modelNames(), [&](usize i, usize j) {
    return std::abs(values[i] - values[j]);
  });
}

std::vector<perf::KernelWork> paperDeck(const std::string &app) {
  // Measure per-kernel mixes from the serial port's IR.
  const auto serialName = app == "babelstream-fortran" ? "sequential" : "serial";
  const auto cb = corpus::make(app, serialName);

  std::vector<perf::KernelWork> kernels;
  for (const auto &cmd : cb.commands) {
    const auto fileId = cb.sources.idOf(cmd.file);
    SV_CHECK(fileId.has_value(), "paperDeck: missing file");
    // Reuse the DB pipeline's lowering through a fresh index of one unit.
  }
  // Lower via linkForExecution (whole program) and pick loop-bearing user
  // functions as kernels.
  const auto merged = db::linkForExecution(cb);
  const auto module = ir::lower(merged, {});

  u64 iterations = 0;
  if (app == "babelstream" || app == "babelstream-fortran") {
    iterations = u64{1} << 25;              // 2^25 elements (the default deck)
    iterations *= 100;                      // 100 timesteps
  } else if (app == "tealeaf") {
    iterations = u64{4000} * 4000;          // BM5 grid
    iterations *= 4 * 30;                   // 4 steps x ~30 CG iterations
  } else if (app == "cloverleaf") {
    iterations = u64{3840} * 3840;          // BM64 grid
    iterations *= 300;                      // 300 iterations (Section VI)
  } else if (app == "minibude") {
    iterations = u64{65536} * 8 * 16;       // poses x ligand x protein atoms
  } else {
    internalError("paperDeck: unknown app " + app);
  }

  const auto isHostOnly = [](const std::string &name) {
    // Setup and validation routines run on the host outside the timed
    // region of every real miniapp; they are not kernels.
    for (const auto *tag : {"main", "check", "init", "summary", "residual", "deck"})
      if (name.find(tag) != std::string::npos) return true;
    return false;
  };
  for (const auto &f : module.functions) {
    if (f.role != ir::FunctionRole::User) continue;
    const auto mix = ir::functionMix(f);
    // Kernels: functions that loop over data (branches) and touch memory.
    if (mix.branches == 0 || mix.bytes() == 0) continue;
    if (isHostOnly(f.name)) continue;
    perf::KernelWork k;
    k.name = f.name;
    k.mixPerIter = mix;
    k.iterations = iterations;
    kernels.push_back(std::move(k));
  }
  SV_CHECK(!kernels.empty(), "paperDeck: no kernels found for " + app);
  return kernels;
}

std::vector<std::pair<std::string, ir::Model>> perfModels(const IndexedApp &app) {
  std::vector<std::pair<std::string, ir::Model>> out;
  for (const auto &m : app.models) out.emplace_back(m.model, m.modelKind);
  return out;
}

std::vector<perf::NavPoint> navigationPoints(const IndexedApp &app) {
  const auto serialName = app.app == "babelstream-fortran" ? "sequential" : "serial";
  const auto &serial = app.model(serialName);
  const auto kernels = paperDeck(app.app);
  const auto perfs = perf::simulateAll(perfModels(app), kernels);

  std::vector<perf::NavPoint> points;
  for (usize i = 0; i < app.models.size(); ++i) {
    const auto &m = app.models[i];
    if (m.model == serialName) continue;
    perf::NavPoint p;
    p.model = m.model;
    p.phiValue = perf::phi(perfs[i].efficiency);
    // Routed through the TED engine: the serial baseline's views are built
    // once and reused across every port's Tsem/Tsrc divergence.
    p.tsem = metrics::diverge(serial, m, metrics::Metric::Tsem).normalised();
    p.tsrc = metrics::diverge(serial, m, metrics::Metric::Tsrc).normalised();
    points.push_back(std::move(p));
  }
  return points;
}

} // namespace sv::silvervale
