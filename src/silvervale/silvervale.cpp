#include "silvervale/silvervale.hpp"

#include <algorithm>

#include "ir/cost.hpp"
#include "lint/irlint.hpp"
#include "support/parallel.hpp"

namespace sv::silvervale {

const db::CodebaseDb &IndexedApp::model(const std::string &name) const {
  for (const auto &m : models)
    if (m.model == name) return m;
  internalError("indexed app " + app + " has no model '" + name + "'");
}

std::vector<std::string> IndexedApp::modelNames() const {
  std::vector<std::string> out;
  for (const auto &m : models) out.push_back(m.model);
  return out;
}

lint::Report lintCodebase(const db::Codebase &codebase, const LintOptions &options) {
  lint::Report report;
  report.app = codebase.app;
  report.model = codebase.model;
  for (auto &parsed : db::parseUnits(codebase)) {
    lint::UnitReport unit;
    unit.file = parsed.file;
    unit.diags = lint::run(parsed.tu);
    if (options.ir) {
      ir::LowerOptions lowOpts;
      lowOpts.model = parsed.model;
      const auto irDiags = lint::runIr(ir::lower(parsed.tu, lowOpts));
      unit.diags.insert(unit.diags.end(), irDiags.begin(), irDiags.end());
    }
    report.units.push_back(std::move(unit));
  }
  return report;
}

IndexedApp indexApp(const std::string &app, const IndexAppOptions &options) {
  IndexedApp out;
  out.app = app;
  const auto names = options.models.empty() ? corpus::modelsOf(app) : options.models;
  out.models.resize(names.size());
  // Indexing a port is independent of every other port.
  parallelFor(names.size(), [&](usize i) {
    const auto cb = corpus::make(app, names[i]);
    db::IndexOptions idx;
    idx.runCoverage = options.coverage;
    out.models[i] = db::index(cb, idx).db;
  });
  return out;
}

analysis::DistanceMatrix divergenceMatrix(const IndexedApp &app, metrics::Metric metric,
                                          metrics::Variant variant,
                                          const tree::TedOptions &ted) {
  return analysis::buildMatrix(app.modelNames(), [&](usize i, usize j) {
    // With the engine on, dij computes the unit-pair TEDs and dji replays
    // them from the symmetric pair memo; only the accounting differs.
    const auto dij = metrics::diverge(app.models[i], app.models[j], metric, variant, ted);
    const auto dji = metrics::diverge(app.models[j], app.models[i], metric, variant, ted);
    return std::max(dij.normalised(), dji.normalised());
  });
}

analysis::DistanceMatrix absoluteDifferenceMatrix(const IndexedApp &app, metrics::Metric metric,
                                                  metrics::Variant variant) {
  std::vector<double> values;
  for (const auto &m : app.models)
    values.push_back(static_cast<double>(metrics::absolute(m, metric, variant)));
  return analysis::buildMatrix(app.modelNames(), [&](usize i, usize j) {
    return std::abs(values[i] - values[j]);
  });
}

std::vector<perf::KernelWork> paperDeck(const std::string &app) {
  // Measure per-kernel mixes from the serial port's IR.
  const auto serialName = app == "babelstream-fortran" ? "sequential" : "serial";
  const auto cb = corpus::make(app, serialName);

  std::vector<perf::KernelWork> kernels;
  for (const auto &cmd : cb.commands) {
    const auto fileId = cb.sources.idOf(cmd.file);
    SV_CHECK(fileId.has_value(), "paperDeck: missing file");
    // Reuse the DB pipeline's lowering through a fresh index of one unit.
  }
  // Lower via linkForExecution (whole program) and pick loop-bearing user
  // functions as kernels.
  const auto merged = db::linkForExecution(cb);
  const auto module = ir::lower(merged, {});

  u64 iterations = 0;
  if (app == "babelstream" || app == "babelstream-fortran") {
    iterations = u64{1} << 25;              // 2^25 elements (the default deck)
    iterations *= 100;                      // 100 timesteps
  } else if (app == "tealeaf") {
    iterations = u64{4000} * 4000;          // BM5 grid
    iterations *= 4 * 30;                   // 4 steps x ~30 CG iterations
  } else if (app == "cloverleaf") {
    iterations = u64{3840} * 3840;          // BM64 grid
    iterations *= 300;                      // 300 iterations (Section VI)
  } else if (app == "minibude") {
    iterations = u64{65536} * 8 * 16;       // poses x ligand x protein atoms
  } else {
    internalError("paperDeck: unknown app " + app);
  }

  const auto isHostOnly = [](const std::string &name) {
    // Setup and validation routines run on the host outside the timed
    // region of every real miniapp; they are not kernels.
    for (const auto *tag : {"main", "check", "init", "summary", "residual", "deck"})
      if (name.find(tag) != std::string::npos) return true;
    return false;
  };
  for (const auto &f : module.functions) {
    if (f.role != ir::FunctionRole::User) continue;
    const auto mix = ir::functionMix(f);
    // Kernels: functions that loop over data (branches) and touch memory.
    if (mix.branches == 0 || mix.bytes() == 0) continue;
    if (isHostOnly(f.name)) continue;
    perf::KernelWork k;
    k.name = f.name;
    k.mixPerIter = mix;
    k.iterations = iterations;
    kernels.push_back(std::move(k));
  }
  SV_CHECK(!kernels.empty(), "paperDeck: no kernels found for " + app);
  return kernels;
}

std::vector<std::pair<std::string, ir::Model>> perfModels(const IndexedApp &app) {
  std::vector<std::pair<std::string, ir::Model>> out;
  for (const auto &m : app.models) out.emplace_back(m.model, m.modelKind);
  return out;
}

std::vector<perf::NavPoint> navigationPoints(const IndexedApp &app) {
  const auto serialName = app.app == "babelstream-fortran" ? "sequential" : "serial";
  const auto &serial = app.model(serialName);
  const auto kernels = paperDeck(app.app);
  const auto perfs = perf::simulateAll(perfModels(app), kernels);

  std::vector<perf::NavPoint> points;
  for (usize i = 0; i < app.models.size(); ++i) {
    const auto &m = app.models[i];
    if (m.model == serialName) continue;
    perf::NavPoint p;
    p.model = m.model;
    p.phiValue = perf::phi(perfs[i].efficiency);
    // Routed through the TED engine: the serial baseline's views are built
    // once and reused across every port's Tsem/Tsrc divergence.
    p.tsem = metrics::diverge(serial, m, metrics::Metric::Tsem).normalised();
    p.tsrc = metrics::diverge(serial, m, metrics::Metric::Tsrc).normalised();
    points.push_back(std::move(p));
  }
  return points;
}

} // namespace sv::silvervale
