// SilverVale top-level API: the end-to-end workflow of Fig 2. A miniapp is
// indexed across all of its model ports (in parallel — the TED pairs
// dominate runtime), divergence matrices are computed over the cartesian
// product of models, and the perf simulator supplies the Φ side of the
// navigation charts.
#pragma once

#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "corpus/corpus.hpp"
#include "db/codebase.hpp"
#include "ir/deps.hpp"
#include "lint/lint.hpp"
#include "metrics/metrics.hpp"
#include "metrics/query.hpp"
#include "perf/perf.hpp"

namespace sv::silvervale {

/// A miniapp indexed across all its model ports.
struct IndexedApp {
  std::string app;
  std::vector<db::CodebaseDb> models;

  [[nodiscard]] const db::CodebaseDb &model(const std::string &name) const;
  [[nodiscard]] std::vector<std::string> modelNames() const;
};

struct IndexAppOptions {
  /// Run every port in the VM and store line coverage in its DB.
  bool coverage = false;
  /// Restrict to these models (empty = all registered ports).
  std::vector<std::string> models;
  /// Stage-pipeline schedule for the underlying db::indexBatch (streaming
  /// task graph vs classic phase barriers; byte-identical outputs).
  ExecMode mode = defaultExecMode();
  /// Worker count for the pipeline (0 = configured/SV_THREADS/hardware).
  usize threads = 0;
};

/// Index one corpus app across its ports. Throws on corpus errors (which
/// are bugs: the corpus must always compile and verify).
[[nodiscard]] IndexedApp indexApp(const std::string &app, const IndexAppOptions &options = {});

/// Pairwise normalised divergence matrix over all models of `app` under
/// `metric` — the input to the Fig 4/5/6 clusterings. Symmetrised as
/// max(d(a,b), d(b,a)) normalised. TED pairs route through the shared-view
/// engine by default (`ted.useCache`): views are built once per tree, the
/// d(a,b)/d(b,a) TED work is shared via the symmetric pair memo, and only
/// the asymmetric dmax/unmatched accounting runs twice. Pass
/// `ted.useCache = false` to force the uncached reference path (the
/// engine-off arm of bench/ted_bench.cpp).
[[nodiscard]] analysis::DistanceMatrix divergenceMatrix(const IndexedApp &app,
                                                        metrics::Metric metric,
                                                        metrics::Variant variant = {},
                                                        const tree::TedOptions &ted = {},
                                                        ExecMode mode = defaultExecMode());

/// One indexed port of the cross-app corpus, labelled "app/model".
struct CorpusPort {
  std::string label;
  db::CodebaseDb db;
};

/// Index every registered port of every corpus app (the 46 embedded ports),
/// in parallel. The flat list backs `svale cluster all` and the query-layer
/// benches, where candidates span apps rather than one app's models.
[[nodiscard]] std::vector<CorpusPort> indexAllPorts(const IndexAppOptions &options = {});

/// Symmetrised normalised divergence matrix over arbitrary ports, through
/// the filter-and-refine query layer. With `radius` == 0 every pair is
/// exact (the same values divergenceMatrix produces). With `radius` > 0
/// each direction runs metrics::divergeBounded with cutoff
/// ceil(radius * dmaxSym): pairs whose normalised divergence provably
/// reaches `radius` are capped at exactly `radius` (signature bounds prune
/// many without any DP), while every entry below it stays exact — which is
/// all k-medoids / complete-linkage need when clusters live below the
/// radius. `stats` (optional) accumulates filter effectiveness per
/// direction evaluated.
[[nodiscard]] analysis::DistanceMatrix portMatrix(const std::vector<CorpusPort> &ports,
                                                  metrics::Metric metric,
                                                  metrics::Variant variant = {},
                                                  const tree::TedOptions &ted = {},
                                                  double radius = 0,
                                                  metrics::QueryStats *stats = nullptr,
                                                  ExecMode mode = defaultExecMode());

/// For the SLOC/LLOC pseudo-clustering of Fig 5/6: absolute values per
/// model turned into |a - b| distances.
[[nodiscard]] analysis::DistanceMatrix absoluteDifferenceMatrix(const IndexedApp &app,
                                                                metrics::Metric metric,
                                                                metrics::Variant variant = {});

/// The benchmark decks of Section VI, as kernel workloads for the perf
/// simulator. Instruction mixes are measured from the *serial* port's IR;
/// trip counts follow the paper's decks (BabelStream 2^25 x 100, TeaLeaf
/// BM5, CloverLeaf BM64 at 300 iterations, miniBUDE 64k poses).
[[nodiscard]] std::vector<perf::KernelWork> paperDeck(const std::string &app);

/// Model list of an app as (displayName, ir::Model) pairs for simulateAll.
[[nodiscard]] std::vector<std::pair<std::string, ir::Model>>
perfModels(const IndexedApp &app);

/// Navigation-chart points (Fig 13/14): Φ over the Table III platforms
/// against normalised T_sem / T_src divergence from the serial port.
[[nodiscard]] std::vector<perf::NavPoint> navigationPoints(const IndexedApp &app);

struct LintOptions {
  /// Also lower each unit and run the IR-tier checks (lint::runIr): CFG +
  /// dataflow over the backend module — uninitialised use, dead stores,
  /// unreachable blocks, redundant/stale device transfers. Off by default:
  /// the AST tier alone needs no lowering.
  bool ir = false;
  /// Also run the dependence tier (lint::runDeps): loop-carried-race /
  /// missed-reduction / missed-privatization / provably-parallel verdicts
  /// from the subscript dependence tests over the lowered IR.
  bool deps = false;
  /// Also run the value-range tier (lint::runRange): out-of-bounds /
  /// division-by-zero / dead-branch / zero-trip-loop verdicts from the
  /// interprocedural interval analysis over the SSA overlay.
  bool range = false;
  /// parse→lint stage-pipeline schedule (streaming vs barrier; identical
  /// reports either way — unit order in the report is input order).
  ExecMode mode = defaultExecMode();
  /// Worker count for the pipeline (0 = configured default).
  usize threads = 0;
};

/// Run the linter over every translation unit of a codebase (frontend only
/// unless `options.ir` adds the lowering pass — never trees or the VM) and
/// aggregate the diagnostics into a renderable report. Backs `svale lint` /
/// `svale lint-dir` and the corpus-wide lint-clean regression tests.
[[nodiscard]] lint::Report lintCodebase(const db::Codebase &codebase,
                                        const LintOptions &options = {});

/// Per-loop dependence analysis of one port, for `svale deps <app> [model]`:
/// every unit lowered, every function's loop nests recovered, subscript
/// tests and scalar classification run (ir/deps.hpp). renderText shows one
/// indented line per loop with its verdict, dependences, and scalars.
struct DepsUnit {
  std::string file;
  ir::ModuleDeps deps;
};

struct DepsReport {
  std::string app;
  std::string model;
  std::vector<DepsUnit> units;

  [[nodiscard]] usize loopCount() const;
  [[nodiscard]] usize provablyParallelCount() const;
  [[nodiscard]] std::string renderText() const;
  [[nodiscard]] json::Value toJson() const;
};

[[nodiscard]] DepsReport depsCodebase(const db::Codebase &codebase,
                                      ExecMode mode = defaultExecMode());

/// Per-function value-range summary of one port, for `svale range <app>
/// [model]`: each unit lowered, the interprocedural analysis run, and every
/// non-runtime function reported with its argument ranges, return range,
/// and fixpoint round count (plus the tier's diagnostics for the unit).
struct RangeFunction {
  std::string function;
  std::vector<std::string> argRanges; ///< rendered intervals, by position
  std::string returnRange;            ///< rendered interval, "none" for void
  usize rounds = 0;                   ///< fixpoint rounds until convergence
};

struct RangeUnit {
  std::string file;
  std::vector<RangeFunction> functions;
  std::vector<lint::Diagnostic> diags; ///< lint::runRange findings
};

struct RangeReport {
  std::string app;
  std::string model;
  std::vector<RangeUnit> units;

  [[nodiscard]] usize diagCount() const;
  [[nodiscard]] std::string renderText() const;
  [[nodiscard]] json::Value toJson() const;
};

[[nodiscard]] RangeReport rangeCodebase(const db::Codebase &codebase,
                                        ExecMode mode = defaultExecMode());

} // namespace sv::silvervale
