#include "analysis/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace sv::analysis {

DistanceMatrix buildMatrix(std::vector<std::string> labels,
                           const std::function<double(usize, usize)> &distance) {
  DistanceMatrix m;
  m.labels = std::move(labels);
  const usize n = m.labels.size();
  m.values.assign(n * n, 0.0);
  // Upper-triangle pairs, computed in parallel: the TED pairs dominate the
  // whole workflow's runtime (Section VII), so this is the hot loop.
  std::vector<std::pair<usize, usize>> pairs;
  for (usize i = 0; i < n; ++i)
    for (usize j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  std::vector<double> results(pairs.size());
  parallelFor(pairs.size(), [&](usize k) {
    results[k] = distance(pairs[k].first, pairs[k].second);
  });
  for (usize k = 0; k < pairs.size(); ++k)
    m.set(pairs[k].first, pairs[k].second, results[k]);
  return m;
}

namespace {

double euclideanRows(const DistanceMatrix &m, usize a, usize b) {
  double acc = 0;
  for (usize k = 0; k < m.size(); ++k) {
    const double d = m.at(a, k) - m.at(b, k);
    acc += d * d;
  }
  return std::sqrt(acc);
}

} // namespace

std::vector<Merge> cluster(const DistanceMatrix &m, bool euclidean) {
  const usize n = m.size();
  std::vector<Merge> merges;
  if (n < 2) return merges;

  // Active cluster ids (leaves 0..n-1, merges n+i) and their member leaves.
  std::vector<usize> active;
  std::vector<std::vector<usize>> members;
  for (usize i = 0; i < n; ++i) {
    active.push_back(i);
    members.push_back({i});
  }

  // Base pairwise point distances.
  std::vector<double> pointDist(n * n, 0.0);
  for (usize i = 0; i < n; ++i)
    for (usize j = 0; j < n; ++j)
      pointDist[i * n + j] = euclidean ? euclideanRows(m, i, j) : m.at(i, j);

  const auto completeLinkage = [&](const std::vector<usize> &a, const std::vector<usize> &b) {
    double worst = 0;
    for (const usize x : a)
      for (const usize y : b) worst = std::max(worst, pointDist[x * n + y]);
    return worst;
  };

  while (active.size() > 1) {
    double best = std::numeric_limits<double>::infinity();
    usize bi = 0, bj = 1;
    for (usize i = 0; i < active.size(); ++i) {
      for (usize j = i + 1; j < active.size(); ++j) {
        const double d = completeLinkage(members[i], members[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    merges.push_back(Merge{active[bi], active[bj], best});
    // Merge bj into bi; new cluster id = n + merges.size() - 1.
    std::vector<usize> combined = members[bi];
    combined.insert(combined.end(), members[bj].begin(), members[bj].end());
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(bj));
    active[bi] = n + merges.size() - 1;
    members[bi] = std::move(combined);
  }
  return merges;
}

std::vector<usize> cutClusters(const std::vector<Merge> &merges, usize leafCount, usize k) {
  std::vector<usize> group(leafCount);
  for (usize i = 0; i < leafCount; ++i) group[i] = i;
  if (k >= leafCount || merges.empty()) return group;
  // Apply merges in order (ascending height for complete linkage) until
  // only k clusters remain. Union-find over leaves.
  std::vector<usize> parent(leafCount + merges.size());
  for (usize i = 0; i < parent.size(); ++i) parent[i] = i;
  const std::function<usize(usize)> find = [&](usize x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  const usize mergesToApply = leafCount - k;
  for (usize i = 0; i < mergesToApply && i < merges.size(); ++i) {
    const usize target = leafCount + i;
    parent[find(merges[i].left)] = target;
    parent[find(merges[i].right)] = target;
  }
  // Relabel roots compactly.
  std::vector<usize> rootIds;
  for (usize i = 0; i < leafCount; ++i) {
    const usize r = find(i);
    auto it = std::find(rootIds.begin(), rootIds.end(), r);
    if (it == rootIds.end()) {
      rootIds.push_back(r);
      group[i] = rootIds.size() - 1;
    } else {
      group[i] = static_cast<usize>(it - rootIds.begin());
    }
  }
  return group;
}

KMedoidsResult kMedoids(const DistanceMatrix &m, usize k) {
  KMedoidsResult out;
  const usize n = m.size();
  if (n == 0) return out;
  k = std::min(std::max<usize>(k, 1), n);

  // Per-member distance to its closest chosen medoid so far.
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  std::vector<bool> isMedoid(n, false);

  // BUILD: greedily add the medoid with the largest total cost reduction;
  // the first pick minimises total distance outright.
  for (usize round = 0; round < k; ++round) {
    double bestGain = -std::numeric_limits<double>::infinity();
    usize best = 0;
    for (usize c = 0; c < n; ++c) {
      if (isMedoid[c]) continue;
      double gain = 0;
      for (usize x = 0; x < n; ++x) {
        const double d = m.at(x, c);
        if (d < nearest[x]) gain += nearest[x] == std::numeric_limits<double>::infinity()
                                        ? -d // first round: minimise the plain sum
                                        : nearest[x] - d;
      }
      if (round == 0) {
        // With no medoids yet every nearest[] is infinite; compare sums.
        gain = 0;
        for (usize x = 0; x < n; ++x) gain -= m.at(x, c);
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = c;
      }
    }
    isMedoid[best] = true;
    out.medoids.push_back(best);
    for (usize x = 0; x < n; ++x) nearest[x] = std::min(nearest[x], m.at(x, best));
  }

  // SWAP: replace a medoid with a non-medoid while total cost improves.
  const auto totalCost = [&](const std::vector<usize> &medoids) {
    double cost = 0;
    for (usize x = 0; x < n; ++x) {
      double d = std::numeric_limits<double>::infinity();
      for (const usize c : medoids) d = std::min(d, m.at(x, c));
      cost += d;
    }
    return cost;
  };
  double cost = totalCost(out.medoids);
  bool improved = true;
  while (improved) {
    improved = false;
    for (usize mi = 0; mi < out.medoids.size() && !improved; ++mi) {
      for (usize c = 0; c < n && !improved; ++c) {
        if (isMedoid[c]) continue;
        auto candidate = out.medoids;
        candidate[mi] = c;
        const double swapped = totalCost(candidate);
        if (swapped + 1e-12 < cost) {
          isMedoid[out.medoids[mi]] = false;
          isMedoid[c] = true;
          out.medoids = std::move(candidate);
          cost = swapped;
          improved = true;
        }
      }
    }
  }

  std::sort(out.medoids.begin(), out.medoids.end());
  out.assignment.assign(n, 0);
  out.cost = 0;
  for (usize x = 0; x < n; ++x) {
    double best = std::numeric_limits<double>::infinity();
    for (usize mi = 0; mi < out.medoids.size(); ++mi) {
      const double d = m.at(x, out.medoids[mi]);
      if (d < best) {
        best = d;
        out.assignment[x] = mi;
      }
    }
    out.cost += best;
  }
  return out;
}

namespace {

struct DendroNode {
  std::string text; ///< rendered subtree lines
  usize width = 0;
};

std::string renderSubtree(usize id, usize leafCount, const std::vector<Merge> &merges,
                          const std::vector<std::string> &labels, usize depth) {
  const std::string indent(depth * 4, ' ');
  if (id < leafCount) return indent + "- " + labels[id] + "\n";
  const auto &mg = merges[id - leafCount];
  std::string out = indent + "+ [h=" + str::fmtDouble(mg.height, 3) + "]\n";
  out += renderSubtree(mg.left, leafCount, merges, labels, depth + 1);
  out += renderSubtree(mg.right, leafCount, merges, labels, depth + 1);
  return out;
}

std::string newickSubtree(usize id, usize leafCount, const std::vector<Merge> &merges,
                          const std::vector<std::string> &labels) {
  if (id < leafCount) return labels[id];
  const auto &mg = merges[id - leafCount];
  return "(" + newickSubtree(mg.left, leafCount, merges, labels) + "," +
         newickSubtree(mg.right, leafCount, merges, labels) + "):" +
         str::fmtDouble(mg.height, 3);
}

} // namespace

std::string renderDendrogram(const std::vector<Merge> &merges,
                             const std::vector<std::string> &labels) {
  if (labels.empty()) return "";
  if (merges.empty()) return "- " + labels[0] + "\n";
  return renderSubtree(labels.size() + merges.size() - 1, labels.size(), merges, labels, 0);
}

std::string toNewick(const std::vector<Merge> &merges, const std::vector<std::string> &labels) {
  if (labels.empty()) return ";";
  if (merges.empty()) return labels[0] + ";";
  return newickSubtree(labels.size() + merges.size() - 1, labels.size(), merges, labels) + ";";
}

std::string renderHeatmap(const std::vector<std::string> &rowLabels,
                          const std::vector<std::string> &colLabels,
                          const std::vector<std::vector<double>> &values) {
  // Shade ramp for [0, 1].
  static const char *kShades[] = {"  ", "░░", "▒▒", "▓▓", "██"};
  usize labelWidth = 0;
  for (const auto &l : rowLabels) labelWidth = std::max(labelWidth, l.size());

  std::string out;
  // Column header (first letter stack avoided: print rotated legend below).
  out += std::string(labelWidth + 2, ' ');
  for (usize c = 0; c < colLabels.size(); ++c)
    out += str::padRight(std::to_string(c), 2) + " ";
  out += "\n";
  for (usize r = 0; r < rowLabels.size(); ++r) {
    out += str::padRight(rowLabels[r], labelWidth) + "  ";
    for (usize c = 0; c < values[r].size(); ++c) {
      const double v = std::clamp(values[r][c], 0.0, 1.0);
      const usize shade = std::min<usize>(4, static_cast<usize>(v * 5.0));
      out += kShades[shade];
      out += " ";
    }
    // numeric row for precision
    out += "  ";
    for (usize c = 0; c < values[r].size(); ++c)
      out += str::fmtDouble(values[r][c], 2) + " ";
    out += "\n";
  }
  out += "legend:";
  for (usize c = 0; c < colLabels.size(); ++c)
    out += " " + std::to_string(c) + "=" + colLabels[c];
  out += "\n";
  return out;
}

} // namespace sv::analysis
