// Analysis layer: pairwise divergence matrices over the cartesian product
// of models (Section V-A), agglomerative hierarchical clustering with
// complete linkage and Euclidean point distance (the configuration Fig 4
// states), text dendrograms, and the ASCII heatmaps the benches print.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace sv::analysis {

/// A symmetric labelled distance matrix.
struct DistanceMatrix {
  std::vector<std::string> labels;
  std::vector<double> values; ///< row-major n*n

  [[nodiscard]] usize size() const { return labels.size(); }
  [[nodiscard]] double at(usize i, usize j) const { return values[i * size() + j]; }
  void set(usize i, usize j, double v) {
    values[i * size() + j] = v;
    values[j * size() + i] = v;
  }
};

/// Build a matrix by evaluating `distance(i, j)` for i < j, in parallel
/// (the diagonal is zero — the self-comparison sanity check of Section V-C
/// belongs to the caller). `distance` must be thread-safe.
[[nodiscard]] DistanceMatrix
buildMatrix(std::vector<std::string> labels,
            const std::function<double(usize, usize)> &distance);

/// One merge step of the clustering: nodes < n are leaves; others refer to
/// earlier merges (n + index).
struct Merge {
  usize left = 0;
  usize right = 0;
  double height = 0;
};

/// Agglomerative clustering with complete linkage. When the matrix rows are
/// treated as feature vectors (`euclidean` = true, Fig 4's configuration),
/// point distance is the Euclidean distance between rows; otherwise the
/// matrix entries are used as distances directly.
[[nodiscard]] std::vector<Merge> cluster(const DistanceMatrix &m, bool euclidean = true);

/// Flat clusters: cut the dendrogram into k groups; returns a group id per
/// leaf.
[[nodiscard]] std::vector<usize> cutClusters(const std::vector<Merge> &merges, usize leafCount,
                                             usize k);

/// Greedy k-medoids over the matrix entries as metric distances (PAM-style
/// BUILD + swap refinement): medoids are actual corpus members, so the
/// clustering works directly on the filter-and-refine divergence matrix —
/// no coordinates needed, and radius-capped entries only ever separate
/// points further. Deterministic: ties break on the lowest index.
struct KMedoidsResult {
  std::vector<usize> medoids;    ///< ascending member indices, one per cluster
  std::vector<usize> assignment; ///< per member: position into `medoids`
  double cost = 0;               ///< sum of member-to-medoid distances
};
[[nodiscard]] KMedoidsResult kMedoids(const DistanceMatrix &m, usize k);

/// Render the dendrogram as ASCII art (leaves on the left).
[[nodiscard]] std::string renderDendrogram(const std::vector<Merge> &merges,
                                           const std::vector<std::string> &labels);

/// Newick serialisation, convenient for tests and external tooling.
[[nodiscard]] std::string toNewick(const std::vector<Merge> &merges,
                                   const std::vector<std::string> &labels);

/// Render a heatmap of `matrix` (or any rectangular table) using unicode
/// shade blocks; values are expected in [0, 1].
[[nodiscard]] std::string renderHeatmap(const std::vector<std::string> &rowLabels,
                                        const std::vector<std::string> &colLabels,
                                        const std::vector<std::vector<double>> &values);

} // namespace sv::analysis
