// Shared-view TED engine (the perf layer over tree/ted, Section VII): the
// pairwise TED calls over the cartesian product of model ports dominate
// end-to-end runtime, and the uncached `tree::ted()` rebuilds post-order
// views and re-interns every label string per comparison. The engine makes
// each pair cheap by precomputing per-tree structure once:
//
//  * a thread-safe global label interner (ids are append-only, so views
//    built at different times stay comparable);
//  * a per-tree cached `TreeViews` — both decomposition orientations plus
//    Merkle-style subtree fingerprints and the RTED subproblem estimates —
//    built once and shared across all O(M^2 * U) comparisons. Views are
//    keyed by (structural fingerprint, node count), so byte-identical trees
//    (shared headers across model ports) share one view;
//  * an O(min(n1, n2)) whole-tree equality short-circuit (`ted == 0`) and a
//    keyroot-level TD-block reuse for identical subtree pairs inside the
//    Zhang–Shasha DP;
//  * a symmetric pair memo keyed on (fingerprint, fingerprint, costs):
//    ted(a, b, {del, ins, ren}) == ted(b, a, {ins, del, ren}), so
//    diverge(a, b) and diverge(b, a) share the TED work and only the
//    asymmetric dmax/unmatched accounting is recomputed;
//  * for TedAlgo::Apted (the default): per-tree `apted::TreeIndex`es cached
//    alongside the views, strategy matrices cached per *canonical*
//    (fp1, n1, fp2, n2) pair — the DP always executes in the memo's
//    canonical orientation (swapping trees and del/ins together preserves
//    the distance), so one strategy matrix serves both query directions
//    and, being cost-independent, every TedCosts — and the keyroot
//    TD-block reuse generalised to whole single-path subproblems (any
//    repeated (fingerprint, fingerprint) subtree pair replays its TD
//    rectangle). Note the pair memo still answers same-cost repeats first:
//    within a single cost configuration strategy hits stay at zero by
//    design, and only distinct TedCosts (or cutoff-abandoned pairs that
//    are re-queried) reach the strategy cache.
//  * cutoff mode (TedOptions::cutoff > 0): the cached signature lower
//    bound (tree/tedbounds.hpp) answers `cutoff` outright when it reaches
//    the threshold; otherwise the DP runs with in-kernel early abandon.
//    Only exact results (below the cutoff) enter the pair memo.
//
// The engine is byte-identical to the uncached `tree::ted()` reference on
// every input (tests/tree/tedengine_test.cpp and the corpus parity suite
// assert this); `tree::ted()` itself stays untouched as the reference.
#pragma once

#include <memory>

#include "tree/ted.hpp"
#include "tree/tedbounds.hpp"

namespace sv::tree {

/// One decomposition orientation of a tree, with everything Zhang–Shasha
/// needs plus per-node subtree fingerprints.
struct EngineView {
  usize n = 0;
  std::vector<u32> label;      ///< [1..n] globally interned label id
  std::vector<usize> lml;      ///< [1..n] post-order index of leftmost leaf descendant
  std::vector<usize> keyroots; ///< ascending
  std::vector<u64> fp;         ///< [1..n] Merkle subtree fingerprint (orientation-aware)
  u64 subproblems = 0;         ///< RTED relevant-subproblem estimate for this orientation
};

/// Both orientations of one tree, built once and shared between all pairs
/// the tree participates in. `left.fp[n] == Tree::fingerprint()`.
struct TreeViews {
  usize size = 0;
  u64 rootFp = 0;
  EngineView left;  ///< natural child order
  EngineView right; ///< mirrored child order (right-path decomposition)
  /// Apted per-tree index (both orientations, canonical ids, keyroot sums),
  /// labelled through the engine's global interner and shared like the
  /// views. Null only for the empty tree.
  std::shared_ptr<const apted::TreeIndex> aptedIndex;
  /// Lower-bound signature (tree/tedbounds.hpp), cached with the views so
  /// cutoff-mode prechecks are O(|sig|) merges on re-query, no tree walk.
  std::shared_ptr<const BoundSignature> sig;
};

/// Cache-effectiveness counters, exposed for tests and the ted bench.
struct EngineStats {
  u64 viewHits = 0;            ///< views() served from the cache
  u64 viewMisses = 0;          ///< views() that had to build
  u64 memoHits = 0;            ///< ted() answered from the pair memo
  u64 memoMisses = 0;          ///< ted() that ran a DP
  u64 wholeTreeShortcuts = 0;  ///< ted() == 0 via equal root fingerprints
  u64 keyrootBlockHits = 0;    ///< keyroot subproblems filled by TD-block copy
  u64 strategyHits = 0;        ///< Apted strategy matrices served from the cache
  u64 strategyMisses = 0;      ///< Apted strategy matrices computed
  u64 spfKernels[4] = {0, 0, 0, 0};     ///< single-path kernels run, by apted::PathKind
  u64 spfSubproblems[4] = {0, 0, 0, 0}; ///< forest-DP cells, by apted::PathKind
  u64 subtreeBlockHits = 0;    ///< Apted subtree-pair TD rectangles replayed
  // Cutoff-mode (TedOptions::cutoff > 0) outcome split. Every cutoff query
  // that is not a view shortcut or memo hit lands in exactly one bucket.
  u64 prunedByBound = 0;  ///< signature lower bound reached the cutoff: no DP at all
  u64 prunedByCutoff = 0; ///< DP resolved at the cutoff ceiling (abandoned, or exact == cutoff)
  u64 cutoffExact = 0;    ///< DP completed with an exact distance below the cutoff
};

/// Thread-safe cached TED evaluator. One global instance serves the whole
/// process (metrics::diverge, silvervale::divergenceMatrix, the benches);
/// independent instances can be created for isolation in tests.
class TedEngine {
public:
  TedEngine();
  ~TedEngine();

  TedEngine(const TedEngine &) = delete;
  TedEngine &operator=(const TedEngine &) = delete;

  /// The process-wide engine used by `tedDispatch`.
  static TedEngine &global();

  /// Cached d_TED(a, b): byte-identical to `tree::ted(a, b, options)`.
  /// Thread-safe; concurrent calls share views and memo entries.
  [[nodiscard]] u64 ted(const Tree &a, const Tree &b, const TedOptions &options = {});

  /// The shared view of `t` (both orientations), building it on first use.
  /// Keyed by (fingerprint, size): structurally identical trees share.
  [[nodiscard]] std::shared_ptr<const TreeViews> views(const Tree &t);

  [[nodiscard]] EngineStats stats() const;

  /// Drop cached views, memo entries and stats. The label interner is kept:
  /// ids are append-only, so views still held by callers stay valid.
  void clear();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Route through the global engine when `options.useCache` (the default), or
/// the uncached reference `tree::ted()` otherwise — the engine on/off switch
/// used by metrics::diverge and the benches.
[[nodiscard]] u64 tedDispatch(const Tree &a, const Tree &b, const TedOptions &options = {});

} // namespace sv::tree
