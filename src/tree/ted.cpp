#include "tree/ted.hpp"

#include <algorithm>
#include <unordered_map>

#include "tree/tedbounds.hpp"

namespace sv::tree {

namespace {

/// Post-order view of a tree with everything Zhang–Shasha needs:
/// 1-based post-order positions, interned labels, leftmost-leaf indices and
/// keyroots. Built once per tree per comparison.
struct PostView {
  usize n = 0;
  std::vector<u32> label;     ///< [1..n] interned label id
  std::vector<usize> lml;     ///< [1..n] post-order index of leftmost leaf descendant
  std::vector<usize> keyroots; ///< ascending
};

/// Interns labels of both trees into one id space so the DP inner loop
/// compares u32s, not strings.
class PairInterner {
public:
  u32 intern(const std::string &s) {
    const auto [it, inserted] = ids_.emplace(s, static_cast<u32>(ids_.size()));
    (void)inserted;
    return it->second;
  }

private:
  std::unordered_map<std::string, u32> ids_;
};

PostView makeView(const Tree &t, bool mirrored, PairInterner &interner) {
  PostView v;
  v.n = t.size();
  v.label.assign(v.n + 1, 0);
  v.lml.assign(v.n + 1, 0);
  if (v.n == 0) return v;

  // Post-order traversal, honouring mirroring by flipping child order.
  std::vector<NodeId> order;
  order.reserve(v.n);
  std::vector<std::pair<NodeId, usize>> stack{{0, 0}};
  while (!stack.empty()) {
    auto &[id, cursor] = stack.back();
    const auto &ch = t.node(id).children;
    if (cursor < ch.size()) {
      const NodeId next = mirrored ? ch[ch.size() - 1 - cursor] : ch[cursor];
      ++cursor;
      stack.emplace_back(next, 0);
    } else {
      order.push_back(id);
      stack.pop_back();
    }
  }

  // Map node id -> post-order position (1-based).
  std::vector<usize> pos(v.n, 0);
  for (usize i = 0; i < order.size(); ++i) pos[order[i]] = i + 1;

  for (usize i = 1; i <= v.n; ++i) {
    const NodeId id = order[i - 1];
    v.label[i] = interner.intern(t.node(id).label);
    const auto &ch = t.node(id).children;
    if (ch.empty()) {
      v.lml[i] = i;
    } else {
      const NodeId first = mirrored ? ch.back() : ch.front();
      v.lml[i] = v.lml[pos[first]];
    }
  }

  // Keyroots: i is a keyroot iff no j > i has lml(j) == lml(i).
  std::vector<bool> seen(v.n + 2, false);
  for (usize i = v.n; i >= 1; --i) {
    if (!seen[v.lml[i]]) {
      v.keyroots.push_back(i);
      seen[v.lml[i]] = true;
    }
    if (i == 1) break;
  }
  std::sort(v.keyroots.begin(), v.keyroots.end());
  return v;
}

/// Full Zhang–Shasha on two post-order views. With `cutoff > 0`, returns
/// min(exact, cutoff): the final keyroot pair — the only one whose forest
/// prefixes are whole-tree post-order prefixes — abandons once
/// min_y(FD(x, y) + sizeLB(remaining)) reaches the cutoff (see the
/// admissibility argument in tedapted.cpp's runKernelPairs).
u64 zhangShasha(const PostView &a, const PostView &b, const TedCosts &costs, u64 cutoff = 0) {
  const u64 noCut = ~u64{0};
  if (a.n == 0) return std::min(static_cast<u64>(b.n) * costs.ins, cutoff ? cutoff : noCut);
  if (b.n == 0) return std::min(static_cast<u64>(a.n) * costs.del, cutoff ? cutoff : noCut);

  // treedist[i][j], 1-based.
  std::vector<u64> td((a.n + 1) * (b.n + 1), 0);
  const auto TD = [&](usize i, usize j) -> u64 & { return td[i * (b.n + 1) + j]; };

  // Forest-distance scratch; sized for the largest keyroot subproblem.
  std::vector<u64> fd((a.n + 2) * (b.n + 2), 0);

  for (const usize i : a.keyroots) {
    const usize li = a.lml[i];
    const usize rows = i - li + 2; // forest prefixes 0..(i-li+1)
    for (const usize j : b.keyroots) {
      const usize lj = b.lml[j];
      const usize cols = j - lj + 2;
      const auto FD = [&](usize x, usize y) -> u64 & { return fd[x * cols + y]; };
      const bool wholeSpan = cutoff > 0 && rows - 1 == a.n && cols - 1 == b.n;

      FD(0, 0) = 0;
      for (usize x = 1; x < rows; ++x) FD(x, 0) = FD(x - 1, 0) + costs.del;
      for (usize y = 1; y < cols; ++y) FD(0, y) = FD(0, y - 1) + costs.ins;

      for (usize x = 1; x < rows; ++x) {
        const usize di = li + x - 1; // node in a
        for (usize y = 1; y < cols; ++y) {
          const usize dj = lj + y - 1; // node in b
          const u64 delCost = FD(x - 1, y) + costs.del;
          const u64 insCost = FD(x, y - 1) + costs.ins;
          if (a.lml[di] == li && b.lml[dj] == lj) {
            const u64 ren = a.label[di] == b.label[dj] ? 0 : costs.rename;
            const u64 sub = FD(x - 1, y - 1) + ren;
            const u64 best = std::min({delCost, insCost, sub});
            FD(x, y) = best;
            TD(di, dj) = best;
          } else {
            // Jump over the complete subtrees rooted at di, dj.
            const usize px = a.lml[di] - li;     // forest prefix before subtree(di)
            const usize py = b.lml[dj] - lj;
            const u64 sub = FD(px, py) + TD(di, dj);
            FD(x, y) = std::min({delCost, insCost, sub});
          }
        }
        if (wholeSpan) {
          u64 best = noCut;
          for (usize y = 0; y < cols; ++y) {
            const u64 remA = a.n - x;
            const u64 remB = b.n - y;
            const u64 rem = remA >= remB ? (remA - remB) * costs.del : (remB - remA) * costs.ins;
            best = std::min(best, FD(x, y) + rem);
          }
          if (best >= cutoff) return cutoff;
        }
      }
    }
  }
  const u64 exact = TD(a.n, b.n);
  return cutoff ? std::min(exact, cutoff) : exact;
}

u64 subproblems(const PostView &v) {
  // Sum over keyroots of the keyroot's relevant-forest size; the standard
  // RTED cost estimate for a fixed decomposition strategy.
  u64 total = 0;
  for (const usize k : v.keyroots) total += static_cast<u64>(k - v.lml[k] + 1);
  return total;
}

} // namespace

u64 ted(const Tree &t1, const Tree &t2, const TedOptions &options) {
  // Filter before the DP: in cutoff mode a signature lower bound already at
  // the cutoff settles the answer (min(exact, cutoff) == cutoff) without
  // building any view. Same check the engine runs, so both paths stay
  // byte-identical.
  if (options.cutoff > 0 &&
      tedLowerBound(boundSignature(t1), boundSignature(t2), options.costs) >= options.cutoff)
    return options.cutoff;

  PairInterner interner;
  if (options.algo == TedAlgo::Apted) {
    // Self-contained entry: index both trees against a per-call pair
    // interner, plan, execute. Block reuse is the engine's job (it owns a
    // cross-call fingerprint space); the uncached path skips it.
    const auto intern = [&interner](const std::string &s) { return interner.intern(s); };
    const apted::TreeIndex a = apted::buildIndex(t1, intern);
    const apted::TreeIndex b = apted::buildIndex(t2, intern);
    const apted::Strategy strategy = apted::computeStrategy(a, b);
    return apted::run(a, b, strategy, options.costs, /*reuseBlocks=*/false, nullptr,
                      options.cutoff);
  }
  if (options.algo == TedAlgo::ZhangShasha) {
    const PostView a = makeView(t1, false, interner);
    const PostView b = makeView(t2, false, interner);
    return zhangShasha(a, b, options.costs, options.cutoff);
  }
  // PathStrategy: estimate both decompositions, then run the cheaper one.
  // Mirroring both trees preserves the edit distance because the edit
  // mapping constraints are symmetric under a simultaneous reversal of
  // sibling order.
  const PostView aL = makeView(t1, false, interner);
  const PostView bL = makeView(t2, false, interner);
  const PostView aR = makeView(t1, true, interner);
  const PostView bR = makeView(t2, true, interner);
  const u64 costLeft = subproblems(aL) * subproblems(bL);
  const u64 costRight = subproblems(aR) * subproblems(bR);
  if (costRight < costLeft) return zhangShasha(aR, bR, options.costs, options.cutoff);
  return zhangShasha(aL, bL, options.costs, options.cutoff);
}

u64 tedSubproblemsLeft(const Tree &t) {
  PairInterner interner;
  return subproblems(makeView(t, false, interner));
}

u64 tedSubproblemsRight(const Tree &t) {
  PairInterner interner;
  return subproblems(makeView(t, true, interner));
}

} // namespace sv::tree
