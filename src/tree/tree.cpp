#include "tree/tree.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace sv::tree {

Tree Tree::leaf(std::string label, i32 file, i32 line) {
  Tree t;
  t.nodes_.push_back(Node{std::move(label), kNoParent, {}, file, line});
  return t;
}

NodeId Tree::addChild(NodeId parent, std::string label, i32 file, i32 line) {
  SV_CHECK(parent < nodes_.size(), "addChild: bad parent id");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(label), parent, {}, file, line});
  nodes_[parent].children.push_back(id);
  return id;
}

usize Tree::depth() const {
  if (nodes_.empty()) return 0;
  usize best = 0;
  visitPreorder([&](NodeId, usize d) { best = std::max(best, d + 1); });
  return best;
}

usize Tree::leafCount() const {
  usize n = 0;
  for (const auto &node : nodes_)
    if (node.children.empty()) ++n;
  return n;
}

void Tree::visitPreorder(const std::function<void(NodeId, usize)> &f) const {
  if (nodes_.empty()) return;
  // Explicit stack to keep deep trees (long statement chains) safe.
  std::vector<std::pair<NodeId, usize>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    f(id, d);
    const auto &ch = nodes_[id].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.emplace_back(*it, d + 1);
  }
}

std::vector<NodeId> Tree::postorder() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  if (nodes_.empty()) return out;
  // Iterative post-order: (node, childCursor).
  std::vector<std::pair<NodeId, usize>> stack{{0, 0}};
  while (!stack.empty()) {
    auto &[id, cursor] = stack.back();
    const auto &ch = nodes_[id].children;
    if (cursor < ch.size()) {
      const NodeId next = ch[cursor++];
      stack.emplace_back(next, 0);
    } else {
      out.push_back(id);
      stack.pop_back();
    }
  }
  return out;
}

NodeId Tree::graft(NodeId parent, const Tree &other, NodeId otherRoot) {
  SV_CHECK(parent < nodes_.size(), "graft: bad parent id");
  SV_CHECK(otherRoot < other.nodes_.size(), "graft: bad source root");
  // BFS copy preserving child order.
  const auto &src = other.nodes_[otherRoot];
  const NodeId newRoot = addChild(parent, src.label, src.file, src.line);
  std::vector<std::pair<NodeId, NodeId>> queue{{otherRoot, newRoot}}; // (src, dst)
  for (usize qi = 0; qi < queue.size(); ++qi) {
    const auto [srcId, dstId] = queue[qi];
    for (const NodeId c : other.nodes_[srcId].children) {
      const auto &cn = other.nodes_[c];
      const NodeId nc = addChild(dstId, cn.label, cn.file, cn.line);
      queue.emplace_back(c, nc);
    }
  }
  return newRoot;
}

Tree Tree::spliceWhere(const std::function<bool(const Node &)> &keep) const {
  Tree out;
  if (nodes_.empty()) return out;
  // Recursive splice via explicit traversal. For each original node we track
  // the id of its nearest kept ancestor in `out`.
  const bool keepRoot = keep(nodes_[0]);
  if (keepRoot) {
    out.nodes_.push_back(Node{nodes_[0].label, kNoParent, {}, nodes_[0].file, nodes_[0].line});
  } else {
    out.nodes_.push_back(Node{"<masked>", kNoParent, {}, -1, -1});
  }
  // stack of (original node id, dest parent id). Children are pushed in
  // reverse so they are processed — and appended — in source order.
  std::vector<std::pair<NodeId, NodeId>> stack;
  const auto pushChildren = [&](NodeId origId, NodeId destParent) {
    const auto &ch = nodes_[origId].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.emplace_back(*it, destParent);
  };
  pushChildren(0, 0);
  while (!stack.empty()) {
    const auto [origId, destParent] = stack.back();
    stack.pop_back();
    const auto &n = nodes_[origId];
    if (keep(n)) {
      const NodeId id = out.addChild(destParent, n.label, n.file, n.line);
      pushChildren(origId, id);
    } else {
      pushChildren(origId, destParent); // splice: children climb to the ancestor
    }
  }
  return out;
}

Tree Tree::pruneWhere(const std::function<bool(const Node &)> &keep) const {
  Tree out;
  if (nodes_.empty()) return out;
  if (!keep(nodes_[0])) {
    // Whole tree masked out; keep a stub root so downstream code still has a tree.
    return Tree::leaf("<masked>");
  }
  out.nodes_.push_back(Node{nodes_[0].label, kNoParent, {}, nodes_[0].file, nodes_[0].line});
  std::vector<std::pair<NodeId, NodeId>> stack;
  const auto pushChildren = [&](NodeId origId, NodeId destParent) {
    const auto &ch = nodes_[origId].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.emplace_back(*it, destParent);
  };
  pushChildren(0, 0);
  while (!stack.empty()) {
    const auto [origId, destParent] = stack.back();
    stack.pop_back();
    const auto &n = nodes_[origId];
    if (!keep(n)) continue; // drop whole subtree
    const NodeId id = out.addChild(destParent, n.label, n.file, n.line);
    pushChildren(origId, id);
  }
  return out;
}

Tree Tree::relabel(const std::function<std::string(const std::string &)> &f) const {
  Tree out = *this;
  for (auto &n : out.nodes_) n.label = f(n.label);
  return out;
}

u64 Tree::fingerprint() const {
  // Bottom-up Merkle-style hash: a node's hash mixes its label hash with the
  // ordered hashes of its children.
  std::vector<u64> h(nodes_.size(), 0);
  for (const NodeId id : postorder()) {
    u64 acc = fnv1a(nodes_[id].label);
    for (const NodeId c : nodes_[id].children) acc = hashCombine(acc, h[c]);
    h[id] = acc;
  }
  return nodes_.empty() ? 0 : h[0];
}

std::string Tree::pretty(usize maxDepth) const {
  std::string out;
  visitPreorder([&](NodeId id, usize d) {
    if (d > maxDepth) return;
    out.append(d * 2, ' ');
    out += nodes_[id].label;
    if (nodes_[id].line >= 0) {
      out += "  @";
      out += std::to_string(nodes_[id].line);
    }
    out.push_back('\n');
  });
  return out;
}

bool Tree::sameShape(const Tree &other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  return fingerprint() == other.fingerprint();
}

void Tree::validate() const {
  if (nodes_.empty()) return;
  SV_CHECK(nodes_[0].parent == kNoParent, "root must have no parent");
  usize reachable = 0;
  visitPreorder([&](NodeId id, usize) {
    ++reachable;
    for (const NodeId c : nodes_[id].children) {
      SV_CHECK(c < nodes_.size(), "child id out of range");
      SV_CHECK(nodes_[c].parent == id, "parent/child mismatch");
    }
  });
  SV_CHECK(reachable == nodes_.size(), "unreachable nodes present");
}

msgpack::Value Tree::toMsgpack() const {
  msgpack::Array labels, parents, files, lines;
  labels.reserve(nodes_.size());
  for (const auto &n : nodes_) {
    labels.emplace_back(n.label);
    parents.emplace_back(n.parent == kNoParent ? i64{-1} : static_cast<i64>(n.parent));
    files.emplace_back(static_cast<i64>(n.file));
    lines.emplace_back(static_cast<i64>(n.line));
  }
  msgpack::Map m;
  m.emplace("labels", std::move(labels));
  m.emplace("parents", std::move(parents));
  m.emplace("files", std::move(files));
  m.emplace("lines", std::move(lines));
  return msgpack::Value(std::move(m));
}

Tree Tree::fromMsgpack(const msgpack::Value &v) {
  const auto &labels = v.at("labels").asArray();
  const auto &parents = v.at("parents").asArray();
  const auto &files = v.at("files").asArray();
  const auto &lines = v.at("lines").asArray();
  if (labels.size() != parents.size() || labels.size() != files.size() ||
      labels.size() != lines.size())
    throw ParseError("tree: inconsistent column lengths");
  Tree t;
  t.nodes_.resize(labels.size());
  for (usize i = 0; i < labels.size(); ++i) {
    auto &n = t.nodes_[i];
    n.label = labels[i].asString();
    const i64 p = parents[i].asInt();
    n.parent = p < 0 ? kNoParent : static_cast<u32>(p);
    n.file = static_cast<i32>(files[i].asInt());
    n.line = static_cast<i32>(lines[i].asInt());
    if (p >= 0) {
      if (static_cast<usize>(p) >= labels.size()) throw ParseError("tree: bad parent index");
      t.nodes_[static_cast<usize>(p)].children.push_back(static_cast<NodeId>(i));
    }
  }
  t.validate();
  return t;
}

Builder build(std::string label, std::vector<Builder> children) {
  return Builder{std::move(label), std::move(children)};
}

namespace {
void addBuilt(Tree &t, NodeId parent, const Builder &b) {
  const NodeId id = t.addChild(parent, b.label);
  for (const auto &c : b.children) addBuilt(t, id, c);
}
} // namespace

Tree toTree(const Builder &b) {
  Tree t = Tree::leaf(b.label);
  for (const auto &c : b.children) addBuilt(t, 0, c);
  return t;
}

} // namespace sv::tree
