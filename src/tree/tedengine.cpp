#include "tree/tedengine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <unordered_map>

#include "support/hash.hpp"

namespace sv::tree {

namespace {

/// Global label id space: the DP inner loop compares u32s, not strings, and
/// interning happens once per distinct tree instead of once per pair. Ids
/// are append-only so views built at different times remain comparable.
class LabelInterner {
public:
  u32 intern(const std::string &s) {
    {
      std::shared_lock lock(mutex_);
      const auto it = ids_.find(s);
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock lock(mutex_);
    return ids_.emplace(s, static_cast<u32>(ids_.size())).first->second;
  }

private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, u32> ids_;
};

/// Build one orientation: post-order positions, interned labels, leftmost
/// leaves, keyroots, bottom-up Merkle fingerprints and the RTED subproblem
/// estimate. Mirrors ted.cpp's makeView exactly (same traversal, same
/// keyroot definition) so the DP semantics are unchanged; the fingerprints
/// reuse Tree::fingerprint's hash recipe, evaluated in the view's own child
/// order, so `left.fp[n] == t.fingerprint()`.
EngineView makeEngineView(const Tree &t, bool mirrored, LabelInterner &interner) {
  EngineView v;
  v.n = t.size();
  v.label.assign(v.n + 1, 0);
  v.lml.assign(v.n + 1, 0);
  v.fp.assign(v.n + 1, 0);
  if (v.n == 0) return v;

  std::vector<NodeId> order;
  order.reserve(v.n);
  std::vector<std::pair<NodeId, usize>> stack{{0, 0}};
  while (!stack.empty()) {
    auto &[id, cursor] = stack.back();
    const auto &ch = t.node(id).children;
    if (cursor < ch.size()) {
      const NodeId next = mirrored ? ch[ch.size() - 1 - cursor] : ch[cursor];
      ++cursor;
      stack.emplace_back(next, 0);
    } else {
      order.push_back(id);
      stack.pop_back();
    }
  }

  std::vector<usize> pos(v.n, 0);
  for (usize i = 0; i < order.size(); ++i) pos[order[i]] = i + 1;

  for (usize i = 1; i <= v.n; ++i) {
    const NodeId id = order[i - 1];
    const auto &node = t.node(id);
    v.label[i] = interner.intern(node.label);
    const auto &ch = node.children;
    if (ch.empty()) {
      v.lml[i] = i;
    } else {
      const NodeId first = mirrored ? ch.back() : ch.front();
      v.lml[i] = v.lml[pos[first]];
    }
    // Post-order guarantees children's fingerprints are already final.
    u64 acc = fnv1a(node.label);
    if (mirrored) {
      for (auto it = ch.rbegin(); it != ch.rend(); ++it) acc = hashCombine(acc, v.fp[pos[*it]]);
    } else {
      for (const NodeId c : ch) acc = hashCombine(acc, v.fp[pos[c]]);
    }
    v.fp[i] = acc;
  }

  std::vector<bool> seen(v.n + 2, false);
  for (usize i = v.n; i >= 1; --i) {
    if (!seen[v.lml[i]]) {
      v.keyroots.push_back(i);
      seen[v.lml[i]] = true;
    }
    if (i == 1) break;
  }
  std::sort(v.keyroots.begin(), v.keyroots.end());

  for (const usize k : v.keyroots) v.subproblems += static_cast<u64>(k - v.lml[k] + 1);
  return v;
}

/// The TD entries a keyroot subproblem produces for an identical subtree
/// pair, recorded once per distinct subtree and replayed for repeats. The
/// values are a pure function of the subtree content and the costs (fixed
/// within one DP run), so the copy is exact.
struct TdBlock {
  std::vector<usize> offs; ///< left-path-root offsets relative to lml, ascending
  std::vector<u64> td;     ///< offs.size()^2 values, row-major
};

/// Zhang–Shasha over two engine views, byte-identical to ted.cpp's
/// reference DP. Fingerprints add two reuse levels: keyroot subproblems
/// whose subtrees are identical share their TD block (first occurrence runs
/// the DP and records it; repeats copy), and the caller short-circuits
/// whole-tree equality before ever reaching this function. With
/// `cutoff > 0` returns min(exact, cutoff): the final keyroot pair — the
/// only one spanning both whole trees, never block-replayed because equal
/// trees short-circuit earlier — abandons once every completion of the
/// current post-order prefix row is provably >= cutoff (the admissibility
/// argument lives in tedapted.cpp's runKernelPairs).
u64 zhangShashaEngine(const EngineView &a, const EngineView &b, const TedCosts &costs,
                      std::atomic<u64> &blockHits, u64 cutoff = 0) {
  if (a.n == 0) return static_cast<u64>(b.n) * costs.ins;
  if (b.n == 0) return static_cast<u64>(a.n) * costs.del;

  std::vector<u64> td((a.n + 1) * (b.n + 1), 0);
  const auto TD = [&](usize i, usize j) -> u64 & { return td[i * (b.n + 1) + j]; };

  std::vector<u64> fd((a.n + 2) * (b.n + 2), 0);

  // Call-local: TD blocks depend on the costs, so they must not outlive the
  // DP run. Keyed by (subtree fingerprint, subtree size).
  std::unordered_map<u64, TdBlock> blocks;

  for (const usize i : a.keyroots) {
    const usize li = a.lml[i];
    const usize rows = i - li + 2; // forest prefixes 0..(i-li+1)
    for (const usize j : b.keyroots) {
      const usize lj = b.lml[j];
      const usize cols = j - lj + 2;

      // Identical subtrees produce identical TD blocks: replay if recorded.
      const bool same = a.fp[i] == b.fp[j] && i - li == j - lj;
      const u64 blockKey = same ? hashCombine(a.fp[i], static_cast<u64>(i - li + 1)) : 0;
      if (same) {
        const auto it = blocks.find(blockKey);
        if (it != blocks.end()) {
          const auto &blk = it->second;
          const usize m = blk.offs.size();
          for (usize p = 0; p < m; ++p)
            for (usize q = 0; q < m; ++q)
              TD(li + blk.offs[p], lj + blk.offs[q]) = blk.td[p * m + q];
          blockHits.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }

      const auto FD = [&](usize x, usize y) -> u64 & { return fd[x * cols + y]; };
      const bool wholeSpan = cutoff > 0 && rows - 1 == a.n && cols - 1 == b.n;

      FD(0, 0) = 0;
      for (usize x = 1; x < rows; ++x) FD(x, 0) = FD(x - 1, 0) + costs.del;
      for (usize y = 1; y < cols; ++y) FD(0, y) = FD(0, y - 1) + costs.ins;

      for (usize x = 1; x < rows; ++x) {
        const usize di = li + x - 1; // node in a
        for (usize y = 1; y < cols; ++y) {
          const usize dj = lj + y - 1; // node in b
          const u64 delCost = FD(x - 1, y) + costs.del;
          const u64 insCost = FD(x, y - 1) + costs.ins;
          if (a.lml[di] == li && b.lml[dj] == lj) {
            const u64 ren = a.label[di] == b.label[dj] ? 0 : costs.rename;
            const u64 sub = FD(x - 1, y - 1) + ren;
            const u64 best = std::min({delCost, insCost, sub});
            FD(x, y) = best;
            TD(di, dj) = best;
          } else {
            // Jump over the complete subtrees rooted at di, dj.
            const usize px = a.lml[di] - li; // forest prefix before subtree(di)
            const usize py = b.lml[dj] - lj;
            const u64 sub = FD(px, py) + TD(di, dj);
            FD(x, y) = std::min({delCost, insCost, sub});
          }
        }
        if (wholeSpan) {
          u64 best = ~u64{0};
          for (usize y = 0; y < cols; ++y) {
            const u64 remA = a.n - x;
            const u64 remB = b.n - y;
            const u64 rem = remA >= remB ? (remA - remB) * costs.del : (remB - remA) * costs.ins;
            best = std::min(best, FD(x, y) + rem);
          }
          if (best >= cutoff) return cutoff;
        }
      }

      if (same) {
        // Record this subproblem's left-path TD block. Identical subtrees
        // share the left-path-root offset set, so one side's offsets apply
        // to both.
        TdBlock blk;
        for (usize p = 0; p <= i - li; ++p)
          if (a.lml[li + p] == li) blk.offs.push_back(p);
        const usize m = blk.offs.size();
        blk.td.resize(m * m);
        for (usize p = 0; p < m; ++p)
          for (usize q = 0; q < m; ++q)
            blk.td[p * m + q] = TD(li + blk.offs[p], lj + blk.offs[q]);
        blocks.emplace(blockKey, std::move(blk));
      }
    }
  }
  const u64 exact = TD(a.n, b.n);
  return cutoff ? std::min(exact, cutoff) : exact;
}

/// Memo key for one unordered tree pair under fixed costs. ted(a, b,
/// {del, ins, ren}) == ted(b, a, {ins, del, ren}) — reversing an edit
/// script swaps deletions and insertions — so keys are canonicalised by
/// ordering the (fingerprint, size) pairs and swapping del/ins alongside.
struct PairKey {
  u64 fp1 = 0, fp2 = 0;
  usize n1 = 0, n2 = 0;
  u32 del = 0, ins = 0, rename = 0;

  bool operator==(const PairKey &) const = default;
};

struct PairKeyHash {
  usize operator()(const PairKey &k) const {
    u64 h = hashCombine(k.fp1, k.fp2);
    h = hashCombine(h, static_cast<u64>(k.n1));
    h = hashCombine(h, static_cast<u64>(k.n2));
    h = hashCombine(h, (static_cast<u64>(k.del) << 40) ^ (static_cast<u64>(k.ins) << 20) ^
                           static_cast<u64>(k.rename));
    return static_cast<usize>(h);
  }
};

struct ViewKey {
  u64 fp = 0;
  usize n = 0;
  bool operator==(const ViewKey &) const = default;
};

struct ViewKeyHash {
  usize operator()(const ViewKey &k) const {
    return static_cast<usize>(hashCombine(k.fp, static_cast<u64>(k.n)));
  }
};

/// Strategy-cache key: the *canonical* pair orientation (same ordering as
/// PairKey). The plan itself is orientation-specific — strategy(a, b)
/// decomposes different trees than strategy(b, a) — so the engine always
/// executes the DP in canonical orientation (with del/ins swapped to
/// compensate), making one matrix serve both query directions. No costs:
/// the strategy DP is structural only.
struct StratKey {
  u64 fp1 = 0, fp2 = 0;
  usize n1 = 0, n2 = 0;
  bool operator==(const StratKey &) const = default;
};

struct StratKeyHash {
  usize operator()(const StratKey &k) const {
    return static_cast<usize>(hashCombine(hashCombine(k.fp1, k.fp2),
                                          hashCombine(static_cast<u64>(k.n1),
                                                      static_cast<u64>(k.n2))));
  }
};

} // namespace

struct TedEngine::Impl {
  LabelInterner interner;

  mutable std::mutex viewMutex;
  std::unordered_map<ViewKey, std::shared_ptr<const TreeViews>, ViewKeyHash> viewCache;

  mutable std::mutex memoMutex;
  std::unordered_map<PairKey, u64, PairKeyHash> memo;

  mutable std::mutex strategyMutex;
  std::unordered_map<StratKey, std::shared_ptr<const apted::Strategy>, StratKeyHash> strategies;

  std::atomic<u64> viewHits{0}, viewMisses{0};
  std::atomic<u64> memoHits{0}, memoMisses{0};
  std::atomic<u64> wholeTreeShortcuts{0};
  std::atomic<u64> keyrootBlockHits{0};
  std::atomic<u64> strategyHits{0}, strategyMisses{0};
  std::atomic<u64> spfKernels[4]{0, 0, 0, 0};
  std::atomic<u64> spfSubproblems[4]{0, 0, 0, 0};
  std::atomic<u64> subtreeBlockHits{0};
  std::atomic<u64> prunedByBound{0}, prunedByCutoff{0}, cutoffExact{0};
};

TedEngine::TedEngine() : impl_(std::make_unique<Impl>()) {}
TedEngine::~TedEngine() = default;

TedEngine &TedEngine::global() {
  static TedEngine engine;
  return engine;
}

std::shared_ptr<const TreeViews> TedEngine::views(const Tree &t) {
  const ViewKey key{t.fingerprint(), t.size()};
  {
    std::lock_guard lock(impl_->viewMutex);
    const auto it = impl_->viewCache.find(key);
    if (it != impl_->viewCache.end()) {
      impl_->viewHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside the lock: a racing builder of the same tree just produces
  // an equivalent view and the first insertion wins.
  auto built = std::make_shared<TreeViews>();
  built->size = t.size();
  built->rootFp = key.fp;
  built->left = makeEngineView(t, false, impl_->interner);
  built->right = makeEngineView(t, true, impl_->interner);
  built->sig = std::make_shared<const BoundSignature>(boundSignature(t));
  if (!t.empty()) {
    built->aptedIndex = std::make_shared<const apted::TreeIndex>(apted::buildIndex(
        t, [this](const std::string &s) { return impl_->interner.intern(s); }));
  }
  impl_->viewMisses.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(impl_->viewMutex);
  return impl_->viewCache.emplace(key, std::move(built)).first->second;
}

u64 TedEngine::ted(const Tree &a, const Tree &b, const TedOptions &options) {
  const TedCosts &costs = options.costs;
  const u64 cutoff = options.cutoff;
  const auto clamp = [cutoff](u64 d) { return cutoff ? std::min(d, cutoff) : d; };
  if (a.empty()) return clamp(static_cast<u64>(b.size()) * costs.ins);
  if (b.empty()) return clamp(static_cast<u64>(a.size()) * costs.del);

  const auto va = views(a);
  const auto vb = views(b);

  // Whole-tree equality: identical units (shared headers, unchanged
  // kernels) answer in the O(n) it took to fingerprint them.
  if (va->rootFp == vb->rootFp && va->size == vb->size) {
    impl_->wholeTreeShortcuts.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  PairKey key{va->rootFp, vb->rootFp, va->size, vb->size, costs.del, costs.ins, costs.rename};
  const bool swapped = std::tie(key.fp1, key.n1) > std::tie(key.fp2, key.n2);
  if (swapped) {
    std::swap(key.fp1, key.fp2);
    std::swap(key.n1, key.n2);
    std::swap(key.del, key.ins);
  }
  {
    // The memo holds exact distances only, so a hit serves cutoff mode too.
    std::lock_guard lock(impl_->memoMutex);
    const auto it = impl_->memo.find(key);
    if (it != impl_->memo.end()) {
      impl_->memoHits.fetch_add(1, std::memory_order_relaxed);
      return clamp(it->second);
    }
  }

  // Filter: the cached signature bound settles the pair without any DP
  // when it reaches the cutoff (min(exact, cutoff) == cutoff).
  if (cutoff > 0 && tedLowerBound(*va->sig, *vb->sig, costs) >= cutoff) {
    impl_->prunedByBound.fetch_add(1, std::memory_order_relaxed);
    return cutoff;
  }
  impl_->memoMisses.fetch_add(1, std::memory_order_relaxed);

  // Refine. The DP always executes in the memo's canonical orientation:
  // ted(a, b, {del, ins, ren}) == ted(b, a, {ins, del, ren}), and key.del /
  // key.ins were swapped alongside the trees above — so strategy matrices,
  // TD blocks and cutoff behaviour are shared by both query directions.
  const TreeViews &A = swapped ? *vb : *va;
  const TreeViews &B = swapped ? *va : *vb;
  const TedCosts dpCosts{key.del, key.ins, key.rename};

  u64 result = 0;
  if (options.algo == TedAlgo::Apted) {
    // Strategy matrices are structural (cost-independent) and keyed by the
    // canonical pair, so one DP serves every cost configuration and both
    // directions of a tree pair.
    const StratKey skey{key.fp1, key.fp2, key.n1, key.n2};
    std::shared_ptr<const apted::Strategy> strat;
    {
      std::lock_guard lock(impl_->strategyMutex);
      const auto it = impl_->strategies.find(skey);
      if (it != impl_->strategies.end()) strat = it->second;
    }
    if (strat) {
      impl_->strategyHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      impl_->strategyMisses.fetch_add(1, std::memory_order_relaxed);
      strat = std::make_shared<const apted::Strategy>(
          apted::computeStrategy(*A.aptedIndex, *B.aptedIndex));
      std::lock_guard lock(impl_->strategyMutex);
      strat = impl_->strategies.emplace(skey, std::move(strat)).first->second;
    }
    apted::RunCounters rc;
    result = apted::run(*A.aptedIndex, *B.aptedIndex, *strat, dpCosts,
                        /*reuseBlocks=*/true, &rc, cutoff);
    for (usize k = 0; k < 4; ++k) {
      impl_->spfKernels[k].fetch_add(rc.kernels[k], std::memory_order_relaxed);
      impl_->spfSubproblems[k].fetch_add(rc.subproblems[k], std::memory_order_relaxed);
    }
    impl_->subtreeBlockHits.fetch_add(rc.blockHits, std::memory_order_relaxed);
  } else if (options.algo == TedAlgo::ZhangShasha) {
    result = zhangShashaEngine(A.left, B.left, dpCosts, impl_->keyrootBlockHits, cutoff);
  } else {
    // PathStrategy: the subproblem estimates are precomputed per view, so
    // strategy selection is O(1) instead of four view rebuilds per pair.
    const u64 costLeft = A.left.subproblems * B.left.subproblems;
    const u64 costRight = A.right.subproblems * B.right.subproblems;
    if (costRight < costLeft)
      result = zhangShashaEngine(A.right, B.right, dpCosts, impl_->keyrootBlockHits, cutoff);
    else
      result = zhangShashaEngine(A.left, B.left, dpCosts, impl_->keyrootBlockHits, cutoff);
  }

  if (cutoff > 0) {
    // result == cutoff may be an abandoned run (a lower bound, not the
    // distance) — never memoise it. Anything below the cutoff is exact.
    if (result >= cutoff) {
      impl_->prunedByCutoff.fetch_add(1, std::memory_order_relaxed);
      return cutoff;
    }
    impl_->cutoffExact.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard lock(impl_->memoMutex);
  impl_->memo.emplace(key, result);
  return result;
}

EngineStats TedEngine::stats() const {
  EngineStats s;
  s.viewHits = impl_->viewHits.load();
  s.viewMisses = impl_->viewMisses.load();
  s.memoHits = impl_->memoHits.load();
  s.memoMisses = impl_->memoMisses.load();
  s.wholeTreeShortcuts = impl_->wholeTreeShortcuts.load();
  s.keyrootBlockHits = impl_->keyrootBlockHits.load();
  s.strategyHits = impl_->strategyHits.load();
  s.strategyMisses = impl_->strategyMisses.load();
  for (usize k = 0; k < 4; ++k) {
    s.spfKernels[k] = impl_->spfKernels[k].load();
    s.spfSubproblems[k] = impl_->spfSubproblems[k].load();
  }
  s.subtreeBlockHits = impl_->subtreeBlockHits.load();
  s.prunedByBound = impl_->prunedByBound.load();
  s.prunedByCutoff = impl_->prunedByCutoff.load();
  s.cutoffExact = impl_->cutoffExact.load();
  return s;
}

void TedEngine::clear() {
  {
    std::lock_guard lock(impl_->viewMutex);
    impl_->viewCache.clear();
  }
  {
    std::lock_guard lock(impl_->memoMutex);
    impl_->memo.clear();
  }
  {
    std::lock_guard lock(impl_->strategyMutex);
    impl_->strategies.clear();
  }
  impl_->viewHits = 0;
  impl_->viewMisses = 0;
  impl_->memoHits = 0;
  impl_->memoMisses = 0;
  impl_->wholeTreeShortcuts = 0;
  impl_->keyrootBlockHits = 0;
  impl_->strategyHits = 0;
  impl_->strategyMisses = 0;
  for (usize k = 0; k < 4; ++k) {
    impl_->spfKernels[k] = 0;
    impl_->spfSubproblems[k] = 0;
  }
  impl_->subtreeBlockHits = 0;
  impl_->prunedByBound = 0;
  impl_->prunedByCutoff = 0;
  impl_->cutoffExact = 0;
}

u64 tedDispatch(const Tree &a, const Tree &b, const TedOptions &options) {
  if (options.useCache) return TedEngine::global().ted(a, b, options);
  return ted(a, b, options);
}

} // namespace sv::tree
