// The APTED-class TED core (tree/ted.hpp `apted` namespace): per-tree
// indices, the O(n1*n2) optimal path-strategy DP, and the single-path
// distance kernels that execute the plan recursively.
//
// Correctness sketch. `run(v, w)` fills TD(a, b) for *every* pair
// a in subtree(v), b in subtree(w):
//  * decomposing in A (Left/RightA) recursively solves each subtree
//    hanging off the chosen root-leaf path of v against the whole of
//    subtree(w) (all x all by induction), then the single-path kernel —
//    one Zhang–Shasha keyroot iteration for the path, against every local
//    keyroot of w — fills path(v) x subtree(w). Path and hanging subtrees
//    partition subtree(v), so the union is all x all.
//  * decomposing in B is symmetric. The forest DP's jump reads only hit
//    entries one of those two sources has already produced (hanging pairs
//    recursively; on-path pairs in an earlier keyroot iteration), exactly
//    mirroring the classic Zhang–Shasha fill order.
// Right-path kernels operate on mirrored post-order views — mirroring both
// trees leaves the distance invariant — and translate positions back to
// canonical ids so all four kernels share one TD table.
#include "tree/ted.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/hash.hpp"

namespace sv::tree::apted {

namespace {

/// One post-order traversal: node ids in visit order plus the inverse map.
struct Traversal {
  std::vector<NodeId> order;
  std::vector<u32> pos; ///< node id -> 1-based post-order position
};

Traversal postorderOf(const Tree &t, bool mirrored) {
  Traversal tr;
  const usize n = t.size();
  tr.order.reserve(n);
  tr.pos.assign(n, 0);
  std::vector<std::pair<NodeId, usize>> stack{{0, 0}};
  while (!stack.empty()) {
    auto &[id, cursor] = stack.back();
    const auto &ch = t.node(id).children;
    if (cursor < ch.size()) {
      const NodeId next = mirrored ? ch[ch.size() - 1 - cursor] : ch[cursor];
      ++cursor;
      stack.emplace_back(next, 0);
    } else {
      tr.order.push_back(id);
      stack.pop_back();
    }
  }
  for (usize i = 0; i < tr.order.size(); ++i) tr.pos[tr.order[i]] = static_cast<u32>(i + 1);
  return tr;
}

OrientIndex makeOrient(const Tree &t, const Traversal &tr, bool mirrored,
                       const std::function<u32(const std::string &)> &intern,
                       const std::vector<u32> &canonPos) {
  OrientIndex v;
  const usize n = t.size();
  v.label.assign(n + 1, 0);
  v.lml.assign(n + 1, 0);
  v.toCanon.assign(n + 1, 0);
  v.isPathChild.assign(n + 1, 0);
  for (usize i = 1; i <= n; ++i) {
    const NodeId id = tr.order[i - 1];
    const auto &node = t.node(id);
    v.label[i] = intern(node.label);
    v.toCanon[i] = canonPos[id];
    const auto &ch = node.children;
    if (ch.empty()) {
      v.lml[i] = static_cast<u32>(i);
    } else {
      const NodeId first = mirrored ? ch.back() : ch.front();
      v.lml[i] = v.lml[tr.pos[first]];
      v.isPathChild[tr.pos[first]] = 1;
    }
  }
  return v;
}

/// Local keyroots of the subtree rooted at `root` (an orientation
/// position), ascending: the root plus every proper descendant that is not
/// on its parent's path in this orientation.
std::vector<u32> localKeyroots(const OrientIndex &v, u32 root) {
  std::vector<u32> out;
  for (u32 u = v.lml[root]; u < root; ++u)
    if (!v.isPathChild[u]) out.push_back(u);
  out.push_back(root);
  return out;
}

/// The Zhang–Shasha forest DP over every (A keyroot, B keyroot) pair of the
/// given lists, in one orientation. Byte-identical recurrence to ted.cpp's
/// reference; TD reads/writes go through the canonical maps so left- and
/// right-orientation kernels share one table. Returns the DP cell count.
///
/// With `cutoff > 0`, the iteration spanning both *whole* trees (only ever
/// the root pair's final kernel) early-abandons: after filling prefix row
/// x, any complete edit mapping splits into a mapping between the
/// post-order prefixes A[1..x] / B[1..y] (costing >= FD(x, y), the true
/// prefix forest distance in that iteration) and a mapping between the
/// remainders (costing >= the size bound on them) — so
///   d(T1, T2) >= min_y ( FD(x, y) + sizeLB(fullA - x, fullB - y) ),
/// and once that reaches the cutoff no completion can beat it. Admissible:
/// never fires when the exact distance is below the cutoff. Only the
/// whole-tree span qualifies because inner iterations' FD rows are forest
/// distances of partial keyroot forests, not tree prefixes.
u64 runKernelPairs(const OrientIndex &A, const OrientIndex &B, const std::vector<u32> &aKrs,
                   const std::vector<u32> &bKrs, const TedCosts &costs, std::vector<u64> &td,
                   usize tdStride, std::vector<u64> &fd, usize fullA, usize fullB, u64 cutoff,
                   bool *abandoned) {
  u64 cells = 0;
  const auto TD = [&](u32 ci, u32 cj) -> u64 & {
    return td[static_cast<usize>(ci) * tdStride + cj];
  };
  for (const u32 i : aKrs) {
    const u32 li = A.lml[i];
    const usize rows = i - li + 2; // forest prefixes 0..(i-li+1)
    for (const u32 j : bKrs) {
      const u32 lj = B.lml[j];
      const usize cols = j - lj + 2;
      const auto FD = [&](usize x, usize y) -> u64 & { return fd[x * cols + y]; };
      const bool wholeSpan = cutoff > 0 && rows - 1 == fullA && cols - 1 == fullB;

      FD(0, 0) = 0;
      for (usize x = 1; x < rows; ++x) FD(x, 0) = FD(x - 1, 0) + costs.del;
      for (usize y = 1; y < cols; ++y) FD(0, y) = FD(0, y - 1) + costs.ins;

      for (usize x = 1; x < rows; ++x) {
        const u32 di = li + static_cast<u32>(x) - 1;
        for (usize y = 1; y < cols; ++y) {
          const u32 dj = lj + static_cast<u32>(y) - 1;
          const u64 delCost = FD(x - 1, y) + costs.del;
          const u64 insCost = FD(x, y - 1) + costs.ins;
          if (A.lml[di] == li && B.lml[dj] == lj) {
            const u64 ren = A.label[di] == B.label[dj] ? 0 : costs.rename;
            const u64 best = std::min({delCost, insCost, FD(x - 1, y - 1) + ren});
            FD(x, y) = best;
            TD(A.toCanon[di], B.toCanon[dj]) = best;
          } else {
            // Jump over the complete subtrees rooted at di, dj.
            const usize px = A.lml[di] - li;
            const usize py = B.lml[dj] - lj;
            const u64 sub = FD(px, py) + TD(A.toCanon[di], B.toCanon[dj]);
            FD(x, y) = std::min({delCost, insCost, sub});
          }
        }
        if (wholeSpan) {
          const u64 remA = static_cast<u64>(fullA - x);
          u64 best = ~u64{0};
          for (usize y = 0; y < cols; ++y) {
            const u64 remB = static_cast<u64>(fullB - y);
            const u64 rem = remA >= remB ? (remA - remB) * costs.del : (remB - remA) * costs.ins;
            best = std::min(best, FD(x, y) + rem);
          }
          if (best >= cutoff) {
            cells += x * (cols - 1);
            *abandoned = true;
            return cells;
          }
        }
      }
      cells += (rows - 1) * (cols - 1);
    }
  }
  return cells;
}

/// Identifies one subtree pair's TD rectangle by content: equal keys imply
/// identical subtree labels/shapes on both sides, hence identical TD values
/// under the run's fixed costs.
struct BlockKey {
  u64 fa = 0, fb = 0;
  u32 na = 0, nb = 0;
  bool operator==(const BlockKey &) const = default;
};

struct BlockKeyHash {
  usize operator()(const BlockKey &k) const {
    return static_cast<usize>(
        hashCombine(hashCombine(k.fa, k.fb), (static_cast<u64>(k.na) << 32) | k.nb));
  }
};

} // namespace

const char *pathKindName(PathKind k) {
  switch (k) {
  case PathKind::LeftA: return "leftA";
  case PathKind::RightA: return "rightA";
  case PathKind::LeftB: return "leftB";
  case PathKind::RightB: return "rightB";
  }
  return "?";
}

TreeIndex buildIndex(const Tree &t, const std::function<u32(const std::string &)> &intern) {
  TreeIndex ix;
  ix.n = t.size();
  if (ix.n == 0) return ix;

  const auto L = postorderOf(t, false);
  const auto R = postorderOf(t, true);
  ix.left = makeOrient(t, L, false, intern, L.pos);
  ix.right = makeOrient(t, R, true, intern, L.pos);
  ix.canonToRight.assign(ix.n + 1, 0);
  for (usize r = 1; r <= ix.n; ++r) ix.canonToRight[ix.right.toCanon[r]] = static_cast<u32>(r);

  ix.parent.assign(ix.n + 1, 0);
  ix.children.assign(ix.n + 1, {});
  ix.sz.assign(ix.n + 1, 0);
  ix.krSumLeft.assign(ix.n + 1, 0);
  ix.krSumRight.assign(ix.n + 1, 0);
  ix.fp.assign(ix.n + 1, 0);

  // Relevant-forest span of the path rooted at a canonical node, per
  // orientation: position-independent, so global post-order spans serve
  // every subtree-local computation.
  const auto lspan = [&](u32 cpos) { return static_cast<u64>(cpos - ix.left.lml[cpos] + 1); };
  const auto rspan = [&](u32 cpos) {
    const u32 rp = ix.canonToRight[cpos];
    return static_cast<u64>(rp - ix.right.lml[rp] + 1);
  };

  for (u32 i = 1; i <= ix.n; ++i) {
    const NodeId id = L.order[i - 1];
    const auto &node = t.node(id);
    if (node.parent != kNoParent) ix.parent[i] = L.pos[node.parent];
    auto &ch = ix.children[i];
    ch.reserve(node.children.size());
    for (const NodeId c : node.children) ch.push_back(L.pos[c]);

    // Post-order: every child's aggregate is final here. The keyroot sums
    // follow L(u) = span(u) + sum_c L(c) - span(pathChild): the path
    // child's own relevant forest merges into u's extended span, every
    // other child keeps its keyroots.
    u32 size = 1;
    u64 fp = fnv1a(node.label);
    u64 sumL = 0, sumR = 0;
    for (const u32 c : ch) {
      size += ix.sz[c];
      fp = hashCombine(fp, ix.fp[c]);
      sumL += ix.krSumLeft[c];
      sumR += ix.krSumRight[c];
    }
    ix.sz[i] = size;
    ix.fp[i] = fp;
    ix.krSumLeft[i] = lspan(i) + sumL - (ch.empty() ? 0 : lspan(ch.front()));
    ix.krSumRight[i] = rspan(i) + sumR - (ch.empty() ? 0 : rspan(ch.back()));
  }
  return ix;
}

Strategy computeStrategy(const TreeIndex &a, const TreeIndex &b) {
  Strategy s;
  s.n1 = a.n;
  s.n2 = b.n;
  if (a.n == 0 || b.n == 0) return s;
  const usize n2 = b.n;
  s.pick.assign(a.n * n2, 0);

  // Rolling rows over w (1-based). cost(v, w) is the minimal subproblem
  // count for the pair; the H rows accumulate the recursive cost of the
  // subtree pairs hanging off each candidate path:
  //   H_L(v, w)  = sum over subtrees f hanging off v's left path of cost(f, w)
  //              = H_L(firstChild) + sum over the other children's cost
  //   H'_L(v, w) = the symmetric sum for w's left path (within-row, since
  //                w's children precede w in post-order)
  // and right-path variants. Only O(depth) parent accumulators plus the
  // previous node's rows are alive at any time, keeping the DP at
  // O(n1*n2) time and O(depth1 * n2) extra space.
  std::vector<u64> costRow(n2 + 1, 0), hlRow(n2 + 1, 0), hrRow(n2 + 1, 0);
  std::vector<u64> hplRow(n2 + 1, 0), hprRow(n2 + 1, 0);
  std::vector<u64> prevCost(n2 + 1, 0), prevHr(n2 + 1, 0);

  struct ParentAcc {
    std::vector<u64> sumAll;          ///< sum of completed children's cost rows
    std::vector<u64> c1Cost, c1Hl;    ///< first child's cost and H_L rows
  };
  std::unordered_map<u32, ParentAcc> accs;

  u64 rootCost = 0;
  for (u32 v = 1; v <= a.n; ++v) {
    const auto &chA = a.children[v];
    if (chA.empty()) {
      std::fill(hlRow.begin(), hlRow.end(), 0);
      std::fill(hrRow.begin(), hrRow.end(), 0);
    } else {
      // Post-order guarantees the accumulator is complete, and that the
      // node processed immediately before v is its last child — whose cost
      // and H_R rows still sit in prevCost/prevHr.
      const auto it = accs.find(v);
      const ParentAcc &acc = it->second;
      for (usize w = 1; w <= n2; ++w) {
        hlRow[w] = acc.c1Hl[w] + (acc.sumAll[w] - acc.c1Cost[w]);
        hrRow[w] = prevHr[w] + (acc.sumAll[w] - prevCost[w]);
      }
      accs.erase(it);
    }

    const u64 szv = a.sz[v];
    const u64 krLa = a.krSumLeft[v], krRa = a.krSumRight[v];
    for (u32 w = 1; w <= n2; ++w) {
      const auto &chB = b.children[w];
      u64 hpl = 0, hpr = 0;
      if (!chB.empty()) {
        hpl = hplRow[chB.front()];
        hpr = hprRow[chB.back()];
        for (usize k = 0; k < chB.size(); ++k) {
          if (k != 0) hpl += costRow[chB[k]];
          if (k + 1 != chB.size()) hpr += costRow[chB[k]];
        }
      }
      // Single-path kernel cost: the path-relevant forest of the
      // decomposed side (the whole subtree) against every local keyroot
      // forest of the other side.
      const u64 cLA = hlRow[w] + szv * b.krSumLeft[w];
      const u64 cRA = hrRow[w] + szv * b.krSumRight[w];
      const u64 cLB = hpl + static_cast<u64>(b.sz[w]) * krLa;
      const u64 cRB = hpr + static_cast<u64>(b.sz[w]) * krRa;

      u64 best = cLA;
      auto kind = PathKind::LeftA;
      if (cRA < best) { best = cRA; kind = PathKind::RightA; }
      if (cLB < best) { best = cLB; kind = PathKind::LeftB; }
      if (cRB < best) { best = cRB; kind = PathKind::RightB; }

      costRow[w] = best;
      hplRow[w] = hpl;
      hprRow[w] = hpr;
      s.pick[static_cast<usize>(v - 1) * n2 + (w - 1)] = static_cast<u8>(kind);
    }
    rootCost = costRow[n2];

    if (const u32 p = a.parent[v]; p != 0) {
      auto &acc = accs[p];
      if (acc.sumAll.empty()) acc.sumAll.assign(n2 + 1, 0);
      for (usize w = 1; w <= n2; ++w) acc.sumAll[w] += costRow[w];
      if (v == a.children[p].front()) {
        acc.c1Cost = costRow;
        acc.c1Hl = hlRow;
      }
    }
    std::swap(prevCost, costRow);
    std::swap(prevHr, hrRow);
  }
  s.cost = rootCost;
  return s;
}

u64 run(const TreeIndex &a, const TreeIndex &b, const Strategy &strategy, const TedCosts &costs,
        bool reuseBlocks, RunCounters *counters, u64 cutoff) {
  if (a.n == 0) return std::min(static_cast<u64>(b.n) * costs.ins,
                                cutoff ? cutoff : ~u64{0});
  if (b.n == 0) return std::min(static_cast<u64>(a.n) * costs.del,
                                cutoff ? cutoff : ~u64{0});

  const usize tdStride = b.n + 1;
  std::vector<u64> td((a.n + 1) * (b.n + 1), 0);
  std::vector<u64> fd((a.n + 2) * (b.n + 2), 0);

  // Solved subtree-pair rectangles by content; repeats replay instead of
  // recomputing (the keyroot TD-block reuse generalised to whole
  // single-path subproblems). Subtrees sharing a fingerprint are disjoint
  // (nesting would change the size), so rectangle copies never alias.
  std::unordered_map<BlockKey, std::pair<u32, u32>, BlockKeyHash> blocks;
  const auto blockKeyOf = [&](u32 v, u32 w) {
    return BlockKey{a.fp[v], b.fp[w], a.sz[v], b.sz[w]};
  };

  // Two-phase frames: phase 0 queues the subtree pairs hanging off the
  // chosen path, phase 1 (after they resolved) runs the path kernel.
  struct Frame {
    u32 v, w;
    u8 phase;
  };
  std::vector<Frame> stack;
  stack.push_back({static_cast<u32>(a.n), static_cast<u32>(b.n), 0});

  while (!stack.empty()) {
    const Frame f = stack.back();
    const u32 v = f.v, w = f.w;
    const PathKind kind = strategy.at(v, w);

    if (f.phase == 0) {
      if (reuseBlocks) {
        const auto it = blocks.find(blockKeyOf(v, w));
        if (it != blocks.end()) {
          const auto [v0, w0] = it->second;
          const u32 dlv = a.left.lml[v], dlw = b.left.lml[w];
          const u32 slv = a.left.lml[v0], slw = b.left.lml[w0];
          const usize cols = w - dlw + 1;
          for (u32 r = 0; r <= v - dlv; ++r) {
            const u64 *src = &td[static_cast<usize>(slv + r) * tdStride + slw];
            std::copy(src, src + cols, &td[static_cast<usize>(dlv + r) * tdStride + dlw]);
          }
          if (counters) ++counters->blockHits;
          stack.pop_back();
          continue;
        }
      }
      stack.back().phase = 1;
      switch (kind) {
      case PathKind::LeftA:
        for (u32 u = v; !a.children[u].empty(); u = a.children[u].front())
          for (usize c = 1; c < a.children[u].size(); ++c) stack.push_back({a.children[u][c], w, 0});
        break;
      case PathKind::RightA:
        for (u32 u = v; !a.children[u].empty(); u = a.children[u].back())
          for (usize c = 0; c + 1 < a.children[u].size(); ++c)
            stack.push_back({a.children[u][c], w, 0});
        break;
      case PathKind::LeftB:
        for (u32 u = w; !b.children[u].empty(); u = b.children[u].front())
          for (usize c = 1; c < b.children[u].size(); ++c) stack.push_back({v, b.children[u][c], 0});
        break;
      case PathKind::RightB:
        for (u32 u = w; !b.children[u].empty(); u = b.children[u].back())
          for (usize c = 0; c + 1 < b.children[u].size(); ++c)
            stack.push_back({v, b.children[u][c], 0});
        break;
      }
      continue;
    }

    stack.pop_back();
    u64 cells = 0;
    bool abandoned = false;
    switch (kind) {
    case PathKind::LeftA:
      cells = runKernelPairs(a.left, b.left, {v}, localKeyroots(b.left, w), costs, td, tdStride,
                             fd, a.n, b.n, cutoff, &abandoned);
      break;
    case PathKind::RightA:
      cells = runKernelPairs(a.right, b.right, {a.canonToRight[v]},
                             localKeyroots(b.right, b.canonToRight[w]), costs, td, tdStride, fd,
                             a.n, b.n, cutoff, &abandoned);
      break;
    case PathKind::LeftB:
      cells = runKernelPairs(a.left, b.left, localKeyroots(a.left, v), {w}, costs, td, tdStride,
                             fd, a.n, b.n, cutoff, &abandoned);
      break;
    case PathKind::RightB:
      cells = runKernelPairs(a.right, b.right, localKeyroots(a.right, a.canonToRight[v]),
                             {b.canonToRight[w]}, costs, td, tdStride, fd, a.n, b.n, cutoff,
                             &abandoned);
      break;
    }
    if (counters) {
      ++counters->kernels[static_cast<usize>(kind)];
      counters->subproblems[static_cast<usize>(kind)] += cells;
    }
    // The whole-tree span only exists in the root pair's own kernel, so an
    // abandon here is the last kernel of the run anyway.
    if (abandoned) return cutoff;
    if (reuseBlocks) blocks.emplace(blockKeyOf(v, w), std::make_pair(v, w));
  }
  const u64 exact = td[static_cast<usize>(a.n) * tdStride + b.n];
  return cutoff ? std::min(exact, cutoff) : exact;
}

} // namespace sv::tree::apted
