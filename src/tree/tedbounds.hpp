// Admissible TED lower bounds (the filter half of the metric-space query
// layer). A BoundSignature is a cheap, order-insensitive summary of one
// tree — node count, label multiset, binary-branch profile — from which
// three lower bounds on the exact edit distance are computable in
// O(|sig1| + |sig2|), without touching either tree again:
//
//  * size bound: any edit script must delete at least n1-n2 nodes (or
//    insert n2-n1), so d >= |n1-n2| * (the corresponding unit cost).
//  * label-histogram bound: a script whose mapping matches k node pairs
//    pays (n1-k)*del + (n2-k)*ins, plus rename for every matched pair
//    whose labels differ — and at most c = |hist1 ∩ hist2| matched pairs
//    can be rename-free. Minimising over k (the cost is piecewise linear
//    in k, so only the breakpoints k ∈ {0, min(c, min(n1,n2)), min(n1,n2)}
//    matter) gives an admissible bound that sees label changes the size
//    bound is blind to.
//  * binary-branch bound [Yang, Kalnis & Tung 2005]: the multiset of
//    (label, first-child label, next-sibling label) triples changes by at
//    most 5 (L1) per unit edit operation — a rename rewrites the node's
//    own triple and the <=2 triples naming it; a delete/insert also
//    splices the sibling chain. Hence d >= ceil(L1/5) * min(del,ins,ren).
//    This bound sees structural rearrangements the histogram misses.
//
// All three are admissible by construction (each underestimates the cost
// of the *optimal* script), so max() of them is too — the fuzz oracle
// `lb` and tests/tree/tedbounds_test.cpp assert lb <= exact on generated
// and corpus trees. Labels enter signatures as fnv1a hashes, not interner
// ids, so signatures persist across processes (the codebase DB stores one
// per unit tree); a hash collision can only merge two histogram buckets,
// which lowers the computed bound — admissibility survives.
#pragma once

#include "tree/ted.hpp"

namespace sv::tree {

/// Order-insensitive tree summary for O(1)-per-pair lower bounds. Both
/// multisets are sorted by hash so intersection/L1 walks are linear merges.
struct BoundSignature {
  u64 n = 0;                                        ///< node count
  std::vector<std::pair<u64, u32>> labelHist;       ///< (label fnv1a, count), sorted
  std::vector<std::pair<u64, u32>> branchProfile;   ///< (branch-triple hash, count), sorted

  bool operator==(const BoundSignature &) const = default;

  /// MessagePack round-trip, used by the Codebase DB per-unit persistence.
  [[nodiscard]] msgpack::Value toMsgpack() const;
  static BoundSignature fromMsgpack(const msgpack::Value &v);
};

/// Build the signature in one post-order pass plus two sorts.
[[nodiscard]] BoundSignature boundSignature(const Tree &t);

/// |n1-n2| * (del or ins, whichever operation the imbalance forces).
[[nodiscard]] u64 sizeLowerBound(u64 n1, u64 n2, const TedCosts &costs);

/// The matched-pairs minimisation over the label-multiset intersection.
[[nodiscard]] u64 histogramLowerBound(const BoundSignature &a, const BoundSignature &b,
                                      const TedCosts &costs);

/// ceil(L1(branch profiles)/5) * min unit cost.
[[nodiscard]] u64 profileLowerBound(const BoundSignature &a, const BoundSignature &b,
                                    const TedCosts &costs);

/// max of the three bounds above; `tedLowerBound(a, b, c) <= ted(ta, tb, c)`
/// for the trees the signatures were built from.
[[nodiscard]] u64 tedLowerBound(const BoundSignature &a, const BoundSignature &b,
                                const TedCosts &costs);

} // namespace sv::tree
