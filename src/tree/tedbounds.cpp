#include "tree/tedbounds.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "support/hash.hpp"

namespace sv::tree {

namespace {

/// Missing first-child / next-sibling slot in a binary-branch triple. A
/// real label hashing to this merely merges two profile buckets, which can
/// only lower the L1 — the bound stays admissible.
constexpr u64 kEps = 0;

std::vector<std::pair<u64, u32>> sortedCounts(std::unordered_map<u64, u32> &&counts) {
  std::vector<std::pair<u64, u32>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// One merge walk over two sorted count vectors: the multiset intersection
/// size and the L1 distance (they share the pass, callers pick one).
struct MultisetDiff {
  u64 common = 0; ///< sum of min(countA, countB) over shared keys
  u64 l1 = 0;     ///< sum of |countA - countB| plus all unshared counts
};

MultisetDiff diffCounts(const std::vector<std::pair<u64, u32>> &a,
                        const std::vector<std::pair<u64, u32>> &b) {
  MultisetDiff d;
  usize i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      d.l1 += a[i++].second;
    } else if (b[j].first < a[i].first) {
      d.l1 += b[j++].second;
    } else {
      const u32 ca = a[i++].second;
      const u32 cb = b[j++].second;
      d.common += std::min(ca, cb);
      d.l1 += ca > cb ? ca - cb : cb - ca;
    }
  }
  for (; i < a.size(); ++i) d.l1 += a[i].second;
  for (; j < b.size(); ++j) d.l1 += b[j].second;
  return d;
}

msgpack::Array countsToMsg(const std::vector<std::pair<u64, u32>> &counts) {
  msgpack::Array arr;
  arr.reserve(counts.size() * 2);
  for (const auto &[hash, count] : counts) {
    arr.emplace_back(std::bit_cast<i64>(hash));
    arr.emplace_back(count);
  }
  return arr;
}

std::vector<std::pair<u64, u32>> countsFromMsg(const msgpack::Value &v) {
  const auto &arr = v.asArray();
  std::vector<std::pair<u64, u32>> out;
  out.reserve(arr.size() / 2);
  for (usize i = 0; i + 1 < arr.size(); i += 2)
    out.emplace_back(std::bit_cast<u64>(arr[i].asInt()), static_cast<u32>(arr[i + 1].asInt()));
  return out;
}

} // namespace

msgpack::Value BoundSignature::toMsgpack() const {
  msgpack::Map m;
  m.emplace("n", static_cast<i64>(n));
  m.emplace("labels", countsToMsg(labelHist));
  m.emplace("branches", countsToMsg(branchProfile));
  return msgpack::Value(std::move(m));
}

BoundSignature BoundSignature::fromMsgpack(const msgpack::Value &v) {
  BoundSignature s;
  s.n = static_cast<u64>(v.at("n").asInt());
  s.labelHist = countsFromMsg(v.at("labels"));
  s.branchProfile = countsFromMsg(v.at("branches"));
  return s;
}

BoundSignature boundSignature(const Tree &t) {
  BoundSignature s;
  s.n = t.size();
  if (s.n == 0) return s;

  // Per-node label hashes first, so branch triples can read children and
  // siblings in any order.
  std::vector<u64> labelHash(t.size());
  for (usize id = 0; id < t.size(); ++id) labelHash[id] = fnv1a(t.node(id).label);

  std::unordered_map<u64, u32> labels;
  std::unordered_map<u64, u32> branches;
  labels.reserve(t.size());
  branches.reserve(t.size());
  for (usize id = 0; id < t.size(); ++id) {
    const auto &node = t.node(id);
    ++labels[labelHash[id]];
    // Binary-branch triple (label, first child, next sibling) — the node's
    // neighbourhood in the left-child/right-sibling binary transform.
    const u64 firstChild = node.children.empty() ? kEps : labelHash[node.children.front()];
    u64 nextSibling = kEps;
    if (node.parent != kNoParent) {
      const auto &siblings = t.node(node.parent).children;
      const auto it = std::find(siblings.begin(), siblings.end(), static_cast<NodeId>(id));
      if (it != siblings.end() && it + 1 != siblings.end()) nextSibling = labelHash[*(it + 1)];
    }
    ++branches[hashCombine(hashCombine(labelHash[id], firstChild), nextSibling)];
  }
  s.labelHist = sortedCounts(std::move(labels));
  s.branchProfile = sortedCounts(std::move(branches));
  return s;
}

u64 sizeLowerBound(u64 n1, u64 n2, const TedCosts &costs) {
  return n1 >= n2 ? (n1 - n2) * costs.del : (n2 - n1) * costs.ins;
}

u64 histogramLowerBound(const BoundSignature &a, const BoundSignature &b, const TedCosts &costs) {
  // A script whose mapping matches k pairs costs at least
  //   f(k) = (n1-k)*del + (n2-k)*ins + max(0, k-c)*rename
  // with c the label-multiset intersection: at most c matched pairs can be
  // rename-free. f is piecewise linear and decreasing up to k = min(c,
  // nmin), so its minimum over k in [0, nmin] is at one of the two
  // breakpoints.
  const u64 c = diffCounts(a.labelHist, b.labelHist).common;
  const u64 nmin = std::min(a.n, b.n);
  const auto f = [&](u64 k) {
    return (a.n - k) * costs.del + (b.n - k) * costs.ins +
           (k > c ? (k - c) * costs.rename : 0);
  };
  return std::min(f(std::min(c, nmin)), f(nmin));
}

u64 profileLowerBound(const BoundSignature &a, const BoundSignature &b, const TedCosts &costs) {
  // One edit operation moves at most 5 binary-branch triples (its own, the
  // one binary-transform parent naming it, and the spliced sibling chain's
  // boundary), so any script has length >= ceil(L1/5).
  const u64 l1 = diffCounts(a.branchProfile, b.branchProfile).l1;
  const u64 cmin = std::min({costs.del, costs.ins, costs.rename});
  return (l1 + 4) / 5 * cmin;
}

u64 tedLowerBound(const BoundSignature &a, const BoundSignature &b, const TedCosts &costs) {
  return std::max({sizeLowerBound(a.n, b.n, costs), histogramLowerBound(a, b, costs),
                   profileLowerBound(a, b, costs)});
}

} // namespace sv::tree
