// Tree Edit Distance (Section III-B). Two interchangeable algorithms:
//
//  * ZhangShasha — the classic left-path keyroot algorithm [Zhang & Shasha
//    1989]; O(n1*n2*min(depth,leaves)^2) time, O(n1*n2) space.
//  * PathStrategy — in the spirit of APTED/RTED [Pawlik & Augsten 2016]: the
//    relevant-subproblem count of the left-path and right-path
//    decompositions is computed first and the cheaper strategy is executed
//    (the right-path run operates on mirrored trees, which leaves the
//    distance invariant). On the skewed ASTs real code produces this avoids
//    the classic worst case the paper cites (Section IV-E).
//
// Costs default to the paper's unit weight for delete/insert/relabel, but a
// TedCosts struct allows per-operation weights — the future-work knob the
// paper mentions ("adding new code may have a different productivity impact
// than removing existing code").
#pragma once

#include "tree/tree.hpp"

namespace sv::tree {

struct TedCosts {
  u32 del = 1;    ///< cost of deleting a node of T1
  u32 ins = 1;    ///< cost of inserting a node of T2
  u32 rename = 1; ///< cost of relabelling when labels differ (equal labels cost 0)
};

enum class TedAlgo {
  ZhangShasha,  ///< always left-path decomposition
  PathStrategy, ///< choose left/right decomposition by estimated subproblem count
};

struct TedOptions {
  TedAlgo algo = TedAlgo::PathStrategy;
  TedCosts costs{};
  /// Consulted by `tedDispatch` (tree/tedengine.hpp): route through the
  /// shared-view engine (true) or the uncached reference below (false).
  /// `ted()` itself always runs uncached and ignores this flag.
  bool useCache = true;
};

/// d_TED(t1, t2): minimal total cost of node deletions, insertions and
/// relabellings transforming t1 into t2. Both algorithms return identical
/// values; see tests/tree/ted_test.cpp for the cross-check property suite.
[[nodiscard]] u64 ted(const Tree &t1, const Tree &t2, const TedOptions &options = {});

/// Number of relevant subproblems the left-path (keyroot) decomposition
/// would solve; the PathStrategy estimator. Exposed for the ablation bench.
[[nodiscard]] u64 tedSubproblemsLeft(const Tree &t);
[[nodiscard]] u64 tedSubproblemsRight(const Tree &t);

} // namespace sv::tree
