// Tree Edit Distance (Section III-B). Three interchangeable algorithms:
//
//  * ZhangShasha — the classic left-path keyroot algorithm [Zhang & Shasha
//    1989]; O(n1*n2*min(depth,leaves)^2) time, O(n1*n2) space.
//  * PathStrategy — a whole-tree orientation pick: the relevant-subproblem
//    count of the left-path and right-path decompositions is computed first
//    and the cheaper one is executed on (possibly mirrored) trees.
//  * Apted — in the spirit of APTED/RTED [Pawlik & Augsten 2011/2016]: an
//    O(n1*n2) strategy DP picks, for *every subtree pair*, the cheapest
//    root-leaf path decomposition (left or right path, in either tree —
//    the inner/heavy path is approximated by decomposing the larger side)
//    using exact relevant-subproblem counts, and the distance phase
//    executes that plan recursively through single-path kernels. On the
//    deep, skewed T_ir trees the paper calls out (Section IV-E) this is a
//    multiplicative win over any whole-tree orientation.
//
// All three return identical distances on every input; ZhangShasha and
// PathStrategy stay selectable as the cross-check oracles for Apted (the
// fuzz `ted` round and tests/tree/ted_test.cpp assert the equality).
//
// Costs default to the paper's unit weight for delete/insert/relabel, but a
// TedCosts struct allows per-operation weights — the future-work knob the
// paper mentions ("adding new code may have a different productivity impact
// than removing existing code").
#pragma once

#include <functional>

#include "tree/tree.hpp"

namespace sv::tree {

struct TedCosts {
  u32 del = 1;    ///< cost of deleting a node of T1
  u32 ins = 1;    ///< cost of inserting a node of T2
  u32 rename = 1; ///< cost of relabelling when labels differ (equal labels cost 0)
};

enum class TedAlgo {
  ZhangShasha,  ///< always left-path decomposition
  PathStrategy, ///< choose left/right decomposition by whole-tree subproblem count
  Apted,        ///< per-subtree-pair optimal path strategy (the default)
};

struct TedOptions {
  TedAlgo algo = TedAlgo::Apted;
  TedCosts costs{};
  /// Consulted by `tedDispatch` (tree/tedengine.hpp): route through the
  /// shared-view engine (true) or the uncached reference below (false).
  /// `ted()` itself always runs uncached and ignores this flag.
  bool useCache = true;
  /// Early-abandon threshold. 0 (the default) computes the exact distance.
  /// With cutoff > 0 every TED entry point returns exactly
  /// `min(exact, cutoff)`: pairs whose admissible lower bound (see
  /// tree/tedbounds.hpp) already reaches the cutoff skip the DP entirely,
  /// and the whole-tree forest DP abandons once every completion of the
  /// current post-order prefix is provably >= cutoff. Deterministic and
  /// identical between the engine and the uncached reference, because a
  /// pair with exact < cutoff can never trip an admissible bound.
  u64 cutoff = 0;
};

/// d_TED(t1, t2): minimal total cost of node deletions, insertions and
/// relabellings transforming t1 into t2. All algorithms return identical
/// values; see tests/tree/ted_test.cpp for the cross-check property suite.
[[nodiscard]] u64 ted(const Tree &t1, const Tree &t2, const TedOptions &options = {});

/// Number of relevant subproblems the left-path (keyroot) decomposition
/// would solve; the PathStrategy estimator. Exposed for the ablation bench.
[[nodiscard]] u64 tedSubproblemsLeft(const Tree &t);
[[nodiscard]] u64 tedSubproblemsRight(const Tree &t);

/// The APTED-class core: per-tree indices, the strategy DP and the
/// single-path distance kernels. Exposed so the shared-view engine
/// (tree/tedengine) can cache indices and strategy matrices per tree /
/// tree pair, and so the ablation bench and tests can inspect strategy
/// costs directly. `ted()` with TedAlgo::Apted is the self-contained entry.
namespace apted {

/// One decomposition orientation of an indexed tree. Positions are 1-based
/// post-order indices *of this orientation* (the right orientation
/// traverses mirrored child order); `toCanon` maps them back to the
/// canonical (left post-order) ids the shared TD table is keyed by.
struct OrientIndex {
  std::vector<u32> label;     ///< [1..n] interned label id
  std::vector<u32> lml;       ///< [1..n] post-order index of the path-leaf descendant
  std::vector<u32> toCanon;   ///< [1..n] orientation position -> canonical position
  std::vector<u8> isPathChild; ///< [1..n] node is the first child of its parent (this orientation)
};

/// Everything the strategy DP and the distance kernels need for one tree,
/// built once in O(n). Canonical node ids are 1-based left post-order.
struct TreeIndex {
  usize n = 0;
  OrientIndex left;                       ///< canonical orientation (toCanon = identity)
  OrientIndex right;                      ///< mirrored child order
  std::vector<u32> canonToRight;          ///< [1..n] canonical -> right post-order position
  std::vector<u32> parent;                ///< [1..n] canonical parent (0 for the root)
  std::vector<std::vector<u32>> children; ///< [1..n] canonical ids, source order
  std::vector<u32> sz;                    ///< [1..n] subtree size
  std::vector<u64> krSumLeft;             ///< [1..n] keyroot relevant-forest sum, left paths
  std::vector<u64> krSumRight;            ///< [1..n] keyroot relevant-forest sum, right paths
  std::vector<u64> fp;                    ///< [1..n] Merkle subtree fingerprint (canonical order)
};

/// Index `t` for the Apted pipeline. `intern` supplies label ids; both
/// trees of a comparison must share one interner (the engine passes its
/// global one, `ted()` a per-call pair interner).
[[nodiscard]] TreeIndex buildIndex(const Tree &t,
                                   const std::function<u32(const std::string &)> &intern);

/// The four single-path decompositions the strategy DP chooses between:
/// decompose along the left/right root-leaf path of the first tree's
/// subtree, or of the second tree's subtree (the larger-side choice that
/// approximates the inner/heavy path).
enum class PathKind : u8 { LeftA = 0, RightA = 1, LeftB = 2, RightB = 3 };
[[nodiscard]] const char *pathKindName(PathKind k);

/// The per-subtree-pair decomposition plan. `pick[(v-1)*n2 + (w-1)]` holds
/// the PathKind for canonical subtree pair (v, w); `cost` is the exact
/// relevant-subproblem count of the optimal plan at the root pair (always
/// <= the best whole-tree orientation product).
struct Strategy {
  usize n1 = 0, n2 = 0;
  std::vector<u8> pick;
  u64 cost = 0;

  [[nodiscard]] PathKind at(usize v, usize w) const {
    return static_cast<PathKind>(pick[(v - 1) * n2 + (w - 1)]);
  }
};

/// The O(n1*n2) strategy DP over all subtree pairs, bottom-up in both
/// trees. Structural only: independent of TedCosts, so one matrix serves
/// every cost configuration of a tree pair (the engine caches it by
/// fingerprint pair).
[[nodiscard]] Strategy computeStrategy(const TreeIndex &a, const TreeIndex &b);

/// Execution counters for one distance run, attributed per path kind so
/// the bench can report the strategy-choice histogram.
struct RunCounters {
  u64 kernels[4] = {0, 0, 0, 0};     ///< single-path kernels executed, by PathKind
  u64 subproblems[4] = {0, 0, 0, 0}; ///< forest-DP cells computed, by PathKind
  u64 blockHits = 0;                 ///< subtree-pair TD rectangles replayed by fingerprint
};

/// Execute the strategy: recursively solve the subtree pairs hanging off
/// each chosen path, then run the single-path kernel for the path itself.
/// With `reuseBlocks`, repeated (fingerprint, fingerprint) subtree pairs
/// replay their TD rectangle instead of recomputing (the engine's keyroot
/// TD-block reuse generalised to whole single-path subproblems).
/// With `cutoff > 0` the whole-tree kernel early-abandons per the
/// TedOptions::cutoff contract and `run` returns exactly cutoff; pairs
/// that complete return the exact distance (callers clamp).
[[nodiscard]] u64 run(const TreeIndex &a, const TreeIndex &b, const Strategy &strategy,
                      const TedCosts &costs, bool reuseBlocks, RunCounters *counters,
                      u64 cutoff = 0);

} // namespace apted

} // namespace sv::tree
