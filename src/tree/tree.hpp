// The generic ordered, labelled n-ary tree that every semantic-bearing tree
// (T_src, T_sem, T_sem+i, T_ir — Section III-A) is represented as. Nodes are
// stored in a flat vector (structure-of-arrays-ish) for cache-friendly
// traversal; every node keeps the source back-reference (file id + line)
// that the paper calls out as crucial for coverage masking and dependency
// reconstruction.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/common.hpp"
#include "support/msgpack.hpp"

namespace sv::tree {

/// Index of a node inside its Tree. The root is always index 0.
using NodeId = u32;
constexpr u32 kNoParent = 0xFFFFFFFFu;

struct Node {
  std::string label;            ///< normalised label (node kind, operator, literal, ...)
  u32 parent = kNoParent;       ///< kNoParent for the root
  std::vector<NodeId> children; ///< in source order
  i32 file = -1;                ///< source file id within the owning codebase (-1: synthetic)
  i32 line = -1;                ///< 1-based source line (-1: synthetic)
};

/// An ordered labelled tree. Invariants (checked by validate()):
/// node 0 is the root; children lists are consistent with parent fields;
/// every non-root node is reachable from the root.
class Tree {
public:
  Tree() = default;

  /// Create a tree with just a root node.
  static Tree leaf(std::string label, i32 file = -1, i32 line = -1);

  /// Append a child under `parent` and return its id.
  NodeId addChild(NodeId parent, std::string label, i32 file = -1, i32 line = -1);

  [[nodiscard]] usize size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] const Node &node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] Node &node(NodeId id) { return nodes_[id]; }
  [[nodiscard]] const std::vector<Node> &nodes() const { return nodes_; }

  /// Depth of the deepest node (root = 1); 0 for the empty tree.
  [[nodiscard]] usize depth() const;

  /// Number of leaves.
  [[nodiscard]] usize leafCount() const;

  /// Pre-order visit: f(id, depth).
  void visitPreorder(const std::function<void(NodeId, usize)> &f) const;

  /// Post-order node ids (left-to-right). The basis for the TED algorithms.
  [[nodiscard]] std::vector<NodeId> postorder() const;

  /// Graft a deep copy of `other` (rooted at `otherRoot`) under `parent`;
  /// returns the id of the copied root.
  NodeId graft(NodeId parent, const Tree &other, NodeId otherRoot = 0);

  /// Return a new tree where nodes failing `keep` are spliced out: their
  /// children are reattached to the nearest kept ancestor. If the root is
  /// removed, a fresh root labelled "<masked>" holds the survivors. Used for
  /// normalisation passes that drop non-semantic nodes.
  [[nodiscard]] Tree spliceWhere(const std::function<bool(const Node &)> &keep) const;

  /// Return a new tree where any node failing `keep` is removed *together
  /// with its whole subtree*. Used for coverage masking: unexecuted regions
  /// disappear entirely (Section III-A / IV-D).
  [[nodiscard]] Tree pruneWhere(const std::function<bool(const Node &)> &keep) const;

  /// Relabel every node via `f(label) -> label`.
  [[nodiscard]] Tree relabel(const std::function<std::string(const std::string &)> &f) const;

  /// Structural fingerprint: equal trees hash equal. Ignores file/line.
  [[nodiscard]] u64 fingerprint() const;

  /// Multi-line ASCII rendering for debugging and the Fig 1 bench.
  [[nodiscard]] std::string pretty(usize maxDepth = ~usize{0}) const;

  /// Structural equality ignoring source locations.
  [[nodiscard]] bool sameShape(const Tree &other) const;

  /// Throw InternalError if invariants are violated.
  void validate() const;

  /// MessagePack round-trip, used by the Codebase DB.
  [[nodiscard]] msgpack::Value toMsgpack() const;
  static Tree fromMsgpack(const msgpack::Value &v);

private:
  std::vector<Node> nodes_;
};

/// Convenience recursive builder for tests and examples:
///   auto t = build("Fn", {build("Param"), build("Body", {build("Ret")})});
struct Builder {
  std::string label;
  std::vector<Builder> children;
};
[[nodiscard]] Builder build(std::string label, std::vector<Builder> children = {});
[[nodiscard]] Tree toTree(const Builder &b);

} // namespace sv::tree
