#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "corpus/corpus.hpp"
#include "fuzz/reduce.hpp"
#include "fuzz/rng.hpp"
#include "support/strings.hpp"

namespace sv::fuzz {

namespace {

[[nodiscard]] std::string hex16(u64 v) {
  static const char *digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[static_cast<usize>(i)] = digits[v & 0xf];
  return out;
}

[[nodiscard]] std::string crashHeader(const GeneratedProgram &p, Oracle oracle) {
  const char *lead = p.lang == Lang::MiniC ? "//" : "!";
  std::ostringstream os;
  os << lead << " svale-fuzz lang=" << langName(p.lang) << " model=" << p.model
     << " oracle=" << oracleName(oracle) << " seed=" << p.seed;
  return os.str();
}

[[nodiscard]] std::string crashFileName(const GeneratedProgram &p, Oracle oracle) {
  std::ostringstream os;
  os << "crash-" << langName(p.lang) << "-seed" << p.seed << "-" << oracleName(oracle)
     << (p.lang == Lang::MiniC ? ".cpp" : ".f90");
  return os.str();
}

[[nodiscard]] std::string firstLine(const std::string &s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

/// Shrink a failing program. A candidate keeps a removal only when it
/// still parses without introducing *new* unresolved names (deleting a
/// declaration would manufacture a fresh undeclared-variable failure) and
/// still fails the same oracle with the same message category (first line
/// — detail lines carry diffs that legitimately change as lines vanish).
[[nodiscard]] std::string shrink(const GeneratedProgram &program, const OracleFailure &failure) {
  const u32 bit = oracleBit(failure.oracle);
  const std::string wanted = firstLine(failure.message);
  const auto baseline = reductionGate(program.source, program.lang)
                            .value_or(std::vector<std::string>{});
  const auto stillFails = [&](const std::string &candidate) {
    const auto gate = reductionGate(candidate, program.lang);
    if (!gate ||
        !std::includes(baseline.begin(), baseline.end(), gate->begin(), gate->end()))
      return false;
    GeneratedProgram variant = program;
    variant.source = candidate;
    for (const auto &f : runOracles(variant, bit))
      if (firstLine(f.message) == wanted) return true;
    return false;
  };
  return reduceLines(program.source, stillFails);
}

[[nodiscard]] std::string writeCrash(const std::string &outDir, const std::string &name,
                                     const std::string &header, const std::string &body) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(outDir, ec);
  const fs::path path = fs::path(outDir) / name;
  std::ofstream out(path);
  if (!out) return {};
  out << header << "\n" << body;
  return path.string();
}

struct CorpusPick {
  Lang lang;
  std::string app;
  std::string model;
};

[[nodiscard]] CorpusPick pickCorpusRound(const FuzzOptions &o, Rng &rng) {
  const bool useF = o.genF && (!o.genC || rng.chance(50));
  CorpusPick pick;
  pick.lang = useF ? Lang::MiniF : Lang::MiniC;
  pick.app = useF ? "babelstream-fortran" : "babelstream";
  const auto models = useF ? corpus::babelstreamFortranModels() : corpus::babelstreamModels();
  pick.model = rng.pick(models);
  return pick;
}

} // namespace

FuzzReport runFuzz(const FuzzOptions &options) {
  FuzzReport report;
  std::ostringstream transcript;
  OracleContext context;

  const auto runProgram = [&](usize index, const GeneratedProgram &program) {
    ++report.programs;
    const auto failures = runOracles(program, options.oracleMask, &context);
    transcript << "gen i=" << index << " lang=" << langName(program.lang)
               << " seed=" << program.seed << " src=" << hex16(fnv1a64(program.source))
               << " verdict=" << (failures.empty() ? "ok" : "fail") << "\n";
    bool first = true;
    for (const auto &f : failures) {
      FuzzFailure rec;
      rec.lang = program.lang;
      rec.seed = program.seed;
      rec.oracle = f.oracle;
      rec.message = f.message;
      if (first) {
        // Reduce and persist only the first failure per program; later
        // oracles usually trip over the same root cause.
        if (options.reduce) rec.reduced = shrink(program, f);
        const std::string &body = rec.reduced.empty() ? program.source : rec.reduced;
        if (!options.outDir.empty())
          rec.file = writeCrash(options.outDir, crashFileName(program, f.oracle),
                                crashHeader(program, f.oracle), body);
        first = false;
      }
      report.failures.push_back(std::move(rec));
    }
  };

  for (usize i = 0; i < options.count; ++i) {
    const u64 iterSeed = mixSeed(options.seed, i);
    if (options.corpusMutants && i % 5 == 4 && (options.oracleMask & oracleBit(Oracle::Lint))) {
      Rng rng(iterSeed ^ 0x436f72707573ULL); // "Corpus"
      const CorpusPick pick = pickCorpusRound(options, rng);
      ++report.corpusRounds;
      const auto failures = runCorpusMutationOracle(pick.app, pick.model, iterSeed);
      transcript << "corpus i=" << i << " app=" << pick.app << " model=" << pick.model
                 << " seed=" << iterSeed << " verdict=" << (failures.empty() ? "ok" : "fail")
                 << "\n";
      for (const auto &f : failures) {
        FuzzFailure rec;
        rec.lang = pick.lang;
        rec.seed = iterSeed;
        rec.oracle = f.oracle;
        rec.message = "[" + pick.app + "/" + pick.model + "] " + f.message;
        report.failures.push_back(std::move(rec));
      }
      continue;
    }
    for (const Lang lang : {Lang::MiniC, Lang::MiniF}) {
      if (lang == Lang::MiniC && !options.genC) continue;
      if (lang == Lang::MiniF && !options.genF) continue;
      GenOptions gen;
      gen.lang = lang;
      gen.seed = iterSeed;
      gen.injectUndeclaredUse = options.injectUndeclaredUse;
      gen.injectDep = options.injectDep;
      gen.injectRange = options.injectRange;
      runProgram(i, generate(gen));
    }
  }

  report.transcript = transcript.str();
  return report;
}

ReplayResult replayCrashFile(const std::string &fileName, const std::string &content) {
  GeneratedProgram program;
  program.lang = str::endsWith(fileName, ".f90") || str::endsWith(fileName, ".f95") ||
                         str::endsWith(fileName, ".f")
                     ? Lang::MiniF
                     : Lang::MiniC;
  program.model = "serial";
  program.seed = 1;
  program.source = content;

  const auto lines = str::splitLines(content);
  if (!lines.empty() && lines.front().find("svale-fuzz") != std::string::npos) {
    std::istringstream header(lines.front());
    std::string token;
    while (header >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "lang") program.lang = value == "f" ? Lang::MiniF : Lang::MiniC;
      else if (key == "model") program.model = value;
      else if (key == "seed") program.seed = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  program.fileName = program.lang == Lang::MiniC ? "fuzz.cpp" : "fuzz.f90";

  const auto failures = runOracles(program, kAllOracles);
  if (failures.empty()) return {true, ""};
  std::ostringstream os;
  os << fileName << ": " << failures.size() << " oracle failure(s):";
  for (const auto &f : failures) os << "\n  [" << oracleName(f.oracle) << "] " << f.message;
  return {false, os.str()};
}

} // namespace sv::fuzz
