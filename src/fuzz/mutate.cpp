#include "fuzz/mutate.hpp"

#include <string_view>

#include "support/strings.hpp"

namespace sv::fuzz {

namespace {

[[nodiscard]] bool endsWithContinuation(const std::string &line) {
  const auto t = str::trim(line);
  return !t.empty() && (t.back() == '\\' || t.back() == '&');
}

/// A Fortran `!$omp` / `!$acc` directive line: nothing may come between it
/// and the statement it governs.
[[nodiscard]] bool isFortranDirective(const std::string &line) {
  const auto t = str::trim(line);
  return str::startsWith(t, "!$");
}

[[nodiscard]] bool isCDirectiveOrPp(const std::string &line) {
  const auto t = str::trim(line);
  return !t.empty() && t.front() == '#';
}

[[nodiscard]] bool safeForTrailingComment(const std::string &line, Lang lang) {
  if (str::trim(line).empty()) return false;
  for (const char c : line)
    if (c == '"' || c == '\'' || c == '#' || c == '!' || c == '\\' || c == '&') return false;
  if (lang == Lang::MiniC && line.find("//") != std::string::npos) return false;
  return true;
}

} // namespace

std::string mutateRenameIdentifiers(const std::string &source) {
  const auto isIdent = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  };
  std::string out;
  out.reserve(source.size() + source.size() / 8);
  usize i = 0;
  while (i < source.size()) {
    if (!isIdent(source[i])) {
      out += source[i++];
      continue;
    }
    usize j = i;
    while (j < source.size() && isIdent(source[j])) ++j;
    const std::string_view tok(source.data() + i, j - i);
    bool matches = tok.size() >= 2 && tok[0] >= 'a' && tok[0] <= 'z';
    for (usize k = 1; matches && k < tok.size(); ++k)
      matches = tok[k] >= '0' && tok[k] <= '9';
    out.append(tok);
    if (matches) out += "_r";
    i = j;
  }
  return out;
}

std::string mutateCommentsWhitespace(const std::string &source, Lang lang, Rng &rng) {
  const auto lines = str::splitLines(source);
  std::vector<std::string> out;
  out.reserve(lines.size() + 8);
  const std::string commentLead = lang == Lang::MiniC ? "//" : "!";
  for (usize i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    const bool prevContinues = i > 0 && endsWithContinuation(lines[i - 1]);
    const bool prevIsDirective =
        i > 0 && (lang == Lang::MiniF ? isFortranDirective(lines[i - 1])
                                      : isCDirectiveOrPp(lines[i - 1]));
    const bool insertionSafe = !prevContinues && !prevIsDirective;

    if (insertionSafe && rng.chance(12))
      out.push_back(commentLead + " fuzz-mutation " + std::to_string(rng.below(1000)));
    if (insertionSafe && rng.chance(10)) out.emplace_back();

    // Indentation jitter: add spaces in front of non-blank, non-directive
    // lines (Fortran free form and MiniC are both indentation-insensitive;
    // C preprocessor lines are left alone out of caution).
    const bool indentSafe = !str::trim(line).empty() && !isCDirectiveOrPp(line) &&
                            !isFortranDirective(line) && !prevContinues;
    if (indentSafe && rng.chance(20)) line = std::string(1 + rng.below(3), ' ') + line;

    const bool nextIsGoverned =
        lang == Lang::MiniF ? isFortranDirective(line)
                            : isCDirectiveOrPp(line); // no trailing comment on directives
    if (!nextIsGoverned && safeForTrailingComment(line, lang) && rng.chance(10))
      line += "  " + commentLead + " mut" + std::to_string(rng.below(1000));

    out.push_back(std::move(line));
  }
  if (rng.chance(50)) out.emplace_back();
  return str::join(out, "\n") + "\n";
}

} // namespace sv::fuzz
