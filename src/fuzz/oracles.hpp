// Differential and metamorphic oracles over the full pipeline. Every
// generated program is well-formed by construction (see generator.hpp), so
// *any* complaint from a frontend, the VM, the lowering, or a cross-layer
// mismatch is a pipeline bug:
//
//   round-trip  print(parse(src)) reparses, prints back byte-identically,
//               and both parses yield the same T_sem fingerprint
//   vm          VM output/steps/coverage equal before and after T_sem+i
//               inlining (the inliner is tree-level metadata; execution
//               must not change)
//   ir          lowered module passes ir::verify; ir::print round-trips
//               byte-identically; CFG shape, tracked slots, reaching-defs
//               and liveness facts are identical on the reparse
//   ted         d(T,T)=0 (engine on and off), engine-on == engine-off
//               values, symmetry, and triangle inequality against a rolling
//               pool of recent trees
//   lint        lint::run and lint::runIr are deterministic across fresh
//               parses, and comment/whitespace mutation preserves both the
//               diagnostic set (modulo locations) and the T_sem fingerprint
//   lb          every signature lower bound (size, histogram, binary
//               branch, and their max) underestimates the exact TED, and
//               cutoff mode returns min(exact, cutoff) for all three
//               algorithms, engine on and off — including agreement with
//               the exact distance whenever exact < cutoff
//   deps        lint::runDeps is deterministic across fresh parses, its
//               verdicts are invariant under comment/whitespace mutation
//               (modulo locations) and under statement-order-preserving
//               identifier renames (modulo symbol names), and no loop ever
//               carries both a provably-parallel note and a fired
//               loop-carried race
//   range       lint::runRange is deterministic across fresh parses and
//               invariant under comment/whitespace mutation (modulo
//               locations); every integer value the VM observes being
//               stored at a source line lies inside the static interval the
//               value-range analysis computed for the stores at that line
//               (soundness); with --inject-range the seeded out-of-bounds
//               and division-by-zero defects must both be reported
//   pipeline    indexing the program (all lint tiers on) through the
//               streaming task-graph schedule yields a byte-identical
//               serialised DB to the barrier baseline, under seeded worker
//               counts and seeded per-stage jitter — completion order must
//               never leak into an output
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "tree/tree.hpp"

namespace sv::fuzz {

enum class Oracle : u8 {
  RoundTrip = 0,
  Vm = 1,
  Ir = 2,
  Ted = 3,
  Lint = 4,
  Lb = 5,
  Deps = 6,
  Range = 7,
  Pipeline = 8,
};

[[nodiscard]] const char *oracleName(Oracle o);
[[nodiscard]] std::optional<Oracle> oracleFromName(std::string_view name);

[[nodiscard]] constexpr u32 oracleBit(Oracle o) { return 1u << static_cast<u32>(o); }
constexpr u32 kAllOracles = 0b111111111;

struct OracleFailure {
  Oracle oracle{};
  std::string message;
};

/// Cross-program state: rolling pools of recent T_sem trees the TED and
/// lower-bound metamorphic checks test new trees against. The pools are
/// separate so each oracle's behaviour is independent of which others are
/// enabled in the mask.
struct OracleContext {
  std::vector<tree::Tree> tedPool;
  std::vector<tree::Tree> lbPool;
  static constexpr usize kPoolCap = 8;
};

/// The T_sem tree of one generated program (parse + sema + tree build) —
/// how `svale cluster fuzz` turns generator output into a query corpus.
[[nodiscard]] tree::Tree semTree(const GeneratedProgram &program);

/// Run the enabled oracles over one generated program. Empty result = pass.
[[nodiscard]] std::vector<OracleFailure> runOracles(const GeneratedProgram &program, u32 mask,
                                                    OracleContext *context = nullptr);

/// True when `source` makes it through the frontend. The reducer's failure
/// predicate needs this: a shrink candidate that no longer parses does not
/// reproduce the failure, it destroys the program.
[[nodiscard]] bool parses(const std::string &source, Lang lang);

/// Stronger gate for shrink candidates. nullopt when the candidate does not
/// parse or (MiniF) lost its program unit; otherwise the sorted, deduped
/// set of names the frontend could not resolve (always empty for MiniF,
/// which has no resolution). The reducer rejects candidates whose set is
/// not a subset of the original program's — deleting a declaration line
/// manufactures a *new* undeclared-variable failure with the same oracle
/// verdict, and the reduction would slide away from the bug it is meant to
/// isolate.
[[nodiscard]] std::optional<std::vector<std::string>> reductionGate(const std::string &source,
                                                                    Lang lang);

/// Corpus-mutant round: mutate every file of the app/model port with
/// comments/whitespace and check lint verdicts (modulo locations) and T_sem
/// fingerprints are invariant. Only the mutation oracles run here — the
/// printer only guarantees the generator grammar, not the corpus language.
[[nodiscard]] std::vector<OracleFailure> runCorpusMutationOracle(const std::string &app,
                                                                const std::string &model,
                                                                u64 seed);

} // namespace sv::fuzz
