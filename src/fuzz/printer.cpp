#include "fuzz/printer.hpp"

#include "lang/directive.hpp"
#include "support/strings.hpp"

namespace sv::fuzz {

namespace {

using namespace lang::ast;

[[nodiscard]] bool isAtom(const Expr &e) {
  switch (e.kind) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::StringLit:
  case ExprKind::BoolLit:
  case ExprKind::Ident:
  case ExprKind::Call:
  case ExprKind::Index:
    return true;
  default:
    return false;
  }
}

// ------------------------------------------------------------------ C --

struct CPrinter {
  std::string out;
  usize indent = 0;

  void line(const std::string &s) { out += std::string(indent * 2, ' ') + s + "\n"; }

  [[nodiscard]] static std::string expr(const Expr &e) {
    const auto sub = [](const Expr &c) {
      return isAtom(c) ? expr(c) : "(" + expr(c) + ")";
    };
    switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::Ident:
      return e.text;
    case ExprKind::BoolLit:
      return e.text;
    case ExprKind::StringLit:
      return "\"" + e.text + "\"";
    case ExprKind::Binary:
      return sub(*e.args[0]) + " " + e.text + " " + sub(*e.args[1]);
    case ExprKind::Unary:
      if (e.text.rfind("post", 0) == 0) return sub(*e.args[0]) + e.text.substr(4);
      return e.text + sub(*e.args[0]);
    case ExprKind::Assign:
      return sub(*e.args[0]) + " " + e.text + " " + sub(*e.args[1]);
    case ExprKind::Conditional:
      return sub(*e.args[0]) + " ? " + sub(*e.args[1]) + " : " + sub(*e.args[2]);
    case ExprKind::Call: {
      std::string s = expr(*e.args[0]) + "(";
      for (usize i = 1; i < e.args.size(); ++i) {
        if (i > 1) s += ", ";
        s += expr(*e.args[i]);
      }
      return s + ")";
    }
    case ExprKind::Index:
      return sub(*e.args[0]) + "[" + expr(*e.args[1]) + "]";
    case ExprKind::Cast:
      return "(" + e.text + ")" + sub(*e.args[0]);
    case ExprKind::ImplicitCast:
      return expr(*e.args[0]); // sema artefact; spell the operand
    default:
      internalError("fuzz printer: unsupported C expression kind");
    }
  }

  [[nodiscard]] static std::string declText(const Stmt &s) {
    SV_CHECK(s.decls.size() == 1, "fuzz printer: multi-declarator DeclStmt");
    const VarDecl &d = s.decls[0];
    std::string t = d.type.str() + " " + d.name;
    for (const auto &dim : d.arrayDims) {
      SV_CHECK(dim != nullptr, "fuzz printer: C array declarator without a size");
      t += "[" + expr(*dim) + "]";
    }
    if (d.init) t += " = " + expr(*d.init);
    return t + ";";
  }

  void stmt(const Stmt &s) {
    switch (s.kind) {
    case StmtKind::Compound:
      for (const auto &c : s.children) stmt(*c);
      return;
    case StmtKind::DeclStmt:
      line(declText(s));
      return;
    case StmtKind::ExprStmt:
      line(expr(*s.cond) + ";");
      return;
    case StmtKind::If: {
      if (s.children[0]->kind == StmtKind::Compound) {
        line("if (" + expr(*s.cond) + ") {");
        ++indent;
        stmt(*s.children[0]);
        --indent;
        if (s.children.size() > 1) {
          line("} else {");
          ++indent;
          stmt(*s.children[1]);
          --indent;
        }
        line("}");
      } else {
        line("if (" + expr(*s.cond) + ")");
        ++indent;
        stmt(*s.children[0]);
        --indent;
        if (s.children.size() > 1) {
          line("else");
          ++indent;
          stmt(*s.children[1]);
          --indent;
        }
      }
      return;
    }
    case StmtKind::For: {
      std::string head = "for (";
      if (s.init) {
        SV_CHECK(s.init->kind == StmtKind::DeclStmt, "fuzz printer: non-decl for-init");
        head += declText(*s.init);
      } else {
        head += ";";
      }
      head += " ";
      if (s.cond) head += expr(*s.cond);
      head += "; ";
      if (s.step) head += expr(*s.step);
      head += ") {";
      SV_CHECK(s.children[0]->kind == StmtKind::Compound, "fuzz printer: unbraced for body");
      line(head);
      ++indent;
      stmt(*s.children[0]);
      --indent;
      line("}");
      return;
    }
    case StmtKind::While:
      SV_CHECK(s.children[0]->kind == StmtKind::Compound, "fuzz printer: unbraced while body");
      line("while (" + expr(*s.cond) + ") {");
      ++indent;
      stmt(*s.children[0]);
      --indent;
      line("}");
      return;
    case StmtKind::Return:
      line(s.cond ? "return " + expr(*s.cond) + ";" : "return;");
      return;
    case StmtKind::Break:
      line("break;");
      return;
    case StmtKind::Continue:
      line("continue;");
      return;
    case StmtKind::Directive:
      line("#pragma " + lang::directiveToString(*s.directive));
      if (!s.children.empty()) stmt(*s.children[0]);
      return;
    case StmtKind::Empty:
      line(";");
      return;
    default:
      internalError("fuzz printer: unsupported C statement kind");
    }
  }

  [[nodiscard]] std::string unit(const TranslationUnit &u) {
    for (usize fi = 0; fi < u.functions.size(); ++fi) {
      const FunctionDecl &f = u.functions[fi];
      std::string head = f.returnType.str() + " " + f.name + "(";
      for (usize i = 0; i < f.params.size(); ++i) {
        if (i) head += ", ";
        head += f.params[i].type.str() + " " + f.params[i].name;
      }
      head += ") {";
      line(head);
      ++indent;
      SV_CHECK(f.body && f.body->kind == StmtKind::Compound, "fuzz printer: bodyless function");
      stmt(*f.body);
      --indent;
      line("}");
      if (fi + 1 < u.functions.size()) out += "\n";
    }
    return out;
  }
};

// ------------------------------------------------------------ Fortran --

struct FPrinter {
  std::string out;
  usize indent = 0;

  void line(const std::string &s) { out += std::string(indent * 2, ' ') + s + "\n"; }

  [[nodiscard]] static std::string expr(const Expr &e) {
    const auto sub = [](const Expr &c) {
      return isAtom(c) ? expr(c) : "(" + expr(c) + ")";
    };
    switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::Ident:
      return e.text;
    case ExprKind::BoolLit:
      return e.text == "true" ? ".true." : ".false.";
    case ExprKind::Binary: {
      std::string op = e.text;
      if (op == "&&") op = ".and.";
      else if (op == "||") op = ".or.";
      else if (op == "!=") op = "/=";
      return sub(*e.args[0]) + " " + op + " " + sub(*e.args[1]);
    }
    case ExprKind::Unary:
      if (e.text == "!") return ".not. " + sub(*e.args[0]);
      return e.text + sub(*e.args[0]);
    case ExprKind::Call:
    case ExprKind::Index: {
      std::string s = expr(*e.args[0]) + "(";
      for (usize i = 1; i < e.args.size(); ++i) {
        if (i > 1) s += ", ";
        s += expr(*e.args[i]);
      }
      return s + ")";
    }
    case ExprKind::Range: {
      std::string s;
      if (e.args[0]) s += expr(*e.args[0]);
      s += ":";
      if (e.args.size() > 1 && e.args[1]) s += expr(*e.args[1]);
      return s;
    }
    default:
      internalError("fuzz printer: unsupported Fortran expression kind");
    }
  }

  [[nodiscard]] static std::string typeName(const Type &t) {
    if (t.name == "int") return "integer";
    if (t.name == "double") return "real(8)";
    if (t.name == "bool") return "logical";
    if (t.name == "char") return "character";
    internalError("fuzz printer: unsupported Fortran type " + t.name);
  }

  void declStmt(const Stmt &s) {
    for (const VarDecl &d : s.decls) {
      SV_CHECK(!d.init, "fuzz printer: initialised Fortran declaration");
      if (d.arrayDims.empty()) {
        line(typeName(d.type) + " :: " + d.name);
      } else if (d.arrayDims.size() == 1 && !d.arrayDims[0]) {
        line(typeName(d.type) + ", allocatable :: " + d.name + "(:)");
      } else {
        std::string dims;
        for (const auto &dim : d.arrayDims) {
          SV_CHECK(dim != nullptr, "fuzz printer: mixed deferred/explicit Fortran shape");
          if (!dims.empty()) dims += ", ";
          dims += expr(*dim);
        }
        line(typeName(d.type) + " :: " + d.name + "(" + dims + ")");
      }
    }
  }

  /// Single-line statement rendering for one-line ifs.
  [[nodiscard]] static std::string inlineStmt(const Stmt &s) {
    switch (s.kind) {
    case StmtKind::ExprStmt:
      return exprStmtText(s);
    case StmtKind::Return:
      return "return";
    case StmtKind::Break:
      return "exit";
    case StmtKind::Continue:
      return "cycle";
    default:
      internalError("fuzz printer: unsupported one-line if body");
    }
  }

  [[nodiscard]] static std::string exprStmtText(const Stmt &s) {
    const Expr &e = *s.cond;
    if (e.kind == ExprKind::Assign) return expr(*e.args[0]) + " = " + expr(*e.args[1]);
    SV_CHECK(e.kind == ExprKind::Call, "fuzz printer: unsupported Fortran statement expr");
    const std::string callee = e.args[0]->text;
    std::string args;
    for (usize i = 1; i < e.args.size(); ++i) {
      if (i > 1) args += ", ";
      args += expr(*e.args[i]);
    }
    if (callee == "print") return "print *, " + args;
    if (callee == "allocate" || callee == "deallocate") return callee + "(" + args + ")";
    return "call " + callee + (e.args.size() > 1 ? "(" + args + ")" : "()");
  }

  void stmt(const Stmt &s) {
    switch (s.kind) {
    case StmtKind::Compound:
      for (const auto &c : s.children) stmt(*c);
      return;
    case StmtKind::DeclStmt:
      declStmt(s);
      return;
    case StmtKind::ExprStmt:
      line(exprStmtText(s));
      return;
    case StmtKind::ArrayAssign:
      line(expr(*s.cond) + " = " + expr(*s.step));
      return;
    case StmtKind::If:
      if (s.children[0]->kind != StmtKind::Compound) {
        line("if (" + expr(*s.cond) + ") " + inlineStmt(*s.children[0]));
        return;
      }
      line("if (" + expr(*s.cond) + ") then");
      ++indent;
      stmt(*s.children[0]);
      --indent;
      if (s.children.size() > 1) {
        line("else");
        ++indent;
        stmt(*s.children[1]);
        --indent;
      }
      line("end if");
      return;
    case StmtKind::ForRange:
      line("do " + s.loopVar + " = " + expr(*s.cond) + ", " + expr(*s.step));
      ++indent;
      stmt(*s.children[0]);
      --indent;
      line("end do");
      return;
    case StmtKind::While:
      line("do while (" + expr(*s.cond) + ")");
      ++indent;
      stmt(*s.children[0]);
      --indent;
      line("end do");
      return;
    case StmtKind::Return:
      line("return");
      return;
    case StmtKind::Break:
      line("exit");
      return;
    case StmtKind::Continue:
      line("cycle");
      return;
    case StmtKind::Directive: {
      const Directive &d = *s.directive;
      if (d.family == "fortran" && d.kind.size() == 1 && d.kind[0] == "concurrent") {
        // DO CONCURRENT is parsed into a synthetic directive wrapper.
        const Stmt &loop = *s.children[0];
        SV_CHECK(loop.kind == StmtKind::ForRange, "fuzz printer: concurrent without loop");
        line("do concurrent (" + loop.loopVar + " = " + expr(*loop.cond) + ":" +
             expr(*loop.step) + ")");
        ++indent;
        stmt(*loop.children[0]);
        --indent;
        line("end do");
        return;
      }
      line("!$" + lang::directiveToString(d));
      if (!s.children.empty()) stmt(*s.children[0]);
      return;
    }
    case StmtKind::Empty:
      return;
    default:
      internalError("fuzz printer: unsupported Fortran statement kind");
    }
  }

  [[nodiscard]] std::string unit(const TranslationUnit &u) {
    for (usize fi = 0; fi < u.functions.size(); ++fi) {
      const FunctionDecl &f = u.functions[fi];
      const bool isProgram = f.name == u.programName;
      if (isProgram) {
        line("program " + f.name);
      } else {
        std::string head = "subroutine " + f.name + "(";
        for (usize i = 0; i < f.params.size(); ++i) {
          if (i) head += ", ";
          head += f.params[i].name;
        }
        line(head + ")");
      }
      ++indent;
      // The parser folded parameter declaration lines into the param types;
      // synthesise them back, in parameter order, ahead of the body.
      for (const Param &p : f.params) line(typeName(p.type) + " :: " + p.name);
      SV_CHECK(f.body && f.body->kind == StmtKind::Compound, "fuzz printer: bodyless unit");
      stmt(*f.body);
      --indent;
      line(isProgram ? "end program " + f.name : "end subroutine " + f.name);
      if (fi + 1 < u.functions.size()) out += "\n";
    }
    return out;
  }
};

} // namespace

std::string printUnit(const lang::ast::TranslationUnit &unit, Lang lang) {
  if (lang == Lang::MiniC) return CPrinter{}.unit(unit);
  return FPrinter{}.unit(unit);
}

} // namespace sv::fuzz
