// Parser for `ir::print` output, used by the IR round-trip oracle: a module
// printed and reparsed must verify cleanly, print back byte-identically, and
// yield the same CFG and dataflow facts as the original. Function roles and
// source locations are not part of the printed form (by design — T_ir
// ignores them), so the reparsed module carries defaults there; the oracle
// compares only printed-form-derived facts.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace sv::fuzz {

/// Parse text produced by `ir::print`. Throws ParseError on malformed input.
[[nodiscard]] ir::Module parseIrText(const std::string &text);

} // namespace sv::fuzz
