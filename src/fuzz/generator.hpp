// Seeded random-program generators for MiniC and MiniF. Programs are
// well-formed by construction — the differential oracles (fuzz/oracles.hpp)
// treat *any* frontend/VM/lowering complaint about a generated program as a
// pipeline bug, so the generator's job is to stay inside the guarantees:
//
//   * every variable is declared and initialised before use,
//   * every loop has a literal (or literal-derived) trip count,
//   * integer stores are range-wrapped (`% 1009` / `mod(x, 1009)`) and
//     integer expressions multiply at most once, so no intermediate ever
//     approaches i64 overflow (the VM does i64 arithmetic; signed overflow
//     would be UB under the CI UBSan arm),
//   * divisors and mod operands are non-zero literals,
//   * doubles never convert to int (double->i64 casts of huge values are UB),
//   * array indices are loop variables bounded by the array length,
//   * calls form a DAG (main -> helpers, helpers call nothing), and
//   * OpenMP regions only write reduction variables (`r += e`), loop-local
//     declarations, privatised scalars, or elements indexed by the loop var.
#pragma once

#include <string>

#include "support/common.hpp"

namespace sv::fuzz {

enum class Lang { MiniC, MiniF };

[[nodiscard]] constexpr const char *langName(Lang l) { return l == Lang::MiniC ? "c" : "f"; }

struct GenOptions {
  Lang lang = Lang::MiniC;
  u64 seed = 1;
  /// Deliberately emit one use of an undeclared variable in the entry
  /// unit — the self-test hook: the differential harness must catch it
  /// (the VM evaluates unknown identifiers as name strings, so arithmetic
  /// on one throws), shrink it, and write it to the crash corpus.
  bool injectUndeclaredUse = false;
  /// Emit an on-demand dependence payload in the entry unit: a parallel
  /// loop with a proven loop-carried flow dependence (a[i] = a[i-1] + e)
  /// and an unclaused scalar accumulation loop. Unlike injectUndeclaredUse
  /// the program stays well-formed — the payload exists to exercise the
  /// dependence lint tier (lint::runDeps) and its metamorphic oracle.
  bool injectDep = false;
  /// Emit the value-range payload in the entry unit: a stack array store
  /// with a provably out-of-bounds index and an integer division by a
  /// variable proven zero, both behind a runtime-false guard over array
  /// contents the interval analysis cannot see through. The program still
  /// executes cleanly; the range oracle asserts lint::runRange catches both.
  bool injectRange = false;
};

struct GeneratedProgram {
  Lang lang = Lang::MiniC;
  u64 seed = 0;
  std::string fileName; ///< "fuzz.cpp" or "fuzz.f90"
  std::string model;    ///< "serial" or "omp" — drives compile flags / ir::Model
  std::string source;
  bool injectRange = false; ///< the range payload is present (oracle must fire)
};

/// Generate one deterministic program from the seed.
[[nodiscard]] GeneratedProgram generate(const GenOptions &options);

} // namespace sv::fuzz
