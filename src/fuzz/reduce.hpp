// Greedy delta-debugging reducer (ddmin over line chunks): repeatedly try
// removing chunks of lines, keeping any removal under which the failure
// predicate still holds, halving the chunk size until single lines. The
// predicate gets candidate source text and must return true iff the same
// oracle failure still reproduces (programs that no longer parse return
// false inside the predicate). Bounded by `maxChecks` predicate calls so a
// pathological failure cannot stall the fuzz run.
#pragma once

#include <functional>
#include <string>

#include "support/common.hpp"

namespace sv::fuzz {

using StillFails = std::function<bool(const std::string &)>;

/// Shrink `source` while `stillFails` holds. Returns the smallest variant
/// found (at worst, `source` itself).
[[nodiscard]] std::string reduceLines(const std::string &source, const StillFails &stillFails,
                                      usize maxChecks = 400);

} // namespace sv::fuzz
