#include "fuzz/reduce.hpp"

#include <algorithm>
#include <vector>

#include "support/strings.hpp"

namespace sv::fuzz {

namespace {

[[nodiscard]] std::string joinLines(const std::vector<std::string> &lines) {
  return lines.empty() ? std::string{} : str::join(lines, "\n") + "\n";
}

} // namespace

std::string reduceLines(const std::string &source, const StillFails &stillFails, usize maxChecks) {
  std::vector<std::string> lines = str::splitLines(source);
  usize checks = 0;
  // Windows slide by ONE line, not by the chunk size: a removable block
  // (e.g. a 3-line empty loop) rarely sits on a chunk-aligned boundary,
  // and the predicate is cheap for the small programs we shrink. Repeat
  // the whole cascade until a full pass removes nothing.
  bool progress = true;
  while (progress && checks < maxChecks) {
    progress = false;
    for (usize chunk = std::max<usize>(lines.size() / 2, 1); chunk >= 1; chunk /= 2) {
      usize start = 0;
      while (start < lines.size() && checks < maxChecks) {
        std::vector<std::string> candidate;
        candidate.reserve(lines.size());
        const usize end = std::min(start + chunk, lines.size());
        for (usize i = 0; i < lines.size(); ++i)
          if (i < start || i >= end) candidate.push_back(lines[i]);
        if (candidate.empty()) {
          ++start;
          continue;
        }
        ++checks;
        if (stillFails(joinLines(candidate))) {
          lines = std::move(candidate);
          progress = true;
          // Same start now points at the lines that slid into the removed
          // window; retry there.
        } else {
          ++start;
        }
      }
      if (chunk == 1) break;
    }
  }
  return joinLines(lines);
}

} // namespace sv::fuzz
