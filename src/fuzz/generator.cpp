#include "fuzz/generator.hpp"

#include <vector>

#include "fuzz/rng.hpp"
#include "support/strings.hpp"

namespace sv::fuzz {

namespace {

/// Variable kinds the generators type-track. 'i' int, 'd' double, 'b' bool.
struct Var {
  std::string name;
  char type = 'i';
  bool mut = true; ///< false: loop counters / array-length vars, read-only
  /// Loop counter whose bound is the array length — the only names element
  /// reads may index with. A counter bounded by some other literal can
  /// exceed the array (e.g. `for (i < 8)` over a length-4 array).
  bool arrayIdx = false;
};

/// A generated expression string plus whether it is a single primary token
/// (identifier, literal, call, index). Composite operands are always
/// parenthesised; bare identifiers never are — `(v) - x` would trip the
/// MiniC cast heuristic and reparse as a cast of `-x`.
struct Ex {
  std::string text;
  bool atomic = false;
};

[[nodiscard]] std::string paren(const Ex &e) {
  return e.atomic ? e.text : "(" + e.text + ")";
}

struct Helper {
  std::string name;
  char ret = 'd';
  std::vector<char> params;
};

// ------------------------------------------------------------ generator --

/// Shared skeleton for both dialects: tracks scopes, names, helpers and the
/// optional array; the dialect-specific subclass-free switches live in the
/// emit functions below.
struct Gen {
  Rng rng;
  Lang lang;
  bool omp = false;
  std::vector<std::string> lines;
  usize indent = 0;
  std::vector<std::vector<Var>> scopes;
  std::vector<Helper> helpers;
  std::string arrayName;  ///< empty when no array in scope
  std::string arrayLen;   ///< name of the immutable length variable
  usize nameCounter = 0;
  usize stmtBudget = 0;
  /// Calls form a DAG: only the entry unit may call helpers. Set while a
  /// helper body is generated so callStmt() stays silent there — otherwise
  /// helpers could call each other (or themselves) and recurse forever.
  bool inHelper = false;

  explicit Gen(const GenOptions &o) : rng(o.seed ^ (o.lang == Lang::MiniC ? 0xC0DEu : 0xF0DEu)),
                                      lang(o.lang) {}

  [[nodiscard]] bool isC() const { return lang == Lang::MiniC; }

  void emit(const std::string &line) {
    lines.push_back(std::string(indent * 2, ' ') + line);
  }

  [[nodiscard]] std::string fresh(const char *stem) {
    return stem + std::to_string(nameCounter++);
  }

  void push() { scopes.emplace_back(); }
  void pop() { scopes.pop_back(); }
  void declare(std::string name, char type, bool mut = true, bool arrayIdx = false) {
    scopes.back().push_back(Var{std::move(name), type, mut, arrayIdx});
  }

  [[nodiscard]] std::vector<Var> visible(char type, bool needMut = false) const {
    std::vector<Var> out;
    for (const auto &s : scopes)
      for (const auto &v : s)
        if (v.type == type && (!needMut || v.mut)) out.push_back(v);
    return out;
  }

  // ------------------------------------------------------- expressions --

  [[nodiscard]] Ex intLit(i64 lo = 0, i64 hi = 9) {
    return {std::to_string(rng.range(lo, hi)), true};
  }

  [[nodiscard]] Ex doubleLit() {
    static const char *kFrac[] = {"0", "25", "5", "75", "125"};
    return {std::to_string(rng.range(0, 12)) + "." + kFrac[rng.below(5)], true};
  }

  [[nodiscard]] Ex boolLit() {
    const bool v = rng.chance(50);
    if (isC()) return {v ? "true" : "false", true};
    return {v ? ".true." : ".false.", true};
  }

  [[nodiscard]] Ex intLeaf() {
    const auto vars = visible('i');
    if (!vars.empty() && rng.chance(60)) return {rng.pick(vars).name, true};
    return intLit();
  }

  [[nodiscard]] Ex doubleLeaf() {
    const auto vars = visible('d');
    if (!vars.empty() && rng.chance(60)) return {rng.pick(vars).name, true};
    return doubleLit();
  }

  /// Integer expression. `mulBudget` caps multiplications (and Fortran `**`)
  /// so the magnitude stays far below i64 overflow; see generator.hpp.
  [[nodiscard]] Ex intExpr(usize depth, usize mulBudget = 1) {
    if (depth == 0 || rng.chance(35)) return intLeaf();
    const usize roll = rng.below(6);
    if (roll < 2) {
      const Ex a = intExpr(depth - 1, 0), b = intExpr(depth - 1, 0);
      return {paren(a) + (rng.chance(50) ? " + " : " - ") + paren(b), false};
    }
    if (roll == 2 && mulBudget > 0) {
      const Ex a = intExpr(depth - 1, 0), b = intExpr(depth - 1, 0);
      return {paren(a) + " * " + paren(b), false};
    }
    if (roll == 3) { // divide by a non-zero literal
      const Ex a = intExpr(depth - 1, mulBudget);
      return {paren(a) + " / " + std::to_string(rng.range(1, 9)), false};
    }
    if (roll == 4 && isC()) { // modulo a non-zero literal (C spelling)
      const Ex a = intExpr(depth - 1, mulBudget);
      return {paren(a) + " % " + std::to_string(rng.range(2, 9)), false};
    }
    if (roll == 4 && !isC() && mulBudget > 0) { // Fortran power, leaf base
      const Ex base = intLeaf();
      return {paren(base) + " ** " + std::to_string(rng.range(2, 3)), false};
    }
    if (roll == 5) {
      const Ex a = intExpr(depth - 1, mulBudget);
      return {"-" + paren(a), false};
    }
    return intLeaf();
  }

  /// Double expression. Integer operands are allowed (usual promotions);
  /// doubles never flow the other way.
  [[nodiscard]] Ex doubleExpr(usize depth, usize mulBudget = 2) {
    if (depth == 0 || rng.chance(30)) return doubleLeaf();
    const usize roll = rng.below(8);
    if (roll < 2) {
      const Ex a = doubleExpr(depth - 1, mulBudget), b = doubleExpr(depth - 1, 0);
      return {paren(a) + (rng.chance(50) ? " + " : " - ") + paren(b), false};
    }
    if (roll == 2 && mulBudget > 0) {
      const Ex a = doubleExpr(depth - 1, mulBudget - 1), b = doubleExpr(depth - 1, 0);
      return {paren(a) + " * " + paren(b), false};
    }
    if (roll == 3) {
      const Ex a = doubleExpr(depth - 1, mulBudget);
      return {paren(a) + " / " + doubleLit().text, false}; // literal, non-zero by table
    }
    if (roll == 4) { // absolute value via the model-agnostic builtin
      const Ex a = doubleExpr(depth - 1, mulBudget);
      return {(isC() ? "fabs(" : "abs(") + a.text + ")", true};
    }
    if (roll == 5) {
      const Ex a = doubleExpr(depth - 1, 0), b = doubleExpr(depth - 1, 0);
      return {(isC() ? (rng.chance(50) ? "fmin(" : "fmax(") : (rng.chance(50) ? "min(" : "max("))
                  + a.text + ", " + b.text + ")",
              true};
    }
    if (roll == 6) { // promote an int subexpression
      const Ex a = intExpr(depth - 1);
      if (isC() && rng.chance(50)) return {"(double)" + paren(a), false}; // explicit cast
      return a;
    }
    if (roll == 7 && !arrayName.empty()) {
      // Element read, only where a bounded index variable exists.
      const auto idx = loopIndexInScope();
      if (!idx.empty())
        return {arrayName + (isC() ? "[" + idx + "]" : "(" + idx + ")"), true};
    }
    return doubleLeaf();
  }

  /// A loop variable bounded by the array length (safe array index), or "".
  [[nodiscard]] std::string loopIndexInScope() const {
    for (const auto &s : scopes)
      for (const auto &v : s)
        if (v.arrayIdx) return v.name;
    return {};
  }

  [[nodiscard]] Ex boolExpr(usize depth) {
    if (depth == 0 || rng.chance(25)) {
      const auto vars = visible('b');
      if (!vars.empty() && rng.chance(50)) return {rng.pick(vars).name, true};
      return boolLit();
    }
    const usize roll = rng.below(5);
    if (roll < 2) { // comparison
      const bool dbl = rng.chance(50);
      const Ex a = dbl ? doubleExpr(1) : intExpr(1);
      const Ex b = dbl ? doubleExpr(1) : intExpr(1);
      static const char *kCmp[] = {"<", ">", "<=", ">=", "==", "!="};
      std::string op = kCmp[rng.below(6)];
      if (!isC() && op == "!=") op = "/=";
      return {paren(a) + " " + op + " " + paren(b), false};
    }
    if (roll == 2) {
      const Ex a = boolExpr(depth - 1), b = boolExpr(depth - 1);
      if (isC()) return {paren(a) + (rng.chance(50) ? " && " : " || ") + paren(b), false};
      return {paren(a) + (rng.chance(50) ? " .and. " : " .or. ") + paren(b), false};
    }
    if (roll == 3) {
      const Ex a = boolExpr(depth - 1);
      return {(isC() ? "!" : ".not. ") + paren(a), false};
    }
    return boolLit();
  }

  /// Right-hand side for an int store: range-wrapped so stored ints stay in
  /// (-1009, 1009) regardless of loop-carried accumulation.
  [[nodiscard]] std::string wrappedIntRhs() {
    const Ex e = intExpr(2);
    if (isC()) return paren(e) + " % 1009";
    return "mod(" + e.text + ", 1009)";
  }
};

// ----------------------------------------------------------- MiniC body --

struct CGen : Gen {
  using Gen::Gen;

  void declStmt() {
    const char t = "idb"[rng.below(3)];
    const std::string name = fresh("v");
    if (t == 'i') emit("int " + name + " = " + wrappedIntRhs() + ";");
    else if (t == 'd') emit("double " + name + " = " + doubleExpr(2).text + ";");
    else emit("bool " + name + " = " + boolExpr(1).text + ";");
    declare(name, t);
  }

  void assignStmt() {
    for (const char t : {"idb"[rng.below(3)], 'd', 'i'}) {
      const auto vars = visible(t, /*needMut=*/true);
      if (vars.empty()) continue;
      const auto &v = rng.pick(vars);
      if (t == 'i') emit(v.name + " = " + wrappedIntRhs() + ";");
      else if (t == 'b') emit(v.name + " = " + boolExpr(1).text + ";");
      else if (rng.chance(30)) emit(v.name + " += " + doubleExpr(1).text + ";");
      else if (rng.chance(20)) emit(v.name + " *= " + doubleLit().text + ";");
      else emit(v.name + " = " + doubleExpr(2).text + ";");
      return;
    }
  }

  void printStmt() {
    std::string args;
    const usize n = 1 + rng.below(2);
    for (usize i = 0; i < n; ++i) {
      if (i) args += ", ";
      args += rng.chance(70) ? doubleExpr(1).text : intExpr(1).text;
    }
    emit("printf(" + args + ");");
  }

  void ifStmt(usize depth) {
    emit("if (" + boolExpr(2).text + ") {");
    ++indent;
    push();
    block(depth - 1, 1 + rng.below(2));
    pop();
    --indent;
    if (rng.chance(50)) {
      emit("} else {");
      ++indent;
      push();
      block(depth - 1, 1 + rng.below(2));
      pop();
      --indent;
    }
    emit("}");
  }

  void forStmt(usize depth) {
    const std::string i = fresh("i");
    const bool overArray = !arrayName.empty() && rng.chance(50);
    const std::string bound = overArray ? arrayLen : std::to_string(rng.range(2, 8));
    emit("for (int " + i + " = 0; " + i + " < " + bound + "; ++" + i + ") {");
    ++indent;
    push();
    declare(i, 'i', /*mut=*/false, /*arrayIdx=*/overArray);
    if (overArray && rng.chance(70)) emit(arrayName + "[" + i + "] = " + doubleExpr(2).text + ";");
    block(depth - 1, 1 + rng.below(2));
    pop();
    --indent;
    emit("}");
  }

  void whileStmt(usize depth) {
    const std::string w = fresh("w");
    const std::string bound = std::to_string(rng.range(2, 6));
    emit("int " + w + " = 0;");
    emit("while (" + w + " < " + bound + ") {");
    ++indent;
    push();
    declare(w, 'i', /*mut=*/false); // body must not retarget the counter
    block(depth - 1, 1 + rng.below(2));
    emit(w + " = " + w + " + 1;");
    pop();
    --indent;
    emit("}");
  }

  void callStmt() {
    if (helpers.empty() || inHelper) return;
    const auto &h = rng.pick(helpers);
    std::string args;
    for (usize i = 0; i < h.params.size(); ++i) {
      if (i) args += ", ";
      args += h.params[i] == 'i' ? intExpr(1).text : doubleExpr(1).text;
    }
    const std::string name = fresh("v");
    const char t = h.ret;
    emit((t == 'i' ? "int " : "double ") + name + " = " + h.name + "(" + args + ");");
    declare(name, t);
  }

  /// An OpenMP parallel-for region, shaped to be lint-clean: reductions use
  /// the `r += e` pattern, other writes target loop-local declarations,
  /// privatised scalars, or elements indexed by the loop variable.
  void ompRegion() {
    const std::string i = fresh("i");
    const bool overArray = !arrayName.empty() && rng.chance(60);
    const std::string bound = overArray ? arrayLen : std::to_string(rng.range(4, 8));
    const usize kind = rng.below(overArray ? 3 : 2);
    if (kind == 0) { // reduction
      const std::string r = fresh("r");
      emit("double " + r + " = 0.0;");
      declare(r, 'd');
      emit("#pragma omp parallel for reduction(+:" + r + ")");
      emit("for (int " + i + " = 0; " + i + " < " + bound + "; ++" + i + ") {");
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/overArray);
      if (rng.chance(40)) {
        const std::string t = fresh("t");
        emit("double " + t + " = " + doubleExpr(2).text + ";");
        declare(t, 'd');
        emit(r + " += " + t + " + " + doubleExpr(1).text + ";");
      } else {
        emit(r + " += " + doubleExpr(2).text + ";");
      }
      pop();
      --indent;
      emit("}");
      emit("printf(" + r + ");");
    } else if (kind == 1) { // privatised scratch scalar
      const std::string t = fresh("t");
      emit("double " + t + " = 0.0;");
      emit("#pragma omp parallel for private(" + t + ")");
      emit("for (int " + i + " = 0; " + i + " < " + bound + "; ++" + i + ") {");
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/overArray);
      emit(t + " = " + doubleExpr(2).text + ";");
      if (overArray) // only an arrayLen-bounded index may store to the array
        emit(arrayName + "[" + i + "] = " + t + " + " + doubleExpr(1).text + ";");
      else emit(t + " = " + t + " * " + doubleLit().text + ";");
      pop();
      --indent;
      emit("}");
      declare(t, 'd');
    } else { // elementwise map over the array (kind 2 implies overArray)
      emit("#pragma omp parallel for");
      emit("for (int " + i + " = 0; " + i + " < " + bound + "; ++" + i + ") {");
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/true);
      emit(arrayName + "[" + i + "] = " + arrayName + "[" + i + "] + " + doubleExpr(2).text + ";");
      pop();
      --indent;
      emit("}");
    }
  }

  /// The --inject-dep payload: a parallel loop carrying a proven flow
  /// dependence (the syntactic lint tier cannot see it — the write is
  /// element-indexed by the loop variable) plus an unclaused scalar
  /// accumulation, so the dependence tier has a LoopCarriedRace and a
  /// MissedReduction to find in every generated program.
  void depRegion() {
    const std::string i = fresh("i");
    emit("#pragma omp parallel for");
    emit("for (int " + i + " = 1; " + i + " < " + arrayLen + "; ++" + i + ") {");
    ++indent;
    push();
    declare(i, 'i', /*mut=*/false, /*arrayIdx=*/true);
    emit(arrayName + "[" + i + "] = " + arrayName + "[" + i + " - 1] + " + doubleExpr(1).text +
         ";");
    pop();
    --indent;
    emit("}");
    const std::string r = fresh("r");
    const std::string j = fresh("i");
    emit("double " + r + " = 0.0;");
    emit("#pragma omp parallel for");
    emit("for (int " + j + " = 0; " + j + " < " + arrayLen + "; ++" + j + ") {");
    ++indent;
    push();
    declare(j, 'i', /*mut=*/false, /*arrayIdx=*/true);
    emit(r + " += " + arrayName + "[" + j + "];");
    pop();
    --indent;
    emit("}");
    declare(r, 'd');
    emit("printf(" + r + ");");
  }

  /// The --inject-range payload: a seeded out-of-bounds store and a zero
  /// divisor behind a guard over array *contents*, which the interval
  /// analysis does not track — statically the branch is reachable and the
  /// range tier must flag both defects, while at runtime the guard is
  /// always false so every executing oracle stays clean.
  void rangeRegion() {
    const std::string b = fresh("rb");
    const std::string z = fresh("rz");
    const std::string q = fresh("rq");
    const std::string i = fresh("i");
    emit("double " + b + "[8];");
    emit("int " + z + " = 0;");
    emit("for (int " + i + " = 0; " + i + " < 8; ++" + i + ") {");
    ++indent;
    emit(b + "[" + i + "] = 0.5;");
    --indent;
    emit("}");
    emit("if (" + b + "[0] > 9.5) {");
    ++indent;
    emit(b + "[11] = 1.0;");
    emit("int " + q + " = 7 / " + z + ";");
    emit("printf(" + q + ");");
    --indent;
    emit("}");
  }

  void block(usize depth, usize count) {
    for (usize k = 0; k < count && stmtBudget > 0; ++k) {
      --stmtBudget;
      const usize roll = rng.below(10);
      if (roll < 3) declStmt();
      else if (roll < 5) assignStmt();
      else if (roll == 5) printStmt();
      else if (roll == 6 && depth > 0) ifStmt(depth);
      else if (roll == 7 && depth > 0) forStmt(depth);
      else if (roll == 8 && depth > 0) whileStmt(depth);
      else if (roll == 9) callStmt();
      else assignStmt();
    }
  }

  void helper(const Helper &h) {
    emit(std::string(h.ret == 'i' ? "int " : "double ") + h.name + "(" + [&] {
      std::string ps;
      for (usize i = 0; i < h.params.size(); ++i) {
        if (i) ps += ", ";
        ps += std::string(h.params[i] == 'i' ? "int" : "double") + " p" + std::to_string(i);
      }
      return ps;
    }() + ") {");
    ++indent;
    push();
    for (usize i = 0; i < h.params.size(); ++i)
      declare("p" + std::to_string(i), h.params[i], /*mut=*/false);
    inHelper = true;
    stmtBudget = 3 + rng.below(3);
    block(1, stmtBudget);
    inHelper = false;
    if (h.ret == 'i') emit("return " + wrappedIntRhs() + ";");
    else emit("return " + doubleExpr(2).text + ";");
    pop();
    --indent;
    emit("}");
    emit("");
  }

  [[nodiscard]] std::string run(const GenOptions &o) {
    omp = rng.chance(50);
    const usize nHelpers = rng.below(3);
    for (usize i = 0; i < nHelpers; ++i) {
      Helper h;
      h.name = "f" + std::to_string(i);
      h.ret = rng.chance(60) ? 'd' : 'i';
      const usize np = 1 + rng.below(2);
      for (usize p = 0; p < np; ++p) h.params.push_back(rng.chance(50) ? 'i' : 'd');
      helpers.push_back(h);
    }
    for (const auto &h : helpers) helper(h);

    emit("int main() {");
    ++indent;
    push();
    if (o.injectUndeclaredUse) {
      // The planted generator bug: u_missing is never declared. The VM
      // evaluates it as the string "u_missing", and the arithmetic throws —
      // the differential harness must catch, shrink, and archive this.
      emit("double z_bug = u_missing + 1.5;");
      emit("printf(z_bug);");
    }
    if (rng.chance(65) || o.injectDep) { // the dep payload needs the array
      arrayLen = fresh("n");
      arrayName = fresh("a");
      emit("int " + arrayLen + " = " + std::to_string(rng.range(4, 12)) + ";");
      declare(arrayLen, 'i', /*mut=*/false);
      emit("double* " + arrayName + " = malloc(" + arrayLen + " * sizeof(double));");
      const std::string i = fresh("i");
      emit("for (int " + i + " = 0; " + i + " < " + arrayLen + "; ++" + i + ") {");
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/true);
      emit(arrayName + "[" + i + "] = " + doubleExpr(1).text + ";");
      pop();
      --indent;
      emit("}");
    }
    stmtBudget = 8 + rng.below(8);
    block(2, stmtBudget);
    if (omp) ompRegion();
    if (o.injectDep) depRegion();
    if (o.injectRange) rangeRegion();
    printStmt();
    emit("return 0;");
    pop();
    --indent;
    emit("}");
    return str::join(lines, "\n") + "\n";
  }
};

// ----------------------------------------------------------- MiniF body --

struct FGen : Gen {
  using Gen::Gen;
  std::vector<std::string> declLines; ///< declarations, emitted before stmts
  std::vector<std::string> loopVars;

  [[nodiscard]] std::string newLoopVar() {
    const std::string i = fresh("i");
    declLines.push_back("integer :: " + i);
    return i;
  }

  void declVar(char t, const std::string &name) {
    if (t == 'i') declLines.push_back("integer :: " + name);
    else if (t == 'd') declLines.push_back("real(8) :: " + name);
    else declLines.push_back("logical :: " + name);
  }

  void assignStmt() {
    for (const char t : {"idb"[rng.below(3)], 'd', 'i'}) {
      const auto vars = visible(t, /*needMut=*/true);
      if (vars.empty()) continue;
      const auto &v = rng.pick(vars);
      if (t == 'i') emit(v.name + " = " + wrappedIntRhs());
      else if (t == 'b') emit(v.name + " = " + boolExpr(1).text);
      else emit(v.name + " = " + doubleExpr(2).text);
      return;
    }
  }

  void printStmt() {
    std::string args;
    const usize n = 1 + rng.below(2);
    for (usize i = 0; i < n; ++i) {
      if (i) args += ", ";
      args += rng.chance(70) ? doubleExpr(1).text : intExpr(1).text;
    }
    emit("print *, " + args);
  }

  void ifStmt(usize depth) {
    if (depth == 0 || rng.chance(25)) { // one-line form
      const auto vars = visible('d', /*needMut=*/true);
      if (vars.empty()) return;
      emit("if (" + boolExpr(1).text + ") " + rng.pick(vars).name + " = " +
           doubleExpr(1).text);
      return;
    }
    emit("if (" + boolExpr(2).text + ") then");
    ++indent;
    push();
    block(depth - 1, 1 + rng.below(2));
    pop();
    --indent;
    if (rng.chance(50)) {
      emit("else");
      ++indent;
      push();
      block(depth - 1, 1 + rng.below(2));
      pop();
      --indent;
    }
    emit("end if");
  }

  void doStmt(usize depth) {
    const std::string i = newLoopVar();
    const bool overArray = !arrayName.empty() && rng.chance(50);
    const bool concurrent = rng.chance(15);
    const std::string hi = overArray ? arrayLen : std::to_string(rng.range(2, 8));
    if (concurrent) emit("do concurrent (" + i + " = 1:" + hi + ")");
    else emit("do " + i + " = 1, " + hi);
    ++indent;
    push();
    declare(i, 'i', /*mut=*/false, /*arrayIdx=*/overArray);
    if (overArray && rng.chance(70)) emit(arrayName + "(" + i + ") = " + doubleExpr(2).text);
    if (!concurrent) block(depth - 1, 1 + rng.below(2));
    pop();
    --indent;
    emit("end do");
  }

  void callStmt() {
    if (helpers.empty()) return;
    const auto &h = rng.pick(helpers);
    // First parameter is the inout result slot: pass a distinct mutable
    // double; remaining parameters are read-only and may be any variable
    // (Fortran passes everything by reference, so literals stay out).
    const auto outs = visible('d', /*needMut=*/true);
    if (outs.empty()) return;
    std::string args = rng.pick(outs).name;
    for (usize i = 1; i < h.params.size(); ++i) {
      const auto pool = visible(h.params[i]);
      std::string arg;
      for (const auto &v : pool)
        if (v.name != args.substr(0, args.find(','))) { arg = v.name; break; }
      if (arg.empty()) return;
      args += ", " + arg;
    }
    emit("call " + h.name + "(" + args + ")");
  }

  void ompRegion() {
    const std::string i = newLoopVar();
    const bool overArray = !arrayName.empty();
    const std::string hi = overArray ? arrayLen : std::to_string(rng.range(4, 8));
    if (rng.chance(50)) { // reduction
      const std::string r = fresh("r");
      declVar('d', r);
      emit(r + " = 0.0");
      declare(r, 'd');
      emit("!$omp parallel do reduction(+:" + r + ")");
      emit("do " + i + " = 1, " + hi);
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/overArray);
      emit(r + " = " + r + " + " + doubleExpr(2).text);
      pop();
      --indent;
      emit("end do");
      emit("!$omp end parallel do");
      emit("print *, " + r);
    } else if (overArray) { // elementwise
      emit("!$omp parallel do");
      emit("do " + i + " = 1, " + hi);
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/true);
      emit(arrayName + "(" + i + ") = " + arrayName + "(" + i + ") + " + doubleExpr(2).text);
      pop();
      --indent;
      emit("end do");
      emit("!$omp end parallel do");
    }
  }

  /// Fortran spelling of the --inject-dep payload (see CGen::depRegion).
  void depRegion() {
    const std::string i = newLoopVar();
    emit("!$omp parallel do");
    emit("do " + i + " = 2, " + arrayLen);
    ++indent;
    push();
    declare(i, 'i', /*mut=*/false, /*arrayIdx=*/true);
    emit(arrayName + "(" + i + ") = " + arrayName + "(" + i + " - 1) + " + doubleExpr(1).text);
    pop();
    --indent;
    emit("end do");
    emit("!$omp end parallel do");
    const std::string r = fresh("r");
    declVar('d', r);
    emit(r + " = 0.0");
    const std::string j = newLoopVar();
    emit("!$omp parallel do");
    emit("do " + j + " = 1, " + arrayLen);
    ++indent;
    push();
    declare(j, 'i', /*mut=*/false, /*arrayIdx=*/true);
    emit(r + " = " + r + " + " + arrayName + "(" + j + ")");
    pop();
    --indent;
    emit("end do");
    emit("!$omp end parallel do");
    declare(r, 'd');
    emit("print *, " + r);
  }

  /// Fortran spelling of the --inject-range payload (see CGen::rangeRegion).
  void rangeRegion() {
    const std::string b = fresh("rb");
    const std::string z = fresh("rz");
    const std::string q = fresh("rq");
    declLines.push_back("real(8) :: " + b + "(8)");
    declLines.push_back("integer :: " + z);
    declLines.push_back("integer :: " + q);
    const std::string i = newLoopVar();
    emit(z + " = 0");
    emit("do " + i + " = 1, 8");
    ++indent;
    emit(b + "(" + i + ") = 0.5");
    --indent;
    emit("end do");
    emit("if (" + b + "(1) > 9.5) then");
    ++indent;
    emit(b + "(12) = 1.0");
    emit(q + " = 7 / " + z);
    emit("print *, " + q);
    --indent;
    emit("end if");
  }

  void block(usize depth, usize count) {
    for (usize k = 0; k < count && stmtBudget > 0; ++k) {
      --stmtBudget;
      const usize roll = rng.below(10);
      if (roll < 3) { // declare-and-assign a new scalar
        const char t = "idb"[rng.below(3)];
        const std::string name = fresh("v");
        declVar(t, name);
        declare(name, t);
        if (t == 'i') emit(name + " = " + wrappedIntRhs());
        else if (t == 'd') emit(name + " = " + doubleExpr(2).text);
        else emit(name + " = " + boolExpr(1).text);
      } else if (roll < 5) assignStmt();
      else if (roll == 5) printStmt();
      else if (roll == 6 && depth > 0) ifStmt(depth);
      else if (roll == 7 && depth > 0) doStmt(depth);
      else if (roll == 8) callStmt();
      else assignStmt();
    }
  }

  void subroutine(const Helper &h) {
    std::string ps;
    for (usize i = 0; i < h.params.size(); ++i) {
      if (i) ps += ", ";
      ps += "p" + std::to_string(i);
    }
    emit("subroutine " + h.name + "(" + ps + ")");
    ++indent;
    push();
    for (usize i = 0; i < h.params.size(); ++i) {
      const char t = h.params[i];
      emit(std::string(t == 'i' ? "integer" : "real(8)") + " :: p" + std::to_string(i));
      declare("p" + std::to_string(i), t, /*mut=*/i == 0);
    }
    const std::string t0 = fresh("t");
    emit("real(8) :: " + t0);
    declare(t0, 'd');
    emit(t0 + " = " + doubleExpr(2).text);
    if (rng.chance(50)) emit("if (" + boolExpr(1).text + ") " + t0 + " = " + doubleExpr(1).text);
    emit("p0 = " + t0 + " + " + doubleExpr(1).text);
    pop();
    --indent;
    emit("end subroutine " + h.name);
    emit("");
  }

  [[nodiscard]] std::string run(const GenOptions &o) {
    omp = rng.chance(50);
    const usize nHelpers = rng.below(3);
    for (usize i = 0; i < nHelpers; ++i) {
      Helper h;
      h.name = "s" + std::to_string(i);
      h.params.push_back('d'); // inout result first
      const usize extra = rng.below(2);
      for (usize p = 0; p < extra; ++p) h.params.push_back(rng.chance(50) ? 'i' : 'd');
      helpers.push_back(h);
    }
    for (const auto &h : helpers) subroutine(h);

    emit("program fuzzmain");
    ++indent;
    push();
    const usize declMark = lines.size();
    if (o.injectUndeclaredUse) {
      const std::string z = fresh("z");
      declVar('d', z);
      declare(z, 'd');
      emit(z + " = u_missing + 1.5");
      emit("print *, " + z);
    }
    if (rng.chance(65) || o.injectDep) { // the dep payload needs the array
      arrayLen = fresh("n");
      arrayName = fresh("a");
      declLines.push_back("integer :: " + arrayLen);
      declLines.push_back("real(8), allocatable :: " + arrayName + "(:)");
      declare(arrayLen, 'i', /*mut=*/false);
      emit(arrayLen + " = " + std::to_string(rng.range(4, 12)));
      emit("allocate(" + arrayName + "(" + arrayLen + "))");
      const std::string i = newLoopVar();
      emit("do " + i + " = 1, " + arrayLen);
      ++indent;
      push();
      declare(i, 'i', /*mut=*/false, /*arrayIdx=*/true);
      emit(arrayName + "(" + i + ") = " + doubleExpr(1).text);
      pop();
      --indent;
      emit("end do");
      if (rng.chance(30)) emit(arrayName + "(:) = " + doubleLit().text);
    }
    stmtBudget = 8 + rng.below(8);
    block(2, stmtBudget);
    if (omp) ompRegion();
    if (o.injectDep) depRegion();
    if (o.injectRange) rangeRegion();
    printStmt();
    pop();
    --indent;
    emit("end program fuzzmain");

    // Splice the collected declaration lines right after `program`.
    std::vector<std::string> out(lines.begin(), lines.begin() + static_cast<long>(declMark));
    for (const auto &d : declLines) out.push_back("  " + d);
    out.insert(out.end(), lines.begin() + static_cast<long>(declMark), lines.end());
    return str::join(out, "\n") + "\n";
  }
};

} // namespace

GeneratedProgram generate(const GenOptions &options) {
  GeneratedProgram p;
  p.lang = options.lang;
  p.seed = options.seed;
  p.injectRange = options.injectRange;
  // The dep payload is an OpenMP region — it must lower under the OpenMP
  // model for the dependence tier to see a parallel loop.
  if (options.lang == Lang::MiniC) {
    CGen g(options);
    p.source = g.run(options);
    p.model = g.omp || options.injectDep ? "omp" : "serial";
    p.fileName = "fuzz.cpp";
  } else {
    FGen g(options);
    p.source = g.run(options);
    p.model = g.omp || options.injectDep ? "omp" : "serial";
    p.fileName = "fuzz.f90";
  }
  return p;
}

} // namespace sv::fuzz
