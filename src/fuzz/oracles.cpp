#include "fuzz/oracles.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "corpus/corpus.hpp"
#include "db/codebase.hpp"
#include "fuzz/irtext.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/printer.hpp"
#include "fuzz/rng.hpp"
#include "ir/dataflow.hpp"
#include "ir/lower.hpp"
#include "ir/verify.hpp"
#include "ir/range.hpp"
#include "lint/depslint.hpp"
#include "lint/irlint.hpp"
#include "lint/lint.hpp"
#include "lint/rangelint.hpp"
#include "minic/inliner.hpp"
#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/preprocessor.hpp"
#include "minic/sema.hpp"
#include "minic/semtree.hpp"
#include "minif/flexer.hpp"
#include "minif/fparser.hpp"
#include "minif/ftrees.hpp"
#include "support/pipeline.hpp"
#include "support/strings.hpp"
#include "tree/tedbounds.hpp"
#include "tree/tedengine.hpp"
#include "vm/vm.hpp"

namespace sv::fuzz {

namespace {

using lang::ast::TranslationUnit;

constexpr u64 kVmMaxSteps = 2'000'000;

struct Parsed {
  lang::SourceManager sm;
  TranslationUnit tu;
};

/// Frontend over a single in-memory file; `sema` runs minic::analyse for C
/// (Fortran units are consumed as parsed, like db::parseUnits does).
[[nodiscard]] Parsed parseSource(const std::string &source, Lang lang,
                                 const std::string &fileName, bool sema) {
  Parsed p;
  const i32 id = p.sm.add(fileName, source);
  if (lang == Lang::MiniC) {
    const auto pre = minic::preprocess(p.sm, id);
    const auto toks = minic::lex(pre.text, id, &pre.lineOrigins);
    p.tu = minic::parseTranslationUnit(toks, fileName, p.sm);
    if (sema) (void)minic::analyse(p.tu);
  } else {
    const auto toks = minif::lexFortran(source, id);
    p.tu = minif::parseFortran(toks, fileName, p.sm);
  }
  return p;
}

[[nodiscard]] tree::Tree semTreeOf(const TranslationUnit &tu, Lang lang) {
  return lang == Lang::MiniC ? minic::buildSemTree(tu) : minif::buildFortranSemTree(tu);
}

[[nodiscard]] TranslationUnit cloneUnit(const TranslationUnit &u) {
  TranslationUnit out;
  out.fileName = u.fileName;
  out.includes = u.includes;
  out.programName = u.programName;
  for (const auto &s : u.structs) {
    lang::ast::StructDecl sd;
    sd.name = s.name;
    sd.loc = s.loc;
    for (const auto &f : s.fields) sd.fields.push_back(lang::ast::cloneParam(f));
    out.structs.push_back(std::move(sd));
  }
  for (const auto &g : u.globals)
    out.globals.push_back({lang::ast::cloneVarDecl(g.var), g.attributes, g.loc});
  for (const auto &f : u.functions) out.functions.push_back(lang::ast::cloneFunction(f));
  return out;
}

[[nodiscard]] std::string describeValue(const vm::Value &v) {
  if (v.isVoid()) return "void";
  if (std::holds_alternative<double>(v.v)) return str::fmtDouble(std::get<double>(v.v), 9);
  if (std::holds_alternative<i64>(v.v)) return std::to_string(std::get<i64>(v.v));
  if (std::holds_alternative<bool>(v.v)) return std::get<bool>(v.v) ? "true" : "false";
  if (std::holds_alternative<std::string>(v.v)) return "\"" + std::get<std::string>(v.v) + "\"";
  return "<object>";
}

[[nodiscard]] ir::Model modelOf(const GeneratedProgram &p) {
  return p.model == "omp" ? ir::Model::OpenMP : ir::Model::Serial;
}

// ------------------------------------------------------------- oracles --

[[nodiscard]] std::optional<std::string> checkRoundTrip(const GeneratedProgram &p) {
  auto first = parseSource(p.source, p.lang, p.fileName, /*sema=*/false);
  const std::string p1 = printUnit(first.tu, p.lang);
  Parsed second;
  try {
    second = parseSource(p1, p.lang, p.fileName, /*sema=*/false);
  } catch (const ParseError &e) {
    return std::string("printed source does not reparse: ") + e.what() + "\n--- printed ---\n" +
           p1;
  }
  const std::string p2 = printUnit(second.tu, p.lang);
  if (p1 != p2)
    return "print(parse(print)) not a fixpoint\n--- first ---\n" + p1 + "--- second ---\n" + p2;
  if (p.lang == Lang::MiniC) {
    (void)minic::analyse(first.tu);
    (void)minic::analyse(second.tu);
  }
  const u64 fp1 = semTreeOf(first.tu, p.lang).fingerprint();
  const u64 fp2 = semTreeOf(second.tu, p.lang).fingerprint();
  if (fp1 != fp2)
    return "T_sem fingerprint changed across print/reparse\n--- printed ---\n" + p1;
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> checkVm(const GeneratedProgram &p) {
  auto parsed = parseSource(p.source, p.lang, p.fileName, /*sema=*/true);
  vm::RunOptions opts;
  opts.fortran = p.lang == Lang::MiniF;
  opts.maxSteps = kVmMaxSteps;
  const auto base = vm::run(parsed.tu, opts);

  auto inlined = cloneUnit(parsed.tu);
  (void)minic::inlineUnit(inlined);
  const auto after = vm::run(inlined, opts);

  if (base.output != after.output)
    return "output diverged after inlining\n--- base ---\n" + base.output +
           "--- inlined ---\n" + after.output;
  if (base.steps != after.steps)
    return "step count diverged after inlining: " + std::to_string(base.steps) + " vs " +
           std::to_string(after.steps);
  if (base.coverage.coveredLineCount() != after.coverage.coveredLineCount())
    return "covered line count diverged after inlining";
  if (describeValue(base.returnValue) != describeValue(after.returnValue))
    return "return value diverged after inlining: " + describeValue(base.returnValue) + " vs " +
           describeValue(after.returnValue);
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> cfgFactsDiffer(const ir::Function &a,
                                                        const ir::Function &b) {
  const auto ca = ir::buildCfg(a), cb = ir::buildCfg(b);
  if (ca.succs != cb.succs || ca.preds != cb.preds || ca.reachable != cb.reachable ||
      ca.rpo != cb.rpo || ca.exits != cb.exits || ca.terminator != cb.terminator)
    return "CFG shape differs for " + a.name;
  const auto slotsA = ir::trackedSlots(a), slotsB = ir::trackedSlots(b);
  if (slotsA != slotsB) return "tracked slots differ for " + a.name;
  const auto rdA = ir::computeReachingDefs(a, ca, slotsA);
  const auto rdB = ir::computeReachingDefs(b, cb, slotsB);
  if (rdA.solution.in != rdB.solution.in || rdA.solution.out != rdB.solution.out)
    return "reaching-defs facts differ for " + a.name;
  const auto lvA = ir::computeLiveness(a, ca, slotsA);
  const auto lvB = ir::computeLiveness(b, cb, slotsB);
  if (lvA.solution.in != lvB.solution.in || lvA.solution.out != lvB.solution.out)
    return "liveness facts differ for " + a.name;
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> checkIr(const GeneratedProgram &p) {
  auto parsed = parseSource(p.source, p.lang, p.fileName, /*sema=*/true);
  const auto mod = ir::lower(parsed.tu, {modelOf(p)});
  if (const auto issues = ir::verify(mod); !issues.empty())
    return "lowered module fails ir::verify:\n" + ir::renderIssues(issues);
  const std::string text = ir::print(mod);
  ir::Module mod2;
  try {
    mod2 = parseIrText(text);
  } catch (const ParseError &e) {
    return std::string("printed IR does not reparse: ") + e.what();
  }
  if (const auto issues = ir::verify(mod2); !issues.empty())
    return "reparsed module fails ir::verify:\n" + ir::renderIssues(issues);
  if (ir::print(mod2) != text) return "ir::print round-trip not a fixpoint";
  if (mod.functions.size() != mod2.functions.size()) return "function count changed on reparse";
  for (usize i = 0; i < mod.functions.size(); ++i)
    if (auto why = cfgFactsDiffer(mod.functions[i], mod2.functions[i])) return why;
  return std::nullopt;
}

/// Same tree with every node's child order reversed; d(mir(a), mir(b)) ==
/// d(a, b) is the symmetry the Apted right-path kernels rely on.
[[nodiscard]] tree::Tree mirroredTree(const tree::Tree &t) {
  auto out = tree::Tree::leaf(t.node(0).label);
  std::vector<std::pair<tree::NodeId, tree::NodeId>> queue{{0, 0}}; // (src, dst)
  for (usize q = 0; q < queue.size(); ++q) {
    const auto [src, dst] = queue[q];
    const auto &ch = t.node(src).children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it)
      queue.emplace_back(*it, out.addChild(dst, t.node(*it).label));
  }
  return out;
}

[[nodiscard]] std::optional<std::string> checkTed(const GeneratedProgram &p,
                                                  OracleContext *context) {
  auto parsed = parseSource(p.source, p.lang, p.fileName, /*sema=*/p.lang == Lang::MiniC);
  const tree::Tree t = semTreeOf(parsed.tu, p.lang);
  tree::TedOptions engineOff; // algo defaults to Apted
  engineOff.useCache = false;
  const tree::TedOptions engineOn; // useCache defaults to true
  tree::TedOptions zsOff = engineOff;
  zsOff.algo = tree::TedAlgo::ZhangShasha;
  tree::TedOptions psOff = engineOff;
  psOff.algo = tree::TedAlgo::PathStrategy;

  if (tree::ted(t, t, engineOff) != 0) return "d(T,T) != 0 (engine off)";
  if (tree::tedDispatch(t, t, engineOn) != 0) return "d(T,T) != 0 (engine on)";

  if (context) {
    for (const auto &q : context->tedPool) {
      const u64 onAb = tree::tedDispatch(t, q, engineOn);
      const u64 onBa = tree::tedDispatch(q, t, engineOn);
      if (onAb != onBa)
        return "TED not symmetric: " + std::to_string(onAb) + " vs " + std::to_string(onBa);
      const u64 off = tree::ted(t, q, engineOff);
      if (onAb != off)
        return "engine-on/off parity broken: " + std::to_string(onAb) + " vs " +
               std::to_string(off);
      // Cross-algorithm equality: the Apted default against both oracles.
      const u64 zs = tree::ted(t, q, zsOff);
      if (off != zs)
        return "Apted != ZhangShasha: " + std::to_string(off) + " vs " + std::to_string(zs);
      const u64 ps = tree::ted(t, q, psOff);
      if (off != ps)
        return "Apted != PathStrategy: " + std::to_string(off) + " vs " + std::to_string(ps);
    }

    // Metamorphic mutants against the oldest pool entry: simultaneous
    // sibling reversal and injective relabelling both preserve the
    // distance, engine off and on (the mutants are fresh Tree objects, so
    // the engine sees them purely through structural fingerprints).
    if (!context->tedPool.empty()) {
      const auto &q = context->tedPool.front();
      const u64 base = tree::ted(t, q, engineOff);
      const tree::Tree tm = mirroredTree(t), qm = mirroredTree(q);
      if (tree::ted(tm, qm, engineOff) != base)
        return "mirror invariance broken (engine off)";
      if (tree::tedDispatch(tm, qm, engineOn) != base)
        return "mirror invariance broken (engine on)";
      const auto tag = [](const std::string &s) { return s + "\x01m"; };
      const tree::Tree tr = t.relabel(tag), qr = q.relabel(tag);
      if (tree::ted(tr, qr, engineOff) != base)
        return "injective relabel invariance broken (engine off)";
      if (tree::tedDispatch(tr, qr, engineOn) != base)
        return "injective relabel invariance broken (engine on)";
    }
    // Triangle inequality on sampled triples (a, t, b) from the pool.
    const usize n = std::min<usize>(context->tedPool.size(), 3);
    for (usize i = 0; i < n; ++i) {
      for (usize j = i + 1; j < n; ++j) {
        const auto &a = context->tedPool[i];
        const auto &b = context->tedPool[j];
        const u64 ab = tree::tedDispatch(a, b, engineOn);
        const u64 at = tree::tedDispatch(a, t, engineOn);
        const u64 tb = tree::tedDispatch(t, b, engineOn);
        if (ab > at + tb)
          return "triangle inequality violated: d(a,b)=" + std::to_string(ab) +
                 " > d(a,t)+d(t,b)=" + std::to_string(at + tb);
      }
    }
    context->tedPool.push_back(t);
    if (context->tedPool.size() > OracleContext::kPoolCap)
      context->tedPool.erase(context->tedPool.begin());
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> checkLb(const GeneratedProgram &p,
                                                 OracleContext *context) {
  auto parsed = parseSource(p.source, p.lang, p.fileName, /*sema=*/p.lang == Lang::MiniC);
  const tree::Tree t = semTreeOf(parsed.tu, p.lang);
  const auto sigT = tree::boundSignature(t);
  const tree::TedCosts costs; // unit costs, the query layer's default
  tree::TedOptions engineOff;
  engineOff.useCache = false;
  const tree::TedOptions engineOn;

  // Identical trees: the exact distance is 0, so every admissible bound is.
  if (tree::tedLowerBound(sigT, sigT, costs) != 0) return "lb(T,T) != 0";

  if (context) {
    for (const auto &q : context->lbPool) {
      const auto sigQ = tree::boundSignature(q);
      const u64 exact = tree::ted(t, q, engineOff);

      const std::pair<const char *, u64> bounds[] = {
          {"size", tree::sizeLowerBound(sigT.n, sigQ.n, costs)},
          {"histogram", tree::histogramLowerBound(sigT, sigQ, costs)},
          {"branch-profile", tree::profileLowerBound(sigT, sigQ, costs)},
          {"max", tree::tedLowerBound(sigT, sigQ, costs)},
      };
      for (const auto &[name, lb] : bounds)
        if (lb > exact)
          return std::string(name) + " bound not admissible: lb=" + std::to_string(lb) +
                 " > exact=" + std::to_string(exact);

      // Cutoff contract: every entry point returns min(exact, cutoff), for a
      // cutoff below, at, and above the exact distance — in particular the
      // result agrees with the exact distance whenever exact < cutoff.
      for (const u64 cutoff : {exact / 2 + 1, exact + 1, exact + 7}) {
        const u64 want = std::min(exact, cutoff);
        for (const auto algo :
             {tree::TedAlgo::Apted, tree::TedAlgo::PathStrategy, tree::TedAlgo::ZhangShasha}) {
          tree::TedOptions opts = engineOff;
          opts.algo = algo;
          opts.cutoff = cutoff;
          const u64 got = tree::ted(t, q, opts);
          if (got != want)
            return "cutoff contract broken (engine off, algo " +
                   std::to_string(static_cast<int>(algo)) + "): cutoff=" +
                   std::to_string(cutoff) + " exact=" + std::to_string(exact) +
                   " got=" + std::to_string(got);
        }
        tree::TedOptions onCut = engineOn;
        onCut.cutoff = cutoff;
        const u64 got = tree::tedDispatch(t, q, onCut);
        if (got != want)
          return "cutoff contract broken (engine on): cutoff=" + std::to_string(cutoff) +
                 " exact=" + std::to_string(exact) + " got=" + std::to_string(got);
      }
    }
    context->lbPool.push_back(t);
    if (context->lbPool.size() > OracleContext::kPoolCap)
      context->lbPool.erase(context->lbPool.begin());
  }
  return std::nullopt;
}

/// Location-insensitive diagnostic keys, sorted — mutation shifts lines.
[[nodiscard]] std::vector<std::string> diagKeys(const std::vector<lint::Diagnostic> &diags) {
  std::vector<std::string> keys;
  keys.reserve(diags.size());
  for (const auto &d : diags)
    keys.push_back(std::string(lint::name(d.check)) + "|" + lint::name(d.severity) + "|" +
                   d.symbol + "|" + d.directive + "|" + d.message);
  std::sort(keys.begin(), keys.end());
  return keys;
}

[[nodiscard]] std::string renderKeys(const std::vector<std::string> &keys) {
  return keys.empty() ? std::string("  (none)\n") : "  " + str::join(keys, "\n  ") + "\n";
}

[[nodiscard]] std::optional<std::string> checkLint(const GeneratedProgram &p) {
  auto first = parseSource(p.source, p.lang, p.fileName, /*sema=*/true);
  auto second = parseSource(p.source, p.lang, p.fileName, /*sema=*/true);
  const auto diags1 = lint::run(first.tu);
  const auto diags2 = lint::run(second.tu);
  if (diags1 != diags2) return "lint::run not deterministic across fresh parses";
  const auto ir1 = lint::runIr(ir::lower(first.tu, {modelOf(p)}));
  const auto ir2 = lint::runIr(ir::lower(second.tu, {modelOf(p)}));
  if (ir1 != ir2) return "lint::runIr not deterministic across fresh parses";

  Rng mrng(p.seed ^ 0x4d757461746f72ULL);
  const std::string mutant = mutateCommentsWhitespace(p.source, p.lang, mrng);
  Parsed mutated;
  try {
    mutated = parseSource(mutant, p.lang, p.fileName, /*sema=*/true);
  } catch (const ParseError &e) {
    return std::string("comment/whitespace mutant does not parse: ") + e.what() +
           "\n--- mutant ---\n" + mutant;
  }
  const auto keysBase = diagKeys(diags1);
  const auto keysMut = diagKeys(lint::run(mutated.tu));
  if (keysBase != keysMut)
    return "lint verdicts changed under comment/whitespace mutation\n--- base ---\n" +
           renderKeys(keysBase) + "--- mutant ---\n" + renderKeys(keysMut);
  if (semTreeOf(first.tu, p.lang).fingerprint() != semTreeOf(mutated.tu, p.lang).fingerprint())
    return "T_sem fingerprint changed under comment/whitespace mutation\n--- mutant ---\n" +
           mutant;
  return std::nullopt;
}

/// Frontend + lowering + the dependence lint tier over one source text.
[[nodiscard]] std::vector<lint::Diagnostic> depsVerdicts(const std::string &source, Lang lang,
                                                         const std::string &fileName,
                                                         ir::Model model) {
  auto parsed = parseSource(source, lang, fileName, /*sema=*/lang == Lang::MiniC);
  const auto mod = ir::lower(parsed.tu, {model});
  return lint::runDeps(mod, {.unit = &parsed.tu});
}

/// Symbol-insensitive verdict keys: check, severity and line survive an
/// identifier rename; symbol and message (which quotes names) do not.
[[nodiscard]] std::vector<std::string> depsLineKeys(const std::vector<lint::Diagnostic> &diags) {
  std::vector<std::string> keys;
  keys.reserve(diags.size());
  for (const auto &d : diags)
    keys.push_back(std::string(lint::name(d.check)) + "|" + lint::name(d.severity) + "|" +
                   std::to_string(d.loc.line));
  std::sort(keys.begin(), keys.end());
  return keys;
}

[[nodiscard]] std::optional<std::string> checkDeps(const GeneratedProgram &p) {
  const auto base = depsVerdicts(p.source, p.lang, p.fileName, modelOf(p));
  const auto again = depsVerdicts(p.source, p.lang, p.fileName, modelOf(p));
  if (base != again) return "lint::runDeps not deterministic across fresh parses";

  // Soundness invariant: a provably-parallel note and a fired loop-carried
  // race on the same loop would contradict each other.
  std::vector<std::string> parallel, raced;
  for (const auto &d : base) {
    const std::string where = d.directive + ":" + std::to_string(d.loc.line);
    if (d.check == lint::Check::ProvablyParallel) parallel.push_back(where);
    if (d.check == lint::Check::LoopCarriedRace) raced.push_back(where);
  }
  std::sort(parallel.begin(), parallel.end());
  std::sort(raced.begin(), raced.end());
  std::vector<std::string> both;
  std::set_intersection(parallel.begin(), parallel.end(), raced.begin(), raced.end(),
                        std::back_inserter(both));
  if (!both.empty())
    return "loop is both provably parallel and racing: " + str::join(both, ", ");

  // Comment/whitespace mutation preserves the verdicts modulo locations.
  Rng mrng(p.seed ^ 0x44657073ULL); // "Deps"
  const std::string wsMutant = mutateCommentsWhitespace(p.source, p.lang, mrng);
  std::vector<lint::Diagnostic> wsDiags;
  try {
    wsDiags = depsVerdicts(wsMutant, p.lang, p.fileName, modelOf(p));
  } catch (const ParseError &e) {
    return std::string("comment/whitespace mutant does not parse: ") + e.what();
  }
  if (diagKeys(base) != diagKeys(wsDiags))
    return "deps verdicts changed under comment/whitespace mutation\n--- base ---\n" +
           renderKeys(diagKeys(base)) + "--- mutant ---\n" + renderKeys(diagKeys(wsDiags));

  // A statement-order-preserving rename preserves them modulo symbols.
  const std::string renamed = mutateRenameIdentifiers(p.source);
  std::vector<lint::Diagnostic> rnDiags;
  try {
    rnDiags = depsVerdicts(renamed, p.lang, p.fileName, modelOf(p));
  } catch (const ParseError &e) {
    return std::string("renamed mutant does not parse: ") + e.what() + "\n--- renamed ---\n" +
           renamed;
  }
  if (depsLineKeys(base) != depsLineKeys(rnDiags))
    return "deps verdicts changed under identifier rename\n--- base ---\n" +
           renderKeys(depsLineKeys(base)) + "--- renamed ---\n" + renderKeys(depsLineKeys(rnDiags));
  return std::nullopt;
}

/// Frontend + lowering + the value-range lint tier over one source text.
[[nodiscard]] std::vector<lint::Diagnostic> rangeVerdicts(const std::string &source, Lang lang,
                                                          const std::string &fileName,
                                                          ir::Model model) {
  auto parsed = parseSource(source, lang, fileName, /*sema=*/lang == Lang::MiniC);
  return lint::runRange(ir::lower(parsed.tu, {model}));
}

[[nodiscard]] std::optional<std::string> checkRange(const GeneratedProgram &p) {
  const auto base = rangeVerdicts(p.source, p.lang, p.fileName, modelOf(p));
  const auto again = rangeVerdicts(p.source, p.lang, p.fileName, modelOf(p));
  if (base != again) return "lint::runRange not deterministic across fresh parses";

  // Comment/whitespace mutation preserves the verdicts modulo locations.
  Rng mrng(p.seed ^ 0x52616e6765ULL); // "Range"
  const std::string mutant = mutateCommentsWhitespace(p.source, p.lang, mrng);
  std::vector<lint::Diagnostic> mutDiags;
  try {
    mutDiags = rangeVerdicts(mutant, p.lang, p.fileName, modelOf(p));
  } catch (const ParseError &e) {
    return std::string("comment/whitespace mutant does not parse: ") + e.what();
  }
  if (diagKeys(base) != diagKeys(mutDiags))
    return "range verdicts changed under comment/whitespace mutation\n--- base ---\n" +
           renderKeys(diagKeys(base)) + "--- mutant ---\n" + renderKeys(diagKeys(mutDiags));

  // Soundness: every integer the VM observes being stored at a source line
  // lies inside the join of the static intervals of that line's IR stores.
  // The VM is the ground truth — an escaping observation is an unsound
  // interval, the worst bug this analysis can have.
  auto parsed = parseSource(p.source, p.lang, p.fileName, /*sema=*/p.lang == Lang::MiniC);
  const auto mod = ir::lower(parsed.tu, {modelOf(p)});
  const auto ranges = ir::analyzeModuleRanges(mod);
  std::map<std::pair<i32, i32>, ir::Interval> staticAt;
  for (const auto &fn : mod.functions) {
    const auto *fr = ranges.rangesOf(fn.name);
    for (u32 b = 0; b < fn.blocks.size(); ++b) {
      for (const auto &in : fn.blocks[b].instrs) {
        if (in.op != "store" || in.operands.empty()) continue;
        if (in.type != "i32" && in.type != "i64") continue;
        if (in.file < 0 || in.line < 1) continue;
        const ir::Interval r = fr ? fr->valueAt(in.operands[0], b) : ir::Interval::top();
        const auto [it, fresh] = staticAt.try_emplace({in.file, in.line}, r);
        if (!fresh) it->second = it->second.join(r);
      }
    }
  }
  vm::RunOptions vopts;
  vopts.fortran = p.lang == Lang::MiniF;
  vopts.maxSteps = kVmMaxSteps;
  vopts.recordIntWrites = true;
  vm::RunResult run;
  try {
    run = vm::run(parsed.tu, vopts);
  } catch (const std::exception &) {
    // A program the VM rejects (e.g. another payload's seeded defect) has
    // no observations to check; the vm oracle owns reporting the crash.
    return std::nullopt;
  }
  for (const auto &[at, mm] : run.intWrites) {
    const auto it = staticAt.find(at);
    if (it == staticAt.end()) continue; // no integer store lowered at this line
    if (!it->second.contains(mm.first) || !it->second.contains(mm.second))
      return "VM observed [" + std::to_string(mm.first) + ", " + std::to_string(mm.second) +
             "] stored at line " + std::to_string(at.second) +
             " outside the static interval " + it->second.str();
  }

  // The seeded payload must fire both checks.
  if (p.injectRange) {
    bool oob = false, div = false;
    for (const auto &d : base) {
      oob = oob || d.check == lint::Check::OutOfBounds;
      div = div || d.check == lint::Check::DivisionByZero;
    }
    if (!oob || !div)
      return std::string("--inject-range payload not caught:") +
             (oob ? "" : " out-of-bounds missing") + (div ? "" : " division-by-zero missing");
  }
  return std::nullopt;
}

/// Streaming-vs-barrier equivalence of the whole indexing pipeline over the
/// generated program: the serialised DB (all lint tiers on, so frontend,
/// trees, lowering and every diagnostic list are covered) must be
/// byte-identical under seeded worker counts and seeded per-stage jitter.
[[nodiscard]] std::optional<std::string> checkPipeline(const GeneratedProgram &p) {
  db::Codebase cb;
  cb.app = "fuzz";
  cb.model = p.model;
  cb.addFile(p.fileName, p.source);
  db::CompileCommand cmd;
  cmd.file = p.fileName;
  cmd.args = {"cc", p.fileName};
  if (p.model == "omp") cmd.args.push_back("-fopenmp");
  cb.commands.push_back(std::move(cmd));

  db::IndexOptions barrier;
  barrier.runLint = true;
  barrier.mode = ExecMode::Barrier;
  barrier.threads = 1;
  const auto baseline = db::index(cb, barrier).db.serialise();

  // Three streaming configs: seeded worker counts, and seeded stage jitter
  // on the last one to shake the completion order harder than scheduling
  // noise alone would.
  const u64 mix = p.seed ^ 0x506970656cULL; // "Pipel"
  for (int round = 0; round < 3; ++round) {
    db::IndexOptions streaming;
    streaming.runLint = true;
    streaming.mode = ExecMode::Streaming;
    streaming.threads = 1 + (mix >> (4 * round)) % 4;
    const bool jitter = round == 2;
    if (jitter)
      setPipelineStageJitter([mix](usize stage, usize item) {
        const u64 us = (mix + stage * 31 + item * 17) % 200;
        if (us % 3 == 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
      });
    std::vector<u8> bytes;
    try {
      bytes = db::index(cb, streaming).db.serialise();
    } catch (...) {
      setPipelineStageJitter({});
      throw;
    }
    if (jitter) setPipelineStageJitter({});
    if (bytes != baseline)
      return "streaming DB differs from barrier baseline (threads=" +
             std::to_string(streaming.threads) + (jitter ? ", jitter on" : "") + ")";
  }
  return std::nullopt;
}

} // namespace

const char *oracleName(Oracle o) {
  switch (o) {
  case Oracle::RoundTrip: return "round-trip";
  case Oracle::Vm: return "vm";
  case Oracle::Ir: return "ir";
  case Oracle::Ted: return "ted";
  case Oracle::Lint: return "lint";
  case Oracle::Lb: return "lb";
  case Oracle::Deps: return "deps";
  case Oracle::Range: return "range";
  case Oracle::Pipeline: return "pipeline";
  }
  return "?";
}

std::optional<Oracle> oracleFromName(std::string_view name) {
  for (const Oracle o : {Oracle::RoundTrip, Oracle::Vm, Oracle::Ir, Oracle::Ted, Oracle::Lint,
                         Oracle::Lb, Oracle::Deps, Oracle::Range, Oracle::Pipeline})
    if (name == oracleName(o)) return o;
  return std::nullopt;
}

tree::Tree semTree(const GeneratedProgram &program) {
  auto parsed = parseSource(program.source, program.lang, program.fileName,
                            /*sema=*/program.lang == Lang::MiniC);
  return semTreeOf(parsed.tu, program.lang);
}

bool parses(const std::string &source, Lang lang) {
  try {
    (void)parseSource(source, lang, lang == Lang::MiniC ? "fuzz.cpp" : "fuzz.f90",
                      /*sema=*/lang == Lang::MiniC);
    return true;
  } catch (const std::exception &) {
    return false;
  }
}

std::optional<std::vector<std::string>> reductionGate(const std::string &source, Lang lang) {
  try {
    auto p = parseSource(source, lang, lang == Lang::MiniC ? "fuzz.cpp" : "fuzz.f90",
                         /*sema=*/false);
    if (lang == Lang::MiniC) {
      auto names = minic::analyse(p.tu).unresolved;
      std::sort(names.begin(), names.end());
      names.erase(std::unique(names.begin(), names.end()), names.end());
      return names;
    }
    if (p.tu.programName.empty()) return std::nullopt; // no entry unit left
    return std::vector<std::string>{};
  } catch (const std::exception &) {
    return std::nullopt;
  }
}

std::vector<OracleFailure> runOracles(const GeneratedProgram &program, u32 mask,
                                      OracleContext *context) {
  std::vector<OracleFailure> failures;
  const auto runOne = [&](Oracle o, auto &&check) {
    if ((mask & oracleBit(o)) == 0) return;
    std::optional<std::string> why;
    try {
      why = check();
    } catch (const std::exception &e) {
      why = std::string("exception: ") + e.what();
    }
    if (why) failures.push_back({o, *why});
  };
  runOne(Oracle::RoundTrip, [&] { return checkRoundTrip(program); });
  runOne(Oracle::Vm, [&] { return checkVm(program); });
  runOne(Oracle::Ir, [&] { return checkIr(program); });
  runOne(Oracle::Ted, [&] { return checkTed(program, context); });
  runOne(Oracle::Lint, [&] { return checkLint(program); });
  runOne(Oracle::Lb, [&] { return checkLb(program, context); });
  runOne(Oracle::Deps, [&] { return checkDeps(program); });
  runOne(Oracle::Range, [&] { return checkRange(program); });
  runOne(Oracle::Pipeline, [&] { return checkPipeline(program); });
  return failures;
}

std::vector<OracleFailure> runCorpusMutationOracle(const std::string &app,
                                                   const std::string &model, u64 seed) {
  std::vector<OracleFailure> failures;
  try {
    const auto base = corpus::make(app, model);
    auto mutated = corpus::make(app, model);
    Rng rng(seed ^ 0x436f72707573ULL);
    for (const auto &f : base.sources.files()) {
      const Lang lang = str::endsWith(f.name, ".f90") || str::endsWith(f.name, ".f95") ||
                                str::endsWith(f.name, ".f")
                            ? Lang::MiniF
                            : Lang::MiniC;
      mutated.addFile(f.name, mutateCommentsWhitespace(f.text, lang, rng));
    }
    const auto units1 = db::parseUnits(base);
    const auto units2 = db::parseUnits(mutated);
    if (units1.size() != units2.size()) {
      failures.push_back({Oracle::Lint, app + "/" + model + ": unit count changed"});
      return failures;
    }
    for (usize i = 0; i < units1.size(); ++i) {
      const auto &u1 = units1[i];
      const auto &u2 = units2[i];
      const auto k1 = diagKeys(lint::run(u1.tu));
      const auto k2 = diagKeys(lint::run(u2.tu));
      if (k1 != k2) {
        failures.push_back({Oracle::Lint, app + "/" + model + " " + u1.file +
                                              ": lint verdicts changed under mutation\n" +
                                              renderKeys(k1) + "--- mutant ---\n" +
                                              renderKeys(k2)});
        continue;
      }
      const Lang lang = u1.fortran ? Lang::MiniF : Lang::MiniC;
      if (semTreeOf(u1.tu, lang).fingerprint() != semTreeOf(u2.tu, lang).fingerprint())
        failures.push_back({Oracle::Lint, app + "/" + model + " " + u1.file +
                                              ": T_sem fingerprint changed under mutation"});
    }
  } catch (const std::exception &e) {
    failures.push_back(
        {Oracle::Lint, app + "/" + model + ": corpus mutant round threw: " + e.what()});
  }
  return failures;
}

} // namespace sv::fuzz
