// The fuzz driver: generates seeded programs for the enabled languages,
// runs the differential oracles over each, interleaves corpus-mutant
// rounds, shrinks failures with the line reducer, and writes reduced
// reproducers into a crash corpus directory. Every step is derived from
// the base seed, so two runs with the same options produce byte-identical
// transcripts and verdicts.
#pragma once

#include <string>
#include <vector>

#include "fuzz/oracles.hpp"

namespace sv::fuzz {

struct FuzzOptions {
  u64 seed = 1;
  usize count = 100; ///< iterations; each runs every enabled language
  bool genC = true;
  bool genF = true;
  u32 oracleMask = kAllOracles;
  /// Where reduced reproducers land. Empty disables writing.
  std::string outDir = "tests/fuzz/corpus";
  /// Every 5th iteration mutates a BabelStream port instead of generating
  /// (lint + fingerprint invariance over the real corpus language).
  bool corpusMutants = true;
  /// Self-test hook: plant an undeclared-variable use in every generated
  /// program so the harness must catch, shrink and report it.
  bool injectUndeclaredUse = false;
  /// Emit the dependence payload (loop-carried array dep + unclaused scalar
  /// reduction) in every generated program, so the `deps` oracle's
  /// metamorphic checks run against non-trivial verdicts. The programs stay
  /// well-formed; a failure means the dependence tier itself is unstable.
  bool injectDep = false;
  /// Emit the value-range payload (seeded OOB index + zero divisor behind a
  /// runtime-false guard) in every generated program; the `range` oracle
  /// asserts both defects are reported. Programs still execute cleanly.
  bool injectRange = false;
  bool reduce = true;
};

struct FuzzFailure {
  Lang lang = Lang::MiniC;
  u64 seed = 0;
  Oracle oracle{};
  std::string message;
  std::string reduced; ///< shrunk source ("" if reduction was off/skipped)
  std::string file;    ///< crash-corpus path written ("" if none)
};

struct FuzzReport {
  usize programs = 0;     ///< generated programs run through the oracles
  usize corpusRounds = 0; ///< corpus-mutant rounds run
  std::vector<FuzzFailure> failures;
  /// One line per program / corpus round: index, language, seed, source
  /// digest, verdict. Deterministic for fixed options.
  std::string transcript;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

[[nodiscard]] FuzzReport runFuzz(const FuzzOptions &options);

/// Re-run all oracles over one crash-corpus file. The first line may carry
/// a `svale-fuzz lang=... model=... oracle=... seed=...` header (written by
/// the driver); without one, language is inferred from the extension and
/// model defaults to serial. ok == all oracles pass — a crash file is a
/// regression test for a bug that has been fixed.
struct ReplayResult {
  bool ok = false;
  std::string message;
};
[[nodiscard]] ReplayResult replayCrashFile(const std::string &fileName, const std::string &content);

} // namespace sv::fuzz
