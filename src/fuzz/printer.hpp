// AST -> source printer for the round-trip oracle. Scope: the node shapes
// the fuzz generator can produce (plus anything their reparse yields) — NOT
// the full corpus language; corpus mutants skip the round-trip oracle for
// exactly this reason. The printer is canonical and idempotent: printing the
// reparse of its own output reproduces the output byte-for-byte, which is
// what oracle 1 checks.
//
// Two rules keep reparses structure-identical:
//   * composite operands (Binary/Unary/Assign/Conditional/Cast) are always
//     parenthesised; atoms (identifiers, literals, calls, indexes) never are
//     — `(v) - x` would trip the MiniC cast heuristic and reparse as a cast,
//   * statement forms are preserved, not canonicalised: a non-compound If
//     child prints as a one-line if (Fortran) / unbraced statement (C), so
//     the reparse keeps the same tree shape.
#pragma once

#include <string>

#include "fuzz/generator.hpp"
#include "lang/ast.hpp"

namespace sv::fuzz {

/// Render the unit back to source. Throws InternalError on node shapes
/// outside the generator grammar (a harness bug, not a pipeline bug).
[[nodiscard]] std::string printUnit(const lang::ast::TranslationUnit &unit, Lang lang);

} // namespace sv::fuzz
