// Seeded comment/whitespace mutation — the EMI-style metamorphic transform
// behind the lint-silence and fingerprint-invariance oracles: inserting
// comment lines, blank lines, trailing comments and indentation changes must
// leave the sema'd AST (and therefore lint verdicts and T_sem fingerprints)
// untouched. Works on raw source text for either language, including corpus
// ports the generator did not produce.
#pragma once

#include <string>

#include "fuzz/generator.hpp"
#include "fuzz/rng.hpp"

namespace sv::fuzz {

/// Return a comment/whitespace-mutated copy of `source`. Deterministic in
/// `rng`. Guarantees the mutation is semantics-preserving for both parsers:
///   * no insertions after a continuation line (trailing '\' or '&') or
///     between a Fortran directive line and the statement it governs
///     (comment/blank lines there break directive binding),
///   * trailing comments only on lines free of quotes, '#', '!', '\\', '&',
///   * C insertions use `//` line comments only (never `/* */`).
[[nodiscard]] std::string mutateCommentsWhitespace(const std::string &source, Lang lang, Rng &rng);

/// Statement-order-preserving identifier rename: every token of the
/// generator's naming scheme (one lowercase letter + digits, e.g. `v3`,
/// `i0`, `a1`, `f2`) gets `_r` appended. The map is injective (generator
/// names never contain '_'), applies at token boundaries only, and keeps
/// every statement on its original line — so dependence verdicts must be
/// invariant modulo symbol names (the `deps` metamorphic oracle). Keywords,
/// literals and builtins never match the pattern.
[[nodiscard]] std::string mutateRenameIdentifiers(const std::string &source);

} // namespace sv::fuzz
