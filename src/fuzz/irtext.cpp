#include "fuzz/irtext.hpp"

#include "support/strings.hpp"

namespace sv::fuzz {

namespace {

[[nodiscard]] std::vector<std::string> splitWs(const std::string &s) {
  std::vector<std::string> out;
  usize i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == ' ') ++i;
    const usize start = i;
    while (i < s.size() && s[i] != ' ') ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

} // namespace

ir::Module parseIrText(const std::string &text) {
  ir::Module m;
  ir::Function *fn = nullptr;
  ir::Block *block = nullptr;
  usize lineNo = 0;
  for (const auto &raw : str::splitLines(text)) {
    ++lineNo;
    const std::string line(raw);
    const auto fail = [&](const std::string &why) -> void {
      throw ParseError("ir text line " + std::to_string(lineNo) + ": " + why);
    };
    if (line.empty()) continue;
    if (line.rfind("; module ", 0) == 0) {
      m.sourceFile = line.substr(9);
      continue;
    }
    if (line[0] == '@') {
      // @name = global <type>[ ; runtime]
      const usize eq = line.find(" = global ");
      if (eq == std::string::npos) fail("malformed global");
      ir::Global g;
      g.name = line.substr(1, eq - 1);
      std::string rest = line.substr(eq + 10);
      const usize cmt = rest.find(" ; runtime");
      if (cmt != std::string::npos) {
        g.runtime = true;
        rest = rest.substr(0, cmt);
      }
      g.type = rest;
      m.globals.push_back(std::move(g));
      continue;
    }
    if (line.rfind("define ", 0) == 0) {
      // define <retType> <name>(<N> args) {
      const auto toks = splitWs(line);
      if (toks.size() != 5 || toks[3] != "args)" || toks[4] != "{") fail("malformed define");
      ir::Function f;
      f.returnType = toks[1];
      const usize paren = toks[2].find('(');
      if (paren == std::string::npos) fail("malformed define name");
      f.name = toks[2].substr(0, paren);
      f.argCount = static_cast<usize>(std::stoul(toks[2].substr(paren + 1)));
      m.functions.push_back(std::move(f));
      fn = &m.functions.back();
      block = nullptr;
      continue;
    }
    if (line == "}") {
      fn = nullptr;
      block = nullptr;
      continue;
    }
    if (line.rfind("  ", 0) == 0) {
      if (!fn || !block) fail("instruction outside a block");
      auto toks = splitWs(line);
      if (toks.empty()) continue;
      ir::Instr in;
      if (toks.size() >= 2 && toks[1] == "=") {
        in.result = toks[0];
        toks.erase(toks.begin(), toks.begin() + 2);
      }
      if (toks.size() < 2) fail("instruction needs op and type");
      in.op = toks[0];
      in.type = toks[1];
      in.operands.assign(toks.begin() + 2, toks.end());
      block->instrs.push_back(std::move(in));
      continue;
    }
    if (!line.empty() && line.back() == ':') {
      if (!fn) fail("block label outside a function");
      fn->blocks.push_back(ir::Block{line.substr(0, line.size() - 1), {}});
      block = &fn->blocks.back();
      continue;
    }
    fail("unrecognised line: " + line);
  }
  return m;
}

} // namespace sv::fuzz
