// Deterministic PRNG for the fuzzing tier. SplitMix64: tiny, fast, and —
// unlike std::mt19937 + distributions — bit-identical across standard
// libraries and platforms, which the seed-determinism contract of
// `svale fuzz` (same seed => byte-identical program stream) depends on.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace sv::fuzz {

class Rng {
public:
  explicit Rng(u64 seed) : state_(seed) {}

  [[nodiscard]] u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  [[nodiscard]] usize below(usize n) { return static_cast<usize>(next() % n); }

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next() % static_cast<u64>(hi - lo + 1));
  }

  /// True with probability percent/100.
  [[nodiscard]] bool chance(u32 percent) { return next() % 100 < percent; }

  template <typename T> [[nodiscard]] const T &pick(const std::vector<T> &xs) {
    SV_CHECK(!xs.empty(), "Rng::pick on empty vector");
    return xs[below(xs.size())];
  }

private:
  u64 state_;
};

/// Derive a stream-independent child seed (program i of run seed s).
[[nodiscard]] inline u64 mixSeed(u64 seed, u64 index) {
  u64 z = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit hash, used for transcript digests of generated sources.
[[nodiscard]] inline u64 fnv1a64(const std::string &s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

} // namespace sv::fuzz
