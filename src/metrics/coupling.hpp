// Secondary metrics enabled by the source back-references (Section III-A):
// "this information is necessary for reconstructing the dependency tree
// between all source units. This process enables the calculation of
// secondary metrics such as module coupling [9] and overall tree
// complexity."
//
// Coupling follows the spirit of Offutt, Harrold & Kolte's module-coupling
// levels, measured from the unit dependency graph (fan-out: headers a unit
// pulls in; fan-in: units sharing those headers -> common/stamp coupling).
// Tree complexity summarises the shape of a semantic-bearing tree.
#pragma once

#include "db/codebase.hpp"
#include "tree/tree.hpp"

namespace sv::metrics {

struct UnitCoupling {
  std::string unit;    ///< TU file name
  usize fanOut = 0;    ///< non-system dependencies of this unit
  usize fanIn = 0;     ///< other units that share at least one dependency
  /// Offutt-style pairwise coupling strength with each other unit:
  /// |shared deps| / |union of deps| (Jaccard over the dependency sets).
  std::vector<std::pair<std::string, double>> coupledWith;
};

struct CouplingReport {
  std::vector<UnitCoupling> units;
  double averageFanOut = 0;
  /// Fraction of unit pairs with any shared dependency — the codebase's
  /// overall common-coupling density in [0, 1].
  double couplingDensity = 0;
};

[[nodiscard]] CouplingReport coupling(const db::CodebaseDb &c);

/// Shape summary of a semantic-bearing tree ("overall tree complexity").
struct TreeComplexity {
  usize nodes = 0;
  usize depth = 0;
  usize leaves = 0;
  double averageBranching = 0; ///< mean children per interior node
  usize maxBranching = 0;
};

[[nodiscard]] TreeComplexity treeComplexity(const tree::Tree &t);

} // namespace sv::metrics
