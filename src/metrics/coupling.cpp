#include "metrics/coupling.hpp"

#include <algorithm>
#include <set>

namespace sv::metrics {

CouplingReport coupling(const db::CodebaseDb &c) {
  CouplingReport report;
  std::vector<std::set<std::string>> depSets;
  for (const auto &u : c.units) depSets.emplace_back(u.deps.begin(), u.deps.end());

  usize coupledPairs = 0;
  usize totalPairs = 0;
  for (usize i = 0; i < c.units.size(); ++i) {
    UnitCoupling uc;
    uc.unit = c.units[i].file;
    uc.fanOut = depSets[i].size();
    for (usize j = 0; j < c.units.size(); ++j) {
      if (i == j) continue;
      std::vector<std::string> shared;
      std::set_intersection(depSets[i].begin(), depSets[i].end(), depSets[j].begin(),
                            depSets[j].end(), std::back_inserter(shared));
      if (shared.empty()) continue;
      std::set<std::string> unionSet = depSets[i];
      unionSet.insert(depSets[j].begin(), depSets[j].end());
      uc.coupledWith.emplace_back(c.units[j].file,
                                  static_cast<double>(shared.size()) /
                                      static_cast<double>(unionSet.size()));
      ++uc.fanIn;
    }
    report.averageFanOut += static_cast<double>(uc.fanOut);
    report.units.push_back(std::move(uc));
  }
  for (usize i = 0; i < c.units.size(); ++i)
    for (usize j = i + 1; j < c.units.size(); ++j) {
      ++totalPairs;
      std::vector<std::string> shared;
      std::set_intersection(depSets[i].begin(), depSets[i].end(), depSets[j].begin(),
                            depSets[j].end(), std::back_inserter(shared));
      if (!shared.empty()) ++coupledPairs;
    }
  if (!c.units.empty()) report.averageFanOut /= static_cast<double>(c.units.size());
  if (totalPairs > 0)
    report.couplingDensity = static_cast<double>(coupledPairs) / static_cast<double>(totalPairs);
  return report;
}

TreeComplexity treeComplexity(const tree::Tree &t) {
  TreeComplexity out;
  out.nodes = t.size();
  out.depth = t.depth();
  out.leaves = t.leafCount();
  usize interior = 0;
  usize childSum = 0;
  for (const auto &n : t.nodes()) {
    if (n.children.empty()) continue;
    ++interior;
    childSum += n.children.size();
    out.maxBranching = std::max(out.maxBranching, n.children.size());
  }
  if (interior > 0)
    out.averageBranching = static_cast<double>(childSum) / static_cast<double>(interior);
  return out;
}

} // namespace sv::metrics
