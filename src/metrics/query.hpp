// Metric-space queries over divergence (the refine half of the
// filter-and-refine layer). The divergence distance of Eq. 6 under the
// default unit costs is a metric on codebases — TED is a metric on trees,
// role matching is symmetric, and unmatched units price identically in
// both directions — so similarity queries can be answered without paying
// the exact-TED price for every candidate:
//
//   filter:  order candidates by an admissible lower bound assembled from
//            the per-unit signatures persisted in the Codebase DB;
//   refine:  evaluate survivors with a budgeted cutoff — top-k keeps the
//            running k-th best as a shrinking budget, range queries use
//            the radius — so losing candidates abandon mid-DP.
//
// Every distance *reported* by a query is exact (pruning only discards
// candidates provably outside the result), which is why topKDivergence is
// byte-identical to brute-force exact ranking (tests/metrics/query_test.cpp
// and bench/query_bench.cpp gate on it).
//
// Filtering is bypassed (every candidate refined exactly) for the Source
// metric (no tree signatures) and the +coverage variant (signatures
// describe unmasked trees).
#pragma once

#include "metrics/metrics.hpp"

namespace sv::metrics {

/// How one bounded evaluation was resolved.
enum class FilterOutcome {
  Exact,          ///< completed: divergence is the exact diverge() result
  PrunedByBound,  ///< signature lower bound reached the cutoff; no DP ran
  PrunedByCutoff, ///< abandoned mid-refinement once the running total reached it
};

/// diverge() result with provenance. On a pruned outcome `distance` is
/// clamped to the cutoff (the true distance is >= it); the dmax
/// normalisers and unit counts are always exact (they only need sizes).
struct BoundedDivergence {
  Divergence divergence;
  FilterOutcome outcome = FilterOutcome::Exact;
};

/// Admissible lower bound on diverge(c1, c2, ...).distance from persisted
/// unit signatures: summed per-pair TED bounds plus unmatched unit sizes.
/// 0 (no filtering) for Source and the +coverage variant.
[[nodiscard]] u64 divergenceLowerBound(const db::CodebaseDb &c1, const db::CodebaseDb &c2,
                                       Metric metric, Variant variant = {},
                                       const tree::TedCosts &costs = {},
                                       const MatchOptions &match = {});

/// diverge() with a total-distance budget. cutoff == 0 computes exactly.
/// Otherwise matched pairs are refined in descending-lower-bound order,
/// each unit TED runs with the remaining budget as its own TedOptions
/// cutoff (any cutoff in `ted` is overridden), and the whole evaluation
/// abandons as soon as the accumulated distance plus the remaining pairs'
/// bounds reaches the budget.
[[nodiscard]] BoundedDivergence divergeBounded(const db::CodebaseDb &c1,
                                               const db::CodebaseDb &c2, Metric metric,
                                               Variant variant, const tree::TedOptions &ted,
                                               const MatchOptions &match, u64 cutoff);

/// One query result; `index` points into the candidate corpus.
struct Neighbor {
  usize index = 0;
  u64 distance = 0;      ///< exact diverge().distance (never a bound)
  double normalised = 0; ///< distance / dmaxSym
};

/// Filter effectiveness of one query or matrix build.
struct QueryStats {
  usize candidates = 0;
  usize prunedByBound = 0;  ///< settled by the lower bound alone
  usize prunedByCutoff = 0; ///< abandoned mid-refinement
  usize exact = 0;          ///< refined to completion

  [[nodiscard]] double filterRate() const {
    const usize resolved = prunedByBound + prunedByCutoff + exact;
    return resolved == 0
               ? 0.0
               : static_cast<double>(prunedByBound + prunedByCutoff) / static_cast<double>(resolved);
  }
};

/// The k nearest corpus entries to `query` by divergence distance, ties by
/// index — byte-identical to sorting all exact distances. The cutoff
/// shrinks to (current k-th best) + 1 as results accumulate.
[[nodiscard]] std::vector<Neighbor> topKDivergence(
    const db::CodebaseDb &query, const std::vector<const db::CodebaseDb *> &corpus, usize k,
    Metric metric, Variant variant = {}, const tree::TedOptions &ted = {},
    const MatchOptions &match = {}, QueryStats *stats = nullptr);

/// Every corpus entry within distance <= radius, ascending (distance,
/// index). Exact member distances; non-members are pruned unevaluated.
[[nodiscard]] std::vector<Neighbor> rangeDivergence(
    const db::CodebaseDb &query, const std::vector<const db::CodebaseDb *> &corpus, u64 radius,
    Metric metric, Variant variant = {}, const tree::TedOptions &ted = {},
    const MatchOptions &match = {}, QueryStats *stats = nullptr);

/// Tree-level top-k (the fuzz-corpus path): same shrinking-cutoff scheme
/// over raw TEDs, with signatures computed per call. `normalised` divides
/// by |t1| + |t2|.
[[nodiscard]] std::vector<Neighbor> topKTrees(const tree::Tree &query,
                                              const std::vector<tree::Tree> &corpus, usize k,
                                              const tree::TedOptions &ted = {},
                                              QueryStats *stats = nullptr);

/// Pairwise TED matrix over `corpus`, row-major n*n, parallelised over the
/// upper triangle and mirrored (assumes symmetric del/ins costs, the
/// default). With cutoff > 0 entries are min(exact, cutoff): pairs whose
/// signature bound reaches the cutoff never run a DP. The input for
/// k-medoids clustering of generated corpora.
[[nodiscard]] std::vector<u64> treeDistanceMatrix(const std::vector<tree::Tree> &corpus,
                                                  const tree::TedOptions &ted, u64 cutoff,
                                                  QueryStats *stats = nullptr);

} // namespace sv::metrics
