#include "metrics/query.hpp"

#include <algorithm>
#include <atomic>

#include "support/parallel.hpp"
#include "tree/tedengine.hpp"

namespace sv::metrics {

namespace {

/// Filtering needs persisted tree signatures: only tree metrics have them,
/// and the +coverage variant masks trees per call so the stored signatures
/// no longer describe what the DP would see.
bool filterable(Metric metric, const Variant &variant) {
  return isTreeMetric(metric) && !variant.coverage;
}

bool neighborLess(const Neighbor &a, const Neighbor &b) {
  return std::tie(a.distance, a.index) < std::tie(b.distance, b.index);
}

/// Shared top-k bookkeeping: a max-heap of the current k best by
/// (distance, index), whose worst element supplies the shrinking cutoff.
class TopKPool {
public:
  explicit TopKPool(usize k) : k_(k) {}

  /// 0 while the pool is filling (evaluate exactly), else kth-best + 1 —
  /// the smallest cutoff that still computes every potential winner
  /// (including index ties at the k-th distance) exactly.
  [[nodiscard]] u64 cutoff() const {
    return best_.size() < k_ ? 0 : best_.front().distance + 1;
  }

  void offer(const Neighbor &nb) {
    if (best_.size() < k_) {
      best_.push_back(nb);
      std::push_heap(best_.begin(), best_.end(), neighborLess);
    } else if (neighborLess(nb, best_.front())) {
      std::pop_heap(best_.begin(), best_.end(), neighborLess);
      best_.back() = nb;
      std::push_heap(best_.begin(), best_.end(), neighborLess);
    }
  }

  [[nodiscard]] std::vector<Neighbor> sorted() && {
    std::sort(best_.begin(), best_.end(), neighborLess);
    return std::move(best_);
  }

private:
  usize k_;
  std::vector<Neighbor> best_;
};

void countOutcome(QueryStats *stats, FilterOutcome outcome) {
  if (!stats) return;
  switch (outcome) {
  case FilterOutcome::Exact: ++stats->exact; break;
  case FilterOutcome::PrunedByBound: ++stats->prunedByBound; break;
  case FilterOutcome::PrunedByCutoff: ++stats->prunedByCutoff; break;
  }
}

} // namespace

u64 divergenceLowerBound(const db::CodebaseDb &c1, const db::CodebaseDb &c2, Metric metric,
                         Variant variant, const tree::TedCosts &costs,
                         const MatchOptions &match) {
  if (!filterable(metric, variant)) return 0;
  u64 lb = 0;
  for (const auto &[u1, u2] : matchUnits(c1, c2, match)) {
    if (!u1) {
      lb += metricSignature(*u2, metric, variant).n;
      continue;
    }
    if (!u2) {
      lb += metricSignature(*u1, metric, variant).n;
      continue;
    }
    lb += tree::tedLowerBound(metricSignature(*u1, metric, variant),
                              metricSignature(*u2, metric, variant), costs);
  }
  return lb;
}

BoundedDivergence divergeBounded(const db::CodebaseDb &c1, const db::CodebaseDb &c2,
                                 Metric metric, Variant variant, const tree::TedOptions &ted,
                                 const MatchOptions &match, u64 cutoff) {
  if (cutoff == 0 || !filterable(metric, variant))
    return {diverge(c1, c2, metric, variant, ted, match), FilterOutcome::Exact};

  struct MatchedPair {
    const db::UnitEntry *u1 = nullptr;
    const db::UnitEntry *u2 = nullptr;
    u64 lb = 0;
  };
  Divergence acc; // exact contributions only; normalisers always exact
  std::vector<MatchedPair> pairs;
  u64 sumLb = 0;
  for (const auto &[u1, u2] : matchUnits(c1, c2, match)) {
    if (!u1) {
      const u64 n2 = metricSignature(*u2, metric, variant).n;
      acc.distance += n2;
      acc.dmaxEq7 += n2;
      acc.dmaxSym += n2;
      ++acc.unmatchedUnits;
      continue;
    }
    if (!u2) {
      const u64 n1 = metricSignature(*u1, metric, variant).n;
      acc.distance += n1;
      acc.dmaxSym += n1;
      ++acc.unmatchedUnits;
      continue;
    }
    const auto &s1 = metricSignature(*u1, metric, variant);
    const auto &s2 = metricSignature(*u2, metric, variant);
    acc.dmaxEq7 += s2.n;
    acc.dmaxSym += s1.n + s2.n;
    ++acc.matchedUnits;
    const u64 lb = tree::tedLowerBound(s1, s2, ted.costs);
    pairs.push_back({u1, u2, lb});
    sumLb += lb;
  }

  const auto pruned = [&](FilterOutcome outcome) {
    BoundedDivergence out{acc, outcome};
    out.divergence.distance = cutoff; // the true distance is >= cutoff
    return out;
  };
  if (acc.distance + sumLb >= cutoff) return pruned(FilterOutcome::PrunedByBound);

  // Refine biggest bound first: the pairs most likely to blow the budget
  // run while the budget is still loose enough to abandon them early.
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const MatchedPair &a, const MatchedPair &b) { return a.lb > b.lb; });
  u64 remaining = sumLb;
  for (const auto &p : pairs) {
    remaining -= p.lb;
    // > p.lb by the invariant acc + remaining-before-this-pair < cutoff.
    const u64 budget = cutoff - acc.distance - remaining;
    auto opts = ted;
    opts.cutoff = budget;
    acc.distance += tree::tedDispatch(metricTree(*p.u1, metric, variant),
                                      metricTree(*p.u2, metric, variant), opts);
    if (acc.distance + remaining >= cutoff) return pruned(FilterOutcome::PrunedByCutoff);
  }
  return {acc, FilterOutcome::Exact};
}

std::vector<Neighbor> topKDivergence(const db::CodebaseDb &query,
                                     const std::vector<const db::CodebaseDb *> &corpus, usize k,
                                     Metric metric, Variant variant, const tree::TedOptions &ted,
                                     const MatchOptions &match, QueryStats *stats) {
  if (k == 0 || corpus.empty()) return {};

  // Filter order: cheapest-looking candidates first, so the cutoff tightens
  // as fast as possible.
  std::vector<std::pair<u64, usize>> order;
  order.reserve(corpus.size());
  for (usize i = 0; i < corpus.size(); ++i)
    order.push_back({divergenceLowerBound(query, *corpus[i], metric, variant, ted.costs, match), i});
  std::sort(order.begin(), order.end());

  TopKPool pool(k);
  for (const auto &[lb, i] : order) {
    if (stats) ++stats->candidates;
    const u64 cut = pool.cutoff();
    if (cut > 0 && lb >= cut) {
      if (stats) ++stats->prunedByBound;
      continue;
    }
    const auto bd = divergeBounded(query, *corpus[i], metric, variant, ted, match, cut);
    countOutcome(stats, bd.outcome);
    if (bd.outcome != FilterOutcome::Exact) continue;
    pool.offer({i, bd.divergence.distance, bd.divergence.normalised()});
  }
  return std::move(pool).sorted();
}

std::vector<Neighbor> rangeDivergence(const db::CodebaseDb &query,
                                      const std::vector<const db::CodebaseDb *> &corpus,
                                      u64 radius, Metric metric, Variant variant,
                                      const tree::TedOptions &ted, const MatchOptions &match,
                                      QueryStats *stats) {
  const u64 cut = radius + 1; // exact for every distance <= radius
  std::vector<Neighbor> out;
  for (usize i = 0; i < corpus.size(); ++i) {
    if (stats) ++stats->candidates;
    if (divergenceLowerBound(query, *corpus[i], metric, variant, ted.costs, match) >= cut) {
      if (stats) ++stats->prunedByBound;
      continue;
    }
    const auto bd = divergeBounded(query, *corpus[i], metric, variant, ted, match, cut);
    countOutcome(stats, bd.outcome);
    if (bd.outcome != FilterOutcome::Exact) continue;
    out.push_back({i, bd.divergence.distance, bd.divergence.normalised()});
  }
  std::sort(out.begin(), out.end(), neighborLess);
  return out;
}

std::vector<Neighbor> topKTrees(const tree::Tree &query, const std::vector<tree::Tree> &corpus,
                                usize k, const tree::TedOptions &ted, QueryStats *stats) {
  if (k == 0 || corpus.empty()) return {};
  const auto qsig = tree::boundSignature(query);

  std::vector<std::pair<u64, usize>> order;
  order.reserve(corpus.size());
  for (usize i = 0; i < corpus.size(); ++i)
    order.push_back({tree::tedLowerBound(qsig, tree::boundSignature(corpus[i]), ted.costs), i});
  std::sort(order.begin(), order.end());

  TopKPool pool(k);
  for (const auto &[lb, i] : order) {
    if (stats) ++stats->candidates;
    const u64 cut = pool.cutoff();
    if (cut > 0 && lb >= cut) {
      if (stats) ++stats->prunedByBound;
      continue;
    }
    auto opts = ted;
    opts.cutoff = cut;
    const u64 d = tree::tedDispatch(query, corpus[i], opts);
    if (cut > 0 && d >= cut) {
      if (stats) ++stats->prunedByCutoff;
      continue;
    }
    if (stats) ++stats->exact;
    const u64 dmax = query.size() + corpus[i].size();
    pool.offer({i, d, dmax == 0 ? 0.0 : static_cast<double>(d) / static_cast<double>(dmax)});
  }
  return std::move(pool).sorted();
}

std::vector<u64> treeDistanceMatrix(const std::vector<tree::Tree> &corpus,
                                    const tree::TedOptions &ted, u64 cutoff, QueryStats *stats) {
  const usize n = corpus.size();
  std::vector<u64> values(n * n, 0);
  if (n < 2) return values;

  std::vector<tree::BoundSignature> sigs(n);
  parallelFor(n, [&](usize i) { sigs[i] = tree::boundSignature(corpus[i]); });

  std::vector<std::pair<u32, u32>> todo;
  todo.reserve(n * (n - 1) / 2);
  for (usize i = 0; i < n; ++i)
    for (usize j = i + 1; j < n; ++j) todo.emplace_back(static_cast<u32>(i), static_cast<u32>(j));

  std::atomic<usize> prunedByBound{0}, prunedByCutoff{0}, exact{0};
  parallelFor(todo.size(), [&](usize p) {
    const auto [i, j] = todo[p];
    u64 v;
    if (cutoff > 0 && tree::tedLowerBound(sigs[i], sigs[j], ted.costs) >= cutoff) {
      v = cutoff;
      prunedByBound.fetch_add(1, std::memory_order_relaxed);
    } else {
      auto opts = ted;
      opts.cutoff = cutoff;
      v = tree::tedDispatch(corpus[i], corpus[j], opts);
      if (cutoff > 0 && v >= cutoff)
        prunedByCutoff.fetch_add(1, std::memory_order_relaxed);
      else
        exact.fetch_add(1, std::memory_order_relaxed);
    }
    values[static_cast<usize>(i) * n + j] = v;
    values[static_cast<usize>(j) * n + i] = v;
  });
  if (stats) {
    stats->candidates += todo.size();
    stats->prunedByBound += prunedByBound.load();
    stats->prunedByCutoff += prunedByCutoff.load();
    stats->exact += exact.load();
  }
  return values;
}

} // namespace sv::metrics
