// The codebase summarisation metrics of Table I, computed over Codebase
// DBs: the absolute perceived measures (SLOC, LLOC — Eqs. 2 and 3), the
// relative textual measure (Source — Eq. 4, via the O(NP) diff distance),
// and the tree-based relative measures (T_src, T_sem, T_sem+i, T_ir —
// Eqs. 5 and 6) that together form TBMD. Variants: +preprocessor and
// +coverage (Section III / Table I).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "db/codebase.hpp"
#include "tree/ted.hpp"

namespace sv::metrics {

enum class Metric { SLOC, LLOC, Source, Tsrc, Tsem, TsemInline, Tir };

[[nodiscard]] std::string_view metricName(Metric m);
[[nodiscard]] bool isTreeMetric(Metric m);
[[nodiscard]] bool isAbsolute(Metric m);

struct Variant {
  bool preprocessed = false; ///< +pp: measure after the preprocessor
  bool coverage = false;     ///< +coverage: mask unexecuted lines first
};

/// Absolute measure (SLOC/LLOC) of a whole codebase: the sum over units
/// (Eqs. 2, 3). Throws InternalError for relative metrics.
[[nodiscard]] usize absolute(const db::CodebaseDb &c, Metric metric, Variant variant = {});

/// A relative divergence d(C1, C2) (Eq. 6) plus its normalisers.
struct Divergence {
  u64 distance = 0;  ///< summed TED / diff distance over matched unit pairs
  u64 dmaxEq7 = 0;   ///< Eq. 7 as printed in the paper: sum |T(F_C2)|
  u64 dmaxSym = 0;   ///< symmetric bound sum (|T(F_C1)| + |T(F_C2)|): always >= distance
  usize matchedUnits = 0;
  usize unmatchedUnits = 0; ///< units without a partner (counted into distance)

  /// Normalised to [0, 1] using the symmetric bound. (Eq. 7's bound can be
  /// exceeded when |T1| > |T2|; see EXPERIMENTS.md for the discussion.)
  [[nodiscard]] double normalised() const {
    return dmaxSym == 0 ? 0.0 : static_cast<double>(distance) / static_cast<double>(dmaxSym);
  }
};

/// The `match` function of Eq. 4/6: pairs units by their `role` (file
/// stem), which the corpus keeps stable across model ports. Unmatched units
/// contribute their full size to the distance (they must be entirely
/// added/removed).
struct MatchOptions {
  /// Override unit pairing: returns the role a unit should be matched
  /// under. Defaults to UnitEntry::role.
  std::function<std::string(const db::UnitEntry &)> roleOf;
};

/// One Eq. 4/6 pairing produced by matchUnits: a unit of C1 and its role
/// partner in C2; either side is null for an unmatched role.
struct UnitPair {
  const db::UnitEntry *u1 = nullptr;
  const db::UnitEntry *u2 = nullptr;
};

/// The `match` function materialised: every C1 unit (in codebase order)
/// paired with the first C2 unit of the same role or null, followed by the
/// C2 units whose role never appeared in C1. diverge() and the query layer
/// (metrics/query.hpp) walk the same list, so filter-and-refine results
/// refine to exactly what diverge() computes.
[[nodiscard]] std::vector<UnitPair> matchUnits(const db::CodebaseDb &c1,
                                               const db::CodebaseDb &c2,
                                               const MatchOptions &match = {});

/// The tree a tree metric measures for one unit (variant-aware; ignores
/// +coverage, which masks per call). Throws for non-tree metrics.
[[nodiscard]] const tree::Tree &metricTree(const db::UnitEntry &u, Metric metric,
                                           Variant variant = {});

/// The persisted lower-bound signature of `metricTree(u, metric, variant)`.
[[nodiscard]] const tree::BoundSignature &metricSignature(const db::UnitEntry &u, Metric metric,
                                                          Variant variant = {});

/// Relative divergence between two codebases under `metric` (Eq. 6).
/// Throws InternalError for absolute metrics.
[[nodiscard]] Divergence diverge(const db::CodebaseDb &c1, const db::CodebaseDb &c2,
                                 Metric metric, Variant variant = {},
                                 const tree::TedOptions &ted = {},
                                 const MatchOptions &match = {});

/// Apply a codebase's coverage mask to one of its trees: nodes whose source
/// line was never executed are pruned with their subtrees (Section IV-D).
/// Nodes without a source back-reference (synthetic) are kept.
[[nodiscard]] tree::Tree applyCoverage(const tree::Tree &t, const vm::Coverage &coverage);

/// Convenience: every metric's normalised divergence from `base` for one
/// codebase, as plotted in the Fig 7/8 heatmaps.
struct DivergenceRow {
  std::string model;
  double source = 0, tsrc = 0, tsem = 0, tsemI = 0, tir = 0;
};
[[nodiscard]] DivergenceRow divergenceRow(const db::CodebaseDb &base, const db::CodebaseDb &other,
                                          Variant variant = {});

} // namespace sv::metrics
