#include "metrics/metrics.hpp"

#include <map>
#include <unordered_map>

#include "support/strings.hpp"
#include "text/text.hpp"
#include "tree/tedengine.hpp"

namespace sv::metrics {

namespace {

/// role -> first unit with that role, built once per codebase per diverge()
/// call instead of a linear scan per unit (CloverLeaf's many-unit ports pay
/// O(U^2) otherwise, and divergenceRow re-pays it for all five metrics).
std::unordered_map<std::string, const db::UnitEntry *> unitsByRole(const db::CodebaseDb &c,
                                                                  const MatchOptions &match) {
  std::unordered_map<std::string, const db::UnitEntry *> index;
  index.reserve(c.units.size());
  // emplace keeps the first unit per role, matching the original scan order.
  for (const auto &u : c.units) index.emplace(match.roleOf ? match.roleOf(u) : u.role, &u);
  return index;
}

const std::string &selectText(const db::UnitEntry &u, const Variant &variant) {
  return variant.preprocessed ? u.normTextPp : u.normText;
}

/// Coverage masking for text: keep the lines of covered files... textual
/// masking is not line-mapped after normalisation, so the +coverage variant
/// applies to tree metrics only; text falls back to the unmasked form.
} // namespace

std::string_view metricName(Metric m) {
  switch (m) {
  case Metric::SLOC: return "SLOC";
  case Metric::LLOC: return "LLOC";
  case Metric::Source: return "Source";
  case Metric::Tsrc: return "Tsrc";
  case Metric::Tsem: return "Tsem";
  case Metric::TsemInline: return "Tsem+i";
  case Metric::Tir: return "Tir";
  }
  return "?";
}

bool isTreeMetric(Metric m) {
  return m == Metric::Tsrc || m == Metric::Tsem || m == Metric::TsemInline || m == Metric::Tir;
}

bool isAbsolute(Metric m) { return m == Metric::SLOC || m == Metric::LLOC; }

const tree::Tree &metricTree(const db::UnitEntry &u, Metric metric, Variant variant) {
  switch (metric) {
  case Metric::Tsrc: return variant.preprocessed ? u.tsrcPp : u.tsrc;
  case Metric::Tsem: return u.tsem;
  case Metric::TsemInline: return u.tsemI;
  case Metric::Tir: return u.tir;
  default: internalError("metricTree: not a tree metric");
  }
}

const tree::BoundSignature &metricSignature(const db::UnitEntry &u, Metric metric,
                                            Variant variant) {
  switch (metric) {
  case Metric::Tsrc: return variant.preprocessed ? u.sigTsrcPp : u.sigTsrc;
  case Metric::Tsem: return u.sigTsem;
  case Metric::TsemInline: return u.sigTsemI;
  case Metric::Tir: return u.sigTir;
  default: internalError("metricSignature: not a tree metric");
  }
}

std::vector<UnitPair> matchUnits(const db::CodebaseDb &c1, const db::CodebaseDb &c2,
                                 const MatchOptions &match) {
  std::vector<UnitPair> pairs;
  pairs.reserve(c1.units.size() + c2.units.size());
  const auto c2ByRole = unitsByRole(c2, match);
  std::map<std::string, bool> seenRoles;
  for (const auto &u1 : c1.units) {
    const std::string role = match.roleOf ? match.roleOf(u1) : u1.role;
    seenRoles[role] = true;
    const auto it2 = c2ByRole.find(role);
    pairs.push_back({&u1, it2 == c2ByRole.end() ? nullptr : it2->second});
  }
  // Units present only in c2 must be introduced wholesale.
  for (const auto &u2 : c2.units) {
    const std::string role = match.roleOf ? match.roleOf(u2) : u2.role;
    if (seenRoles.count(role)) continue;
    pairs.push_back({nullptr, &u2});
  }
  return pairs;
}

usize absolute(const db::CodebaseDb &c, Metric metric, Variant variant) {
  if (!isAbsolute(metric)) internalError("absolute() requires SLOC or LLOC");
  usize total = 0;
  for (const auto &u : c.units) {
    if (metric == Metric::SLOC) total += variant.preprocessed ? u.slocPp : u.sloc;
    else total += variant.preprocessed ? u.llocPp : u.lloc;
  }
  return total;
}

tree::Tree applyCoverage(const tree::Tree &t, const vm::Coverage &coverage) {
  return t.pruneWhere([&](const tree::Node &n) {
    if (n.file < 0 || n.line < 1) return true; // synthetic nodes stay
    return coverage.covered(n.file, n.line);
  });
}

Divergence diverge(const db::CodebaseDb &c1, const db::CodebaseDb &c2, Metric metric,
                   Variant variant, const tree::TedOptions &tedOptions,
                   const MatchOptions &match) {
  if (isAbsolute(metric)) internalError("diverge() requires a relative metric");
  Divergence out;

  // Returns a reference to the unit's stored tree in the common path; only
  // the +coverage variant materialises a masked copy (into `storage`, which
  // must outlive the use of the returned reference).
  const auto maskedTree = [&](const db::CodebaseDb &c, const db::UnitEntry &u,
                              tree::Tree &storage) -> const tree::Tree & {
    const tree::Tree &base = metricTree(u, metric, variant);
    if (variant.coverage && c.hasCoverage) {
      storage = applyCoverage(base, c.coverage);
      return storage;
    }
    return base;
  };

  for (const auto &[u1, u2] : matchUnits(c1, c2, match)) {
    if (metric == Metric::Source) {
      if (!u1) {
        const auto lines2 = str::splitLines(selectText(*u2, variant));
        out.distance += lines2.size();
        out.dmaxEq7 += lines2.size();
        out.dmaxSym += lines2.size();
        ++out.unmatchedUnits;
        continue;
      }
      const auto lines1 = str::splitLines(selectText(*u1, variant));
      if (!u2) {
        out.distance += lines1.size();
        out.dmaxSym += lines1.size();
        ++out.unmatchedUnits;
        continue;
      }
      const auto lines2 = str::splitLines(selectText(*u2, variant));
      out.distance += text::diffDistance(lines1, lines2);
      out.dmaxEq7 += lines2.size();
      out.dmaxSym += lines1.size() + lines2.size();
      ++out.matchedUnits;
      continue;
    }
    tree::Tree masked1, masked2;
    if (!u1) {
      const tree::Tree &t2 = maskedTree(c2, *u2, masked2);
      out.distance += t2.size();
      out.dmaxEq7 += t2.size();
      out.dmaxSym += t2.size();
      ++out.unmatchedUnits;
      continue;
    }
    const tree::Tree &t1 = maskedTree(c1, *u1, masked1);
    if (!u2) {
      out.distance += t1.size();
      out.dmaxSym += t1.size();
      ++out.unmatchedUnits;
      continue;
    }
    const tree::Tree &t2 = maskedTree(c2, *u2, masked2);
    out.distance += tree::tedDispatch(t1, t2, tedOptions);
    out.dmaxEq7 += t2.size();
    out.dmaxSym += t1.size() + t2.size();
    ++out.matchedUnits;
  }
  return out;
}

DivergenceRow divergenceRow(const db::CodebaseDb &base, const db::CodebaseDb &other,
                            Variant variant) {
  DivergenceRow row;
  row.model = other.model;
  row.source = diverge(base, other, Metric::Source, variant).normalised();
  row.tsrc = diverge(base, other, Metric::Tsrc, variant).normalised();
  row.tsem = diverge(base, other, Metric::Tsem, variant).normalised();
  row.tsemI = diverge(base, other, Metric::TsemInline, variant).normalised();
  row.tir = diverge(base, other, Metric::Tir, variant).normalised();
  return row;
}

} // namespace sv::metrics
