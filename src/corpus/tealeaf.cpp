// TeaLeaf: a heat-conduction proxy solving the implicit diffusion system
// with a Conjugate Gradient solver (the paper's primary clustering subject,
// Section V-A). Two translation units per port — main.cpp (problem setup +
// verification, shared verbatim) and cg.cpp (the CG solver in the model's
// idiom) — exercising the unit-matching path of Eq. 6.
#include "corpus/corpus.hpp"
#include "corpus/headers.hpp"

namespace sv::corpus {

namespace {

const char *kHeader = R"src(#pragma once
// TeaLeaf public solver interface
double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps);
)src";

const char *kMain = R"src(// TeaLeaf driver: setup, solve, verify
#include <stdlib.h>
#include "tealeaf.h"

#define NX 16
#define NY 16
#define MAX_ITERS 80
#define EPS 1.0e-12

void init_fields(double* u, double* b, double* kx, double* ky, int nx, int ny) {
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = j * nx + i;
      double density = 1.0;
      if (i < nx / 2) {
        density = 0.2;
      }
      double energy = 1.0;
      if (j < ny / 2) {
        energy = 2.0;
      }
      u[idx] = density * energy;
      b[idx] = u[idx];
      kx[idx] = 0.1;
      ky[idx] = 0.1;
    }
  }
}

double residual_norm(const double* u, const double* b, const double* kx, const double* ky,
                     int nx, int ny) {
  double total = 0.0;
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = j * nx + i;
      double au = u[idx];
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        au = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * u[idx]
           - kx[idx] * (u[idx - 1] + u[idx + 1])
           - ky[idx] * (u[idx - nx] + u[idx + nx]);
      }
      double r = b[idx] - au;
      total += r * r;
    }
  }
  return sqrt(total);
}

int main() {
  int n = NX * NY;
  double* u = (double*) malloc(sizeof(double) * n);
  double* b = (double*) malloc(sizeof(double) * n);
  double* kx = (double*) malloc(sizeof(double) * n);
  double* ky = (double*) malloc(sizeof(double) * n);
  init_fields(u, b, kx, ky, NX, NY);
  double rro = solve(u, b, kx, ky, NX, NY, MAX_ITERS, EPS);
  double res = residual_norm(u, b, kx, ky, NX, NY);
  printf("final rro", rro);
  printf("residual", res);
  free(u);
  free(b);
  free(kx);
  free(ky);
  if (res < 1.0e-6) {
    printf("Validation: PASSED");
    return 0;
  }
  printf("Validation: FAILED");
  return 1;
}
)src";

// ------------------------------------------------------------------ serial --
const char *kCgSerial = R"src(// TeaLeaf CG solver: serial port
#include <stdlib.h>
#include "tealeaf.h"

void matvec(double* w, const double* p, const double* kx, const double* ky, int nx, int ny) {
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = j * nx + i;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
               - kx[idx] * (p[idx - 1] + p[idx + 1])
               - ky[idx] * (p[idx - nx] + p[idx + nx]);
      } else {
        w[idx] = p[idx];
      }
    }
  }
}

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  double* r = (double*) malloc(sizeof(double) * n);
  double* p = (double*) malloc(sizeof(double) * n);
  double* w = (double*) malloc(sizeof(double) * n);
  matvec(w, u, kx, ky, nx, ny);
  for (int i = 0; i < n; i++) {
    r[i] = b[i] - w[i];
    p[i] = r[i];
  }
  double rro = dot(r, r, n);
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    matvec(w, p, kx, ky, nx, ny);
    double pw = dot(p, w, n);
    double alpha = rro / pw;
    for (int i = 0; i < n; i++) {
      u[i] += alpha * p[i];
      r[i] -= alpha * w[i];
    }
    double rrn = dot(r, r, n);
    double beta = rrn / rro;
    for (int i = 0; i < n; i++) {
      p[i] = r[i] + beta * p[i];
    }
    rro = rrn;
  }
  free(r);
  free(p);
  free(w);
  return rro;
}
)src";

// -------------------------------------------------------------------- omp --
const char *kCgOmp = R"src(// TeaLeaf CG solver: OpenMP port
#include <stdlib.h>
#include <omp.h>
#include "tealeaf.h"

void matvec(double* w, const double* p, const double* kx, const double* ky, int nx, int ny) {
  #pragma omp parallel for collapse(2)
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = j * nx + i;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
               - kx[idx] * (p[idx - 1] + p[idx + 1])
               - ky[idx] * (p[idx - nx] + p[idx + nx]);
      } else {
        w[idx] = p[idx];
      }
    }
  }
}

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  #pragma omp parallel for reduction(+:sum)
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  double* r = (double*) malloc(sizeof(double) * n);
  double* p = (double*) malloc(sizeof(double) * n);
  double* w = (double*) malloc(sizeof(double) * n);
  matvec(w, u, kx, ky, nx, ny);
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    r[i] = b[i] - w[i];
    p[i] = r[i];
  }
  double rro = dot(r, r, n);
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    matvec(w, p, kx, ky, nx, ny);
    double pw = dot(p, w, n);
    double alpha = rro / pw;
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
      u[i] += alpha * p[i];
      r[i] -= alpha * w[i];
    }
    double rrn = dot(r, r, n);
    double beta = rrn / rro;
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
      p[i] = r[i] + beta * p[i];
    }
    rro = rrn;
  }
  free(r);
  free(p);
  free(w);
  return rro;
}
)src";

// ------------------------------------------------------------- omp-target --
const char *kCgOmpTarget = R"src(// TeaLeaf CG solver: OpenMP target port
#include <stdlib.h>
#include <omp.h>
#include "tealeaf.h"

void matvec(double* w, const double* p, const double* kx, const double* ky, int nx, int ny) {
  #pragma omp target teams distribute parallel for collapse(2) map(to: p, kx, ky) map(from: w)
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = j * nx + i;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
               - kx[idx] * (p[idx - 1] + p[idx + 1])
               - ky[idx] * (p[idx - nx] + p[idx + nx]);
      } else {
        w[idx] = p[idx];
      }
    }
  }
}

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  #pragma omp target teams distribute parallel for map(to: a, b) map(tofrom: sum) reduction(+:sum)
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  double* r = (double*) malloc(sizeof(double) * n);
  double* p = (double*) malloc(sizeof(double) * n);
  double* w = (double*) malloc(sizeof(double) * n);
  #pragma omp target enter data map(to: u, kx, ky) map(alloc: r, p, w)
  matvec(w, u, kx, ky, nx, ny);
  #pragma omp target teams distribute parallel for map(to: b, w) map(from: r, p)
  for (int i = 0; i < n; i++) {
    r[i] = b[i] - w[i];
    p[i] = r[i];
  }
  double rro = dot(r, r, n);
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    matvec(w, p, kx, ky, nx, ny);
    double pw = dot(p, w, n);
    double alpha = rro / pw;
    #pragma omp target teams distribute parallel for map(tofrom: u, r) map(to: p, w)
    for (int i = 0; i < n; i++) {
      u[i] += alpha * p[i];
      r[i] -= alpha * w[i];
    }
    double rrn = dot(r, r, n);
    double beta = rrn / rro;
    #pragma omp target teams distribute parallel for map(tofrom: p) map(to: r)
    for (int i = 0; i < n; i++) {
      p[i] = r[i] + beta * p[i];
    }
    rro = rrn;
  }
  #pragma omp target exit data map(from: u) map(release: r, p, w)
  free(r);
  free(p);
  free(w);
  return rro;
}
)src";

// ------------------------------------------------------------------- cuda --
const char *kCgCuda = R"src(// TeaLeaf CG solver: CUDA port
#include <stdlib.h>
#include <cuda_runtime.h>
#include "tealeaf.h"

#define TBSIZE 64

__global__ void matvec_kernel(double* w, const double* p, const double* kx, const double* ky,
                              int nx, int ny) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  int n = nx * ny;
  if (idx < n) {
    int i = idx % nx;
    int j = idx / nx;
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
             - kx[idx] * (p[idx - 1] + p[idx + 1])
             - ky[idx] * (p[idx - nx] + p[idx + nx]);
    } else {
      w[idx] = p[idx];
    }
  }
}

__global__ void cg_init_kernel(double* r, double* p, const double* b, const double* w, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    r[i] = b[i] - w[i];
    p[i] = r[i];
  }
}

__global__ void cg_update_kernel(double* u, double* r, const double* p, const double* w,
                                 double alpha, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    u[i] += alpha * p[i];
    r[i] -= alpha * w[i];
  }
}

__global__ void cg_p_kernel(double* p, const double* r, double beta, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    p[i] = r[i] + beta * p[i];
  }
}

__global__ void dot_kernel(const double* a, const double* b, double* partial, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    partial[i] = a[i] * b[i];
  }
}

double device_dot(const double* d_a, const double* d_b, double* d_partial, double* h_partial,
                  int n, int blocks) {
  dot_kernel<<<blocks, TBSIZE>>>(d_a, d_b, d_partial, n);
  cudaDeviceSynchronize();
  cudaMemcpy(h_partial, d_partial, sizeof(double) * n, cudaMemcpyDeviceToHost);
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += h_partial[i];
  }
  return sum;
}

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  int blocks = (n + TBSIZE - 1) / TBSIZE;
  double* d_u;
  double* d_b;
  double* d_kx;
  double* d_ky;
  double* d_r;
  double* d_p;
  double* d_w;
  double* d_partial;
  cudaMalloc((void**) &d_u, sizeof(double) * n);
  cudaMalloc((void**) &d_b, sizeof(double) * n);
  cudaMalloc((void**) &d_kx, sizeof(double) * n);
  cudaMalloc((void**) &d_ky, sizeof(double) * n);
  cudaMalloc((void**) &d_r, sizeof(double) * n);
  cudaMalloc((void**) &d_p, sizeof(double) * n);
  cudaMalloc((void**) &d_w, sizeof(double) * n);
  cudaMalloc((void**) &d_partial, sizeof(double) * n);
  cudaMemcpy(d_u, u, sizeof(double) * n, cudaMemcpyHostToDevice);
  cudaMemcpy(d_b, b, sizeof(double) * n, cudaMemcpyHostToDevice);
  cudaMemcpy(d_kx, kx, sizeof(double) * n, cudaMemcpyHostToDevice);
  cudaMemcpy(d_ky, ky, sizeof(double) * n, cudaMemcpyHostToDevice);
  double* h_partial = (double*) malloc(sizeof(double) * n);
  matvec_kernel<<<blocks, TBSIZE>>>(d_w, d_u, d_kx, d_ky, nx, ny);
  cg_init_kernel<<<blocks, TBSIZE>>>(d_r, d_p, d_b, d_w, n);
  cudaDeviceSynchronize();
  double rro = device_dot(d_r, d_r, d_partial, h_partial, n, blocks);
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    matvec_kernel<<<blocks, TBSIZE>>>(d_w, d_p, d_kx, d_ky, nx, ny);
    double pw = device_dot(d_p, d_w, d_partial, h_partial, n, blocks);
    double alpha = rro / pw;
    cg_update_kernel<<<blocks, TBSIZE>>>(d_u, d_r, d_p, d_w, alpha, n);
    double rrn = device_dot(d_r, d_r, d_partial, h_partial, n, blocks);
    double beta = rrn / rro;
    cg_p_kernel<<<blocks, TBSIZE>>>(d_p, d_r, beta, n);
    rro = rrn;
  }
  cudaMemcpy(u, d_u, sizeof(double) * n, cudaMemcpyDeviceToHost);
  cudaFree(d_u);
  cudaFree(d_b);
  cudaFree(d_kx);
  cudaFree(d_ky);
  cudaFree(d_r);
  cudaFree(d_p);
  cudaFree(d_w);
  cudaFree(d_partial);
  free(h_partial);
  return rro;
}
)src";

// -------------------------------------------------------------------- hip --
const char *kCgHip = R"src(// TeaLeaf CG solver: HIP port
#include <stdlib.h>
#include <hip_runtime.h>
#include "tealeaf.h"

#define TBSIZE 64

__global__ void matvec_kernel(double* w, const double* p, const double* kx, const double* ky,
                              int nx, int ny) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  int n = nx * ny;
  if (idx < n) {
    int i = idx % nx;
    int j = idx / nx;
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
             - kx[idx] * (p[idx - 1] + p[idx + 1])
             - ky[idx] * (p[idx - nx] + p[idx + nx]);
    } else {
      w[idx] = p[idx];
    }
  }
}

__global__ void cg_init_kernel(double* r, double* p, const double* b, const double* w, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    r[i] = b[i] - w[i];
    p[i] = r[i];
  }
}

__global__ void cg_update_kernel(double* u, double* r, const double* p, const double* w,
                                 double alpha, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    u[i] += alpha * p[i];
    r[i] -= alpha * w[i];
  }
}

__global__ void cg_p_kernel(double* p, const double* r, double beta, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    p[i] = r[i] + beta * p[i];
  }
}

__global__ void dot_kernel(const double* a, const double* b, double* partial, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    partial[i] = a[i] * b[i];
  }
}

double device_dot(const double* d_a, const double* d_b, double* d_partial, double* h_partial,
                  int n, int blocks) {
  hipLaunchKernelGGL(dot_kernel, blocks, TBSIZE, 0, 0, d_a, d_b, d_partial, n);
  hipDeviceSynchronize();
  hipMemcpy(h_partial, d_partial, sizeof(double) * n, hipMemcpyDeviceToHost);
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += h_partial[i];
  }
  return sum;
}

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  int blocks = (n + TBSIZE - 1) / TBSIZE;
  double* d_u;
  double* d_b;
  double* d_kx;
  double* d_ky;
  double* d_r;
  double* d_p;
  double* d_w;
  double* d_partial;
  hipMalloc((void**) &d_u, sizeof(double) * n);
  hipMalloc((void**) &d_b, sizeof(double) * n);
  hipMalloc((void**) &d_kx, sizeof(double) * n);
  hipMalloc((void**) &d_ky, sizeof(double) * n);
  hipMalloc((void**) &d_r, sizeof(double) * n);
  hipMalloc((void**) &d_p, sizeof(double) * n);
  hipMalloc((void**) &d_w, sizeof(double) * n);
  hipMalloc((void**) &d_partial, sizeof(double) * n);
  hipMemcpy(d_u, u, sizeof(double) * n, hipMemcpyHostToDevice);
  hipMemcpy(d_b, b, sizeof(double) * n, hipMemcpyHostToDevice);
  hipMemcpy(d_kx, kx, sizeof(double) * n, hipMemcpyHostToDevice);
  hipMemcpy(d_ky, ky, sizeof(double) * n, hipMemcpyHostToDevice);
  double* h_partial = (double*) malloc(sizeof(double) * n);
  hipLaunchKernelGGL(matvec_kernel, blocks, TBSIZE, 0, 0, d_w, d_u, d_kx, d_ky, nx, ny);
  hipLaunchKernelGGL(cg_init_kernel, blocks, TBSIZE, 0, 0, d_r, d_p, d_b, d_w, n);
  hipDeviceSynchronize();
  double rro = device_dot(d_r, d_r, d_partial, h_partial, n, blocks);
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    hipLaunchKernelGGL(matvec_kernel, blocks, TBSIZE, 0, 0, d_w, d_p, d_kx, d_ky, nx, ny);
    double pw = device_dot(d_p, d_w, d_partial, h_partial, n, blocks);
    double alpha = rro / pw;
    hipLaunchKernelGGL(cg_update_kernel, blocks, TBSIZE, 0, 0, d_u, d_r, d_p, d_w, alpha, n);
    double rrn = device_dot(d_r, d_r, d_partial, h_partial, n, blocks);
    double beta = rrn / rro;
    hipLaunchKernelGGL(cg_p_kernel, blocks, TBSIZE, 0, 0, d_p, d_r, beta, n);
    rro = rrn;
  }
  hipMemcpy(u, d_u, sizeof(double) * n, hipMemcpyDeviceToHost);
  hipFree(d_u);
  hipFree(d_b);
  hipFree(d_kx);
  hipFree(d_ky);
  hipFree(d_r);
  hipFree(d_p);
  hipFree(d_w);
  hipFree(d_partial);
  free(h_partial);
  return rro;
}
)src";

// ------------------------------------------------------------------ kokkos --
const char *kCgKokkos = R"src(// TeaLeaf CG solver: Kokkos port
#include <stdlib.h>
#include <kokkos.hpp>
#include "tealeaf.h"

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  Kokkos::View<double*> ku("u", n);
  Kokkos::View<double*> kb("b", n);
  Kokkos::View<double*> kkx("kx", n);
  Kokkos::View<double*> kky("ky", n);
  Kokkos::View<double*> r("r", n);
  Kokkos::View<double*> p("p", n);
  Kokkos::View<double*> w("w", n);
  Kokkos::deep_copy(ku, u);
  Kokkos::deep_copy(kb, b);
  Kokkos::deep_copy(kkx, kx);
  Kokkos::deep_copy(kky, ky);
  Kokkos::parallel_for(n, [=](int idx) {
    int i = idx % nx;
    int j = idx / nx;
    double au = ku(idx);
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      au = (1.0 + 2.0 * kkx(idx) + 2.0 * kky(idx)) * ku(idx)
         - kkx(idx) * (ku(idx - 1) + ku(idx + 1))
         - kky(idx) * (ku(idx - nx) + ku(idx + nx));
    }
    r(idx) = kb(idx) - au;
    p(idx) = r(idx);
  });
  Kokkos::fence();
  double rro = 0.0;
  Kokkos::parallel_reduce(n, [=](int i, double& acc) {
    acc += r(i) * r(i);
  }, rro);
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    Kokkos::parallel_for(n, [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        w(idx) = (1.0 + 2.0 * kkx(idx) + 2.0 * kky(idx)) * p(idx)
               - kkx(idx) * (p(idx - 1) + p(idx + 1))
               - kky(idx) * (p(idx - nx) + p(idx + nx));
      } else {
        w(idx) = p(idx);
      }
    });
    double pw = 0.0;
    Kokkos::parallel_reduce(n, [=](int i, double& acc) {
      acc += p(i) * w(i);
    }, pw);
    double alpha = rro / pw;
    Kokkos::parallel_for(n, [=](int i) {
      ku(i) += alpha * p(i);
      r(i) -= alpha * w(i);
    });
    double rrn = 0.0;
    Kokkos::parallel_reduce(n, [=](int i, double& acc) {
      acc += r(i) * r(i);
    }, rrn);
    double beta = rrn / rro;
    Kokkos::parallel_for(n, [=](int i) {
      p(i) = r(i) + beta * p(i);
    });
    Kokkos::fence();
    rro = rrn;
  }
  Kokkos::deep_copy(u, ku);
  return rro;
}
)src";

// --------------------------------------------------------------------- tbb --
const char *kCgTbb = R"src(// TeaLeaf CG solver: TBB port
#include <stdlib.h>
#include <tbb.hpp>
#include "tealeaf.h"

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  double* r = (double*) malloc(sizeof(double) * n);
  double* p = (double*) malloc(sizeof(double) * n);
  double* w = (double*) malloc(sizeof(double) * n);
  tbb::parallel_for(tbb::blocked_range(0, n), [=](tbb::blocked_range range) {
    for (int idx = range.begin(); idx < range.end(); idx++) {
      int i = idx % nx;
      int j = idx / nx;
      double au = u[idx];
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        au = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * u[idx]
           - kx[idx] * (u[idx - 1] + u[idx + 1])
           - ky[idx] * (u[idx - nx] + u[idx + nx]);
      }
      r[idx] = b[idx] - au;
      p[idx] = r[idx];
    }
  });
  double rro = tbb::parallel_reduce(tbb::blocked_range(0, n), 0.0,
    [=](tbb::blocked_range range, double acc) {
      for (int i = range.begin(); i < range.end(); i++) {
        acc += r[i] * r[i];
      }
      return acc;
    }, std::plus<double>());
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    tbb::parallel_for(tbb::blocked_range(0, n), [=](tbb::blocked_range range) {
      for (int idx = range.begin(); idx < range.end(); idx++) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
                 - kx[idx] * (p[idx - 1] + p[idx + 1])
                 - ky[idx] * (p[idx - nx] + p[idx + nx]);
        } else {
          w[idx] = p[idx];
        }
      }
    });
    double pw = tbb::parallel_reduce(tbb::blocked_range(0, n), 0.0,
      [=](tbb::blocked_range range, double acc) {
        for (int i = range.begin(); i < range.end(); i++) {
          acc += p[i] * w[i];
        }
        return acc;
      }, std::plus<double>());
    double alpha = rro / pw;
    tbb::parallel_for(tbb::blocked_range(0, n), [=](tbb::blocked_range range) {
      for (int i = range.begin(); i < range.end(); i++) {
        u[i] += alpha * p[i];
        r[i] -= alpha * w[i];
      }
    });
    double rrn = tbb::parallel_reduce(tbb::blocked_range(0, n), 0.0,
      [=](tbb::blocked_range range, double acc) {
        for (int i = range.begin(); i < range.end(); i++) {
          acc += r[i] * r[i];
        }
        return acc;
      }, std::plus<double>());
    double beta = rrn / rro;
    tbb::parallel_for(tbb::blocked_range(0, n), [=](tbb::blocked_range range) {
      for (int i = range.begin(); i < range.end(); i++) {
        p[i] = r[i] + beta * p[i];
      }
    });
    rro = rrn;
  }
  free(r);
  free(p);
  free(w);
  return rro;
}
)src";

// ------------------------------------------------------------- std-indices --
const char *kCgStdPar = R"src(// TeaLeaf CG solver: StdPar (std-indices) port
#include <stdlib.h>
#include <execution.hpp>
#include "tealeaf.h"

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  double* r = (double*) malloc(sizeof(double) * n);
  double* p = (double*) malloc(sizeof(double) * n);
  double* w = (double*) malloc(sizeof(double) * n);
  std::for_each_n(std::execution::par_unseq, 0, n, [=](int idx) {
    int i = idx % nx;
    int j = idx / nx;
    double au = u[idx];
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      au = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * u[idx]
         - kx[idx] * (u[idx - 1] + u[idx + 1])
         - ky[idx] * (u[idx - nx] + u[idx + nx]);
    }
    r[idx] = b[idx] - au;
    p[idx] = r[idx];
  });
  double rro = std::transform_reduce(std::execution::par_unseq, 0, n, 0.0,
    std::plus<double>(), [=](int i) {
    return r[i] * r[i];
  });
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        w[idx] = (1.0 + 2.0 * kx[idx] + 2.0 * ky[idx]) * p[idx]
               - kx[idx] * (p[idx - 1] + p[idx + 1])
               - ky[idx] * (p[idx - nx] + p[idx + nx]);
      } else {
        w[idx] = p[idx];
      }
    });
    double pw = std::transform_reduce(std::execution::par_unseq, 0, n, 0.0,
      std::plus<double>(), [=](int i) {
      return p[i] * w[i];
    });
    double alpha = rro / pw;
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int i) {
      u[i] += alpha * p[i];
      r[i] -= alpha * w[i];
    });
    double rrn = std::transform_reduce(std::execution::par_unseq, 0, n, 0.0,
      std::plus<double>(), [=](int i) {
      return r[i] * r[i];
    });
    double beta = rrn / rro;
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int i) {
      p[i] = r[i] + beta * p[i];
    });
    rro = rrn;
  }
  free(r);
  free(p);
  free(w);
  return rro;
}
)src";

// ---------------------------------------------------------------- sycl-usm --
const char *kCgSyclUsm = R"src(// TeaLeaf CG solver: SYCL (USM) port
#include <stdlib.h>
#include <sycl.hpp>
#include "tealeaf.h"

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  sycl::queue q;
  double* du = sycl::malloc_device<double>(n, q);
  double* db = sycl::malloc_device<double>(n, q);
  double* dkx = sycl::malloc_device<double>(n, q);
  double* dky = sycl::malloc_device<double>(n, q);
  double* r = sycl::malloc_device<double>(n, q);
  double* p = sycl::malloc_device<double>(n, q);
  double* w = sycl::malloc_device<double>(n, q);
  double* partial = sycl::malloc_shared<double>(n, q);
  q.memcpy(du, u, sizeof(double) * n);
  q.memcpy(db, b, sizeof(double) * n);
  q.memcpy(dkx, kx, sizeof(double) * n);
  q.memcpy(dky, ky, sizeof(double) * n);
  q.wait();
  q.submit([&](handler h) {
    h.parallel_for<class cg_init>(sycl::range(n), [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      double au = du[idx];
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        au = (1.0 + 2.0 * dkx[idx] + 2.0 * dky[idx]) * du[idx]
           - dkx[idx] * (du[idx - 1] + du[idx + 1])
           - dky[idx] * (du[idx - nx] + du[idx + nx]);
      }
      r[idx] = db[idx] - au;
      p[idx] = r[idx];
    });
  });
  q.submit([&](handler h) {
    h.parallel_for<class dot_rr0>(sycl::range(n), [=](int i) {
      partial[i] = r[i] * r[i];
    });
  });
  q.wait();
  double rro = 0.0;
  for (int i = 0; i < n; i++) {
    rro += partial[i];
  }
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    q.submit([&](handler h) {
      h.parallel_for<class cg_w>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          w[idx] = (1.0 + 2.0 * dkx[idx] + 2.0 * dky[idx]) * p[idx]
                 - dkx[idx] * (p[idx - 1] + p[idx + 1])
                 - dky[idx] * (p[idx - nx] + p[idx + nx]);
        } else {
          w[idx] = p[idx];
        }
      });
    });
    q.submit([&](handler h) {
      h.parallel_for<class dot_pw>(sycl::range(n), [=](int i) {
        partial[i] = p[i] * w[i];
      });
    });
    q.wait();
    double pw = 0.0;
    for (int i = 0; i < n; i++) {
      pw += partial[i];
    }
    double alpha = rro / pw;
    q.submit([&](handler h) {
      h.parallel_for<class cg_ur>(sycl::range(n), [=](int i) {
        du[i] += alpha * p[i];
        r[i] -= alpha * w[i];
      });
    });
    q.submit([&](handler h) {
      h.parallel_for<class dot_rr>(sycl::range(n), [=](int i) {
        partial[i] = r[i] * r[i];
      });
    });
    q.wait();
    double rrn = 0.0;
    for (int i = 0; i < n; i++) {
      rrn += partial[i];
    }
    double beta = rrn / rro;
    q.submit([&](handler h) {
      h.parallel_for<class cg_p>(sycl::range(n), [=](int i) {
        p[i] = r[i] + beta * p[i];
      });
    });
    q.wait();
    rro = rrn;
  }
  q.memcpy(u, du, sizeof(double) * n);
  q.wait();
  sycl::free(du, q);
  sycl::free(db, q);
  sycl::free(dkx, q);
  sycl::free(dky, q);
  sycl::free(r, q);
  sycl::free(p, q);
  sycl::free(w, q);
  sycl::free(partial, q);
  return rro;
}
)src";

// ---------------------------------------------------------------- sycl-acc --
const char *kCgSyclAcc = R"src(// TeaLeaf CG solver: SYCL (accessors) port
#include <stdlib.h>
#include <sycl.hpp>
#include "tealeaf.h"

double solve(double* u, const double* b, const double* kx, const double* ky,
             int nx, int ny, int max_iters, double eps) {
  int n = nx * ny;
  sycl::queue q;
  double* hr = (double*) malloc(sizeof(double) * n);
  double* hp = (double*) malloc(sizeof(double) * n);
  double* hw = (double*) malloc(sizeof(double) * n);
  double* hpartial = (double*) malloc(sizeof(double) * n);
  sycl::buffer<double, 1> bu(u, sycl::range<1>(n));
  sycl::buffer<double, 1> bb(b, sycl::range<1>(n));
  sycl::buffer<double, 1> bkx(kx, sycl::range<1>(n));
  sycl::buffer<double, 1> bky(ky, sycl::range<1>(n));
  sycl::buffer<double, 1> br(hr, sycl::range<1>(n));
  sycl::buffer<double, 1> bp(hp, sycl::range<1>(n));
  sycl::buffer<double, 1> bw(hw, sycl::range<1>(n));
  sycl::buffer<double, 1> bpartial(hpartial, sycl::range<1>(n));
  q.submit([&](handler h) {
    auto au = bu.get_access<sycl::access::mode::read>(h);
    auto ab = bb.get_access<sycl::access::mode::read>(h);
    auto akx = bkx.get_access<sycl::access::mode::read>(h);
    auto aky = bky.get_access<sycl::access::mode::read>(h);
    auto ar = br.get_access<sycl::access::mode::discard_write>(h);
    auto ap = bp.get_access<sycl::access::mode::discard_write>(h);
    h.parallel_for<class cg_init>(sycl::range(n), [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      double av = au[idx];
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        av = (1.0 + 2.0 * akx[idx] + 2.0 * aky[idx]) * au[idx]
           - akx[idx] * (au[idx - 1] + au[idx + 1])
           - aky[idx] * (au[idx - nx] + au[idx + nx]);
      }
      ar[idx] = ab[idx] - av;
      ap[idx] = ar[idx];
    });
  });
  q.submit([&](handler h) {
    auto ar = br.get_access<sycl::access::mode::read>(h);
    auto apart = bpartial.get_access<sycl::access::mode::discard_write>(h);
    h.parallel_for<class dot_rr0>(sycl::range(n), [=](int i) {
      apart[i] = ar[i] * ar[i];
    });
  });
  q.wait();
  double rro = 0.0;
  for (int i = 0; i < n; i++) {
    rro += hpartial[i];
  }
  for (int it = 0; it < max_iters; it++) {
    if (rro < eps) {
      break;
    }
    q.submit([&](handler h) {
      auto ap = bp.get_access<sycl::access::mode::read>(h);
      auto akx = bkx.get_access<sycl::access::mode::read>(h);
      auto aky = bky.get_access<sycl::access::mode::read>(h);
      auto aw = bw.get_access<sycl::access::mode::discard_write>(h);
      h.parallel_for<class cg_w>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          aw[idx] = (1.0 + 2.0 * akx[idx] + 2.0 * aky[idx]) * ap[idx]
                 - akx[idx] * (ap[idx - 1] + ap[idx + 1])
                 - aky[idx] * (ap[idx - nx] + ap[idx + nx]);
        } else {
          aw[idx] = ap[idx];
        }
      });
    });
    q.submit([&](handler h) {
      auto ap = bp.get_access<sycl::access::mode::read>(h);
      auto aw = bw.get_access<sycl::access::mode::read>(h);
      auto apart = bpartial.get_access<sycl::access::mode::discard_write>(h);
      h.parallel_for<class dot_pw>(sycl::range(n), [=](int i) {
        apart[i] = ap[i] * aw[i];
      });
    });
    q.wait();
    double pw = 0.0;
    for (int i = 0; i < n; i++) {
      pw += hpartial[i];
    }
    double alpha = rro / pw;
    q.submit([&](handler h) {
      auto ap = bp.get_access<sycl::access::mode::read>(h);
      auto aw = bw.get_access<sycl::access::mode::read>(h);
      auto au = bu.get_access<sycl::access::mode::read_write>(h);
      auto ar = br.get_access<sycl::access::mode::read_write>(h);
      h.parallel_for<class cg_ur>(sycl::range(n), [=](int i) {
        au[i] += alpha * ap[i];
        ar[i] -= alpha * aw[i];
      });
    });
    q.submit([&](handler h) {
      auto ar = br.get_access<sycl::access::mode::read>(h);
      auto apart = bpartial.get_access<sycl::access::mode::discard_write>(h);
      h.parallel_for<class dot_rr>(sycl::range(n), [=](int i) {
        apart[i] = ar[i] * ar[i];
      });
    });
    q.wait();
    double rrn = 0.0;
    for (int i = 0; i < n; i++) {
      rrn += hpartial[i];
    }
    double beta = rrn / rro;
    q.submit([&](handler h) {
      auto ar = br.get_access<sycl::access::mode::read>(h);
      auto ap = bp.get_access<sycl::access::mode::read_write>(h);
      h.parallel_for<class cg_p>(sycl::range(n), [=](int i) {
        ap[i] = ar[i] + beta * ap[i];
      });
    });
    q.wait();
    rro = rrn;
  }
  free(hr);
  free(hp);
  free(hw);
  free(hpartial);
  return rro;
}
)src";

} // namespace

std::vector<std::string> tealeafModels() {
  return {"serial", "omp",   "omp-target",  "cuda",     "hip",
          "kokkos", "tbb",   "std-indices", "sycl-usm", "sycl-acc"};
}

db::Codebase makeTealeaf(const std::string &model) {
  const char *cg = nullptr;
  if (model == "serial") cg = kCgSerial;
  else if (model == "omp") cg = kCgOmp;
  else if (model == "omp-target") cg = kCgOmpTarget;
  else if (model == "cuda") cg = kCgCuda;
  else if (model == "hip") cg = kCgHip;
  else if (model == "kokkos") cg = kCgKokkos;
  else if (model == "tbb") cg = kCgTbb;
  else if (model == "std-indices") cg = kCgStdPar;
  else if (model == "sycl-usm") cg = kCgSyclUsm;
  else if (model == "sycl-acc") cg = kCgSyclAcc;
  else internalError("tealeaf: unknown model " + model);

  db::Codebase cb;
  cb.app = "tealeaf";
  cb.model = model;
  addModelHeaders(cb);
  cb.addFile("tealeaf.h", kHeader);
  cb.addFile("main.cpp", kMain);
  cb.addFile("cg.cpp", cg);
  cb.commands.push_back(commandFor("main.cpp", model));
  cb.commands.push_back(commandFor("cg.cpp", model));
  return cb;
}

} // namespace sv::corpus
