#include "corpus/corpus.hpp"

#include "support/combinators.hpp"

namespace sv::corpus {

std::vector<std::string> appNames() {
  return {"babelstream", "babelstream-fortran", "minibude", "tealeaf", "cloverleaf"};
}

std::vector<std::string> modelsOf(const std::string &app) {
  if (app == "babelstream") return babelstreamModels();
  if (app == "babelstream-fortran") return babelstreamFortranModels();
  if (app == "minibude") return minibudeModels();
  if (app == "tealeaf") return tealeafModels();
  if (app == "cloverleaf") return cloverleafModels();
  internalError("unknown corpus app: " + app);
}

db::Codebase make(const std::string &app, const std::string &model) {
  if (!contains(modelsOf(app), model))
    internalError("app " + app + " has no model '" + model + "'");
  if (app == "babelstream") return makeBabelstream(model);
  if (app == "babelstream-fortran") return makeBabelstreamFortran(model);
  if (app == "minibude") return makeMinibude(model);
  if (app == "tealeaf") return makeTealeaf(model);
  if (app == "cloverleaf") return makeCloverleaf(model);
  internalError("unknown corpus app: " + app);
}

db::CompileCommand commandFor(const std::string &file, const std::string &model) {
  db::CompileCommand cmd;
  cmd.directory = "/build";
  cmd.file = file;
  cmd.args = {"c++", "-O3", "-std=c++20", "-c", file};
  if (model == "omp") cmd.args.insert(cmd.args.begin() + 1, "-fopenmp");
  else if (model == "omp-target") {
    cmd.args.insert(cmd.args.begin() + 1, "-fopenmp");
    cmd.args.insert(cmd.args.begin() + 2, "-fopenmp-targets=nvptx64-nvidia-cuda");
  } else if (model == "cuda") {
    cmd.args = {"clang++", "-O3", "-x", "cuda", "--cuda-gpu-arch=sm_90", "-c", file};
  } else if (model == "hip") {
    cmd.args = {"clang++", "-O3", "-x", "hip", "--offload-arch=gfx90a", "-c", file};
  } else if (model == "sycl-usm" || model == "sycl-acc") {
    cmd.args = {"clang++", "-O3", "-fsycl", "-c", file};
  } else if (model == "kokkos") {
    cmd.args.insert(cmd.args.begin() + 1, "-DUSE_KOKKOS");
  } else if (model == "tbb") {
    cmd.args.insert(cmd.args.begin() + 1, "-DUSE_TBB");
  } else if (model == "std-indices") {
    cmd.args.insert(cmd.args.begin() + 1, "-DUSE_STDPAR");
  } else if (model == "acc" || model == "acc-array") {
    cmd.args.insert(cmd.args.begin() + 1, "-fopenacc");
  }
  return cmd;
}

} // namespace sv::corpus
