#include "corpus/headers.hpp"

namespace sv::corpus {

namespace {

const char *kCudaRuntime = R"hdr(#pragma once
// cuda_runtime.h (corpus model header)
struct cudaError_t { int code; };
struct cudaStream_t { int id; };
struct dim3 { int x; int y; int z; };
int cudaMalloc(void** ptr, size_t bytes);
int cudaFree(void* ptr);
int cudaMemcpy(void* dst, void* src, size_t bytes, int kind);
int cudaMemset(void* dst, int value, size_t bytes);
int cudaDeviceSynchronize();
int cudaSetDevice(int device);
int cudaGetDeviceCount(int* count);
int cudaMemcpyHostToDevice = 1;
int cudaMemcpyDeviceToHost = 2;
int cudaMemcpyDeviceToDevice = 3;
)hdr";

const char *kHipRuntime = R"hdr(#pragma once
// hip/hip_runtime.h (corpus model header)
struct hipError_t { int code; };
struct hipStream_t { int id; };
struct dim3 { int x; int y; int z; };
int hipMalloc(void** ptr, size_t bytes);
int hipFree(void* ptr);
int hipMemcpy(void* dst, void* src, size_t bytes, int kind);
int hipMemset(void* dst, int value, size_t bytes);
int hipDeviceSynchronize();
int hipSetDevice(int device);
int hipMemcpyHostToDevice = 1;
int hipMemcpyDeviceToHost = 2;
)hdr";

const char *kOmp = R"hdr(#pragma once
// omp.h (corpus model header)
double omp_get_wtime();
int omp_get_max_threads();
int omp_get_num_threads();
int omp_get_thread_num();
void omp_set_num_threads(int n);
)hdr";

// The SYCL surface: queue/handler/buffer/accessor/range/item/device plus
// the USM allocation templates. Far larger than the other headers, by
// design (see headers.hpp).
const char *kSycl = R"hdr(#pragma once
// CL/sycl.hpp (corpus model header; stands in for the DPC++ megaheader)
namespace sycl {

struct device { int id; int vendor; };
struct platform { int id; };
struct context { int id; };
struct event { int id; };
struct exception { int code; };
struct property_list { int flags; };
struct default_selector { int rank; };
struct gpu_selector { int rank; };
struct cpu_selector { int rank; };
struct host_selector { int rank; };

struct id { long value; };
struct item { long index; long range_size; long offset; };
struct nd_item { long global; long local; long group; };
struct group { long index; long range_size; };
struct sub_group { long index; long size; };

struct range { long size0; long size1; long size2; };
struct nd_range { long global0; long local0; };

struct queue { int device_id; int in_order; int enable_profiling; };
struct handler { int cgid; };

struct buffer { double* host_ptr; long count; int context_bound; int write_back; };
struct accessor { double* data; long count; int mode; int target; int placeholder; };
struct local_accessor { double* data; long count; };
struct host_accessor { double* data; long count; };

struct usm_alloc { int kind; };
struct usm_device { int tag; };
struct usm_shared { int tag; };
struct usm_host { int tag; };

namespace access {
struct mode { int read; int write; int read_write; int discard_write; };
struct target { int global_buffer; int local; int host_buffer; };
struct placeholder { int false_t; int true_t; };
}
namespace property {
struct no_init { int tag; };
namespace queue { struct in_order { int tag; }; }
}
namespace info {
struct device_name { int tag; };
struct max_compute_units { int tag; };
struct global_mem_size { int tag; };
struct local_mem_size { int tag; };
}

template <typename T> T* malloc_device(long count, queue q);
template <typename T> T* malloc_shared(long count, queue q);
template <typename T> T* malloc_host(long count, queue q);
void free(void* ptr, queue q);

template <typename T> T min(T a, T b);
template <typename T> T max(T a, T b);
template <typename T> T sqrt(T x);
template <typename T> T fabs(T x);
template <typename T> T fma(T a, T b, T c);
template <typename T> T exp(T x);
template <typename T> T log(T x);
template <typename T> T sin(T x);
template <typename T> T cos(T x);
template <typename T> T pow(T x, T y);
template <typename T> T rsqrt(T x);

struct plus { int tag; };
struct minimum { int tag; };
struct maximum { int tag; };
struct multiplies { int tag; };
template <typename T> T reduce_over_group(group g, T value, plus op);
template <typename T> T group_broadcast(group g, T value, long index);
void group_barrier(group g);

struct kernel { int id; };
struct kernel_bundle { int id; };
struct specialization_id { int id; };
struct backend { int opencl; int level_zero; int cuda_be; int hip_be; };
struct aspect { int fp64; int usm_device_allocations; int gpu; int cpu; };

struct vec2 { double x; double y; };
struct vec3 { double x; double y; double z; };
struct vec4 { double x; double y; double z; double w; };
struct half { float value; };

struct stream { int width; int precision; };
struct sampler { int filtering; };
struct image { int channels; long width; long height; };

struct queue_profiling_tag { int tag; };
struct command_group { int id; };
struct access_mode_decorator { int mode; };
struct buffer_allocator { int tag; };
struct usm_allocator { int kind; int alignment; };

struct interop_handle { int native; };
struct host_task_tag { int tag; };
struct discard_events_tag { int tag; };
struct priority_hint { int level; };

struct device_selector_base { int score; };
struct async_handler { int tag; };
struct exception_list { int count; };

struct device_image { int id; };
struct bundle_state { int input; int object; int executable; };
struct work_group_size_hint { int x; };
struct reqd_work_group_size { int x; };
struct vec_alignment { int bytes; };

struct marray2 { double v0; double v1; };
struct marray4 { double v0; double v1; double v2; double v3; };
struct bfloat16 { float value; };
struct atomic_ref { double* target; int order; int scope; };
struct memory_order { int relaxed; int acquire; int release; };
struct memory_scope { int work_item; int work_group; int device_scope; };

struct ext_oneapi_graph { int id; };
struct ext_intel_pipe { int id; };
struct ext_codeplay_host_ptr { int tag; };

}
)hdr";

const char *kKokkos = R"hdr(#pragma once
// Kokkos_Core.hpp (corpus model header)
namespace Kokkos {
struct InitArguments { int num_threads; int device_id; };
struct DefaultExecutionSpace { int concurrency; };
struct DefaultHostExecutionSpace { int concurrency; };
struct LayoutLeft { int tag; };
struct LayoutRight { int tag; };
struct MemoryTraits { int flags; };
struct HostSpace { int tag; };
struct SharedSpace { int tag; };
void initialize();
void finalize();
void fence();
template <typename T> void deep_copy(T dst, T src);
struct RangePolicy { long begin_i; long end_i; };
struct TeamPolicy { long leagues; long team_size; };
struct View { double* data_ptr; long extent0; };
template <typename F> void parallel_for(long n, F f);
template <typename F, typename R> void parallel_reduce(long n, F f, R result);
}
)hdr";

const char *kTbb = R"hdr(#pragma once
// tbb/tbb.h (corpus model header)
namespace tbb {
struct blocked_range { long lo; long hi; long grainsize; };
struct auto_partitioner { int tag; };
struct static_partitioner { int tag; };
struct global_control { int kind; int value; };
template <typename F> void parallel_for(blocked_range r, F f);
template <typename V, typename F, typename J> V parallel_reduce(blocked_range r, V identity, F body, J join);
}
)hdr";

const char *kExecution = R"hdr(#pragma once
// <execution> + <algorithm> surface used by StdPar ports (corpus header)
namespace std {
namespace execution {
struct sequenced_policy { int tag; };
struct parallel_policy { int tag; };
struct parallel_unsequenced_policy { int tag; };
int seq = 0;
int par = 1;
int par_unseq = 2;
}
struct plus_tag { int tag; };
template <typename P, typename I, typename F> void for_each(P policy, I first, I last, F f);
template <typename P, typename I, typename F> void for_each_n(P policy, I first, long n, F f);
template <typename P, typename I, typename T, typename R, typename M> T transform_reduce(P policy, I first, I last, T init, R reduce, M transform);
}
)hdr";

const char *kStdlib = R"hdr(#pragma once
// minimal C/C++ stdlib surface the corpus uses (corpus header)
void* malloc(size_t bytes);
void free(void* ptr);
int printf(const char* fmt);
double sqrt(double x);
double fabs(double x);
double fmin(double a, double b);
double fmax(double a, double b);
double pow(double x, double y);
double exp(double x);
double sin(double x);
double cos(double x);
void exit(int code);
)hdr";

} // namespace

void addModelHeaders(db::Codebase &cb) {
  cb.addFile("include/cuda_runtime.h", kCudaRuntime);
  cb.addFile("include/hip_runtime.h", kHipRuntime);
  cb.addFile("include/omp.h", kOmp);
  cb.addFile("include/sycl.hpp", kSycl);
  cb.addFile("include/kokkos.hpp", kKokkos);
  cb.addFile("include/tbb.hpp", kTbb);
  cb.addFile("include/execution.hpp", kExecution);
  cb.addFile("include/stdlib.h", kStdlib);
}

} // namespace sv::corpus
