// Shared model runtime headers for the corpus codebases. These play the
// role of system headers: they are registered under include/ (the system
// prefix), spliced by the preprocessor so the +pp variants see them, and
// masked out of the tree metrics exactly as the paper masks system headers.
//
// sycl.hpp is deliberately an order of magnitude larger than the others —
// the paper traces SYCL's extreme Source+pp divergence to the ~20 MB
// header DPC++'s two-pass compilation pulls in (Section V-C); the ratio,
// not the absolute size, is what our reproduction preserves.
#pragma once

#include "db/codebase.hpp"

namespace sv::corpus {

/// Register every model runtime header into `cb` under include/.
void addModelHeaders(db::Codebase &cb);

} // namespace sv::corpus
