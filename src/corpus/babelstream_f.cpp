// BabelStream Fortran (Section V-B, [19]): seven ports — Sequential
// (explicit DO loops), Array (whole-array syntax), DoConcurrent, OpenMP,
// OpenMP Taskloop, OpenACC, and OpenACC Array. The driver/verification
// block is shared; the kernels module carries the model idiom.
#include "corpus/corpus.hpp"

namespace sv::corpus {

namespace {

// Shared program: allocation, NTIMES loop calling kernels, verification.
const char *kDriver = R"src(
program babelstream
  implicit none
  integer :: n, ntimes, t, i, failed
  real(8) :: scalar, sum, gold_a, gold_b, gold_c
  real(8) :: err_a, err_b, err_c, err_sum, epsi
  real(8), allocatable :: a(:), b(:), c(:)
  n = 256
  ntimes = 4
  scalar = 0.4
  allocate(a(n), b(n), c(n))
  call init_arrays(a, b, c, n)
  sum = 0.0
  do t = 1, ntimes
    call copy(a, c, n)
    call mul(b, c, n)
    call add(a, b, c, n)
    call triad(a, b, c, n)
    call dot(a, b, sum, n)
  end do
  gold_a = 0.1
  gold_b = 0.2
  gold_c = 0.0
  do t = 1, ntimes
    gold_c = gold_a
    gold_b = scalar * gold_c
    gold_c = gold_a + gold_b
    gold_a = gold_b + scalar * gold_c
  end do
  err_a = 0.0
  err_b = 0.0
  err_c = 0.0
  do i = 1, n
    err_a = err_a + abs(a(i) - gold_a)
    err_b = err_b + abs(b(i) - gold_b)
    err_c = err_c + abs(c(i) - gold_c)
  end do
  err_sum = abs((sum - gold_a * gold_b * n) / (gold_a * gold_b * n))
  epsi = 1.0e-8
  failed = 0
  if (err_a / n > epsi) then
    failed = 1
  end if
  if (err_b / n > epsi) then
    failed = 1
  end if
  if (err_c / n > epsi) then
    failed = 1
  end if
  if (err_sum > epsi) then
    failed = 1
  end if
  if (failed == 0) then
    print *, 'Validation: PASSED'
  else
    print *, 'Validation: FAILED'
  end if
  deallocate(a, b, c)
end program babelstream
)src";

// ------------------------------------------------------------ sequential --
const char *kSequential = R"src(! BabelStream Fortran: sequential kernels
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
  integer :: i
  do i = 1, n
    a(i) = 0.1
    b(i) = 0.2
    c(i) = 0.0
  end do
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
  integer :: i
  do i = 1, n
    c(i) = a(i)
  end do
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
  integer :: i
  do i = 1, n
    b(i) = 0.4 * c(i)
  end do
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
  integer :: i
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
  integer :: i
  do i = 1, n
    a(i) = b(i) + 0.4 * c(i)
  end do
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
  integer :: i
  sum = 0.0
  do i = 1, n
    sum = sum + a(i) * b(i)
  end do
end subroutine dot

end module kernels
)src";

// ----------------------------------------------------------------- array --
const char *kArray = R"src(! BabelStream Fortran: whole-array syntax kernels
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
  a(:) = 0.1
  b(:) = 0.2
  c(:) = 0.0
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
  c(:) = a(:)
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
  b(:) = 0.4 * c(:)
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
  c(:) = a(:) + b(:)
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
  a(:) = b(:) + 0.4 * c(:)
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
  sum = dot_product(a, b)
end subroutine dot

end module kernels
)src";

// --------------------------------------------------------- do concurrent --
const char *kDoConcurrent = R"src(! BabelStream Fortran: DO CONCURRENT kernels
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
  integer :: i
  do concurrent (i = 1:n)
    a(i) = 0.1
    b(i) = 0.2
    c(i) = 0.0
  end do
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
  integer :: i
  do concurrent (i = 1:n)
    c(i) = a(i)
  end do
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
  integer :: i
  do concurrent (i = 1:n)
    b(i) = 0.4 * c(i)
  end do
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
  integer :: i
  do concurrent (i = 1:n)
    c(i) = a(i) + b(i)
  end do
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
  integer :: i
  do concurrent (i = 1:n)
    a(i) = b(i) + 0.4 * c(i)
  end do
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
  integer :: i
  sum = 0.0
  do i = 1, n
    sum = sum + a(i) * b(i)
  end do
end subroutine dot

end module kernels
)src";

// ------------------------------------------------------------------- omp --
const char *kOmpF = R"src(! BabelStream Fortran: OpenMP kernels
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
  integer :: i
!$omp parallel do
  do i = 1, n
    a(i) = 0.1
    b(i) = 0.2
    c(i) = 0.0
  end do
!$omp end parallel do
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
  integer :: i
!$omp parallel do
  do i = 1, n
    c(i) = a(i)
  end do
!$omp end parallel do
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
  integer :: i
!$omp parallel do
  do i = 1, n
    b(i) = 0.4 * c(i)
  end do
!$omp end parallel do
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
  integer :: i
!$omp parallel do
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
!$omp end parallel do
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
  integer :: i
!$omp parallel do
  do i = 1, n
    a(i) = b(i) + 0.4 * c(i)
  end do
!$omp end parallel do
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
  integer :: i
  sum = 0.0
!$omp parallel do reduction(+:sum)
  do i = 1, n
    sum = sum + a(i) * b(i)
  end do
!$omp end parallel do
end subroutine dot

end module kernels
)src";

// --------------------------------------------------------------- taskloop --
const char *kTaskloop = R"src(! BabelStream Fortran: OpenMP Taskloop kernels
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
  integer :: i
!$omp parallel
!$omp single
!$omp taskloop
  do i = 1, n
    a(i) = 0.1
    b(i) = 0.2
    c(i) = 0.0
  end do
!$omp end taskloop
!$omp end single
!$omp end parallel
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
  integer :: i
!$omp parallel
!$omp single
!$omp taskloop
  do i = 1, n
    c(i) = a(i)
  end do
!$omp end taskloop
!$omp end single
!$omp end parallel
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
  integer :: i
!$omp parallel
!$omp single
!$omp taskloop
  do i = 1, n
    b(i) = 0.4 * c(i)
  end do
!$omp end taskloop
!$omp end single
!$omp end parallel
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
  integer :: i
!$omp parallel
!$omp single
!$omp taskloop
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
!$omp end taskloop
!$omp end single
!$omp end parallel
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
  integer :: i
!$omp parallel
!$omp single
!$omp taskloop
  do i = 1, n
    a(i) = b(i) + 0.4 * c(i)
  end do
!$omp end taskloop
!$omp end single
!$omp end parallel
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
  integer :: i
  sum = 0.0
!$omp parallel
!$omp single
!$omp taskloop reduction(+:sum)
  do i = 1, n
    sum = sum + a(i) * b(i)
  end do
!$omp end taskloop
!$omp end single
!$omp end parallel
end subroutine dot

end module kernels
)src";

// ------------------------------------------------------------------- acc --
const char *kAcc = R"src(! BabelStream Fortran: OpenACC kernels
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
  integer :: i
!$acc parallel loop copyout(a, b, c)
  do i = 1, n
    a(i) = 0.1
    b(i) = 0.2
    c(i) = 0.0
  end do
!$acc end parallel loop
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
  integer :: i
!$acc parallel loop copyin(a) copyout(c)
  do i = 1, n
    c(i) = a(i)
  end do
!$acc end parallel loop
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
  integer :: i
!$acc parallel loop copyin(c) copyout(b)
  do i = 1, n
    b(i) = 0.4 * c(i)
  end do
!$acc end parallel loop
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
  integer :: i
!$acc parallel loop copyin(a, b) copyout(c)
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
!$acc end parallel loop
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
  integer :: i
!$acc parallel loop copyin(b, c) copyout(a)
  do i = 1, n
    a(i) = b(i) + 0.4 * c(i)
  end do
!$acc end parallel loop
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
  integer :: i
  sum = 0.0
!$acc parallel loop reduction(+:sum) copyin(a, b)
  do i = 1, n
    sum = sum + a(i) * b(i)
  end do
!$acc end parallel loop
end subroutine dot

end module kernels
)src";

// ------------------------------------------------------------- acc-array --
const char *kAccArray = R"src(! BabelStream Fortran: OpenACC kernels with array syntax
module kernels
contains

subroutine init_arrays(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:), b(:), c(:)
!$acc kernels copyout(a, b, c)
  a(:) = 0.1
  b(:) = 0.2
  c(:) = 0.0
!$acc end kernels
end subroutine init_arrays

subroutine copy(a, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:)
  real(8), intent(out) :: c(:)
!$acc kernels copyin(a) copyout(c)
  c(:) = a(:)
!$acc end kernels
end subroutine copy

subroutine mul(b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: b(:)
  real(8), intent(in) :: c(:)
!$acc kernels copyin(c) copyout(b)
  b(:) = 0.4 * c(:)
!$acc end kernels
end subroutine mul

subroutine add(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: c(:)
!$acc kernels copyin(a, b) copyout(c)
  c(:) = a(:) + b(:)
!$acc end kernels
end subroutine add

subroutine triad(a, b, c, n)
  integer, intent(in) :: n
  real(8), intent(out) :: a(:)
  real(8), intent(in) :: b(:), c(:)
!$acc kernels copyin(b, c) copyout(a)
  a(:) = b(:) + 0.4 * c(:)
!$acc end kernels
end subroutine triad

subroutine dot(a, b, sum, n)
  integer, intent(in) :: n
  real(8), intent(in) :: a(:), b(:)
  real(8), intent(out) :: sum
!$acc kernels copyin(a, b)
  sum = dot_product(a, b)
!$acc end kernels
end subroutine dot

end module kernels
)src";

} // namespace

std::vector<std::string> babelstreamFortranModels() {
  return {"sequential", "array", "do-concurrent", "omp", "omp-taskloop", "acc", "acc-array"};
}

db::Codebase makeBabelstreamFortran(const std::string &model) {
  const char *kernels = nullptr;
  if (model == "sequential") kernels = kSequential;
  else if (model == "array") kernels = kArray;
  else if (model == "do-concurrent") kernels = kDoConcurrent;
  else if (model == "omp") kernels = kOmpF;
  else if (model == "omp-taskloop") kernels = kTaskloop;
  else if (model == "acc") kernels = kAcc;
  else if (model == "acc-array") kernels = kAccArray;
  else internalError("babelstream-fortran: unknown model " + model);

  db::Codebase cb;
  cb.app = "babelstream-fortran";
  cb.model = model;
  cb.addFile("main.f90", std::string(kernels) + kDriver);

  db::CompileCommand cmd;
  cmd.directory = "/build";
  cmd.file = "main.f90";
  cmd.args = {"gfortran", "-O3", "-c", "main.f90"};
  if (model == "omp" || model == "omp-taskloop") cmd.args.insert(cmd.args.begin() + 1, "-fopenmp");
  if (model == "acc" || model == "acc-array") cmd.args.insert(cmd.args.begin() + 1, "-fopenacc");
  cb.commands.push_back(cmd);
  return cb;
}

} // namespace sv::corpus
