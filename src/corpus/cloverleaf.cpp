// CloverLeaf: an explicit compressible-hydrodynamics proxy on a structured
// grid (ideal_gas EOS, artificial viscosity, acceleration from the pressure
// gradient, PdV work, field_summary reductions). Two TUs per port: a shared
// driver (setup + conservation checks + serial cross-check of the model's
// kinetic-energy reduction) and the per-model hydro.cpp.
#include "corpus/corpus.hpp"
#include "corpus/headers.hpp"

namespace sv::corpus {

namespace {

const char *kHeader = R"src(#pragma once
// CloverLeaf public hydro interface: runs `steps` timesteps and returns the
// model-computed kinetic-energy summary.
double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt);
)src";

const char *kMain = R"src(// CloverLeaf driver: deck setup, simulate, conservation checks
#include <stdlib.h>
#include "clover.h"

#define NX 16
#define NY 16
#define STEPS 4
#define DT 0.04

void init_deck(double* density, double* energy, double* xvel, double* yvel, int nx, int ny) {
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = j * nx + i;
      density[idx] = 1.0;
      energy[idx] = 1.0;
      if (i < nx / 4 && j < ny / 4) {
        energy[idx] = 3.0;
      }
      xvel[idx] = 0.0;
      yvel[idx] = 0.0;
    }
  }
}

void summary(const double* density, const double* energy, const double* xvel,
             const double* yvel, double* out, int n) {
  double mass = 0.0;
  double ie = 0.0;
  double ke = 0.0;
  for (int i = 0; i < n; i++) {
    mass += density[i];
    ie += density[i] * energy[i];
    ke += 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  }
  out[0] = mass;
  out[1] = ie;
  out[2] = ke;
}

int main() {
  int n = NX * NY;
  double* density = (double*) malloc(sizeof(double) * n);
  double* energy = (double*) malloc(sizeof(double) * n);
  double* xvel = (double*) malloc(sizeof(double) * n);
  double* yvel = (double*) malloc(sizeof(double) * n);
  double* before = (double*) malloc(sizeof(double) * 3);
  double* after = (double*) malloc(sizeof(double) * 3);
  init_deck(density, energy, xvel, yvel, NX, NY);
  summary(density, energy, xvel, yvel, before, n);
  double model_ke = simulate(density, energy, xvel, yvel, NX, NY, STEPS, DT);
  summary(density, energy, xvel, yvel, after, n);
  printf("mass", after[0]);
  printf("internal energy", after[1]);
  printf("kinetic energy", after[2]);
  int failed = 0;
  if (fabs(after[0] - before[0]) > 1.0e-9) {
    printf("mass not conserved");
    failed = 1;
  }
  if (after[2] <= 0.0) {
    printf("no kinetic energy generated");
    failed = 1;
  }
  double total0 = before[1] + before[2];
  double total1 = after[1] + after[2];
  if (fabs(total1 - total0) / total0 > 0.05) {
    printf("energy drift too large");
    failed = 1;
  }
  if (fabs(model_ke - after[2]) > 1.0e-9) {
    printf("model summary mismatch", model_ke, after[2]);
    failed = 1;
  }
  free(density);
  free(energy);
  free(xvel);
  free(yvel);
  free(before);
  free(after);
  if (failed == 0) {
    printf("Validation: PASSED");
    return 0;
  }
  printf("Validation: FAILED");
  return 1;
}
)src";

// The hydro kernels, written once per model. The serial text is the
// reference shape; each port re-expresses the same loops.
const char *kHydroSerial = R"src(// CloverLeaf hydro: serial port
#include <stdlib.h>
#include "clover.h"

void ideal_gas(double* pressure, const double* density, const double* energy, int n) {
  for (int i = 0; i < n; i++) {
    pressure[i] = 0.4 * density[i] * energy[i];
  }
}

void viscosity_kernel(double* q, const double* xvel, const double* density, int nx, int ny) {
  int n = nx * ny;
  for (int idx = 0; idx < n; idx++) {
    int i = idx % nx;
    q[idx] = 0.0;
    if (i < nx - 1) {
      double dv = xvel[idx + 1] - xvel[idx];
      q[idx] = 0.1 * dv * dv * density[idx];
    }
  }
}

void accelerate_kernel(double* xvel, double* yvel, const double* pressure,
                       const double* density, double dt, int nx, int ny) {
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = j * nx + i;
      xvel[idx] += dt * (pressure[idx - 1] - pressure[idx + 1]) / (2.0 * density[idx]);
      yvel[idx] += dt * (pressure[idx - nx] - pressure[idx + nx]) / (2.0 * density[idx]);
    }
  }
}

void pdv_kernel(double* energy, const double* pressure, const double* q, const double* xvel,
                const double* yvel, const double* density, double dt, int nx, int ny) {
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = j * nx + i;
      double div = 0.5 * (xvel[idx + 1] - xvel[idx - 1]) + 0.5 * (yvel[idx + nx] - yvel[idx - nx]);
      energy[idx] -= dt * (pressure[idx] + q[idx]) * div / density[idx];
    }
  }
}

double field_summary_ke(const double* density, const double* xvel, const double* yvel, int n) {
  double ke = 0.0;
  for (int i = 0; i < n; i++) {
    ke += 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  }
  return ke;
}

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  double* pressure = (double*) malloc(sizeof(double) * n);
  double* q = (double*) malloc(sizeof(double) * n);
  for (int step = 0; step < steps; step++) {
    ideal_gas(pressure, density, energy, n);
    viscosity_kernel(q, xvel, density, nx, ny);
    accelerate_kernel(xvel, yvel, pressure, density, dt, nx, ny);
    pdv_kernel(energy, pressure, q, xvel, yvel, density, dt, nx, ny);
  }
  double ke = field_summary_ke(density, xvel, yvel, n);
  free(pressure);
  free(q);
  return ke;
}
)src";

const char *kHydroOmp = R"src(// CloverLeaf hydro: OpenMP port
#include <stdlib.h>
#include <omp.h>
#include "clover.h"

void ideal_gas(double* pressure, const double* density, const double* energy, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    pressure[i] = 0.4 * density[i] * energy[i];
  }
}

void viscosity_kernel(double* q, const double* xvel, const double* density, int nx, int ny) {
  int n = nx * ny;
  #pragma omp parallel for
  for (int idx = 0; idx < n; idx++) {
    int i = idx % nx;
    q[idx] = 0.0;
    if (i < nx - 1) {
      double dv = xvel[idx + 1] - xvel[idx];
      q[idx] = 0.1 * dv * dv * density[idx];
    }
  }
}

void accelerate_kernel(double* xvel, double* yvel, const double* pressure,
                       const double* density, double dt, int nx, int ny) {
  #pragma omp parallel for collapse(2)
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = j * nx + i;
      xvel[idx] += dt * (pressure[idx - 1] - pressure[idx + 1]) / (2.0 * density[idx]);
      yvel[idx] += dt * (pressure[idx - nx] - pressure[idx + nx]) / (2.0 * density[idx]);
    }
  }
}

void pdv_kernel(double* energy, const double* pressure, const double* q, const double* xvel,
                const double* yvel, const double* density, double dt, int nx, int ny) {
  #pragma omp parallel for collapse(2)
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = j * nx + i;
      double div = 0.5 * (xvel[idx + 1] - xvel[idx - 1]) + 0.5 * (yvel[idx + nx] - yvel[idx - nx]);
      energy[idx] -= dt * (pressure[idx] + q[idx]) * div / density[idx];
    }
  }
}

double field_summary_ke(const double* density, const double* xvel, const double* yvel, int n) {
  double ke = 0.0;
  #pragma omp parallel for reduction(+:ke)
  for (int i = 0; i < n; i++) {
    ke += 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  }
  return ke;
}

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  double* pressure = (double*) malloc(sizeof(double) * n);
  double* q = (double*) malloc(sizeof(double) * n);
  for (int step = 0; step < steps; step++) {
    ideal_gas(pressure, density, energy, n);
    viscosity_kernel(q, xvel, density, nx, ny);
    accelerate_kernel(xvel, yvel, pressure, density, dt, nx, ny);
    pdv_kernel(energy, pressure, q, xvel, yvel, density, dt, nx, ny);
  }
  double ke = field_summary_ke(density, xvel, yvel, n);
  free(pressure);
  free(q);
  return ke;
}
)src";

const char *kHydroOmpTarget = R"src(// CloverLeaf hydro: OpenMP target port
#include <stdlib.h>
#include <omp.h>
#include "clover.h"

void ideal_gas(double* pressure, const double* density, const double* energy, int n) {
  #pragma omp target teams distribute parallel for map(to: density, energy) map(from: pressure)
  for (int i = 0; i < n; i++) {
    pressure[i] = 0.4 * density[i] * energy[i];
  }
}

void viscosity_kernel(double* q, const double* xvel, const double* density, int nx, int ny) {
  int n = nx * ny;
  #pragma omp target teams distribute parallel for map(to: xvel, density) map(from: q)
  for (int idx = 0; idx < n; idx++) {
    int i = idx % nx;
    q[idx] = 0.0;
    if (i < nx - 1) {
      double dv = xvel[idx + 1] - xvel[idx];
      q[idx] = 0.1 * dv * dv * density[idx];
    }
  }
}

void accelerate_kernel(double* xvel, double* yvel, const double* pressure,
                       const double* density, double dt, int nx, int ny) {
  #pragma omp target teams distribute parallel for collapse(2) map(to: pressure, density) map(tofrom: xvel, yvel)
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = j * nx + i;
      xvel[idx] += dt * (pressure[idx - 1] - pressure[idx + 1]) / (2.0 * density[idx]);
      yvel[idx] += dt * (pressure[idx - nx] - pressure[idx + nx]) / (2.0 * density[idx]);
    }
  }
}

void pdv_kernel(double* energy, const double* pressure, const double* q, const double* xvel,
                const double* yvel, const double* density, double dt, int nx, int ny) {
  #pragma omp target teams distribute parallel for collapse(2) map(to: pressure, q, xvel, yvel, density) map(tofrom: energy)
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = j * nx + i;
      double div = 0.5 * (xvel[idx + 1] - xvel[idx - 1]) + 0.5 * (yvel[idx + nx] - yvel[idx - nx]);
      energy[idx] -= dt * (pressure[idx] + q[idx]) * div / density[idx];
    }
  }
}

double field_summary_ke(const double* density, const double* xvel, const double* yvel, int n) {
  double ke = 0.0;
  #pragma omp target teams distribute parallel for map(to: density, xvel, yvel) map(tofrom: ke) reduction(+:ke)
  for (int i = 0; i < n; i++) {
    ke += 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  }
  return ke;
}

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  double* pressure = (double*) malloc(sizeof(double) * n);
  double* q = (double*) malloc(sizeof(double) * n);
  #pragma omp target enter data map(to: density, energy, xvel, yvel) map(alloc: pressure, q)
  for (int step = 0; step < steps; step++) {
    ideal_gas(pressure, density, energy, n);
    viscosity_kernel(q, xvel, density, nx, ny);
    accelerate_kernel(xvel, yvel, pressure, density, dt, nx, ny);
    pdv_kernel(energy, pressure, q, xvel, yvel, density, dt, nx, ny);
  }
  double ke = field_summary_ke(density, xvel, yvel, n);
  #pragma omp target exit data map(from: density, energy, xvel, yvel) map(release: pressure, q)
  free(pressure);
  free(q);
  return ke;
}
)src";

const char *kHydroCuda = R"src(// CloverLeaf hydro: CUDA port
#include <stdlib.h>
#include <cuda_runtime.h>
#include "clover.h"

#define TBSIZE 64

__global__ void ideal_gas_kernel(double* pressure, const double* density, const double* energy,
                                 int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    pressure[i] = 0.4 * density[i] * energy[i];
  }
}

__global__ void viscosity_k(double* q, const double* xvel, const double* density, int nx, int n) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  if (idx < n) {
    int i = idx % nx;
    q[idx] = 0.0;
    if (i < nx - 1) {
      double dv = xvel[idx + 1] - xvel[idx];
      q[idx] = 0.1 * dv * dv * density[idx];
    }
  }
}

__global__ void accelerate_k(double* xvel, double* yvel, const double* pressure,
                             const double* density, double dt, int nx, int ny) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  int n = nx * ny;
  if (idx < n) {
    int i = idx % nx;
    int j = idx / nx;
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      xvel[idx] += dt * (pressure[idx - 1] - pressure[idx + 1]) / (2.0 * density[idx]);
      yvel[idx] += dt * (pressure[idx - nx] - pressure[idx + nx]) / (2.0 * density[idx]);
    }
  }
}

__global__ void pdv_k(double* energy, const double* pressure, const double* q,
                      const double* xvel, const double* yvel, const double* density, double dt,
                      int nx, int ny) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  int n = nx * ny;
  if (idx < n) {
    int i = idx % nx;
    int j = idx / nx;
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      double div = 0.5 * (xvel[idx + 1] - xvel[idx - 1]) + 0.5 * (yvel[idx + nx] - yvel[idx - nx]);
      energy[idx] -= dt * (pressure[idx] + q[idx]) * div / density[idx];
    }
  }
}

__global__ void ke_partial_k(const double* density, const double* xvel, const double* yvel,
                             double* partial, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    partial[i] = 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  }
}

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  int blocks = (n + TBSIZE - 1) / TBSIZE;
  double* d_density;
  double* d_energy;
  double* d_xvel;
  double* d_yvel;
  double* d_pressure;
  double* d_q;
  double* d_partial;
  cudaMalloc((void**) &d_density, sizeof(double) * n);
  cudaMalloc((void**) &d_energy, sizeof(double) * n);
  cudaMalloc((void**) &d_xvel, sizeof(double) * n);
  cudaMalloc((void**) &d_yvel, sizeof(double) * n);
  cudaMalloc((void**) &d_pressure, sizeof(double) * n);
  cudaMalloc((void**) &d_q, sizeof(double) * n);
  cudaMalloc((void**) &d_partial, sizeof(double) * n);
  cudaMemcpy(d_density, density, sizeof(double) * n, cudaMemcpyHostToDevice);
  cudaMemcpy(d_energy, energy, sizeof(double) * n, cudaMemcpyHostToDevice);
  cudaMemcpy(d_xvel, xvel, sizeof(double) * n, cudaMemcpyHostToDevice);
  cudaMemcpy(d_yvel, yvel, sizeof(double) * n, cudaMemcpyHostToDevice);
  for (int step = 0; step < steps; step++) {
    ideal_gas_kernel<<<blocks, TBSIZE>>>(d_pressure, d_density, d_energy, n);
    viscosity_k<<<blocks, TBSIZE>>>(d_q, d_xvel, d_density, nx, n);
    accelerate_k<<<blocks, TBSIZE>>>(d_xvel, d_yvel, d_pressure, d_density, dt, nx, ny);
    pdv_k<<<blocks, TBSIZE>>>(d_energy, d_pressure, d_q, d_xvel, d_yvel, d_density, dt, nx, ny);
    cudaDeviceSynchronize();
  }
  ke_partial_k<<<blocks, TBSIZE>>>(d_density, d_xvel, d_yvel, d_partial, n);
  cudaDeviceSynchronize();
  double* h_partial = (double*) malloc(sizeof(double) * n);
  cudaMemcpy(h_partial, d_partial, sizeof(double) * n, cudaMemcpyDeviceToHost);
  double ke = 0.0;
  for (int i = 0; i < n; i++) {
    ke += h_partial[i];
  }
  cudaMemcpy(density, d_density, sizeof(double) * n, cudaMemcpyDeviceToHost);
  cudaMemcpy(energy, d_energy, sizeof(double) * n, cudaMemcpyDeviceToHost);
  cudaMemcpy(xvel, d_xvel, sizeof(double) * n, cudaMemcpyDeviceToHost);
  cudaMemcpy(yvel, d_yvel, sizeof(double) * n, cudaMemcpyDeviceToHost);
  cudaFree(d_density);
  cudaFree(d_energy);
  cudaFree(d_xvel);
  cudaFree(d_yvel);
  cudaFree(d_pressure);
  cudaFree(d_q);
  cudaFree(d_partial);
  free(h_partial);
  return ke;
}
)src";

const char *kHydroHip = R"src(// CloverLeaf hydro: HIP port
#include <stdlib.h>
#include <hip_runtime.h>
#include "clover.h"

#define TBSIZE 64

__global__ void ideal_gas_kernel(double* pressure, const double* density, const double* energy,
                                 int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    pressure[i] = 0.4 * density[i] * energy[i];
  }
}

__global__ void viscosity_k(double* q, const double* xvel, const double* density, int nx, int n) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  if (idx < n) {
    int i = idx % nx;
    q[idx] = 0.0;
    if (i < nx - 1) {
      double dv = xvel[idx + 1] - xvel[idx];
      q[idx] = 0.1 * dv * dv * density[idx];
    }
  }
}

__global__ void accelerate_k(double* xvel, double* yvel, const double* pressure,
                             const double* density, double dt, int nx, int ny) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  int n = nx * ny;
  if (idx < n) {
    int i = idx % nx;
    int j = idx / nx;
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      xvel[idx] += dt * (pressure[idx - 1] - pressure[idx + 1]) / (2.0 * density[idx]);
      yvel[idx] += dt * (pressure[idx - nx] - pressure[idx + nx]) / (2.0 * density[idx]);
    }
  }
}

__global__ void pdv_k(double* energy, const double* pressure, const double* q,
                      const double* xvel, const double* yvel, const double* density, double dt,
                      int nx, int ny) {
  int idx = threadIdx.x + blockIdx.x * blockDim.x;
  int n = nx * ny;
  if (idx < n) {
    int i = idx % nx;
    int j = idx / nx;
    if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
      double div = 0.5 * (xvel[idx + 1] - xvel[idx - 1]) + 0.5 * (yvel[idx + nx] - yvel[idx - nx]);
      energy[idx] -= dt * (pressure[idx] + q[idx]) * div / density[idx];
    }
  }
}

__global__ void ke_partial_k(const double* density, const double* xvel, const double* yvel,
                             double* partial, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    partial[i] = 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  }
}

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  int blocks = (n + TBSIZE - 1) / TBSIZE;
  double* d_density;
  double* d_energy;
  double* d_xvel;
  double* d_yvel;
  double* d_pressure;
  double* d_q;
  double* d_partial;
  hipMalloc((void**) &d_density, sizeof(double) * n);
  hipMalloc((void**) &d_energy, sizeof(double) * n);
  hipMalloc((void**) &d_xvel, sizeof(double) * n);
  hipMalloc((void**) &d_yvel, sizeof(double) * n);
  hipMalloc((void**) &d_pressure, sizeof(double) * n);
  hipMalloc((void**) &d_q, sizeof(double) * n);
  hipMalloc((void**) &d_partial, sizeof(double) * n);
  hipMemcpy(d_density, density, sizeof(double) * n, hipMemcpyHostToDevice);
  hipMemcpy(d_energy, energy, sizeof(double) * n, hipMemcpyHostToDevice);
  hipMemcpy(d_xvel, xvel, sizeof(double) * n, hipMemcpyHostToDevice);
  hipMemcpy(d_yvel, yvel, sizeof(double) * n, hipMemcpyHostToDevice);
  for (int step = 0; step < steps; step++) {
    hipLaunchKernelGGL(ideal_gas_kernel, blocks, TBSIZE, 0, 0, d_pressure, d_density, d_energy, n);
    hipLaunchKernelGGL(viscosity_k, blocks, TBSIZE, 0, 0, d_q, d_xvel, d_density, nx, n);
    hipLaunchKernelGGL(accelerate_k, blocks, TBSIZE, 0, 0, d_xvel, d_yvel, d_pressure, d_density,
                       dt, nx, ny);
    hipLaunchKernelGGL(pdv_k, blocks, TBSIZE, 0, 0, d_energy, d_pressure, d_q, d_xvel, d_yvel,
                       d_density, dt, nx, ny);
    hipDeviceSynchronize();
  }
  hipLaunchKernelGGL(ke_partial_k, blocks, TBSIZE, 0, 0, d_density, d_xvel, d_yvel, d_partial, n);
  hipDeviceSynchronize();
  double* h_partial = (double*) malloc(sizeof(double) * n);
  hipMemcpy(h_partial, d_partial, sizeof(double) * n, hipMemcpyDeviceToHost);
  double ke = 0.0;
  for (int i = 0; i < n; i++) {
    ke += h_partial[i];
  }
  hipMemcpy(density, d_density, sizeof(double) * n, hipMemcpyDeviceToHost);
  hipMemcpy(energy, d_energy, sizeof(double) * n, hipMemcpyDeviceToHost);
  hipMemcpy(xvel, d_xvel, sizeof(double) * n, hipMemcpyDeviceToHost);
  hipMemcpy(yvel, d_yvel, sizeof(double) * n, hipMemcpyDeviceToHost);
  hipFree(d_density);
  hipFree(d_energy);
  hipFree(d_xvel);
  hipFree(d_yvel);
  hipFree(d_pressure);
  hipFree(d_q);
  hipFree(d_partial);
  free(h_partial);
  return ke;
}
)src";

const char *kHydroKokkos = R"src(// CloverLeaf hydro: Kokkos port
#include <stdlib.h>
#include <kokkos.hpp>
#include "clover.h"

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  Kokkos::View<double*> kdensity("density", n);
  Kokkos::View<double*> kenergy("energy", n);
  Kokkos::View<double*> kxvel("xvel", n);
  Kokkos::View<double*> kyvel("yvel", n);
  Kokkos::View<double*> kpressure("pressure", n);
  Kokkos::View<double*> kq("q", n);
  Kokkos::deep_copy(kdensity, density);
  Kokkos::deep_copy(kenergy, energy);
  Kokkos::deep_copy(kxvel, xvel);
  Kokkos::deep_copy(kyvel, yvel);
  for (int step = 0; step < steps; step++) {
    Kokkos::parallel_for(n, [=](int i) {
      kpressure(i) = 0.4 * kdensity(i) * kenergy(i);
    });
    Kokkos::parallel_for(n, [=](int idx) {
      int i = idx % nx;
      kq(idx) = 0.0;
      if (i < nx - 1) {
        double dv = kxvel(idx + 1) - kxvel(idx);
        kq(idx) = 0.1 * dv * dv * kdensity(idx);
      }
    });
    Kokkos::parallel_for(n, [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        kxvel(idx) += dt * (kpressure(idx - 1) - kpressure(idx + 1)) / (2.0 * kdensity(idx));
        kyvel(idx) += dt * (kpressure(idx - nx) - kpressure(idx + nx)) / (2.0 * kdensity(idx));
      }
    });
    Kokkos::parallel_for(n, [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        double div = 0.5 * (kxvel(idx + 1) - kxvel(idx - 1))
                   + 0.5 * (kyvel(idx + nx) - kyvel(idx - nx));
        kenergy(idx) -= dt * (kpressure(idx) + kq(idx)) * div / kdensity(idx);
      }
    });
    Kokkos::fence();
  }
  double ke = 0.0;
  Kokkos::parallel_reduce(n, [=](int i, double& acc) {
    acc += 0.5 * kdensity(i) * (kxvel(i) * kxvel(i) + kyvel(i) * kyvel(i));
  }, ke);
  Kokkos::deep_copy(density, kdensity);
  Kokkos::deep_copy(energy, kenergy);
  Kokkos::deep_copy(xvel, kxvel);
  Kokkos::deep_copy(yvel, kyvel);
  return ke;
}
)src";

const char *kHydroStdPar = R"src(// CloverLeaf hydro: StdPar (std-indices) port
#include <stdlib.h>
#include <execution.hpp>
#include "clover.h"

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  double* pressure = (double*) malloc(sizeof(double) * n);
  double* q = (double*) malloc(sizeof(double) * n);
  for (int step = 0; step < steps; step++) {
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int i) {
      pressure[i] = 0.4 * density[i] * energy[i];
    });
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int idx) {
      int i = idx % nx;
      q[idx] = 0.0;
      if (i < nx - 1) {
        double dv = xvel[idx + 1] - xvel[idx];
        q[idx] = 0.1 * dv * dv * density[idx];
      }
    });
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        xvel[idx] += dt * (pressure[idx - 1] - pressure[idx + 1]) / (2.0 * density[idx]);
        yvel[idx] += dt * (pressure[idx - nx] - pressure[idx + nx]) / (2.0 * density[idx]);
      }
    });
    std::for_each_n(std::execution::par_unseq, 0, n, [=](int idx) {
      int i = idx % nx;
      int j = idx / nx;
      if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
        double div = 0.5 * (xvel[idx + 1] - xvel[idx - 1]) + 0.5 * (yvel[idx + nx] - yvel[idx - nx]);
        energy[idx] -= dt * (pressure[idx] + q[idx]) * div / density[idx];
      }
    });
  }
  double ke = std::transform_reduce(std::execution::par_unseq, 0, n, 0.0,
    std::plus<double>(), [=](int i) {
    return 0.5 * density[i] * (xvel[i] * xvel[i] + yvel[i] * yvel[i]);
  });
  free(pressure);
  free(q);
  return ke;
}
)src";

const char *kHydroSyclUsm = R"src(// CloverLeaf hydro: SYCL (USM) port
#include <stdlib.h>
#include <sycl.hpp>
#include "clover.h"

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  sycl::queue qu;
  double* ddensity = sycl::malloc_device<double>(n, qu);
  double* denergy = sycl::malloc_device<double>(n, qu);
  double* dxvel = sycl::malloc_device<double>(n, qu);
  double* dyvel = sycl::malloc_device<double>(n, qu);
  double* dpressure = sycl::malloc_device<double>(n, qu);
  double* dq = sycl::malloc_device<double>(n, qu);
  double* partial = sycl::malloc_shared<double>(n, qu);
  qu.memcpy(ddensity, density, sizeof(double) * n);
  qu.memcpy(denergy, energy, sizeof(double) * n);
  qu.memcpy(dxvel, xvel, sizeof(double) * n);
  qu.memcpy(dyvel, yvel, sizeof(double) * n);
  qu.wait();
  for (int step = 0; step < steps; step++) {
    qu.submit([&](handler h) {
      h.parallel_for<class ideal_gas_k>(sycl::range(n), [=](int i) {
        dpressure[i] = 0.4 * ddensity[i] * denergy[i];
      });
    });
    qu.submit([&](handler h) {
      h.parallel_for<class viscosity_k>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        dq[idx] = 0.0;
        if (i < nx - 1) {
          double dv = dxvel[idx + 1] - dxvel[idx];
          dq[idx] = 0.1 * dv * dv * ddensity[idx];
        }
      });
    });
    qu.submit([&](handler h) {
      h.parallel_for<class accelerate_k>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          dxvel[idx] += dt * (dpressure[idx - 1] - dpressure[idx + 1]) / (2.0 * ddensity[idx]);
          dyvel[idx] += dt * (dpressure[idx - nx] - dpressure[idx + nx]) / (2.0 * ddensity[idx]);
        }
      });
    });
    qu.submit([&](handler h) {
      h.parallel_for<class pdv_k>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          double div = 0.5 * (dxvel[idx + 1] - dxvel[idx - 1])
                     + 0.5 * (dyvel[idx + nx] - dyvel[idx - nx]);
          denergy[idx] -= dt * (dpressure[idx] + dq[idx]) * div / ddensity[idx];
        }
      });
    });
    qu.wait();
  }
  qu.submit([&](handler h) {
    h.parallel_for<class ke_partial>(sycl::range(n), [=](int i) {
      partial[i] = 0.5 * ddensity[i] * (dxvel[i] * dxvel[i] + dyvel[i] * dyvel[i]);
    });
  });
  qu.wait();
  double ke = 0.0;
  for (int i = 0; i < n; i++) {
    ke += partial[i];
  }
  qu.memcpy(density, ddensity, sizeof(double) * n);
  qu.memcpy(energy, denergy, sizeof(double) * n);
  qu.memcpy(xvel, dxvel, sizeof(double) * n);
  qu.memcpy(yvel, dyvel, sizeof(double) * n);
  qu.wait();
  sycl::free(ddensity, qu);
  sycl::free(denergy, qu);
  sycl::free(dxvel, qu);
  sycl::free(dyvel, qu);
  sycl::free(dpressure, qu);
  sycl::free(dq, qu);
  sycl::free(partial, qu);
  return ke;
}
)src";

const char *kHydroSyclAcc = R"src(// CloverLeaf hydro: SYCL (accessors) port
#include <stdlib.h>
#include <sycl.hpp>
#include "clover.h"

double simulate(double* density, double* energy, double* xvel, double* yvel,
                int nx, int ny, int steps, double dt) {
  int n = nx * ny;
  sycl::queue qu;
  double* hpressure = (double*) malloc(sizeof(double) * n);
  double* hq = (double*) malloc(sizeof(double) * n);
  double* hpartial = (double*) malloc(sizeof(double) * n);
  sycl::buffer<double, 1> bdensity(density, sycl::range<1>(n));
  sycl::buffer<double, 1> benergy(energy, sycl::range<1>(n));
  sycl::buffer<double, 1> bxvel(xvel, sycl::range<1>(n));
  sycl::buffer<double, 1> byvel(yvel, sycl::range<1>(n));
  sycl::buffer<double, 1> bpressure(hpressure, sycl::range<1>(n));
  sycl::buffer<double, 1> bq(hq, sycl::range<1>(n));
  sycl::buffer<double, 1> bpartial(hpartial, sycl::range<1>(n));
  for (int step = 0; step < steps; step++) {
    qu.submit([&](handler h) {
      auto adensity = bdensity.get_access<sycl::access::mode::read>(h);
      auto aenergy = benergy.get_access<sycl::access::mode::read>(h);
      auto apressure = bpressure.get_access<sycl::access::mode::discard_write>(h);
      h.parallel_for<class ideal_gas_k>(sycl::range(n), [=](int i) {
        apressure[i] = 0.4 * adensity[i] * aenergy[i];
      });
    });
    qu.submit([&](handler h) {
      auto axvel = bxvel.get_access<sycl::access::mode::read>(h);
      auto adensity = bdensity.get_access<sycl::access::mode::read>(h);
      auto aq = bq.get_access<sycl::access::mode::discard_write>(h);
      h.parallel_for<class viscosity_k>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        aq[idx] = 0.0;
        if (i < nx - 1) {
          double dv = axvel[idx + 1] - axvel[idx];
          aq[idx] = 0.1 * dv * dv * adensity[idx];
        }
      });
    });
    qu.submit([&](handler h) {
      auto apressure = bpressure.get_access<sycl::access::mode::read>(h);
      auto adensity = bdensity.get_access<sycl::access::mode::read>(h);
      auto axvel = bxvel.get_access<sycl::access::mode::read_write>(h);
      auto ayvel = byvel.get_access<sycl::access::mode::read_write>(h);
      h.parallel_for<class accelerate_k>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          axvel[idx] += dt * (apressure[idx - 1] - apressure[idx + 1]) / (2.0 * adensity[idx]);
          ayvel[idx] += dt * (apressure[idx - nx] - apressure[idx + nx]) / (2.0 * adensity[idx]);
        }
      });
    });
    qu.submit([&](handler h) {
      auto apressure = bpressure.get_access<sycl::access::mode::read>(h);
      auto aq = bq.get_access<sycl::access::mode::read>(h);
      auto axvel = bxvel.get_access<sycl::access::mode::read>(h);
      auto ayvel = byvel.get_access<sycl::access::mode::read>(h);
      auto adensity = bdensity.get_access<sycl::access::mode::read>(h);
      auto aenergy = benergy.get_access<sycl::access::mode::read_write>(h);
      h.parallel_for<class pdv_k>(sycl::range(n), [=](int idx) {
        int i = idx % nx;
        int j = idx / nx;
        if (i > 0 && j > 0 && i < nx - 1 && j < ny - 1) {
          double div = 0.5 * (axvel[idx + 1] - axvel[idx - 1])
                     + 0.5 * (ayvel[idx + nx] - ayvel[idx - nx]);
          aenergy[idx] -= dt * (apressure[idx] + aq[idx]) * div / adensity[idx];
        }
      });
    });
    qu.wait();
  }
  qu.submit([&](handler h) {
    auto adensity = bdensity.get_access<sycl::access::mode::read>(h);
    auto axvel = bxvel.get_access<sycl::access::mode::read>(h);
    auto ayvel = byvel.get_access<sycl::access::mode::read>(h);
    auto apart = bpartial.get_access<sycl::access::mode::discard_write>(h);
    h.parallel_for<class ke_partial>(sycl::range(n), [=](int i) {
      apart[i] = 0.5 * adensity[i] * (axvel[i] * axvel[i] + ayvel[i] * ayvel[i]);
    });
  });
  qu.wait();
  double ke = 0.0;
  for (int i = 0; i < n; i++) {
    ke += hpartial[i];
  }
  free(hpressure);
  free(hq);
  free(hpartial);
  return ke;
}
)src";

} // namespace

std::vector<std::string> cloverleafModels() {
  return {"serial", "omp",         "omp-target", "cuda",     "hip",
          "kokkos", "std-indices", "sycl-usm",   "sycl-acc"};
}

db::Codebase makeCloverleaf(const std::string &model) {
  const char *hydro = nullptr;
  if (model == "serial") hydro = kHydroSerial;
  else if (model == "omp") hydro = kHydroOmp;
  else if (model == "omp-target") hydro = kHydroOmpTarget;
  else if (model == "cuda") hydro = kHydroCuda;
  else if (model == "hip") hydro = kHydroHip;
  else if (model == "kokkos") hydro = kHydroKokkos;
  else if (model == "std-indices") hydro = kHydroStdPar;
  else if (model == "sycl-usm") hydro = kHydroSyclUsm;
  else if (model == "sycl-acc") hydro = kHydroSyclAcc;
  else internalError("cloverleaf: unknown model " + model);

  db::Codebase cb;
  cb.app = "cloverleaf";
  cb.model = model;
  addModelHeaders(cb);
  cb.addFile("clover.h", kHeader);
  cb.addFile("main.cpp", kMain);
  cb.addFile("hydro.cpp", hydro);
  cb.commands.push_back(commandFor("main.cpp", model));
  cb.commands.push_back(commandFor("hydro.cpp", model));
  return cb;
}

} // namespace sv::corpus
