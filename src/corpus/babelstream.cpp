// BabelStream (C++): the McCalpin STREAM kernels (copy/mul/add/triad/dot)
// ported to ten models [18]. Sources are assembled from a shared driver —
// identical text contributes zero divergence, exactly as shared boilerplate
// does in the real ports — plus per-model kernels and data management.
#include "corpus/corpus.hpp"
#include "corpus/headers.hpp"

namespace sv::corpus {

namespace {

const char *kDefines = R"src(#define N 256
#define NTIMES 4
#define START_A 0.1
#define START_B 0.2
#define START_C 0.0
#define SCALAR 0.4
)src";

// Host-side verification, shared verbatim by every port (runs on host
// copies of the data). Mirrors BabelStream's built-in check.
const char *kCheck = R"src(
int check_solution(const double* a, const double* b, const double* c, double sum, int n) {
  double gold_a = START_A;
  double gold_b = START_B;
  double gold_c = START_C;
  for (int t = 0; t < NTIMES; t++) {
    gold_c = gold_a;
    gold_b = SCALAR * gold_c;
    gold_c = gold_a + gold_b;
    gold_a = gold_b + SCALAR * gold_c;
  }
  double err_a = 0.0;
  double err_b = 0.0;
  double err_c = 0.0;
  for (int i = 0; i < n; i++) {
    err_a += fabs(a[i] - gold_a);
    err_b += fabs(b[i] - gold_b);
    err_c += fabs(c[i] - gold_c);
  }
  double gold_sum = gold_a * gold_b * n;
  double err_sum = fabs((sum - gold_sum) / gold_sum);
  double epsi = 1.0e-8;
  if (err_a / n > epsi) {
    printf("a mismatch", err_a / n);
    return 1;
  }
  if (err_b / n > epsi) {
    printf("b mismatch", err_b / n);
    return 1;
  }
  if (err_c / n > epsi) {
    printf("c mismatch", err_c / n);
    return 1;
  }
  if (err_sum > 1.0e-8) {
    printf("dot mismatch", err_sum);
    return 1;
  }
  printf("Validation: PASSED");
  return 0;
}
)src";

// ---------------------------------------------------------------- serial --
const char *kSerial = R"src(// BabelStream serial port
#include <stdlib.h>

void init_arrays(double* a, double* b, double* c, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

void copy(const double* a, double* c, int n) {
  for (int i = 0; i < n; i++) {
    c[i] = a[i];
  }
}

void mul(double* b, const double* c, int n) {
  for (int i = 0; i < n; i++) {
    b[i] = SCALAR * c[i];
  }
}

void add(const double* a, const double* b, double* c, int n) {
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}

void triad(double* a, const double* b, const double* c, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

int main() {
  double* a = (double*) malloc(sizeof(double) * N);
  double* b = (double*) malloc(sizeof(double) * N);
  double* c = (double*) malloc(sizeof(double) * N);
  init_arrays(a, b, c, N);
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c, N);
    mul(b, c, N);
    add(a, b, c, N);
    triad(a, b, c, N);
    sum = dot(a, b, N);
  }
  int failed = check_solution(a, b, c, sum, N);
  free(a);
  free(b);
  free(c);
  return failed;
}
)src";

// ------------------------------------------------------------------- omp --
const char *kOmp = R"src(// BabelStream OpenMP port
#include <stdlib.h>
#include <omp.h>

void init_arrays(double* a, double* b, double* c, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

void copy(const double* a, double* c, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    c[i] = a[i];
  }
}

void mul(double* b, const double* c, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    b[i] = SCALAR * c[i];
  }
}

void add(const double* a, const double* b, double* c, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}

void triad(double* a, const double* b, const double* c, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  #pragma omp parallel for reduction(+:sum)
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

int main() {
  double* a = (double*) malloc(sizeof(double) * N);
  double* b = (double*) malloc(sizeof(double) * N);
  double* c = (double*) malloc(sizeof(double) * N);
  init_arrays(a, b, c, N);
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c, N);
    mul(b, c, N);
    add(a, b, c, N);
    triad(a, b, c, N);
    sum = dot(a, b, N);
  }
  int failed = check_solution(a, b, c, sum, N);
  free(a);
  free(b);
  free(c);
  return failed;
}
)src";

// ------------------------------------------------------------ omp-target --
const char *kOmpTarget = R"src(// BabelStream OpenMP target port
#include <stdlib.h>
#include <omp.h>

void init_arrays(double* a, double* b, double* c, int n) {
  #pragma omp target teams distribute parallel for map(tofrom: a, b, c)
  for (int i = 0; i < n; i++) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

void copy(const double* a, double* c, int n) {
  #pragma omp target teams distribute parallel for map(to: a) map(from: c)
  for (int i = 0; i < n; i++) {
    c[i] = a[i];
  }
}

void mul(double* b, const double* c, int n) {
  #pragma omp target teams distribute parallel for map(to: c) map(from: b)
  for (int i = 0; i < n; i++) {
    b[i] = SCALAR * c[i];
  }
}

void add(const double* a, const double* b, double* c, int n) {
  #pragma omp target teams distribute parallel for map(to: a, b) map(from: c)
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}

void triad(double* a, const double* b, const double* c, int n) {
  #pragma omp target teams distribute parallel for map(to: b, c) map(from: a)
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  #pragma omp target teams distribute parallel for map(to: a, b) map(tofrom: sum) reduction(+:sum)
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

int main() {
  double* a = (double*) malloc(sizeof(double) * N);
  double* b = (double*) malloc(sizeof(double) * N);
  double* c = (double*) malloc(sizeof(double) * N);
  #pragma omp target enter data map(alloc: a, b, c)
  init_arrays(a, b, c, N);
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c, N);
    mul(b, c, N);
    add(a, b, c, N);
    triad(a, b, c, N);
    sum = dot(a, b, N);
  }
  #pragma omp target exit data map(release: a, b, c)
  int failed = check_solution(a, b, c, sum, N);
  free(a);
  free(b);
  free(c);
  return failed;
}
)src";

// ------------------------------------------------------------------ cuda --
const char *kCuda = R"src(// BabelStream CUDA port
#include <stdlib.h>
#include <cuda_runtime.h>

#define TBSIZE 64

__global__ void init_kernel(double* a, double* b, double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

__global__ void copy_kernel(const double* a, double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    c[i] = a[i];
  }
}

__global__ void mul_kernel(double* b, const double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    b[i] = SCALAR * c[i];
  }
}

__global__ void add_kernel(const double* a, const double* b, double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}

__global__ void triad_kernel(double* a, const double* b, const double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

__global__ void dot_kernel(const double* a, const double* b, double* partial, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    partial[i] = a[i] * b[i];
  }
}

int main() {
  double* d_a;
  double* d_b;
  double* d_c;
  double* d_partial;
  cudaMalloc((void**) &d_a, sizeof(double) * N);
  cudaMalloc((void**) &d_b, sizeof(double) * N);
  cudaMalloc((void**) &d_c, sizeof(double) * N);
  cudaMalloc((void**) &d_partial, sizeof(double) * N);
  int blocks = (N + TBSIZE - 1) / TBSIZE;
  init_kernel<<<blocks, TBSIZE>>>(d_a, d_b, d_c, N);
  cudaDeviceSynchronize();
  double sum = 0.0;
  double* h_partial = (double*) malloc(sizeof(double) * N);
  for (int t = 0; t < NTIMES; t++) {
    copy_kernel<<<blocks, TBSIZE>>>(d_a, d_c, N);
    mul_kernel<<<blocks, TBSIZE>>>(d_b, d_c, N);
    add_kernel<<<blocks, TBSIZE>>>(d_a, d_b, d_c, N);
    triad_kernel<<<blocks, TBSIZE>>>(d_a, d_b, d_c, N);
    dot_kernel<<<blocks, TBSIZE>>>(d_a, d_b, d_partial, N);
    cudaDeviceSynchronize();
    cudaMemcpy(h_partial, d_partial, sizeof(double) * N, cudaMemcpyDeviceToHost);
    sum = 0.0;
    for (int i = 0; i < N; i++) {
      sum += h_partial[i];
    }
  }
  double* h_a = (double*) malloc(sizeof(double) * N);
  double* h_b = (double*) malloc(sizeof(double) * N);
  double* h_c = (double*) malloc(sizeof(double) * N);
  cudaMemcpy(h_a, d_a, sizeof(double) * N, cudaMemcpyDeviceToHost);
  cudaMemcpy(h_b, d_b, sizeof(double) * N, cudaMemcpyDeviceToHost);
  cudaMemcpy(h_c, d_c, sizeof(double) * N, cudaMemcpyDeviceToHost);
  int failed = check_solution(h_a, h_b, h_c, sum, N);
  cudaFree(d_a);
  cudaFree(d_b);
  cudaFree(d_c);
  cudaFree(d_partial);
  return failed;
}
)src";

// ------------------------------------------------------------------- hip --
const char *kHip = R"src(// BabelStream HIP port
#include <stdlib.h>
#include <hip_runtime.h>

#define TBSIZE 64

__global__ void init_kernel(double* a, double* b, double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

__global__ void copy_kernel(const double* a, double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    c[i] = a[i];
  }
}

__global__ void mul_kernel(double* b, const double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    b[i] = SCALAR * c[i];
  }
}

__global__ void add_kernel(const double* a, const double* b, double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}

__global__ void triad_kernel(double* a, const double* b, const double* c, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

__global__ void dot_kernel(const double* a, const double* b, double* partial, int n) {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  if (i < n) {
    partial[i] = a[i] * b[i];
  }
}

int main() {
  double* d_a;
  double* d_b;
  double* d_c;
  double* d_partial;
  hipMalloc((void**) &d_a, sizeof(double) * N);
  hipMalloc((void**) &d_b, sizeof(double) * N);
  hipMalloc((void**) &d_c, sizeof(double) * N);
  hipMalloc((void**) &d_partial, sizeof(double) * N);
  int blocks = (N + TBSIZE - 1) / TBSIZE;
  hipLaunchKernelGGL(init_kernel, blocks, TBSIZE, 0, 0, d_a, d_b, d_c, N);
  hipDeviceSynchronize();
  double sum = 0.0;
  double* h_partial = (double*) malloc(sizeof(double) * N);
  for (int t = 0; t < NTIMES; t++) {
    hipLaunchKernelGGL(copy_kernel, blocks, TBSIZE, 0, 0, d_a, d_c, N);
    hipLaunchKernelGGL(mul_kernel, blocks, TBSIZE, 0, 0, d_b, d_c, N);
    hipLaunchKernelGGL(add_kernel, blocks, TBSIZE, 0, 0, d_a, d_b, d_c, N);
    hipLaunchKernelGGL(triad_kernel, blocks, TBSIZE, 0, 0, d_a, d_b, d_c, N);
    hipLaunchKernelGGL(dot_kernel, blocks, TBSIZE, 0, 0, d_a, d_b, d_partial, N);
    hipDeviceSynchronize();
    hipMemcpy(h_partial, d_partial, sizeof(double) * N, hipMemcpyDeviceToHost);
    sum = 0.0;
    for (int i = 0; i < N; i++) {
      sum += h_partial[i];
    }
  }
  double* h_a = (double*) malloc(sizeof(double) * N);
  double* h_b = (double*) malloc(sizeof(double) * N);
  double* h_c = (double*) malloc(sizeof(double) * N);
  hipMemcpy(h_a, d_a, sizeof(double) * N, hipMemcpyDeviceToHost);
  hipMemcpy(h_b, d_b, sizeof(double) * N, hipMemcpyDeviceToHost);
  hipMemcpy(h_c, d_c, sizeof(double) * N, hipMemcpyDeviceToHost);
  int failed = check_solution(h_a, h_b, h_c, sum, N);
  hipFree(d_a);
  hipFree(d_b);
  hipFree(d_c);
  hipFree(d_partial);
  return failed;
}
)src";

// ---------------------------------------------------------------- kokkos --
const char *kKokkos = R"src(// BabelStream Kokkos port
#include <stdlib.h>
#include <kokkos.hpp>

int main() {
  Kokkos::initialize();
  Kokkos::View<double*> a("a", N);
  Kokkos::View<double*> b("b", N);
  Kokkos::View<double*> c("c", N);
  Kokkos::parallel_for(N, [=](int i) {
    a(i) = START_A;
    b(i) = START_B;
    c(i) = START_C;
  });
  Kokkos::fence();
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    Kokkos::parallel_for(N, [=](int i) {
      c(i) = a(i);
    });
    Kokkos::parallel_for(N, [=](int i) {
      b(i) = SCALAR * c(i);
    });
    Kokkos::parallel_for(N, [=](int i) {
      c(i) = a(i) + b(i);
    });
    Kokkos::parallel_for(N, [=](int i) {
      a(i) = b(i) + SCALAR * c(i);
    });
    sum = 0.0;
    Kokkos::parallel_reduce(N, [=](int i, double& acc) {
      acc += a(i) * b(i);
    }, sum);
    Kokkos::fence();
  }
  double* h_a = (double*) malloc(sizeof(double) * N);
  double* h_b = (double*) malloc(sizeof(double) * N);
  double* h_c = (double*) malloc(sizeof(double) * N);
  Kokkos::deep_copy(h_a, a);
  Kokkos::deep_copy(h_b, b);
  Kokkos::deep_copy(h_c, c);
  int failed = check_solution(h_a, h_b, h_c, sum, N);
  Kokkos::finalize();
  return failed;
}
)src";

// ------------------------------------------------------------ std-indices --
const char *kStdPar = R"src(// BabelStream StdPar (std-indices) port
#include <stdlib.h>
#include <execution.hpp>

int main() {
  double* a = (double*) malloc(sizeof(double) * N);
  double* b = (double*) malloc(sizeof(double) * N);
  double* c = (double*) malloc(sizeof(double) * N);
  std::for_each_n(std::execution::par_unseq, 0, N, [=](int i) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  });
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    std::for_each_n(std::execution::par_unseq, 0, N, [=](int i) {
      c[i] = a[i];
    });
    std::for_each_n(std::execution::par_unseq, 0, N, [=](int i) {
      b[i] = SCALAR * c[i];
    });
    std::for_each_n(std::execution::par_unseq, 0, N, [=](int i) {
      c[i] = a[i] + b[i];
    });
    std::for_each_n(std::execution::par_unseq, 0, N, [=](int i) {
      a[i] = b[i] + SCALAR * c[i];
    });
    sum = std::transform_reduce(std::execution::par_unseq, 0, N, 0.0,
      std::plus<double>(), [=](int i) {
      return a[i] * b[i];
    });
  }
  int failed = check_solution(a, b, c, sum, N);
  free(a);
  free(b);
  free(c);
  return failed;
}
)src";

// -------------------------------------------------------------------- tbb --
const char *kTbb = R"src(// BabelStream TBB port
#include <stdlib.h>
#include <tbb.hpp>

int main() {
  double* a = (double*) malloc(sizeof(double) * N);
  double* b = (double*) malloc(sizeof(double) * N);
  double* c = (double*) malloc(sizeof(double) * N);
  tbb::parallel_for(tbb::blocked_range(0, N), [=](tbb::blocked_range r) {
    for (int i = r.begin(); i < r.end(); i++) {
      a[i] = START_A;
      b[i] = START_B;
      c[i] = START_C;
    }
  });
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    tbb::parallel_for(tbb::blocked_range(0, N), [=](tbb::blocked_range r) {
      for (int i = r.begin(); i < r.end(); i++) {
        c[i] = a[i];
      }
    });
    tbb::parallel_for(tbb::blocked_range(0, N), [=](tbb::blocked_range r) {
      for (int i = r.begin(); i < r.end(); i++) {
        b[i] = SCALAR * c[i];
      }
    });
    tbb::parallel_for(tbb::blocked_range(0, N), [=](tbb::blocked_range r) {
      for (int i = r.begin(); i < r.end(); i++) {
        c[i] = a[i] + b[i];
      }
    });
    tbb::parallel_for(tbb::blocked_range(0, N), [=](tbb::blocked_range r) {
      for (int i = r.begin(); i < r.end(); i++) {
        a[i] = b[i] + SCALAR * c[i];
      }
    });
    sum = tbb::parallel_reduce(tbb::blocked_range(0, N), 0.0,
      [=](tbb::blocked_range r, double acc) {
        for (int i = r.begin(); i < r.end(); i++) {
          acc += a[i] * b[i];
        }
        return acc;
      }, std::plus<double>());
  }
  int failed = check_solution(a, b, c, sum, N);
  free(a);
  free(b);
  free(c);
  return failed;
}
)src";

// --------------------------------------------------------------- sycl-usm --
const char *kSyclUsm = R"src(// BabelStream SYCL (USM) port
#include <stdlib.h>
#include <sycl.hpp>

int main() {
  sycl::queue q;
  double* a = sycl::malloc_device<double>(N, q);
  double* b = sycl::malloc_device<double>(N, q);
  double* c = sycl::malloc_device<double>(N, q);
  q.submit([&](handler h) {
    h.parallel_for<class init_k>(sycl::range(N), [=](int i) {
      a[i] = START_A;
      b[i] = START_B;
      c[i] = START_C;
    });
  });
  q.wait();
  double sum = 0.0;
  double* partial = sycl::malloc_shared<double>(N, q);
  for (int t = 0; t < NTIMES; t++) {
    q.submit([&](handler h) {
      h.parallel_for<class copy_k>(sycl::range(N), [=](int i) {
        c[i] = a[i];
      });
    });
    q.submit([&](handler h) {
      h.parallel_for<class mul_k>(sycl::range(N), [=](int i) {
        b[i] = SCALAR * c[i];
      });
    });
    q.submit([&](handler h) {
      h.parallel_for<class add_k>(sycl::range(N), [=](int i) {
        c[i] = a[i] + b[i];
      });
    });
    q.submit([&](handler h) {
      h.parallel_for<class triad_k>(sycl::range(N), [=](int i) {
        a[i] = b[i] + SCALAR * c[i];
      });
    });
    q.submit([&](handler h) {
      h.parallel_for<class dot_k>(sycl::range(N), [=](int i) {
        partial[i] = a[i] * b[i];
      });
    });
    q.wait();
    sum = 0.0;
    for (int i = 0; i < N; i++) {
      sum += partial[i];
    }
  }
  double* h_a = (double*) malloc(sizeof(double) * N);
  double* h_b = (double*) malloc(sizeof(double) * N);
  double* h_c = (double*) malloc(sizeof(double) * N);
  q.memcpy(h_a, a, sizeof(double) * N);
  q.memcpy(h_b, b, sizeof(double) * N);
  q.memcpy(h_c, c, sizeof(double) * N);
  q.wait();
  int failed = check_solution(h_a, h_b, h_c, sum, N);
  sycl::free(a, q);
  sycl::free(b, q);
  sycl::free(c, q);
  sycl::free(partial, q);
  return failed;
}
)src";

// --------------------------------------------------------------- sycl-acc --
const char *kSyclAcc = R"src(// BabelStream SYCL (accessors) port
#include <stdlib.h>
#include <sycl.hpp>

int main() {
  sycl::queue q;
  double* h_a = (double*) malloc(sizeof(double) * N);
  double* h_b = (double*) malloc(sizeof(double) * N);
  double* h_c = (double*) malloc(sizeof(double) * N);
  double* h_partial = (double*) malloc(sizeof(double) * N);
  sycl::buffer<double, 1> d_a(h_a, sycl::range<1>(N));
  sycl::buffer<double, 1> d_b(h_b, sycl::range<1>(N));
  sycl::buffer<double, 1> d_c(h_c, sycl::range<1>(N));
  sycl::buffer<double, 1> d_partial(h_partial, sycl::range<1>(N));
  q.submit([&](handler h) {
    auto ka = d_a.get_access<sycl::access::mode::discard_write>(h);
    auto kb = d_b.get_access<sycl::access::mode::discard_write>(h);
    auto kc = d_c.get_access<sycl::access::mode::discard_write>(h);
    h.parallel_for<class init_k>(sycl::range(N), [=](int i) {
      ka[i] = START_A;
      kb[i] = START_B;
      kc[i] = START_C;
    });
  });
  q.wait();
  double sum = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    q.submit([&](handler h) {
      auto ka = d_a.get_access<sycl::access::mode::read>(h);
      auto kc = d_c.get_access<sycl::access::mode::write>(h);
      h.parallel_for<class copy_k>(sycl::range(N), [=](int i) {
        kc[i] = ka[i];
      });
    });
    q.submit([&](handler h) {
      auto kc = d_c.get_access<sycl::access::mode::read>(h);
      auto kb = d_b.get_access<sycl::access::mode::write>(h);
      h.parallel_for<class mul_k>(sycl::range(N), [=](int i) {
        kb[i] = SCALAR * kc[i];
      });
    });
    q.submit([&](handler h) {
      auto ka = d_a.get_access<sycl::access::mode::read>(h);
      auto kb = d_b.get_access<sycl::access::mode::read>(h);
      auto kc = d_c.get_access<sycl::access::mode::write>(h);
      h.parallel_for<class add_k>(sycl::range(N), [=](int i) {
        kc[i] = ka[i] + kb[i];
      });
    });
    q.submit([&](handler h) {
      auto kb = d_b.get_access<sycl::access::mode::read>(h);
      auto kc = d_c.get_access<sycl::access::mode::read>(h);
      auto ka = d_a.get_access<sycl::access::mode::write>(h);
      h.parallel_for<class triad_k>(sycl::range(N), [=](int i) {
        ka[i] = kb[i] + SCALAR * kc[i];
      });
    });
    q.submit([&](handler h) {
      auto ka = d_a.get_access<sycl::access::mode::read>(h);
      auto kb = d_b.get_access<sycl::access::mode::read>(h);
      auto kp = d_partial.get_access<sycl::access::mode::write>(h);
      h.parallel_for<class dot_k>(sycl::range(N), [=](int i) {
        kp[i] = ka[i] * kb[i];
      });
    });
    q.wait();
    sum = 0.0;
    for (int i = 0; i < N; i++) {
      sum += h_partial[i];
    }
  }
  int failed = check_solution(h_a, h_b, h_c, sum, N);
  free(h_a);
  free(h_b);
  free(h_c);
  free(h_partial);
  return failed;
}
)src";

} // namespace

std::vector<std::string> babelstreamModels() {
  return {"serial", "omp",   "omp-target", "cuda",     "hip",
          "kokkos", "tbb",   "std-indices", "sycl-usm", "sycl-acc"};
}

db::Codebase makeBabelstream(const std::string &model) {
  const char *body = nullptr;
  if (model == "serial") body = kSerial;
  else if (model == "omp") body = kOmp;
  else if (model == "omp-target") body = kOmpTarget;
  else if (model == "cuda") body = kCuda;
  else if (model == "hip") body = kHip;
  else if (model == "kokkos") body = kKokkos;
  else if (model == "tbb") body = kTbb;
  else if (model == "std-indices") body = kStdPar;
  else if (model == "sycl-usm") body = kSyclUsm;
  else if (model == "sycl-acc") body = kSyclAcc;
  else internalError("babelstream: unknown model " + model);

  db::Codebase cb;
  cb.app = "babelstream";
  cb.model = model;
  addModelHeaders(cb);
  cb.addFile("main.cpp", std::string(kDefines) + body + kCheck);
  cb.commands.push_back(commandFor("main.cpp", model));
  return cb;
}

} // namespace sv::corpus
