// miniBUDE [20]: a compute-bound molecular-docking proxy. Each pose of a
// ligand is scored against a protein; the fasten kernel is parallelised
// over poses. Initialisation and verification (a serial reference scoring
// recomputed in-place) are shared verbatim across ports.
#include "corpus/corpus.hpp"
#include "corpus/headers.hpp"

namespace sv::corpus {

namespace {

const char *kDefines = R"src(#define NPOSES 16
#define NATLIG 8
#define NATPRO 16
)src";

// Deterministic input deck + serial reference + comparison; shared by all.
const char *kShared = R"src(
void init_deck(double* pro_x, double* pro_y, double* pro_z, double* pro_q,
               double* lig_x, double* lig_y, double* lig_z, double* lig_q,
               double* pose_dx, double* pose_dy, double* pose_dz) {
  for (int i = 0; i < NATPRO; i++) {
    pro_x[i] = 0.1 * (i % 5);
    pro_y[i] = 0.2 * (i % 3);
    pro_z[i] = 0.3 * (i % 7);
    pro_q[i] = 0.5 + 0.1 * (i % 4);
  }
  for (int i = 0; i < NATLIG; i++) {
    lig_x[i] = 1.0 + 0.1 * (i % 4);
    lig_y[i] = 1.0 + 0.2 * (i % 2);
    lig_z[i] = 1.0 + 0.3 * (i % 5);
    lig_q[i] = 0.4 + 0.1 * (i % 3);
  }
  for (int p = 0; p < NPOSES; p++) {
    pose_dx[p] = 0.05 * p;
    pose_dy[p] = 0.04 * (p % 6);
    pose_dz[p] = 0.03 * (p % 4);
  }
}

double score_pose(const double* pro_x, const double* pro_y, const double* pro_z,
                  const double* pro_q, const double* lig_x, const double* lig_y,
                  const double* lig_z, const double* lig_q, double dx, double dy, double dz) {
  double total = 0.0;
  for (int l = 0; l < NATLIG; l++) {
    double lx = lig_x[l] + dx;
    double ly = lig_y[l] + dy;
    double lz = lig_z[l] + dz;
    for (int a = 0; a < NATPRO; a++) {
      double rx = lx - pro_x[a];
      double ry = ly - pro_y[a];
      double rz = lz - pro_z[a];
      double r = sqrt(rx * rx + ry * ry + rz * rz);
      total += lig_q[l] * pro_q[a] / (r + 1.0);
    }
  }
  return total * 0.5;
}

int check_energies(const double* energies, const double* pro_x, const double* pro_y,
                   const double* pro_z, const double* pro_q, const double* lig_x,
                   const double* lig_y, const double* lig_z, const double* lig_q,
                   const double* pose_dx, const double* pose_dy, const double* pose_dz) {
  double maxdiff = 0.0;
  for (int p = 0; p < NPOSES; p++) {
    double ref = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                            pose_dx[p], pose_dy[p], pose_dz[p]);
    double diff = fabs(energies[p] - ref);
    if (ref != 0.0) {
      diff = diff / fabs(ref);
    }
    maxdiff = fmax(maxdiff, diff);
  }
  if (maxdiff > 1.0e-9) {
    printf("Largest difference was", maxdiff);
    return 1;
  }
  printf("Validation: PASSED");
  return 0;
}
)src";

const char *kAlloc = R"src(
int main() {
  double* pro_x = (double*) malloc(sizeof(double) * NATPRO);
  double* pro_y = (double*) malloc(sizeof(double) * NATPRO);
  double* pro_z = (double*) malloc(sizeof(double) * NATPRO);
  double* pro_q = (double*) malloc(sizeof(double) * NATPRO);
  double* lig_x = (double*) malloc(sizeof(double) * NATLIG);
  double* lig_y = (double*) malloc(sizeof(double) * NATLIG);
  double* lig_z = (double*) malloc(sizeof(double) * NATLIG);
  double* lig_q = (double*) malloc(sizeof(double) * NATLIG);
  double* pose_dx = (double*) malloc(sizeof(double) * NPOSES);
  double* pose_dy = (double*) malloc(sizeof(double) * NPOSES);
  double* pose_dz = (double*) malloc(sizeof(double) * NPOSES);
  double* energies = (double*) malloc(sizeof(double) * NPOSES);
  init_deck(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q, pose_dx, pose_dy, pose_dz);
)src";

const char *kCheckCall = R"src(
  int failed = check_energies(energies, pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z,
                              lig_q, pose_dx, pose_dy, pose_dz);
  return failed;
}
)src";

// Per-model fasten dispatch. Each gets the same inner math, expressed in
// the model's idiom.
const char *kSerialRun = R"src(
  for (int p = 0; p < NPOSES; p++) {
    energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                             pose_dx[p], pose_dy[p], pose_dz[p]);
  }
)src";

const char *kOmpRun = R"src(
  #pragma omp parallel for schedule(static)
  for (int p = 0; p < NPOSES; p++) {
    energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                             pose_dx[p], pose_dy[p], pose_dz[p]);
  }
)src";

const char *kOmpTargetRun = R"src(
  #pragma omp target teams distribute parallel for map(to: pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q, pose_dx, pose_dy, pose_dz) map(from: energies)
  for (int p = 0; p < NPOSES; p++) {
    energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                             pose_dx[p], pose_dy[p], pose_dz[p]);
  }
)src";

const char *kKokkosRun = R"src(
  Kokkos::initialize();
  Kokkos::parallel_for(NPOSES, [=](int p) {
    energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                             pose_dx[p], pose_dy[p], pose_dz[p]);
  });
  Kokkos::fence();
  Kokkos::finalize();
)src";

const char *kTbbRun = R"src(
  tbb::parallel_for(tbb::blocked_range(0, NPOSES), [=](tbb::blocked_range r) {
    for (int p = r.begin(); p < r.end(); p++) {
      energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                               pose_dx[p], pose_dy[p], pose_dz[p]);
    }
  });
)src";

const char *kStdParRun = R"src(
  std::for_each_n(std::execution::par_unseq, 0, NPOSES, [=](int p) {
    energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                             pose_dx[p], pose_dy[p], pose_dz[p]);
  });
)src";

const char *kSyclAccRun = R"src(
  sycl::queue q;
  double* h_energies = (double*) malloc(sizeof(double) * NPOSES);
  sycl::buffer<double, 1> d_energies(h_energies, sycl::range<1>(NPOSES));
  q.submit([&](handler h) {
    auto acc = d_energies.get_access<sycl::access::mode::discard_write>(h);
    h.parallel_for<class fasten_main>(sycl::range(NPOSES), [=](int p) {
      acc[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                          pose_dx[p], pose_dy[p], pose_dz[p]);
    });
  });
  q.wait();
  for (int p = 0; p < NPOSES; p++) {
    energies[p] = h_energies[p];
  }
  free(h_energies);
)src";

const char *kSyclUsmRun = R"src(
  sycl::queue q;
  double* d_energies = sycl::malloc_shared<double>(NPOSES, q);
  q.submit([&](handler h) {
    h.parallel_for<class fasten_main>(sycl::range(NPOSES), [=](int p) {
      d_energies[p] = score_pose(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                                 pose_dx[p], pose_dy[p], pose_dz[p]);
    });
  });
  q.wait();
  for (int p = 0; p < NPOSES; p++) {
    energies[p] = d_energies[p];
  }
  sycl::free(d_energies, q);
)src";

// CUDA/HIP need a __global__ fasten kernel (score_pose becomes __device__).
const char *kCudaKernel = R"src(
__device__ double score_pose_dev(const double* pro_x, const double* pro_y, const double* pro_z,
                                 const double* pro_q, const double* lig_x, const double* lig_y,
                                 const double* lig_z, const double* lig_q, double dx, double dy,
                                 double dz) {
  double total = 0.0;
  for (int l = 0; l < NATLIG; l++) {
    double lx = lig_x[l] + dx;
    double ly = lig_y[l] + dy;
    double lz = lig_z[l] + dz;
    for (int a = 0; a < NATPRO; a++) {
      double rx = lx - pro_x[a];
      double ry = ly - pro_y[a];
      double rz = lz - pro_z[a];
      double r = sqrt(rx * rx + ry * ry + rz * rz);
      total += lig_q[l] * pro_q[a] / (r + 1.0);
    }
  }
  return total * 0.5;
}

__global__ void fasten_main(const double* pro_x, const double* pro_y, const double* pro_z,
                            const double* pro_q, const double* lig_x, const double* lig_y,
                            const double* lig_z, const double* lig_q, const double* pose_dx,
                            const double* pose_dy, const double* pose_dz, double* energies) {
  int p = threadIdx.x + blockIdx.x * blockDim.x;
  if (p < NPOSES) {
    energies[p] = score_pose_dev(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                                 pose_dx[p], pose_dy[p], pose_dz[p]);
  }
}
)src";

const char *kCudaRun = R"src(
  double* d_energies;
  cudaMalloc((void**) &d_energies, sizeof(double) * NPOSES);
  fasten_main<<<1, NPOSES>>>(pro_x, pro_y, pro_z, pro_q, lig_x, lig_y, lig_z, lig_q,
                             pose_dx, pose_dy, pose_dz, d_energies);
  cudaDeviceSynchronize();
  cudaMemcpy(energies, d_energies, sizeof(double) * NPOSES, cudaMemcpyDeviceToHost);
  cudaFree(d_energies);
)src";

const char *kHipRun = R"src(
  double* d_energies;
  hipMalloc((void**) &d_energies, sizeof(double) * NPOSES);
  hipLaunchKernelGGL(fasten_main, 1, NPOSES, 0, 0, pro_x, pro_y, pro_z, pro_q, lig_x,
                     lig_y, lig_z, lig_q, pose_dx, pose_dy, pose_dz, d_energies);
  hipDeviceSynchronize();
  hipMemcpy(energies, d_energies, sizeof(double) * NPOSES, hipMemcpyDeviceToHost);
  hipFree(d_energies);
)src";

} // namespace

std::vector<std::string> minibudeModels() {
  return {"serial", "omp",      "omp-target", "cuda",     "hip",      "kokkos",
          "tbb",    "std-indices", "sycl-usm",  "sycl-acc"};
}

db::Codebase makeMinibude(const std::string &model) {
  std::string includes = "#include <stdlib.h>\n";
  std::string kernels;
  const char *run = nullptr;
  if (model == "serial") run = kSerialRun;
  else if (model == "omp") {
    includes += "#include <omp.h>\n";
    run = kOmpRun;
  } else if (model == "omp-target") {
    includes += "#include <omp.h>\n";
    run = kOmpTargetRun;
  } else if (model == "cuda") {
    includes += "#include <cuda_runtime.h>\n";
    kernels = kCudaKernel;
    run = kCudaRun;
  } else if (model == "hip") {
    includes += "#include <hip_runtime.h>\n";
    kernels = kCudaKernel;
    run = kHipRun;
  } else if (model == "kokkos") {
    includes += "#include <kokkos.hpp>\n";
    run = kKokkosRun;
  } else if (model == "tbb") {
    includes += "#include <tbb.hpp>\n";
    run = kTbbRun;
  } else if (model == "std-indices") {
    includes += "#include <execution.hpp>\n";
    run = kStdParRun;
  } else if (model == "sycl-usm") {
    includes += "#include <sycl.hpp>\n";
    run = kSyclUsmRun;
  } else if (model == "sycl-acc") {
    includes += "#include <sycl.hpp>\n";
    run = kSyclAccRun;
  } else {
    internalError("minibude: unknown model " + model);
  }

  db::Codebase cb;
  cb.app = "minibude";
  cb.model = model;
  addModelHeaders(cb);
  cb.addFile("main.cpp", "// miniBUDE " + model + " port\n" + includes + kDefines + kShared +
                             kernels + kAlloc + run + kCheckCall);
  cb.commands.push_back(commandFor("main.cpp", model));
  return cb;
}

} // namespace sv::corpus
