// The embedded miniapp corpus (Table II): BabelStream (C++ and Fortran),
// miniBUDE, TeaLeaf and CloverLeaf, each ported idiomatically to the
// programming models the paper evaluates. Sources are written in the MiniC
// / MiniF dialects, compile through the full SilverVale pipeline, and run
// under the VM with built-in verification (the artefact-evaluation
// property: "each mini-app contains built-in verification for
// correctness").
#pragma once

#include <string>
#include <vector>

#include "db/codebase.hpp"

namespace sv::corpus {

/// Registered miniapps: "babelstream", "babelstream-fortran", "minibude",
/// "tealeaf", "cloverleaf".
[[nodiscard]] std::vector<std::string> appNames();

/// Model ports available for an app (display names, e.g. "sycl-usm").
/// Throws InternalError for unknown apps.
[[nodiscard]] std::vector<std::string> modelsOf(const std::string &app);

/// Build the codebase (virtual files + compile commands) for one port.
/// Throws InternalError for unknown app/model combinations.
[[nodiscard]] db::Codebase make(const std::string &app, const std::string &model);

// Per-app entry points (used by make()):
[[nodiscard]] std::vector<std::string> babelstreamModels();
[[nodiscard]] db::Codebase makeBabelstream(const std::string &model);
[[nodiscard]] std::vector<std::string> babelstreamFortranModels();
[[nodiscard]] db::Codebase makeBabelstreamFortran(const std::string &model);
[[nodiscard]] std::vector<std::string> minibudeModels();
[[nodiscard]] db::Codebase makeMinibude(const std::string &model);
[[nodiscard]] std::vector<std::string> tealeafModels();
[[nodiscard]] db::Codebase makeTealeaf(const std::string &model);
[[nodiscard]] std::vector<std::string> cloverleafModels();
[[nodiscard]] db::Codebase makeCloverleaf(const std::string &model);

/// Compile command for a C++ TU of the given model (flags as a real
/// Compilation DB would record them).
[[nodiscard]] db::CompileCommand commandFor(const std::string &file, const std::string &model);

} // namespace sv::corpus
