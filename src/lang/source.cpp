#include "lang/source.hpp"

namespace sv::lang {

i32 SourceManager::add(std::string name, std::string text) {
  if (const auto it = index_.find(name); it != index_.end()) {
    files_[static_cast<usize>(it->second)].text = std::move(text);
    return it->second;
  }
  const i32 id = static_cast<i32>(files_.size());
  index_.emplace(name, id);
  files_.push_back(SourceFile{std::move(name), std::move(text)});
  return id;
}

const SourceFile &SourceManager::file(i32 id) const {
  SV_CHECK(id >= 0 && static_cast<usize>(id) < files_.size(), "bad file id");
  return files_[static_cast<usize>(id)];
}

std::optional<i32> SourceManager::idOf(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string SourceManager::describe(const Location &loc) const {
  if (!loc.valid() || static_cast<usize>(loc.file) >= files_.size())
    return "<unknown>";
  return files_[static_cast<usize>(loc.file)].name + ":" + std::to_string(loc.line) + ":" +
         std::to_string(loc.col);
}

} // namespace sv::lang
