// Parsing of parallelism directives shared by both frontends:
//   C-family:  #pragma omp target teams distribute parallel for map(tofrom: a)
//   Fortran:   !$omp parallel do reduction(+:sum)   /   !$acc parallel loop
// The directive text after the sentinel is identical in spirit, so one
// parser serves both. Directive *kinds* (the leading keywords) are kept as
// an ordered list; everything of the form name(args) becomes a clause.
#pragma once

#include "lang/ast.hpp"

namespace sv::lang {

/// Parse the body of a directive, i.e. the text after "#pragma " or "!$".
/// `family` is the first token ("omp", "acc"); the rest is split into the
/// kind keywords and clauses. Unknown directives parse structurally (no
/// keyword whitelist) so model-specific extensions survive.
[[nodiscard]] ast::Directive parseDirective(std::string_view text, Location loc);

/// Render a directive back to a canonical single-line form (used by tree
/// labels and tests).
[[nodiscard]] std::string directiveToString(const ast::Directive &d);

/// The set of clause keywords that bind data-movement semantics; used by
/// the T_sem tree generator to weight offload directives (map/copy/...).
[[nodiscard]] bool isDataClause(std::string_view clauseName);

} // namespace sv::lang
