#include "lang/ast.hpp"

#include "support/combinators.hpp"

namespace sv::lang::ast {

std::string Type::str() const {
  std::string out;
  if (isConst) out += "const ";
  out += name;
  if (!args.empty()) {
    out += "<";
    for (usize i = 0; i < args.size(); ++i) {
      if (i) out += ", ";
      out += args[i].str();
    }
    out += ">";
  }
  for (int i = 0; i < pointer; ++i) out += "*";
  if (reference) out += "&";
  return out;
}

ExprPtr Expr::make(ExprKind k, Location l, std::string t) {
  auto e = std::make_unique<Expr>();
  e->kind = k;
  e->loc = l;
  e->text = std::move(t);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->text = text;
  e->typeArgs = typeArgs;
  e->valueType = valueType;
  e->apiHiddenTemplates = apiHiddenTemplates;
  e->apiImplicitConversions = apiImplicitConversions;
  for (const auto &a : args) e->args.push_back(a ? a->clone() : nullptr);
  for (const auto &p : params) e->params.push_back(cloneParam(p));
  if (body) e->body = body->clone();
  return e;
}

StmtPtr Stmt::make(StmtKind k, Location l) {
  auto s = std::make_unique<Stmt>();
  s->kind = k;
  s->loc = l;
  return s;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  for (const auto &c : children) s->children.push_back(c ? c->clone() : nullptr);
  if (cond) s->cond = cond->clone();
  if (init) s->init = init->clone();
  if (step) s->step = step->clone();
  for (const auto &d : decls) s->decls.push_back(cloneVarDecl(d));
  s->directive = directive;
  s->loopVar = loopVar;
  return s;
}

bool FunctionDecl::isKernel() const {
  for (const auto &a : attributes)
    if (a == "__global__") return true;
  return false;
}

VarDecl cloneVarDecl(const VarDecl &d) {
  VarDecl out;
  out.type = d.type;
  out.name = d.name;
  if (d.init) out.init = d.init->clone();
  for (const auto &dim : d.arrayDims) out.arrayDims.push_back(dim ? dim->clone() : nullptr);
  return out;
}

Param cloneParam(const Param &p) {
  Param out;
  out.type = p.type;
  out.name = p.name;
  if (p.defaultValue) out.defaultValue = p.defaultValue->clone();
  return out;
}

FunctionDecl cloneFunction(const FunctionDecl &f) {
  FunctionDecl out;
  out.name = f.name;
  out.returnType = f.returnType;
  for (const auto &p : f.params) out.params.push_back(cloneParam(p));
  if (f.body) out.body = f.body->clone();
  out.attributes = f.attributes;
  out.templateParams = f.templateParams;
  out.loc = f.loc;
  return out;
}

namespace {
bool eqExprPtr(const ExprPtr &a, const ExprPtr &b) {
  if (!a || !b) return !a && !b;
  return structurallyEqual(*a, *b);
}
bool eqStmtPtr(const StmtPtr &a, const StmtPtr &b) {
  if (!a || !b) return !a && !b;
  return structurallyEqual(*a, *b);
}
} // namespace

bool structurallyEqual(const Expr &a, const Expr &b) {
  if (a.kind != b.kind || a.text != b.text || a.typeArgs != b.typeArgs) return false;
  if (a.args.size() != b.args.size() || a.params.size() != b.params.size()) return false;
  for (usize i = 0; i < a.args.size(); ++i)
    if (!eqExprPtr(a.args[i], b.args[i])) return false;
  for (usize i = 0; i < a.params.size(); ++i) {
    if (a.params[i].type != b.params[i].type || a.params[i].name != b.params[i].name) return false;
  }
  return eqStmtPtr(a.body, b.body);
}

bool structurallyEqual(const Stmt &a, const Stmt &b) {
  if (a.kind != b.kind || a.loopVar != b.loopVar) return false;
  if (a.children.size() != b.children.size() || a.decls.size() != b.decls.size()) return false;
  if (a.directive.has_value() != b.directive.has_value()) return false;
  if (a.directive) {
    if (a.directive->family != b.directive->family || a.directive->kind != b.directive->kind)
      return false;
  }
  if (!eqExprPtr(a.cond, b.cond) || !eqExprPtr(a.step, b.step) || !eqStmtPtr(a.init, b.init))
    return false;
  for (usize i = 0; i < a.children.size(); ++i)
    if (!eqStmtPtr(a.children[i], b.children[i])) return false;
  for (usize i = 0; i < a.decls.size(); ++i) {
    const auto &da = a.decls[i];
    const auto &db = b.decls[i];
    if (da.name != db.name || da.type != db.type || !eqExprPtr(da.init, db.init)) return false;
  }
  return true;
}

} // namespace sv::lang::ast
