// Source management shared by the MiniC and MiniF frontends: an in-memory
// file table (codebases under analysis are virtual file systems, mirroring
// how SilverVale ingests a Compilation DB rather than walking a disk tree)
// and source locations with the file/line back-references that every tree
// node carries (Section III-A).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/common.hpp"

namespace sv::lang {

/// A position in a source file. `file` indexes the owning SourceManager.
struct Location {
  i32 file = -1;
  i32 line = -1; ///< 1-based
  i32 col = -1;  ///< 1-based

  [[nodiscard]] bool valid() const { return file >= 0 && line >= 1; }
  [[nodiscard]] bool operator==(const Location &) const = default;
};

/// One source file: a name (codebase-relative path) and its full text.
struct SourceFile {
  std::string name;
  std::string text;
};

/// Owns the files of one codebase and hands out stable integer ids.
class SourceManager {
public:
  /// Register a file; re-registering the same name replaces its text.
  i32 add(std::string name, std::string text);

  [[nodiscard]] usize fileCount() const { return files_.size(); }
  [[nodiscard]] const SourceFile &file(i32 id) const;
  [[nodiscard]] std::optional<i32> idOf(std::string_view name) const;
  [[nodiscard]] const std::vector<SourceFile> &files() const { return files_; }

  /// Render "name:line:col" for diagnostics.
  [[nodiscard]] std::string describe(const Location &loc) const;

private:
  std::vector<SourceFile> files_;
  std::map<std::string, i32, std::less<>> index_;
};

/// Error raised by the frontends; carries a rendered location.
class FrontendError : public ParseError {
public:
  FrontendError(const std::string &what, std::string where)
      : ParseError(where + ": " + what), where_(std::move(where)) {}
  [[nodiscard]] const std::string &where() const { return where_; }

private:
  std::string where_;
};

} // namespace sv::lang
